// Package flexnet is a runtime-programmable network framework — a
// working implementation of the FlexNet vision from "A Vision for
// Runtime Programmable Networks" (HotNets '21).
//
// FlexNet models an end-to-end network whose devices (RMT/dRMT/tiled
// switch ASICs, SmartNICs, host stacks) can be reprogrammed *while
// serving traffic*: match/action tables, parser states, and whole
// programs are added and removed hitlessly, programs migrate between
// devices carrying their state, security defenses scale elastically
// with attack volume, and a central controller manages applications by
// URI. The network substrate is a deterministic discrete-event
// simulator, so every experiment replays bit-for-bit.
//
// # Quick start
//
//	net, _ := flexnet.New(1).
//		Switch("s1", flexnet.DRMT).
//		Host("h1", "10.0.0.1").
//		Host("h2", "10.0.0.2").
//		Link("h1", "s1").
//		Link("s1", "h2").
//		Build()
//
//	defense := flexnet.SYNDefense("syn", 1024, 10)
//	net.Deploy(context.Background(), "flexnet://infra/defense", flexnet.AppSpec{
//		Programs: []*flexnet.Program{defense},
//	}, flexnet.DeployOptions{})
//	net.RunFor(time.Second)
//
// Programs are written in FlexBPF (see NewProgram and NewAsm), verified
// for bounded execution before installation, compiled onto devices by a
// fungibility-aware placer, and reconfigured at runtime through hitless
// epoch-atomic swaps.
package flexnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"flexnet/internal/apps"
	"flexnet/internal/compiler"
	"flexnet/internal/controller"
	"flexnet/internal/dataplane"
	"flexnet/internal/errdefs"
	"flexnet/internal/fabric"
	"flexnet/internal/flexbpf"
	"flexnet/internal/flexbpf/delta"
	"flexnet/internal/migrate"
	"flexnet/internal/netsim"
	"flexnet/internal/packet"
	"flexnet/internal/plan"
	"flexnet/internal/runtime"
	"flexnet/internal/telemetry"
	"flexnet/internal/transport"
)

// Sentinel errors. Internal failures wrap these, so callers can classify
// outcomes with errors.Is regardless of the layer that produced them.
var (
	// ErrNoSuchApp: the URI (or one of its segments/replicas) is unknown.
	ErrNoSuchApp = errdefs.ErrNoSuchApp
	// ErrInsufficientResources: placement or growth does not fit.
	ErrInsufficientResources = errdefs.ErrInsufficientResources
	// ErrVerifyFailed: a program failed FlexBPF verification.
	ErrVerifyFailed = errdefs.ErrVerifyFailed
	// ErrDeviceDown: the target device is marked down.
	ErrDeviceDown = errdefs.ErrDeviceDown
	// ErrFailover: the plan was interrupted by a controller failover
	// before it committed, and was rolled back (DESIGN.md §15.3).
	ErrFailover = errdefs.ErrFailover
)

// Architecture classes (§3.3 of the paper).
const (
	// RMT is a fixed-stage reconfigurable match-table pipeline (Tofino).
	RMT = dataplane.ArchRMT
	// DRMT is disaggregated RMT (Nvidia Spectrum class).
	DRMT = dataplane.ArchDRMT
	// Tile is a tiled architecture (Broadcom Trident4 class).
	Tile = dataplane.ArchTile
	// ElasticPipe is a fixed pipe plus programmable elements (Jericho2).
	ElasticPipe = dataplane.ArchElasticPipe
	// SoC is a SmartNIC/FPGA with fully fungible resources.
	SoC = dataplane.ArchSoC
	// Host is a host kernel stack (eBPF class).
	Host = dataplane.ArchHost
)

// Re-exported core types. The internal packages carry the full
// implementation; these aliases are the supported public surface.
type (
	// Arch identifies a device architecture class.
	Arch = dataplane.Arch
	// Device is a runtime-programmable device.
	Device = dataplane.Device
	// DeviceConfig configures a device.
	DeviceConfig = dataplane.Config
	// Program is a verified FlexBPF program.
	Program = flexbpf.Program
	// ProgramBuilder builds Programs fluently.
	ProgramBuilder = flexbpf.ProgramBuilder
	// Asm assembles FlexBPF instruction blocks.
	Asm = flexbpf.Asm
	// Datapath is a logical chain of program segments.
	Datapath = flexbpf.Datapath
	// SLA constrains placement.
	SLA = flexbpf.SLA
	// TableSpec declares a match/action table.
	TableSpec = flexbpf.TableSpec
	// TableKey is one table key component.
	TableKey = flexbpf.TableKey
	// TableEntry is an installed rule.
	TableEntry = flexbpf.TableEntry
	// Cond is a packet-field condition (used for isolation filters).
	Cond = flexbpf.Cond
	// Capabilities declares what a program needs from its device.
	Capabilities = flexbpf.Capabilities
	// Demand quantifies device resources.
	Demand = flexbpf.Demand
	// Packet is a simulated packet.
	Packet = packet.Packet
	// FlowSpec describes synthetic traffic.
	FlowSpec = netsim.FlowSpec
	// LinkParams configures a link (bandwidth, delay, buffer).
	LinkParams = netsim.LinkParams
	// Source generates traffic.
	Source = netsim.Source
	// MigrationReport describes a completed state migration.
	MigrationReport = migrate.Report
	// ReconfigResult describes a completed device reconfiguration.
	ReconfigResult = runtime.Result
	// App is a managed application.
	App = controller.App
	// Tenant is an admitted tenant.
	Tenant = controller.Tenant
	// ChangePlan is a transactional network change: typed steps with a
	// validate → prepare → commit lifecycle and automatic rollback.
	ChangePlan = plan.ChangePlan
	// PlanStep is one typed operation within a ChangePlan.
	PlanStep = plan.Step
	// PlanReport describes a plan's execution or dry run.
	PlanReport = plan.Report
	// TelemetrySnapshot is a deterministic point-in-time copy of every
	// metric in the network's registry.
	TelemetrySnapshot = telemetry.Snapshot
	// TraceSnapshot is a wire-friendly copy of one plan's execution trace.
	TraceSnapshot = telemetry.TraceSnapshot
)

// Program constructors re-exported from the library.
var (
	// NewProgram starts a FlexBPF program builder.
	NewProgram = flexbpf.NewProgram
	// NewAsm starts an instruction assembler.
	NewAsm = flexbpf.NewAsm
	// Verify checks a program's safety rules.
	Verify = flexbpf.Verify
	// Firewall builds a stateful firewall app.
	Firewall = apps.Firewall
	// NATApp builds a source-NAT app.
	NATApp = apps.NAT
	// LoadBalancer builds an L4 load balancer app.
	LoadBalancer = apps.LoadBalancer
	// HeavyHitter builds a count-min heavy-hitter monitor app.
	HeavyHitter = apps.HeavyHitter
	// SYNDefense builds the elastic SYN-flood defense app.
	SYNDefense = apps.SYNDefense
	// RateLimiter builds a meter-based rate limiter app.
	RateLimiter = apps.RateLimiter
	// INTTelemetry builds an in-band telemetry app.
	INTTelemetry = apps.INTTelemetry
	// L2Forwarder builds a MAC forwarding app.
	L2Forwarder = apps.L2Forwarder
)

// ParseIP converts dotted-quad notation to the uint32 address form used
// throughout the library.
func ParseIP(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("flexnet: malformed IPv4 address %q", s)
	}
	var out uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("flexnet: malformed IPv4 address %q", s)
		}
		out = out<<8 | uint32(v)
	}
	return out, nil
}

// MustParseIP is ParseIP that panics on malformed input.
func MustParseIP(s string) uint32 {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Builder assembles a Network topology.
type Builder struct {
	fab      *fabric.Fabric
	strategy compiler.Strategy
	costs    runtime.Costs
	drpc     map[string]string // device → control IP
	workers  int
	err      error
}

// New starts building a network with the given random seed.
func New(seed int64) *Builder {
	return &Builder{
		fab:      fabric.New(seed),
		strategy: compiler.StrategyFungible,
		costs:    runtime.DefaultCosts(),
		drpc:     map[string]string{},
	}
}

// Switch adds a device of the given architecture.
func (b *Builder) Switch(name string, arch Arch) *Builder {
	if b.err == nil {
		b.fab.AddSwitch(name, arch)
	}
	return b
}

// SwitchCfg adds a device with an explicit configuration.
func (b *Builder) SwitchCfg(cfg DeviceConfig) *Builder {
	if b.err == nil {
		b.fab.AddSwitchCfg(cfg)
	}
	return b
}

// Host adds an end host with the given dotted-quad IP.
func (b *Builder) Host(name, ip string) *Builder {
	if b.err != nil {
		return b
	}
	addr, err := ParseIP(ip)
	if err != nil {
		b.err = err
		return b
	}
	b.fab.AddHost(name, addr)
	return b
}

// Link connects two members with default link parameters (10 Gb/s, 2 µs).
func (b *Builder) Link(a, c string) *Builder {
	return b.LinkCfg(a, c, netsim.DefaultLink())
}

// LinkCfg connects two members with explicit parameters.
func (b *Builder) LinkCfg(a, c string, p netsim.LinkParams) *Builder {
	if b.err == nil {
		b.fab.Connect(a, c, p)
	}
	return b
}

// Topo populates the network from a compact generated-topology spec —
// "fat-tree:k=8" or "spine-leaf:spines=4,leaves=8,hosts=10" (see
// fabric.ParseTopo for the grammar). It composes with Switch, Host and
// Link, so a generated fabric can be decorated with extra members as
// long as names do not collide.
func (b *Builder) Topo(spec string) *Builder {
	if b.err != nil {
		return b
	}
	ts, err := fabric.ParseTopo(spec)
	if err != nil {
		b.err = err
		return b
	}
	b.err = ts.Build(b.fab)
	return b
}

// FlowCache toggles the per-switch megaflow flow cache for switches
// added after the call (so it should precede Switch/Topo). Processing
// output and dev.* telemetry are identical with the cache on or off;
// cache activity appears under separate flowcache.* instruments.
func (b *Builder) FlowCache(v bool) *Builder {
	if b.err == nil {
		b.fab.SetFlowCache(v)
	}
	return b
}

// Batching toggles batched switch execution (on by default) for switches
// added after the call. Batching never changes simulation output, only
// wall-clock speed.
func (b *Builder) Batching(v bool) *Builder {
	if b.err == nil {
		b.fab.SetBatching(v)
	}
	return b
}

// DRPC enables data-plane RPC on a device at the given control IP.
func (b *Builder) DRPC(device, ip string) *Builder {
	if b.err == nil {
		b.drpc[device] = ip
	}
	return b
}

// PlacementStrategy selects the compiler strategy (fungible by default).
func (b *Builder) PlacementStrategy(s compiler.Strategy) *Builder {
	b.strategy = s
	return b
}

// ReconfigCosts overrides the runtime reconfiguration cost model.
func (b *Builder) ReconfigCosts(c runtime.Costs) *Builder {
	b.costs = c
	return b
}

// Workers sets the worker-pool size for parallel per-device packet
// execution (0 = GOMAXPROCS, the default). Any count produces
// byte-identical output at a given seed.
func (b *Builder) Workers(n int) *Builder {
	b.workers = n
	return b
}

// Build finalizes the topology: dRPC routers come up, the infrastructure
// routing program is installed on every switch, and the controller takes
// over.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	for dev, ip := range b.drpc {
		addr, err := ParseIP(ip)
		if err != nil {
			return nil, err
		}
		if _, err := b.fab.EnableDRPC(dev, addr); err != nil {
			return nil, err
		}
	}
	if err := b.fab.InstallBaseRouting(); err != nil {
		return nil, err
	}
	if b.workers != 0 {
		b.fab.SetWorkers(b.workers)
	}
	eng := runtime.NewEngine(b.fab.Sim, b.costs)
	ctl := controller.New(b.fab, eng, b.strategy)
	return &Network{fab: b.fab, eng: eng, ctl: ctl}, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

// Network is a running FlexNet deployment: topology + runtime engine +
// controller.
type Network struct {
	fab *fabric.Fabric
	eng *runtime.Engine
	ctl *controller.Controller
}

// Controller returns the app-level controller.
func (n *Network) Controller() *controller.Controller { return n.ctl }

// Engine returns the runtime reconfiguration engine.
func (n *Network) Engine() *runtime.Engine { return n.eng }

// Fabric returns the underlying fabric (advanced use).
func (n *Network) Fabric() *fabric.Fabric { return n.fab }

// Device returns a device by name, or nil.
func (n *Network) Device(name string) *Device { return n.fab.Device(name) }

// Now returns the current simulation time.
func (n *Network) Now() time.Duration { return n.fab.Sim.Now() }

// RunFor advances simulated time by d.
func (n *Network) RunFor(d time.Duration) { n.fab.Sim.RunFor(d) }

// RunUntil advances simulated time to the absolute instant t.
func (n *Network) RunUntil(t time.Duration) { n.fab.Sim.RunUntil(t) }

// At schedules fn at an absolute simulated time.
func (n *Network) At(t time.Duration, fn func()) { n.fab.Sim.At(t, fn) }

// After schedules fn after a simulated delay.
func (n *Network) After(d time.Duration, fn func()) { n.fab.Sim.After(d, fn) }

// NewSource creates a traffic source at a host.
func (n *Network) NewSource(host string, spec FlowSpec) (*Source, error) {
	h := n.fab.Host(host)
	if h == nil {
		return nil, fmt.Errorf("flexnet: no host %q", host)
	}
	return h.NewSource(spec), nil
}

// HostReceived returns the number of packets delivered to a host.
func (n *Network) HostReceived(host string) uint64 {
	h := n.fab.Host(host)
	if h == nil {
		return 0
	}
	return h.Received
}

// OnHostReceive registers a delivery callback at a host.
func (n *Network) OnHostReceive(host string, fn func(*Packet)) error {
	h := n.fab.Host(host)
	if h == nil {
		return fmt.Errorf("flexnet: no host %q", host)
	}
	prev := h.Recv
	h.Recv = func(p *Packet) {
		if prev != nil {
			prev(p)
		}
		fn(p)
	}
	return nil
}

// InfrastructureDrops counts packets lost to infrastructure causes
// (never by app policy): link overflows, drains, execution errors.
func (n *Network) InfrastructureDrops() uint64 { return n.fab.InfrastructureDrops() }

// AppSpec describes an application deployment.
type AppSpec struct {
	// Programs are the datapath segments, in traffic order.
	Programs []*Program
	// Path restricts placement to these devices in order (nil = any).
	Path []string
	// Tenant attributes the app and isolates it to the tenant's VLAN.
	Tenant string
	// SLA constrains placement.
	SLA SLA
}

// AddTenant admits a tenant and returns its VLAN allocation.
func (n *Network) AddTenant(name string) (*Tenant, error) { return n.ctl.AddTenant(name) }

// LastPlanReport returns the report of the most recently executed
// change plan (nil before the first operation). Every operation —
// deploy, remove, update, scale, migrate — leaves one.
func (n *Network) LastPlanReport() *PlanReport { return n.ctl.LastReport() }

// Metrics returns the network-wide telemetry registry: per-device packet
// and occupancy instruments ("dev.*"), plan pipeline counters ("plan.*"),
// controller operation counters ("ctl.*"), and migration accounting
// ("migrate.*"). All values derive from simulated time and the seeded
// simulation, so snapshots are byte-identical across runs at a seed.
func (n *Network) Metrics() *telemetry.Registry { return n.fab.Metrics }

// Tracer returns the plan-execution tracer. Every executed plan leaves a
// trace keyed by its ID (see PlanReport.ID) with per-phase spans:
// validate, per-device prepare, commit, rollback, and post steps.
func (n *Network) Tracer() *telemetry.Tracer { return n.fab.Tracer }

// Stats returns a deterministic snapshot of every metric.
func (n *Network) Stats() TelemetrySnapshot { return n.fab.Metrics.Snapshot() }

// PlanTrace returns the execution trace for a plan ID (see
// PlanReport.ID), or a zero snapshot if the ID is unknown or evicted.
func (n *Network) PlanTrace(id string) TraceSnapshot { return n.fab.Tracer.Trace(id).Snapshot() }

// waitFor advances simulation until *done or the budget elapses.
func (n *Network) waitFor(done *bool, budget time.Duration) {
	deadline := n.fab.Sim.Now() + budget
	step := 10 * time.Millisecond
	for !*done && n.fab.Sim.Now() < deadline {
		n.fab.Sim.RunFor(step)
	}
}

// Transport re-exports: host flows with runtime-swappable congestion
// control (the live-infrastructure-customization use case).
type (
	// TransportEndpoint gives a host transport behaviour.
	TransportEndpoint = transport.Endpoint
	// Flow is a window-based transport flow.
	Flow = transport.Flow
	// CC is a congestion-control policy.
	CC = transport.CC
	// FlowStats summarizes a flow.
	FlowStats = transport.FlowStats
)

// Congestion-control algorithms.
var (
	// RenoCC is classic TCP Reno (queue-filling).
	RenoCC CC = transport.Reno{}
	// DCTCPCC is DCTCP (ECN-proportional, shallow queues).
	DCTCPCC CC = transport.DCTCP{}
	// TimelyCC is a delay-gradient controller.
	TimelyCC CC = transport.Timely{}
)

// NewTransportEndpoint attaches transport behaviour (data ACKing, flow
// demux) to a host.
func (n *Network) NewTransportEndpoint(host string) (*TransportEndpoint, error) {
	h := n.fab.Host(host)
	if h == nil {
		return nil, fmt.Errorf("flexnet: no host %q", host)
	}
	return transport.NewEndpoint(h), nil
}

// SetLinkECN enables DCTCP-style ECN marking on the link between two
// members when its queue exceeds thresholdBytes.
func (n *Network) SetLinkECN(a, b string, thresholdBytes int) error {
	l := n.fab.Net.LinkBetween(a, b)
	if l == nil {
		return fmt.Errorf("flexnet: no link %s—%s", a, b)
	}
	l.ECNThresholdBytes = thresholdBytes
	return nil
}

// SetLinkDown fails or restores the link between two members.
func (n *Network) SetLinkDown(a, b string, down bool) error {
	l := n.fab.Net.LinkBetween(a, b)
	if l == nil {
		return fmt.Errorf("flexnet: no link %s—%s", a, b)
	}
	l.SetDown(down)
	return nil
}

// RefreshRoutes recomputes shortest-path routing (after failures).
func (n *Network) RefreshRoutes() error { return n.fab.RefreshRoutes() }

// Delta is an incremental program change (§3.2 of the paper): a list of
// pattern-selected operations applied to a deployed app's program
// without re-specifying it.
type Delta = delta.Delta

// DeltaOp is one operation within a Delta.
type DeltaOp = delta.Op
