package flexnet

// Vertical distribution tests: the paper's fungible datapath spans host
// stacks, NICs, and switches (§3.1 "hides away the details of vertical
// and horizontal distribution"); the compiler must split a mixed
// datapath across device classes by capability, and INT telemetry must
// accumulate across hops.

import (
	"context"
	"testing"
	"time"
)

func TestVerticalDatapathSplitsByCapability(t *testing.T) {
	// Host-stack device (eBPF class) → SmartNIC (SoC) → switch (DRMT).
	n, err := New(21).
		Switch("hoststack", Host).
		Switch("nic", SoC).
		Switch("tor", DRMT).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "hoststack").
		Link("hoststack", "nic").
		Link("nic", "tor").
		Link("tor", "h2").
		Build()
	if err != nil {
		t.Fatal(err)
	}

	// Three segments with increasingly narrow requirements:
	//  - ccmon needs Transport (only the host stack has it),
	//  - scrub needs GeneralCompute (host or NIC),
	//  - acl needs TCAM (everyone, but path order pins it last).
	ccmon := NewProgram("ccmon").
		Requires(Capabilities{Transport: true}).
		Do(NewAsm().Ret().MustBuild()).
		MustBuild()
	scrub := NewProgram("scrub").
		Requires(Capabilities{GeneralCompute: true}).
		Do(NewAsm().Ret().MustBuild()).
		MustBuild()
	acl := NewProgram("acl").
		Action("deny", 0, NewAsm().Drop().MustBuild()).
		Table(&TableSpec{
			Name:    "rules",
			Keys:    []TableKey{{Field: "ipv4.src", Kind: 2 /* ternary */, Bits: 32}},
			Actions: []string{"deny"},
			Size:    32,
		}).
		Apply("rules").
		MustBuild()

	if _, err := n.Deploy(context.Background(), "flexnet://infra/vertical", AppSpec{
		Programs: []*Program{ccmon, scrub, acl},
		Path:     []string{"hoststack", "nic", "tor"},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	app := n.Controller().App("flexnet://infra/vertical")
	place := func(seg string) string { return app.Replicas[seg][0] }
	if place("ccmon") != "hoststack" {
		t.Fatalf("ccmon placed on %s, want hoststack", place("ccmon"))
	}
	if got := place("scrub"); got != "hoststack" && got != "nic" {
		t.Fatalf("scrub placed on %s", got)
	}
	// Path ordering: acl's device must not precede scrub's device.
	pos := map[string]int{"hoststack": 0, "nic": 1, "tor": 2}
	if pos[place("acl")] < pos[place("scrub")] {
		t.Fatalf("path order violated: scrub on %s, acl on %s", place("scrub"), place("acl"))
	}

	// Traffic still flows through the full vertical chain.
	src, _ := n.NewSource("h1", FlowSpec{Dst: MustParseIP("10.0.0.2"), Proto: 6, SrcPort: 1, DstPort: 80, PacketLen: 100})
	src.StartCBR(5000)
	n.RunFor(100 * time.Millisecond)
	src.Stop()
	n.RunFor(20 * time.Millisecond)
	if n.HostReceived("h2") != src.Sent {
		t.Fatalf("delivered %d/%d through the vertical chain", n.HostReceived("h2"), src.Sent)
	}
}

func TestINTTelemetryAccumulatesAcrossHops(t *testing.T) {
	n, err := New(22).
		Switch("s1", DRMT).
		Switch("s2", RMT).
		Switch("s3", Tile).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "s1").
		Link("s1", "s2").
		Link("s2", "s3").
		Link("s3", "h2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// One INT program per switch, each stamping its device id.
	for i, sw := range []string{"s1", "s2", "s3"} {
		if _, err := n.Deploy(context.Background(), "flexnet://infra/int-"+sw, AppSpec{
			Programs: []*Program{INTTelemetry("int", uint64(i+1))},
			Path:     []string{sw},
		}, DeployOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	var hops, lastDev uint64
	if err := n.OnHostReceive("h2", func(p *Packet) {
		hops = p.Field("int.hopcount")
		lastDev = p.Field("int.device")
	}); err != nil {
		t.Fatal(err)
	}
	src, _ := n.NewSource("h1", FlowSpec{Dst: MustParseIP("10.0.0.2"), Proto: 6, SrcPort: 1, DstPort: 80, PacketLen: 100})
	src.EmitOne(0)
	n.RunFor(10 * time.Millisecond)
	if hops != 3 {
		t.Fatalf("INT hop count = %d, want 3", hops)
	}
	if lastDev != 3 {
		t.Fatalf("last INT device = %d, want 3 (s3)", lastDev)
	}
}
