package flexnet

import (
	"context"
	"fmt"
	"time"

	"flexnet/internal/controller"
	"flexnet/internal/flexbpf/delta"
)

// This file is the context-first control API for Network. Every control
// operation takes a context.Context (cancellation rolls the in-flight
// plan back and surfaces context.Canceled) and an options struct whose
// zero value reproduces the old method's behaviour. Each struct carries
// a DryRun flag, replacing the former DryRun* method pairs: with DryRun
// set, the plan is built and validated but never executed, and the
// returned PlanReport lists every step with its estimated cost.
//
// This is the only control surface: the pre-context wrapper methods
// (DeployApp, MigrateApp, DryRunDeploy, ...) were removed after one
// deprecation cycle. Declarative alternatives live in spec_ops.go.

// DeployOptions controls Deploy. The zero value deploys for real with
// unrestricted placement.
type DeployOptions struct {
	// DryRun validates the deployment without touching the network.
	DryRun bool
}

// RemoveOptions controls Remove. The zero value removes for real.
type RemoveOptions struct {
	// DryRun validates the removal without executing it.
	DryRun bool
}

// MigrateRequest names a segment migration. The explicit DataPlane
// field replaces MigrateApp's bare trailing bool, which was unreadable
// at call sites.
type MigrateRequest struct {
	// URI and Segment select the app segment; its primary replica moves.
	URI, Segment string
	// Dst is the destination device.
	Dst string
	// DataPlane selects in-band dRPC state transfer; false uses the
	// control-plane baseline (export via controller, import at dst).
	DataPlane bool
	// DryRun validates the migration without executing it.
	DryRun bool
}

// ScaleDirection selects whether Scale adds or removes a replica.
type ScaleDirection int

const (
	// ScaleDirOut adds a replica on the requested device (the default).
	ScaleDirOut ScaleDirection = iota
	// ScaleDirIn removes the replica on the requested device.
	ScaleDirIn
)

// ScaleRequest names a replica change for Scale.
type ScaleRequest struct {
	// URI and Segment select the app segment.
	URI, Segment string
	// Device hosts the replica to add (ScaleDirOut) or drop (ScaleDirIn).
	// For ScaleDirOut it may be empty: the controller auto-places the
	// replica (path devices first, then the fabric, first fit).
	Device string
	// Direction defaults to ScaleDirOut.
	Direction ScaleDirection
	// DryRun validates the change without executing it.
	DryRun bool
}

// UpdateRequest names an incremental (§3.2 delta) program change.
type UpdateRequest struct {
	// URI and Segment select the app segment to change.
	URI, Segment string
	// Delta is the pattern-selected change set.
	Delta *Delta
	// DryRun validates the update (including the delta application and
	// re-verification) without executing it.
	DryRun bool
}

// DeltaReport describes which objects an applied Delta touched.
type DeltaReport = delta.Report

// Deploy deploys an application, advancing simulated time until the
// plan commits (or rolls back). It returns the executed plan's report;
// with opts.DryRun it returns the validation report without touching
// the network. Cancelling ctx mid-plan rolls the deployment back and
// the error reports context.Canceled.
func (n *Network) Deploy(ctx context.Context, uri string, spec AppSpec, opts DeployOptions) (*PlanReport, error) {
	dp := &Datapath{Name: uri, Segments: spec.Programs, SLA: spec.SLA, Owner: spec.Tenant}
	copts := controller.DeployOptions{Path: spec.Path, Tenant: spec.Tenant}
	if opts.DryRun {
		cp, _, err := n.ctl.PlanDeploy(uri, dp, copts)
		if err != nil {
			return nil, err
		}
		return n.ctl.DryRun(cp), nil
	}
	var err error
	done := false
	n.ctl.Deploy(ctx, uri, dp, copts, func(e error) { err = e; done = true })
	n.waitFor(&done, 30*time.Second)
	if !done {
		return nil, fmt.Errorf("flexnet: deploy %s did not complete", uri)
	}
	return n.ctl.LastReport(), err
}

// Remove removes an application. See Deploy for execution, dry-run, and
// cancellation semantics.
func (n *Network) Remove(ctx context.Context, uri string, opts RemoveOptions) (*PlanReport, error) {
	if opts.DryRun {
		cp, err := n.ctl.PlanRemove(uri)
		if err != nil {
			return nil, err
		}
		return n.ctl.DryRun(cp), nil
	}
	var err error
	done := false
	n.ctl.Remove(ctx, uri, func(e error) { err = e; done = true })
	n.waitFor(&done, 30*time.Second)
	if !done {
		return nil, fmt.Errorf("flexnet: remove %s did not complete", uri)
	}
	return n.ctl.LastReport(), err
}

// Migrate moves an app segment between devices, carrying its state
// in-band (req.DataPlane) or via the control-plane baseline. On
// failure or ctx cancellation the plan rolls back: the destination
// install is undone and the source stays authoritative. With
// req.DryRun the migration is validated only and the MigrationReport
// is zero.
func (n *Network) Migrate(ctx context.Context, req MigrateRequest) (MigrationReport, *PlanReport, error) {
	creq := controller.MigrateRequest{URI: req.URI, Segment: req.Segment, Dst: req.Dst, DataPlane: req.DataPlane}
	if req.DryRun {
		cp, err := n.ctl.PlanMigrate(creq)
		if err != nil {
			return MigrationReport{}, nil, err
		}
		return MigrationReport{}, n.ctl.DryRun(cp), nil
	}
	var rep MigrationReport
	done := false
	n.ctl.Migrate(ctx, creq, func(r MigrationReport) { rep = r; done = true })
	n.waitFor(&done, 60*time.Second)
	if !done {
		return rep, nil, fmt.Errorf("flexnet: migration of %s did not complete", req.URI)
	}
	return rep, n.ctl.LastReport(), rep.Err
}

// Scale adds (ScaleDirOut) or removes (ScaleDirIn) an app replica. See
// Deploy for execution, dry-run, and cancellation semantics.
func (n *Network) Scale(ctx context.Context, req ScaleRequest) (*PlanReport, error) {
	if req.DryRun {
		var cp *ChangePlan
		var err error
		if req.Direction == ScaleDirIn {
			cp, err = n.ctl.PlanScaleIn(req.URI, req.Segment, req.Device)
		} else {
			cp, _, err = n.ctl.PlanScaleOut(req.URI, req.Segment, req.Device)
		}
		if err != nil {
			return nil, err
		}
		return n.ctl.DryRun(cp), nil
	}
	var err error
	done := false
	cb := func(e error) { err = e; done = true }
	if req.Direction == ScaleDirIn {
		n.ctl.ScaleIn(ctx, req.URI, req.Segment, req.Device, cb)
	} else {
		n.ctl.ScaleOut(ctx, req.URI, req.Segment, req.Device, cb)
	}
	n.waitFor(&done, 30*time.Second)
	if !done {
		return nil, fmt.Errorf("flexnet: scale of %s did not complete", req.URI)
	}
	return n.ctl.LastReport(), err
}

// Update applies an incremental change to a deployed app segment, live
// and state-preserving. The DeltaReport lists the touched objects; with
// req.DryRun it is nil and only the plan validation report returns.
func (n *Network) Update(ctx context.Context, req UpdateRequest) (*DeltaReport, *PlanReport, error) {
	if req.DryRun {
		cp, _, _, err := n.ctl.PlanUpdate(req.URI, req.Segment, req.Delta)
		if err != nil {
			return nil, nil, err
		}
		return nil, n.ctl.DryRun(cp), nil
	}
	var rep *DeltaReport
	var err error
	done := false
	n.ctl.UpdateApp(ctx, req.URI, req.Segment, req.Delta, func(r *DeltaReport, e error) { rep, err = r, e; done = true })
	n.waitFor(&done, 30*time.Second)
	if !done {
		return nil, nil, fmt.Errorf("flexnet: update of %s did not complete", req.URI)
	}
	return rep, n.ctl.LastReport(), err
}

// DeleteTenant removes a tenant and every app it owns. Cancelling ctx
// mid-removal rolls the in-flight plan back.
func (n *Network) DeleteTenant(ctx context.Context, name string) error {
	var err error
	done := false
	n.ctl.RemoveTenant(ctx, name, func(e error) { err = e; done = true })
	n.waitFor(&done, 30*time.Second)
	if !done {
		return fmt.Errorf("flexnet: tenant removal did not complete")
	}
	return err
}

// SetWorkers sets the worker-pool size used to execute per-device
// packet batches in parallel: n <= 0 restores the default
// (GOMAXPROCS). The effective count is returned. Output is
// byte-identical at a given seed regardless of the worker count.
func (n *Network) SetWorkers(count int) int { return n.fab.SetWorkers(count) }

// NumWorkers returns the current worker-pool size.
func (n *Network) NumWorkers() int { return n.fab.Sim.Workers() }
