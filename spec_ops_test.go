package flexnet

import (
	"context"
	"strings"
	"testing"
	"time"

	"flexnet/internal/faults"
)

const testSpec = `
version: v1
tenants:
  - name: acme
apps:
  - uri: flexnet://acme/fw
    tenant: acme
    segments:
      - name: fw
        app: firewall
        args: [64, 1024, 0]
        scale: 2
  - uri: flexnet://infra/mon
    segments:
      - name: int
        app: int
`

// TestApplySpecIdempotent is the reconcile property test: applying the
// same spec twice must be a no-op the second time — empty diff, zero
// plans — because the differ sees live state already matching intent.
func TestApplySpecIdempotent(t *testing.T) {
	n := smallNet(t)
	ctx := context.Background()
	rep, err := n.ApplySpec(ctx, SpecApplyRequest{Source: []byte(testSpec)})
	if err != nil {
		t.Fatalf("first apply: %v", err)
	}
	if rep.PlansEmitted == 0 || rep.Diff.Empty() {
		t.Fatalf("first apply did nothing: plans=%d", rep.PlansEmitted)
	}
	st := n.SpecStatus()
	if st.Version != "v1" || !st.InSync || len(st.Drift) != 0 {
		t.Fatalf("status after apply = %+v", st)
	}

	again, err := n.ApplySpec(ctx, SpecApplyRequest{Source: []byte(testSpec)})
	if err != nil {
		t.Fatalf("second apply: %v", err)
	}
	if !again.Diff.Empty() || again.PlansEmitted != 0 || len(again.Plans) != 0 {
		t.Fatalf("second apply not a no-op: plans=%d diff=%v", again.PlansEmitted, again.Diff.Summary())
	}

	// DiffSpec agrees: in sync means an empty diff.
	d, err := n.DiffSpec(SpecDiffRequest{Source: []byte(testSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("diff after convergence: %v", d.Summary())
	}
}

// TestApplySpecConvergesChanges applies a revised spec over a live one
// and asserts the delta — retune, scale-down, app removal — converges
// and leaves the audit trail replayable to exactly the live state.
func TestApplySpecConvergesChanges(t *testing.T) {
	n := smallNet(t)
	ctx := context.Background()
	if _, err := n.ApplySpec(ctx, SpecApplyRequest{Source: []byte(testSpec)}); err != nil {
		t.Fatal(err)
	}
	revised := strings.Replace(testSpec, "version: v1", "version: v2", 1)
	revised = strings.Replace(revised, "args: [64, 1024, 0]", "args: [64, 2048, 0]", 1) // retune
	revised = strings.Replace(revised, "scale: 2", "scale: 1", 1)                       // shrink
	rep, err := n.ApplySpec(ctx, SpecApplyRequest{Source: []byte(revised)})
	if err != nil {
		t.Fatalf("apply v2: %v", err)
	}
	if len(rep.Diff.Swap) != 1 || len(rep.Diff.ScaleDown) != 1 {
		t.Fatalf("diff = %v", rep.Diff.Summary())
	}
	st := n.SpecStatus()
	if st.Version != "v2" || !st.InSync {
		t.Fatalf("status = %+v", st)
	}
	if err := n.Audit().Verify(); err != nil {
		t.Fatalf("audit chain: %v", err)
	}
	replayed, err := ReplayAudit(n.Audit().Records())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayed.Canonical() != n.CanonicalIntent() {
		t.Fatalf("replayed intent diverged from live:\n--- replayed ---\n%s--- live ---\n%s",
			replayed.Canonical(), n.CanonicalIntent())
	}
}

// TestApplySpecDryRun must not touch the network.
func TestApplySpecDryRun(t *testing.T) {
	n := smallNet(t)
	before := n.Now()
	rep, err := n.ApplySpec(context.Background(), SpecApplyRequest{Source: []byte(testSpec), DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diff.Empty() {
		t.Fatal("dry run computed an empty diff on an empty network")
	}
	if n.Now() != before {
		t.Fatal("dry run advanced simulated time")
	}
	if apps := n.Controller().Apps(); len(apps) != 0 {
		t.Fatalf("dry run deployed apps: %v", apps)
	}
}

// TestAuditReplayAfterChaos is the trail's end-to-end gate: converge a
// spec, run a seeded crash/link-failure schedule under traffic with the
// self-healer on, and require (a) an intact hash chain, (b) replayed
// intent byte-identical to the live controller's, and (c) the same
// chain head across reruns at the seed — the whole history is
// deterministic, not just the end state.
func TestAuditReplayAfterChaos(t *testing.T) {
	run := func() (head, replayed, live string) {
		nw := New(7).
			Switch("s1", DRMT).
			Switch("s2", DRMT).
			Switch("s3", DRMT).
			Host("h1", "10.0.0.1").
			Host("h2", "10.0.0.2").
			Link("h1", "s1").
			Link("s1", "s2").
			Link("s2", "h2").
			Link("s2", "s3").
			MustBuild()
		if _, err := nw.ApplySpec(context.Background(), SpecApplyRequest{Source: []byte(testSpec)}); err != nil {
			t.Fatalf("apply: %v", err)
		}
		healer := nw.StartSelfHealing(time.Millisecond)
		plane := nw.NewFaultPlane(7 + 77)
		horizon := 2 * time.Second
		sched := faults.Generate(7+13, faults.GenSpec{
			Devices:        []string{"s1", "s2", "s3"},
			Links:          []string{"s1-s2", "s2-s3"},
			HorizonNs:      uint64(horizon),
			CrashMeanGapNs: uint64(400 * time.Millisecond),
			CrashDownNs:    uint64(10 * time.Millisecond),
			LinkMeanGapNs:  uint64(700 * time.Millisecond),
			LinkDownNs:     uint64(20 * time.Millisecond),
		})
		if err := plane.Apply(sched); err != nil {
			t.Fatalf("apply schedule: %v", err)
		}
		src, err := nw.NewSource("h1", FlowSpec{
			Dst: MustParseIP("10.0.0.2"), Proto: 17,
			SrcPort: 1000, DstPort: 2000, PacketLen: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		src.StartCBR(20000)
		nw.RunFor(horizon + time.Second)
		src.Stop()
		if pending := healer.Pending(); len(pending) != 0 {
			t.Fatalf("pending reconciliation: %v", pending)
		}
		if drift := nw.IntentDrift(); len(drift) != 0 {
			t.Fatalf("intent drift after healing: %v", drift)
		}
		if err := nw.Audit().Verify(); err != nil {
			t.Fatalf("audit chain after chaos: %v", err)
		}
		st, err := ReplayAudit(nw.Audit().Records())
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		return nw.Audit().Head(), st.Canonical(), nw.CanonicalIntent()
	}
	head1, replayed, live := run()
	if replayed != live {
		t.Fatalf("replayed intent diverged after chaos:\n--- replayed ---\n%s--- live ---\n%s", replayed, live)
	}
	head2, _, _ := run()
	if head1 != head2 {
		t.Fatal("audit chain head differs across reruns at the same seed")
	}
}
