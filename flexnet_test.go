package flexnet

import (
	"context"
	"testing"
	"time"
)

func smallNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(3).
		Switch("s1", DRMT).
		Switch("s2", RMT).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "s1").
		Link("s1", "s2").
		Link("s2", "h2").
		DRPC("s1", "172.16.0.1").
		DRPC("s2", "172.16.0.2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseIP(t *testing.T) {
	ip, err := ParseIP("10.1.2.3")
	if err != nil || ip != 0x0A010203 {
		t.Fatalf("ParseIP = %x, %v", ip, err)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) accepted", bad)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := New(1).Host("h", "bad-ip").Build(); err == nil {
		t.Fatal("bad host IP accepted")
	}
	if _, err := New(1).Switch("s", DRMT).DRPC("s", "bad").Build(); err == nil {
		t.Fatal("bad drpc IP accepted")
	}
	if _, err := New(1).Switch("s", DRMT).DRPC("ghost", "1.2.3.4").Build(); err == nil {
		t.Fatal("drpc on unknown device accepted")
	}
}

func TestEndToEndTraffic(t *testing.T) {
	n := smallNet(t)
	src, err := n.NewSource("h1", FlowSpec{Dst: MustParseIP("10.0.0.2"), Proto: 17, SrcPort: 1, DstPort: 2, PacketLen: 100})
	if err != nil {
		t.Fatal(err)
	}
	src.StartCBR(10000)
	n.RunFor(100 * time.Millisecond)
	src.Stop()
	n.RunFor(10 * time.Millisecond)
	if got := n.HostReceived("h2"); got != src.Sent || got == 0 {
		t.Fatalf("h2 received %d of %d", got, src.Sent)
	}
	if n.InfrastructureDrops() != 0 {
		t.Fatalf("drops = %d", n.InfrastructureDrops())
	}
}

func TestDeployRemoveAppLifecycle(t *testing.T) {
	n := smallNet(t)
	if _, err := n.Deploy(context.Background(), "flexnet://infra/defense", AppSpec{
		Programs: []*Program{SYNDefense("syn", 512, 5)},
		Path:     []string{"s1"},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	if n.Device("s1").Instance("flexnet://infra/defense#syn") == nil {
		t.Fatal("program not on s1")
	}
	if _, err := n.Remove(context.Background(), "flexnet://infra/defense", RemoveOptions{}); err != nil {
		t.Fatal(err)
	}
	if n.Device("s1").Instance("flexnet://infra/defense#syn") != nil {
		t.Fatal("program still on s1")
	}
}

func TestDefenseDropsAttack(t *testing.T) {
	n := smallNet(t)
	if _, err := n.Deploy(context.Background(), "flexnet://infra/defense", AppSpec{
		Programs: []*Program{SYNDefense("syn", 512, 5)},
		Path:     []string{"s1"},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	// Attack: SYN flood from one source.
	atk, _ := n.NewSource("h1", FlowSpec{Dst: MustParseIP("10.0.0.2"), Proto: 6, SrcPort: 666, DstPort: 80, PacketLen: 40})
	for i := 0; i < 50; i++ {
		atk.EmitOne(1 << 1) // TCPSyn
	}
	n.RunFor(50 * time.Millisecond)
	// Only the first 5 SYNs pass.
	if got := n.HostReceived("h2"); got != 5 {
		t.Fatalf("h2 received %d, want 5", got)
	}
}

func TestMigrateAppViaFacade(t *testing.T) {
	n := smallNet(t)
	if _, err := n.Deploy(context.Background(), "flexnet://infra/mon", AppSpec{
		Programs: []*Program{HeavyHitter("hh", 2, 128, 1<<60)},
		Path:     []string{"s1"},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	src, _ := n.NewSource("h1", FlowSpec{Dst: MustParseIP("10.0.0.2"), Proto: 6, SrcPort: 5, DstPort: 80, PacketLen: 100})
	src.StartCBR(50000)
	n.RunFor(20 * time.Millisecond)
	rep, _, err := n.Migrate(context.Background(), MigrateRequest{URI: "flexnet://infra/mon", Segment: "hh", Dst: "s2", DataPlane: true})
	src.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostUpdates != 0 {
		t.Fatalf("lost %d updates", rep.LostUpdates)
	}
	if n.Device("s2").Instance("flexnet://infra/mon#hh") == nil {
		t.Fatal("app not on s2")
	}
}

func TestTenantLifecycleViaFacade(t *testing.T) {
	n := smallNet(t)
	tn, err := n.AddTenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	if tn.VLAN == 0 {
		t.Fatal("no VLAN allocated")
	}
	if _, err := n.Deploy(context.Background(), "flexnet://acme/rl", AppSpec{
		Programs: []*Program{RateLimiter("rl", 4, 1_000_000, 2_000_000)},
		Tenant:   "acme",
		Path:     []string{"s1"},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	before := n.Device("s1").Free()
	if err := n.DeleteTenant(context.Background(), "acme"); err != nil {
		t.Fatal(err)
	}
	if n.Device("s1").Free().SRAMBits <= before.SRAMBits {
		t.Fatal("tenant removal reclaimed nothing")
	}
}

func TestScaleOutInViaFacade(t *testing.T) {
	n := smallNet(t)
	if _, err := n.Deploy(context.Background(), "flexnet://infra/d", AppSpec{
		Programs: []*Program{SYNDefense("syn", 256, 5)},
		Path:     []string{"s1"},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Scale(context.Background(), ScaleRequest{URI: "flexnet://infra/d", Segment: "syn", Device: "s2", Direction: ScaleDirOut}); err != nil {
		t.Fatal(err)
	}
	if n.Device("s2").Instance("flexnet://infra/d#syn") == nil {
		t.Fatal("replica missing")
	}
	if _, err := n.Scale(context.Background(), ScaleRequest{URI: "flexnet://infra/d", Segment: "syn", Device: "s2", Direction: ScaleDirIn}); err != nil {
		t.Fatal(err)
	}
}

func TestSLARejection(t *testing.T) {
	n := smallNet(t)
	_, err := n.Deploy(context.Background(), "flexnet://infra/x", AppSpec{
		Programs: []*Program{SYNDefense("syn", 256, 5)},
		SLA:      SLA{MaxLatencyNs: 1}, // impossible
	}, DeployOptions{})
	if err == nil {
		t.Fatal("impossible SLA accepted")
	}
}

func TestDeterministicNetwork(t *testing.T) {
	run := func() uint64 {
		n := smallNet(t)
		src, _ := n.NewSource("h1", FlowSpec{Dst: MustParseIP("10.0.0.2"), Proto: 17, SrcPort: 1, DstPort: 2, PacketLen: 100})
		src.StartPoisson(20000)
		n.RunFor(200 * time.Millisecond)
		return n.HostReceived("h2")
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}
