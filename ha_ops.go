package flexnet

import (
	"errors"

	"flexnet/internal/controller"
	"flexnet/internal/controller/cluster"
)

// errHADisabled reports an HA operation on a network without EnableHA.
var errHADisabled = errors.New("flexnet: HA not enabled (call EnableHA)")

// Controller HA surface (DESIGN.md §15). HA is off until EnableHA: a
// plain network has a single implicit controller and byte-identical
// behaviour to earlier releases. Enabling it starts a replica group
// whose active member is the controller; the group replicates the
// audit chain and the executor's plan journal to standbys, and a
// leader kill fails over with in-flight plans resumed or rolled back
// through the normal transactional executor.
type (
	// HA is the controller's replica manager.
	HA = controller.HA
	// HAConfig tunes heartbeats, election timeouts, and the serving
	// lease. The zero value takes the documented defaults.
	HAConfig = cluster.HAConfig
	// HAStatus is the ha-status snapshot (replica roles, terms, log
	// watermarks, failover count).
	HAStatus = controller.HAStatus
)

// EnableHA attaches an active/standby replica group of the given size
// to this network's controller (idempotent). The returned manager is
// what a FaultPlane's BindHA wants for leader-kill schedules.
func (n *Network) EnableHA(replicas int, cfg HAConfig) *HA {
	return n.ctl.EnableHA(replicas, cfg)
}

// HA returns the replica manager, or nil when HA is not enabled.
func (n *Network) HA() *HA { return n.ctl.HA() }

// HAStatus snapshots the replica set. With HA off it returns a zero
// status with Enabled=false and Active=-1.
func (n *Network) HAStatus() HAStatus {
	if h := n.ctl.HA(); h != nil {
		return h.Status()
	}
	return HAStatus{Active: -1}
}

// HAFailover runs the operator failover drill: kill the serving
// leader, let the standbys elect a successor, revive the old leader as
// a standby. It returns the killed replica's ID. Errors when HA is off
// or no replica is currently serving.
func (n *Network) HAFailover() (int, error) {
	h := n.ctl.HA()
	if h == nil {
		return -1, errHADisabled
	}
	return h.Failover()
}
