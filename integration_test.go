package flexnet

// Integration tests exercise the whole stack end-to-end: heterogeneous
// topology, tenants, runtime deployment under live traffic, elastic
// scaling, data-plane migration, and teardown — the full §3 scenario of
// the paper in one run.

import (
	"context"
	"testing"
	"time"

	"flexnet/internal/experiments"
)

// datacenter builds a two-tier heterogeneous fabric:
//
//	h1,h2 — nicA(SoC) — torA(DRMT) — core(RMT) — torB(Tile) — h3,h4
func datacenter(t *testing.T) *Network {
	t.Helper()
	n, err := New(7).
		Switch("nicA", SoC).
		Switch("torA", DRMT).
		Switch("core", RMT).
		Switch("torB", Tile).
		Host("h1", "10.0.1.1").
		Host("h2", "10.0.1.2").
		Host("h3", "10.0.2.1").
		Host("h4", "10.0.2.2").
		Link("h1", "nicA").
		Link("h2", "nicA").
		Link("nicA", "torA").
		Link("torA", "core").
		Link("core", "torB").
		Link("torB", "h3").
		Link("torB", "h4").
		DRPC("torA", "172.16.0.1").
		DRPC("torB", "172.16.0.2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestIntegrationFullScenario(t *testing.T) {
	n := datacenter(t)

	// Steady traffic h1 → h3 throughout the whole scenario.
	src, err := n.NewSource("h1", FlowSpec{
		Dst: MustParseIP("10.0.2.1"), Proto: 17, SrcPort: 1000, DstPort: 2000, PacketLen: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.StartCBR(20000)
	n.RunFor(100 * time.Millisecond)
	if n.HostReceived("h3") == 0 {
		t.Fatal("baseline traffic not flowing")
	}

	// 1. Admit two tenants.
	if _, err := n.AddTenant("acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddTenant("globex"); err != nil {
		t.Fatal(err)
	}

	// 2. Deploy infrastructure monitoring plus per-tenant extensions,
	//    all at runtime, all while traffic flows.
	if _, err := n.Deploy(context.Background(), "flexnet://infra/monitor", AppSpec{
		Programs: []*Program{HeavyHitter("hh", 2, 512, 1<<60)},
		Path:     []string{"torA"},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Deploy(context.Background(), "flexnet://acme/defense", AppSpec{
		Programs: []*Program{SYNDefense("sd", 512, 5)},
		Tenant:   "acme",
		Path:     []string{"torA"},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Deploy(context.Background(), "flexnet://globex/limiter", AppSpec{
		Programs: []*Program{RateLimiter("rl", 8, 1_000_000, 2_000_000)},
		Tenant:   "globex",
		Path:     []string{"torB"},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Controller().Apps()); got != 3 {
		t.Fatalf("apps = %v", n.Controller().Apps())
	}

	// 3. Elastic scale-out of the monitor to the other ToR.
	if _, err := n.Scale(context.Background(), ScaleRequest{URI: "flexnet://infra/monitor", Segment: "hh", Device: "torB", Direction: ScaleDirOut}); err != nil {
		t.Fatal(err)
	}

	// 4. Migrate the monitor's primary from torA to torB via the data
	//    plane; its per-packet state must survive intact... primary is
	//    torA; migrate it (replica already on torB under the same name
	//    would collide — scale back in first).
	if _, err := n.Scale(context.Background(), ScaleRequest{URI: "flexnet://infra/monitor", Segment: "hh", Device: "torB", Direction: ScaleDirIn}); err != nil {
		t.Fatal(err)
	}
	rep, _, err := n.Migrate(context.Background(), MigrateRequest{URI: "flexnet://infra/monitor", Segment: "hh", Dst: "torB", DataPlane: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostUpdates != 0 {
		t.Fatalf("migration lost %d updates", rep.LostUpdates)
	}

	// 5. Tenant departure reclaims resources.
	before := n.Device("torA").Free()
	if err := n.DeleteTenant(context.Background(), "acme"); err != nil {
		t.Fatal(err)
	}
	if n.Device("torA").Free().SRAMBits <= before.SRAMBits {
		t.Fatal("tenant departure reclaimed nothing")
	}

	// 6. Traffic never stopped: zero infrastructure loss end-to-end.
	src.Stop()
	n.RunFor(50 * time.Millisecond)
	if n.HostReceived("h3") != src.Sent {
		t.Fatalf("lost traffic during scenario: %d of %d delivered", n.HostReceived("h3"), src.Sent)
	}
	if n.InfrastructureDrops() != 0 {
		t.Fatalf("infrastructure drops = %d", n.InfrastructureDrops())
	}
}

func TestIntegrationHeterogeneousPlacement(t *testing.T) {
	n := datacenter(t)
	// A datapath whose segments need different capabilities: the
	// compiler must split it across the right devices automatically.
	ccMonitor := NewProgram("ccmon").
		Requires(Capabilities{Transport: true}).
		Do(NewAsm().Ret().MustBuild()).
		MustBuild()
	aclProg := NewProgram("acl").
		Action("deny", 0, NewAsm().Drop().MustBuild()).
		Table(&TableSpec{
			Name:    "rules",
			Keys:    []TableKey{{Field: "ipv4.src", Kind: 2 /* ternary */, Bits: 32}},
			Actions: []string{"deny"},
			Size:    64,
		}).
		Apply("rules").
		MustBuild()
	// No device in this fabric offers Transport, so placement must fail
	// loudly for the transport segment...
	_, err := n.Deploy(context.Background(), "flexnet://infra/vertical", AppSpec{
		Programs: []*Program{ccMonitor, aclProg},
	}, DeployOptions{})
	if err == nil {
		t.Fatal("transport-requiring segment placed on a switch fabric")
	}
	// The ACL program alone places fine (on a TCAM-capable device).
	if _, err := n.Deploy(context.Background(), "flexnet://infra/acl", AppSpec{
		Programs: []*Program{aclProg},
	}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	dev := n.Controller().App("flexnet://infra/acl").Replicas["acl"][0]
	if dev == "" {
		t.Fatal("no placement recorded")
	}
}

func TestIntegrationExperimentSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	tables := experiments.All(1)
	if len(tables) != 20 {
		t.Fatalf("suite produced %d tables", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
		if tab.Finding == "" {
			t.Errorf("%s has no finding", tab.ID)
		}
		if tab.Render() == "" {
			t.Errorf("%s renders empty", tab.ID)
		}
	}
}
