package flexnet

// The chaos soak (DESIGN.md §10) is the repo's fault-tolerance gate: a
// seeded random fault schedule — device crashes and link failures —
// runs against committed apps under 50 kpps of traffic with the
// self-healing loop on. At the end, committed intent must hold exactly
// (zero drift, nothing pending), every recovery's MTTR must be bounded,
// and the full telemetry snapshot must be byte-identical across reruns
// and worker counts at the same seed and schedule. Scale the simulated
// duration with FLEXNET_CHAOS_SECONDS (default 8; the "simulated
// minutes" soak from the issue is the same test with a bigger knob).

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"flexnet/internal/faults"
	"flexnet/internal/plan"
)

func chaosSeconds() time.Duration {
	if v := os.Getenv("FLEXNET_CHAOS_SECONDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 8 * time.Second
}

// chaosSoak runs the scenario once and returns (healer stats asserted
// inside) the deterministic telemetry snapshot.
func chaosSoak(t *testing.T, seed int64, workers int, horizon time.Duration) string {
	t.Helper()
	nw := New(seed).
		Switch("s1", DRMT).
		Switch("s2", DRMT).
		Switch("s3", DRMT).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "s1").
		Link("s1", "s2").
		Link("s2", "h2").
		Link("s2", "s3").
		Workers(workers).
		MustBuild()
	if _, err := nw.Deploy(context.Background(), "flexnet://chaos/syn", AppSpec{
		Programs: []*Program{SYNDefense("syn", 1024, 10)},
		Path:     []string{"s1"},
	}, DeployOptions{}); err != nil {
		t.Fatalf("deploy syn: %v", err)
	}
	if _, err := nw.Deploy(context.Background(), "flexnet://chaos/hh", AppSpec{
		Programs: []*Program{HeavyHitter("hh", 2, 512, 1000)},
		Path:     []string{"s2"},
	}, DeployOptions{}); err != nil {
		t.Fatalf("deploy hh: %v", err)
	}
	healer := nw.StartSelfHealing(time.Millisecond)
	plane := nw.NewFaultPlane(seed + 77)
	sched := faults.Generate(seed+13, faults.GenSpec{
		Devices:        []string{"s1", "s2", "s3"},
		Links:          []string{"s1-s2", "s2-s3"},
		HorizonNs:      uint64(horizon),
		CrashMeanGapNs: uint64(400 * time.Millisecond),
		CrashDownNs:    uint64(10 * time.Millisecond),
		LinkMeanGapNs:  uint64(700 * time.Millisecond),
		LinkDownNs:     uint64(20 * time.Millisecond),
	})
	if len(sched.Events) == 0 {
		t.Fatal("empty fault schedule")
	}
	if err := plane.Apply(sched); err != nil {
		t.Fatalf("apply schedule: %v", err)
	}
	src, err := nw.NewSource("h1", FlowSpec{
		Dst: MustParseIP("10.0.0.2"), Proto: 17,
		SrcPort: 1000, DstPort: 2000, PacketLen: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.StartCBR(50000)
	// Settle long enough for the last crash (up to the horizon's edge)
	// to restart and reconcile.
	nw.RunFor(horizon + time.Second)
	src.Stop()

	crashes := plane.Injected[faults.KindDeviceCrash]
	if crashes == 0 {
		t.Fatal("schedule injected no crashes")
	}
	if pending := healer.Pending(); len(pending) != 0 {
		t.Fatalf("devices still pending reconciliation: %v", pending)
	}
	if drift := nw.IntentDrift(); len(drift) != 0 {
		t.Fatalf("committed intent lost: %v", drift)
	}
	if healer.Recovered() == 0 {
		t.Fatal("no recoveries recorded")
	}
	for i, m := range healer.MTTRs {
		// 10 ms restart + 1 ms scan + plan execution (~100 ms worst
		// observed); a second means recovery is wedged, not slow.
		if d := time.Duration(m); d > time.Second {
			t.Fatalf("MTTR[%d] = %v, want ≤ 1s", i, d)
		}
	}
	snap := nw.Stats().Format()
	if !strings.Contains(snap, "heal.mttr_ns") {
		t.Fatal("MTTR histogram missing from snapshot")
	}
	if !strings.Contains(snap, "faults.injected.device-crash") {
		t.Fatal("fault counters missing from snapshot")
	}
	return snap
}

func TestChaosSoak(t *testing.T) {
	horizon := chaosSeconds()
	serial := chaosSoak(t, 1, 1, horizon)
	again := chaosSoak(t, 1, 1, horizon)
	if serial != again {
		t.Fatal("same seed + schedule diverged across reruns")
	}
	parallel := chaosSoak(t, 1, 8, horizon)
	if serial != parallel {
		t.Fatal("worker count changed chaos telemetry")
	}
}

// cacheChaosSoak is the flow-cache variant of the soak: same fault
// pressure, but the transit switch s2 carries only the cacheable base
// routing pipeline, so live traffic is served from the megaflow cache
// between crashes while s1's stateful SYN defense exercises the
// uncacheable bypass. Returns the telemetry snapshot.
func cacheChaosSoak(t *testing.T, seed int64, cache bool, horizon time.Duration) string {
	t.Helper()
	bld := New(seed).FlowCache(cache).
		Switch("s1", DRMT).
		Switch("s2", DRMT).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "s1").
		Link("s1", "s2").
		Link("s2", "h2")
	nw := bld.MustBuild()
	if _, err := nw.Deploy(context.Background(), "flexnet://chaos/syn", AppSpec{
		Programs: []*Program{SYNDefense("syn", 1024, 10)},
		Path:     []string{"s1"},
	}, DeployOptions{}); err != nil {
		t.Fatalf("deploy syn: %v", err)
	}
	healer := nw.StartSelfHealing(time.Millisecond)
	plane := nw.NewFaultPlane(seed + 77)
	sched := faults.Generate(seed+13, faults.GenSpec{
		Devices:        []string{"s1", "s2"},
		Links:          []string{"s1-s2"},
		HorizonNs:      uint64(horizon),
		CrashMeanGapNs: uint64(400 * time.Millisecond),
		CrashDownNs:    uint64(10 * time.Millisecond),
		LinkMeanGapNs:  uint64(700 * time.Millisecond),
		LinkDownNs:     uint64(20 * time.Millisecond),
	})
	if err := plane.Apply(sched); err != nil {
		t.Fatalf("apply schedule: %v", err)
	}
	src, err := nw.NewSource("h1", FlowSpec{
		Dst: MustParseIP("10.0.0.2"), Proto: 17,
		SrcPort: 1000, DstPort: 2000, PacketLen: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.StartCBR(50000)
	nw.RunFor(horizon + time.Second)
	src.Stop()

	if pending := healer.Pending(); len(pending) != 0 {
		t.Fatalf("devices still pending reconciliation: %v", pending)
	}
	if drift := nw.IntentDrift(); len(drift) != 0 {
		t.Fatalf("committed intent lost: %v", drift)
	}
	if cache {
		if hits := nw.Metrics().CounterValue("flowcache.s2.hits"); hits == 0 {
			t.Fatal("soak never exercised the flow cache on s2")
		}
		if stale := nw.Metrics().CounterValue("flowcache.s2.stale_served"); stale != 0 {
			t.Fatalf("cache served %d stale-epoch packets", stale)
		}
		if inv := nw.Metrics().CounterValue("flowcache.s2.invalidations"); inv == 0 {
			t.Fatal("crashes committed no cache invalidations")
		}
	}
	return nw.Stats().Format()
}

// stripFlowCacheLines removes the flowcache.* instrument lines — the
// only output the cache is allowed to add.
func stripFlowCacheLines(snap string) string {
	lines := strings.Split(snap, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "flowcache.") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// TestChaosSoakFlowCache: under the full fault schedule, enabling the
// flow cache must not change a single byte of non-flowcache telemetry —
// crashes, recoveries, per-device packet counters, drops — and must
// never serve a stale-epoch packet (ISSUE 7 acceptance).
func TestChaosSoakFlowCache(t *testing.T) {
	horizon := chaosSeconds()
	off := cacheChaosSoak(t, 1, false, horizon)
	on := cacheChaosSoak(t, 1, true, horizon)
	if off != stripFlowCacheLines(on) {
		t.Fatal("flow cache changed non-flowcache chaos telemetry")
	}
}

// haChaosSoak is the leader-kill soak (DESIGN.md §15.5): a two-switch
// marker pipeline under 50 kpps with a 3-replica HA controller, a
// steady stream of two-device version swaps, and a schedule of
// leader-kill faults timed to land mid-plan. Gates: not one packet may
// observe a mixed configuration (a DSCP sum of 3 — one old switch, one
// new), committed intent must hold exactly, every failover must stay
// under four election timeouts, and the replayed audit chain must
// verify. Returns the deterministic telemetry snapshot.
func haChaosSoak(t *testing.T, seed int64, workers int, horizon time.Duration) string {
	t.Helper()
	uri := "flexnet://chaos/marker"
	nw := New(seed).
		Switch("s1", DRMT).
		Switch("s2", DRMT).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "s1").
		Link("s1", "s2").
		Link("s2", "h2").
		Workers(workers).
		MustBuild()
	nw.EnableHA(3, HAConfig{Seed: seed})
	if _, err := nw.Deploy(context.Background(), uri, AppSpec{
		Programs: []*Program{markerProgram(1)},
		Path:     []string{"s1"},
	}, DeployOptions{}); err != nil {
		t.Fatalf("deploy marker: %v", err)
	}
	if _, err := nw.Scale(context.Background(), ScaleRequest{
		URI: uri, Segment: "mark", Device: "s2", Direction: ScaleDirOut,
	}); err != nil {
		t.Fatalf("scale marker: %v", err)
	}

	// Leader kills every 600 ms, each revived 400 ms later — the window
	// covers whole elections, so kills land mid-plan and mid-election.
	plane := nw.NewFaultPlane(seed + 77)
	var evs []FaultEvent
	for at := 250 * time.Millisecond; at < horizon; at += 600 * time.Millisecond {
		evs = append(evs, FaultEvent{
			At: uint64(at), Kind: "leader-kill", DurationNs: uint64(400 * time.Millisecond),
		})
	}
	if err := plane.Apply(&FaultSchedule{Events: evs}); err != nil {
		t.Fatalf("apply leader-kill schedule: %v", err)
	}

	// Every packet crosses both marker replicas: a DSCP sum of 2·inc is
	// consistent, 3 is a mixed configuration and must never appear.
	dscp := map[uint64]uint64{}
	if err := nw.OnHostReceive("h2", func(p *Packet) { dscp[p.Field("ipv4.dscp")]++ }); err != nil {
		t.Fatal(err)
	}
	src := startUDP(t, nw, 50000)

	// Two-device version swaps aligned to the kill schedule: one
	// submitted 10 ms before each kill — a swap's prepare phase spans
	// ~38 ms, so the leader dies with the plan mid-prepare and Recover
	// must roll it back whole — and one 300 ms after, landing on the
	// elected standby as a clean version flip. Nothing may half-apply.
	inst := uri + "#mark"
	var outcomes, swaps int
	submitSwap := func() {
		inc := uint64(swaps%2) + 1
		nw.Controller().Executor().Execute(
			plan.New(fmt.Sprintf("chaos-swap-%d", swaps)).
				Swap("s1", inst, markerProgram(inc), nil).
				Swap("s2", inst, markerProgram(inc), nil),
			func(r *PlanReport) { outcomes++ })
		swaps++
	}
	// Schedule.At is relative to the Apply instant; mirror that base so
	// the pre-kill swap really is mid-prepare when the leader dies.
	for _, e := range evs {
		at := time.Duration(e.At)
		nw.After(at-10*time.Millisecond, submitSwap)
		nw.After(at+300*time.Millisecond, submitSwap)
	}
	nw.RunFor(horizon + 2*time.Second)
	src.Stop()
	nw.RunFor(10 * time.Millisecond)

	kills := plane.Injected["leader-kill"]
	if kills == 0 {
		t.Fatal("schedule injected no leader kills")
	}
	m := nw.Metrics()
	if got := m.CounterValue("ha.failovers"); got == 0 {
		t.Fatal("no failovers despite leader kills")
	}
	if resumed, rolled := m.CounterValue("ha.plans_resumed"), m.CounterValue("ha.plans_rolled_back"); resumed+rolled == 0 {
		t.Fatal("no kill ever landed mid-plan; soak is not exercising failover recovery")
	}
	if dscp[2] == 0 || dscp[4] == 0 {
		t.Fatalf("soak never observed both versions forwarding: tally %v", dscp)
	}
	if dscp[3] != 0 {
		t.Fatalf("%d packets observed a mixed configuration during failover", dscp[3])
	}
	if drift := nw.IntentDrift(); len(drift) != 0 {
		t.Fatalf("committed intent drifted: %v", drift)
	}
	if err := nw.Audit().Verify(); err != nil {
		t.Fatalf("audit chain broken: %v", err)
	}
	if err := nw.HA().LastErr(); err != nil {
		t.Fatalf("replayed shadow chain mismatched the leader's: %v", err)
	}
	bound := 4 * time.Duration(nw.HA().Group().Config().ElectionMaxNs)
	for i, d := range nw.HA().FailoverNs {
		if time.Duration(d) > bound {
			t.Fatalf("failover %d took %v, want ≤ %v", i, time.Duration(d), bound)
		}
	}
	if outcomes == 0 {
		t.Fatal("no swap plan ever resolved")
	}
	st := nw.HAStatus()
	if st.Frozen {
		t.Fatal("executor still frozen at end of soak")
	}
	snap := nw.Stats().Format()
	if !strings.Contains(snap, "ha.failover_ns") {
		t.Fatal("failover histogram missing from snapshot")
	}
	return snap
}

// TestChaosSoakLeaderKill is the hitless-failover gate: the leader-kill
// soak must hold its invariants and produce a byte-identical telemetry
// snapshot across reruns and worker counts.
func TestChaosSoakLeaderKill(t *testing.T) {
	horizon := chaosSeconds()
	serial := haChaosSoak(t, 1, 1, horizon)
	again := haChaosSoak(t, 1, 1, horizon)
	if serial != again {
		t.Fatal("same seed + schedule diverged across reruns")
	}
	parallel := haChaosSoak(t, 1, 8, horizon)
	if serial != parallel {
		t.Fatal("worker count changed leader-kill chaos telemetry")
	}
}
