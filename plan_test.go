package flexnet

// End-to-end tests for the transactional ChangePlan pipeline: epoch
// consistency under mid-commit faults (no packet may ever observe a
// mixed configuration), dry runs, sentinel error classification, and
// deterministic replay under a fixed seed.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"flexnet/internal/dataplane"
	"flexnet/internal/flexbpf"
	"flexnet/internal/plan"
)

// markerProgram stamps every IPv4 packet by adding inc to its DSCP
// field. With a replica on each switch of a two-switch line, a packet
// arrives with dscp = 2·inc — any other sum means the two switches ran
// different program versions on the same packet.
func markerProgram(inc uint64) *Program {
	body := NewAsm().
		LdField(0, "ipv4.dscp").
		AddImm(0, inc).
		StField("ipv4.dscp", 0).
		Ret().
		MustBuild()
	return NewProgram("mark").Headers("eth", "ipv4").Do(body).MustBuild()
}

// countProgram counts every packet in a 1-slot counter named
// "cnt_pkts" — the stateful payload for migration tests.
func countProgram() *Program {
	body := NewAsm().
		MovImm(0, 0).
		MovImm(1, 1).
		Count("cnt_pkts", 0, 1).
		Ret().
		MustBuild()
	return NewProgram("cnt").Counter("cnt_pkts", 1).Do(body).MustBuild()
}

// twoSwitchNet builds h1 — s1 — s2 — h2.
func twoSwitchNet(t *testing.T, seed int64) *Network {
	t.Helper()
	n, err := New(seed).
		Switch("s1", DRMT).
		Switch("s2", DRMT).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "s1").
		Link("s1", "s2").
		Link("s2", "h2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func startUDP(t *testing.T, n *Network, pps float64) *Source {
	t.Helper()
	src, err := n.NewSource("h1", FlowSpec{
		Dst: MustParseIP("10.0.0.2"), Proto: 17,
		SrcPort: 1000, DstPort: 2000, PacketLen: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.StartCBR(pps)
	return src
}

func TestCommitFaultNeverMixesConfigurations(t *testing.T) {
	n := twoSwitchNet(t, 5)
	uri := "flexnet://infra/marker"
	if _, err := n.Deploy(context.Background(), uri, AppSpec{Programs: []*Program{markerProgram(1)}, Path: []string{"s1"}}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Scale(context.Background(), ScaleRequest{URI: uri, Segment: "mark", Device: "s2", Direction: ScaleDirOut}); err != nil {
		t.Fatal(err)
	}

	// Tally DSCP sums at h2. With v1 (inc=1) on both switches every
	// packet shows 2; after a successful swap to v2 (inc=2) every packet
	// shows 4. A 3 is a packet that crossed one old and one new switch —
	// a mixed configuration, which must never happen.
	dscp := map[uint64]uint64{}
	if err := n.OnHostReceive("h2", func(p *Packet) { dscp[p.Field("ipv4.dscp")]++ }); err != nil {
		t.Fatal(err)
	}
	src := startUDP(t, n, 20000)
	n.RunFor(50 * time.Millisecond)
	if dscp[2] == 0 {
		t.Fatal("marker v1 not stamping packets")
	}

	// Swap both replicas to v2, but s2's ASIC faults at the commit
	// instant: s1 (already activated) must revert in the same instant.
	injected := errors.New("asic commit fault")
	n.Device("s2").SetFaultInjector(func(dev string, op dataplane.FaultOp) error {
		if op == dataplane.FaultCommit {
			return injected
		}
		return nil
	})
	instName := uri + "#mark"
	var rep *PlanReport
	n.Controller().Executor().Execute(
		plan.New("swap markers").
			Swap("s1", instName, markerProgram(2), nil).
			Swap("s2", instName, markerProgram(2), nil),
		func(r *PlanReport) { rep = r })
	n.RunFor(500 * time.Millisecond)

	if rep == nil {
		t.Fatal("swap plan did not finish")
	}
	if !errors.Is(rep.Err, injected) {
		t.Fatalf("err = %v", rep.Err)
	}
	if rep.Outcome != plan.OutcomeRolledBack || !rep.RolledBack {
		t.Fatalf("outcome %v rolledback %v", rep.Outcome, rep.RolledBack)
	}
	// Old configuration still forwarding after rollback.
	pre := dscp[2]
	n.RunFor(50 * time.Millisecond)
	if dscp[2] <= pre {
		t.Fatal("rolled-back network stopped stamping v1")
	}
	if dscp[3] != 0 || dscp[4] != 0 {
		t.Fatalf("mixed/new configurations observed during failed swap: dscp tally %v", dscp)
	}

	// Clear the fault and retry: now the swap commits, again with no
	// mixed packet — the flip is epoch-atomic across both devices.
	n.Device("s2").SetFaultInjector(nil)
	rep = nil
	n.Controller().Executor().Execute(
		plan.New("swap markers retry").
			Swap("s1", instName, markerProgram(2), nil).
			Swap("s2", instName, markerProgram(2), nil),
		func(r *PlanReport) { rep = r })
	n.RunFor(500 * time.Millisecond)
	src.Stop()
	n.RunFor(10 * time.Millisecond)

	if rep == nil || rep.Err != nil {
		t.Fatalf("retry failed: %+v", rep)
	}
	if dscp[4] == 0 {
		t.Fatal("marker v2 never stamped after successful swap")
	}
	if dscp[3] != 0 {
		t.Fatalf("mixed configuration observed: %d packets saw one old and one new switch", dscp[3])
	}
	if n.InfrastructureDrops() != 0 {
		t.Fatalf("infrastructure drops = %d", n.InfrastructureDrops())
	}
}

func TestMigrateFaultRollsBackToSource(t *testing.T) {
	n := twoSwitchNet(t, 6)
	uri := "flexnet://infra/counter"
	if _, err := n.Deploy(context.Background(), uri, AppSpec{Programs: []*Program{countProgram()}, Path: []string{"s1"}}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	src := startUDP(t, n, 20000)
	n.RunFor(50 * time.Millisecond)
	inst := n.Device("s1").Instance(uri + "#cnt")
	if inst == nil {
		t.Fatal("instance missing on s1")
	}
	preCount := inst.Store().Counter("cnt_pkts").Value(0)
	if preCount == 0 {
		t.Fatal("counter never incremented")
	}

	injected := errors.New("state transfer fault")
	n.Device("s2").SetFaultInjector(func(dev string, op dataplane.FaultOp) error {
		if op == dataplane.FaultMigrate {
			return injected
		}
		return nil
	})
	_, _, err := n.Migrate(context.Background(), MigrateRequest{URI: uri, Segment: "cnt", Dst: "s2", DataPlane: false})
	if !errors.Is(err, injected) {
		t.Fatalf("migrate err = %v", err)
	}
	rep := n.LastPlanReport()
	if rep == nil || rep.Outcome != plan.OutcomeRolledBack {
		t.Fatalf("plan report = %+v", rep)
	}
	// Source stays authoritative, destination install rolled back.
	if n.Device("s2").Instance(uri+"#cnt") != nil {
		t.Fatal("destination kept the instance after rollback")
	}
	sinst := n.Device("s1").Instance(uri + "#cnt")
	if sinst == nil {
		t.Fatal("source lost the instance")
	}
	if got := sinst.Store().Counter("cnt_pkts").Value(0); got < preCount {
		t.Fatalf("source state regressed: %d < %d", got, preCount)
	}
	if app := n.Controller().App(uri); app.Replicas["cnt"][0] != "s1" {
		t.Fatalf("primary moved to %s despite failure", app.Replicas["cnt"][0])
	}

	// Retry without the fault: migration completes and dst takes over.
	n.Device("s2").SetFaultInjector(nil)
	if _, _, err := n.Migrate(context.Background(), MigrateRequest{URI: uri, Segment: "cnt", Dst: "s2", DataPlane: false}); err != nil {
		t.Fatalf("retry migrate: %v", err)
	}
	src.Stop()
	n.RunFor(10 * time.Millisecond)
	if n.Device("s1").Instance(uri+"#cnt") != nil {
		t.Fatal("source instance not removed after flip")
	}
	dinst := n.Device("s2").Instance(uri + "#cnt")
	if dinst == nil {
		t.Fatal("destination missing instance after migration")
	}
	if dinst.Store().Counter("cnt_pkts").Value(0) < preCount {
		t.Fatal("migrated state lost")
	}
	if app := n.Controller().App(uri); app.Replicas["cnt"][0] != "s2" {
		t.Fatal("primary not moved to s2")
	}
}

func TestDryRunDoesNotMutate(t *testing.T) {
	n := twoSwitchNet(t, 7)
	uri := "flexnet://infra/counter"
	spec := AppSpec{Programs: []*Program{countProgram()}, Path: []string{"s1"}}

	t0 := n.Now()
	rep, err := n.Deploy(context.Background(), uri, spec, DeployOptions{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != plan.OutcomePlanned || rep.Err != nil {
		t.Fatalf("dry run report: %+v", rep)
	}
	if len(rep.Steps) != 1 || rep.Estimated <= 0 {
		t.Fatalf("steps %d estimated %v", len(rep.Steps), rep.Estimated)
	}
	if out := rep.Format(); !strings.Contains(out, "install") || !strings.Contains(out, uri) {
		t.Fatalf("report format: %s", out)
	}
	if n.Now() != t0 {
		t.Fatal("dry run advanced simulated time")
	}
	if len(n.Controller().Apps()) != 0 {
		t.Fatal("dry run registered the app")
	}
	if n.Device("s1").Instance(uri+"#cnt") != nil {
		t.Fatal("dry run installed the instance")
	}

	// The same plan then deploys for real.
	if _, err := n.Deploy(context.Background(), uri, spec, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	last := n.LastPlanReport()
	if last == nil || last.Outcome != plan.OutcomeSucceeded {
		t.Fatalf("last plan report: %+v", last)
	}

	// Dry-running removal and migration also leaves everything in place.
	if rep, err = n.Remove(context.Background(), uri, RemoveOptions{DryRun: true}); err != nil || rep.Err != nil {
		t.Fatalf("dry remove: %v / %+v", err, rep)
	}
	if _, rep, err = n.Migrate(context.Background(), MigrateRequest{URI: uri, Segment: "cnt", Dst: "s2", DryRun: true}); err != nil || rep.Err != nil {
		t.Fatalf("dry migrate: %v / %+v", err, rep)
	}
	if rep, err = n.Scale(context.Background(), ScaleRequest{URI: uri, Segment: "cnt", Device: "s2", Direction: ScaleDirOut, DryRun: true}); err != nil || rep.Err != nil {
		t.Fatalf("dry scale-out: %v / %+v", err, rep)
	}
	if len(n.Controller().Apps()) != 1 || n.Device("s1").Instance(uri+"#cnt") == nil {
		t.Fatal("dry runs mutated the network")
	}
	if n.Device("s2").Instance(uri+"#cnt") != nil {
		t.Fatal("dry migrate installed at destination")
	}
}

func TestSentinelErrorsClassifyFailures(t *testing.T) {
	n := twoSwitchNet(t, 8)

	if _, err := n.Remove(context.Background(), "flexnet://infra/ghost", RemoveOptions{}); !errors.Is(err, ErrNoSuchApp) {
		t.Fatalf("remove unknown app: %v", err)
	}
	if _, err := n.Scale(context.Background(), ScaleRequest{URI: "flexnet://infra/ghost", Segment: "x", Device: "s1", Direction: ScaleDirOut}); !errors.Is(err, ErrNoSuchApp) {
		t.Fatalf("scale-out unknown app: %v", err)
	}
	if _, _, err := n.Migrate(context.Background(), MigrateRequest{URI: "flexnet://infra/ghost", Segment: "x", Dst: "s2", DataPlane: false}); !errors.Is(err, ErrNoSuchApp) {
		t.Fatalf("migrate unknown app: %v", err)
	}

	// A program too large for any device: placement fails with
	// ErrInsufficientResources.
	huge := NewProgram("huge").
		Action("deny", 0, NewAsm().Drop().MustBuild()).
		Table(&TableSpec{
			Name:    "huge_rules",
			Keys:    []TableKey{{Field: "ipv4.src", Kind: flexbpf.MatchTernary, Bits: 32}},
			Actions: []string{"deny"},
			Size:    4_000_000,
		}).
		Apply("huge_rules").
		MustBuild()
	_, err := n.Deploy(context.Background(), "flexnet://infra/huge", AppSpec{Programs: []*Program{huge}}, DeployOptions{})
	if !errors.Is(err, ErrInsufficientResources) {
		t.Fatalf("oversized deploy: %v", err)
	}

	// An unverifiable program is rejected by the plan's validate phase.
	bad := &flexbpf.Program{Name: "bad", Actions: map[string]*flexbpf.Action{}}
	bad.Pipeline = []flexbpf.Stmt{{Apply: "ghost"}}
	_, err = n.Deploy(context.Background(), "flexnet://infra/bad", AppSpec{Programs: []*Program{bad}, Path: []string{"s1"}}, DeployOptions{})
	if !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("unverifiable deploy: %v", err)
	}

	// A down device fails validation with ErrDeviceDown.
	n.Device("s1").SetDown(true)
	_, err = n.Deploy(context.Background(), "flexnet://infra/down", AppSpec{Programs: []*Program{countProgram()}, Path: []string{"s1"}}, DeployOptions{})
	if !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("down-device deploy: %v", err)
	}
	n.Device("s1").SetDown(false)

	// Failed deployments must not leak registrations.
	if apps := n.Controller().Apps(); len(apps) != 0 {
		t.Fatalf("failed deploys leaked apps: %v", apps)
	}
}

// planScenario drives a fixed workload — deploy, traffic, swap,
// migration — and returns the full packet trace observed at h2.
func planScenario(t *testing.T) string {
	n := twoSwitchNet(t, 42)
	uri := "flexnet://infra/marker"
	var trace strings.Builder
	if err := n.OnHostReceive("h2", func(p *Packet) {
		fmt.Fprintf(&trace, "%d %d %d\n", n.Now().Nanoseconds(), p.FlowKey().Hash(), p.Field("ipv4.dscp"))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Deploy(context.Background(), uri, AppSpec{Programs: []*Program{markerProgram(1)}, Path: []string{"s1"}}, DeployOptions{}); err != nil {
		t.Fatal(err)
	}
	src := startUDP(t, n, 20000)
	n.RunFor(40 * time.Millisecond)
	n.Controller().Executor().Execute(
		plan.New("swap").Swap("s1", uri+"#mark", markerProgram(2), nil), nil)
	n.RunFor(100 * time.Millisecond)
	if _, _, err := n.Migrate(context.Background(), MigrateRequest{URI: uri, Segment: "mark", Dst: "s2", DataPlane: false}); err != nil {
		t.Fatal(err)
	}
	n.RunFor(40 * time.Millisecond)
	src.Stop()
	n.RunFor(10 * time.Millisecond)
	fmt.Fprintf(&trace, "end %d received %d\n", n.Now().Nanoseconds(), n.HostReceived("h2"))
	return trace.String()
}

func TestDeterministicReplay(t *testing.T) {
	a := planScenario(t)
	b := planScenario(t)
	if a != b {
		t.Fatal("identical seeds produced different packet traces")
	}
	if strings.Count(a, "\n") < 100 {
		t.Fatalf("trace suspiciously short:\n%s", a)
	}
}
