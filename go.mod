module flexnet

go 1.22
