GO ?= go

.PHONY: all build test race vet fmt check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt vet build race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
