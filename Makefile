GO ?= go

.PHONY: all build test race vet fmt lint spec-check check bench bench-parallel bench-steady bench-control benchdiff checkdocs expdiff docs cover profile scale

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs staticcheck at a zero-findings baseline (falls back to
# go vet + gofmt where staticcheck is not installed; see scripts/lint.sh).
lint:
	./scripts/lint.sh

# spec-check validates every example spec document: load + resolve +
# dry-run diff against a generated fat-tree fabric (the same stages
# `flexctl spec apply` runs before touching the network).
spec-check:
	$(GO) run ./cmd/flexbench -spec-check examples/specs

check: fmt vet lint spec-check build test race docs

bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' . ./internal/flexbpf ./internal/telemetry

# bench-parallel measures the sharded engine's throughput scaling across
# worker-pool sizes (compare pkts/s between the workers=N sub-benchmarks).
bench-parallel:
	$(GO) test -bench 'BenchmarkFabricParallel' -benchmem -benchtime 5x -run '^$$' .

# bench-steady measures the fast-path layers on the steady-state
# pipeline workload: serial vs batched vs batched+flow-cache (the
# before/after table in BENCH_PR7.md comes from this target).
bench-steady:
	$(GO) test -bench 'BenchmarkSteadyStatePipeline' -benchmem -benchtime 10x -run '^$$' .

# bench-control measures the control-plane fast path (DESIGN.md §13):
# per-op planning cost incremental vs full-recompute, plus the E18
# experiment end-to-end (the BENCH_PR8.md table comes from this target).
bench-control:
	$(GO) test -bench 'BenchmarkControlPlaneOps|BenchmarkE18ControlPlane' -benchmem -benchtime 5x -run '^$$' .

# profile runs the experiment suite under the CPU and heap profilers;
# inspect with `go tool pprof cpu.pprof`.
profile: build
	$(GO) run ./cmd/flexbench -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof mem.pprof"

# scale smoke-tests the incremental routing engine on a k=8 fat-tree:
# fail/restore a deterministic sample of links and verify every
# converged state is byte-identical to a full recompute (CI gate).
scale:
	$(GO) run ./cmd/flexbench -topo fat-tree:k=8 -seed 1

# benchdiff regenerates the deterministic flexbench output and fails if
# it drifted from the checked-in BENCH_BASELINE.md (CI gate).
benchdiff:
	./scripts/benchdiff.sh

# checkdocs fails unless every package carries a godoc package comment
# and every internal package's comment cites its DESIGN.md section.
checkdocs:
	./scripts/checkdocs.sh

# expdiff fails if EXPERIMENTS.md's measured section drifted from
# flexbench's deterministic output (CI gate, like benchdiff).
expdiff:
	./scripts/expdiff.sh

docs: checkdocs expdiff

# cover writes a coverage profile and prints the per-function summary;
# the last line is the total, which CI surfaces in the job log.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 25
