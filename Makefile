GO ?= go

.PHONY: all build test race vet fmt check bench benchdiff cover

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt vet build test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/telemetry

# benchdiff regenerates the deterministic flexbench output and fails if
# it drifted from the checked-in BENCH_BASELINE.md (CI gate).
benchdiff:
	./scripts/benchdiff.sh

# cover writes a coverage profile and prints the per-function summary;
# the last line is the total, which CI surfaces in the job log.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 25
