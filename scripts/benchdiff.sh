#!/bin/sh
# benchdiff.sh — regenerate the deterministic flexbench output and diff
# it against the checked-in baseline.
#
# flexbench's -o output is a pure function of the seed (all times are
# simulated; wall-clock lines go to stdout only), so any diff means a
# behaviour change: a cost-model edit, an experiment change, a telemetry
# change, or a lost determinism guarantee. CI fails on drift; refresh the
# baseline deliberately with:
#
#   go run ./cmd/flexbench -seed 1 -o BENCH_BASELINE.md
#
# and commit the result alongside the change that caused it.
set -eu

cd "$(dirname "$0")/.."

BASELINE=BENCH_BASELINE.md
CURRENT=$(mktemp /tmp/flexbench.XXXXXX.md)
trap 'rm -f "$CURRENT"' EXIT

if [ ! -f "$BASELINE" ]; then
    echo "benchdiff: missing $BASELINE (generate with: go run ./cmd/flexbench -seed 1 -o $BASELINE)" >&2
    exit 1
fi

echo "benchdiff: running flexbench (seed 1)..."
go run ./cmd/flexbench -seed 1 -o "$CURRENT" > /dev/null

if ! diff -u "$BASELINE" "$CURRENT"; then
    echo "" >&2
    echo "benchdiff: FAIL — flexbench output drifted from $BASELINE." >&2
    echo "If the change is intentional, refresh the baseline:" >&2
    echo "  go run ./cmd/flexbench -seed 1 -o $BASELINE" >&2
    exit 1
fi
echo "benchdiff: OK — output matches $BASELINE byte-for-byte."

# The parallel engine's contract: the worker-pool size changes wall
# clock only, never output. Re-run on an 8-worker pool and require the
# same bytes.
echo "benchdiff: running flexbench (seed 1, 8 workers)..."
go run ./cmd/flexbench -seed 1 -workers 8 -o "$CURRENT" > /dev/null

if ! diff -u "$BASELINE" "$CURRENT"; then
    echo "" >&2
    echo "benchdiff: FAIL — flexbench output depends on the worker count." >&2
    echo "The sharded engine must be deterministic for any -workers value;" >&2
    echo "this is a bug in the batch/merge ordering, not a baseline drift." >&2
    exit 1
fi
echo "benchdiff: OK — 8-worker output matches $BASELINE byte-for-byte."

# The flow cache's contract (DESIGN.md §12): enabling -flowcache may
# only ADD flowcache.* instrument lines to the telemetry summary; every
# experiment table, dev.* counter, and histogram must stay byte-
# identical. Re-run with the cache on, strip the flowcache.* lines
# (they are indented under the telemetry summary), and require the
# remainder to match the baseline exactly.
echo "benchdiff: running flexbench (seed 1, flow cache on)..."
go run ./cmd/flexbench -seed 1 -flowcache -o "$CURRENT" > /dev/null

FILTERED=$(mktemp /tmp/flexbench.XXXXXX.md)
trap 'rm -f "$CURRENT" "$FILTERED"' EXIT
grep -v '^[[:space:]]*flowcache\.' "$CURRENT" > "$FILTERED"

if ! diff -u "$BASELINE" "$FILTERED"; then
    echo "" >&2
    echo "benchdiff: FAIL — the flow cache changed non-flowcache output." >&2
    echo "Cache replay must reproduce verdicts, packet state, and the" >&2
    echo "Instrs/Lookups accounting exactly; this is a cache soundness" >&2
    echo "bug, not a baseline drift." >&2
    exit 1
fi
echo "benchdiff: OK — flow-cache output matches $BASELINE modulo flowcache.* lines."

# Perf-drift gate on the cached run's effectiveness: the E17 table's
# "pkts delivered" and "hit %" columns (cache-on rows) must stay within
# ±10% of the checked-in baseline. Byte-identity above makes equality
# the expected case; this gate states the tolerance explicitly so a
# deliberate baseline refresh that silently craters the hit rate still
# fails CI.
echo "benchdiff: checking E17 delivered/hit-rate drift (±10%)..."
if ! awk -F'|' '
    function trim(s) { gsub(/^[ \t]+|[ \t]+$/, "", s); return s }
    FNR == 1 { nf++; inE17 = 0 }
    /^## E17/ { inE17 = 1; next }
    /^Finding/ { inE17 = 0 }
    inE17 && NF >= 9 && trim($2) == "on" {
        flows = trim($3)
        pk[nf ":" flows] = trim($4) + 0
        hit[nf ":" flows] = trim($6) + 0
        seen[flows] = 1
    }
    END {
        fail = 0
        for (f in seen) {
            bp = pk[1 ":" f]; cp = pk[2 ":" f]
            bh = hit[1 ":" f]; ch = hit[2 ":" f]
            if (bp == 0 || bh == 0) {
                printf "benchdiff: E17 flows=%s missing from baseline\n", f
                fail = 1
                continue
            }
            if (cp < 0.9 * bp || cp > 1.1 * bp) {
                printf "benchdiff: E17 flows=%s pkts delivered drifted >10%%: %d vs baseline %d\n", f, cp, bp
                fail = 1
            }
            if (ch < 0.9 * bh || ch > 1.1 * bh) {
                printf "benchdiff: E17 flows=%s hit rate drifted >10%%: %.2f vs baseline %.2f\n", f, ch, bh
                fail = 1
            }
        }
        if (!fail && length(seen) == 0) {
            print "benchdiff: no E17 cache-on rows found"
            fail = 1
        }
        exit fail
    }' "$BASELINE" "$CURRENT"; then
    echo "" >&2
    echo "benchdiff: FAIL — flow-cache effectiveness drifted from $BASELINE." >&2
    exit 1
fi
echo "benchdiff: OK — E17 cache effectiveness within ±10% of baseline."

# Perf-drift gate on the control-plane fast path (DESIGN.md §13): E18's
# ops/s and p99 columns must stay within ±10% of the checked-in
# baseline, and the placement column must read "identical" on every row
# — the incremental planner is only allowed to be faster, never to
# place differently. As with E17, byte-identity above makes equality the
# expected case; this gate keeps a deliberate baseline refresh from
# silently regressing control-plane throughput.
echo "benchdiff: checking E18 ops/s + p99 drift (±10%)..."
if ! awk -F'|' '
    function trim(s) { gsub(/^[ \t]+|[ \t]+$/, "", s); return s }
    function lat_ns(s,   v) {
        v = s + 0
        if (s ~ /µs/) return v * 1e3
        if (s ~ /ms/) return v * 1e6
        if (s ~ /ns/) return v
        if (s ~ /s/)  return v * 1e9
        return v
    }
    FNR == 1 { nf++; inE18 = 0 }
    /^## E18 / { inE18 = 1; next }
    /^Finding/ { inE18 = 0 }
    inE18 && NF >= 13 && (trim($5) == "incremental" || trim($5) == "full") {
        key = trim($2) ":" trim($5)
        ops[nf ":" key] = trim($9) + 0
        p99[nf ":" key] = lat_ns(trim($11))
        seen[key] = 1
        if (nf == 2 && trim($13) != "identical") {
            printf "benchdiff: E18 %s placement = %s, want identical\n", key, trim($13)
            fail = 1
        }
    }
    END {
        for (key in seen) {
            bo = ops[1 ":" key]; co = ops[2 ":" key]
            bp = p99[1 ":" key]; cp = p99[2 ":" key]
            if (bo == 0 || bp == 0) {
                printf "benchdiff: E18 row %s missing from baseline\n", key
                fail = 1
                continue
            }
            if (co < 0.9 * bo || co > 1.1 * bo) {
                printf "benchdiff: E18 %s ops/s drifted >10%%: %.1f vs baseline %.1f\n", key, co, bo
                fail = 1
            }
            if (cp < 0.9 * bp || cp > 1.1 * bp) {
                printf "benchdiff: E18 %s p99 drifted >10%%: %.0fns vs baseline %.0fns\n", key, cp, bp
                fail = 1
            }
        }
        if (!fail && length(seen) == 0) {
            print "benchdiff: no E18 mode rows found"
            fail = 1
        }
        exit fail
    }' "$BASELINE" "$CURRENT"; then
    echo "" >&2
    echo "benchdiff: FAIL — control-plane fast path drifted from $BASELINE." >&2
    exit 1
fi
echo "benchdiff: OK — E18 control-plane throughput within ±10% of baseline."

# Perf-drift gate on declarative convergence (DESIGN.md §14): E19's
# plans column must match the baseline exactly (plan compilation is
# deterministic — any change in the batch count is a planner change,
# not noise), spec-mode plans must stay at or below 10% of the
# imperative replay's, and spec-mode convergence latency must stay
# within ±10% of the checked-in baseline.
echo "benchdiff: checking E19 plans (exact) + convergence drift (±10%)..."
if ! awk -F'|' '
    function trim(s) { gsub(/^[ \t]+|[ \t]+$/, "", s); return s }
    function lat_ns(s,   v) {
        v = s + 0
        if (s ~ /µs/) return v * 1e3
        if (s ~ /ms/) return v * 1e6
        if (s ~ /ns/) return v
        if (s ~ /s/)  return v * 1e9
        return v
    }
    FNR == 1 { nf++; inE19 = 0 }
    /^## E19 / { inE19 = 1; next }
    /^Finding/ { inE19 = 0 }
    inE19 && NF >= 11 && (trim($4) == "spec" || trim($4) == "imperative") {
        key = trim($2) ":" trim($4)
        plans[nf ":" key] = trim($6) + 0
        conv[nf ":" key] = lat_ns(trim($8))
        seen[key] = 1
        if (nf == 2 && trim($4) == "spec") {
            fab = trim($2)
            specplans[fab] = trim($6) + 0
            if (trim($9) + 0 != 0 || trim($10) + 0 != 0) {
                printf "benchdiff: E19 %s spec apply not hitless (drops=%s drift=%s)\n", fab, trim($9), trim($10)
                fail = 1
            }
        }
        if (nf == 2 && trim($4) == "imperative") imperplans[trim($2)] = trim($6) + 0
        if (nf == 2 && trim($11) != "match") {
            printf "benchdiff: E19 %s audit replay = %s, want match\n", key, trim($11)
            fail = 1
        }
    }
    END {
        for (key in seen) {
            bp = plans[1 ":" key]; cp = plans[2 ":" key]
            bc = conv[1 ":" key]; cc = conv[2 ":" key]
            if (bp == 0 || bc == 0) {
                printf "benchdiff: E19 row %s missing from baseline\n", key
                fail = 1
                continue
            }
            if (cp != bp) {
                printf "benchdiff: E19 %s plans changed: %d vs baseline %d\n", key, cp, bp
                fail = 1
            }
            if (key ~ /:spec$/ && (cc < 0.9 * bc || cc > 1.1 * bc)) {
                printf "benchdiff: E19 %s convergence drifted >10%%: %.0fns vs baseline %.0fns\n", key, cc, bc
                fail = 1
            }
        }
        for (fab in specplans) {
            if (imperplans[fab] == 0) continue
            if (specplans[fab] > 0.10 * imperplans[fab]) {
                printf "benchdiff: E19 %s spec plans %d exceed 10%% of imperative %d\n", fab, specplans[fab], imperplans[fab]
                fail = 1
            }
        }
        if (!fail && length(seen) == 0) {
            print "benchdiff: no E19 mode rows found"
            fail = 1
        }
        exit fail
    }' "$BASELINE" "$CURRENT"; then
    echo "" >&2
    echo "benchdiff: FAIL — declarative convergence drifted from $BASELINE." >&2
    exit 1
fi
echo "benchdiff: OK — E19 plan counts exact, spec convergence within ±10%, hitless, audit replay matches."

# Correctness + perf-drift gate on controller failover (DESIGN.md §15):
# every E20 row must show zero mixed-configuration packets, zero intent
# drift, and a matching audit replay — these are hard zeros, not
# tolerances. The kill scenarios must resolve the in-flight plan the
# deterministic way ("rolled back" pre-commit, "resumed" post-commit),
# and the failover time and delivered kpps must stay within ±10% of the
# checked-in baseline so a refresh cannot silently slow takeover or
# shed traffic.
echo "benchdiff: checking E20 failover invariants + failover-time/kpps drift (±10%)..."
if ! awk -F'|' '
    function trim(s) { gsub(/^[ \t]+|[ \t]+$/, "", s); return s }
    function lat_ns(s,   v) {
        v = s + 0
        if (s ~ /µs/) return v * 1e3
        if (s ~ /ms/) return v * 1e6
        if (s ~ /ns/) return v
        if (s ~ /s/)  return v * 1e9
        return v
    }
    FNR == 1 { nf++; inE20 = 0 }
    /^## E20 / { inE20 = 1; next }
    /^Finding/ { inE20 = 0 }
    inE20 && NF >= 10 && trim($2) ~ /kill/ && trim($2) != "scenario" {
        key = trim($2)
        fo[nf ":" key] = lat_ns(trim($4))
        kpps[nf ":" key] = trim($10) + 0
        seen[key] = 1
        if (nf == 2) {
            if (trim($7) + 0 != 0 || trim($8) + 0 != 0) {
                printf "benchdiff: E20 %s not hitless (mixed=%s drift=%s)\n", key, trim($7), trim($8)
                fail = 1
            }
            if (trim($9) != "match") {
                printf "benchdiff: E20 %s audit replay = %s, want match\n", key, trim($9)
                fail = 1
            }
            if (key ~ /mid-prepare/ && trim($3) != "rolled back") {
                printf "benchdiff: E20 %s outcome = %s, want rolled back\n", key, trim($3)
                fail = 1
            }
            if (key ~ /post-commit/ && trim($3) != "resumed") {
                printf "benchdiff: E20 %s outcome = %s, want resumed\n", key, trim($3)
                fail = 1
            }
        }
    }
    END {
        for (key in seen) {
            bk = kpps[1 ":" key]; ck = kpps[2 ":" key]
            if (bk == 0) {
                printf "benchdiff: E20 row %s missing from baseline\n", key
                fail = 1
                continue
            }
            if (ck < 0.9 * bk || ck > 1.1 * bk) {
                printf "benchdiff: E20 %s kpps drifted >10%%: %.2f vs baseline %.2f\n", key, ck, bk
                fail = 1
            }
            bf = fo[1 ":" key]; cf = fo[2 ":" key]
            if (key ~ /kill mid|kill post/ && bf > 0 && (cf < 0.9 * bf || cf > 1.1 * bf)) {
                printf "benchdiff: E20 %s failover time drifted >10%%: %.0fns vs baseline %.0fns\n", key, cf, bf
                fail = 1
            }
        }
        if (!fail && length(seen) < 3) {
            print "benchdiff: expected 3 E20 scenario rows, found " length(seen)
            fail = 1
        }
        exit fail
    }' "$BASELINE" "$CURRENT"; then
    echo "" >&2
    echo "benchdiff: FAIL — controller failover behaviour drifted from $BASELINE." >&2
    exit 1
fi
echo "benchdiff: OK — E20 failover hitless, plan resolution deterministic, failover time and kpps within ±10%."
