#!/bin/sh
# benchdiff.sh — regenerate the deterministic flexbench output and diff
# it against the checked-in baseline.
#
# flexbench's -o output is a pure function of the seed (all times are
# simulated; wall-clock lines go to stdout only), so any diff means a
# behaviour change: a cost-model edit, an experiment change, a telemetry
# change, or a lost determinism guarantee. CI fails on drift; refresh the
# baseline deliberately with:
#
#   go run ./cmd/flexbench -seed 1 -o BENCH_BASELINE.md
#
# and commit the result alongside the change that caused it.
set -eu

cd "$(dirname "$0")/.."

BASELINE=BENCH_BASELINE.md
CURRENT=$(mktemp /tmp/flexbench.XXXXXX.md)
trap 'rm -f "$CURRENT"' EXIT

if [ ! -f "$BASELINE" ]; then
    echo "benchdiff: missing $BASELINE (generate with: go run ./cmd/flexbench -seed 1 -o $BASELINE)" >&2
    exit 1
fi

echo "benchdiff: running flexbench (seed 1)..."
go run ./cmd/flexbench -seed 1 -o "$CURRENT" > /dev/null

if ! diff -u "$BASELINE" "$CURRENT"; then
    echo "" >&2
    echo "benchdiff: FAIL — flexbench output drifted from $BASELINE." >&2
    echo "If the change is intentional, refresh the baseline:" >&2
    echo "  go run ./cmd/flexbench -seed 1 -o $BASELINE" >&2
    exit 1
fi
echo "benchdiff: OK — output matches $BASELINE byte-for-byte."

# The parallel engine's contract: the worker-pool size changes wall
# clock only, never output. Re-run on an 8-worker pool and require the
# same bytes.
echo "benchdiff: running flexbench (seed 1, 8 workers)..."
go run ./cmd/flexbench -seed 1 -workers 8 -o "$CURRENT" > /dev/null

if ! diff -u "$BASELINE" "$CURRENT"; then
    echo "" >&2
    echo "benchdiff: FAIL — flexbench output depends on the worker count." >&2
    echo "The sharded engine must be deterministic for any -workers value;" >&2
    echo "this is a bug in the batch/merge ordering, not a baseline drift." >&2
    exit 1
fi
echo "benchdiff: OK — 8-worker output matches $BASELINE byte-for-byte."
