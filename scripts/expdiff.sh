#!/bin/sh
# expdiff.sh — keep EXPERIMENTS.md's measured section honest.
#
# Everything from "## E1 —" to the end of EXPERIMENTS.md is generated:
# it must be byte-identical to the tables flexbench prints at seed 1
# (the file's hand-written half — summary table, interpretation notes —
# is above that line and never generated). Any diff means the code's
# measured behaviour moved while the document stood still. CI fails on
# drift; refresh deliberately with:
#
#   go run ./cmd/flexbench -seed 1 -o /tmp/full.md
#   awk '/^## E1 /{on=1} /^## Telemetry summary/{on=0} on' /tmp/full.md \
#       > measured.md   # then splice over EXPERIMENTS.md's measured section
#
# and commit alongside the change that caused it.
set -eu

cd "$(dirname "$0")/.."

DOC=EXPERIMENTS.md
FULL=$(mktemp /tmp/expdiff-full.XXXXXX.md)
GEN=$(mktemp /tmp/expdiff-gen.XXXXXX.md)
CHECKED=$(mktemp /tmp/expdiff-doc.XXXXXX.md)
trap 'rm -f "$FULL" "$GEN" "$CHECKED"' EXIT

echo "expdiff: running flexbench (seed 1)..."
go run ./cmd/flexbench -seed 1 -o "$FULL" > /dev/null

# Generated side: the experiment tables, without the run header above
# them or the telemetry summary below (those live in BENCH_BASELINE.md).
awk '/^## E1 /{on=1} /^## Telemetry summary/{on=0} on' "$FULL" > "$GEN"

# Checked-in side: EXPERIMENTS.md from the first measured table to EOF.
awk '/^## E1 /{on=1} on' "$DOC" > "$CHECKED"

if [ ! -s "$GEN" ] || [ ! -s "$CHECKED" ]; then
    echo "expdiff: FAIL — could not locate the measured section ('## E1 —' marker) on both sides." >&2
    exit 1
fi

if ! diff -u "$CHECKED" "$GEN"; then
    echo "" >&2
    echo "expdiff: FAIL — $DOC's measured section drifted from flexbench's output." >&2
    echo "If the behaviour change is intentional, regenerate the section (see header of this script)." >&2
    exit 1
fi
echo "expdiff: OK — $DOC measured section matches flexbench output byte-for-byte."
