#!/bin/sh
# checkdocs.sh — gate the godoc surface.
#
# Every package must carry a package doc comment (a // block adjacent to
# the package clause in some non-test file), and every internal package's
# doc comment must point the reader at DESIGN.md — the design document is
# the spine of this repo, and a package that doesn't say which section
# explains it forces readers to reverse-engineer the mapping. CI fails on
# either omission.
set -eu

cd "$(dirname "$0")/.."

root=$(pwd)
fail=0

for dir in $(go list -f '{{.Dir}}' ./...); do
    rel=${dir#"$root"/}
    [ "$rel" = "$root" ] && rel=.

    # Concatenate every file's doc comment — the // block immediately
    # above the package clause (no blank line between them — that is
    # what godoc shows). Multiple files may carry doc paragraphs; the
    # DESIGN.md citation only has to appear in one of them.
    doc=""
    for f in "$dir"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        d=$(awk '
            /^package / { if (inc) for (i = 1; i <= n; i++) print buf[i]; exit }
            /^\/\//     { if (!inc) { inc = 1; n = 0 } buf[++n] = $0; next }
                        { inc = 0; n = 0 }
        ' "$f")
        if [ -n "$d" ]; then
            doc="$doc$d
"
        fi
    done

    if [ -z "$doc" ]; then
        echo "checkdocs: FAIL — package $rel has no doc comment adjacent to its package clause" >&2
        fail=1
        continue
    fi

    case "$rel" in
    internal/*)
        if ! printf '%s\n' "$doc" | grep -q 'DESIGN\.md'; then
            echo "checkdocs: FAIL — $rel's doc comment does not reference DESIGN.md" >&2
            fail=1
        fi
        ;;
    esac
done

if [ "$fail" -ne 0 ]; then
    echo "checkdocs: add a '// Package <name> ...' comment (internal packages: cite the DESIGN.md section)." >&2
    exit 1
fi
echo "checkdocs: OK — every package documented; internal packages cite DESIGN.md."
