#!/bin/sh
# lint.sh — static analysis gate (make lint, wired into make check).
#
# Prefers staticcheck (honnef.co/go/tools) when it is on PATH — the CI
# lint job installs a pinned version — and falls back to go vet plus a
# gofmt cleanliness check in environments without it, so `make check`
# never needs network access. The repo carries a zero-findings baseline:
# any staticcheck output fails the gate; suppress a justified finding
# with an inline //lint:ignore comment, never by loosening
# staticcheck.conf.
set -eu

cd "$(dirname "$0")/.."

# The root package's deprecation cycle is over: the pre-context wrapper
# methods were removed after one release behind "Deprecated:" markers,
# and no new ones may appear. Any Deprecated: marker in the public
# facade fails the gate — deprecate in a release note and delete in the
# next PR instead of letting markers accumulate.
deprecated=$(grep -n 'Deprecated:' ./*.go || true)
if [ -n "$deprecated" ]; then
    echo "lint: FAIL — Deprecated: markers in the root package (the facade carries no deprecated API):" >&2
    echo "$deprecated" >&2
    exit 1
fi
echo "lint: OK — no Deprecated: markers in the root package."

if command -v staticcheck >/dev/null 2>&1; then
    echo "lint: staticcheck $(staticcheck -version 2>/dev/null || true)"
    staticcheck ./...
    echo "lint: OK — staticcheck reports zero findings."
elif command -v golangci-lint >/dev/null 2>&1; then
    echo "lint: golangci-lint"
    golangci-lint run ./...
    echo "lint: OK — golangci-lint reports zero findings."
else
    echo "lint: staticcheck not found; falling back to go vet + gofmt" >&2
    go vet ./...
    out=$(gofmt -l .)
    if [ -n "$out" ]; then
        echo "lint: gofmt needed on:" >&2
        echo "$out" >&2
        exit 1
    fi
    echo "lint: OK — go vet and gofmt are clean (install staticcheck for the full gate)."
fi
