package flexnet

import (
	"context"
	"testing"
	"time"

	"flexnet/internal/flexbpf"
)

// TestSwapUnderLoadStress drives sustained traffic through every shard
// of a multi-device topology on an 8-worker pool while ChangePlans
// commit continuously: repeated data-plane migrations bounce a stateful
// app between switches, replicas scale out and in, and a live delta
// grows a map — all with packets in flight. Run under -race this is the
// proof that epoch-atomic swaps stay hitless when per-device batches
// execute on the worker pool: parallel compute phases must never touch
// state a concurrent commit mutates.
func TestSwapUnderLoadStress(t *testing.T) {
	n, err := New(7).
		Workers(8).
		Switch("s1", DRMT).
		Switch("s2", RMT).
		Switch("s3", Tile).
		Switch("s4", SoC).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "s1").
		Link("s1", "s2").
		Link("s2", "s3").
		Link("s3", "s4").
		Link("s4", "h2").
		DRPC("s1", "172.16.0.1").
		DRPC("s2", "172.16.0.2").
		DRPC("s3", "172.16.0.3").
		DRPC("s4", "172.16.0.4").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	uri := "flexnet://infra/mon"
	if _, err := n.Deploy(ctx, uri, AppSpec{
		Programs: []*Program{HeavyHitter("hh", 2, 128, 1<<60)},
		Path:     []string{"s1"},
	}, DeployOptions{}); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	src, err := n.NewSource("h1", FlowSpec{
		Dst: MustParseIP("10.0.0.2"), Proto: 6, SrcPort: 5, DstPort: 80, PacketLen: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.StartCBR(50000)
	n.RunFor(10 * time.Millisecond)

	// Bounce the app between devices while traffic flows: every round
	// commits an install+activate plan with a post-commit state move.
	devs := []string{"s2", "s3", "s4", "s1", "s2"}
	for i, dst := range devs {
		rep, _, err := n.Migrate(ctx, MigrateRequest{URI: uri, Segment: "hh", Dst: dst, DataPlane: true})
		if err != nil {
			t.Fatalf("migrate %d -> %s: %v", i, dst, err)
		}
		if rep.LostUpdates != 0 {
			t.Fatalf("migrate %d -> %s lost %d updates", i, dst, rep.LostUpdates)
		}
		n.RunFor(5 * time.Millisecond)
	}
	// Replica churn: scale out to every other switch, then back in.
	for _, dev := range []string{"s1", "s3", "s4"} {
		if _, err := n.Scale(ctx, ScaleRequest{URI: uri, Segment: "hh", Device: dev}); err != nil {
			t.Fatalf("scale-out %s: %v", dev, err)
		}
		n.RunFor(2 * time.Millisecond)
	}
	for _, dev := range []string{"s1", "s3", "s4"} {
		if _, err := n.Scale(ctx, ScaleRequest{URI: uri, Segment: "hh", Device: dev, Direction: ScaleDirIn}); err != nil {
			t.Fatalf("scale-in %s: %v", dev, err)
		}
		n.RunFor(2 * time.Millisecond)
	}
	// A live program update on the remaining replica, still under load:
	// grow the heavy-hitter's reported-set map 4096 -> 8192.
	grow := &Delta{Name: "grow", Ops: []DeltaOp{
		{RemoveMaps: "hh_seen"},
		{AddMap: &flexbpf.MapSpec{Name: "hh_seen", Kind: flexbpf.MapHash, MaxEntries: 8192, ValueBits: 1, Shared: true}},
	}}
	if _, _, err := n.Update(ctx, UpdateRequest{URI: uri, Segment: "hh", Delta: grow}); err != nil {
		t.Fatalf("live update under load: %v", err)
	}
	n.RunFor(10 * time.Millisecond)
	src.Stop()
	n.RunFor(10 * time.Millisecond)

	if got := n.HostReceived("h2"); got != src.Sent || got == 0 {
		t.Fatalf("h2 received %d of %d packets — swaps were not hitless", got, src.Sent)
	}
	if drops := n.InfrastructureDrops(); drops != 0 {
		t.Fatalf("infrastructure drops = %d under swap load", drops)
	}
	if n.Device("s2").Instance(uri+"#hh") == nil {
		t.Fatal("app not on s2 after the bounce sequence")
	}
}
