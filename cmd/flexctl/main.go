// Command flexctl is the CLI client for flexnetd: it translates
// command-line verbs into the daemon's JSON API and pretty-prints the
// responses — the operator's handle on the app-level management plane.
//
// Usage examples:
//
//	flexctl status
//	flexctl devices
//	flexctl deploy -uri flexnet://infra/defense -app syn-defense -path s1
//	flexctl traffic -src h1 -dst 10.0.0.2 -pps 20000
//	flexctl run -ms 500
//	flexctl migrate -uri flexnet://infra/defense -segment syn -device s2 -dp
//	flexctl remove -uri flexnet://infra/defense
//	flexctl -stats
//	flexctl -trace plan-3
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: flexctl [-addr host:port] <command> [flags]

commands:
  status                                   controller status
  devices                                  per-device resources
  deploy   -uri U -app NAME [-args a,b,c] [-path s1,s2] [-tenant T] [-dry-run]
  remove   -uri U [-dry-run]
  migrate  -uri U -segment S -device D [-dp] [-dry-run]
  scale-out -uri U -segment S -device D [-dry-run]
  scale-in  -uri U -segment S -device D [-dry-run]
  tenant-add    -tenant T
  tenant-remove -tenant T
  traffic  -src HOST -dst IP -pps N
  traffic-stop
  run      [-ms N]
  stats                                    telemetry snapshot (all metrics)
  trace    [-plan ID]                      plan execution trace (default: last)
  report                                   last executed plan's report

shortcuts: "flexctl -stats" = "flexctl stats";
           "flexctl -trace ID" = "flexctl trace -plan ID" ("last" = most recent)

builtin apps: syn-defense, heavy-hitter, rate-limiter, firewall, l2, int

-dry-run validates the operation's change plan and prints its steps and
cost estimate without mutating the network.
`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9177", "flexnetd address")
	statsFlag := flag.Bool("stats", false, "print the telemetry snapshot (shortcut for the stats command)")
	traceFlag := flag.String("trace", "", "print a plan's execution trace by ID; \"last\" = most recent")
	flag.Usage = usage
	flag.Parse()
	cmd := ""
	rest := flag.Args()
	switch {
	case *statsFlag:
		cmd = "stats"
	case *traceFlag != "":
		cmd = "trace"
	case len(rest) >= 1:
		cmd = rest[0]
		rest = rest[1:]
	default:
		usage()
	}

	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	uri := sub.String("uri", "", "app URI (flexnet://owner/name)")
	app := sub.String("app", "", "builtin app name")
	argsCSV := sub.String("args", "", "comma-separated numeric app args")
	pathCSV := sub.String("path", "", "comma-separated device path")
	segment := sub.String("segment", "", "app segment name")
	device := sub.String("device", "", "target device")
	tenant := sub.String("tenant", "", "tenant name")
	srcHost := sub.String("src", "", "traffic source host")
	dstIP := sub.String("dst", "", "traffic destination IP")
	pps := sub.Float64("pps", 10000, "packets per second")
	ms := sub.Int64("ms", 100, "simulated milliseconds to run")
	dp := sub.Bool("dp", false, "use data-plane state migration")
	dry := sub.Bool("dry-run", false, "validate the change plan without executing it")
	plan := sub.String("plan", "", "plan ID for trace (empty = most recent)")
	sub.Parse(rest)

	req := map[string]interface{}{"op": cmd}
	set := func(k string, v interface{}) {
		switch t := v.(type) {
		case string:
			if t != "" {
				req[k] = t
			}
		default:
			req[k] = v
		}
	}
	set("uri", *uri)
	set("app", *app)
	set("segment", *segment)
	set("device", *device)
	set("tenant", *tenant)
	set("src_host", *srcHost)
	set("dst_ip", *dstIP)
	if cmd == "traffic" {
		req["pps"] = *pps
	}
	if cmd == "run" {
		req["millis"] = *ms
	}
	if *dp {
		req["data_plane"] = true
	}
	if *dry {
		req["dry_run"] = true
	}
	if *argsCSV != "" {
		var args []uint64
		for _, p := range strings.Split(*argsCSV, ",") {
			var v uint64
			if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
				fmt.Fprintf(os.Stderr, "flexctl: bad -args value %q\n", p)
				os.Exit(1)
			}
			args = append(args, v)
		}
		req["args"] = args
	}
	if *pathCSV != "" {
		req["path"] = strings.Split(*pathCSV, ",")
	}
	if cmd == "trace" {
		id := *plan
		if id == "" && *traceFlag != "" && *traceFlag != "last" {
			id = *traceFlag
		}
		set("plan", id)
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexctl: connect %s: %v\n", *addr, err)
		os.Exit(1)
	}
	defer conn.Close()
	raw, _ := json.Marshal(req)
	if _, err := conn.Write(append(raw, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "flexctl: send: %v\n", err)
		os.Exit(1)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexctl: read: %v\n", err)
		os.Exit(1)
	}
	var resp struct {
		OK    bool            `json:"ok"`
		Error string          `json:"error"`
		Data  json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "flexctl: malformed response: %v\n", err)
		os.Exit(1)
	}
	if !resp.OK {
		fmt.Fprintf(os.Stderr, "flexctl: %s\n", resp.Error)
		os.Exit(1)
	}
	if len(resp.Data) > 0 {
		switch cmd {
		case "stats":
			if out, ok := renderStats(resp.Data); ok {
				fmt.Print(out)
				return
			}
		case "trace":
			if out, ok := renderTrace(resp.Data); ok {
				fmt.Print(out)
				return
			}
		}
		var pretty interface{}
		json.Unmarshal(resp.Data, &pretty)
		out, _ := json.MarshalIndent(pretty, "", "  ")
		fmt.Println(string(out))
	} else {
		fmt.Println("ok")
	}
}

// renderStats pretty-prints a telemetry snapshot (falls back to raw JSON
// on decode failure).
func renderStats(raw json.RawMessage) (string, bool) {
	var s struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"gauges"`
		Histograms []struct {
			Name    string   `json:"name"`
			Count   uint64   `json:"count"`
			Sum     int64    `json:"sum"`
			Bounds  []int64  `json:"bounds"`
			Buckets []uint64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", false
	}
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, p := range s.Counters {
			fmt.Fprintf(&b, "  %-44s %d\n", p.Name, p.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, p := range s.Gauges {
			fmt.Fprintf(&b, "  %-44s %d\n", p.Name, p.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-44s count=%d sum=%d\n", h.Name, h.Count, h.Sum)
		}
	}
	return b.String(), true
}

// renderTrace pretty-prints a plan execution trace.
func renderTrace(raw json.RawMessage) (string, bool) {
	var t struct {
		ID      string `json:"id"`
		Label   string `json:"label"`
		Outcome string `json:"outcome"`
		StartNs int64  `json:"start_ns"`
		EndNs   int64  `json:"end_ns"`
		Spans   []struct {
			Name    string `json:"name"`
			Device  string `json:"device"`
			StartNs int64  `json:"start_ns"`
			EndNs   int64  `json:"end_ns"`
			Err     string `json:"error"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &t); err != nil || t.ID == "" {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %q: %s, %v → %v (%v)\n", t.ID, t.Label, t.Outcome,
		time.Duration(t.StartNs), time.Duration(t.EndNs), time.Duration(t.EndNs-t.StartNs))
	for _, sp := range t.Spans {
		name := sp.Name
		if sp.Device != "" {
			name += ":" + sp.Device
		}
		fmt.Fprintf(&b, "  %-28s %12v +%v", name, time.Duration(sp.StartNs), time.Duration(sp.EndNs-sp.StartNs))
		if sp.Err != "" {
			fmt.Fprintf(&b, " — %s", sp.Err)
		}
		b.WriteByte('\n')
	}
	return b.String(), true
}
