// Command flexctl is the CLI client for flexnetd: it translates
// subcommands into the daemon's JSON API and pretty-prints the
// responses — the operator's handle on the app-level management plane.
//
// Each subcommand maps 1:1 onto one of the flexnet control requests
// (DeployOptions, MigrateRequest, ScaleRequest, ...) and declares only
// the flags that request actually has.
//
// Usage examples:
//
//	flexctl status
//	flexctl devices
//	flexctl deploy -uri flexnet://infra/defense -app syn-defense -path s1
//	flexctl traffic -src h1 -dst 10.0.0.2 -pps 20000
//	flexctl run -ms 500
//	flexctl migrate -uri flexnet://infra/defense -segment syn -device s2 -dp
//	flexctl remove -uri flexnet://infra/defense
//	flexctl stats
//	flexctl trace -plan plan-3
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"flexnet/internal/api"
)

// request is the JSON body sent to flexnetd.
type request map[string]interface{}

// command is one flexctl subcommand: its own FlagSet (declaring only
// the flags its request has) plus a builder that turns parsed flags
// into the wire request.
type command struct {
	name    string
	summary string
	fs      *flag.FlagSet
	build   func() (request, error)
}

func newCommand(name, summary string) *command {
	return &command{
		name:    name,
		summary: summary,
		fs:      flag.NewFlagSet("flexctl "+name, flag.ExitOnError),
	}
}

// splitCSV parses a comma-separated list, trimming blanks.
func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseArgsCSV parses the numeric app-argument list.
func parseArgsCSV(s string) ([]uint64, error) {
	var args []uint64
	for _, p := range splitCSV(s) {
		var v uint64
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil {
			return nil, fmt.Errorf("bad -args value %q", p)
		}
		args = append(args, v)
	}
	return args, nil
}

// commands builds the full subcommand table.
func commands() map[string]*command {
	cmds := map[string]*command{}
	add := func(c *command) { cmds[c.name] = c }

	{
		c := newCommand(api.OpStatus, api.Summary(api.OpStatus))
		c.build = func() (request, error) { return request{"op": api.OpStatus}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpDevices, api.Summary(api.OpDevices))
		c.build = func() (request, error) { return request{"op": api.OpDevices}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpDeploy, api.Summary(api.OpDeploy))
		uri := c.fs.String("uri", "", "app URI (flexnet://owner/name)")
		app := c.fs.String("app", "", "builtin app name (syn-defense, heavy-hitter, rate-limiter, firewall, l2, int)")
		args := c.fs.String("args", "", "comma-separated numeric app args")
		path := c.fs.String("path", "", "comma-separated device path restricting placement")
		tenant := c.fs.String("tenant", "", "owning tenant")
		dry := c.fs.Bool("dry-run", false, "validate the change plan without executing it")
		c.build = func() (request, error) {
			req := request{"op": api.OpDeploy, "uri": *uri, "app": *app}
			if a, err := parseArgsCSV(*args); err != nil {
				return nil, err
			} else if len(a) > 0 {
				req["args"] = a
			}
			if p := splitCSV(*path); len(p) > 0 {
				req["path"] = p
			}
			if *tenant != "" {
				req["tenant"] = *tenant
			}
			if *dry {
				req["dry_run"] = true
			}
			return req, nil
		}
		add(c)
	}
	{
		c := newCommand(api.OpRemove, api.Summary(api.OpRemove))
		uri := c.fs.String("uri", "", "app URI")
		dry := c.fs.Bool("dry-run", false, "validate the change plan without executing it")
		c.build = func() (request, error) {
			req := request{"op": api.OpRemove, "uri": *uri}
			if *dry {
				req["dry_run"] = true
			}
			return req, nil
		}
		add(c)
	}
	{
		c := newCommand(api.OpMigrate, api.Summary(api.OpMigrate))
		uri := c.fs.String("uri", "", "app URI")
		segment := c.fs.String("segment", "", "app segment name")
		device := c.fs.String("device", "", "destination device")
		dp := c.fs.Bool("dp", false, "use data-plane state migration")
		dry := c.fs.Bool("dry-run", false, "validate the change plan without executing it")
		c.build = func() (request, error) {
			req := request{"op": api.OpMigrate, "uri": *uri, "segment": *segment, "device": *device}
			if *dp {
				req["data_plane"] = true
			}
			if *dry {
				req["dry_run"] = true
			}
			return req, nil
		}
		add(c)
	}
	for _, dir := range []string{api.OpScaleOut, api.OpScaleIn} {
		dir := dir
		c := newCommand(dir, api.Summary(dir))
		uri := c.fs.String("uri", "", "app URI")
		segment := c.fs.String("segment", "", "app segment name")
		device := c.fs.String("device", "", "target device")
		dry := c.fs.Bool("dry-run", false, "validate the change plan without executing it")
		c.build = func() (request, error) {
			req := request{"op": dir, "uri": *uri, "segment": *segment, "device": *device}
			if *dry {
				req["dry_run"] = true
			}
			return req, nil
		}
		add(c)
	}
	{
		c := newCommand(api.OpTenantAdd, api.Summary(api.OpTenantAdd))
		tenant := c.fs.String("tenant", "", "tenant name")
		c.build = func() (request, error) { return request{"op": api.OpTenantAdd, "tenant": *tenant}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpTenantRemove, api.Summary(api.OpTenantRemove))
		tenant := c.fs.String("tenant", "", "tenant name")
		c.build = func() (request, error) { return request{"op": api.OpTenantRemove, "tenant": *tenant}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpTraffic, api.Summary(api.OpTraffic))
		src := c.fs.String("src", "", "traffic source host")
		dst := c.fs.String("dst", "", "traffic destination IP")
		pps := c.fs.Float64("pps", 10000, "packets per second")
		c.build = func() (request, error) {
			return request{"op": api.OpTraffic, "src_host": *src, "dst_ip": *dst, "pps": *pps}, nil
		}
		add(c)
	}
	{
		c := newCommand(api.OpTrafficStop, api.Summary(api.OpTrafficStop))
		c.build = func() (request, error) { return request{"op": api.OpTrafficStop}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpRun, api.Summary(api.OpRun))
		ms := c.fs.Int64("ms", 100, "simulated milliseconds to run")
		c.build = func() (request, error) { return request{"op": api.OpRun, "millis": *ms}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpStats, api.Summary(api.OpStats))
		c.build = func() (request, error) { return request{"op": api.OpStats}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpTrace, api.Summary(api.OpTrace))
		plan := c.fs.String("plan", "", "plan ID (empty = most recent)")
		c.build = func() (request, error) {
			req := request{"op": api.OpTrace}
			if *plan != "" && *plan != "last" {
				req["plan"] = *plan
			}
			return req, nil
		}
		add(c)
	}
	{
		c := newCommand(api.OpReport, api.Summary(api.OpReport))
		c.build = func() (request, error) { return request{"op": api.OpReport}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpFaults, api.Summary(api.OpFaults))
		file := c.fs.String("file", "", "path to a fault schedule ({\"seed\": N, \"events\": [...]}; \"-\" = stdin)")
		c.build = func() (request, error) {
			if *file == "" {
				return nil, fmt.Errorf("faults needs -file (see README \"Operations runbook\")")
			}
			var data []byte
			var err error
			if *file == "-" {
				data, err = io.ReadAll(os.Stdin)
			} else {
				data, err = os.ReadFile(*file)
			}
			if err != nil {
				return nil, err
			}
			var sched json.RawMessage
			if err := json.Unmarshal(data, &sched); err != nil {
				return nil, fmt.Errorf("bad schedule JSON: %w", err)
			}
			return request{"op": api.OpFaults, "faults": sched}, nil
		}
		add(c)
	}
	{
		c := newCommand(api.OpHeal, api.Summary(api.OpHeal))
		ms := c.fs.Int64("ms", 5, "reconciliation scan period (simulated milliseconds)")
		c.build = func() (request, error) { return request{"op": api.OpHeal, "millis": *ms}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpHealStatus, api.Summary(api.OpHealStatus))
		c.build = func() (request, error) { return request{"op": api.OpHealStatus}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpSpecApply, api.Summary(api.OpSpecApply))
		file := c.fs.String("file", "", "declarative spec document (YAML or JSON; \"-\" = stdin)")
		dry := c.fs.Bool("dry-run", false, "compute the diff and validate without executing")
		maxPlans := c.fs.Int("max-plans", 0, "bound batched plans per wave (0 = server default)")
		c.build = func() (request, error) {
			data, err := readFileArg(*file, "spec apply")
			if err != nil {
				return nil, err
			}
			req := request{"op": api.OpSpecApply, "spec": string(data)}
			if *dry {
				req["dry_run"] = true
			}
			if *maxPlans > 0 {
				req["max_plans"] = *maxPlans
			}
			return req, nil
		}
		add(c)
	}
	{
		c := newCommand(api.OpSpecDiff, api.Summary(api.OpSpecDiff))
		file := c.fs.String("file", "", "declarative spec document (YAML or JSON; \"-\" = stdin)")
		c.build = func() (request, error) {
			data, err := readFileArg(*file, "spec diff")
			if err != nil {
				return nil, err
			}
			return request{"op": api.OpSpecDiff, "spec": string(data)}, nil
		}
		add(c)
	}
	{
		c := newCommand(api.OpSpecStatus, api.Summary(api.OpSpecStatus))
		c.build = func() (request, error) { return request{"op": api.OpSpecStatus}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpAudit, api.Summary(api.OpAudit))
		n := c.fs.Int("n", 10, "number of trailing records to show")
		c.build = func() (request, error) { return request{"op": api.OpAudit, "limit": *n}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpAuditVerify, api.Summary(api.OpAuditVerify))
		c.build = func() (request, error) { return request{"op": api.OpAuditVerify}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpAuditReplay, api.Summary(api.OpAuditReplay))
		c.build = func() (request, error) { return request{"op": api.OpAuditReplay}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpHAStatus, api.Summary(api.OpHAStatus))
		c.build = func() (request, error) { return request{"op": api.OpHAStatus}, nil }
		add(c)
	}
	{
		c := newCommand(api.OpHAFailover, api.Summary(api.OpHAFailover))
		c.build = func() (request, error) { return request{"op": api.OpHAFailover}, nil }
		add(c)
	}
	return cmds
}

// readFileArg reads a -file argument ("-" = stdin).
func readFileArg(path, what string) ([]byte, error) {
	if path == "" {
		return nil, fmt.Errorf("%s needs -file (\"-\" = stdin)", what)
	}
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func usage(cmds map[string]*command) {
	names := make([]string, 0, len(cmds))
	for n := range cmds {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "usage: flexctl [-addr host:port] <command> [flags]\n\ncommands:\n")
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", n, cmds[n].summary)
	}
	fmt.Fprintf(os.Stderr, `
Run "flexctl <command> -h" for that command's flags.

verb groups: "flexctl spec apply|diff|status",
             "flexctl audit [verify|replay]", and
             "flexctl ha [status|failover]" join onto the dashed
             command names above ("flexctl spec" = "flexctl spec-status",
             "flexctl ha" = "flexctl ha-status")

shortcuts: "flexctl -stats" = "flexctl stats";
           "flexctl -trace ID" = "flexctl trace -plan ID" ("last" = most recent)

-dry-run (deploy/remove/migrate/scale-*) validates the operation's
change plan and prints its steps and cost estimate without mutating
the network.
`)
	os.Exit(2)
}

func main() {
	cmds := commands()
	addr := flag.String("addr", "127.0.0.1:9177", "flexnetd address")
	statsFlag := flag.Bool("stats", false, "print the telemetry snapshot (shortcut for the stats command)")
	traceFlag := flag.String("trace", "", "print a plan's execution trace by ID; \"last\" = most recent")
	flag.Usage = func() { usage(cmds) }
	flag.Parse()

	name := ""
	rest := flag.Args()
	switch {
	case *statsFlag:
		name = "stats"
	case *traceFlag != "":
		name = "trace"
		if *traceFlag != "last" {
			rest = []string{"-plan", *traceFlag}
		}
	case len(rest) >= 1:
		name = rest[0]
		rest = rest[1:]
		// Verb groups: "flexctl spec apply", "flexctl audit verify" and
		// "flexctl ha status" join onto the canonical dashed op names.
		if (name == "spec" || name == "audit" || name == "ha") && len(rest) >= 1 {
			if sub := name + "-" + rest[0]; cmds[sub] != nil {
				name = sub
				rest = rest[1:]
			}
		}
		if name == "spec" {
			name = api.OpSpecStatus
		}
		if name == "ha" {
			name = api.OpHAStatus
		}
	default:
		usage(cmds)
	}
	cmd := cmds[name]
	if cmd == nil {
		fmt.Fprintf(os.Stderr, "flexctl: unknown command %q\n\n", name)
		usage(cmds)
	}
	cmd.fs.Parse(rest)
	req, err := cmd.build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexctl: %v\n", err)
		os.Exit(1)
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexctl: connect %s: %v\n", *addr, err)
		os.Exit(1)
	}
	defer conn.Close()
	raw, _ := json.Marshal(req)
	if _, err := conn.Write(append(raw, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "flexctl: send: %v\n", err)
		os.Exit(1)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexctl: read: %v\n", err)
		os.Exit(1)
	}
	var resp struct {
		OK      bool            `json:"ok"`
		Error   string          `json:"error"`
		Data    json.RawMessage `json:"data"`
		Warning string          `json:"warning"`
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "flexctl: malformed response: %v\n", err)
		os.Exit(1)
	}
	if resp.Warning != "" {
		fmt.Fprintf(os.Stderr, "flexctl: warning: %s\n", resp.Warning)
	}
	if !resp.OK {
		fmt.Fprintf(os.Stderr, "flexctl: %s\n", resp.Error)
		os.Exit(1)
	}
	if len(resp.Data) > 0 {
		switch name {
		case "stats":
			if out, ok := renderStats(resp.Data); ok {
				fmt.Print(out)
				return
			}
		case "trace":
			if out, ok := renderTrace(resp.Data); ok {
				fmt.Print(out)
				return
			}
		}
		var pretty interface{}
		json.Unmarshal(resp.Data, &pretty)
		out, _ := json.MarshalIndent(pretty, "", "  ")
		fmt.Println(string(out))
	} else {
		fmt.Println("ok")
	}
}

// renderStats pretty-prints a telemetry snapshot (falls back to raw JSON
// on decode failure).
func renderStats(raw json.RawMessage) (string, bool) {
	var s struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"gauges"`
		Histograms []struct {
			Name    string   `json:"name"`
			Count   uint64   `json:"count"`
			Sum     int64    `json:"sum"`
			Bounds  []int64  `json:"bounds"`
			Buckets []uint64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", false
	}
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, p := range s.Counters {
			fmt.Fprintf(&b, "  %-44s %d\n", p.Name, p.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, p := range s.Gauges {
			fmt.Fprintf(&b, "  %-44s %d\n", p.Name, p.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-44s count=%d sum=%d\n", h.Name, h.Count, h.Sum)
		}
	}
	return b.String(), true
}

// renderTrace pretty-prints a plan execution trace.
func renderTrace(raw json.RawMessage) (string, bool) {
	var t struct {
		ID      string `json:"id"`
		Label   string `json:"label"`
		Outcome string `json:"outcome"`
		StartNs int64  `json:"start_ns"`
		EndNs   int64  `json:"end_ns"`
		Spans   []struct {
			Name    string `json:"name"`
			Device  string `json:"device"`
			StartNs int64  `json:"start_ns"`
			EndNs   int64  `json:"end_ns"`
			Err     string `json:"error"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &t); err != nil || t.ID == "" {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %q: %s, %v → %v (%v)\n", t.ID, t.Label, t.Outcome,
		time.Duration(t.StartNs), time.Duration(t.EndNs), time.Duration(t.EndNs-t.StartNs))
	for _, sp := range t.Spans {
		name := sp.Name
		if sp.Device != "" {
			name += ":" + sp.Device
		}
		fmt.Fprintf(&b, "  %-28s %12v +%v", name, time.Duration(sp.StartNs), time.Duration(sp.EndNs-sp.StartNs))
		if sp.Err != "" {
			fmt.Fprintf(&b, " — %s", sp.Err)
		}
		b.WriteByte('\n')
	}
	return b.String(), true
}
