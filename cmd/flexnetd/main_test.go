package main

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"flexnet"
)

func demoServer(t *testing.T) *Server {
	t.Helper()
	topo := &Topology{}
	if err := json.Unmarshal([]byte(demoTopology), topo); err != nil {
		t.Fatal(err)
	}
	nw, err := buildNetwork(topo)
	if err != nil {
		t.Fatal(err)
	}
	return &Server{net: nw, sources: map[string]*flexnet.Source{}}
}

func TestArchByName(t *testing.T) {
	for name, want := range map[string]flexnet.Arch{
		"rmt": flexnet.RMT, "DRMT": flexnet.DRMT, "tile": flexnet.Tile,
		"elasticpipe": flexnet.ElasticPipe, "soc": flexnet.SoC, "host": flexnet.Host,
	} {
		got, err := archByName(name)
		if err != nil || got != want {
			t.Errorf("archByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := archByName("quantum"); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestHandleLifecycle(t *testing.T) {
	s := demoServer(t)

	r := s.handle(&Request{Op: "status"})
	if !r.OK {
		t.Fatalf("status: %v", r.Error)
	}

	r = s.handle(&Request{Op: "deploy", URI: "flexnet://infra/d", App: "syn-defense", Args: []uint64{128, 5}, Path: []string{"s1"}})
	if !r.OK {
		t.Fatalf("deploy: %v", r.Error)
	}
	r = s.handle(&Request{Op: "deploy", URI: "flexnet://infra/d", App: "syn-defense"})
	if r.OK {
		t.Fatal("duplicate deploy accepted")
	}
	r = s.handle(&Request{Op: "deploy", URI: "flexnet://infra/x", App: "no-such-app"})
	if r.OK || !strings.Contains(r.Error, "unknown builtin") {
		t.Fatalf("bad app: %+v", r)
	}

	r = s.handle(&Request{Op: "devices"})
	if !r.OK {
		t.Fatalf("devices: %v", r.Error)
	}

	r = s.handle(&Request{Op: "traffic", SrcHost: "h1", DstIP: "10.0.0.2", PPS: 1000})
	if !r.OK {
		t.Fatalf("traffic: %v", r.Error)
	}
	r = s.handle(&Request{Op: "run", Millis: 200})
	if !r.OK {
		t.Fatalf("run: %v", r.Error)
	}
	r = s.handle(&Request{Op: "migrate", URI: "flexnet://infra/d", Segment: "syn", Device: "s2", DataPlane: true})
	if !r.OK {
		t.Fatalf("migrate: %v", r.Error)
	}
	r = s.handle(&Request{Op: "traffic-stop"})
	if !r.OK {
		t.Fatal("traffic-stop failed")
	}
	r = s.handle(&Request{Op: "tenant-add", Tenant: "acme"})
	if !r.OK {
		t.Fatalf("tenant-add: %v", r.Error)
	}
	r = s.handle(&Request{Op: "tenant-remove", Tenant: "acme"})
	if !r.OK {
		t.Fatalf("tenant-remove: %v", r.Error)
	}
	r = s.handle(&Request{Op: "remove", URI: "flexnet://infra/d"})
	if !r.OK {
		t.Fatalf("remove: %v", r.Error)
	}
	r = s.handle(&Request{Op: "frobnicate"})
	if r.OK {
		t.Fatal("unknown op accepted")
	}
}

func TestBuiltinAppDefaults(t *testing.T) {
	for _, name := range []string{"syn-defense", "heavy-hitter", "rate-limiter", "firewall", "l2", "int"} {
		p, err := builtinApp(name, nil)
		if err != nil || p == nil {
			t.Errorf("builtinApp(%q): %v", name, err)
		}
	}
}

func TestServeConnOverTCP(t *testing.T) {
	s := demoServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.serveConn(conn)
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)

	send := func(req string) Response {
		t.Helper()
		if _, err := conn.Write([]byte(req + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if r := send(`{"op":"status"}`); !r.OK {
		t.Fatalf("status over TCP: %v", r.Error)
	}
	if r := send(`not json at all`); r.OK || !strings.Contains(r.Error, "malformed") {
		t.Fatalf("malformed request: %+v", r)
	}
	if r := send(`{"op":"deploy","uri":"flexnet://infra/z","app":"l2","path":["s1"]}`); !r.OK {
		t.Fatalf("deploy over TCP: %v", r.Error)
	}
}
