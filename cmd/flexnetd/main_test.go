package main

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"flexnet"
)

func demoServer(t *testing.T) *Server {
	t.Helper()
	topo := &Topology{}
	if err := json.Unmarshal([]byte(demoTopology), topo); err != nil {
		t.Fatal(err)
	}
	nw, err := buildNetwork(topo)
	if err != nil {
		t.Fatal(err)
	}
	return &Server{net: nw, sources: map[string]*flexnet.Source{}}
}

func TestArchByName(t *testing.T) {
	for name, want := range map[string]flexnet.Arch{
		"rmt": flexnet.RMT, "DRMT": flexnet.DRMT, "tile": flexnet.Tile,
		"elasticpipe": flexnet.ElasticPipe, "soc": flexnet.SoC, "host": flexnet.Host,
	} {
		got, err := archByName(name)
		if err != nil || got != want {
			t.Errorf("archByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := archByName("quantum"); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestHandleLifecycle(t *testing.T) {
	s := demoServer(t)

	r := s.handle(&Request{Op: "status"})
	if !r.OK {
		t.Fatalf("status: %v", r.Error)
	}

	r = s.handle(&Request{Op: "deploy", URI: "flexnet://infra/d", App: "syn-defense", Args: []uint64{128, 5}, Path: []string{"s1"}})
	if !r.OK {
		t.Fatalf("deploy: %v", r.Error)
	}
	r = s.handle(&Request{Op: "deploy", URI: "flexnet://infra/d", App: "syn-defense"})
	if r.OK {
		t.Fatal("duplicate deploy accepted")
	}
	r = s.handle(&Request{Op: "deploy", URI: "flexnet://infra/x", App: "no-such-app"})
	if r.OK || !strings.Contains(r.Error, "unknown builtin") {
		t.Fatalf("bad app: %+v", r)
	}

	r = s.handle(&Request{Op: "devices"})
	if !r.OK {
		t.Fatalf("devices: %v", r.Error)
	}

	r = s.handle(&Request{Op: "traffic", SrcHost: "h1", DstIP: "10.0.0.2", PPS: 1000})
	if !r.OK {
		t.Fatalf("traffic: %v", r.Error)
	}
	r = s.handle(&Request{Op: "run", Millis: 200})
	if !r.OK {
		t.Fatalf("run: %v", r.Error)
	}
	r = s.handle(&Request{Op: "migrate", URI: "flexnet://infra/d", Segment: "syn", Device: "s2", DataPlane: true})
	if !r.OK {
		t.Fatalf("migrate: %v", r.Error)
	}
	r = s.handle(&Request{Op: "traffic-stop"})
	if !r.OK {
		t.Fatal("traffic-stop failed")
	}
	r = s.handle(&Request{Op: "tenant-add", Tenant: "acme"})
	if !r.OK {
		t.Fatalf("tenant-add: %v", r.Error)
	}
	r = s.handle(&Request{Op: "tenant-remove", Tenant: "acme"})
	if !r.OK {
		t.Fatalf("tenant-remove: %v", r.Error)
	}
	r = s.handle(&Request{Op: "remove", URI: "flexnet://infra/d"})
	if !r.OK {
		t.Fatalf("remove: %v", r.Error)
	}
	r = s.handle(&Request{Op: "frobnicate"})
	if r.OK {
		t.Fatal("unknown op accepted")
	}
}

func TestBuiltinAppDefaults(t *testing.T) {
	for _, name := range []string{"syn-defense", "heavy-hitter", "rate-limiter", "firewall", "l2", "int"} {
		p, err := builtinApp(name, nil)
		if err != nil || p == nil {
			t.Errorf("builtinApp(%q): %v", name, err)
		}
	}
}

func TestServeConnOverTCP(t *testing.T) {
	s := demoServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.serveConn(conn)
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)

	send := func(req string) Response {
		t.Helper()
		if _, err := conn.Write([]byte(req + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if r := send(`{"op":"status"}`); !r.OK {
		t.Fatalf("status over TCP: %v", r.Error)
	}
	if r := send(`not json at all`); r.OK || !strings.Contains(r.Error, "malformed") {
		t.Fatalf("malformed request: %+v", r)
	}
	if r := send(`{"op":"deploy","uri":"flexnet://infra/z","app":"l2","path":["s1"]}`); !r.OK {
		t.Fatalf("deploy over TCP: %v", r.Error)
	}
}

func TestHandleTelemetryOps(t *testing.T) {
	s := demoServer(t)

	// Before any plan: trace and report must fail cleanly, stats succeed.
	if r := s.handle(&Request{Op: "trace"}); r.OK {
		t.Fatal("trace succeeded before any plan executed")
	}
	if r := s.handle(&Request{Op: "report"}); r.OK {
		t.Fatal("report succeeded before any plan executed")
	}
	if r := s.handle(&Request{Op: "stats"}); !r.OK {
		t.Fatalf("stats: %v", r.Error)
	}

	if r := s.handle(&Request{Op: "deploy", URI: "flexnet://infra/d", App: "l2", Path: []string{"s1"}}); !r.OK {
		t.Fatalf("deploy: %v", r.Error)
	}
	if r := s.handle(&Request{Op: "traffic", SrcHost: "h1", DstIP: "10.0.0.2", PPS: 1000}); !r.OK {
		t.Fatalf("traffic: %v", r.Error)
	}
	if r := s.handle(&Request{Op: "run", Millis: 100}); !r.OK {
		t.Fatalf("run: %v", r.Error)
	}

	// stats reflects live instruments.
	r := s.handle(&Request{Op: "stats"})
	if !r.OK {
		t.Fatalf("stats: %v", r.Error)
	}
	raw, _ := json.Marshal(r.Data)
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	byName := map[string]int64{}
	for _, c := range snap.Counters {
		byName[c.Name] = c.Value
	}
	if byName["plan.executed"] != 1 || byName["ctl.ops.deploy"] != 1 {
		t.Fatalf("counters after deploy: %v", byName)
	}
	if byName["dev.s1.packets_processed"] == 0 {
		t.Fatalf("no packets counted on s1: %v", byName)
	}

	// trace defaults to the most recent plan; an explicit ID works too.
	for _, req := range []*Request{{Op: "trace"}, {Op: "trace", Plan: "plan-1"}} {
		r = s.handle(req)
		if !r.OK {
			t.Fatalf("trace %+v: %v", req, r.Error)
		}
		raw, _ = json.Marshal(r.Data)
		var tr struct {
			ID      string `json:"id"`
			Outcome string `json:"outcome"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("trace payload: %v", err)
		}
		if tr.ID != "plan-1" || tr.Outcome != "succeeded" || len(tr.Spans) == 0 {
			t.Fatalf("trace = %+v", tr)
		}
	}
	if r = s.handle(&Request{Op: "trace", Plan: "plan-99"}); r.OK {
		t.Fatal("trace for unknown plan ID succeeded")
	}

	// report re-serves the last plan report, carrying its trace ID.
	r = s.handle(&Request{Op: "report"})
	if !r.OK {
		t.Fatalf("report: %v", r.Error)
	}
	raw, _ = json.Marshal(r.Data)
	var rep struct {
		ID      string `json:"id"`
		Outcome string `json:"outcome"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report payload: %v", err)
	}
	if rep.ID != "plan-1" || rep.Outcome != "succeeded" {
		t.Fatalf("report = %+v", rep)
	}
}

// TestLegacyOpNamesWarn asserts the old op spellings still dispatch —
// with a deprecation warning — while canonical names stay silent.
func TestLegacyOpNamesWarn(t *testing.T) {
	s := demoServer(t)
	r := s.handle(&Request{Op: "tenant_add", Tenant: "acme"})
	if !r.OK {
		t.Fatalf("legacy tenant_add: %v", r.Error)
	}
	if !strings.Contains(r.Warning, "deprecated") || !strings.Contains(r.Warning, "tenant-add") {
		t.Fatalf("legacy op warning = %q", r.Warning)
	}
	r = s.handle(&Request{Op: "remove-tenant", Tenant: "acme"})
	if !r.OK || r.Warning == "" {
		t.Fatalf("legacy remove-tenant: %+v", r)
	}
	if r = s.handle(&Request{Op: "status"}); !r.OK || r.Warning != "" {
		t.Fatalf("canonical op carried a warning: %+v", r)
	}
}

const demoSpec = `
version: v1
apps:
  - uri: flexnet://infra/defense
    segments:
      - name: syn
        app: syn-defense
        args: [128, 5]
`

// TestHandleSpecAndAuditOps drives the declarative surface end to end
// over the daemon API: diff, apply, status, audit tail/verify/replay.
func TestHandleSpecAndAuditOps(t *testing.T) {
	s := demoServer(t)

	r := s.handle(&Request{Op: "spec-diff", Spec: demoSpec})
	if !r.OK {
		t.Fatalf("spec-diff: %v", r.Error)
	}
	raw, _ := json.Marshal(r.Data)
	var diff struct {
		InSync bool     `json:"in_sync"`
		Ops    int      `json:"imperative_ops"`
		Diff   []string `json:"diff"`
	}
	if err := json.Unmarshal(raw, &diff); err != nil {
		t.Fatal(err)
	}
	if diff.InSync || diff.Ops == 0 || len(diff.Diff) == 0 {
		t.Fatalf("diff = %+v", diff)
	}

	if r = s.handle(&Request{Op: "spec-apply", Spec: demoSpec}); !r.OK {
		t.Fatalf("spec-apply: %v", r.Error)
	}
	if r = s.handle(&Request{Op: "spec-status"}); !r.OK {
		t.Fatalf("spec-status: %v", r.Error)
	}
	raw, _ = json.Marshal(r.Data)
	var st struct {
		Version string `json:"version"`
		InSync  bool   `json:"in_sync"`
		Records int    `json:"audit_records"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != "v1" || !st.InSync || st.Records == 0 {
		t.Fatalf("spec-status = %+v", st)
	}

	if r = s.handle(&Request{Op: "audit", Limit: 5}); !r.OK {
		t.Fatalf("audit: %v", r.Error)
	}
	if r = s.handle(&Request{Op: "audit-verify"}); !r.OK {
		t.Fatalf("audit-verify: %v", r.Error)
	}
	r = s.handle(&Request{Op: "audit-replay"})
	if !r.OK {
		t.Fatalf("audit-replay: %v", r.Error)
	}
	raw, _ = json.Marshal(r.Data)
	var rp struct {
		Match bool `json:"match"`
	}
	if err := json.Unmarshal(raw, &rp); err != nil {
		t.Fatal(err)
	}
	if !rp.Match {
		t.Fatalf("audit replay does not match live intent: %s", raw)
	}

	if r = s.handle(&Request{Op: "spec-apply"}); r.OK {
		t.Fatal("spec-apply without a document succeeded")
	}
}
