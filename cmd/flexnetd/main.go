// Command flexnetd runs a FlexNet controller daemon: it builds a
// simulated runtime-programmable network from a topology file and
// exposes the controller's app-level API over a TCP JSON-lines protocol
// (the management-plane analogue of P4Runtime, lifted to the app level
// as §3.4 of the paper proposes).
//
// Usage:
//
//	flexnetd -listen 127.0.0.1:9177 -topology topo.json
//
// Topology file format (JSON):
//
//	{
//	  "seed": 1,
//	  "switches": [{"name": "s1", "arch": "drmt"}],
//	  "hosts":    [{"name": "h1", "ip": "10.0.0.1"}],
//	  "links":    [{"a": "h1", "b": "s1"}],
//	  "drpc":     [{"device": "s1", "ip": "172.16.0.1"}]
//	}
//
// Protocol: one JSON object per line, one response per request. See
// cmd/flexctl for a client. Simulated time advances on demand via the
// "run" op and implicitly inside synchronous ops (deploy, migrate, ...).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"flexnet"
	"flexnet/internal/api"
	"flexnet/internal/apps"
	"flexnet/internal/fabric"
)

// Topology is the daemon's network description.
type Topology struct {
	Seed int64 `json:"seed"`
	// Workers sizes the parallel packet worker pool (0 = GOMAXPROCS).
	// Output is byte-identical at a seed regardless of the count.
	Workers int `json:"workers"`
	// Topo is a compact generated-topology spec ("fat-tree:k=8",
	// "spine-leaf:spines=4,leaves=8,hosts=10") expanded before the
	// explicit members below; the -topo flag overrides it.
	Topo     string `json:"topo"`
	Switches []struct {
		Name string `json:"name"`
		Arch string `json:"arch"`
	} `json:"switches"`
	Hosts []struct {
		Name string `json:"name"`
		IP   string `json:"ip"`
	} `json:"hosts"`
	Links []struct {
		A string `json:"a"`
		B string `json:"b"`
	} `json:"links"`
	DRPC []struct {
		Device string `json:"device"`
		IP     string `json:"ip"`
	} `json:"drpc"`
}

func archByName(s string) (flexnet.Arch, error) {
	switch strings.ToLower(s) {
	case "rmt":
		return flexnet.RMT, nil
	case "drmt":
		return flexnet.DRMT, nil
	case "tile":
		return flexnet.Tile, nil
	case "elasticpipe":
		return flexnet.ElasticPipe, nil
	case "soc":
		return flexnet.SoC, nil
	case "host":
		return flexnet.Host, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q", s)
	}
}

func buildNetwork(t *Topology) (*flexnet.Network, error) {
	b := flexnet.New(t.Seed).Workers(t.Workers)
	if t.Topo != "" {
		b.Topo(t.Topo)
	}
	for _, sw := range t.Switches {
		arch, err := archByName(sw.Arch)
		if err != nil {
			return nil, err
		}
		b.Switch(sw.Name, arch)
	}
	for _, h := range t.Hosts {
		b.Host(h.Name, h.IP)
	}
	for _, l := range t.Links {
		b.Link(l.A, l.B)
	}
	for _, d := range t.DRPC {
		b.DRPC(d.Device, d.IP)
	}
	return b.Build()
}

// Request is one API call.
type Request struct {
	Op      string   `json:"op"`
	URI     string   `json:"uri,omitempty"`
	App     string   `json:"app,omitempty"` // builtin app name
	Args    []uint64 `json:"args,omitempty"`
	Segment string   `json:"segment,omitempty"`
	Device  string   `json:"device,omitempty"`
	Tenant  string   `json:"tenant,omitempty"`
	Path    []string `json:"path,omitempty"`
	// Traffic parameters.
	SrcHost string  `json:"src_host,omitempty"`
	DstIP   string  `json:"dst_ip,omitempty"`
	PPS     float64 `json:"pps,omitempty"`
	// Run duration in milliseconds.
	Millis int64 `json:"millis,omitempty"`
	// Migration mode.
	DataPlane bool `json:"data_plane,omitempty"`
	// Plan selects a plan ID for the "trace" op ("" = most recent).
	Plan string `json:"plan,omitempty"`
	// DryRun validates the operation's change plan and returns its steps
	// and cost estimate without mutating the network.
	DryRun bool `json:"dry_run,omitempty"`
	// Faults carries a fault schedule for the "faults" op (seed +
	// events; see internal/faults for the event format).
	Faults *flexnet.FaultSchedule `json:"faults,omitempty"`
	// Spec is the declarative spec document (YAML or JSON) for the
	// spec-apply and spec-diff ops.
	Spec string `json:"spec,omitempty"`
	// MaxPlans bounds batched plans per wave for spec-apply (0 = default).
	MaxPlans int `json:"max_plans,omitempty"`
	// Limit bounds list-shaped replies (the audit op's tail length).
	Limit int `json:"limit,omitempty"`
}

// Response is one API reply.
type Response struct {
	OK    bool        `json:"ok"`
	Error string      `json:"error,omitempty"`
	Data  interface{} `json:"data,omitempty"`
	// Warning flags accepted-but-deprecated requests (legacy op names).
	Warning string `json:"warning,omitempty"`
}

// Server wraps a network with a serialized API.
type Server struct {
	mu      sync.Mutex
	net     *flexnet.Network
	sources map[string]*flexnet.Source
	nextSrc int
	// plane and healer are created on first use by the "faults" and
	// "heal" ops; a daemon that never injects faults behaves (and
	// exports telemetry) exactly as before.
	plane  *flexnet.FaultPlane
	healer *flexnet.Healer
}

// builtinSegName is the default segment name each builtin kind deploys
// under (the declarative spec path names segments explicitly instead).
var builtinSegName = map[string]string{
	"syn-defense":  "syn",
	"heavy-hitter": "hh",
	"rate-limiter": "rl",
	"firewall":     "fw",
	"l2":           "l2",
	"int":          "int",
}

// builtinApp instantiates one of the library apps by kind, via the
// shared builtin table also used by declarative specs.
func builtinApp(kind string, args []uint64) (*flexnet.Program, error) {
	name, ok := builtinSegName[kind]
	if !ok {
		name = kind
	}
	return apps.Builtin(kind, name, args)
}

// planData serializes a dry-run plan report for the wire: every step
// with its validation status, plus the plan-level outcome and estimate.
func planData(rep *flexnet.PlanReport) Response {
	steps := make([]map[string]interface{}, 0, len(rep.Steps))
	for _, sr := range rep.Steps {
		m := map[string]interface{}{
			"step":   sr.Step.String(),
			"status": sr.Status.String(),
		}
		if sr.Err != nil {
			m["error"] = sr.Err.Error()
		}
		steps = append(steps, m)
	}
	data := map[string]interface{}{
		"plan":         rep.Label,
		"outcome":      rep.Outcome.String(),
		"estimated_ms": float64(rep.Estimated.Microseconds()) / 1000.0,
		"steps":        steps,
	}
	if len(rep.Degraded) > 0 {
		data["degraded"] = rep.Degraded
	}
	if rep.ID != "" {
		data["id"] = rep.ID
	}
	if rep.Err != nil {
		data["error"] = rep.Err.Error()
	}
	return Response{OK: true, Data: data}
}

// handle canonicalizes the op name via the shared table and
// dispatches. Legacy spellings still work for one release; their
// responses carry a deprecation warning.
func (s *Server) handle(req *Request) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	op, wasLegacy, known := api.Canonical(req.Op)
	if !known {
		return Response{OK: false, Error: fmt.Sprintf("unknown op %q (have: %s)", req.Op, strings.Join(api.Names(), ", "))}
	}
	resp := s.dispatch(op, req)
	if wasLegacy {
		resp.Warning = fmt.Sprintf("op %q is deprecated; use %q", req.Op, op)
		log.Printf("flexnetd: deprecated op %q (use %q)", req.Op, op)
	}
	return resp
}

func (s *Server) dispatch(op string, req *Request) Response {
	fail := func(err error) Response { return Response{OK: false, Error: err.Error()} }
	switch op {
	case api.OpStatus:
		return Response{OK: true, Data: map[string]interface{}{
			"sim_time_ms": s.net.Now().Milliseconds(),
			"apps":        s.net.Controller().Apps(),
			"drops":       s.net.InfrastructureDrops(),
		}}
	case api.OpDevices:
		var out []map[string]interface{}
		for _, r := range s.net.Controller().ResourceView() {
			out = append(out, map[string]interface{}{
				"name":        r.Device,
				"free_sram":   r.Free.SRAMBits,
				"free_tcam":   r.Free.TCAMBits,
				"fungibility": r.Fungibility,
				"programs":    r.Programs,
			})
		}
		return Response{OK: true, Data: out}
	case api.OpDeploy:
		prog, err := builtinApp(req.App, req.Args)
		if err != nil {
			return fail(err)
		}
		spec := flexnet.AppSpec{
			Programs: []*flexnet.Program{prog},
			Path:     req.Path,
			Tenant:   req.Tenant,
		}
		rep, err := s.net.Deploy(context.Background(), req.URI, spec,
			flexnet.DeployOptions{DryRun: req.DryRun})
		if err != nil {
			return fail(err)
		}
		if req.DryRun {
			return planData(rep)
		}
		return Response{OK: true, Data: map[string]string{"uri": req.URI}}
	case api.OpRemove:
		rep, err := s.net.Remove(context.Background(), req.URI,
			flexnet.RemoveOptions{DryRun: req.DryRun})
		if err != nil {
			return fail(err)
		}
		if req.DryRun {
			return planData(rep)
		}
		return Response{OK: true}
	case api.OpMigrate:
		rep, planRep, err := s.net.Migrate(context.Background(), flexnet.MigrateRequest{
			URI: req.URI, Segment: req.Segment, Dst: req.Device,
			DataPlane: req.DataPlane, DryRun: req.DryRun,
		})
		if err != nil {
			return fail(err)
		}
		if req.DryRun {
			return planData(planRep)
		}
		return Response{OK: true, Data: map[string]interface{}{
			"lost_updates": rep.LostUpdates,
			"chunks":       rep.ChunksSent,
			"duration_ms":  (rep.Done - rep.Started).Milliseconds(),
		}}
	case api.OpScaleOut, api.OpScaleIn:
		dir := flexnet.ScaleDirOut
		if op == api.OpScaleIn {
			dir = flexnet.ScaleDirIn
		}
		rep, err := s.net.Scale(context.Background(), flexnet.ScaleRequest{
			URI: req.URI, Segment: req.Segment, Device: req.Device,
			Direction: dir, DryRun: req.DryRun,
		})
		if err != nil {
			return fail(err)
		}
		if req.DryRun {
			return planData(rep)
		}
		return Response{OK: true}
	case api.OpTenantAdd:
		tn, err := s.net.AddTenant(req.Tenant)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Data: map[string]uint64{"vlan": tn.VLAN}}
	case api.OpTenantRemove:
		if err := s.net.DeleteTenant(context.Background(), req.Tenant); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case api.OpTraffic:
		dst, err := flexnet.ParseIP(req.DstIP)
		if err != nil {
			return fail(err)
		}
		src, err := s.net.NewSource(req.SrcHost, flexnet.FlowSpec{
			Dst: dst, Proto: 17, SrcPort: 1000, DstPort: 2000, PacketLen: 256,
		})
		if err != nil {
			return fail(err)
		}
		src.StartCBR(req.PPS)
		s.nextSrc++
		id := fmt.Sprintf("src%d", s.nextSrc)
		s.sources[id] = src
		return Response{OK: true, Data: map[string]string{"source": id}}
	case api.OpTrafficStop:
		for _, src := range s.sources {
			src.Stop()
		}
		s.sources = map[string]*flexnet.Source{}
		return Response{OK: true}
	case api.OpRun:
		ms := req.Millis
		if ms <= 0 {
			ms = 100
		}
		s.net.RunFor(time.Duration(ms) * time.Millisecond)
		return Response{OK: true, Data: map[string]int64{"sim_time_ms": s.net.Now().Milliseconds()}}
	case api.OpStats:
		return Response{OK: true, Data: s.net.Stats()}
	case api.OpTrace:
		tr := s.net.Tracer()
		id := req.Plan
		if id == "" {
			last := tr.Last()
			if last == nil {
				return fail(fmt.Errorf("no plans executed yet"))
			}
			id = last.ID
		}
		t := tr.Trace(id)
		if t == nil {
			return fail(fmt.Errorf("no trace for plan %q (retained: %v)", id, tr.IDs()))
		}
		return Response{OK: true, Data: t.Snapshot()}
	case api.OpReport:
		rep := s.net.LastPlanReport()
		if rep == nil {
			return fail(fmt.Errorf("no plans executed yet"))
		}
		return planData(rep)
	case api.OpFaults:
		if req.Faults == nil || len(req.Faults.Events) == 0 {
			return fail(fmt.Errorf("faults op needs a schedule (\"faults\": {\"seed\": N, \"events\": [...]})"))
		}
		if s.plane == nil {
			s.plane = s.net.NewFaultPlane(req.Faults.Seed)
			if h := s.net.HA(); h != nil {
				s.plane.BindHA(h) // leader-kill events resolve against HA
			}
		}
		if err := s.plane.Apply(req.Faults); err != nil {
			return fail(err)
		}
		return Response{OK: true, Data: map[string]int{"scheduled": len(req.Faults.Events)}}
	case api.OpHeal:
		if s.healer != nil {
			return fail(fmt.Errorf("healer already running"))
		}
		ms := req.Millis
		if ms <= 0 {
			ms = 5
		}
		s.healer = s.net.StartSelfHealing(time.Duration(ms) * time.Millisecond)
		return Response{OK: true, Data: map[string]int64{"period_ms": ms}}
	case api.OpHealStatus:
		if s.healer == nil {
			return fail(fmt.Errorf("healer not running (use the heal op first)"))
		}
		drift := s.net.IntentDrift()
		if drift == nil {
			drift = []string{}
		}
		pending := s.healer.Pending()
		if pending == nil {
			pending = []string{}
		}
		return Response{OK: true, Data: map[string]interface{}{
			"recovered":    s.healer.Recovered(),
			"pending":      pending,
			"intent_drift": drift,
			"mttr_ns":      s.healer.MTTRs,
		}}
	case api.OpSpecApply:
		if req.Spec == "" {
			return fail(fmt.Errorf("spec-apply needs a spec document (\"spec\": \"...\")"))
		}
		rep, err := s.net.ApplySpec(context.Background(), flexnet.SpecApplyRequest{
			Source: []byte(req.Spec), DryRun: req.DryRun, MaxPlans: req.MaxPlans,
		})
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Data: map[string]interface{}{
			"version":        rep.Version,
			"plans_emitted":  rep.PlansEmitted,
			"imperative_ops": rep.Ops,
			"elapsed_ms":     rep.Elapsed.Milliseconds(),
			"diff":           rep.Diff.Summary(),
			"dry_run":        req.DryRun,
		}}
	case api.OpSpecDiff:
		if req.Spec == "" {
			return fail(fmt.Errorf("spec-diff needs a spec document (\"spec\": \"...\")"))
		}
		d, err := s.net.DiffSpec(flexnet.SpecDiffRequest{Source: []byte(req.Spec)})
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Data: map[string]interface{}{
			"version":        d.Version,
			"in_sync":        d.Empty(),
			"imperative_ops": d.Ops(),
			"diff":           d.Summary(),
		}}
	case api.OpSpecStatus:
		st := s.net.SpecStatus()
		drift := st.Drift
		if drift == nil {
			drift = []string{}
		}
		return Response{OK: true, Data: map[string]interface{}{
			"version":       st.Version,
			"applied_at_ms": st.AppliedAt.Milliseconds(),
			"in_sync":       st.InSync,
			"drift":         drift,
			"audit_records": st.AuditRecords,
			"audit_head":    st.AuditHead,
		}}
	case api.OpAudit:
		records := s.net.Audit().Records()
		limit := req.Limit
		if limit <= 0 {
			limit = 10
		}
		if limit < len(records) {
			records = records[len(records)-limit:]
		}
		return Response{OK: true, Data: map[string]interface{}{
			"total":   s.net.Audit().Len(),
			"records": records,
		}}
	case api.OpAuditVerify:
		if err := s.net.Audit().Verify(); err != nil {
			return fail(err)
		}
		return Response{OK: true, Data: map[string]interface{}{
			"records": s.net.Audit().Len(),
			"head":    s.net.Audit().Head(),
		}}
	case api.OpHAStatus:
		st := s.net.HAStatus()
		if !st.Enabled {
			return fail(fmt.Errorf("HA not enabled (start flexnetd with -ha N)"))
		}
		return Response{OK: true, Data: st}
	case api.OpHAFailover:
		killed, err := s.net.HAFailover()
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Data: map[string]interface{}{
			"killed": killed,
			"note":   "advance simulated time (run op) to let the standbys elect",
		}}
	case api.OpAuditReplay:
		st, err := flexnet.ReplayAudit(s.net.Audit().Records())
		if err != nil {
			return fail(err)
		}
		replayed := st.Canonical()
		live := s.net.CanonicalIntent()
		data := map[string]interface{}{
			"records": s.net.Audit().Len(),
			"match":   replayed == live,
		}
		if replayed != live {
			data["replayed"] = replayed
			data["live"] = live
		}
		return Response{OK: true, Data: data}
	default:
		return fail(fmt.Errorf("unknown op %q", op))
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var req Request
		resp := Response{}
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			resp = Response{OK: false, Error: "malformed request: " + err.Error()}
		} else {
			resp = s.handle(&req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func main() {
	listen := flag.String("listen", "127.0.0.1:9177", "TCP listen address")
	topoPath := flag.String("topology", "", "topology JSON file (default: built-in 2-switch demo)")
	topoSpec := flag.String("topo", "", "generated topology spec (e.g. fat-tree:k=8; overrides the topology file's members)")
	workers := flag.Int("workers", 0, "parallel packet workers (0 = GOMAXPROCS; overrides the topology file)")
	batch := flag.Bool("batch", true, "batched switch execution (never changes output, only speed)")
	flowcache := flag.Bool("flowcache", false, "enable the megaflow flow cache; adds flowcache.* telemetry, all other output is byte-identical")
	haReplicas := flag.Int("ha", 0, "enable controller HA with N active/standby replicas (0 = off)")
	flag.Parse()
	fabric.SetDefaultBatching(*batch)
	fabric.SetDefaultFlowCache(*flowcache)

	topo := &Topology{Seed: 1}
	if *topoPath != "" {
		raw, err := os.ReadFile(*topoPath)
		if err != nil {
			log.Fatalf("flexnetd: read topology: %v", err)
		}
		if err := json.Unmarshal(raw, topo); err != nil {
			log.Fatalf("flexnetd: parse topology: %v", err)
		}
	} else {
		if err := json.Unmarshal([]byte(demoTopology), topo); err != nil {
			log.Fatalf("flexnetd: demo topology: %v", err)
		}
	}
	if *workers != 0 {
		topo.Workers = *workers
	}
	if *topoSpec != "" {
		// A generated fabric replaces the file's (or demo's) members
		// wholesale; seed and workers still apply.
		topo.Topo = *topoSpec
		topo.Switches, topo.Hosts, topo.Links, topo.DRPC = nil, nil, nil, nil
	}
	nw, err := buildNetwork(topo)
	if err != nil {
		log.Fatalf("flexnetd: build network: %v", err)
	}
	if *haReplicas > 0 {
		nw.EnableHA(*haReplicas, flexnet.HAConfig{Seed: topo.Seed})
		log.Printf("flexnetd: controller HA enabled with %d replicas", *haReplicas)
	}
	srv := &Server{net: nw, sources: map[string]*flexnet.Source{}}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("flexnetd: listen: %v", err)
	}
	log.Printf("flexnetd: serving %d devices on %s", len(nw.Fabric().Devices()), l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Printf("flexnetd: accept: %v", err)
			continue
		}
		go srv.serveConn(conn)
	}
}

const demoTopology = `{
  "seed": 1,
  "switches": [
    {"name": "s1", "arch": "drmt"},
    {"name": "s2", "arch": "rmt"}
  ],
  "hosts": [
    {"name": "h1", "ip": "10.0.0.1"},
    {"name": "h2", "ip": "10.0.0.2"}
  ],
  "links": [
    {"a": "h1", "b": "s1"},
    {"a": "s1", "b": "s2"},
    {"a": "s2", "b": "h2"}
  ],
  "drpc": [
    {"device": "s1", "ip": "172.16.0.1"},
    {"device": "s2", "ip": "172.16.0.2"}
  ]
}`
