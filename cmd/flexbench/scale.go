package main

import (
	"fmt"
	"strings"

	"flexnet/internal/fabric"
)

// scaleSmoke builds a generated topology (-topo), converges routing,
// then drives single-link failure/recovery events through the
// incremental engine, cross-checking each converged state against a
// forced full recompute: if the incremental tables were exact, the full
// pass finds zero entries to change. CI runs this on a k=8 fat-tree
// (make scale); a nonzero exit means the delta path drifted from
// ground truth. All numbers derive from the deterministic simulator and
// the engine's work counters, so output is byte-stable per (seed, spec).
func scaleSmoke(seed int64, spec string) (string, error) {
	ts, err := fabric.ParseTopo(spec)
	if err != nil {
		return "", err
	}
	f := fabric.New(seed)
	if err := ts.Build(f); err != nil {
		return "", err
	}
	if err := f.InstallBaseRouting(); err != nil {
		return "", err
	}
	full := f.RouteStats()

	var b strings.Builder
	fmt.Fprintf(&b, "# FlexNet scale smoke (seed %d, topo %s)\n\n", seed, spec)
	fmt.Fprintf(&b, "switches: %d  hosts: %d  routes: %d\n", len(f.Devices()), len(f.Hosts()), f.TotalRoutes())
	fmt.Fprintf(&b, "initial converge: %d dests, %d routes computed, %d entries written\n\n",
		full.RecomputedDests, full.RecomputedRoutes, full.DeltaWrites)

	// Every 8th link gets failed and restored — a deterministic sample
	// covering all tiers (links are stored in creation order: access,
	// then each fabric tier).
	links := f.Net.Links()
	failures := 0
	for i := 0; i < len(links); i += 8 {
		l := links[i]
		a, c := l.Ends()
		for _, down := range []bool{true, false} {
			l.SetDown(down)
			if err := f.RefreshRoutes(); err != nil {
				return "", fmt.Errorf("refresh after %s–%s down=%v: %w", a, c, down, err)
			}
			incr := f.RouteStats()
			if err := f.RefreshRoutesFull(); err != nil {
				return "", fmt.Errorf("full refresh after %s–%s down=%v: %w", a, c, down, err)
			}
			if w := f.RouteStats().DeltaWrites; w != 0 {
				return "", fmt.Errorf("incremental drift: %s–%s down=%v left %d entries for full recompute to fix", a, c, down, w)
			}
			if down {
				fmt.Fprintf(&b, "link %s–%s: %d dests dirty, %d routes recomputed, %d entries changed — verified\n",
					a, c, incr.RecomputedDests, incr.RecomputedRoutes, incr.DeltaWrites)
			}
		}
		failures++
	}
	fmt.Fprintf(&b, "\n%d link failure/recovery cycles, every converged state byte-identical to full recompute\n", failures)
	return b.String(), nil
}
