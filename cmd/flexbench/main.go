// Command flexbench runs the FlexNet experiment suite (E1–E20, the
// claim-by-claim reproduction of the paper's vision — see DESIGN.md §3)
// and prints each result table. With -o it also writes the results as
// the measurement section of EXPERIMENTS.md.
//
// Usage:
//
//	flexbench                 # run everything
//	flexbench -only E5,E11    # run a subset
//	flexbench -seed 7         # different deterministic seed
//	flexbench -o results.md   # also write markdown
//	flexbench -workers 8      # parallel packet workers (same output)
//	flexbench -faults chaos.json  # replay a fault schedule on the chaos bed
//	flexbench -topo fat-tree:k=8  # routing scale smoke on a generated fabric
//	flexbench -spec-check examples/specs  # validate declarative spec documents
//	flexbench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"flexnet"
	"flexnet/internal/experiments"
	"flexnet/internal/fabric"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic experiment seed")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E5); empty = all")
	out := flag.String("o", "", "also write results to this markdown file")
	workers := flag.Int("workers", 0, "parallel packet workers per network (0 = GOMAXPROCS); output is byte-identical for any value")
	faultsFile := flag.String("faults", "", "replay this JSON fault schedule on the chaos bed instead of running the suite")
	topo := flag.String("topo", "", "run a routing scale smoke on this generated topology (e.g. fat-tree:k=8) instead of the suite")
	specDir := flag.String("spec-check", "", "validate every spec document in this directory (load + resolve + dry-run diff) instead of running the suite")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	batch := flag.Bool("batch", true, "batched switch execution (never changes output, only speed)")
	flowcache := flag.Bool("flowcache", false, "enable the megaflow flow cache; adds flowcache.* telemetry, all other output is byte-identical")
	flag.Parse()
	fabric.SetDefaultWorkers(*workers)
	fabric.SetDefaultBatching(*batch)
	fabric.SetDefaultFlowCache(*flowcache)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: create %s: %v\n", *cpuprofile, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flexbench: create %s: %v\n", *memprofile, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "flexbench: heap profile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *specDir != "" {
		text, err := specCheck(*seed, *specDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(text)
		return
	}

	if *topo != "" {
		text, err := scaleSmoke(*seed, *topo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(text)
		if *out != "" {
			if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "flexbench: write %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
		return
	}

	if *faultsFile != "" {
		text, err := chaosRun(*seed, *faultsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(text)
		if *out != "" {
			if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "flexbench: write %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := []struct {
		id string
		fn func(int64) *experiments.Table
	}{
		{"E1", experiments.E1Hitless},
		{"E2", experiments.E2ReconfigLatency},
		{"E3", experiments.E3Consistency},
		{"E4", experiments.E4DynamicApps},
		{"E5", experiments.E5SecurityElastic},
		{"E6", experiments.E6CCSwap},
		{"E7", experiments.E7TenantChurn},
		{"E8", experiments.E8FungibleCompile},
		{"E9", experiments.E9Incremental},
		{"E10", experiments.E10TableMerge},
		{"E11", experiments.E11StateMigration},
		{"E12", experiments.E12FaultTolerance},
		{"E13", experiments.E13Energy},
		{"E14", experiments.E14DRPC},
		{"E15", experiments.E15FaultRecovery},
		{"E16", experiments.E16ScaleOut},
		{"E17", experiments.E17FastPath},
		{"E18", experiments.E18ControlPlane},
		{"E19", experiments.E19SpecReconcile},
		{"E20", experiments.E20HAFailover},
	}

	var rendered []string
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		start := time.Now()
		tab := r.fn(*seed)
		elapsed := time.Since(start)
		text := tab.Render()
		fmt.Println(text)
		fmt.Printf("(%s took %v wall time)\n\n", r.id, elapsed.Round(time.Millisecond))
		rendered = append(rendered, text)
	}

	if len(want) == 0 || want["TELEMETRY"] {
		text := telemetrySummary(*seed)
		fmt.Println(text)
		rendered = append(rendered, text)
	}

	if *out != "" {
		var b strings.Builder
		fmt.Fprintf(&b, "# FlexNet experiment results (seed %d)\n\n", *seed)
		b.WriteString("Generated by cmd/flexbench. All times are *simulated* time; the\n")
		b.WriteString("experiments are deterministic — the same seed reproduces every cell.\n\n")
		for _, t := range rendered {
			b.WriteString(t)
			b.WriteString("\n")
		}
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "flexbench: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// chaosRun replays a JSON fault schedule against the fixed chaos bed:
// three DRMT switches carrying two committed apps and steady traffic,
// with the self-healing loop running. The summary — injected faults,
// recoveries, MTTRs, residual intent drift, and the full telemetry
// snapshot — derives entirely from the simulated clock and the
// schedule's seed, so the same (seed, schedule) pair reproduces every
// byte. See the README's operations runbook for schedule syntax.
func chaosRun(seed int64, path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sched, err := flexnet.ParseFaultSchedule(data)
	if err != nil {
		return "", err
	}
	nw := flexnet.New(seed).
		Switch("s1", flexnet.DRMT).
		Switch("s2", flexnet.DRMT).
		Switch("s3", flexnet.DRMT).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "s1").
		Link("s1", "s2").
		Link("s2", "h2").
		Link("s2", "s3").
		MustBuild()
	if _, err := nw.Deploy(context.Background(), "flexnet://chaos/syn", flexnet.AppSpec{
		Programs: []*flexnet.Program{flexnet.SYNDefense("syn", 1024, 10)},
		Path:     []string{"s1"},
	}, flexnet.DeployOptions{}); err != nil {
		return "", fmt.Errorf("deploy syn: %w", err)
	}
	if _, err := nw.Deploy(context.Background(), "flexnet://chaos/hh", flexnet.AppSpec{
		Programs: []*flexnet.Program{flexnet.HeavyHitter("hh", 2, 512, 1000)},
		Path:     []string{"s2"},
	}, flexnet.DeployOptions{}); err != nil {
		return "", fmt.Errorf("deploy hh: %w", err)
	}
	healer := nw.StartSelfHealing(time.Millisecond)
	plane := nw.NewFaultPlane(sched.Seed)
	if err := plane.Apply(sched); err != nil {
		return "", err
	}
	src, err := nw.NewSource("h1", flexnet.FlowSpec{
		Dst: flexnet.MustParseIP("10.0.0.2"), Proto: 17,
		SrcPort: 1000, DstPort: 2000, PacketLen: 256,
	})
	if err != nil {
		return "", err
	}
	src.StartCBR(20000)
	// Run until every scheduled fault has fired and expired, plus a
	// settle window for the last reconciliations to commit.
	var horizon uint64
	for _, e := range sched.Events {
		if end := e.At + e.DurationNs; end > horizon {
			horizon = end
		}
	}
	nw.RunFor(time.Duration(horizon) + 500*time.Millisecond)
	src.Stop()

	var b strings.Builder
	fmt.Fprintf(&b, "# FlexNet chaos run (seed %d, schedule %s)\n\n", seed, path)
	fmt.Fprintf(&b, "events scheduled: %d\n", len(sched.Events))
	kinds := make([]string, 0, len(plane.Injected))
	for k := range plane.Injected {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "injected %-17s %d\n", k+":", plane.Injected[flexnet.FaultKind(k)])
	}
	fmt.Fprintf(&b, "recoveries: %d\n", healer.Recovered())
	for i, m := range healer.MTTRs {
		fmt.Fprintf(&b, "  mttr[%d]: %v\n", i, time.Duration(m))
	}
	if pending := healer.Pending(); len(pending) > 0 {
		fmt.Fprintf(&b, "pending reconciliation: %s\n", strings.Join(pending, ", "))
	}
	if drift := nw.IntentDrift(); len(drift) > 0 {
		b.WriteString("INTENT DRIFT:\n")
		for _, d := range drift {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	} else {
		b.WriteString("intent drift: none\n")
	}
	b.WriteString("\n```\n")
	b.WriteString(nw.Stats().Format())
	b.WriteString("```\n")
	return b.String(), nil
}

// telemetrySummary runs a fixed control-path scenario at the given seed —
// deploy, traffic, data-plane migration, removal — and renders the
// resulting telemetry: the full metric snapshot plus every plan trace.
// Everything derives from the simulated clock, so the output is
// byte-identical across runs at a seed (select it alone with
// -only telemetry).
func telemetrySummary(seed int64) string {
	nw := flexnet.New(seed).
		Switch("s1", flexnet.DRMT).
		Switch("s2", flexnet.RMT).
		Host("h1", "10.0.0.1").
		Host("h2", "10.0.0.2").
		Link("h1", "s1").
		Link("s1", "s2").
		Link("s2", "h2").
		DRPC("s1", "172.16.0.1").
		DRPC("s2", "172.16.0.2").
		MustBuild()
	// A 3-replica controller group, so the snapshot carries the ha.*
	// instruments (heartbeats, syncs, failover histogram) and the
	// baseline pins their deterministic values.
	nw.EnableHA(3, flexnet.HAConfig{Seed: seed})
	uri := "flexnet://infra/hh"
	if _, err := nw.Deploy(context.Background(), uri, flexnet.AppSpec{
		Programs: []*flexnet.Program{flexnet.HeavyHitter("hh", 2, 512, 1000)},
		Path:     []string{"s1"},
	}, flexnet.DeployOptions{}); err != nil {
		return fmt.Sprintf("## Telemetry summary\n\ndeploy failed: %v\n", err)
	}
	src, err := nw.NewSource("h1", flexnet.FlowSpec{
		Dst: flexnet.MustParseIP("10.0.0.2"), Proto: 17,
		SrcPort: 1000, DstPort: 2000, PacketLen: 256,
	})
	if err != nil {
		return fmt.Sprintf("## Telemetry summary\n\nsource failed: %v\n", err)
	}
	src.StartCBR(20000)
	nw.RunFor(50 * time.Millisecond)
	if _, _, err := nw.Migrate(context.Background(), flexnet.MigrateRequest{URI: uri, Segment: "hh", Dst: "s2", DataPlane: true}); err != nil {
		return fmt.Sprintf("## Telemetry summary\n\nmigrate failed: %v\n", err)
	}
	nw.RunFor(20 * time.Millisecond)
	src.Stop()
	// The runbook's failover drill: kill the leader, let a standby take
	// over, and let the old leader rejoin before tearing down.
	if _, err := nw.HAFailover(); err != nil {
		return fmt.Sprintf("## Telemetry summary\n\nfailover drill failed: %v\n", err)
	}
	nw.RunFor(time.Second)
	if _, err := nw.Remove(context.Background(), uri, flexnet.RemoveOptions{}); err != nil {
		return fmt.Sprintf("## Telemetry summary\n\nremove failed: %v\n", err)
	}

	var b strings.Builder
	b.WriteString("## Telemetry summary\n\n")
	fmt.Fprintf(&b, "Control-path scenario at seed %d: deploy → traffic → data-plane\n", seed)
	b.WriteString("migrate → remove. All values are simulated-time deterministic.\n\n")
	b.WriteString("```\n")
	b.WriteString(nw.Stats().Format())
	tr := nw.Tracer()
	for _, id := range tr.IDs() {
		b.WriteString("\n")
		b.WriteString(tr.Trace(id).Format())
	}
	b.WriteString("```\n")
	return b.String()
}
