package main

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"flexnet/internal/compiler"
	"flexnet/internal/controller"
	"flexnet/internal/fabric"
	flexrt "flexnet/internal/runtime"
	"flexnet/internal/spec"
)

// specCheck validates every spec document in dir (make spec-check, CI):
// each *.yaml/*.yml/*.json must load, resolve (every segment's builtin
// kind instantiates), and dry-run cleanly against a freshly generated
// fat-tree fabric — the same three stages `flexctl spec apply` runs
// before touching the network, so a spec that passes here is a spec the
// daemon will accept. Returns the deterministic summary text.
func specCheck(seed int64, dir string) (string, error) {
	var paths []string
	for _, pat := range []string{"*.yaml", "*.yml", "*.json"} {
		m, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return "", err
		}
		paths = append(paths, m...)
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("spec-check: no spec documents (*.yaml, *.yml, *.json) in %s", dir)
	}
	sort.Strings(paths)

	var b strings.Builder
	fmt.Fprintf(&b, "spec-check: validating %d spec(s) in %s against a fat-tree k=4 fabric\n", len(paths), dir)
	for _, path := range paths {
		s, err := spec.LoadFile(path)
		if err != nil {
			return "", fmt.Errorf("spec-check: %w", err)
		}
		r, err := spec.Resolve(s)
		if err != nil {
			return "", fmt.Errorf("spec-check: %s: %w", path, err)
		}

		// Fresh fabric per spec: the dry-run diff must see an empty
		// network, so every document validates standalone.
		f := fabric.New(seed)
		if err := fabric.BuildFatTree(f, fabric.FatTreeSpec{K: 4, HostsPerEdge: 1}); err != nil {
			return "", fmt.Errorf("spec-check: %w", err)
		}
		ctl := controller.New(f, flexrt.NewEngine(f.Sim, flexrt.DefaultCosts()), compiler.StrategyBinPack)
		var rep *controller.SpecReport
		var applyErr error
		done := false
		ctl.ApplySpec(context.Background(), r, controller.SpecOptions{DryRun: true},
			func(rp *controller.SpecReport, err error) { rep, applyErr, done = rp, err, true })
		for i := 0; i < 100 && !done; i++ {
			f.Sim.RunFor(100 * time.Millisecond)
		}
		if !done {
			return "", fmt.Errorf("spec-check: %s: dry-run apply never settled", path)
		}
		if applyErr != nil {
			return "", fmt.Errorf("spec-check: %s: dry-run apply: %w", path, applyErr)
		}
		fmt.Fprintf(&b, "  %-40s %s: %d tenants, %d apps, %d imperative ops in diff\n",
			filepath.Base(path), rep.Version, len(s.Tenants), len(s.Apps), rep.Ops)
	}
	b.WriteString("spec-check: OK — every spec loads, resolves, and dry-runs cleanly.\n")
	return b.String(), nil
}
