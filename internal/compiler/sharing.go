package compiler

import (
	"fmt"
	"strings"

	"flexnet/internal/flexbpf"
)

// Fingerprint computes a structural hash of a program that ignores its
// name and owner: two tenants submitting the same extension (§3.2
// "different tenants may inject logically-sharable code that present
// optimization opportunities") produce equal fingerprints even though
// their programs are distinct objects.
func Fingerprint(p *flexbpf.Program) uint64 {
	// Canonicalize: dump the program and strip the identity line, then
	// normalize any occurrence of the program name inside element names
	// (apps conventionally prefix their elements with the program name).
	dump := flexbpf.Dump(p)
	lines := strings.Split(dump, "\n")
	if len(lines) > 0 {
		lines = lines[1:] // drop "program <name> (tenant ...)"
	}
	// Dump summarizes inline Do blocks as "{N instrs}"; append their
	// full disassembly so compute differences change the fingerprint.
	var blocks strings.Builder
	var walk func(stmts []flexbpf.Stmt)
	walk = func(stmts []flexbpf.Stmt) {
		for _, s := range stmts {
			if s.Do != nil {
				blocks.WriteString(flexbpf.Disasm(s.Do))
			}
			if s.If != nil {
				walk(s.If.Then)
				walk(s.If.Else)
			}
		}
	}
	walk(p.Pipeline)
	canon := strings.Join(lines, "\n") + blocks.String()
	if p.Name != "" {
		canon = strings.ReplaceAll(canon, p.Name+"_", "§_")
		canon = strings.ReplaceAll(canon, p.Name+".", "§.")
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(canon); i++ {
		h ^= uint64(canon[i])
		h *= prime
	}
	return h
}

// SharedCode identifies one group of structurally identical segments
// across datapaths.
type SharedCode struct {
	Fingerprint uint64
	// Segments lists "datapath/segment" identifiers sharing the code.
	Segments []string
	// SavedDemand is the resource demand avoidable by sharing one
	// instance instead of n: (n-1) × per-instance demand.
	SavedDemand flexbpf.Demand
}

// FindSharableCode scans a set of datapaths (for example all tenants'
// extensions) for structurally identical segments — the compiler
// optimization opportunity §3.2 calls out. The result is sorted by
// the resources sharing would save.
func FindSharableCode(dps []*flexbpf.Datapath) []SharedCode {
	groups := map[uint64][]string{}
	demand := map[uint64]flexbpf.Demand{}
	for _, dp := range dps {
		for _, seg := range dp.Segments {
			fp := Fingerprint(seg)
			groups[fp] = append(groups[fp], fmt.Sprintf("%s/%s", dp.Name, seg.Name))
			demand[fp] = flexbpf.ProgramDemand(seg)
		}
	}
	var out []SharedCode
	for fp, segs := range groups {
		if len(segs) < 2 {
			continue
		}
		d := demand[fp]
		saved := flexbpf.Demand{}
		for i := 0; i < len(segs)-1; i++ {
			saved = saved.Add(d)
		}
		out = append(out, SharedCode{Fingerprint: fp, Segments: segs, SavedDemand: saved})
	}
	// Deterministic order: by saved SRAM descending, then fingerprint.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			a, b := out[i], out[j]
			if b.SavedDemand.SRAMBits > a.SavedDemand.SRAMBits ||
				(b.SavedDemand.SRAMBits == a.SavedDemand.SRAMBits && b.Fingerprint < a.Fingerprint) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
