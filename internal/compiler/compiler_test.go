package compiler

import (
	"strings"
	"testing"

	"flexnet/internal/dataplane"
	"flexnet/internal/flexbpf"
	"flexnet/internal/packet"
)

// fakeTarget is an in-memory Target for planner tests.
type fakeTarget struct {
	name      string
	caps      flexbpf.Capabilities
	free      flexbpf.Demand
	latNs     uint64
	pps       uint64
	active    bool
	idleW     float64
	activeW   float64
	removable map[string]flexbpf.Demand
	repacked  int
	fungible  bool
}

func (t *fakeTarget) Name() string                       { return t.name }
func (t *fakeTarget) Capabilities() flexbpf.Capabilities { return t.caps }
func (t *fakeTarget) Free() flexbpf.Demand               { return t.free }
func (t *fakeTarget) CanHost(p *flexbpf.Program) bool {
	return t.caps.Satisfies(p.Requires) && flexbpf.ProgramDemand(p).Fits(t.free)
}
func (t *fakeTarget) Fungibility() float64                 { return 0.5 }
func (t *fakeTarget) BaseLatencyNs() uint64                { return t.latNs }
func (t *fakeTarget) CapacityPPS() uint64                  { return t.pps }
func (t *fakeTarget) Active() bool                         { return t.active }
func (t *fakeTarget) IdleWatts() float64                   { return t.idleW }
func (t *fakeTarget) ActiveWatts() float64                 { return t.activeW }
func (t *fakeTarget) Removable() map[string]flexbpf.Demand { return t.removable }
func (t *fakeTarget) Repack() (int, error) {
	t.repacked++
	if t.fungible {
		// Repacking defragments: model as +25% usable SRAM.
		t.free.SRAMBits += t.free.SRAMBits / 4
		return 3, nil
	}
	return 0, nil
}
func (t *fakeTarget) Reclaim(name string) error {
	d, ok := t.removable[name]
	if !ok {
		return errNotRemovable
	}
	t.free = t.free.Add(d)
	delete(t.removable, name)
	return nil
}

var errNotRemovable = &merr{"not removable"}

type merr struct{ s string }

func (e *merr) Error() string { return e.s }

func bigDemand() flexbpf.Demand {
	return flexbpf.Demand{SRAMBits: 1 << 20, TCAMBits: 1 << 16, ALUs: 256, Tables: 16, ParserStates: 16}
}

// segment builds a program with roughly the requested SRAM demand.
func segment(name string, sramBits int) *flexbpf.Program {
	entries := sramBits / (32 + 32 + 32) // key+param+overhead per entry
	if entries < 1 {
		entries = 1
	}
	act := flexbpf.NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	return flexbpf.NewProgram(name).
		Action("fwd", 1, act).
		Table(&flexbpf.TableSpec{
			Name:    name + "_t",
			Keys:    []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}},
			Actions: []string{"fwd"},
			Size:    entries,
		}).
		Apply(name + "_t").
		MustBuild()
}

func dp(name string, segs ...*flexbpf.Program) *flexbpf.Datapath {
	return &flexbpf.Datapath{Name: name, Segments: segs}
}

func TestCompileSimple(t *testing.T) {
	targets := []Target{
		&fakeTarget{name: "s1", free: bigDemand(), latNs: 400, pps: 1e9},
		&fakeTarget{name: "s2", free: bigDemand(), latNs: 400, pps: 1e9},
	}
	c := New(StrategyBinPack)
	plan, err := c.Compile(dp("d", segment("a", 1000), segment("b", 1000)), targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != 2 {
		t.Fatalf("assignments = %v", plan.Assignments)
	}
	if plan.Iterations != 1 {
		t.Fatalf("iterations = %d", plan.Iterations)
	}
}

func TestCompileRespectsCapabilities(t *testing.T) {
	host := &fakeTarget{name: "h", caps: flexbpf.Capabilities{Transport: true, GeneralCompute: true}, free: bigDemand(), pps: 1e6}
	sw := &fakeTarget{name: "sw", caps: flexbpf.Capabilities{TCAM: true}, free: bigDemand(), pps: 1e9}
	cc := segment("cc", 100)
	cc.Requires = flexbpf.Capabilities{Transport: true}
	plan, err := New(StrategyBinPack).Compile(dp("d", cc), []Target{sw, host}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.DeviceFor("cc") != "h" {
		t.Fatalf("cc placed on %s", plan.DeviceFor("cc"))
	}
}

func TestCompilePathOrdering(t *testing.T) {
	targets := []Target{
		&fakeTarget{name: "s1", free: bigDemand(), pps: 1e9},
		&fakeTarget{name: "s2", free: bigDemand(), pps: 1e9},
		&fakeTarget{name: "s3", free: bigDemand(), pps: 1e9},
	}
	path := []string{"s1", "s2", "s3"}
	// Three segments, the middle pinned by capacity to s2... instead,
	// verify ordering: assignments must be non-decreasing along path.
	plan, err := New(StrategyBinPack).Compile(
		dp("d", segment("a", 100), segment("b", 100), segment("c", 100)),
		targets, path)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{"s1": 0, "s2": 1, "s3": 2}
	last := -1
	for _, a := range plan.Assignments {
		if pos[a.Device] < last {
			t.Fatalf("path order violated: %v", plan.Assignments)
		}
		last = pos[a.Device]
	}
}

func TestBinPackFailsWhereFungibleSucceeds(t *testing.T) {
	// Device is full of a removable program; bin-packing fails, the
	// fungible compiler reclaims it and succeeds. This is E8's core
	// contrast.
	seg := segment("new", 1<<18)
	need := flexbpf.ProgramDemand(seg)
	tight := flexbpf.Demand{SRAMBits: need.SRAMBits / 2, TCAMBits: 1 << 12, ALUs: 64, Tables: 4, ParserStates: 8}
	mk := func() *fakeTarget {
		return &fakeTarget{
			name: "sw", free: tight, pps: 1e9,
			removable: map[string]flexbpf.Demand{"old_app": {SRAMBits: need.SRAMBits, Tables: 2}},
		}
	}
	if _, err := New(StrategyBinPack).Compile(dp("d", seg), []Target{mk()}, nil); err == nil {
		t.Fatal("bin-packing succeeded on a full device")
	}
	plan, err := New(StrategyFungible).Compile(dp("d", seg), []Target{mk()}, nil)
	if err != nil {
		t.Fatalf("fungible compile failed: %v", err)
	}
	if plan.Reclaims == 0 {
		t.Fatal("fungible compile did not reclaim")
	}
	if plan.Iterations < 2 {
		t.Fatalf("iterations = %d, want >= 2", plan.Iterations)
	}
}

func TestFungibleUsesRepack(t *testing.T) {
	seg := segment("new", 1<<18)
	need := flexbpf.ProgramDemand(seg)
	// Free space just below need; repack recovers 25% fragmentation.
	tgt := &fakeTarget{
		name: "sw", pps: 1e9, fungible: true,
		free: flexbpf.Demand{SRAMBits: need.SRAMBits * 9 / 10, TCAMBits: 1 << 12, ALUs: 64, Tables: 4, ParserStates: 8},
	}
	plan, err := New(StrategyFungible).Compile(dp("d", seg), []Target{tgt}, nil)
	if err != nil {
		t.Fatalf("fungible compile failed: %v", err)
	}
	if tgt.repacked == 0 || plan.Repacks == 0 {
		t.Fatal("repack not invoked")
	}
}

func TestEnergyStrategyConsolidates(t *testing.T) {
	activeDev := &fakeTarget{name: "on", free: bigDemand(), active: true, idleW: 150, activeW: 60, pps: 1e9}
	idleDev := &fakeTarget{name: "off", free: bigDemand(), active: false, idleW: 150, activeW: 60, pps: 1e9}
	plan, err := New(StrategyEnergy).Compile(
		dp("d", segment("a", 100), segment("b", 100)),
		[]Target{idleDev, activeDev}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.Device != "on" {
			t.Fatalf("energy strategy woke an idle device: %v", plan.Assignments)
		}
	}
	if plan.EnergyWatts != 0 {
		t.Fatalf("energy cost = %f, want 0", plan.EnergyWatts)
	}
}

func TestSLAThroughputFilter(t *testing.T) {
	slow := &fakeTarget{name: "host", caps: flexbpf.Capabilities{GeneralCompute: true}, free: bigDemand(), pps: 1e6}
	fast := &fakeTarget{name: "asic", free: bigDemand(), pps: 1e9, latNs: 400}
	d := dp("d", segment("a", 100))
	d.SLA.MinThroughputPPS = 1e8
	plan, err := New(StrategyBinPack).Compile(d, []Target{slow, fast}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.DeviceFor("a") != "asic" {
		t.Fatalf("SLA-violating device chosen: %v", plan.Assignments)
	}
}

func TestCheckSLALatency(t *testing.T) {
	plan := &Plan{EstLatencyNs: 5000}
	d := &flexbpf.Datapath{SLA: flexbpf.SLA{MaxLatencyNs: 1000}}
	if err := CheckSLA(plan, d); err == nil {
		t.Fatal("SLA violation not detected")
	}
	d.SLA.MaxLatencyNs = 10000
	if err := CheckSLA(plan, d); err != nil {
		t.Fatal(err)
	}
}

func TestDiff(t *testing.T) {
	old := dp("d", segment("a", 100), segment("b", 100), segment("c", 100))
	new := dp("d", segment("a", 100), segment("b", 100000), segment("e", 100))
	delta := Diff(old, new)
	if len(delta.Same) != 1 || delta.Same[0] != "a" {
		t.Fatalf("same = %v", delta.Same)
	}
	if len(delta.Changed) != 1 || delta.Changed[0] != "b" {
		t.Fatalf("changed = %v", delta.Changed)
	}
	if len(delta.Added) != 1 || delta.Added[0] != "e" {
		t.Fatalf("added = %v", delta.Added)
	}
	if len(delta.Removed) != 1 || delta.Removed[0] != "c" {
		t.Fatalf("removed = %v", delta.Removed)
	}
}

func TestRecompileMinimalMoves(t *testing.T) {
	targets := []Target{
		&fakeTarget{name: "s1", free: bigDemand(), pps: 1e9},
		&fakeTarget{name: "s2", free: bigDemand(), pps: 1e9},
	}
	c := New(StrategyFungible)
	old := dp("d", segment("a", 1000), segment("b", 1000))
	plan, err := c.Compile(old, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Add one segment: nothing already placed may move.
	new := dp("d", segment("a", 1000), segment("b", 1000), segment("c", 1000))
	inc, err := c.Recompile(plan, old, new, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Moves != 0 {
		t.Fatalf("adding a segment moved %d existing segments", inc.Moves)
	}
	if len(inc.Place) != 1 || inc.Place[0].Segment != "c" {
		t.Fatalf("place = %v", inc.Place)
	}
	if len(inc.Keep) != 2 {
		t.Fatalf("keep = %v", inc.Keep)
	}
}

func TestRecompileGrowInPlace(t *testing.T) {
	targets := []Target{&fakeTarget{name: "s1", free: bigDemand(), pps: 1e9}}
	c := New(StrategyFungible)
	old := dp("d", segment("a", 1000))
	plan, err := c.Compile(old, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	new := dp("d", segment("a", 2000)) // grown but still fits
	inc, err := c.Recompile(plan, old, new, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Moves != 0 || len(inc.Keep) != 1 {
		t.Fatalf("grow-in-place failed: moves=%d keep=%v", inc.Moves, inc.Keep)
	}
}

func TestRecompileMoveWhenNoRoom(t *testing.T) {
	// s1 exactly fits the original segment; growth forces a move to s2.
	seg := segment("a", 1000)
	need := flexbpf.ProgramDemand(seg)
	tight := need
	tight.ParserStates++ // leave no spare SRAM
	targets := []Target{
		&fakeTarget{name: "s1", free: tight, pps: 1e9},
		&fakeTarget{name: "s2", free: bigDemand(), pps: 1e9},
	}
	c := New(StrategyFungible)
	old := dp("d", seg)
	plan, err := c.Compile(old, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.DeviceFor("a") != "s1" {
		t.Fatalf("setup: a on %s", plan.DeviceFor("a"))
	}
	new := dp("d", segment("a", 64000))
	inc, err := c.Recompile(plan, old, new, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Moves != 1 {
		t.Fatalf("moves = %d, want 1", inc.Moves)
	}
	if inc.EntriesMigrated == 0 {
		t.Fatal("no entry migration accounted")
	}
	if len(inc.Place) != 1 || inc.Place[0].Device != "s2" {
		t.Fatalf("place = %v", inc.Place)
	}
}

func TestRecompileRemovedFreesSpace(t *testing.T) {
	// Device exactly fits one segment; removing it and adding another of
	// the same size must succeed with zero moves.
	segA := segment("a", 1000)
	need := flexbpf.ProgramDemand(segA)
	targets := []Target{&fakeTarget{name: "s1", free: need, pps: 1e9}}
	c := New(StrategyFungible)
	old := dp("d", segA)
	plan, err := c.Compile(old, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the placement consuming the device.
	targets[0].(*fakeTarget).free = flexbpf.Demand{}
	new := dp("d", segment("b", 1000))
	inc, err := c.Recompile(plan, old, new, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Remove) != 1 || inc.Remove[0].Segment != "a" {
		t.Fatalf("remove = %v", inc.Remove)
	}
	if len(inc.Place) != 1 || inc.Place[0].Device != "s1" {
		t.Fatalf("place = %v", inc.Place)
	}
}

func mergeableProgram() *flexbpf.Program {
	setDSCP := flexbpf.NewAsm().LdParam(0, 0).StField("ipv4.dscp", 0).Ret().MustBuild()
	fwd := flexbpf.NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	noop := flexbpf.NewAsm().Ret().MustBuild()
	return flexbpf.NewProgram("qosroute").
		Action("mark", 1, setDSCP).
		Action("fwd", 1, fwd).
		Action("skip", 0, noop).
		Table(&flexbpf.TableSpec{
			Name:          "qos",
			Keys:          []flexbpf.TableKey{{Field: "ipv4.dscp", Kind: flexbpf.MatchExact, Bits: 6}},
			Actions:       []string{"mark"},
			DefaultAction: "skip",
			Size:          8,
		}).
		Table(&flexbpf.TableSpec{
			Name:          "route",
			Keys:          []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}},
			Actions:       []string{"fwd"},
			DefaultAction: "skip",
			Size:          64,
		}).
		Apply("qos").
		Apply("route").
		MustBuild()
}

func TestMergeTablesHazardRefused(t *testing.T) {
	// qos's "mark" action writes ipv4.dscp... route doesn't match dscp,
	// so that's fine. Build the hazardous direction: a table matching
	// dscp after a table whose action writes dscp.
	p := mergeableProgram()
	// Reorder: route then qos — route's fwd writes nothing qos reads?
	// fwd writes no fields. Use the original order but make route match
	// dscp to create the hazard.
	p2 := p.Clone()
	p2.Table("route").Keys = []flexbpf.TableKey{{Field: "ipv4.dscp", Kind: flexbpf.MatchExact, Bits: 6}}
	if _, err := MergeTables(p2, "qos", "route", 5); err == nil {
		t.Fatal("hazardous merge accepted")
	} else if !strings.Contains(err.Error(), "writes") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMergeTablesCrossProduct(t *testing.T) {
	p := mergeableProgram()
	m, err := MergeTables(p, "qos", "route", 5)
	if err != nil {
		t.Fatal(err)
	}
	merged, stats := m.Program, m.Stats
	if merged.Table("qos+route") == nil {
		t.Fatal("merged table missing")
	}
	if merged.Table("qos") != nil || merged.Table("route") != nil {
		t.Fatal("original tables not removed")
	}
	// Cross product: 8×64 pairs + 8 + 64 partial-hit rows.
	if got := merged.Table("qos+route").Size; got != 8*64+8+64 {
		t.Fatalf("merged size = %d", got)
	}
	if stats.MemFactor <= 1 {
		t.Fatalf("merge should cost memory, factor = %f", stats.MemFactor)
	}
	if stats.TCAMAfterBits <= stats.TCAMBeforeBits {
		t.Fatal("cross product should move memory into TCAM")
	}
	if stats.LookupsSaved != 1 || stats.LatencySavedNs != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	// The merged program must still verify (MergeTables checks, but be
	// explicit) and keep one apply.
	if err := flexbpf.Verify(merged); err != nil {
		t.Fatal(err)
	}
	applies := merged.AppliedTables()
	if len(applies) != 1 || applies[0] != "qos+route" {
		t.Fatalf("applies = %v", applies)
	}
}

func TestMergedSemanticsEquivalent(t *testing.T) {
	// Execute original and merged programs on the same packets with
	// equivalent entries; behaviour must match.
	orig := mergeableProgram()
	m, err := MergeTables(orig, "qos", "route", 0)
	if err != nil {
		t.Fatal(err)
	}
	merged := m.Program

	dev1 := dataplane.MustNew(dataplane.DefaultConfig("d1", dataplane.ArchDRMT))
	dev2 := dataplane.MustNew(dataplane.DefaultConfig("d2", dataplane.ArchDRMT))
	if err := dev1.InstallProgram(orig); err != nil {
		t.Fatal(err)
	}
	if err := dev2.InstallProgram(merged); err != nil {
		t.Fatal(err)
	}
	qosEntries := []*flexbpf.TableEntry{
		flexbpf.ExactEntry("mark", []uint64{7}, 0), // dscp 0 → mark 7
	}
	routeEntries := []*flexbpf.TableEntry{
		flexbpf.ExactEntry("fwd", []uint64{3}, uint64(packet.IP(10, 0, 0, 2))),
	}
	i1 := dev1.Instance("qosroute")
	for _, e := range qosEntries {
		if err := i1.Table("qos").Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range routeEntries {
		if err := i1.Table("route").Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	i2 := dev2.Instance("qosroute")
	for _, e := range m.Entries(qosEntries, routeEntries) {
		if err := i2.Table("qos+route").Insert(e); err != nil {
			t.Fatal(err)
		}
	}

	for _, dst := range []uint32{packet.IP(10, 0, 0, 2), packet.IP(10, 0, 0, 9)} {
		p1 := packet.TCPPacket(1, packet.IP(10, 0, 0, 1), dst, 1, 80, 0, 0)
		p2 := p1.Clone()
		s1 := dev1.Process(p1)
		s2 := dev2.Process(p2)
		if s1.Verdict != s2.Verdict {
			t.Fatalf("dst %x: verdicts differ %v vs %v", dst, s1.Verdict, s2.Verdict)
		}
		if p1.EgressPort != p2.EgressPort {
			t.Fatalf("dst %x: egress differ %d vs %d", dst, p1.EgressPort, p2.EgressPort)
		}
		if p1.Field("ipv4.dscp") != p2.Field("ipv4.dscp") {
			t.Fatalf("dst %x: dscp differ %d vs %d", dst, p1.Field("ipv4.dscp"), p2.Field("ipv4.dscp"))
		}
		if s2.Lookups >= s1.Lookups {
			t.Fatalf("merged should use fewer lookups: %d vs %d", s2.Lookups, s1.Lookups)
		}
	}
}

func TestMergeCandidates(t *testing.T) {
	p := mergeableProgram()
	cands := MergeCandidates(p)
	if len(cands) != 1 || cands[0] != [2]string{"qos", "route"} {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestDeviceTargetAdapter(t *testing.T) {
	dev := dataplane.MustNew(dataplane.DefaultConfig("sw", dataplane.ArchDRMT))
	tgt := NewDeviceTarget(dev)
	if tgt.Active() {
		t.Fatal("fresh device active")
	}
	prog := segment("app", 1000)
	if err := dev.InstallProgram(prog); err != nil {
		t.Fatal(err)
	}
	if !tgt.Active() {
		t.Fatal("device with program not active")
	}
	if err := tgt.MarkRemovable("ghost"); err == nil {
		t.Fatal("marked missing program removable")
	}
	if err := tgt.MarkRemovable("app"); err != nil {
		t.Fatal(err)
	}
	free := tgt.Free()
	if err := tgt.Reclaim("app"); err != nil {
		t.Fatal(err)
	}
	if tgt.Free().SRAMBits <= free.SRAMBits {
		t.Fatal("reclaim freed nothing")
	}
	if err := tgt.Reclaim("app"); err == nil {
		t.Fatal("double reclaim succeeded")
	}
}
