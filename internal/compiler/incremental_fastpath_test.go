package compiler

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flexnet/internal/errdefs"
	"flexnet/internal/flexbpf"
)

func TestPlaceSegmentPathFirst(t *testing.T) {
	targets := []Target{
		&fakeTarget{name: "s1", free: bigDemand(), pps: 1e9},
		&fakeTarget{name: "s2", free: bigDemand(), pps: 1e9},
		&fakeTarget{name: "s3", free: bigDemand(), pps: 1e9},
	}
	seg := segment("r", 1000)

	// Path devices win over fabric order, and the scan stops at first fit.
	dev, scanned, err := PlaceSegment(seg, targets, []string{"s2"}, nil)
	if err != nil || dev != "s2" || scanned != 1 {
		t.Fatalf("path-first: dev=%s scanned=%d err=%v, want s2/1/nil", dev, scanned, err)
	}

	// No path: fabric order, first fit.
	dev, scanned, err = PlaceSegment(seg, targets, nil, nil)
	if err != nil || dev != "s1" || scanned != 1 {
		t.Fatalf("fabric order: dev=%s scanned=%d err=%v, want s1/1/nil", dev, scanned, err)
	}

	// Excluded devices are scanned (the cost model counts the look) but
	// never chosen; a path device already excluded falls through to the
	// fabric without being retried.
	dev, scanned, err = PlaceSegment(seg, targets, []string{"s2"}, map[string]bool{"s2": true, "s1": true})
	if err != nil || dev != "s3" || scanned != 3 {
		t.Fatalf("exclude: dev=%s scanned=%d err=%v, want s3/3/nil", dev, scanned, err)
	}
}

func TestPlaceSegmentInsufficientResources(t *testing.T) {
	targets := []Target{
		&fakeTarget{name: "s1", free: flexbpf.Demand{SRAMBits: 16}, pps: 1e9},
		&fakeTarget{name: "s2", free: flexbpf.Demand{SRAMBits: 16}, pps: 1e9},
	}
	_, scanned, err := PlaceSegment(segment("big", 1<<18), targets, nil, nil)
	if !errors.Is(err, errdefs.ErrInsufficientResources) {
		t.Fatalf("err = %v, want ErrInsufficientResources", err)
	}
	if scanned != 2 {
		t.Fatalf("scanned = %d, want every target examined before failing", scanned)
	}
}

func TestRecompileFallbackMatchesFullCompile(t *testing.T) {
	// The added segment does not fit any target's free space as-is, but a
	// repack recovers enough: the incremental pass must fall back to a
	// full compile (which knows how to repack) rather than fail.
	seg := segment("b", 1<<18)
	need := flexbpf.ProgramDemand(seg)
	mk := func() *fakeTarget {
		return &fakeTarget{
			name: "sw", pps: 1e9, fungible: true,
			free: flexbpf.Demand{SRAMBits: need.SRAMBits * 9 / 10, TCAMBits: 1 << 12, ALUs: 64, Tables: 4, ParserStates: 8},
		}
	}
	c := New(StrategyFungible)
	old := dp("d", segment("a", 100))
	tgt := mk()
	prev, err := c.Compile(old, []Target{tgt}, nil)
	if err != nil {
		t.Fatal(err)
	}
	new := dp("d", segment("a", 100), seg)
	inc, err := c.Recompile(prev, old, new, []Target{tgt}, nil)
	if err != nil {
		t.Fatalf("recompile fallback: %v", err)
	}
	// Fallback output: everything appears in Place, extra iteration
	// counted, and the scan bill includes both the failed incremental
	// probe and the full compile's work.
	if len(inc.Place) != 2 || len(inc.Keep) != 0 {
		t.Fatalf("fallback shape: place=%v keep=%v", inc.Place, inc.Keep)
	}
	if inc.Iterations < 2 {
		t.Fatalf("iterations = %d, want >= 2 (incremental round + full rounds)", inc.Iterations)
	}
	if inc.TargetsScanned < 2 {
		t.Fatalf("scanned = %d, want incremental probe + full compile scans", inc.TargetsScanned)
	}
	// The fallback's assignments equal a from-scratch full compile of the
	// same datapath on an identical target.
	full, err := New(StrategyFungible).Compile(new, []Target{mk()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(inc.Place) != fmt.Sprint(full.Assignments) {
		t.Fatalf("fallback placement %v differs from full compile %v", inc.Place, full.Assignments)
	}
}

func TestRecompileFallbackCountsMoves(t *testing.T) {
	// Force the fallback where the full compile lands a previously-placed
	// segment on a different device: moves must be reported so the
	// controller can refuse in-place updates that would secretly migrate.
	segA := segment("a", 1<<17)
	needA := flexbpf.ProgramDemand(segA)
	grown := segment("a", 1<<19)
	small := &fakeTarget{name: "s1", pps: 1e9,
		free: flexbpf.Demand{SRAMBits: needA.SRAMBits + 64, TCAMBits: 1 << 12, ALUs: 64, Tables: 4, ParserStates: 8}}
	big := &fakeTarget{name: "s2", pps: 1e9, free: bigDemand()}
	c := New(StrategyBinPack)
	old := dp("d", segA)
	prev, err := c.Compile(old, []Target{small, big}, []string{"s1"})
	if err != nil {
		t.Fatal(err)
	}
	if prev.DeviceFor("a") != "s1" {
		t.Fatalf("setup: a on %s, want s1", prev.DeviceFor("a"))
	}
	inc, err := c.Recompile(prev, old, dp("d", grown), []Target{small, big}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Moves != 1 {
		t.Fatalf("moves = %d, want 1 (grown segment relocated)", inc.Moves)
	}
	if got := incDeviceFor(inc, "a"); got != "s2" {
		t.Fatalf("a placed on %s, want s2", got)
	}
	if inc.EntriesMigrated == 0 {
		t.Fatal("relocation reported zero migrated entries")
	}
}

func incDeviceFor(inc *IncrementalPlan, seg string) string {
	for _, a := range inc.Place {
		if a.Segment == seg {
			return a.Device
		}
	}
	for _, a := range inc.Keep {
		if a.Segment == seg {
			return a.Device
		}
	}
	return ""
}

func TestRefundTargetRestoresHeadroom(t *testing.T) {
	// A device already hosting the app looks full to a plain recompute;
	// refunding the app's own demand must make the same placement valid
	// again — the full-baseline path depends on this to reproduce
	// placements instead of erroring out.
	seg := segment("a", 1<<18)
	need := flexbpf.ProgramDemand(seg)
	occupied := &fakeTarget{name: "s1", pps: 1e9,
		free: flexbpf.Demand{TCAMBits: 1 << 12, ALUs: 64, Tables: 2, ParserStates: 8}} // SRAM exhausted by the live replica
	if occupied.CanHost(seg) {
		t.Fatal("setup: occupied device unexpectedly hosts the segment")
	}
	rt := &RefundTarget{Target: occupied, Refund: need}
	if !rt.CanHost(seg) {
		t.Fatal("refunded device refuses its own app's demand")
	}
	if got := rt.Free().SRAMBits; got != need.SRAMBits {
		t.Fatalf("refunded free SRAM = %d, want %d", got, need.SRAMBits)
	}
	// Full recompute over the refunded view reproduces the placement.
	plan, err := New(StrategyBinPack).Compile(dp("d", seg), []Target{rt}, nil)
	if err != nil {
		t.Fatalf("refunded recompute: %v", err)
	}
	if plan.DeviceFor("a") != "s1" {
		t.Fatalf("refunded recompute placed a on %s, want s1", plan.DeviceFor("a"))
	}
}

// TestRecompileNeverMovesUntouchedProperty is the §13.1 contract as a
// property: across randomized datapath edits (grow, shrink, add, remove)
// with enough headroom that no fallback is needed, a segment the edit
// did not touch keeps exactly the device the previous plan gave it.
func TestRecompileNeverMovesUntouchedProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(18))
	c := New(StrategyBinPack)
	for trial := 0; trial < 200; trial++ {
		targets := []Target{
			&fakeTarget{name: "s1", free: bigDemand(), pps: 1e9},
			&fakeTarget{name: "s2", free: bigDemand(), pps: 1e9},
			&fakeTarget{name: "s3", free: bigDemand(), pps: 1e9},
		}
		n := 2 + rnd.Intn(4)
		sizes := map[string]int{}
		var oldSegs []*flexbpf.Program
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("g%d", i)
			sizes[name] = 1000 + rnd.Intn(7000)
			oldSegs = append(oldSegs, segment(name, sizes[name]))
		}
		old := dp("d", oldSegs...)
		prev, err := c.Compile(old, targets, nil)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}

		touched := map[string]bool{}
		newSegs := append([]*flexbpf.Program(nil), oldSegs...)
		switch rnd.Intn(4) {
		case 0: // grow one segment
			i := rnd.Intn(n)
			name := oldSegs[i].Name
			touched[name] = true
			newSegs[i] = segment(name, sizes[name]*2)
		case 1: // shrink one segment
			i := rnd.Intn(n)
			name := oldSegs[i].Name
			touched[name] = true
			newSegs[i] = segment(name, sizes[name]/2)
		case 2: // add a segment
			touched["gx"] = true
			newSegs = append(newSegs, segment("gx", 1000+rnd.Intn(7000)))
		case 3: // remove a segment
			i := rnd.Intn(n)
			touched[oldSegs[i].Name] = true
			newSegs = append(newSegs[:i], newSegs[i+1:]...)
		}
		new := dp("d", newSegs...)
		inc, err := c.Recompile(prev, old, new, targets, nil)
		if err != nil {
			t.Fatalf("trial %d: recompile: %v", trial, err)
		}
		if inc.Moves != 0 {
			t.Fatalf("trial %d: %d untouched-capacity moves (touched %v)", trial, inc.Moves, touched)
		}
		kept := map[string]string{}
		for _, a := range inc.Keep {
			kept[a.Segment] = a.Device
		}
		for _, s := range newSegs {
			if touched[s.Name] {
				continue
			}
			want := prev.DeviceFor(s.Name)
			if got, ok := kept[s.Name]; !ok || got != want {
				t.Fatalf("trial %d: untouched segment %s moved %s -> %s (keep=%v place=%v)",
					trial, s.Name, want, got, inc.Keep, inc.Place)
			}
		}
	}
}
