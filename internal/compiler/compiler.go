// Package compiler implements the FlexNet compiler (§3.3): it maps
// logical datapaths (ordered FlexBPF program segments) onto physical
// devices.
//
// Two operating points are provided, matching the paper's contrast:
//
//   - StrategyBinPack — the classical network compiler: device resources
//     are "an unyielding constraint"; placement is first-fit and fails
//     when nothing fits.
//   - StrategyFungible — the FlexNet compiler: on placement failure it
//     "recursively invokes optimization primitives ... to perform
//     resource reallocation and garbage collection, before attempting
//     another round of compilation" — repacking fragmented devices and
//     reclaiming removable programs.
//   - StrategyEnergy — fungible placement that additionally minimizes an
//     energy objective by consolidating programs onto already-active
//     devices (§3.3 "performance and energy optimizations", [57]).
//
// The compiler is pure: it plans against Target views and never touches
// devices; the controller applies plans through the runtime engine.
//
// DESIGN.md §2 (S7) and §4 record the placement model and its design decisions; §3 (E8, E9, E10, E13) lists the compiler experiments.
package compiler

import (
	"fmt"
	"sort"

	"flexnet/internal/errdefs"
	"flexnet/internal/flexbpf"
)

// Target is the compiler's view of one physical device.
type Target interface {
	// Name identifies the device.
	Name() string
	// Capabilities the device offers.
	Capabilities() flexbpf.Capabilities
	// Free resources currently available.
	Free() flexbpf.Demand
	// CanHost reports whether the device can actually place the program
	// right now. Aggregate Demand arithmetic overpromises on devices
	// with typed sub-pools (tile types, per-stage budgets); this is the
	// authoritative per-program feasibility check.
	CanHost(prog *flexbpf.Program) bool
	// Fungibility is the fraction of resources reclaimable via repack.
	Fungibility() float64
	// BaseLatencyNs is per-packet transit latency for SLA estimates.
	BaseLatencyNs() uint64
	// CapacityPPS is sustainable packet rate.
	CapacityPPS() uint64
	// Active reports whether the device currently hosts any program
	// (energy objective: adding to an active device is cheap).
	Active() bool
	// IdleWatts and ActiveWatts for the energy objective.
	IdleWatts() float64
	ActiveWatts() float64

	// Repack defragments the device, returning moved allocation units.
	// Only invoked by the fungible strategy.
	Repack() (int, error)
	// Removable returns names of programs the owner has marked
	// reclaimable (unused functions, departed tenants), with their
	// resource demands.
	Removable() map[string]flexbpf.Demand
	// Reclaim removes a removable program, freeing its resources.
	Reclaim(name string) error
}

// Strategy selects the compilation algorithm.
type Strategy uint8

// Strategies.
const (
	StrategyBinPack Strategy = iota
	StrategyFungible
	StrategyEnergy
)

func (s Strategy) String() string {
	switch s {
	case StrategyBinPack:
		return "binpack"
	case StrategyFungible:
		return "fungible"
	case StrategyEnergy:
		return "energy"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Assignment maps one segment to one device.
type Assignment struct {
	Segment string
	Device  string
}

// Plan is a compiled placement for a datapath.
type Plan struct {
	Datapath    string
	Assignments []Assignment
	// Iterations is how many compile rounds were needed (1 = first try).
	Iterations int
	// Repacks and Reclaims count optimization primitives invoked.
	Repacks  int
	Reclaims int
	// EstLatencyNs is the summed device base latency along the placement.
	EstLatencyNs uint64
	// EnergyWatts is the added static power of devices activated by this
	// plan.
	EnergyWatts float64
	// TargetsScanned counts candidate-device examinations performed while
	// placing — the work term the control-plane cost model charges for
	// (Costs.PlaceTarget). Full compilation scans every target per
	// segment per round; incremental plans scan only around the touched
	// segments.
	TargetsScanned int
}

// DeviceFor returns the device assigned to a segment, or "".
func (p *Plan) DeviceFor(segment string) string {
	for _, a := range p.Assignments {
		if a.Segment == segment {
			return a.Device
		}
	}
	return ""
}

// Compiler plans datapath placements over a set of targets.
type Compiler struct {
	Strategy Strategy
	// MaxIterations bounds fungible compilation rounds.
	MaxIterations int
}

// New creates a compiler with the given strategy.
func New(s Strategy) *Compiler {
	return &Compiler{Strategy: s, MaxIterations: 4}
}

// scratchTarget tracks planned consumption on top of a Target during one
// compilation, so multi-segment plans see their own earlier reservations.
type scratchTarget struct {
	Target
	planned flexbpf.Demand
	// activated marks targets that this plan turns on.
	activated bool
}

func (st *scratchTarget) freeNow() flexbpf.Demand {
	return st.Target.Free().Sub(st.planned)
}

// Compile places every segment of dp onto some target. The path argument
// restricts and orders candidates: segment i may be placed on any target
// whose index in path is >= the index used by segment i-1 (traffic flows
// through devices in path order; two segments may share a device). A nil
// path allows any order (vertical-only placement).
func (c *Compiler) Compile(dp *flexbpf.Datapath, targets []Target, path []string) (*Plan, error) {
	plan := &Plan{Datapath: dp.Name}
	scratch := make([]*scratchTarget, len(targets))
	index := map[string]int{}
	for i, t := range targets {
		scratch[i] = &scratchTarget{Target: t}
		index[t.Name()] = i
	}
	// pathPos[i] is the position of target i within path (-1 = not on
	// path, unusable when a path is given).
	pathPos := make([]int, len(targets))
	for i := range pathPos {
		pathPos[i] = -1
	}
	if path == nil {
		for i := range pathPos {
			pathPos[i] = 0
		}
	} else {
		for pos, name := range path {
			if i, ok := index[name]; ok {
				pathPos[i] = pos
			}
		}
	}

	maxIter := c.MaxIterations
	if c.Strategy == StrategyBinPack {
		maxIter = 1
	}
	var lastErr error
	for iter := 1; iter <= maxIter; iter++ {
		plan.Iterations = iter
		assignments, scanned, err := c.tryPlace(dp, scratch, pathPos)
		plan.TargetsScanned += scanned
		if err == nil {
			plan.Assignments = assignments
			c.finish(plan, dp, scratch, index)
			return plan, nil
		}
		lastErr = err
		if c.Strategy == StrategyBinPack {
			break
		}
		// Optimization primitives: first repack fragmented devices, then
		// reclaim removable programs, then try again.
		progressed := false
		if iter == 1 {
			// Round 2 preparation: defragment (resource reallocation).
			for _, st := range scratch {
				if moves, rerr := st.Repack(); rerr == nil {
					plan.Repacks++
					if moves > 0 {
						progressed = true
					}
				}
			}
		} else {
			// Round 3+ preparation: garbage-collect removable programs.
			for _, st := range scratch {
				for _, name := range sortedKeys(st.Removable()) {
					if err := st.Reclaim(name); err == nil {
						plan.Reclaims++
						progressed = true
					}
				}
			}
		}
		if !progressed && iter > 1 {
			break
		}
	}
	return nil, fmt.Errorf("compiler: %s: placement failed after %d iteration(s): %w", dp.Name, plan.Iterations, lastErr)
}

func sortedKeys(m map[string]flexbpf.Demand) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// tryPlace attempts one placement round over scratch targets. The second
// result counts candidate-target examinations (the placement work term).
func (c *Compiler) tryPlace(dp *flexbpf.Datapath, scratch []*scratchTarget, pathPos []int) ([]Assignment, int, error) {
	var out []Assignment
	scanned := 0
	reserved := map[int]flexbpf.Demand{}
	activated := map[int]bool{}
	minPos := 0
	for _, seg := range dp.Segments {
		need := flexbpf.ProgramDemand(seg)
		best := -1
		bestScore := 0.0
		for i, st := range scratch {
			scanned++
			if pathPos[i] < 0 || pathPos[i] < minPos {
				continue
			}
			if !st.Capabilities().Satisfies(seg.Requires) {
				continue
			}
			free := st.freeNow().Sub(reserved[i])
			if !need.Fits(free) {
				continue
			}
			// Typed-pool feasibility: the device itself must agree. For
			// multi-segment plans the aggregate reservation above remains
			// the co-location constraint.
			if !st.CanHost(seg) {
				continue
			}
			if dp.SLA.MinThroughputPPS > 0 && st.CapacityPPS() < dp.SLA.MinThroughputPPS {
				continue
			}
			score := c.score(st, free, need, activated[i])
			if best == -1 || score > bestScore {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			return nil, scanned, fmt.Errorf("no device fits segment %s (demand %v): %w", seg.Name, need, errdefs.ErrInsufficientResources)
		}
		reserved[best] = reserved[best].Add(need)
		if !scratch[best].Active() {
			activated[best] = true
		}
		out = append(out, Assignment{Segment: seg.Name, Device: scratch[best].Name()})
		minPos = pathPos[best]
	}
	// Commit reservations into scratch for subsequent iterations.
	for i, d := range reserved {
		scratch[i].planned = scratch[i].planned.Add(d)
		if activated[i] {
			scratch[i].activated = true
		}
	}
	return out, scanned, nil
}

// score ranks candidate devices; higher is better.
func (c *Compiler) score(st *scratchTarget, free, need flexbpf.Demand, activatedByPlan bool) float64 {
	switch c.Strategy {
	case StrategyEnergy:
		// Prefer already-active devices; penalize waking idle ones by
		// their static power.
		s := 1000.0
		if !st.Active() && !activatedByPlan && !st.activated {
			s -= st.IdleWatts() + st.ActiveWatts()
		}
		// Tie-break toward tighter fit (consolidation).
		s -= float64(free.SRAMBits-need.SRAMBits) * 1e-9
		return s
	default:
		// First-fit-decreasing flavor: prefer the device with the least
		// leftover space that still fits (best fit reduces fragmentation)
		// and lower latency.
		return -float64(free.SRAMBits+free.TCAMBits) - float64(st.BaseLatencyNs())*1e3
	}
}

// finish computes plan metrics.
func (c *Compiler) finish(plan *Plan, dp *flexbpf.Datapath, scratch []*scratchTarget, index map[string]int) {
	seen := map[string]bool{}
	for _, a := range plan.Assignments {
		st := scratch[index[a.Device]]
		if !seen[a.Device] {
			seen[a.Device] = true
			plan.EstLatencyNs += st.BaseLatencyNs()
			if st.activated {
				plan.EnergyWatts += st.IdleWatts() + st.ActiveWatts()
			}
		}
	}
}

// CheckSLA verifies the plan against the datapath's SLA.
func CheckSLA(plan *Plan, dp *flexbpf.Datapath) error {
	if dp.SLA.MaxLatencyNs > 0 && plan.EstLatencyNs > dp.SLA.MaxLatencyNs {
		return fmt.Errorf("compiler: plan latency %dns exceeds SLA %dns", plan.EstLatencyNs, dp.SLA.MaxLatencyNs)
	}
	return nil
}
