package compiler

import (
	"fmt"

	"flexnet/internal/flexbpf"
)

// MergeStats quantifies a table merge's cost/benefit (§3.3: "Merging two
// match/action tables ... will lead to increased memory usage due to a
// table 'cross product', but it saves one table lookup time and reduces
// latency for packet processing").
type MergeStats struct {
	MemBeforeBits int
	MemAfterBits  int
	// MemFactor = after/before.
	MemFactor float64
	// TCAMBefore/TCAMAfter: merging moves exact tables into ternary
	// memory, so the cost is paid in the scarcest resource.
	TCAMBeforeBits int
	TCAMAfterBits  int
	// LookupsSaved per packet.
	LookupsSaved int
	// LatencySavedNs per packet on the given per-lookup latency.
	LatencySavedNs uint64
}

// Merge is the result of merging two tables: the transformed program and
// an entry builder that keeps runtime entries semantically equivalent.
type Merge struct {
	Program *flexbpf.Program
	Stats   MergeStats
	// MergedTable is the name of the cross-product table.
	MergedTable string

	t1, t2 *flexbpf.TableSpec
	d1, d2 string // resolved default action names ("_noop" if absent)
}

const noopAction = "_noop"

// MergeTables merges two tables applied back-to-back at the top level of
// prog's pipeline into one cross-product table. It returns a transformed
// clone (the input program is untouched).
//
// Semantics are preserved exactly, including partial-hit combinations:
// the merged table is ternary, with wildcarded entries covering
// "t1 hits, t2 misses" and vice versa. This is why the merge costs
// memory — and specifically TCAM — as the paper notes.
//
// The merge is refused when it cannot be done soundly: t1's actions must
// not write fields t2 matches on; both tables' applications must be
// unconditional; keys must be exact or ternary (LPM/range cross products
// are not expressible without prefix expansion).
func MergeTables(prog *flexbpf.Program, t1Name, t2Name string, perLookupNs uint64) (*Merge, error) {
	t1 := prog.Table(t1Name)
	t2 := prog.Table(t2Name)
	if t1 == nil || t2 == nil {
		return nil, fmt.Errorf("compiler: merge: table not found")
	}
	pos := -1
	for i := 0; i+1 < len(prog.Pipeline); i++ {
		if prog.Pipeline[i].Apply == t1Name && prog.Pipeline[i+1].Apply == t2Name {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("compiler: merge: %s and %s are not applied consecutively", t1Name, t2Name)
	}
	for _, t := range []*flexbpf.TableSpec{t1, t2} {
		for _, k := range t.Keys {
			if k.Kind == flexbpf.MatchLPM || k.Kind == flexbpf.MatchRange {
				return nil, fmt.Errorf("compiler: merge: table %s key %s: %v keys cannot be cross-producted", t.Name, k.Field, k.Kind)
			}
		}
	}
	// Hazard check: t1 actions must not write t2 key fields.
	t2keys := map[string]bool{}
	for _, k := range t2.Keys {
		t2keys[k.Field] = true
	}
	for _, aname := range actionsOf(t1) {
		a := prog.Actions[aname]
		if a == nil {
			continue
		}
		for _, ins := range a.Body {
			if ins.Op == flexbpf.OpStField && t2keys[ins.Sym] {
				return nil, fmt.Errorf("compiler: merge: action %s writes %s, matched by %s", aname, ins.Sym, t2Name)
			}
		}
	}

	out := prog.Clone()
	ot1 := out.Table(t1Name)
	ot2 := out.Table(t2Name)

	// Ensure a no-op action exists for missing defaults.
	if _, ok := out.Actions[noopAction]; !ok {
		out.Actions[noopAction] = &flexbpf.Action{Name: noopAction, Body: []flexbpf.Instr{{Op: flexbpf.OpRet}}}
	}
	d1 := ot1.DefaultAction
	if d1 == "" {
		d1 = noopAction
	}
	d2 := ot2.DefaultAction
	if d2 == "" {
		d2 = noopAction
	}

	mergedName := t1Name + "+" + t2Name
	merged := &flexbpf.TableSpec{
		Name: mergedName,
		// Cross-product entries need wildcards: all keys become ternary.
		Keys: ternaryKeys(append(append([]flexbpf.TableKey(nil), ot1.Keys...), ot2.Keys...)),
		// Size: every (e1, e2) pair plus partial-hit rows.
		Size: ot1.Size*ot2.Size + ot1.Size + ot2.Size,
	}

	// Composite actions for hit×hit, hit×default, default×hit; the
	// default×default pair becomes the merged table's default action.
	a1s := append(actionsOf(ot1), d1)
	a2s := append(actionsOf(ot2), d2)
	seen := map[string]bool{}
	addComposite := func(n1, n2 string) (string, error) {
		comp, err := composeActions(out, n1, n2)
		if err != nil {
			return "", err
		}
		if !seen[comp.Name] {
			seen[comp.Name] = true
			out.Actions[comp.Name] = comp
			merged.Actions = append(merged.Actions, comp.Name)
		}
		return comp.Name, nil
	}
	for _, n1 := range a1s {
		for _, n2 := range a2s {
			if _, err := addComposite(n1, n2); err != nil {
				return nil, err
			}
		}
	}
	defName, err := addComposite(d1, d2)
	if err != nil {
		return nil, err
	}
	merged.DefaultAction = defName
	merged.DefaultParams = append(append([]uint64(nil), ot1.DefaultParams...), ot2.DefaultParams...)

	// Replace the two applies with one and drop the old tables.
	out.Pipeline = append(out.Pipeline[:pos],
		append([]flexbpf.Stmt{{Apply: mergedName}}, out.Pipeline[pos+2:]...)...)
	var keptTables []*flexbpf.TableSpec
	for _, t := range out.Tables {
		if t.Name != t1Name && t.Name != t2Name {
			keptTables = append(keptTables, t)
		}
	}
	out.Tables = append(keptTables, merged)

	if err := flexbpf.Verify(out); err != nil {
		return nil, fmt.Errorf("compiler: merged program failed verification: %w", err)
	}

	var stats MergeStats
	dm1 := flexbpf.TableDemand(prog, t1)
	dm2 := flexbpf.TableDemand(prog, t2)
	dm := flexbpf.TableDemand(out, merged)
	stats.MemBeforeBits = dm1.SRAMBits + dm1.TCAMBits + dm2.SRAMBits + dm2.TCAMBits
	stats.MemAfterBits = dm.SRAMBits + dm.TCAMBits
	stats.TCAMBeforeBits = dm1.TCAMBits + dm2.TCAMBits
	stats.TCAMAfterBits = dm.TCAMBits
	if stats.MemBeforeBits > 0 {
		stats.MemFactor = float64(stats.MemAfterBits) / float64(stats.MemBeforeBits)
	}
	stats.LookupsSaved = 1
	stats.LatencySavedNs = perLookupNs

	return &Merge{
		Program:     out,
		Stats:       stats,
		MergedTable: mergedName,
		t1:          t1, t2: t2,
		d1: d1, d2: d2,
	}, nil
}

func ternaryKeys(keys []flexbpf.TableKey) []flexbpf.TableKey {
	out := make([]flexbpf.TableKey, len(keys))
	for i, k := range keys {
		k.Kind = flexbpf.MatchTernary
		out[i] = k
	}
	return out
}

// Entries builds the merged table's entries from the two original entry
// sets, covering all hit/miss combinations:
//
//   - (e1, e2) hit×hit rows at highest priority;
//   - (e1, *) rows running a1 + t2's default;
//   - (*, e2) rows running t1's default + a2;
//   - full miss falls to the merged table's default action.
func (m *Merge) Entries(e1s, e2s []*flexbpf.TableEntry) []*flexbpf.TableEntry {
	n1 := len(m.t1.Keys)
	n2 := len(m.t2.Keys)
	wild1 := make([]flexbpf.MatchValue, n1) // zero mask = match anything
	wild2 := make([]flexbpf.MatchValue, n2)
	full := func(ms []flexbpf.MatchValue, keys []flexbpf.TableKey) []flexbpf.MatchValue {
		out := make([]flexbpf.MatchValue, len(ms))
		for i, v := range ms {
			if keys[i].Kind == flexbpf.MatchExact {
				v.Mask = ^uint64(0)
				if keys[i].Bits > 0 && keys[i].Bits < 64 {
					v.Mask = 1<<uint(keys[i].Bits) - 1
				}
			}
			out[i] = v
		}
		return out
	}
	var out []*flexbpf.TableEntry
	for _, e1 := range e1s {
		m1 := full(e1.Match, m.t1.Keys)
		for _, e2 := range e2s {
			out = append(out, &flexbpf.TableEntry{
				Priority: 2_000_000 + e1.Priority*1000 + e2.Priority,
				Match:    append(append([]flexbpf.MatchValue(nil), m1...), full(e2.Match, m.t2.Keys)...),
				Action:   e1.Action + "+" + e2.Action,
				Params:   append(append([]uint64(nil), e1.Params...), e2.Params...),
			})
		}
		// t1 hit, t2 miss.
		out = append(out, &flexbpf.TableEntry{
			Priority: 1_000_000 + e1.Priority,
			Match:    append(append([]flexbpf.MatchValue(nil), m1...), wild2...),
			Action:   e1.Action + "+" + m.d2,
			Params:   append(append([]uint64(nil), e1.Params...), m.t2.DefaultParams...),
		})
	}
	for _, e2 := range e2s {
		// t1 miss, t2 hit.
		out = append(out, &flexbpf.TableEntry{
			Priority: 1_000_000 + e2.Priority,
			Match:    append(append([]flexbpf.MatchValue(nil), wild1...), full(e2.Match, m.t2.Keys)...),
			Action:   m.d1 + "+" + e2.Action,
			Params:   append(append([]uint64(nil), m.t1.DefaultParams...), e2.Params...),
		})
	}
	return out
}

func actionsOf(t *flexbpf.TableSpec) []string {
	return append([]string(nil), t.Actions...)
}

// composeActions builds the action "a1+a2": run a1; if it returns
// normally, run a2 with its parameter indexes shifted past a1's.
func composeActions(p *flexbpf.Program, n1, n2 string) (*flexbpf.Action, error) {
	a1 := p.Actions[n1]
	a2 := p.Actions[n2]
	if a1 == nil || a2 == nil {
		return nil, fmt.Errorf("compiler: merge: missing action %q or %q", n1, n2)
	}
	name := n1 + "+" + n2
	var body []flexbpf.Instr
	// a1's body with terminal Ret redirected past a1's end. Because
	// jumps are forward-only, converting each Ret into a forward jump is
	// sound.
	a1len := len(a1.Body)
	for pc, ins := range a1.Body {
		if ins.Op == flexbpf.OpRet {
			body = append(body, flexbpf.Instr{Op: flexbpf.OpJmp, Off: int32(a1len - pc - 1)})
			continue
		}
		body = append(body, ins)
	}
	for _, ins := range a2.Body {
		if ins.Op == flexbpf.OpLdParam {
			ins.Imm += uint64(a1.NumParams)
		}
		body = append(body, ins)
	}
	return &flexbpf.Action{Name: name, NumParams: a1.NumParams + a2.NumParams, Body: body}, nil
}

// MergeCandidates returns consecutive top-level apply pairs eligible for
// merging, by name.
func MergeCandidates(prog *flexbpf.Program) [][2]string {
	var out [][2]string
	for i := 0; i+1 < len(prog.Pipeline); i++ {
		a, b := prog.Pipeline[i].Apply, prog.Pipeline[i+1].Apply
		if a == "" || b == "" {
			continue
		}
		if _, err := MergeTables(prog, a, b, 0); err == nil {
			out = append(out, [2]string{a, b})
		}
	}
	return out
}
