package compiler

import (
	"fmt"

	"flexnet/internal/errdefs"
	"flexnet/internal/flexbpf"
)

// Delta describes the difference between two datapath versions.
type Delta struct {
	Added   []string // segments present only in the new version
	Removed []string // segments present only in the old version
	Changed []string // segments whose resource demand changed
	Same    []string // untouched segments
}

// Diff computes the segment-level delta between datapath versions.
// Segments are compared by name; "changed" means the program's resource
// demand differs (the placement-relevant property).
func Diff(old, new *flexbpf.Datapath) Delta {
	var d Delta
	oldSegs := map[string]*flexbpf.Program{}
	for _, s := range old.Segments {
		oldSegs[s.Name] = s
	}
	newSegs := map[string]bool{}
	for _, s := range new.Segments {
		newSegs[s.Name] = true
		o, ok := oldSegs[s.Name]
		switch {
		case !ok:
			d.Added = append(d.Added, s.Name)
		case flexbpf.ProgramDemand(o) != flexbpf.ProgramDemand(s):
			d.Changed = append(d.Changed, s.Name)
		default:
			d.Same = append(d.Same, s.Name)
		}
	}
	for _, s := range old.Segments {
		if !newSegs[s.Name] {
			d.Removed = append(d.Removed, s.Name)
		}
	}
	return d
}

// IncrementalPlan is the output of incremental recompilation.
type IncrementalPlan struct {
	// Keep are assignments preserved from the previous plan.
	Keep []Assignment
	// Place are new assignments (added or moved segments).
	Place []Assignment
	// Remove are segments to uninstall, with their old device.
	Remove []Assignment
	// Moves counts previously-placed segments that changed device —
	// the intrusiveness metric the paper wants minimized ("maximally
	// adjacent reconfigurations that lead to non-intrusive
	// redistribution").
	Moves int
	// EntriesMigrated estimates state/entry volume that must move.
	EntriesMigrated int
	// Iterations from the underlying compile rounds.
	Iterations int
	// TargetsScanned counts candidate-device examinations — the placement
	// work term charged by the control-plane cost model. Incremental
	// recompiles scan only around touched segments, so this stays flat as
	// the fabric grows; a fallback to full compilation pays the full scan.
	TargetsScanned int
}

// Recompile computes an incremental plan that morphs prevPlan (for the
// old datapath) into a valid placement for the new datapath, touching as
// few placements as possible:
//
//  1. Removed segments are uninstalled.
//  2. Unchanged segments keep their device.
//  3. Changed segments are re-validated in place; only if their grown
//     demand no longer fits (or path order breaks) do they move.
//  4. Added segments are placed in the remaining free space.
//
// Only when step 3/4 fails does it fall back to a full recompilation,
// which may move everything.
func (c *Compiler) Recompile(prevPlan *Plan, old, new *flexbpf.Datapath, targets []Target, path []string) (*IncrementalPlan, error) {
	delta := Diff(old, new)
	out := &IncrementalPlan{Iterations: 1}

	byName := map[string]Target{}
	for _, t := range targets {
		byName[t.Name()] = t
	}
	segOf := map[string]*flexbpf.Program{}
	for _, s := range new.Segments {
		segOf[s.Name] = s
	}
	oldSegOf := map[string]*flexbpf.Program{}
	for _, s := range old.Segments {
		oldSegOf[s.Name] = s
	}

	// 1. Removals.
	for _, name := range delta.Removed {
		dev := prevPlan.DeviceFor(name)
		out.Remove = append(out.Remove, Assignment{Segment: name, Device: dev})
	}

	// Track planned additional demand per device for steps 3-4.
	extra := map[string]flexbpf.Demand{}
	// Freed demand from removals is available again.
	freed := map[string]flexbpf.Demand{}
	for _, name := range delta.Removed {
		dev := prevPlan.DeviceFor(name)
		freed[dev] = freed[dev].Add(flexbpf.ProgramDemand(oldSegOf[name]))
	}
	avail := func(dev string) flexbpf.Demand {
		t := byName[dev]
		if t == nil {
			return flexbpf.Demand{}
		}
		return t.Free().Add(freed[dev]).Sub(extra[dev])
	}

	// 2. Keep unchanged segments in place.
	for _, name := range delta.Same {
		dev := prevPlan.DeviceFor(name)
		if dev == "" {
			return nil, fmt.Errorf("compiler: incremental: segment %s missing from previous plan", name)
		}
		out.Keep = append(out.Keep, Assignment{Segment: name, Device: dev})
	}

	// 3. Changed segments: grow in place when possible.
	for _, name := range delta.Changed {
		dev := prevPlan.DeviceFor(name)
		if dev == "" {
			return nil, fmt.Errorf("compiler: incremental: segment %s missing from previous plan", name)
		}
		oldD := flexbpf.ProgramDemand(oldSegOf[name])
		newD := flexbpf.ProgramDemand(segOf[name])
		growth := newD.Sub(oldD)
		if growth.Fits(avail(dev)) {
			extra[dev] = extra[dev].Add(growth)
			out.Keep = append(out.Keep, Assignment{Segment: name, Device: dev})
			continue
		}
		// Must move: treat as added (old placement is released).
		freed[dev] = freed[dev].Add(oldD)
		delta.Added = append(delta.Added, name)
		out.Moves++
		out.EntriesMigrated += entryVolume(segOf[name])
	}

	// 4. Place added segments into remaining space, preferring devices
	// adjacent (on the path) to their datapath neighbors.
	for _, name := range delta.Added {
		seg := segOf[name]
		need := flexbpf.ProgramDemand(seg)
		placed := ""
		for _, cand := range candidateOrder(name, new, prevPlan, path, targets) {
			out.TargetsScanned++
			t := byName[cand]
			if t == nil || !t.Capabilities().Satisfies(seg.Requires) {
				continue
			}
			if need.Fits(avail(cand)) {
				placed = cand
				break
			}
		}
		if placed == "" {
			// Fall back to a full recompile: everything may move.
			full, err := c.Compile(new, targets, path)
			if err != nil {
				return nil, fmt.Errorf("compiler: incremental fallback failed: %w", err)
			}
			fullInc := &IncrementalPlan{
				Place:          full.Assignments,
				Iterations:     full.Iterations + 1,
				TargetsScanned: out.TargetsScanned + full.TargetsScanned,
			}
			for _, a := range full.Assignments {
				if prev := prevPlan.DeviceFor(a.Segment); prev != "" && prev != a.Device {
					fullInc.Moves++
					fullInc.EntriesMigrated += entryVolume(segOf[a.Segment])
				}
			}
			for _, name := range delta.Removed {
				fullInc.Remove = append(fullInc.Remove, Assignment{Segment: name, Device: prevPlan.DeviceFor(name)})
			}
			return fullInc, nil
		}
		extra[placed] = extra[placed].Add(need)
		out.Place = append(out.Place, Assignment{Segment: name, Device: placed})
	}
	return out, nil
}

// PlaceSegment finds a device for one standalone segment (scale-out
// replica placement): path devices first, then the remaining targets in
// order, first fit that satisfies capabilities, demand, and the device's
// own feasibility check. exclude names devices that must not be chosen
// (replicas already hosting the segment). The second result counts
// targets examined, for the placement cost model.
func PlaceSegment(seg *flexbpf.Program, targets []Target, path []string, exclude map[string]bool) (string, int, error) {
	byName := map[string]Target{}
	for _, t := range targets {
		byName[t.Name()] = t
	}
	need := flexbpf.ProgramDemand(seg)
	scanned := 0
	seen := map[string]bool{}
	try := func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		scanned++
		t := byName[name]
		if t == nil || exclude[name] {
			return false
		}
		if !t.Capabilities().Satisfies(seg.Requires) {
			return false
		}
		if !need.Fits(t.Free()) || !t.CanHost(seg) {
			return false
		}
		return true
	}
	for _, name := range path {
		if try(name) {
			return name, scanned, nil
		}
	}
	for _, t := range targets {
		if try(t.Name()) {
			return t.Name(), scanned, nil
		}
	}
	return "", scanned, fmt.Errorf("compiler: no device fits segment %s (demand %v): %w", seg.Name, need, errdefs.ErrInsufficientResources)
}

// candidateOrder ranks devices for a new segment: first the devices
// hosting the segment's datapath neighbors (maximal adjacency), then the
// path order, then everything else.
func candidateOrder(segName string, dp *flexbpf.Datapath, prev *Plan, path []string, targets []Target) []string {
	var order []string
	seen := map[string]bool{}
	add := func(dev string) {
		if dev != "" && !seen[dev] {
			seen[dev] = true
			order = append(order, dev)
		}
	}
	// Neighbors in the segment chain.
	for i, s := range dp.Segments {
		if s.Name != segName {
			continue
		}
		if i > 0 {
			add(prev.DeviceFor(dp.Segments[i-1].Name))
		}
		if i+1 < len(dp.Segments) {
			add(prev.DeviceFor(dp.Segments[i+1].Name))
		}
	}
	for _, d := range path {
		add(d)
	}
	for _, t := range targets {
		add(t.Name())
	}
	return order
}

// entryVolume estimates how many table entries + map slots migrate when
// a segment moves.
func entryVolume(p *flexbpf.Program) int {
	n := 0
	for _, t := range p.Tables {
		n += t.Size
	}
	for _, m := range p.Maps {
		n += m.MaxEntries
	}
	return n
}
