package compiler

import (
	"fmt"

	"flexnet/internal/dataplane"
	"flexnet/internal/flexbpf"
)

// DeviceTarget adapts a dataplane.Device to the Target interface.
// Removable programs must be registered explicitly by the owner (the
// controller marks tenant-departed or unused programs reclaimable).
type DeviceTarget struct {
	Dev *dataplane.Device
	// removable maps program name → demand, maintained by MarkRemovable.
	removable map[string]flexbpf.Demand
}

// NewDeviceTarget wraps a device.
func NewDeviceTarget(d *dataplane.Device) *DeviceTarget {
	return &DeviceTarget{Dev: d, removable: map[string]flexbpf.Demand{}}
}

// MarkRemovable declares an installed program reclaimable by the
// compiler's garbage-collection primitive.
func (t *DeviceTarget) MarkRemovable(name string) error {
	inst := t.Dev.Instance(name)
	if inst == nil {
		return fmt.Errorf("compiler: %s: no program %q to mark removable", t.Dev.Name(), name)
	}
	t.removable[name] = flexbpf.ProgramDemand(inst.Program())
	return nil
}

// Name implements Target.
func (t *DeviceTarget) Name() string { return t.Dev.Name() }

// Capabilities implements Target.
func (t *DeviceTarget) Capabilities() flexbpf.Capabilities { return t.Dev.Capabilities() }

// Free implements Target.
func (t *DeviceTarget) Free() flexbpf.Demand { return t.Dev.Free() }

// CanHost implements Target via a device dry-run reservation.
func (t *DeviceTarget) CanHost(prog *flexbpf.Program) bool { return t.Dev.CanHost(prog) }

// Fungibility implements Target.
func (t *DeviceTarget) Fungibility() float64 { return t.Dev.Fungibility() }

// BaseLatencyNs implements Target.
func (t *DeviceTarget) BaseLatencyNs() uint64 { return t.Dev.Perf().BaseLatencyNs }

// CapacityPPS implements Target.
func (t *DeviceTarget) CapacityPPS() uint64 { return t.Dev.Perf().CapacityPPS }

// Active implements Target.
func (t *DeviceTarget) Active() bool { return len(t.Dev.Programs()) > 0 }

// IdleWatts implements Target.
func (t *DeviceTarget) IdleWatts() float64 { return t.Dev.Energy().IdleWatts }

// ActiveWatts implements Target.
func (t *DeviceTarget) ActiveWatts() float64 { return t.Dev.Energy().ActiveWatts }

// Repack implements Target.
func (t *DeviceTarget) Repack() (int, error) { return t.Dev.Repack() }

// Removable implements Target.
func (t *DeviceTarget) Removable() map[string]flexbpf.Demand {
	out := make(map[string]flexbpf.Demand, len(t.removable))
	for k, v := range t.removable {
		out[k] = v
	}
	return out
}

// Reclaim implements Target.
func (t *DeviceTarget) Reclaim(name string) error {
	if _, ok := t.removable[name]; !ok {
		return fmt.Errorf("compiler: %s: program %q not removable", t.Dev.Name(), name)
	}
	if err := t.Dev.RemoveProgram(name); err != nil {
		return err
	}
	delete(t.removable, name)
	return nil
}
