package compiler

import (
	"fmt"

	"flexnet/internal/dataplane"
	"flexnet/internal/flexbpf"
)

// DeviceTarget adapts a dataplane.Device to the Target interface.
// Removable programs must be registered explicitly by the owner (the
// controller marks tenant-departed or unused programs reclaimable).
type DeviceTarget struct {
	Dev *dataplane.Device
	// removable maps program name → demand, maintained by MarkRemovable.
	removable map[string]flexbpf.Demand
}

// NewDeviceTarget wraps a device.
func NewDeviceTarget(d *dataplane.Device) *DeviceTarget {
	return &DeviceTarget{Dev: d, removable: map[string]flexbpf.Demand{}}
}

// MarkRemovable declares an installed program reclaimable by the
// compiler's garbage-collection primitive.
func (t *DeviceTarget) MarkRemovable(name string) error {
	inst := t.Dev.Instance(name)
	if inst == nil {
		return fmt.Errorf("compiler: %s: no program %q to mark removable", t.Dev.Name(), name)
	}
	t.removable[name] = flexbpf.ProgramDemand(inst.Program())
	return nil
}

// Name implements Target.
func (t *DeviceTarget) Name() string { return t.Dev.Name() }

// Capabilities implements Target.
func (t *DeviceTarget) Capabilities() flexbpf.Capabilities { return t.Dev.Capabilities() }

// Free implements Target.
func (t *DeviceTarget) Free() flexbpf.Demand { return t.Dev.Free() }

// CanHost implements Target via a device dry-run reservation.
func (t *DeviceTarget) CanHost(prog *flexbpf.Program) bool { return t.Dev.CanHost(prog) }

// Fungibility implements Target.
func (t *DeviceTarget) Fungibility() float64 { return t.Dev.Fungibility() }

// BaseLatencyNs implements Target.
func (t *DeviceTarget) BaseLatencyNs() uint64 { return t.Dev.Perf().BaseLatencyNs }

// CapacityPPS implements Target.
func (t *DeviceTarget) CapacityPPS() uint64 { return t.Dev.Perf().CapacityPPS }

// Active implements Target.
func (t *DeviceTarget) Active() bool { return len(t.Dev.Programs()) > 0 }

// IdleWatts implements Target.
func (t *DeviceTarget) IdleWatts() float64 { return t.Dev.Energy().IdleWatts }

// ActiveWatts implements Target.
func (t *DeviceTarget) ActiveWatts() float64 { return t.Dev.Energy().ActiveWatts }

// Repack implements Target.
func (t *DeviceTarget) Repack() (int, error) { return t.Dev.Repack() }

// Removable implements Target.
func (t *DeviceTarget) Removable() map[string]flexbpf.Demand {
	out := make(map[string]flexbpf.Demand, len(t.removable))
	for k, v := range t.removable {
		out[k] = v
	}
	return out
}

// RefundTarget overlays a Target with demand that should be treated as
// free for the duration of one compilation. The controller uses it to
// recompute an app's placement from scratch: the app's own installed
// replicas still occupy their devices, so a plain full Compile would see
// the fabric as fuller than the placement problem actually is. Refunding
// the app's per-device demand makes repeated full recomputes reproduce
// the original placement deterministically.
//
// CanHost is answered by demand arithmetic against the refunded Free —
// the wrapped device's own dry-run would count the app's live replicas
// and refuse placements that are valid once they are released.
type RefundTarget struct {
	Target
	Refund flexbpf.Demand
}

// Free implements Target with the refund applied.
func (t *RefundTarget) Free() flexbpf.Demand { return t.Target.Free().Add(t.Refund) }

// CanHost implements Target by demand arithmetic over the refunded Free.
func (t *RefundTarget) CanHost(prog *flexbpf.Program) bool {
	return flexbpf.ProgramDemand(prog).Fits(t.Free())
}

// Reclaim implements Target.
func (t *DeviceTarget) Reclaim(name string) error {
	if _, ok := t.removable[name]; !ok {
		return fmt.Errorf("compiler: %s: program %q not removable", t.Dev.Name(), name)
	}
	if err := t.Dev.RemoveProgram(name); err != nil {
		return err
	}
	delete(t.removable, name)
	return nil
}
