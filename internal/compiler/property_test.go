package compiler

import (
	"fmt"
	"math/rand"
	"testing"

	"flexnet/internal/dataplane"
	"flexnet/internal/flexbpf"
)

// TestPlacementNeverOvercommitsProperty: for random datapath streams
// compiled onto real devices, applying every successful plan's installs
// must always succeed — the compiler never promises resources a device
// cannot actually provide.
func TestPlacementNeverOvercommitsProperty(t *testing.T) {
	archs := []dataplane.Arch{dataplane.ArchRMT, dataplane.ArchDRMT, dataplane.ArchTile, dataplane.ArchSoC}
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		var devs []*dataplane.Device
		var targets []Target
		for i := 0; i < 3; i++ {
			cfg := dataplane.DefaultConfig(fmt.Sprintf("sw%d", i), archs[r.Intn(len(archs))])
			// Shrink memory so saturation happens within a few programs.
			cfg.PoolSRAMBits = 1 << 19
			cfg.StageSRAMBits = 1 << 16
			cfg.TileBits = 1 << 14
			cfg.HashTiles, cfg.IndexTiles, cfg.TCAMTiles = 8, 4, 2
			d := dataplane.MustNew(cfg)
			devs = append(devs, d)
			targets = append(targets, NewDeviceTarget(d))
		}
		c := New(StrategyFungible)
		for app := 0; app < 25; app++ {
			prog := randomSegment(r, fmt.Sprintf("t%02da%02d", trial, app))
			dp := &flexbpf.Datapath{Name: prog.Name, Segments: []*flexbpf.Program{prog}}
			plan, err := c.Compile(dp, targets, nil)
			if err != nil {
				continue // refusal is always allowed
			}
			// The promise: the planned install must succeed.
			dev := plan.DeviceFor(prog.Name)
			found := false
			for _, d := range devs {
				if d.Name() == dev {
					found = true
					inst := prog.Clone()
					if err := d.InstallProgram(inst); err != nil {
						t.Fatalf("trial %d app %d: plan promised %s but install failed: %v",
							trial, app, dev, err)
					}
				}
			}
			if !found {
				t.Fatalf("plan names unknown device %q", dev)
			}
		}
	}
}

func randomSegment(r *rand.Rand, name string) *flexbpf.Program {
	b := flexbpf.NewProgram(name).
		Action("a", 1, flexbpf.NewAsm().LdParam(0, 0).Forward(0).MustBuild())
	kind := flexbpf.MatchExact
	if r.Intn(4) == 0 {
		kind = flexbpf.MatchTernary
	}
	tn := name + "_t"
	b.Table(&flexbpf.TableSpec{
		Name:    tn,
		Keys:    []flexbpf.TableKey{{Field: "ipv4.dst", Kind: kind, Bits: 32}},
		Actions: []string{"a"},
		Size:    1 + r.Intn(600),
	}).Apply(tn)
	if r.Intn(2) == 0 {
		b.HashMap(name+"_m", 1+r.Intn(400), 32)
	}
	return b.MustBuild()
}

// TestFungibleNeverWorseProperty: on identical inputs the fungible
// strategy succeeds at least wherever bin-packing does.
func TestFungibleNeverWorseProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		free := flexbpf.Demand{
			SRAMBits:     1 << (14 + r.Intn(6)),
			TCAMBits:     1 << (10 + r.Intn(4)),
			ALUs:         64 + r.Intn(512),
			Tables:       2 + r.Intn(16),
			ParserStates: 8 + r.Intn(16),
		}
		mkTarget := func() Target {
			return &fakeTarget{name: "sw", free: free, pps: 1e9}
		}
		prog := randomSegment(r, fmt.Sprintf("p%d", trial))
		dp := &flexbpf.Datapath{Name: prog.Name, Segments: []*flexbpf.Program{prog}}
		_, errBin := New(StrategyBinPack).Compile(dp, []Target{mkTarget()}, nil)
		_, errFun := New(StrategyFungible).Compile(dp, []Target{mkTarget()}, nil)
		if errBin == nil && errFun != nil {
			t.Fatalf("trial %d: binpack succeeded where fungible failed: %v", trial, errFun)
		}
	}
}
