package compiler

import (
	"testing"

	"flexnet/internal/apps"
	"flexnet/internal/flexbpf"
)

func TestFingerprintIgnoresIdentity(t *testing.T) {
	a := apps.SYNDefense("sd", 512, 5)
	b := apps.SYNDefense("sd", 512, 5)
	b.Owner = "tenant-b"
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical structure, different owner → different fingerprint")
	}
	// Different parameters are structurally different programs.
	c := apps.SYNDefense("sd", 1024, 5)
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different map size collided")
	}
	d := apps.SYNDefense("sd", 512, 9)
	if Fingerprint(a) == Fingerprint(d) {
		t.Fatal("different threshold collided")
	}
}

func TestFingerprintNormalizesNamePrefix(t *testing.T) {
	// The same app generated under two different instance names shares a
	// fingerprint (element names are prefixed by the program name).
	a := apps.HeavyHitter("mon1", 2, 128, 100)
	b := apps.HeavyHitter("mon2", 2, 128, 100)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("renamed instances of the same app do not share a fingerprint")
	}
}

func TestFindSharableCode(t *testing.T) {
	mkDP := func(dpName, appName string, thr uint64) *flexbpf.Datapath {
		return &flexbpf.Datapath{
			Name:     dpName,
			Segments: []*flexbpf.Program{apps.SYNDefense(appName, 512, thr)},
		}
	}
	dps := []*flexbpf.Datapath{
		mkDP("flexnet://a/x", "sd", 5),
		mkDP("flexnet://b/y", "sd", 5), // identical to a/x
		mkDP("flexnet://c/z", "sd", 9), // different threshold
	}
	shared := FindSharableCode(dps)
	if len(shared) != 1 {
		t.Fatalf("shared groups = %d", len(shared))
	}
	if len(shared[0].Segments) != 2 {
		t.Fatalf("group = %v", shared[0].Segments)
	}
	if shared[0].SavedDemand.SRAMBits == 0 {
		t.Fatal("no savings computed")
	}
	// No sharing when everything differs.
	if got := FindSharableCode(dps[2:]); len(got) != 0 {
		t.Fatalf("phantom sharing: %v", got)
	}
}

func TestFingerprintSensitiveToComputeBody(t *testing.T) {
	// Two programs with identical declarations but different inline
	// compute must NOT share a fingerprint: the canonical form includes
	// the disassembled Do blocks, not just the element shapes.
	mk := func(addend uint64) *flexbpf.Program {
		return flexbpf.NewProgram("p").
			HashMap("p_m", 128, 64).
			Do(flexbpf.NewAsm().
				FlowHash(0).
				MapLoad(1, "p_m", 0).
				AddImm(1, addend).
				MapStore("p_m", 0, 1).
				Ret().
				MustBuild()).
			MustBuild()
	}
	if Fingerprint(mk(1)) == Fingerprint(mk(2)) {
		t.Fatal("programs with different compute bodies collided")
	}
	if Fingerprint(mk(1)) != Fingerprint(mk(1)) {
		t.Fatal("identical programs did not collide")
	}
}

func TestFingerprintSensitiveToTableShape(t *testing.T) {
	// Same table name and actions, different match kind: structurally
	// different hardware footprints must not canonicalize together.
	mk := func(kind flexbpf.MatchKind) *flexbpf.Program {
		deny := flexbpf.NewAsm().Drop().MustBuild()
		return flexbpf.NewProgram("p").
			Action("deny", 0, deny).
			Table(&flexbpf.TableSpec{
				Name:    "p_acl",
				Keys:    []flexbpf.TableKey{{Field: "ipv4.src", Kind: kind, Bits: 32}},
				Actions: []string{"deny"},
				Size:    64,
			}).
			Apply("p_acl").
			MustBuild()
	}
	if Fingerprint(mk(flexbpf.MatchExact)) == Fingerprint(mk(flexbpf.MatchTernary)) {
		t.Fatal("exact and ternary tables collided")
	}
}

func TestFingerprintPrefixNormalizationIsNotGlobalRename(t *testing.T) {
	// Normalization only strips the program-name prefix from element
	// names; two programs whose elements differ beyond the prefix stay
	// distinct even when the suffixes line up by accident.
	a := flexbpf.NewProgram("m1").
		HashMap("m1_flows", 128, 64).
		Do(flexbpf.NewAsm().Ret().MustBuild()).
		MustBuild()
	b := flexbpf.NewProgram("m2").
		HashMap("other_flows", 128, 64).
		Do(flexbpf.NewAsm().Ret().MustBuild()).
		MustBuild()
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("unprefixed element name canonicalized as if prefixed")
	}
}
