package compiler

import (
	"testing"

	"flexnet/internal/apps"
	"flexnet/internal/flexbpf"
)

func TestFingerprintIgnoresIdentity(t *testing.T) {
	a := apps.SYNDefense("sd", 512, 5)
	b := apps.SYNDefense("sd", 512, 5)
	b.Owner = "tenant-b"
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical structure, different owner → different fingerprint")
	}
	// Different parameters are structurally different programs.
	c := apps.SYNDefense("sd", 1024, 5)
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different map size collided")
	}
	d := apps.SYNDefense("sd", 512, 9)
	if Fingerprint(a) == Fingerprint(d) {
		t.Fatal("different threshold collided")
	}
}

func TestFingerprintNormalizesNamePrefix(t *testing.T) {
	// The same app generated under two different instance names shares a
	// fingerprint (element names are prefixed by the program name).
	a := apps.HeavyHitter("mon1", 2, 128, 100)
	b := apps.HeavyHitter("mon2", 2, 128, 100)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("renamed instances of the same app do not share a fingerprint")
	}
}

func TestFindSharableCode(t *testing.T) {
	mkDP := func(dpName, appName string, thr uint64) *flexbpf.Datapath {
		return &flexbpf.Datapath{
			Name:     dpName,
			Segments: []*flexbpf.Program{apps.SYNDefense(appName, 512, thr)},
		}
	}
	dps := []*flexbpf.Datapath{
		mkDP("flexnet://a/x", "sd", 5),
		mkDP("flexnet://b/y", "sd", 5), // identical to a/x
		mkDP("flexnet://c/z", "sd", 9), // different threshold
	}
	shared := FindSharableCode(dps)
	if len(shared) != 1 {
		t.Fatalf("shared groups = %d", len(shared))
	}
	if len(shared[0].Segments) != 2 {
		t.Fatalf("group = %v", shared[0].Segments)
	}
	if shared[0].SavedDemand.SRAMBits == 0 {
		t.Fatal("no savings computed")
	}
	// No sharing when everything differs.
	if got := FindSharableCode(dps[2:]); len(got) != 0 {
		t.Fatalf("phantom sharing: %v", got)
	}
}
