// Package telemetry is FlexNet's native observability layer: a
// dependency-free metrics registry (counters, gauges, histograms with
// fixed bucket boundaries) plus a lightweight span tracer keyed on
// ChangePlan IDs (see trace.go).
//
// The paper's control loop — detect, recompile, reconfigure at runtime —
// only works if the network can observe itself: reaction times,
// reconfiguration latencies, and per-device occupancy are exactly what
// the E1–E20 experiments measure. This package makes those signals a
// first-class subsystem instead of ad-hoc counters in tests.
//
// Determinism: all instrument values derive from the simulated clock and
// seeded packet streams, and every rendering (Snapshot.Format, JSON
// snapshots) iterates instruments in sorted-name order. A scenario run
// twice at the same simulator seed therefore produces byte-identical
// telemetry — asserted by tests, and relied on by the CI bench gate.
//
// Handles are nil-safe: every method on a nil *Counter, *Gauge,
// *Histogram, *Trace, or *Span is a no-op, so instrumented code runs
// unchanged when no registry or tracer is configured (e.g. devices built
// directly in micro-benchmarks).
//
// DESIGN.md §6 documents the instrument set, naming conventions, and the determinism gate.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 instrument.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 instrument (occupancy, queue depth, epoch).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (zero for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named instruments. Instruments are created on first
// use and live for the registry's lifetime; lookups after creation are
// lock-free on the instrument itself (callers should resolve handles
// once and reuse them on hot paths).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket boundaries if needed. Boundaries are fixed at creation; later
// calls reuse the existing instrument regardless of bounds. Returns nil
// on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter by name without creating it.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue reads a gauge by name without creating it.
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// MetricPoint is one counter or gauge sample in a snapshot.
type MetricPoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time copy of every instrument, sorted by name.
type Snapshot struct {
	Counters   []MetricPoint       `json:"counters"`
	Gauges     []MetricPoint       `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state in deterministic
// (sorted-name) order. Safe to call concurrently with instrument
// updates; each instrument is read atomically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, MetricPoint{Name: name, Value: int64(r.counters[name].Value())})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, MetricPoint{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.hists) {
		s.Histograms = append(s.Histograms, r.hists[name].snapshot(name))
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Format renders the snapshot as an operator-readable table. The output
// is deterministic: same instrument values, same bytes.
func (s Snapshot) Format() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, p := range s.Counters {
			fmt.Fprintf(&b, "  %-44s %d\n", p.Name, p.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, p := range s.Gauges {
			fmt.Fprintf(&b, "  %-44s %d\n", p.Name, p.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-44s count=%d sum=%d\n", h.Name, h.Count, h.Sum)
			for i, bc := range h.Buckets {
				if bc == 0 {
					continue
				}
				fmt.Fprintf(&b, "    %-42s %d\n", bucketLabel(h.Bounds, i), bc)
			}
		}
	}
	return b.String()
}

func bucketLabel(bounds []int64, i int) string {
	if i < len(bounds) {
		return fmt.Sprintf("le %d:", bounds[i])
	}
	return "le +inf:"
}
