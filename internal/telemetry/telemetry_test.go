package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("pkts") != c {
		t.Fatal("counter not interned by name")
	}
	g := r.Gauge("occ")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if r.CounterValue("pkts") != 5 || r.GaugeValue("occ") != 5 {
		t.Fatal("by-name reads disagree with handles")
	}
	if r.CounterValue("absent") != 0 || r.GaugeValue("absent") != 0 {
		t.Fatal("absent instruments should read zero")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc() // must not panic
	r.Gauge("y").Set(3)
	r.Histogram("z", nil).Observe(1)
	if c.Value() != 0 || r.GaugeValue("y") != 0 {
		t.Fatal("nil registry handles should be inert")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
	var tr *Tracer
	trace := tr.StartTrace("p")
	sp := trace.StartSpan("validate", "")
	sp.EndSpan()
	trace.Finish("succeeded")
	if trace.Format() != "" {
		t.Fatal("nil trace should format empty")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.snapshot("lat")
	// v <= 10 → bucket 0; 10 < v <= 100 → bucket 1; else overflow.
	want := []uint64{2, 2, 2}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Count != 6 || s.Sum != 1+10+11+100+101+5000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	h.Observe(500) // <= 1µs bucket
	s := h.snapshot("lat")
	if len(s.Bounds) != len(DefaultLatencyBounds) {
		t.Fatalf("bounds = %v, want defaults", s.Bounds)
	}
	if s.Buckets[0] != 1 {
		t.Fatalf("first bucket = %d, want 1", s.Buckets[0])
	}
}

// TestSnapshotDeterministic asserts that two registries fed the same
// updates render byte-identical snapshots — the guarantee the CI bench
// gate and the seed-reproducibility tests build on.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		// Create in scrambled order: output must still be sorted.
		r.Counter("z.last").Add(3)
		r.Counter("a.first").Add(1)
		r.Gauge("m.mid").Set(-4)
		h := r.Histogram("lat", []int64{10, 100})
		h.Observe(5)
		h.Observe(50)
		h.Observe(500)
		return r.Snapshot().Format()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("snapshot format not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"a.first", "z.last", "m.mid", "count=3"} {
		if !strings.Contains(a, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, a)
		}
	}
	if strings.Index(a, "a.first") > strings.Index(a, "z.last") {
		t.Fatalf("counters not sorted:\n%s", a)
	}
}

// TestRegistryConcurrent exercises concurrent instrument creation and
// updates; run under -race this is the concurrency-safety check.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h", nil).Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("shared"); got != workers*iters {
		t.Fatalf("shared counter = %d, want %d", got, workers*iters)
	}
	if h := r.Histogram("h", nil); h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
}
