package telemetry

import "testing"

// BenchmarkCounterAdd measures the hot-path cost of a counter bump (one
// atomic add) — this is what every processed packet pays.
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("pkts")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures a latency observation (bucket scan
// plus three atomics).
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 2_000_000))
	}
}

// BenchmarkNilCounter measures the disabled-telemetry path (nil handle).
func BenchmarkNilCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkSnapshot measures a full registry snapshot with a realistic
// instrument population (what a flexnetd "stats" request costs).
func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		r.Counter(fmt64("c", i)).Add(uint64(i))
		r.Gauge(fmt64("g", i)).Set(int64(i))
	}
	for i := 0; i < 8; i++ {
		r.Histogram(fmt64("h", i), nil).Observe(int64(i) * 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

func fmt64(prefix string, i int) string {
	return prefix + "." + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// BenchmarkSpan measures one full span lifecycle inside a trace.
func BenchmarkSpan(b *testing.B) {
	tr := NewTracer(nil)
	trace := tr.StartTrace("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := trace.StartSpan("phase", "dev")
		sp.EndSpan()
	}
}
