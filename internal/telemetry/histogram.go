package telemetry

import "sync/atomic"

// DefaultLatencyBounds are the shared bucket boundaries for latency
// histograms, in nanoseconds: 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s,
// 10s, plus an implicit +inf bucket. They are fixed so histogram output
// is deterministic under the simulator at a given seed and comparable
// across devices and plans.
var DefaultLatencyBounds = []int64{
	1_000,          // 1µs
	10_000,         // 10µs
	100_000,        // 100µs
	1_000_000,      // 1ms
	10_000_000,     // 10ms
	100_000_000,    // 100ms
	1_000_000_000,  // 1s
	10_000_000_000, // 10s
}

// Histogram counts observations into fixed buckets. Buckets are
// cumulative-upper-bound style: observation v lands in the first bucket
// with v <= bound, or the overflow (+inf) bucket. Observe is lock-free.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Uint64 // len(bounds)+1; last is +inf
	count   atomic.Uint64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (zero for a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (zero for a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a histogram's state in a Snapshot. Buckets[i]
// counts observations <= Bounds[i]; the final element counts overflow.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Bounds  []int64  `json:"bounds"`
	Buckets []uint64 `json:"buckets"`
}

func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:    name,
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}
