package telemetry

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// fakeClock is a settable deterministic time source.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64 { return c.t }

func TestSpanLifecycle(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now)

	clk.t = 100
	trace := tr.StartTrace("deploy app")
	if trace.ID != "plan-1" {
		t.Fatalf("first trace ID = %q, want plan-1", trace.ID)
	}
	v := trace.StartSpan("validate", "")
	clk.t = 150
	v.EndSpan()
	v.EndSpan() // double close is a no-op
	p := trace.StartSpan("prepare", "s1")
	clk.t = 400
	p.Fail(errors.New("device fault"))
	rb := trace.StartSpan("rollback", "")
	clk.t = 400
	rb.EndSpan()
	trace.Finish("rolled-back")

	s := trace.Snapshot()
	if s.Outcome != "rolled-back" || s.StartNs != 100 || s.EndNs != 400 {
		t.Fatalf("trace snapshot: %+v", s)
	}
	if len(s.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(s.Spans))
	}
	if s.Spans[0].EndNs != 150 || s.Spans[0].Err != "" {
		t.Fatalf("validate span: %+v", s.Spans[0])
	}
	if s.Spans[1].Device != "s1" || s.Spans[1].Err != "device fault" {
		t.Fatalf("prepare span: %+v", s.Spans[1])
	}
	out := trace.Format()
	for _, want := range []string{"plan-1", "rolled-back", "prepare:s1", "device fault"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now)
	trace := tr.StartTrace("p")
	trace.StartSpan("commit", "")
	clk.t = 777
	trace.Finish("succeeded")
	s := trace.Snapshot()
	if s.Spans[0].EndNs != 777 {
		t.Fatalf("open span not closed at finish: %+v", s.Spans[0])
	}
	// Finishing again must not reopen or move anything.
	clk.t = 999
	trace.Finish("failed")
	if got := trace.Snapshot(); got.Outcome != "succeeded" || got.EndNs != 777 {
		t.Fatalf("double finish mutated trace: %+v", got)
	}
}

func TestTracerLookupAndRetention(t *testing.T) {
	tr := NewTracer(nil)
	tr.keep = 3
	var last *Trace
	for i := 0; i < 5; i++ {
		last = tr.StartTrace(fmt.Sprintf("op %d", i))
	}
	ids := tr.IDs()
	if len(ids) != 3 || ids[0] != "plan-3" || ids[2] != "plan-5" {
		t.Fatalf("retained IDs = %v", ids)
	}
	if tr.Trace("plan-1") != nil {
		t.Fatal("evicted trace still resolvable")
	}
	if tr.Trace("plan-4") == nil {
		t.Fatal("retained trace not resolvable")
	}
	if tr.Last() != last {
		t.Fatal("Last() is not the most recent trace")
	}
}

func TestTraceIDsDeterministic(t *testing.T) {
	run := func() []string {
		tr := NewTracer(nil)
		for i := 0; i < 4; i++ {
			trace := tr.StartTrace("op")
			trace.StartSpan("validate", "").EndSpan()
			trace.Finish("succeeded")
		}
		return tr.IDs()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("id count differs: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ids not deterministic: %v vs %v", a, b)
		}
	}
}
