package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Tracer records plan-scoped execution traces. Every executed ChangePlan
// gets one Trace, keyed by a sequential plan ID ("plan-1", "plan-2", …)
// so IDs are deterministic for a deterministic operation sequence. All
// timestamps come from the supplied clock — under the simulator that is
// simulated time, so traces replay bit-for-bit at a given seed.
type Tracer struct {
	mu     sync.Mutex
	now    func() int64
	nextID uint64
	traces map[string]*Trace
	order  []string
	keep   int
}

// DefaultTraceKeep is how many finished traces a tracer retains.
const DefaultTraceKeep = 256

// NewTracer creates a tracer over the given clock (nanoseconds). A nil
// clock pins all timestamps at zero.
func NewTracer(now func() int64) *Tracer {
	if now == nil {
		now = func() int64 { return 0 }
	}
	return &Tracer{now: now, traces: map[string]*Trace{}, keep: DefaultTraceKeep}
}

// Trace is one plan execution's recorded lifecycle.
type Trace struct {
	tr *Tracer

	ID      string
	Label   string
	Start   int64
	End     int64
	Outcome string
	Spans   []*Span
	done    bool
}

// Span is one timed phase (or per-device slice of a phase) within a
// trace: validate, prepare:<device>, commit, rollback, post steps.
type Span struct {
	tr *Tracer

	Name   string
	Device string
	Start  int64
	End    int64
	Err    string
	open   bool
}

// StartTrace opens a new trace and assigns its plan ID. Returns nil (a
// no-op trace) on a nil tracer.
func (t *Tracer) StartTrace(label string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	tr := &Trace{tr: t, ID: fmt.Sprintf("plan-%d", t.nextID), Label: label, Start: t.now()}
	t.traces[tr.ID] = tr
	t.order = append(t.order, tr.ID)
	if len(t.order) > t.keep {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
	return tr
}

// Trace returns the trace with the given plan ID, or nil.
func (t *Tracer) Trace(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces[id]
}

// Last returns the most recently started trace, or nil.
func (t *Tracer) Last() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.order) == 0 {
		return nil
	}
	return t.traces[t.order[len(t.order)-1]]
}

// IDs returns retained trace IDs, oldest first.
func (t *Tracer) IDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// StartSpan opens a named span (device may be empty for plan-wide
// phases). Returns nil on a nil trace.
func (tr *Trace) StartSpan(name, device string) *Span {
	if tr == nil {
		return nil
	}
	tr.tr.mu.Lock()
	defer tr.tr.mu.Unlock()
	sp := &Span{tr: tr.tr, Name: name, Device: device, Start: tr.tr.now(), open: true}
	tr.Spans = append(tr.Spans, sp)
	return sp
}

// EndSpan closes the span at the current clock. Closing twice is a
// no-op, as is calling on a nil span.
func (sp *Span) EndSpan() { sp.finish("") }

// Fail closes the span recording the error (nil err closes cleanly).
func (sp *Span) Fail(err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	sp.finish(msg)
}

func (sp *Span) finish(errMsg string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if !sp.open {
		return
	}
	sp.open = false
	sp.End = sp.tr.now()
	sp.Err = errMsg
}

// Finish closes the trace with its final outcome; any still-open spans
// are closed at the same instant. Finishing twice is a no-op.
func (tr *Trace) Finish(outcome string) {
	if tr == nil {
		return
	}
	tr.tr.mu.Lock()
	defer tr.tr.mu.Unlock()
	if tr.done {
		return
	}
	tr.done = true
	tr.End = tr.tr.now()
	tr.Outcome = outcome
	for _, sp := range tr.Spans {
		if sp.open {
			sp.open = false
			sp.End = tr.End
		}
	}
}

// SpanSnapshot is one span in a TraceSnapshot.
type SpanSnapshot struct {
	Name    string `json:"name"`
	Device  string `json:"device,omitempty"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	Err     string `json:"error,omitempty"`
}

// TraceSnapshot is a wire/JSON-friendly copy of a trace.
type TraceSnapshot struct {
	ID      string         `json:"id"`
	Label   string         `json:"label"`
	Outcome string         `json:"outcome,omitempty"`
	StartNs int64          `json:"start_ns"`
	EndNs   int64          `json:"end_ns"`
	Spans   []SpanSnapshot `json:"spans"`
}

// Snapshot copies the trace. Safe to call at any point in the trace's
// lifecycle; open spans report EndNs zero.
func (tr *Trace) Snapshot() TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	tr.tr.mu.Lock()
	defer tr.tr.mu.Unlock()
	s := TraceSnapshot{ID: tr.ID, Label: tr.Label, Outcome: tr.Outcome, StartNs: tr.Start, EndNs: tr.End}
	for _, sp := range tr.Spans {
		end := sp.End
		if sp.open {
			end = 0
		}
		s.Spans = append(s.Spans, SpanSnapshot{Name: sp.Name, Device: sp.Device, StartNs: sp.Start, EndNs: end, Err: sp.Err})
	}
	return s
}

// Format renders the trace as an operator-readable multi-line string
// (deterministic: span order is recording order, times are simulated).
func (tr *Trace) Format() string {
	s := tr.Snapshot()
	if s.ID == "" {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %q: %s, %v → %v (%v)\n", s.ID, s.Label, s.Outcome,
		time.Duration(s.StartNs), time.Duration(s.EndNs), time.Duration(s.EndNs-s.StartNs))
	for _, sp := range s.Spans {
		name := sp.Name
		if sp.Device != "" {
			name += ":" + sp.Device
		}
		fmt.Fprintf(&b, "  %-28s %12v +%v", name, time.Duration(sp.StartNs), time.Duration(sp.EndNs-sp.StartNs))
		if sp.Err != "" {
			fmt.Fprintf(&b, " — %s", sp.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
