package dataplane

import (
	"fmt"

	"flexnet/internal/flexbpf"
)

// rmtModel models an RMT pipeline (Tofino/FlexPipe class, §3.3(i)):
// a fixed number of stages, each with its own SRAM, TCAM, ALU, and
// table-slot budget. Match dependencies force dependent tables into
// strictly later stages. Resources are fungible *within* a stage; with
// CrossStageRealloc ("runtime support to reconfigure individual stages"),
// Repack may move tables across stages, making all pipeline resources
// fungible.
type rmtModel struct {
	cfg        Config
	stageCap   flexbpf.Demand
	used       []flexbpf.Demand // per stage
	parserUsed int
	parserCap  int
	placed     map[string]*rmtPlacement
	// placeOrder preserves install order for deterministic repacking.
	placeOrder []string
}

type rmtItem struct {
	name    string
	d       flexbpf.Demand
	isTable bool
}

type rmtPlacement struct {
	progName string
	items    []rmtItem
	deps     [][2]string // table-before-table pairs
	stageOf  map[string]int
	parser   int
	total    flexbpf.Demand
}

func (p *rmtPlacement) demand() flexbpf.Demand { return p.total }

func newRMTModel(cfg Config) *rmtModel {
	m := &rmtModel{
		cfg: cfg,
		stageCap: flexbpf.Demand{
			SRAMBits: cfg.StageSRAMBits,
			TCAMBits: cfg.StageTCAMBits,
			ALUs:     cfg.StageALUs,
			Tables:   cfg.StageTables,
		},
		used:      make([]flexbpf.Demand, cfg.Stages),
		parserCap: 64,
		placed:    map[string]*rmtPlacement{},
	}
	return m
}

// programItems decomposes a program into placeable units.
func programItems(prog *flexbpf.Program) ([]rmtItem, [][2]string, int) {
	var items []rmtItem
	for _, t := range prog.Tables {
		items = append(items, rmtItem{name: "table:" + t.Name, d: flexbpf.TableDemand(prog, t), isTable: true})
	}
	for _, mp := range prog.Maps {
		items = append(items, rmtItem{name: "map:" + mp.Name, d: flexbpf.MapDemand(mp)})
	}
	for _, c := range prog.Counters {
		items = append(items, rmtItem{name: "counter:" + c.Name, d: flexbpf.Demand{SRAMBits: c.Size * 64}})
	}
	for _, mt := range prog.Meters {
		items = append(items, rmtItem{name: "meter:" + mt.Name, d: flexbpf.Demand{SRAMBits: mt.Size * 128}})
	}
	// Inline compute blocks need stage ALUs.
	inline := 0
	for i := range prog.Pipeline {
		if prog.Pipeline[i].Do != nil {
			inline += len(prog.Pipeline[i].Do)
		}
	}
	if inline > 0 {
		items = append(items, rmtItem{name: "compute:" + prog.Name, d: flexbpf.Demand{ALUs: inline}})
	}
	deps := prog.TableDependencies()
	return items, deps, len(prog.RequiredHeaders)
}

// topoTables orders a placement's table items respecting deps; the input
// order breaks ties (deterministic).
func topoTables(items []rmtItem, deps [][2]string) ([]rmtItem, error) {
	pred := map[string][]string{}
	for _, d := range deps {
		pred["table:"+d[1]] = append(pred["table:"+d[1]], "table:"+d[0])
	}
	var tables, rest []rmtItem
	for _, it := range items {
		if it.isTable {
			tables = append(tables, it)
		} else {
			rest = append(rest, it)
		}
	}
	done := map[string]bool{}
	var order []rmtItem
	for len(order) < len(tables) {
		progress := false
		for _, it := range tables {
			if done[it.name] {
				continue
			}
			ready := true
			for _, p := range pred[it.name] {
				if !done[p] {
					ready = false
					break
				}
			}
			if ready {
				done[it.name] = true
				order = append(order, it)
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("dataplane: cyclic table dependencies")
		}
	}
	return append(order, rest...), nil
}

// tryAssign assigns items to stages on scratch usage; returns stage map.
func (m *rmtModel) tryAssign(used []flexbpf.Demand, items []rmtItem, deps [][2]string) (map[string]int, error) {
	ordered, err := topoTables(items, deps)
	if err != nil {
		return nil, err
	}
	pred := map[string][]string{}
	for _, d := range deps {
		pred["table:"+d[1]] = append(pred["table:"+d[1]], "table:"+d[0])
	}
	stageOf := map[string]int{}
	for _, it := range ordered {
		min := 0
		if it.isTable {
			for _, p := range pred[it.name] {
				if s, ok := stageOf[p]; ok && s+1 > min {
					min = s + 1
				}
			}
		}
		placed := false
		for s := min; s < len(used); s++ {
			if used[s].Add(it.d).Fits(m.stageCap) {
				used[s] = used[s].Add(it.d)
				stageOf[it.name] = s
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("dataplane: rmt: no stage fits item %s %v (min stage %d)", it.name, it.d, min)
		}
	}
	return stageOf, nil
}

func (m *rmtModel) place(prog *flexbpf.Program) (placement, error) {
	items, deps, parser := programItems(prog)
	if m.parserUsed+parser > m.parserCap {
		return nil, fmt.Errorf("dataplane: rmt: parser budget exceeded (%d+%d > %d)", m.parserUsed, parser, m.parserCap)
	}
	scratch := append([]flexbpf.Demand(nil), m.used...)
	stageOf, err := m.tryAssign(scratch, items, deps)
	if err != nil {
		return nil, err
	}
	m.used = scratch
	m.parserUsed += parser
	pl := &rmtPlacement{
		progName: prog.Name,
		items:    items,
		deps:     deps,
		stageOf:  stageOf,
		parser:   parser,
		total:    flexbpf.ProgramDemand(prog),
	}
	m.placed[prog.Name] = pl
	m.placeOrder = append(m.placeOrder, prog.Name)
	return pl, nil
}

func (m *rmtModel) release(p placement) {
	pl, ok := p.(*rmtPlacement)
	if !ok {
		return
	}
	if _, here := m.placed[pl.progName]; !here {
		return
	}
	for _, it := range pl.items {
		s := pl.stageOf[it.name]
		m.used[s] = m.used[s].Sub(it.d)
	}
	m.parserUsed -= pl.parser
	delete(m.placed, pl.progName)
	for i, n := range m.placeOrder {
		if n == pl.progName {
			m.placeOrder = append(m.placeOrder[:i], m.placeOrder[i+1:]...)
			break
		}
	}
}

func (m *rmtModel) capacity() flexbpf.Demand {
	return flexbpf.Demand{
		SRAMBits:     m.stageCap.SRAMBits * m.cfg.Stages,
		TCAMBits:     m.stageCap.TCAMBits * m.cfg.Stages,
		ALUs:         m.stageCap.ALUs * m.cfg.Stages,
		Tables:       m.stageCap.Tables * m.cfg.Stages,
		ParserStates: m.parserCap,
	}
}

func (m *rmtModel) free() flexbpf.Demand {
	f := m.capacity()
	for _, u := range m.used {
		f = f.Sub(u)
	}
	f.ParserStates = m.parserCap - m.parserUsed
	return f
}

// fungibility: with cross-stage reallocation all free resources are
// claimable (after a repack); without it, only the best single stage's
// contiguous free space is guaranteed claimable by a new table, so we
// report the mean of per-stage best-case fractions.
func (m *rmtModel) fungibility() float64 {
	cap := m.capacity()
	capBits := float64(cap.SRAMBits + cap.TCAMBits)
	if capBits == 0 {
		return 0
	}
	if m.cfg.CrossStageRealloc {
		f := m.free()
		return float64(f.SRAMBits+f.TCAMBits) / capBits
	}
	best := 0
	for s := range m.used {
		fr := m.stageCap.Sub(m.used[s])
		if v := fr.SRAMBits + fr.TCAMBits; v > best {
			best = v
		}
	}
	return float64(best) / capBits
}

// repack re-derives every placement from scratch in install order,
// counting moved items. Without CrossStageRealloc this is refused: the
// device cannot move live tables between stages.
func (m *rmtModel) repack() (int, error) {
	if !m.cfg.CrossStageRealloc {
		return 0, fmt.Errorf("dataplane: rmt: device does not support cross-stage reallocation")
	}
	scratch := make([]flexbpf.Demand, m.cfg.Stages)
	newStages := map[string]map[string]int{}
	// Deterministic order: install order; big programs first within a
	// from-scratch repack would be better packing, but stability wins.
	names := append([]string(nil), m.placeOrder...)
	for _, name := range names {
		pl := m.placed[name]
		stageOf, err := m.tryAssign(scratch, pl.items, pl.deps)
		if err != nil {
			return 0, fmt.Errorf("dataplane: rmt: repack failed for %s: %w", name, err)
		}
		newStages[name] = stageOf
	}
	moves := 0
	for _, name := range names {
		pl := m.placed[name]
		for item, s := range newStages[name] {
			if pl.stageOf[item] != s {
				moves++
			}
		}
		pl.stageOf = newStages[name]
	}
	m.used = scratch
	return moves, nil
}
