// Package dataplane models runtime-programmable network devices.
//
// It substitutes for the proprietary ASICs the paper builds on (Nvidia
// Spectrum, Broadcom Trident4/Jericho2, Tofino) with architecture models
// that preserve the properties the paper's claims depend on:
//
//   - Resource structure: which resources exist, at what granularity they
//     are fungible (§3.3 "Resource fungibility" for RMT, dRMT,
//     Tiles/Elastic Pipes, SmartNICs/FPGAs/hosts).
//   - Runtime partial reconfiguration: tables, parser states, and whole
//     programs can be added and removed while the device processes
//     packets, atomically with respect to any single packet (§2).
//   - Performance and energy envelopes: per-architecture processing
//     latency, throughput, and power proxies (§3.3 "Performance and
//     energy optimizations").
//
// A Device hosts an ordered chain of ProgramInstances (the infrastructure
// program first, then tenant extensions). A packet is processed by the
// chain snapshot taken at its arrival — one packet never observes a mix
// of two device configurations.
//
// DESIGN.md §2 (S3) inventories the architecture models and §1 the substitution argument; crash semantics are DESIGN.md §10.1.
package dataplane

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"flexnet/internal/errdefs"
	"flexnet/internal/flexbpf"
	"flexnet/internal/flowcache"
	"flexnet/internal/packet"
	"flexnet/internal/telemetry"
)

// Arch identifies a device architecture class.
type Arch uint8

// Architecture classes from §3.3.
const (
	// ArchRMT is a reconfigurable match table pipeline (Tofino,
	// FlexPipe): fixed stages, resources fungible within a stage.
	ArchRMT Arch = iota
	// ArchDRMT is disaggregated RMT (Spectrum-like): run-to-completion
	// processors with a shared memory pool; memory fungible globally.
	ArchDRMT
	// ArchTile is a tiled architecture (Trident4): typed tiles (hash,
	// index, TCAM); fungibility within tile types.
	ArchTile
	// ArchElasticPipe is a fixed pipeline extended by a programmable
	// element matrix (Jericho2).
	ArchElasticPipe
	// ArchSoC is a SoC SmartNIC or FPGA: fully fungible resources.
	ArchSoC
	// ArchHost is a host kernel stack (eBPF): fully fungible, slowest.
	ArchHost
)

func (a Arch) String() string {
	switch a {
	case ArchRMT:
		return "rmt"
	case ArchDRMT:
		return "drmt"
	case ArchTile:
		return "tile"
	case ArchElasticPipe:
		return "elasticpipe"
	case ArchSoC:
		return "soc"
	case ArchHost:
		return "host"
	default:
		return fmt.Sprintf("arch(%d)", uint8(a))
	}
}

// PerfModel captures an architecture's packet-processing performance.
type PerfModel struct {
	// BaseLatencyNs is the pipeline transit latency.
	BaseLatencyNs uint64
	// PerInstrNs is added latency per executed instruction.
	PerInstrNs uint64
	// PerLookupNs is added latency per table lookup.
	PerLookupNs uint64
	// CapacityPPS is the sustainable packet rate.
	CapacityPPS uint64
}

// EnergyModel is the device power proxy used by the energy experiments.
type EnergyModel struct {
	// IdleWatts is drawn whenever the device is powered.
	IdleWatts float64
	// ActiveWatts is added while at least one program is installed.
	ActiveWatts float64
	// PerPacketNanojoule is dynamic energy per processed packet.
	PerPacketNanojoule float64
}

// archModel is the architecture-specific resource manager. Implementations
// are not safe for concurrent use; Device serializes all calls.
type archModel interface {
	// place reserves resources for a program, returning an opaque
	// placement handle. It must either fully succeed or leave the model
	// unchanged.
	place(prog *flexbpf.Program) (placement, error)
	// release returns a placement's resources to the pool.
	release(placement)
	// free reports currently available resources in Demand units
	// (aggregated; per-region constraints may still reject a fit).
	free() flexbpf.Demand
	// capacity reports total resources.
	capacity() flexbpf.Demand
	// fungibility returns the fraction of total resources that could be
	// reassigned to a new program right now (1.0 = fully fungible).
	fungibility() float64
	// repack re-derives all placements from scratch to defragment; it
	// returns the number of moved allocation units, or an error if the
	// current program set cannot be repacked (should not happen).
	repack() (moves int, err error)
}

// placement is an opaque per-program resource reservation.
type placement interface {
	demand() flexbpf.Demand
}

// Config describes a device to be created.
type Config struct {
	Name string
	Arch Arch
	// Ports is the number of attached ports.
	Ports int
	// Seed seeds the device-local random source. Zero means "derive":
	// the embedding fabric draws a seed from the simulation's seeded
	// rng, so all per-device randomness descends from the single
	// simulation seed and every run replays bit-for-bit.
	Seed int64

	// Architecture geometry. Zero values select sensible defaults
	// per architecture (see DefaultConfig).
	Stages        int // RMT: pipeline stages
	Processors    int // dRMT: MA processors
	HashTiles     int // Tile: hash tile count
	IndexTiles    int // Tile: index tile count
	TCAMTiles     int // Tile: TCAM tile count
	PEMElements   int // ElasticPipe: programmable elements
	TileBits      int // Tile/ElasticPipe: bits per tile
	StageSRAMBits int // RMT: per-stage SRAM
	StageTCAMBits int // RMT: per-stage TCAM
	StageALUs     int // RMT: per-stage ALUs
	StageTables   int // RMT: max tables per stage
	PoolSRAMBits  int // dRMT/SoC/host: shared memory pool
	PoolTCAMBits  int // dRMT: shared TCAM pool
	CyclesBudget  int // dRMT/SoC/host: per-packet instruction budget (total)

	// CrossStageRealloc enables the paper's "runtime support to
	// reconfigure individual stages" on RMT, making all pipeline
	// resources fungible rather than only same-stage resources.
	CrossStageRealloc bool

	Perf   PerfModel
	Energy EnergyModel
}

// DefaultConfig returns a realistic configuration for the architecture.
// Geometry loosely follows public numbers for the respective device
// classes, scaled down so experiments run quickly.
func DefaultConfig(name string, arch Arch) Config {
	c := Config{Name: name, Arch: arch, Ports: 32}
	switch arch {
	case ArchRMT:
		c.Stages = 12
		c.StageSRAMBits = 1 << 22 // 512 KB per stage
		c.StageTCAMBits = 1 << 19 // 64 KB per stage
		c.StageALUs = 224
		c.StageTables = 8
		c.Perf = PerfModel{BaseLatencyNs: 400, PerInstrNs: 0, PerLookupNs: 0, CapacityPPS: 1_000_000_000}
		c.Energy = EnergyModel{IdleWatts: 150, ActiveWatts: 60, PerPacketNanojoule: 15}
	case ArchDRMT:
		c.Processors = 32
		c.PoolSRAMBits = 12 << 22
		c.PoolTCAMBits = 12 << 19
		c.CyclesBudget = 32 * 96
		c.Perf = PerfModel{BaseLatencyNs: 500, PerInstrNs: 1, PerLookupNs: 5, CapacityPPS: 800_000_000}
		c.Energy = EnergyModel{IdleWatts: 140, ActiveWatts: 70, PerPacketNanojoule: 18}
	case ArchTile:
		c.HashTiles = 32
		c.IndexTiles = 16
		c.TCAMTiles = 8
		c.TileBits = 1 << 20
		c.Perf = PerfModel{BaseLatencyNs: 450, PerInstrNs: 0, PerLookupNs: 2, CapacityPPS: 900_000_000}
		c.Energy = EnergyModel{IdleWatts: 160, ActiveWatts: 65, PerPacketNanojoule: 16}
	case ArchElasticPipe:
		c.PEMElements = 16
		c.HashTiles = 24
		c.IndexTiles = 12
		c.TCAMTiles = 6
		c.TileBits = 1 << 20
		c.Perf = PerfModel{BaseLatencyNs: 480, PerInstrNs: 0, PerLookupNs: 2, CapacityPPS: 900_000_000}
		c.Energy = EnergyModel{IdleWatts: 170, ActiveWatts: 70, PerPacketNanojoule: 17}
	case ArchSoC:
		c.PoolSRAMBits = 64 << 22 // generous DRAM-backed memory
		c.CyclesBudget = 4096
		c.Perf = PerfModel{BaseLatencyNs: 2_000, PerInstrNs: 5, PerLookupNs: 20, CapacityPPS: 50_000_000}
		c.Energy = EnergyModel{IdleWatts: 25, ActiveWatts: 30, PerPacketNanojoule: 120}
	case ArchHost:
		c.PoolSRAMBits = 256 << 22
		c.CyclesBudget = 1 << 16
		c.Perf = PerfModel{BaseLatencyNs: 10_000, PerInstrNs: 20, PerLookupNs: 50, CapacityPPS: 5_000_000}
		c.Energy = EnergyModel{IdleWatts: 80, ActiveWatts: 120, PerPacketNanojoule: 900}
	}
	return c
}

// Capabilities returns what programs this architecture can host.
func (a Arch) Capabilities() flexbpf.Capabilities {
	switch a {
	case ArchRMT:
		return flexbpf.Capabilities{TCAM: true, PerFlowState: true}
	case ArchDRMT, ArchTile, ArchElasticPipe:
		return flexbpf.Capabilities{TCAM: true, PerFlowState: true}
	case ArchSoC:
		return flexbpf.Capabilities{TCAM: true, PerFlowState: true, GeneralCompute: true}
	case ArchHost:
		return flexbpf.Capabilities{TCAM: true, PerFlowState: true, GeneralCompute: true, Transport: true}
	default:
		return flexbpf.Capabilities{}
	}
}

// config holds a view of the device's packet-visible configuration; it is
// swapped atomically so each packet sees exactly one version.
type config struct {
	epoch     uint64
	parser    *packet.ParseGraph
	instances []*ProgramInstance
	// fp caches the flow-cache static analysis for this configuration
	// (see fastpath.go); computed lazily, immutable once stored.
	fp atomic.Pointer[fastpathInfo]
}

// ProcStats describes one packet's processing outcome on a device.
type ProcStats struct {
	Verdict packet.Verdict
	// Epoch is the device configuration version that processed the packet.
	Epoch uint64
	// LatencyNs is modelled processing latency.
	LatencyNs uint64
	// Instrs and Lookups aggregate across all program instances run.
	Instrs  int
	Lookups int
	// Programs lists the instance names that processed the packet.
	Programs []string
}

// Counters aggregates device lifetime statistics.
type Counters struct {
	Processed  uint64
	Dropped    uint64
	Forwarded  uint64
	Punted     uint64
	Recircs    uint64
	DrainDrops uint64 // packets dropped because the device was draining
	Errors     uint64
}

// Device is a runtime-programmable network device.
type Device struct {
	name string
	cfg  Config
	caps flexbpf.Capabilities

	// current holds *config; swapped atomically on reconfiguration.
	current atomic.Value

	// mu serializes control-plane mutations (installs, removals, parser
	// edits). The data plane never takes it.
	mu         sync.Mutex
	model      archModel
	placements map[string]placement
	order      []string // instance order (install order, infra first)
	draining   atomic.Bool
	down       atomic.Bool
	// downAt records the simulated time of the last Crash, and downGen
	// counts crashes; the controller's healer compares generations to
	// detect restarts it has not yet reconciled (DESIGN.md §10).
	downAt  atomic.Uint64
	downGen atomic.Uint64
	// fault, when set, can fail control-plane operations by phase
	// (test-only fault injection; see SetFaultInjector). Guarded by mu.
	fault FaultInjector

	rng *rand.Rand
	// now supplies simulation time; settable by the harness.
	now func() uint64

	stats struct {
		mu sync.Mutex
		c  Counters
	}
	// processed counts packets for energy accounting.
	processed atomic.Uint64

	// met holds pre-resolved telemetry handles (nil handles are inert),
	// so the per-packet path pays only atomic bumps, never map lookups.
	met deviceMetrics

	// fcache is the megaflow flow cache (nil = disabled); fcMet its
	// instruments. Both are wired at build time (EnableFlowCache), before
	// traffic, and read lock-free on the packet path. See fastpath.go.
	fcache *flowcache.Cache
	fcMet  fcMetrics

	// batch holds batch-mode execution state, owned by the device's
	// serialized shard group (see BeginBatch/EndBatch in fastpath.go).
	batch deviceBatch

	// lcache, when set, memoizes install-time linking across instances
	// (fabric-wide; see SetLinkCache and DESIGN.md §13.3). Guarded by mu
	// like the other control-plane wiring.
	lcache *linkCacheHook
}

// deviceMetrics are the device's live telemetry instruments. All handles
// are nil (no-ops) until SetMetrics wires a registry.
type deviceMetrics struct {
	packets    *telemetry.Counter
	dropped    *telemetry.Counter
	lookups    *telemetry.Counter
	faults     *telemetry.Counter
	epochFlips *telemetry.Counter
	epoch      *telemetry.Gauge
	programs   *telemetry.Gauge
	occupancy  *telemetry.Gauge
	latency    *telemetry.Histogram
}

// SetMetrics registers this device's instruments in reg under the
// "dev.<name>." prefix: packets processed, table hits, occupancy, fault
// injections, and epoch flips, plus a processing-latency histogram. The
// embedding fabric calls this at build time, before any traffic flows —
// the handles are read lock-free on the packet path, so they must not be
// swapped while the device processes packets. Devices without a registry
// run with inert nil handles.
func (d *Device) SetMetrics(reg *telemetry.Registry) {
	prefix := "dev." + d.name + "."
	d.mu.Lock()
	defer d.mu.Unlock()
	d.met = deviceMetrics{
		packets:    reg.Counter(prefix + "packets_processed"),
		dropped:    reg.Counter(prefix + "packets_dropped"),
		lookups:    reg.Counter(prefix + "table_lookups"),
		faults:     reg.Counter(prefix + "fault_injections"),
		epochFlips: reg.Counter(prefix + "epoch_flips"),
		epoch:      reg.Gauge(prefix + "epoch"),
		programs:   reg.Gauge(prefix + "programs"),
		occupancy:  reg.Gauge(prefix + "occupancy_ppm"),
		latency:    reg.Histogram(prefix+"proc_latency_ns", telemetry.DefaultLatencyBounds),
	}
	d.met.epoch.Set(int64(d.snapshot().epoch))
	d.exportOccupancyLocked()
}

// SetLinkCache wires a (typically fabric-wide) install-time link cache:
// subsequent installs of content-identical programs rebind a shared
// lowering instead of re-linking (DESIGN.md §13.3). reg, when non-nil,
// receives the "linkcache.hits"/"linkcache.misses" counters; devices
// sharing one registry share the instruments. Call at build time,
// alongside SetMetrics, before control-plane traffic.
func (d *Device) SetLinkCache(lc *flexbpf.LinkCache, reg *telemetry.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if lc == nil {
		d.lcache = nil
		return
	}
	hook := &linkCacheHook{cache: lc}
	if reg != nil {
		hook.hits = reg.Counter("linkcache.hits")
		hook.misses = reg.Counter("linkcache.misses")
	}
	d.lcache = hook
}

// exportOccupancyLocked refreshes the occupancy and program-count
// gauges from the resource model. Caller holds d.mu.
func (d *Device) exportOccupancyLocked() {
	d.met.programs.Set(int64(len(d.placements)))
	if d.met.occupancy == nil {
		return
	}
	cap := d.model.capacity()
	free := d.model.free()
	if cap.SRAMBits > 0 {
		d.met.occupancy.Set(int64(cap.SRAMBits-free.SRAMBits) * 1_000_000 / int64(cap.SRAMBits))
	}
}

// New creates a device from config.
func New(cfg Config) (*Device, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("dataplane: device needs a name")
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 32
	}
	var model archModel
	switch cfg.Arch {
	case ArchRMT:
		model = newRMTModel(cfg)
	case ArchDRMT:
		model = newDRMTModel(cfg)
	case ArchTile, ArchElasticPipe:
		model = newTileModel(cfg)
	case ArchSoC, ArchHost:
		model = newPoolModel(cfg)
	default:
		return nil, fmt.Errorf("dataplane: unknown architecture %v", cfg.Arch)
	}
	d := &Device{
		name:       cfg.Name,
		cfg:        cfg,
		caps:       cfg.Arch.Capabilities(),
		model:      model,
		placements: map[string]placement{},
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		now:        func() uint64 { return 0 },
	}
	d.current.Store(&config{epoch: 1, parser: packet.StandardParseGraph()})
	return d, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Arch returns the architecture class.
func (d *Device) Arch() Arch { return d.cfg.Arch }

// Ports returns the port count.
func (d *Device) Ports() int { return d.cfg.Ports }

// Capabilities returns hosted-program capabilities.
func (d *Device) Capabilities() flexbpf.Capabilities { return d.caps }

// Perf returns the performance model.
func (d *Device) Perf() PerfModel { return d.cfg.Perf }

// Energy returns the energy model.
func (d *Device) Energy() EnergyModel { return d.cfg.Energy }

// SetClock installs the simulation time source used by meters and
// OpNow. The default clock is stuck at zero.
func (d *Device) SetClock(now func() uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = now
	cfg := d.snapshot()
	for _, inst := range cfg.instances {
		inst.now = now
	}
}

func (d *Device) snapshot() *config { return d.current.Load().(*config) }

// Epoch returns the current configuration version.
func (d *Device) Epoch() uint64 { return d.snapshot().epoch }

// commit publishes a new configuration with epoch+1. Caller holds d.mu.
// Every commit wholesale-invalidates the flow cache: the cache rides the
// same epoch-atomic boundary as the configuration swap, so a hitless
// swap stays hitless — no packet arriving after the commit can replay a
// pre-commit outcome (DESIGN.md §12).
func (d *Device) commit(next *config) {
	next.epoch = d.snapshot().epoch + 1
	d.current.Store(next)
	if d.fcache != nil {
		d.fcache.Invalidate(next.epoch)
		d.fcMet.invalidations.Inc()
	}
	d.met.epochFlips.Inc()
	d.met.epoch.Set(int64(next.epoch))
	d.exportOccupancyLocked()
}

// CanHost reports whether the device could place prog right now (a
// dry-run reservation). Aggregate Demand arithmetic can overpromise on
// architectures with typed sub-pools (tile devices, per-stage RMT), so
// the compiler asks the device itself.
func (d *Device) CanHost(prog *flexbpf.Program) bool {
	if !d.caps.Satisfies(prog.Requires) {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	pl, err := d.model.place(prog)
	if err != nil {
		return false
	}
	d.model.release(pl)
	return true
}

// Free returns available device resources.
func (d *Device) Free() flexbpf.Demand {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.model.free()
}

// Capacity returns total device resources.
func (d *Device) Capacity() flexbpf.Demand {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.model.capacity()
}

// Fungibility returns the fraction of resources reclaimable for new
// programs right now (architecture-dependent, §3.3).
func (d *Device) Fungibility() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.model.fungibility()
}

// Programs returns installed instance names in processing order.
func (d *Device) Programs() []string {
	cfg := d.snapshot()
	out := make([]string, len(cfg.instances))
	for i, inst := range cfg.instances {
		out[i] = inst.prog.Name
	}
	return out
}

// Instance returns the named program instance, or nil.
func (d *Device) Instance(name string) *ProgramInstance {
	for _, inst := range d.snapshot().instances {
		if inst.prog.Name == name {
			return inst
		}
	}
	return nil
}

// InstallOptions tunes a program installation.
type InstallOptions struct {
	// Filter restricts which packets the instance processes (tenant VLAN
	// isolation, §3 scenario).
	Filter *flexbpf.Cond
	// Priority orders the device's program chain: lower runs first.
	// Extensions default to PriorityExtension; the infrastructure
	// forwarding program uses PriorityInfra so it runs last (its Forward
	// verdict terminates the chain).
	Priority int
}

// Chain priorities.
const (
	// PriorityExtension is the default for apps and tenant extensions.
	PriorityExtension = 100
	// PriorityInfra is for the terminal forwarding program.
	PriorityInfra = 1000
)

// InstallProgram verifies, places, and atomically activates a program
// while the device keeps processing traffic. This is the runtime partial
// reconfiguration primitive of §2: the swap is hitless — packets in
// flight complete under the old configuration; packets arriving after
// the commit see the new one.
func (d *Device) InstallProgram(prog *flexbpf.Program) error {
	return d.InstallProgramOpt(prog, InstallOptions{Priority: PriorityExtension})
}

// InstallProgramFiltered installs a program guarded by a filter.
func (d *Device) InstallProgramFiltered(prog *flexbpf.Program, cond *flexbpf.Cond) error {
	return d.InstallProgramOpt(prog, InstallOptions{Filter: cond, Priority: PriorityExtension})
}

// InstallProgramOpt installs a program with explicit options.
func (d *Device) InstallProgramOpt(prog *flexbpf.Program, opts InstallOptions) error {
	cond := opts.Filter
	if err := flexbpf.Verify(prog); err != nil {
		return fmt.Errorf("dataplane: %s: refusing unverified program: %w: %w", d.name, errdefs.ErrVerifyFailed, err)
	}
	if !d.caps.Satisfies(prog.Requires) {
		return fmt.Errorf("dataplane: %s (%v) lacks capabilities for program %s", d.name, d.cfg.Arch, prog.Name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down.Load() {
		return fmt.Errorf("dataplane: %s: %w", d.name, errdefs.ErrDeviceDown)
	}
	if _, dup := d.placements[prog.Name]; dup {
		return fmt.Errorf("dataplane: %s: program %s already installed", d.name, prog.Name)
	}
	pl, err := d.model.place(prog)
	if err != nil {
		return fmt.Errorf("dataplane: %s: %w: %w", d.name, errdefs.ErrInsufficientResources, err)
	}
	inst, err := newInstance(prog, cond, d.rng, d.now, d.lcache)
	if err != nil {
		d.model.release(pl)
		return err
	}
	inst.priority = normPriority(opts.Priority)
	old := d.snapshot()
	next := &config{
		parser:    old.parser,
		instances: sortByPriority(append(append([]*ProgramInstance(nil), old.instances...), inst)),
	}
	d.placements[prog.Name] = pl
	d.order = append(d.order, prog.Name)
	d.commit(next)
	return nil
}

func normPriority(p int) int {
	if p == 0 {
		return PriorityExtension
	}
	return p
}

// sortByPriority orders the chain by priority (stable: equal priorities
// keep install order).
func sortByPriority(insts []*ProgramInstance) []*ProgramInstance {
	sort.SliceStable(insts, func(i, j int) bool { return insts[i].priority < insts[j].priority })
	return insts
}

// RemoveProgram removes a program and reclaims its resources (§1.1:
// "Tenant departures trigger program removal to trim the network and
// release unused resources").
func (d *Device) RemoveProgram(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down.Load() {
		return fmt.Errorf("dataplane: %s: %w", d.name, errdefs.ErrDeviceDown)
	}
	pl, ok := d.placements[name]
	if !ok {
		return fmt.Errorf("dataplane: %s: program %s not installed", d.name, name)
	}
	old := d.snapshot()
	next := &config{parser: old.parser}
	for _, inst := range old.instances {
		if inst.prog.Name != name {
			next.instances = append(next.instances, inst)
		}
	}
	d.model.release(pl)
	delete(d.placements, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.commit(next)
	return nil
}

// Repack defragments device resources by re-deriving all placements
// (RMT cross-stage reallocation, tile compaction). Returns allocation
// units moved. Runtime engines call this during fungible compilation
// (§3.3 "resource reallocation and garbage collection").
func (d *Device) Repack() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.model.repack()
}

// UpdateParser atomically replaces the parse graph after validation.
// Used to add/remove header support at runtime (§2: "Parser states can
// be similarly manipulated to add and remove header types").
func (d *Device) UpdateParser(mutate func(*packet.ParseGraph) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.snapshot()
	ng := old.parser.Clone()
	if err := mutate(ng); err != nil {
		return fmt.Errorf("dataplane: %s: parser update rejected: %w", d.name, err)
	}
	if err := ng.Validate(); err != nil {
		return fmt.Errorf("dataplane: %s: parser update invalid: %w", d.name, err)
	}
	next := &config{parser: ng, instances: old.instances}
	d.commit(next)
	return nil
}

// Parser returns the active parse graph (do not mutate; use UpdateParser).
func (d *Device) Parser() *packet.ParseGraph { return d.snapshot().parser }

// SetDraining marks the device as draining: all arriving packets are
// dropped. This models the compile-time reconfiguration baseline
// (isolate → reflash → redeploy, §1).
func (d *Device) SetDraining(v bool) { d.draining.Store(v) }

// Draining reports drain state.
func (d *Device) Draining() bool { return d.draining.Load() }

// SetDown fails (or restores) the device: arriving packets are dropped
// and every control-plane operation returns ErrDeviceDown.
func (d *Device) SetDown(v bool) { d.down.Store(v) }

// Down reports whether the device is down.
func (d *Device) Down() bool { return d.down.Load() }

// Crash fail-stops the device with loss of all installed state: every
// placement is released and the config reverts to an empty parse-only
// pipeline, as if the switch power-cycled. Unlike SetDown (which models
// a transient management-path outage with configuration intact), a
// crashed device restarts empty and must be reconciled by the
// controller's healer (DESIGN.md §10). Crash bumps the device's crash
// generation and records the simulated crash time for MTTR accounting.
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down.Store(true)
	d.downAt.Store(d.now())
	d.downGen.Add(1)
	for _, pl := range d.placements {
		d.model.release(pl)
	}
	d.placements = map[string]placement{}
	d.order = nil
	d.commit(&config{parser: packet.StandardParseGraph()})
}

// Restart brings a crashed (or SetDown) device back up. After a Crash
// the device comes back with no programs and no table state; recovery
// is the controller's job, not the device's.
func (d *Device) Restart() { d.down.Store(false) }

// LastDownAt returns the simulated time of the most recent Crash
// (0 if the device never crashed).
func (d *Device) LastDownAt() uint64 { return d.downAt.Load() }

// DownGen returns the crash generation: the number of Crash calls so
// far. Reconciliation loops remember the last generation they healed
// and act when it advances, which stays correct across crashes they
// never directly observed.
func (d *Device) DownGen() uint64 { return d.downGen.Load() }

// FaultOp names a control-plane phase for fault injection.
type FaultOp string

// Injectable fault points.
const (
	FaultValidate FaultOp = "validate"
	FaultPrepare  FaultOp = "prepare"
	FaultCommit   FaultOp = "commit"
	FaultMigrate  FaultOp = "migrate"
)

// FaultInjector lets tests fail a device's control-plane operations at a
// chosen phase. Returning a non-nil error fails the operation as if the
// device's management path had died mid-plan.
type FaultInjector func(device string, op FaultOp) error

// SetFaultInjector installs (or clears, with nil) the fault injector.
func (d *Device) SetFaultInjector(fi FaultInjector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = fi
}

// FaultCheck returns the error this device would inject for op: the
// device being down, or whatever the fault injector reports.
func (d *Device) FaultCheck(op FaultOp) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faultLocked(op)
}

// faultLocked is FaultCheck with d.mu held.
func (d *Device) faultLocked(op FaultOp) error {
	if d.down.Load() {
		return fmt.Errorf("dataplane: %s: %w", d.name, errdefs.ErrDeviceDown)
	}
	if d.fault != nil {
		if err := d.fault(d.name, op); err != nil {
			d.met.faults.Inc()
			return err
		}
	}
	return nil
}

// Swap atomically replaces the whole program set and parser in one
// epoch bump: the network-wide consistent-update building block. The
// prepare function receives install/remove primitives that act on a
// staged copy; nothing becomes visible until it returns nil.
func (d *Device) Swap(prepare func(stage *StagedConfig) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down.Load() {
		return fmt.Errorf("dataplane: %s: %w", d.name, errdefs.ErrDeviceDown)
	}
	st := d.newStagedLocked()
	if err := prepare(st); err != nil {
		st.releaseLocked()
		return err
	}
	d.applyStagedLocked(st)
	return nil
}

// newStagedLocked starts a staged configuration from the current one.
// Caller holds d.mu.
func (d *Device) newStagedLocked() *StagedConfig {
	old := d.snapshot()
	return &StagedConfig{
		dev:       d,
		parser:    old.parser.Clone(),
		instances: append([]*ProgramInstance(nil), old.instances...),
		added:     map[string]placement{},
	}
}

// releaseLocked returns all staged-but-unactivated placements to the
// pool. Caller holds d.mu.
func (st *StagedConfig) releaseLocked() {
	for _, pl := range st.added {
		st.dev.model.release(pl)
	}
	st.added = map[string]placement{}
}

// applyStagedLocked makes a staged configuration live: removed programs'
// placements are released, staged placements adopted, and the new config
// committed with epoch+1. It returns the programs whose placements were
// released, so a PreparedChange can re-place them on revert. Caller
// holds d.mu.
func (d *Device) applyStagedLocked(st *StagedConfig) map[string]*flexbpf.Program {
	removed := map[string]*flexbpf.Program{}
	old := d.snapshot()
	for _, name := range st.removed {
		if pl, ok := d.placements[name]; ok {
			for _, inst := range old.instances {
				if inst.prog.Name == name {
					removed[name] = inst.prog
					break
				}
			}
			d.model.release(pl)
			delete(d.placements, name)
			for i, n := range d.order {
				if n == name {
					d.order = append(d.order[:i], d.order[i+1:]...)
					break
				}
			}
		}
	}
	for name, pl := range st.added {
		d.placements[name] = pl
		d.order = append(d.order, name)
	}
	d.commit(&config{parser: st.parser, instances: st.instances})
	return removed
}

// PrepareChange stages a configuration change without activating it: the
// first half of the executor's two-phase commit. Resources are reserved
// and instances built, but packets keep seeing the old configuration
// until Activate. On error nothing is retained.
//
// Prepared changes are not stackable: the executor serializes plans, and
// Activate refuses to fire if the device was reconfigured by anything
// else since PrepareChange.
func (d *Device) PrepareChange(build func(stage *StagedConfig) error) (*PreparedChange, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.faultLocked(FaultPrepare); err != nil {
		return nil, err
	}
	st := d.newStagedLocked()
	if err := build(st); err != nil {
		st.releaseLocked()
		return nil, err
	}
	return &PreparedChange{dev: d, base: d.snapshot(), staged: st}, nil
}

// PreparedChange is a staged device change awaiting Activate or Abort.
type PreparedChange struct {
	dev    *Device
	base   *config // configuration the staging was built against
	staged *StagedConfig
	// next and removed are filled by Activate for Revert.
	next      *config
	removed   map[string]*flexbpf.Program
	activated bool
	released  bool
}

// Device returns the device this change is staged on.
func (p *PreparedChange) Device() *Device { return p.dev }

// Activate commits the staged change in one epoch bump. It fails — and
// leaves the device untouched, staging intact — if the device is down,
// the fault injector fires, or the device was reconfigured since
// PrepareChange (stale staging).
func (p *PreparedChange) Activate() error {
	d := p.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if p.activated {
		return fmt.Errorf("dataplane: %s: prepared change already activated", d.name)
	}
	if p.released {
		return fmt.Errorf("dataplane: %s: prepared change was aborted", d.name)
	}
	if err := d.faultLocked(FaultCommit); err != nil {
		return err
	}
	if d.snapshot() != p.base {
		return fmt.Errorf("dataplane: %s: device reconfigured since prepare (epoch %d != %d)", d.name, d.snapshot().epoch, p.base.epoch)
	}
	p.removed = d.applyStagedLocked(p.staged)
	p.next = d.snapshot()
	p.activated = true
	return nil
}

// Abort discards a staged-but-unactivated change, returning its
// reserved resources. Safe to call more than once.
func (p *PreparedChange) Abort() {
	d := p.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if p.activated || p.released {
		return
	}
	p.staged.releaseLocked()
	p.released = true
}

// Revert undoes an activated change, restoring the exact pre-change
// configuration (the base instances carry their state, so the device is
// byte-identical to its pre-plan snapshot). It fails if the device was
// reconfigured again after Activate.
func (p *PreparedChange) Revert() error {
	d := p.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if !p.activated {
		return fmt.Errorf("dataplane: %s: revert of unactivated change", d.name)
	}
	if d.snapshot() != p.next {
		return fmt.Errorf("dataplane: %s: device reconfigured since commit; cannot revert", d.name)
	}
	// Undo adds: release their placements.
	for name := range p.staged.added {
		if pl, ok := d.placements[name]; ok {
			d.model.release(pl)
			delete(d.placements, name)
			for i, n := range d.order {
				if n == name {
					d.order = append(d.order[:i], d.order[i+1:]...)
					break
				}
			}
		}
	}
	// Undo removes: re-place the old programs (their resources are free
	// again because the plan holds the only outstanding change).
	for name, prog := range p.removed {
		pl, err := d.model.place(prog)
		if err != nil {
			return fmt.Errorf("dataplane: %s: revert could not re-place %s: %w", d.name, name, err)
		}
		d.placements[name] = pl
		d.order = append(d.order, name)
	}
	d.commit(&config{parser: p.base.parser, instances: p.base.instances})
	p.activated = false
	p.released = true
	return nil
}

// StagedConfig is a device configuration under construction inside Swap.
type StagedConfig struct {
	dev       *Device
	parser    *packet.ParseGraph
	instances []*ProgramInstance
	added     map[string]placement
	removed   []string
}

func (st *StagedConfig) isRemoved(name string) bool {
	for _, n := range st.removed {
		if n == name {
			return true
		}
	}
	return false
}

// Install stages a program installation at extension priority. A name
// being removed in the same swap may be re-installed.
func (st *StagedConfig) Install(prog *flexbpf.Program, cond *flexbpf.Cond) error {
	return st.InstallOpt(prog, InstallOptions{Filter: cond, Priority: PriorityExtension})
}

// InstallOpt stages a program installation with explicit options.
func (st *StagedConfig) InstallOpt(prog *flexbpf.Program, opts InstallOptions) error {
	cond := opts.Filter
	if err := flexbpf.Verify(prog); err != nil {
		return fmt.Errorf("%w: %w", errdefs.ErrVerifyFailed, err)
	}
	if !st.dev.caps.Satisfies(prog.Requires) {
		return fmt.Errorf("dataplane: %s lacks capabilities for %s", st.dev.name, prog.Name)
	}
	if _, dup := st.dev.placements[prog.Name]; dup && !st.isRemoved(prog.Name) {
		return fmt.Errorf("dataplane: %s: program %s already installed", st.dev.name, prog.Name)
	}
	if _, dup := st.added[prog.Name]; dup {
		return fmt.Errorf("dataplane: %s: program %s already staged", st.dev.name, prog.Name)
	}
	pl, err := st.dev.model.place(prog)
	if err != nil {
		return fmt.Errorf("dataplane: %s: %w: %w", st.dev.name, errdefs.ErrInsufficientResources, err)
	}
	inst, err := newInstance(prog, cond, st.dev.rng, st.dev.now, st.dev.lcache)
	if err != nil {
		st.dev.model.release(pl)
		return err
	}
	inst.priority = normPriority(opts.Priority)
	st.added[prog.Name] = pl
	st.instances = sortByPriority(append(st.instances, inst))
	return nil
}

// Remove stages a program removal.
func (st *StagedConfig) Remove(name string) error {
	found := false
	out := st.instances[:0]
	for _, inst := range st.instances {
		if inst.prog.Name == name {
			found = true
			continue
		}
		out = append(out, inst)
	}
	st.instances = out
	if !found {
		return fmt.Errorf("dataplane: %s: program %s not staged/installed", st.dev.name, name)
	}
	if _, staged := st.added[name]; staged {
		st.dev.model.release(st.added[name])
		delete(st.added, name)
		return nil
	}
	st.removed = append(st.removed, name)
	return nil
}

// Parser exposes the staged parse graph for mutation.
func (st *StagedConfig) Parser() *packet.ParseGraph { return st.parser }

// fidMetaIngress is the interned ID of the intrinsic ingress-port field,
// resolved once so Process never interns on the packet path.
var fidMetaIngress = packet.InternField("meta.ingress")

// Process runs one packet through the device. It is safe to call
// concurrently with reconfiguration: the packet uses the configuration
// snapshot current at entry.
func (d *Device) Process(pkt *packet.Packet) ProcStats {
	return d.ProcessCtx(pkt, nil)
}

// ProcessCtx is Process with an explicit execution context. The sharded
// fabric engine passes one reusable ExecContext per worker so that
// concurrent devices never share scratch state; ectx == nil falls back
// to each program instance's private context (the single-threaded
// fast path Process uses).
func (d *Device) ProcessCtx(pkt *packet.Packet, ectx *flexbpf.ExecContext) ProcStats {
	if d.draining.Load() || d.down.Load() {
		d.countDrop(func(c *Counters) { c.DrainDrops++; c.Dropped++ })
		return ProcStats{Verdict: packet.VerdictDrop}
	}
	// In batch mode (between the shard hooks) the configuration snapshot
	// is pinned once per batch and table lookups share the BatchState;
	// both are observably identical to per-packet loads because mutations
	// happen only on the event loop, which never runs mid-batch.
	var cfg *config
	var bs *flexbpf.BatchState
	if d.batch.active {
		if d.batch.cfg == nil {
			d.batch.cfg = d.snapshot()
		}
		cfg = d.batch.cfg
		bs = &d.batch.bs
	} else {
		cfg = d.snapshot()
	}
	pkt.Epoch = cfg.epoch
	// Expose intrinsic metadata to programs (P4 standard-metadata style).
	pkt.SetFieldByID(fidMetaIngress, uint64(pkt.IngressPort))
	st := ProcStats{Verdict: packet.VerdictContinue, Epoch: cfg.epoch}

	// Flow cache: replay a recorded outcome when the packet matches a
	// cached flow's full validation set (fastpath.go).
	var rec *flowRecord
	if d.fcache != nil {
		var hit bool
		if rec, hit = d.tryFlowCache(pkt, cfg, &st); hit {
			d.accountProcessed(&st)
			return st
		}
	}

	// Parse: determine which headers this configuration understands.
	if err := cfg.parser.CheckFields(pkt); err != nil {
		d.countDrop(func(c *Counters) { c.Errors++; c.Dropped++ })
		st.Verdict = packet.VerdictDrop
		return st
	}

	for _, inst := range cfg.instances {
		if !inst.accepts(pkt) {
			continue
		}
		res, err := inst.runCtxBS(pkt, ectx, bs)
		st.Instrs += res.Instrs
		st.Lookups += res.Lookups
		st.Programs = append(st.Programs, inst.prog.Name)
		if err != nil {
			d.countDrop(func(c *Counters) { c.Errors++; c.Dropped++ })
			st.Verdict = packet.VerdictDrop
			return st
		}
		if res.Verdict != packet.VerdictContinue {
			st.Verdict = res.Verdict
			break
		}
	}

	if rec != nil {
		d.recordFlow(rec, pkt, cfg, &st)
	}
	d.accountProcessed(&st)
	return st
}

func (d *Device) bump(f func(*Counters)) {
	d.stats.mu.Lock()
	f(&d.stats.c)
	d.stats.mu.Unlock()
}

// Stats returns a copy of lifetime counters.
func (d *Device) Stats() Counters {
	d.stats.mu.Lock()
	defer d.stats.mu.Unlock()
	return d.stats.c
}

// EnergyJoules estimates energy used over a wall of simulated seconds
// with the device's processed-packet count (dynamic) plus static draw.
func (d *Device) EnergyJoules(seconds float64) float64 {
	e := d.cfg.Energy.IdleWatts * seconds
	if len(d.snapshot().instances) > 0 {
		e += d.cfg.Energy.ActiveWatts * seconds
	}
	e += float64(d.processed.Load()) * d.cfg.Energy.PerPacketNanojoule * 1e-9
	return e
}

// Utilization returns per-resource utilization fractions.
func (d *Device) Utilization() map[string]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	cap := d.model.capacity()
	free := d.model.free()
	out := map[string]float64{}
	frac := func(c, f int) float64 {
		if c == 0 {
			return 0
		}
		return float64(c-f) / float64(c)
	}
	out["sram"] = frac(cap.SRAMBits, free.SRAMBits)
	out["tcam"] = frac(cap.TCAMBits, free.TCAMBits)
	out["alus"] = frac(cap.ALUs, free.ALUs)
	out["tables"] = frac(cap.Tables, free.Tables)
	return out
}

// InstalledDemand returns the summed demand of installed programs, in
// deterministic (name-sorted) order for digesting.
func (d *Device) InstalledDemand() flexbpf.Demand {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.placements))
	for n := range d.placements {
		names = append(names, n)
	}
	sort.Strings(names)
	var total flexbpf.Demand
	for _, n := range names {
		total = total.Add(d.placements[n].demand())
	}
	return total
}
