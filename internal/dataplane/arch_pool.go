package dataplane

import (
	"fmt"

	"flexnet/internal/flexbpf"
)

// poolModel models SmartNIC SoCs, FPGAs, and host stacks (§3.3(iv)):
// "Resources are essentially fully fungible on these architectures."
// One memory pool backs everything, ternary matching is emulated in
// software (no dedicated TCAM), and the binding compute constraint is a
// per-packet cycle budget.
type poolModel struct {
	cfg        Config
	freeBits   int
	totalBits  int
	freeCycles int
	totalCyc   int
	parserUsed int
	parserCap  int
	placed     map[string]*poolPlacement
}

func newPoolModel(cfg Config) *poolModel {
	return &poolModel{
		cfg:        cfg,
		freeBits:   cfg.PoolSRAMBits,
		totalBits:  cfg.PoolSRAMBits,
		freeCycles: cfg.CyclesBudget,
		totalCyc:   cfg.CyclesBudget,
		parserCap:  256, // software parsers are cheap
		placed:     map[string]*poolPlacement{},
	}
}

func (m *poolModel) place(prog *flexbpf.Program) (placement, error) {
	d := flexbpf.ProgramDemand(prog)
	parser := d.ParserStates
	bits := d.SRAMBits + d.TCAMBits // TCAM emulated in ordinary memory
	if m.parserUsed+parser > m.parserCap {
		return nil, fmt.Errorf("dataplane: pool: parser budget exceeded")
	}
	if bits > m.freeBits {
		return nil, fmt.Errorf("dataplane: pool: program %s needs %d bits, %d free", prog.Name, bits, m.freeBits)
	}
	if d.ALUs > m.freeCycles {
		return nil, fmt.Errorf("dataplane: pool: program %s needs %d cycles, %d free", prog.Name, d.ALUs, m.freeCycles)
	}
	m.freeBits -= bits
	m.freeCycles -= d.ALUs
	m.parserUsed += parser
	store := d
	store.ParserStates = 0
	pl := &poolPlacement{progName: prog.Name, d: store, parser: parser}
	m.placed[prog.Name] = pl
	return pl, nil
}

func (m *poolModel) release(p placement) {
	pl, ok := p.(*poolPlacement)
	if !ok {
		return
	}
	if _, here := m.placed[pl.progName]; !here {
		return
	}
	m.freeBits += pl.d.SRAMBits + pl.d.TCAMBits
	m.freeCycles += pl.d.ALUs
	m.parserUsed -= pl.parser
	delete(m.placed, pl.progName)
}

func (m *poolModel) capacity() flexbpf.Demand {
	return flexbpf.Demand{
		SRAMBits:     m.totalBits,
		TCAMBits:     m.totalBits, // same pool; free() keeps them consistent
		ALUs:         m.totalCyc,
		Tables:       1 << 12,
		ParserStates: m.parserCap,
	}
}

func (m *poolModel) free() flexbpf.Demand {
	return flexbpf.Demand{
		SRAMBits:     m.freeBits,
		TCAMBits:     m.freeBits,
		ALUs:         m.freeCycles,
		Tables:       1 << 12,
		ParserStates: m.parserCap - m.parserUsed,
	}
}

func (m *poolModel) fungibility() float64 {
	if m.totalBits == 0 {
		return 0
	}
	return float64(m.freeBits) / float64(m.totalBits)
}

func (m *poolModel) repack() (int, error) { return 0, nil }
