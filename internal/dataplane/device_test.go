package dataplane

import (
	"strings"
	"sync"
	"testing"

	"flexnet/internal/flexbpf"
	"flexnet/internal/packet"
)

// fwdProgram forwards every packet out a fixed port.
func fwdProgram(name string, port uint64) *flexbpf.Program {
	code := flexbpf.NewAsm().MovImm(0, port).Forward(0).MustBuild()
	return flexbpf.NewProgram(name).Do(code).MustBuild()
}

// dropDportProgram drops packets to the given TCP port, else continues.
func dropDportProgram(name string, dport uint64) *flexbpf.Program {
	drop := flexbpf.NewAsm().Drop().MustBuild()
	return flexbpf.NewProgram(name).
		If(flexbpf.Cond{Field: "tcp.dport", Op: flexbpf.CmpEq, Value: dport},
			[]flexbpf.Stmt{flexbpf.SDo(drop)}, nil).
		MustBuild()
}

func testPkt(id uint64) *packet.Packet {
	return packet.TCPPacket(id, packet.IP(10, 0, 0, 1), packet.IP(10, 0, 0, 2), 1000, 80, 0, 100)
}

func TestDeviceInstallProcessRemove(t *testing.T) {
	for _, arch := range []Arch{ArchRMT, ArchDRMT, ArchTile, ArchElasticPipe, ArchSoC, ArchHost} {
		t.Run(arch.String(), func(t *testing.T) {
			d := MustNew(DefaultConfig("sw1", arch))
			if got := d.Arch(); got != arch {
				t.Fatalf("arch = %v", got)
			}
			before := d.Free()
			if err := d.InstallProgram(fwdProgram("fwd", 7)); err != nil {
				t.Fatalf("install: %v", err)
			}
			if d.Free() == before {
				t.Fatal("install did not consume resources")
			}
			st := d.Process(testPkt(1))
			if st.Verdict != packet.VerdictForward {
				t.Fatalf("verdict = %v", st.Verdict)
			}
			if st.LatencyNs < d.Perf().BaseLatencyNs {
				t.Fatalf("latency %d below base %d", st.LatencyNs, d.Perf().BaseLatencyNs)
			}
			if err := d.RemoveProgram("fwd"); err != nil {
				t.Fatalf("remove: %v", err)
			}
			if d.Free() != before {
				t.Fatalf("resources not reclaimed: %v != %v", d.Free(), before)
			}
			// With no program, packets fall through with Continue.
			st = d.Process(testPkt(2))
			if st.Verdict != packet.VerdictContinue {
				t.Fatalf("empty device verdict = %v", st.Verdict)
			}
		})
	}
}

func TestInstallDuplicateAndRemoveMissing(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	if err := d.InstallProgram(fwdProgram("p", 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.InstallProgram(fwdProgram("p", 2)); err == nil {
		t.Fatal("duplicate install succeeded")
	}
	if err := d.RemoveProgram("ghost"); err == nil {
		t.Fatal("removing missing program succeeded")
	}
}

func TestInstallRejectsUnverifiable(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	bad := &flexbpf.Program{Name: "bad", Actions: map[string]*flexbpf.Action{}}
	bad.Pipeline = []flexbpf.Stmt{{Apply: "ghost"}}
	if err := d.InstallProgram(bad); err == nil {
		t.Fatal("unverifiable program installed")
	}
}

func TestCapabilityGate(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchRMT))
	cc := flexbpf.NewProgram("cc").
		Requires(flexbpf.Capabilities{Transport: true}).
		Do(flexbpf.NewAsm().Ret().MustBuild()).
		MustBuild()
	if err := d.InstallProgram(cc); err == nil {
		t.Fatal("RMT switch accepted transport-requiring program")
	}
	h := MustNew(DefaultConfig("h1", ArchHost))
	if err := h.InstallProgram(cc); err != nil {
		t.Fatalf("host rejected transport program: %v", err)
	}
}

func TestProgramChainOrder(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	// First program drops port 80; second forwards everything.
	if err := d.InstallProgram(dropDportProgram("acl", 80)); err != nil {
		t.Fatal(err)
	}
	if err := d.InstallProgram(fwdProgram("fwd", 3)); err != nil {
		t.Fatal(err)
	}
	blocked := testPkt(1) // dport 80
	st := d.Process(blocked)
	if st.Verdict != packet.VerdictDrop {
		t.Fatalf("acl did not run first: %v", st.Verdict)
	}
	if len(st.Programs) != 1 || st.Programs[0] != "acl" {
		t.Fatalf("programs = %v", st.Programs)
	}
	ok := packet.TCPPacket(2, 1, 2, 3, 443, 0, 0)
	st = d.Process(ok)
	if st.Verdict != packet.VerdictForward || ok.EgressPort != 3 {
		t.Fatalf("allowed packet: %v egress=%d", st.Verdict, ok.EgressPort)
	}
	if len(st.Programs) != 2 {
		t.Fatalf("programs = %v", st.Programs)
	}
}

func TestTenantFilterIsolation(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	// Tenant program only sees VLAN 42 and drops its TCP 22.
	cond := &flexbpf.Cond{Field: "vlan.vid", Op: flexbpf.CmpEq, Value: 42}
	if err := d.InstallProgramFiltered(dropDportProgram("tenant42", 22), cond); err != nil {
		t.Fatal(err)
	}
	var seq uint64
	inVLAN := packet.NewBuilder(&seq).Eth(1, 2).VLAN(42).IPv4(1, 2).TCP(5, 22, 0).Build()
	st := d.Process(inVLAN)
	if st.Verdict != packet.VerdictDrop {
		t.Fatalf("tenant rule did not apply in its VLAN: %v", st.Verdict)
	}
	otherVLAN := packet.NewBuilder(&seq).Eth(1, 2).VLAN(7).IPv4(1, 2).TCP(5, 22, 0).Build()
	st = d.Process(otherVLAN)
	if st.Verdict == packet.VerdictDrop {
		t.Fatal("tenant rule leaked into another VLAN")
	}
}

func TestEpochAtomicity(t *testing.T) {
	// The §2 consistency claim: during reconfiguration each packet is
	// processed entirely by the old or entirely by the new program.
	// Device epoch is stamped per packet; concurrent reconfigurations
	// must never produce a packet observing two different epochs across
	// its programs. We run processing and reconfiguration concurrently
	// under -race and check verdict coherence.
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	if err := d.InstallProgram(fwdProgram("v1", 1)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		version := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			version++
			name := "v1"
			newName := "v2"
			if version%2 == 1 {
				name, newName = "v2", "v1"
			}
			_ = d.Swap(func(st *StagedConfig) error {
				if err := st.Remove(name); err != nil {
					return err
				}
				return st.Install(fwdProgram(newName, uint64(version%8)), nil)
			})
		}
	}()
	for i := 0; i < 5000; i++ {
		pkt := testPkt(uint64(i))
		st := d.Process(pkt)
		// Exactly one forwarding program must have run.
		if st.Verdict != packet.VerdictForward || len(st.Programs) != 1 {
			t.Fatalf("packet %d: verdict=%v programs=%v", i, st.Verdict, st.Programs)
		}
		if pkt.Epoch != st.Epoch {
			t.Fatalf("packet %d: epoch mismatch %d != %d", i, pkt.Epoch, st.Epoch)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSwapRollbackOnError(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	if err := d.InstallProgram(fwdProgram("keep", 1)); err != nil {
		t.Fatal(err)
	}
	free := d.Free()
	epoch := d.Epoch()
	err := d.Swap(func(st *StagedConfig) error {
		if err := st.Install(fwdProgram("new", 2), nil); err != nil {
			return err
		}
		return errFake
	})
	if err == nil {
		t.Fatal("swap should have failed")
	}
	if d.Free() != free {
		t.Fatal("failed swap leaked resources")
	}
	if d.Epoch() != epoch {
		t.Fatal("failed swap bumped epoch")
	}
	if got := d.Programs(); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("programs after failed swap: %v", got)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake failure" }

func TestDrainingDropsPackets(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	d.InstallProgram(fwdProgram("fwd", 1))
	d.SetDraining(true)
	st := d.Process(testPkt(1))
	if st.Verdict != packet.VerdictDrop {
		t.Fatalf("draining device forwarded: %v", st.Verdict)
	}
	d.SetDraining(false)
	st = d.Process(testPkt(2))
	if st.Verdict != packet.VerdictForward {
		t.Fatalf("undrained device dropped: %v", st.Verdict)
	}
	c := d.Stats()
	if c.DrainDrops != 1 {
		t.Fatalf("drain drops = %d", c.DrainDrops)
	}
}

func TestParserRuntimeUpdate(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	if err := packet.RegisterCustomHeader("tun_test", map[string]int{"id": 32}, []string{"id"}); err != nil {
		t.Fatal(err)
	}
	defer packet.UnregisterCustomHeader("tun_test")

	epoch := d.Epoch()
	err := d.UpdateParser(func(g *packet.ParseGraph) error {
		if err := g.AddState(&packet.ParseState{Name: "tun", Header: "tun_test"}); err != nil {
			return err
		}
		return g.AddTransition("ipv4", 150, "tun")
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != epoch+1 {
		t.Fatal("parser update did not bump epoch")
	}
	// Invalid update is rejected and leaves parser unchanged.
	err = d.UpdateParser(func(g *packet.ParseGraph) error {
		return g.AddTransition("ipv4", 151, "ghost-state")
	})
	if err == nil {
		t.Fatal("invalid parser update accepted")
	}
	if d.Parser().State("tun") == nil {
		t.Fatal("valid state lost after rejected update")
	}
}

func TestRMTStagePlacementDependencies(t *testing.T) {
	cfg := DefaultConfig("sw1", ArchRMT)
	cfg.Stages = 3
	cfg.StageTables = 1 // force one table per stage
	d := MustNew(cfg)
	act := flexbpf.NewAsm().Ret().MustBuild()
	mk := func(n int) *flexbpf.Program {
		b := flexbpf.NewProgram("chain").Action("a", 0, act)
		for i := 0; i < n; i++ {
			name := string(rune('a' + i))
			b.Table(&flexbpf.TableSpec{
				Name: "t" + name, Keys: []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}},
				Actions: []string{"a"}, Size: 16,
			})
			b.Apply("t" + name)
		}
		return b.MustBuild()
	}
	// 3 dependent tables fit in 3 stages.
	if err := d.InstallProgram(mk(3)); err != nil {
		t.Fatalf("3-chain: %v", err)
	}
	if err := d.RemoveProgram("chain"); err != nil {
		t.Fatal(err)
	}
	// 4 dependent tables cannot fit in 3 stages.
	if err := d.InstallProgram(mk(4)); err == nil {
		t.Fatal("4-table dependency chain placed in 3 stages")
	}
}

func TestRMTFragmentationAndRepack(t *testing.T) {
	cfg := DefaultConfig("sw1", ArchRMT)
	cfg.Stages = 4
	cfg.StageTables = 2
	cfg.CrossStageRealloc = true
	d := MustNew(cfg)
	act := flexbpf.NewAsm().Ret().MustBuild()
	single := func(name string) *flexbpf.Program {
		return flexbpf.NewProgram(name).
			Action("a", 0, act).
			Table(&flexbpf.TableSpec{Name: name + "_t",
				Keys:    []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}},
				Actions: []string{"a"}, Size: 16}).
			Apply(name + "_t").
			MustBuild()
	}
	// Fill all 8 table slots, then remove alternating programs to
	// fragment, then repack and verify no moves needed for pool refill.
	for i := 0; i < 8; i++ {
		name := "p" + string(rune('0'+i))
		if err := d.InstallProgram(single(name)); err != nil {
			t.Fatalf("install %s: %v", name, err)
		}
	}
	for i := 0; i < 8; i += 2 {
		if err := d.RemoveProgram("p" + string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	moves, err := d.Repack()
	if err != nil {
		t.Fatalf("repack: %v", err)
	}
	if moves == 0 {
		t.Log("note: greedy placement left nothing to move (acceptable)")
	}
	// After repack the device still reports consistent resources.
	if d.Free().Tables != d.Capacity().Tables-4 {
		t.Fatalf("free tables = %d", d.Free().Tables)
	}
}

func TestRMTRepackRefusedWithoutCrossStage(t *testing.T) {
	cfg := DefaultConfig("sw1", ArchRMT)
	cfg.CrossStageRealloc = false
	d := MustNew(cfg)
	if _, err := d.Repack(); err == nil {
		t.Fatal("rigid RMT allowed repack")
	}
}

func TestTileTypedCapacity(t *testing.T) {
	cfg := DefaultConfig("sw1", ArchTile)
	cfg.TCAMTiles = 1
	cfg.TileBits = 1 << 12
	d := MustNew(cfg)
	act := flexbpf.NewAsm().Ret().MustBuild()
	tcamProg := func(name string, size int) *flexbpf.Program {
		return flexbpf.NewProgram(name).
			Action("a", 0, act).
			Table(&flexbpf.TableSpec{Name: name + "_t",
				Keys:    []flexbpf.TableKey{{Field: "ipv4.src", Kind: flexbpf.MatchTernary, Bits: 32}},
				Actions: []string{"a"}, Size: size}).
			Apply(name + "_t").
			MustBuild()
	}
	// One small TCAM table fits in the single TCAM tile.
	if err := d.InstallProgram(tcamProg("t1", 16)); err != nil {
		t.Fatalf("small tcam: %v", err)
	}
	// A second one cannot, even though hash tiles are free: fungibility
	// is within tile type only (§3.3(iii)).
	if err := d.InstallProgram(tcamProg("t2", 16)); err == nil {
		t.Fatal("tcam demand satisfied by non-tcam tiles")
	} else if !strings.Contains(err.Error(), "TCAM tiles") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestElasticPipePEMLimit(t *testing.T) {
	cfg := DefaultConfig("sw1", ArchElasticPipe)
	cfg.PEMElements = 2
	d := MustNew(cfg)
	act := flexbpf.NewAsm().Ret().MustBuild()
	twoTables := flexbpf.NewProgram("two").
		Action("a", 0, act).
		Table(&flexbpf.TableSpec{Name: "x", Keys: []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}}, Actions: []string{"a"}, Size: 4}).
		Table(&flexbpf.TableSpec{Name: "y", Keys: []flexbpf.TableKey{{Field: "ipv4.src", Kind: flexbpf.MatchExact, Bits: 32}}, Actions: []string{"a"}, Size: 4}).
		Apply("x").Apply("y").
		MustBuild()
	if err := d.InstallProgram(twoTables); err != nil {
		t.Fatalf("2 tables in 2 PEMs: %v", err)
	}
	oneMore := flexbpf.NewProgram("one").
		Action("a", 0, act).
		Table(&flexbpf.TableSpec{Name: "z", Keys: []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}}, Actions: []string{"a"}, Size: 4}).
		Apply("z").
		MustBuild()
	if err := d.InstallProgram(oneMore); err == nil {
		t.Fatal("PEM limit not enforced")
	}
}

func TestPoolFullyFungible(t *testing.T) {
	d := MustNew(DefaultConfig("nic1", ArchSoC))
	// A ternary table is fine on a pool device: TCAM is emulated.
	act := flexbpf.NewAsm().Ret().MustBuild()
	p := flexbpf.NewProgram("tern").
		Action("a", 0, act).
		Table(&flexbpf.TableSpec{Name: "t",
			Keys:    []flexbpf.TableKey{{Field: "ipv4.src", Kind: flexbpf.MatchTernary, Bits: 32}},
			Actions: []string{"a"}, Size: 128}).
		Apply("t").
		MustBuild()
	if err := d.InstallProgram(p); err != nil {
		t.Fatalf("pool rejected ternary: %v", err)
	}
	if f := d.Fungibility(); f <= 0 || f > 1 {
		t.Fatalf("fungibility = %f", f)
	}
}

func TestInstanceStateMigrationRoundTrip(t *testing.T) {
	// Program with a shared map; install on two devices, mutate on one,
	// move logical state to the other.
	code := flexbpf.NewAsm().
		FlowHash(0).
		MapLoad(1, "st", 0).
		AddImm(1, 1).
		MapStore("st", 0, 1).
		Ret().
		MustBuild()
	prog := flexbpf.NewProgram("mon").HashMap("st", 256, 64).SharedMap().Do(code).MustBuild()

	src := MustNew(DefaultConfig("a", ArchDRMT))
	dst := MustNew(DefaultConfig("b", ArchSoC))
	if err := src.InstallProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := dst.InstallProgram(prog.Clone()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		src.Process(testPkt(uint64(i)))
	}
	si := src.Instance("mon")
	di := dst.Instance("mon")
	if err := di.ImportState(si.ExportState()); err != nil {
		t.Fatal(err)
	}
	sm, dm := si.Store().Map("st"), di.Store().Map("st")
	if sm.Len() == 0 || sm.Len() != dm.Len() {
		t.Fatalf("state not migrated: src=%d dst=%d", sm.Len(), dm.Len())
	}
}

func TestDeviceCounters(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	d.InstallProgram(dropDportProgram("acl", 80))
	d.Process(testPkt(1))                              // drop (dport 80)
	d.Process(packet.TCPPacket(2, 1, 2, 3, 443, 0, 0)) // continue
	c := d.Stats()
	if c.Processed != 2 || c.Dropped != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestEnergyModel(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchRMT))
	idle := d.EnergyJoules(1.0)
	d.InstallProgram(fwdProgram("f", 1))
	active := d.EnergyJoules(1.0)
	if active <= idle {
		t.Fatal("active device not more power hungry")
	}
	for i := 0; i < 1000; i++ {
		d.Process(testPkt(uint64(i)))
	}
	withTraffic := d.EnergyJoules(1.0)
	if withTraffic <= active {
		t.Fatal("traffic adds no dynamic energy")
	}
}

func TestUtilization(t *testing.T) {
	d := MustNew(DefaultConfig("sw1", ArchDRMT))
	u0 := d.Utilization()
	if u0["sram"] != 0 {
		t.Fatalf("fresh utilization = %v", u0)
	}
	d.InstallProgram(fwdProgram("f", 1))
	// fwd uses ALUs only (no tables/maps).
	u1 := d.Utilization()
	if u1["alus"] <= 0 {
		t.Fatalf("utilization after install = %v", u1)
	}
}
