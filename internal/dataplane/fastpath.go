package dataplane

// This file implements the device fast path added for batched execution
// and the megaflow flow cache (DESIGN.md §12):
//
//   - Batch mode: the sharded fabric engine brackets each contiguous run
//     of one device's packets with BeginBatch/EndBatch (netsim shard
//     hooks), letting the device load its configuration snapshot once,
//     match tables against batch-cached copy-on-write snapshots, and
//     flush telemetry counter deltas once per batch instead of per
//     packet. Configuration and table mutations happen only on the event
//     loop, which never runs between a batch's computes, so batch-cached
//     snapshots are observably identical to per-packet loads at every
//     point any event-loop code can observe.
//
//   - Flow cache: when enabled, the resolved outcome of the first packet
//     of a flow is recorded against the packet state the pipeline
//     depends on (static CacheProfile of every installed instance, plus
//     filter and parser select fields) and replayed for followers that
//     match it. Replay reproduces the exact per-packet telemetry
//     (Instrs, Lookups, latency, programs), so device counters remain
//     byte-identical with the cache on or off; cache activity is
//     reported under separate "flowcache.<dev>.*" instruments that exist
//     only when the cache is enabled.

import (
	"sort"

	"flexnet/internal/flexbpf"
	"flexnet/internal/flowcache"
	"flexnet/internal/packet"
	"flexnet/internal/telemetry"
)

// fastpathInfo is the per-configuration static analysis backing the flow
// cache: whether every installed instance is cacheable, and the combined
// dependency sets. Computed lazily once per config (configs are
// immutable after commit).
type fastpathInfo struct {
	// cacheable: every instance is linked and its profile is cacheable.
	cacheable bool
	// fields is the validation set: reads ∪ writes ∪ filter-condition
	// fields ∪ parser select fields, sorted and deduplicated.
	fields []packet.FieldID
	// writes is the combined write set (replayed on hits).
	writes []packet.FieldID
	// tables are all applied table instances, generation-pinned per entry.
	tables []*flexbpf.TableInstance
	// usesLen: some instance reads the packet length.
	usesLen bool
}

// fastpath returns the config's analysis, computing it on first use. A
// racing duplicate computation is harmless (idempotent result).
func (cfg *config) fastpath() *fastpathInfo {
	if fp := cfg.fp.Load(); fp != nil {
		return fp
	}
	fp := computeFastpath(cfg)
	cfg.fp.Store(fp)
	return fp
}

func computeFastpath(cfg *config) *fastpathInfo {
	fp := &fastpathInfo{cacheable: true}
	fields := map[packet.FieldID]struct{}{}
	writes := map[packet.FieldID]struct{}{}
	for _, inst := range cfg.instances {
		lp := inst.linked
		if lp == nil {
			fp.cacheable = false
			return fp
		}
		prof := lp.CacheProfile()
		if !prof.Cacheable {
			fp.cacheable = false
			return fp
		}
		for _, fid := range prof.Reads {
			fields[fid] = struct{}{}
		}
		for _, fid := range prof.Writes {
			fields[fid] = struct{}{}
			writes[fid] = struct{}{}
		}
		if inst.lfilter != nil {
			for _, fid := range inst.lfilter.Fields() {
				fields[fid] = struct{}{}
			}
		}
		fp.usesLen = fp.usesLen || prof.UsesPktLen
		fp.tables = append(fp.tables, lp.TableInstances()...)
	}
	for _, name := range cfg.parser.SelectFields() {
		fields[packet.InternField(name)] = struct{}{}
	}
	fp.fields = sortFieldSet(fields)
	fp.writes = sortFieldSet(writes)
	return fp
}

func sortFieldSet(m map[packet.FieldID]struct{}) []packet.FieldID {
	out := make([]packet.FieldID, 0, len(m))
	for fid := range m {
		out = append(out, fid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// fcMetrics are the flow-cache telemetry instruments, registered under
// "flowcache.<dev>." only when the cache is enabled so a cache-off run's
// telemetry dump is byte-identical to a build without the cache.
type fcMetrics struct {
	hits            *telemetry.Counter
	misses          *telemetry.Counter
	inserts         *telemetry.Counter
	invalidations   *telemetry.Counter
	staleServed     *telemetry.Counter
	replayedInstrs  *telemetry.Counter
	replayedLookups *telemetry.Counter
}

// EnableFlowCache switches the device's megaflow cache on and registers
// its instruments in reg (nil for inert handles). Like SetMetrics it
// must be called at build time, before traffic flows: the cache handle
// is read lock-free on the packet path.
//
// staleServed counts replays of entries from a superseded epoch or table
// generation; by construction (entries validate both on every hit) it
// stays zero, and the chaos soak asserts that.
func (d *Device) EnableFlowCache(reg *telemetry.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fcache = flowcache.New(d.snapshot().epoch)
	if reg != nil {
		prefix := "flowcache." + d.name + "."
		d.fcMet = fcMetrics{
			hits:            reg.Counter(prefix + "hits"),
			misses:          reg.Counter(prefix + "misses"),
			inserts:         reg.Counter(prefix + "inserts"),
			invalidations:   reg.Counter(prefix + "invalidations"),
			staleServed:     reg.Counter(prefix + "stale_served"),
			replayedInstrs:  reg.Counter(prefix + "replayed_instrs"),
			replayedLookups: reg.Counter(prefix + "replayed_lookups"),
		}
	}
}

// FlowCacheStats returns the cache's activity counters (zero Stats when
// the cache is disabled).
func (d *Device) FlowCacheStats() flowcache.Stats {
	if d.fcache == nil {
		return flowcache.Stats{}
	}
	return d.fcache.Stats()
}

// deviceBatch is the device's batch-mode state: the pinned configuration
// snapshot, the shared table BatchState, and deferred telemetry deltas.
// It is touched only between BeginBatch and EndBatch, i.e. inside the
// device's serialized shard group, so no locking is needed.
type deviceBatch struct {
	active bool
	cfg    *config
	bs     flexbpf.BatchState

	// Deferred instrument deltas, flushed by EndBatch.
	metPackets uint64
	metDropped uint64
	metLookups uint64
	processed  uint64
	c          Counters
}

// BeginBatch enters batch mode. The fabric wires it as the device
// shard's begin hook; every ProcessCtx call until EndBatch shares one
// configuration snapshot and one table BatchState. Safe because config
// and table mutations happen only on the event loop, which cannot run
// between the hooks.
func (d *Device) BeginBatch() {
	d.batch.active = true
	d.batch.cfg = nil // snapshot pinned lazily by the first packet
}

// EndBatch leaves batch mode, flushing buffered table statistics and
// telemetry deltas. It runs on the worker goroutine before the batch's
// apply phase, so event-loop observers always see fully flushed totals —
// identical to per-packet accounting at every observable point.
func (d *Device) EndBatch() {
	b := &d.batch
	b.active = false
	b.cfg = nil
	b.bs.Flush()
	if b.metPackets != 0 {
		d.met.packets.Add(b.metPackets)
	}
	if b.metDropped != 0 {
		d.met.dropped.Add(b.metDropped)
	}
	if b.metLookups != 0 {
		d.met.lookups.Add(b.metLookups)
	}
	if b.processed != 0 {
		d.processed.Add(b.processed)
	}
	if b.c != (Counters{}) {
		d.bump(func(c *Counters) {
			c.Processed += b.c.Processed
			c.Dropped += b.c.Dropped
			c.Forwarded += b.c.Forwarded
			c.Punted += b.c.Punted
			c.Recircs += b.c.Recircs
			c.DrainDrops += b.c.DrainDrops
			c.Errors += b.c.Errors
		})
	}
	b.metPackets, b.metDropped, b.metLookups, b.processed = 0, 0, 0, 0
	b.c = Counters{}
}

// countDrop accounts a pre-pipeline drop (drain/down/parse/program
// error), batch-aware. mut updates the lifetime counters.
func (d *Device) countDrop(mut func(*Counters)) {
	if d.batch.active {
		mut(&d.batch.c)
		d.batch.metDropped++
		return
	}
	d.bump(mut)
	d.met.dropped.Inc()
}

// accountProcessed runs the shared accounting tail for a fully processed
// packet (pipeline or cache replay): modelled latency, instruments, and
// lifetime counters, batch-aware.
func (d *Device) accountProcessed(st *ProcStats) {
	st.LatencyNs = d.cfg.Perf.BaseLatencyNs +
		d.cfg.Perf.PerInstrNs*uint64(st.Instrs) +
		d.cfg.Perf.PerLookupNs*uint64(st.Lookups)

	// The latency histogram stays per-packet in batch mode: Observe is a
	// single atomic bucket bump, and deferring observations would change
	// nothing observable anyway.
	d.met.latency.Observe(int64(st.LatencyNs))

	if d.batch.active {
		b := &d.batch
		b.metPackets++
		b.metLookups += uint64(st.Lookups)
		if st.Verdict == packet.VerdictDrop {
			b.metDropped++
		}
		b.processed++
		countVerdict(&b.c, st.Verdict)
		return
	}
	d.met.packets.Inc()
	d.met.lookups.Add(uint64(st.Lookups))
	if st.Verdict == packet.VerdictDrop {
		d.met.dropped.Inc()
	}
	d.processed.Add(1)
	d.bump(func(c *Counters) { countVerdict(c, st.Verdict) })
}

func countVerdict(c *Counters, v packet.Verdict) {
	c.Processed++
	switch v {
	case packet.VerdictDrop:
		c.Dropped++
	case packet.VerdictForward:
		c.Forwarded++
	case packet.VerdictToController:
		c.Punted++
	case packet.VerdictRecirculate:
		c.Recircs++
	}
}

// flowRecord is the capture scratch for one to-be-inserted cache entry.
type flowRecord struct {
	key  packet.FlowKey
	gens []flowcache.TableGen
	pre  []flowcache.FieldVal
	hdrs []string
	plen int
}

// tryFlowCache attempts a cache replay for pkt under cfg. It returns the
// replayed stats on a hit; on a miss it returns a capture record the
// caller passes to recordFlow after the pipeline runs (nil when the
// configuration is uncacheable or the packet is traced).
func (d *Device) tryFlowCache(pkt *packet.Packet, cfg *config, st *ProcStats) (*flowRecord, bool) {
	if pkt.Trace != nil {
		// Traced packets must walk the real pipeline so experiments see
		// the visit sequence.
		return nil, false
	}
	fp := cfg.fastpath()
	if !fp.cacheable {
		return nil, false
	}
	key := pkt.FlowKey()
	if e, ok := d.fcache.Lookup(key, cfg.epoch, pkt); ok {
		e.Replay(pkt)
		st.Verdict = e.Verdict
		st.Instrs = e.Instrs
		st.Lookups = e.Lookups
		st.Programs = e.Programs
		d.fcMet.hits.Inc()
		d.fcMet.replayedInstrs.Add(uint64(e.Instrs))
		d.fcMet.replayedLookups.Add(uint64(e.Lookups))
		return nil, true
	}
	d.fcMet.misses.Inc()
	// Capture the validation state before the pipeline mutates it.
	rec := &flowRecord{
		key:  key,
		gens: make([]flowcache.TableGen, len(fp.tables)),
		pre:  make([]flowcache.FieldVal, len(fp.fields)),
		hdrs: append([]string(nil), pkt.Headers...),
		plen: pkt.PayloadLen,
	}
	for i, ti := range fp.tables {
		rec.gens[i] = flowcache.TableGen{TI: ti, Gen: ti.Generation()}
	}
	for i, fid := range fp.fields {
		v, ok := pkt.FieldOKByID(fid)
		rec.pre[i] = flowcache.FieldVal{FID: fid, Val: v, Present: ok}
	}
	return rec, false
}

// recordFlow inserts the completed pipeline outcome into the cache.
// Only terminal Forward/Drop verdicts are recorded; errors, punts, and
// recirculations always take the pipeline.
func (d *Device) recordFlow(rec *flowRecord, pkt *packet.Packet, cfg *config, st *ProcStats) {
	if st.Verdict != packet.VerdictForward && st.Verdict != packet.VerdictDrop {
		return
	}
	fp := cfg.fastpath()
	e := &flowcache.Entry{
		Epoch:      cfg.epoch,
		Gens:       rec.gens,
		Headers:    rec.hdrs,
		PayloadLen: rec.plen,
		CheckLen:   fp.usesLen,
		Pre:        rec.pre,
		Post:       make([]flowcache.FieldVal, len(fp.writes)),
		Verdict:    st.Verdict,
		Egress:     pkt.EgressPort,
		Instrs:     st.Instrs,
		Lookups:    st.Lookups,
		Programs:   append([]string(nil), st.Programs...),
	}
	for i, fid := range fp.writes {
		v, ok := pkt.FieldOKByID(fid)
		e.Post[i] = flowcache.FieldVal{FID: fid, Val: v, Present: ok}
	}
	d.fcache.Insert(rec.key, e)
	d.fcMet.inserts.Inc()
}
