package dataplane

import (
	"fmt"
	"math/rand"

	"flexnet/internal/dataplane/state"
	"flexnet/internal/flexbpf"
	"flexnet/internal/packet"
	"flexnet/internal/telemetry"
)

// ProgramInstance is a FlexBPF program installed on a device: the spec,
// its table instances, and its state store. It implements flexbpf.Env
// and flexbpf.LinkedEnv.
//
// At creation the program is linked (flexbpf.Link) into a flattened form
// with map/counter/meter references resolved to the slot slices below,
// so the per-packet path performs no string lookups and no allocation.
// If linking fails the instance falls back to the tree interpreter.
type ProgramInstance struct {
	prog     *flexbpf.Program
	priority int
	filter   *flexbpf.Cond
	lfilter  *flexbpf.LinkedCond
	tables   map[string]*flexbpf.TableInstance
	store    *state.Store
	rng      *rand.Rand
	now      func() uint64
	interp   flexbpf.Interp

	// linked is the install-time linked form (nil = legacy tree path).
	linked *flexbpf.LinkedProgram
	// lmaps/lcounters/lmeters are the slot-resolved object pointers the
	// LinkedEnv methods index into.
	lmaps     []*state.Map
	lcounters []*state.Counter
	lmeters   []*state.Meter
	// ectx is per-instance scratch for linked execution. Packet
	// processing through one instance is serialized by the simulator
	// (reconfiguration may be concurrent, packet processing is not).
	ectx *flexbpf.ExecContext
}

func newInstance(prog *flexbpf.Program, filter *flexbpf.Cond, rng *rand.Rand, now func() uint64, lc *linkCacheHook) (*ProgramInstance, error) {
	inst := &ProgramInstance{
		prog:   prog,
		filter: filter,
		tables: make(map[string]*flexbpf.TableInstance, len(prog.Tables)),
		store:  state.NewStore(),
		rng:    rng,
		now:    now,
	}
	if filter != nil {
		inst.lfilter = flexbpf.CompileCond(filter)
	}
	for _, t := range prog.Tables {
		inst.tables[t.Name] = flexbpf.NewTableInstance(t)
	}
	for _, m := range prog.Maps {
		var kind state.MapKind
		switch m.Kind {
		case flexbpf.MapArray:
			kind = state.KindArray
		case flexbpf.MapHash:
			kind = state.KindHash
		case flexbpf.MapLRU:
			kind = state.KindLRU
		default:
			return nil, fmt.Errorf("dataplane: program %s: unknown map kind %v", prog.Name, m.Kind)
		}
		if err := inst.store.Add(state.NewMap(m.Name, kind, m.MaxEntries)); err != nil {
			return nil, err
		}
	}
	for _, c := range prog.Counters {
		if err := inst.store.Add(state.NewCounter(c.Name, c.Size)); err != nil {
			return nil, err
		}
	}
	for _, m := range prog.Meters {
		if err := inst.store.Add(state.NewMeter(m.Name, m.Size, m.CIR, m.PIR, m.CBS, m.PBS)); err != nil {
			return nil, err
		}
	}
	// Install-time link: resolve symbols once so the per-packet path is
	// map-free and allocation-free. Link failure is not an install
	// failure — the tree interpreter remains the semantic reference.
	// With a link cache wired (DESIGN.md §13.3), identical program
	// content re-links by rebinding table pointers instead of lowering
	// the whole program again.
	lookup := func(name string) *flexbpf.TableInstance { return inst.tables[name] }
	var lp *flexbpf.LinkedProgram
	var err error
	if lc != nil && lc.cache != nil {
		var hit bool
		lp, hit, err = lc.cache.Link(prog, lookup)
		if err == nil {
			if hit {
				lc.hits.Inc()
			} else {
				lc.misses.Inc()
			}
		}
	} else {
		lp, err = flexbpf.Link(prog, lookup)
	}
	if err == nil {
		inst.linked = lp
		inst.ectx = flexbpf.NewExecContext()
		for _, n := range lp.MapSlots() {
			inst.lmaps = append(inst.lmaps, inst.store.Map(n))
		}
		for _, n := range lp.CounterSlots() {
			inst.lcounters = append(inst.lcounters, inst.store.Counter(n))
		}
		for _, n := range lp.MeterSlots() {
			inst.lmeters = append(inst.lmeters, inst.store.Meter(n))
		}
		for _, ti := range inst.tables {
			ti.SetActionResolver(lp.ActionIndex)
		}
	}
	return inst, nil
}

// linkCacheHook bundles a shared link cache with the telemetry handles
// its owner wants bumped on hits and misses (nil handles are inert).
type linkCacheHook struct {
	cache        *flexbpf.LinkCache
	hits, misses *telemetry.Counter
}

// Linked returns the install-time linked form, or nil when the instance
// runs on the tree interpreter.
func (pi *ProgramInstance) Linked() *flexbpf.LinkedProgram { return pi.linked }

// Program returns the instance's program spec.
func (pi *ProgramInstance) Program() *flexbpf.Program { return pi.prog }

// Store returns the instance's state store (for migration and telemetry).
func (pi *ProgramInstance) Store() *state.Store { return pi.store }

// Table returns the named table instance, or nil.
func (pi *ProgramInstance) Table(name string) *flexbpf.TableInstance { return pi.tables[name] }

// Tables returns all table instances keyed by name.
func (pi *ProgramInstance) Tables() map[string]*flexbpf.TableInstance { return pi.tables }

// accepts applies the tenant isolation filter. The filter is compiled to
// a LinkedCond at instance creation so this is ID-indexed field access.
func (pi *ProgramInstance) accepts(pkt *packet.Packet) bool {
	if pi.lfilter == nil {
		return true
	}
	return pi.lfilter.Eval(pkt)
}

func (pi *ProgramInstance) run(pkt *packet.Packet) (flexbpf.ExecResult, error) {
	return pi.runCtx(pkt, nil)
}

// runCtx executes the instance with the caller's ExecContext. A nil ectx
// uses the instance's private context; the sharded fabric engine instead
// passes one context per worker, keeping the scratch registers and key
// buffer cache-warm across every device a worker executes.
func (pi *ProgramInstance) runCtx(pkt *packet.Packet, ectx *flexbpf.ExecContext) (flexbpf.ExecResult, error) {
	return pi.runCtxBS(pkt, ectx, nil)
}

// runCtxBS is runCtx with an optional batch state: non-nil bs routes
// table applies through batch-cached snapshots with deferred statistics
// (see flexbpf.BatchState). The tree-interpreter fallback ignores bs —
// unlinked programs never run in batch-cacheable configurations.
func (pi *ProgramInstance) runCtxBS(pkt *packet.Packet, ectx *flexbpf.ExecContext, bs *flexbpf.BatchState) (flexbpf.ExecResult, error) {
	if pi.linked != nil {
		if ectx == nil {
			ectx = pi.ectx
		}
		return pi.linked.RunWith(pkt, pi, ectx, bs)
	}
	return pi.interp.Run(pi.prog, pkt, pi)
}

// MapLoad implements flexbpf.Env.
func (pi *ProgramInstance) MapLoad(name string, key uint64) (uint64, bool) {
	m := pi.store.Map(name)
	if m == nil {
		return 0, false
	}
	return m.Load(key)
}

// MapStore implements flexbpf.Env.
func (pi *ProgramInstance) MapStore(name string, key, val uint64) error {
	m := pi.store.Map(name)
	if m == nil {
		return fmt.Errorf("dataplane: program %s has no map %q", pi.prog.Name, name)
	}
	return m.Store(key, val)
}

// MapDelete implements flexbpf.Env.
func (pi *ProgramInstance) MapDelete(name string, key uint64) {
	if m := pi.store.Map(name); m != nil {
		m.Delete(key)
	}
}

// CounterAdd implements flexbpf.Env.
func (pi *ProgramInstance) CounterAdd(name string, idx, delta uint64) {
	if c := pi.store.Counter(name); c != nil {
		c.Add(idx, delta)
	}
}

// MeterExec implements flexbpf.Env.
func (pi *ProgramInstance) MeterExec(name string, idx, bytes uint64) uint64 {
	m := pi.store.Meter(name)
	if m == nil {
		return state.ColorRed
	}
	return m.Exec(idx, bytes, pi.now())
}

// TableLookup implements flexbpf.Env.
func (pi *ProgramInstance) TableLookup(name string, keys []uint64) (string, []uint64, bool) {
	t := pi.tables[name]
	if t == nil {
		return "", nil, false
	}
	return t.Lookup(keys)
}

// MapLoadSlot implements flexbpf.LinkedEnv.
func (pi *ProgramInstance) MapLoadSlot(slot int, key uint64) (uint64, bool) {
	m := pi.lmaps[slot]
	if m == nil {
		return 0, false
	}
	return m.Load(key)
}

// MapStoreSlot implements flexbpf.LinkedEnv.
func (pi *ProgramInstance) MapStoreSlot(slot int, key, val uint64) error {
	m := pi.lmaps[slot]
	if m == nil {
		return fmt.Errorf("dataplane: program %s has no map %q", pi.prog.Name, pi.linked.MapSlots()[slot])
	}
	return m.Store(key, val)
}

// MapDeleteSlot implements flexbpf.LinkedEnv.
func (pi *ProgramInstance) MapDeleteSlot(slot int, key uint64) {
	if m := pi.lmaps[slot]; m != nil {
		m.Delete(key)
	}
}

// CounterAddSlot implements flexbpf.LinkedEnv.
func (pi *ProgramInstance) CounterAddSlot(slot int, idx, delta uint64) {
	if c := pi.lcounters[slot]; c != nil {
		c.Add(idx, delta)
	}
}

// MeterExecSlot implements flexbpf.LinkedEnv.
func (pi *ProgramInstance) MeterExecSlot(slot int, idx, bytes uint64) uint64 {
	m := pi.lmeters[slot]
	if m == nil {
		return state.ColorRed
	}
	return m.Exec(idx, bytes, pi.now())
}

// Now implements flexbpf.Env.
func (pi *ProgramInstance) Now() uint64 { return pi.now() }

// Rand implements flexbpf.Env. The source is the hosting device's rng,
// which the fabric seeds from the simulation seed — never the global
// math/rand source — so OpRand draws replay bit-for-bit.
func (pi *ProgramInstance) Rand() uint64 { return pi.rng.Uint64() }

// ExportState captures all stateful objects in logical form, including
// table entries encoded as a logical object per table ("table:<name>").
// Table entries are control-plane content (rules) rather than data-plane
// state, but migration moves both.
func (pi *ProgramInstance) ExportState() []state.Logical {
	out := pi.store.ExportAll()
	return out
}

// ImportState restores stateful objects from logical form.
func (pi *ProgramInstance) ImportState(ls []state.Logical) error {
	return pi.store.ImportAll(ls)
}

// CopyEntriesFrom installs all table entries from another instance of the
// same program (used when migrating or replicating).
func (pi *ProgramInstance) CopyEntriesFrom(src *ProgramInstance) error {
	for name, st := range src.tables {
		dt := pi.tables[name]
		if dt == nil {
			return fmt.Errorf("dataplane: destination lacks table %q", name)
		}
		dt.Clear()
		for _, e := range st.Entries() {
			if err := dt.Insert(e); err != nil {
				return err
			}
		}
	}
	return nil
}
