package state

import (
	"fmt"
	"sort"
	"sync"
)

// CountMin is a count-min sketch: the canonical per-packet-mutating
// stateful app state from the paper's migration discussion (§3.4:
// "Consider migrating a stateful network app (e.g., one that maintains a
// count-min sketch). As the sketch state is updated for each packet,
// copying state via control plane software is impossible").
type CountMin struct {
	name       string
	rows, cols int

	mu    sync.Mutex
	cells []uint64 // rows × cols
	// updates counts total Update calls; used by migration experiments
	// to quantify staleness.
	updates uint64
}

// NewCountMin creates a sketch with the given shape.
func NewCountMin(name string, rows, cols int) *CountMin {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("state: sketch %s has invalid shape %dx%d", name, rows, cols))
	}
	return &CountMin{name: name, rows: rows, cols: cols, cells: make([]uint64, rows*cols)}
}

// Name returns the sketch name.
func (s *CountMin) Name() string { return s.name }

// Shape returns (rows, cols).
func (s *CountMin) Shape() (rows, cols int) { return s.rows, s.cols }

// rowHash derives row-specific hashes from one 64-bit key hash with
// multiply-shift mixing; identical across devices so estimates agree.
func (s *CountMin) rowHash(key uint64, row int) int {
	h := key
	h ^= uint64(row+1) * 0x9E3779B97F4A7C15
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int(h % uint64(s.cols))
}

// Update adds delta for key.
func (s *CountMin) Update(key uint64, delta uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for r := 0; r < s.rows; r++ {
		s.cells[r*s.cols+s.rowHash(key, r)] += delta
	}
	s.updates++
}

// Estimate returns the count-min estimate for key (an overestimate).
func (s *CountMin) Estimate(key uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	min := ^uint64(0)
	for r := 0; r < s.rows; r++ {
		if v := s.cells[r*s.cols+s.rowHash(key, r)]; v < min {
			min = v
		}
	}
	return min
}

// Updates returns the total number of Update calls since creation/reset.
func (s *CountMin) Updates() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updates
}

// Merge adds another sketch's cells into this one. Shapes must match.
// Merging is what makes packet-carried migration lossless: updates that
// landed on the old device during migration are merged into the new one.
func (s *CountMin) Merge(o *CountMin) error {
	if o.rows != s.rows || o.cols != s.cols {
		return fmt.Errorf("state: sketch %s: merge shape %dx%d != %dx%d", s.name, o.rows, o.cols, s.rows, s.cols)
	}
	o.mu.Lock()
	ocells := append([]uint64(nil), o.cells...)
	oupdates := o.updates
	o.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, v := range ocells {
		s.cells[i] += v
	}
	s.updates += oupdates
	return nil
}

// Export implements Object; zero cells are omitted.
func (s *CountMin) Export() Logical {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := Logical{
		Name: s.name,
		Kind: "cms",
		Params: map[string]uint64{
			"rows": uint64(s.rows), "cols": uint64(s.cols), "updates": s.updates,
		},
	}
	for i, v := range s.cells {
		if v != 0 {
			l.Entries = append(l.Entries, KV{uint64(i), v})
		}
	}
	return l
}

// Import implements Object. Shape must match exactly; the logical form
// is cell-addressed.
func (s *CountMin) Import(l Logical) error {
	if l.Kind != "cms" {
		return fmt.Errorf("state: sketch %s: cannot import logical kind %q", s.name, l.Kind)
	}
	if l.Params["rows"] != uint64(s.rows) || l.Params["cols"] != uint64(s.cols) {
		return fmt.Errorf("state: sketch %s: logical shape %dx%d != %dx%d",
			s.name, l.Params["rows"], l.Params["cols"], s.rows, s.cols)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.cells {
		s.cells[i] = 0
	}
	for _, kv := range l.Entries {
		if kv.Key >= uint64(len(s.cells)) {
			return fmt.Errorf("state: sketch %s: logical cell %d out of range", s.name, kv.Key)
		}
		s.cells[kv.Key] = kv.Val
	}
	s.updates = l.Params["updates"]
	return nil
}

// Reset implements Object.
func (s *CountMin) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.cells {
		s.cells[i] = 0
	}
	s.updates = 0
}

// Bloom is a Bloom filter over 64-bit keys.
type Bloom struct {
	name   string
	bits   int
	hashes int

	mu   sync.Mutex
	set  []uint64
	adds uint64
}

// NewBloom creates a filter with the given bit count and hash count.
func NewBloom(name string, bits, hashes int) *Bloom {
	if bits <= 0 || hashes <= 0 {
		panic(fmt.Sprintf("state: bloom %s has invalid shape bits=%d hashes=%d", name, bits, hashes))
	}
	return &Bloom{name: name, bits: bits, hashes: hashes, set: make([]uint64, (bits+63)/64)}
}

// Name returns the filter name.
func (b *Bloom) Name() string { return b.name }

func (b *Bloom) bitFor(key uint64, i int) int {
	h := key ^ uint64(i+1)*0xD6E8FEB86659FD93
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(b.bits))
}

// Add inserts key.
func (b *Bloom) Add(key uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 0; i < b.hashes; i++ {
		bit := b.bitFor(key, i)
		b.set[bit/64] |= 1 << uint(bit%64)
	}
	b.adds++
}

// Contains reports whether key may be present (false positives possible,
// false negatives not).
func (b *Bloom) Contains(key uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 0; i < b.hashes; i++ {
		bit := b.bitFor(key, i)
		if b.set[bit/64]&(1<<uint(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Export implements Object; zero words are omitted.
func (b *Bloom) Export() Logical {
	b.mu.Lock()
	defer b.mu.Unlock()
	l := Logical{
		Name:   b.name,
		Kind:   "bloom",
		Params: map[string]uint64{"bits": uint64(b.bits), "hashes": uint64(b.hashes), "adds": b.adds},
	}
	for i, w := range b.set {
		if w != 0 {
			l.Entries = append(l.Entries, KV{uint64(i), w})
		}
	}
	return l
}

// Import implements Object.
func (b *Bloom) Import(l Logical) error {
	if l.Kind != "bloom" {
		return fmt.Errorf("state: bloom %s: cannot import logical kind %q", b.name, l.Kind)
	}
	if l.Params["bits"] != uint64(b.bits) || l.Params["hashes"] != uint64(b.hashes) {
		return fmt.Errorf("state: bloom %s: shape mismatch", b.name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.set {
		b.set[i] = 0
	}
	for _, kv := range l.Entries {
		if kv.Key >= uint64(len(b.set)) {
			return fmt.Errorf("state: bloom %s: logical word %d out of range", b.name, kv.Key)
		}
		b.set[kv.Key] = kv.Val
	}
	b.adds = l.Params["adds"]
	return nil
}

// Reset implements Object.
func (b *Bloom) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.set {
		b.set[i] = 0
	}
	b.adds = 0
}

// Store is a named collection of state objects belonging to one program
// instance on one device. ExportAll/ImportAll move a whole program's
// state during migration.
type Store struct {
	mu      sync.Mutex
	objects map[string]Object
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[string]Object)}
}

// Add registers an object. Duplicate names are an error.
func (st *Store) Add(o Object) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.objects[o.Name()]; dup {
		return fmt.Errorf("state: store already has object %q", o.Name())
	}
	st.objects[o.Name()] = o
	return nil
}

// Get returns the named object, or nil.
func (st *Store) Get(name string) Object {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.objects[name]
}

// Map returns the named object as a *Map, or nil.
func (st *Store) Map(name string) *Map {
	m, _ := st.Get(name).(*Map)
	return m
}

// Counter returns the named object as a *Counter, or nil.
func (st *Store) Counter(name string) *Counter {
	c, _ := st.Get(name).(*Counter)
	return c
}

// Meter returns the named object as a *Meter, or nil.
func (st *Store) Meter(name string) *Meter {
	m, _ := st.Get(name).(*Meter)
	return m
}

// Names returns object names (unordered).
func (st *Store) Names() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.objects))
	for n := range st.objects {
		out = append(out, n)
	}
	return out
}

// ExportAll captures every object's logical state.
func (st *Store) ExportAll() []Logical {
	st.mu.Lock()
	names := make([]string, 0, len(st.objects))
	for n := range st.objects {
		names = append(names, n)
	}
	st.mu.Unlock()
	// Deterministic order for replication digests.
	sort.Strings(names)
	out := make([]Logical, 0, len(names))
	for _, n := range names {
		if o := st.Get(n); o != nil {
			out = append(out, o.Export())
		}
	}
	return out
}

// ImportAll restores objects by name. Objects present locally but absent
// from the logical set are reset; logical entries with no local object
// are an error (program/state mismatch).
func (st *Store) ImportAll(ls []Logical) error {
	seen := map[string]bool{}
	for _, l := range ls {
		o := st.Get(l.Name)
		if o == nil {
			return fmt.Errorf("state: import references unknown object %q", l.Name)
		}
		if err := o.Import(l); err != nil {
			return err
		}
		seen[l.Name] = true
	}
	for _, n := range st.Names() {
		if !seen[n] {
			st.Get(n).Reset()
		}
	}
	return nil
}
