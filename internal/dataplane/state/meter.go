package state

import (
	"fmt"
	"sync"
)

// Color is a meter marking result.
type Color = uint64

// Meter colors (two-rate three-color marker, RFC 2698 style).
const (
	ColorGreen  Color = 0
	ColorYellow Color = 1
	ColorRed    Color = 2
)

// Meter is an array of two-rate three-color markers. Each cell has a
// committed bucket (CIR/CBS) and a peak bucket (PIR/PBS); Exec charges
// bytes at a given time and returns the color.
//
// Time is supplied by the caller in nanoseconds of simulation time, which
// keeps the meter deterministic and device-clock independent.
type Meter struct {
	name     string
	cir, pir uint64 // bytes per second
	cbs, pbs uint64 // bucket depths in bytes

	mu    sync.Mutex
	cells []meterCell
}

type meterCell struct {
	tc, tp   uint64 // current tokens (bytes)
	lastNano uint64
	inited   bool
	// rebase marks a freshly imported cell: the first Exec adopts its
	// nowNano as the token-fill baseline instead of crediting the gap.
	rebase bool
}

// NewMeter creates a meter array.
func NewMeter(name string, size int, cir, pir, cbs, pbs uint64) *Meter {
	if size <= 0 {
		panic(fmt.Sprintf("state: meter %s has non-positive size %d", name, size))
	}
	if pir < cir {
		panic(fmt.Sprintf("state: meter %s has PIR %d < CIR %d", name, pir, cir))
	}
	return &Meter{name: name, cir: cir, pir: pir, cbs: cbs, pbs: pbs, cells: make([]meterCell, size)}
}

// Name returns the meter name.
func (m *Meter) Name() string { return m.name }

// Exec charges bytes to cell idx at time nowNano and returns the color.
// Out-of-range indexes return red (fail-closed).
func (m *Meter) Exec(idx uint64, bytes uint64, nowNano uint64) Color {
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx >= uint64(len(m.cells)) {
		return ColorRed
	}
	c := &m.cells[idx]
	if !c.inited {
		c.tc, c.tp = m.cbs, m.pbs
		c.lastNano = nowNano
		c.inited = true
	}
	if c.rebase {
		c.lastNano = nowNano
		c.rebase = false
	}
	if nowNano > c.lastNano {
		elapsed := nowNano - c.lastNano
		c.tc = addTokens(c.tc, m.cir, elapsed, m.cbs)
		c.tp = addTokens(c.tp, m.pir, elapsed, m.pbs)
		c.lastNano = nowNano
	}
	switch {
	case c.tp < bytes:
		return ColorRed
	case c.tc < bytes:
		c.tp -= bytes
		return ColorYellow
	default:
		c.tp -= bytes
		c.tc -= bytes
		return ColorGreen
	}
}

func addTokens(cur, rate, elapsedNano, depth uint64) uint64 {
	// tokens = rate bytes/sec × elapsed ns / 1e9, computed carefully to
	// avoid overflow for realistic rates (< 2^34 B/s) and horizons.
	add := rate / 1e9 * elapsedNano
	add += rate % 1e9 * elapsedNano / 1e9
	cur += add
	if cur > depth {
		cur = depth
	}
	return cur
}

// Export implements Object. Each cell packs (tc, tp) into two entries:
// key = idx*2 for committed tokens, idx*2+1 for peak tokens. lastNano is
// intentionally excluded: after migration the receiving device re-bases
// time on first use.
func (m *Meter) Export() Logical {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := Logical{
		Name: m.name,
		Kind: "meter",
		Params: map[string]uint64{
			"size": uint64(len(m.cells)),
			"cir":  m.cir, "pir": m.pir, "cbs": m.cbs, "pbs": m.pbs,
		},
	}
	for i := range m.cells {
		c := &m.cells[i]
		if !c.inited {
			continue
		}
		l.Entries = append(l.Entries, KV{uint64(i) * 2, c.tc}, KV{uint64(i)*2 + 1, c.tp})
	}
	return l
}

// Import implements Object.
func (m *Meter) Import(l Logical) error {
	if l.Kind != "meter" {
		return fmt.Errorf("state: meter %s: cannot import logical kind %q", m.name, l.Kind)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.cells {
		m.cells[i] = meterCell{}
	}
	for _, kv := range l.Entries {
		idx := kv.Key / 2
		if idx >= uint64(len(m.cells)) {
			return fmt.Errorf("state: meter %s: logical index %d out of range %d", m.name, idx, len(m.cells))
		}
		c := &m.cells[idx]
		c.inited = true
		c.rebase = true
		if kv.Key%2 == 0 {
			c.tc = kv.Val
		} else {
			c.tp = kv.Val
		}
	}
	return nil
}

// Reset implements Object.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.cells {
		m.cells[i] = meterCell{}
	}
}
