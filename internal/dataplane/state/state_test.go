package state

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArrayMap(t *testing.T) {
	m := NewMap("regs", KindArray, 8)
	if v, ok := m.Load(3); !ok || v != 0 {
		t.Fatalf("fresh array slot: v=%d ok=%v", v, ok)
	}
	if _, ok := m.Load(8); ok {
		t.Fatal("out-of-range load succeeded")
	}
	if err := m.Store(3, 42); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(8, 1); err == nil {
		t.Fatal("out-of-range store succeeded")
	}
	if v, _ := m.Load(3); v != 42 {
		t.Fatalf("load = %d", v)
	}
}

func TestHashMapCapacity(t *testing.T) {
	m := NewMap("flows", KindHash, 2)
	if err := m.Store(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(2, 20); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(3, 30); err == nil {
		t.Fatal("store beyond capacity succeeded")
	}
	// Overwriting an existing key is allowed at capacity.
	if err := m.Store(1, 11); err != nil {
		t.Fatalf("overwrite at capacity: %v", err)
	}
	m.Delete(2)
	if err := m.Store(3, 30); err != nil {
		t.Fatalf("store after delete: %v", err)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestLRUMapEviction(t *testing.T) {
	m := NewMap("cache", KindLRU, 3)
	m.Store(1, 1)
	m.Store(2, 2)
	m.Store(3, 3)
	// Touch 1 and 2 so 3 is the LRU.
	m.Load(1)
	m.Load(2)
	m.Store(4, 4)
	if _, ok := m.Load(3); ok {
		t.Fatal("LRU entry 3 not evicted")
	}
	for _, k := range []uint64{1, 2, 4} {
		if _, ok := m.Load(k); !ok {
			t.Fatalf("entry %d evicted wrongly", k)
		}
	}
}

func TestLRUNeverExceedsCapacity(t *testing.T) {
	m := NewMap("cache", KindLRU, 16)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		m.Store(uint64(r.Intn(100)), uint64(i))
		if m.Len() > 16 {
			t.Fatalf("LRU grew to %d", m.Len())
		}
	}
}

func TestMapExportImportRoundTrip(t *testing.T) {
	m := NewMap("flows", KindHash, 64)
	for i := uint64(0); i < 20; i++ {
		m.Store(i*7, i)
	}
	l := m.Export()
	if l.Kind != "map" || len(l.Entries) != 20 {
		t.Fatalf("logical = %+v", l)
	}
	// Entries must be sorted by key (determinism for digests).
	for i := 1; i < len(l.Entries); i++ {
		if l.Entries[i-1].Key >= l.Entries[i].Key {
			t.Fatal("logical entries not sorted")
		}
	}
	n := NewMap("flows", KindHash, 64)
	if err := n.Import(l); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if v, ok := n.Load(i * 7); !ok || v != i {
			t.Fatalf("key %d: v=%d ok=%v", i*7, v, ok)
		}
	}
}

func TestCrossEncodingImport(t *testing.T) {
	// The §3.1 claim: state virtualization lets a register-file (array)
	// encoding move to a flow-table (hash/LRU) encoding and back.
	arr := NewMap("st", KindArray, 16)
	for i := uint64(0); i < 16; i++ {
		arr.Store(i, i*i)
	}
	lru := NewMap("st", KindLRU, 16)
	if err := lru.Import(arr.Export()); err != nil {
		t.Fatalf("array→lru: %v", err)
	}
	back := NewMap("st", KindArray, 16)
	if err := back.Import(lru.Export()); err != nil {
		t.Fatalf("lru→array: %v", err)
	}
	for i := uint64(0); i < 16; i++ {
		if v, _ := back.Load(i); v != i*i {
			t.Fatalf("slot %d = %d after round trip", i, v)
		}
	}
	// Capacity is still validated across encodings.
	big := NewMap("st", KindHash, 64)
	for i := uint64(0); i < 40; i++ {
		big.Store(i, 1)
	}
	small := NewMap("st", KindArray, 16)
	if err := small.Import(big.Export()); err == nil {
		t.Fatal("oversized import accepted")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("pkts", 4)
	c.Add(0, 5)
	c.Add(3, 7)
	c.Add(99, 1) // dropped
	if c.Value(0) != 5 || c.Value(3) != 7 || c.Sum() != 12 {
		t.Fatalf("counter: %d %d sum=%d", c.Value(0), c.Value(3), c.Sum())
	}
	l := c.Export()
	d := NewCounter("pkts", 4)
	if err := d.Import(l); err != nil {
		t.Fatal(err)
	}
	if d.Sum() != 12 {
		t.Fatalf("imported sum = %d", d.Sum())
	}
	d.Reset()
	if d.Sum() != 0 {
		t.Fatal("reset failed")
	}
	// Import into smaller counter fails.
	e := NewCounter("pkts", 2)
	if err := e.Import(l); err == nil {
		t.Fatal("oversized counter import accepted")
	}
}

func TestMeterColors(t *testing.T) {
	// CIR 1000 B/s, PIR 2000 B/s, buckets 1000/2000 B.
	m := NewMeter("police", 1, 1000, 2000, 1000, 2000)
	now := uint64(0)
	// First packet: buckets full → green.
	if c := m.Exec(0, 500, now); c != ColorGreen {
		t.Fatalf("first: %d", c)
	}
	// Drain committed bucket → yellow (peak still has tokens).
	if c := m.Exec(0, 600, now); c != ColorYellow {
		t.Fatalf("second: %d", c)
	}
	// Drain peak bucket → red.
	if c := m.Exec(0, 1000, now); c != ColorRed {
		t.Fatalf("third: %d", c)
	}
	// After one second both buckets refill by their rates.
	now += 1_000_000_000
	if c := m.Exec(0, 900, now); c != ColorGreen {
		t.Fatalf("after refill: %d", c)
	}
}

func TestMeterOutOfRangeRed(t *testing.T) {
	m := NewMeter("police", 1, 1000, 2000, 1000, 2000)
	if c := m.Exec(5, 1, 0); c != ColorRed {
		t.Fatalf("out-of-range index colored %d", c)
	}
}

func TestMeterExportImportRebase(t *testing.T) {
	m := NewMeter("police", 2, 1000, 2000, 1000, 2000)
	m.Exec(0, 900, 0) // drain most of committed bucket
	l := m.Export()
	n := NewMeter("police", 2, 1000, 2000, 1000, 2000)
	if err := n.Import(l); err != nil {
		t.Fatal(err)
	}
	// Far-future first use must NOT refill from time zero: levels carry
	// over and the clock re-bases.
	if c := n.Exec(0, 900, 3_600_000_000_000); c != ColorYellow {
		t.Fatalf("rebased meter colored %d, want yellow", c)
	}
}

func TestCountMinOverestimateProperty(t *testing.T) {
	// Property: estimate(key) >= true count, always.
	s := NewCountMin("cms", 4, 64)
	truth := map[uint64]uint64{}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		k := uint64(r.Intn(200))
		s.Update(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := s.Estimate(k); got < want {
			t.Fatalf("estimate(%d) = %d < true %d", k, got, want)
		}
	}
	if s.Updates() != 5000 {
		t.Fatalf("updates = %d", s.Updates())
	}
}

func TestCountMinMergeEquivalence(t *testing.T) {
	// Property: updates split across two sketches then merged ==
	// all updates on one sketch.
	a := NewCountMin("cms", 4, 128)
	b := NewCountMin("cms", 4, 128)
	whole := NewCountMin("cms", 4, 128)
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		k := r.Uint64() % 500
		whole.Update(k, 1)
		if i%2 == 0 {
			a.Update(k, 1)
		} else {
			b.Update(k, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		if a.Estimate(k) != whole.Estimate(k) {
			t.Fatalf("merged estimate(%d) = %d, whole = %d", k, a.Estimate(k), whole.Estimate(k))
		}
	}
	if a.Updates() != whole.Updates() {
		t.Fatalf("merged updates = %d, want %d", a.Updates(), whole.Updates())
	}
}

func TestCountMinExportImport(t *testing.T) {
	s := NewCountMin("cms", 3, 32)
	for i := uint64(0); i < 100; i++ {
		s.Update(i, i)
	}
	l := s.Export()
	d := NewCountMin("cms", 3, 32)
	if err := d.Import(l); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if s.Estimate(i) != d.Estimate(i) {
			t.Fatalf("estimate diverges at %d", i)
		}
	}
	wrong := NewCountMin("cms", 4, 32)
	if err := wrong.Import(l); err == nil {
		t.Fatal("shape-mismatched import accepted")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom("seen", 1024, 3)
	f := func(keys []uint64) bool {
		b.Reset()
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomExportImport(t *testing.T) {
	b := NewBloom("seen", 512, 4)
	for i := uint64(0); i < 50; i++ {
		b.Add(i * 3)
	}
	c := NewBloom("seen", 512, 4)
	if err := c.Import(b.Export()); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if !c.Contains(i * 3) {
			t.Fatalf("imported filter lost key %d", i*3)
		}
	}
	wrong := NewBloom("seen", 256, 4)
	if err := wrong.Import(b.Export()); err == nil {
		t.Fatal("shape-mismatched bloom import accepted")
	}
}

func TestStoreExportImportAll(t *testing.T) {
	st := NewStore()
	m := NewMap("flows", KindHash, 32)
	c := NewCounter("pkts", 4)
	s := NewCountMin("cms", 2, 16)
	for _, o := range []Object{m, c, s} {
		if err := st.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Add(NewMap("flows", KindHash, 1)); err == nil {
		t.Fatal("duplicate object name accepted")
	}
	m.Store(1, 100)
	c.Add(0, 9)
	s.Update(7, 3)

	ls := st.ExportAll()
	if len(ls) != 3 {
		t.Fatalf("exported %d objects", len(ls))
	}

	// Destination store with same object shapes.
	dst := NewStore()
	dm := NewMap("flows", KindLRU, 32) // different encoding on purpose
	dc := NewCounter("pkts", 4)
	ds := NewCountMin("cms", 2, 16)
	for _, o := range []Object{dm, dc, ds} {
		dst.Add(o)
	}
	if err := dst.ImportAll(ls); err != nil {
		t.Fatal(err)
	}
	if v, _ := dm.Load(1); v != 100 {
		t.Fatal("map state lost")
	}
	if dc.Value(0) != 9 {
		t.Fatal("counter state lost")
	}
	if ds.Estimate(7) != 3 {
		t.Fatal("sketch state lost")
	}

	// Import referencing unknown object errors.
	if err := dst.ImportAll([]Logical{{Name: "ghost", Kind: "map"}}); err == nil {
		t.Fatal("unknown object import accepted")
	}

	// Typed accessors.
	if dst.Map("flows") == nil || dst.Counter("pkts") == nil || dst.Map("pkts") != nil {
		t.Fatal("typed accessors broken")
	}
}

func TestStoreImportResetsAbsent(t *testing.T) {
	st := NewStore()
	c := NewCounter("pkts", 2)
	st.Add(c)
	c.Add(0, 5)
	if err := st.ImportAll(nil); err != nil {
		t.Fatal(err)
	}
	if c.Sum() != 0 {
		t.Fatal("absent object not reset on import")
	}
}

func TestWrongKindImports(t *testing.T) {
	m := NewMap("x", KindHash, 4)
	if err := m.Import(Logical{Name: "x", Kind: "counter"}); err == nil {
		t.Fatal("map imported counter state")
	}
	c := NewCounter("x", 4)
	if err := c.Import(Logical{Name: "x", Kind: "map"}); err == nil {
		t.Fatal("counter imported map state")
	}
	mt := NewMeter("x", 1, 1, 1, 1, 1)
	if err := mt.Import(Logical{Name: "x", Kind: "cms"}); err == nil {
		t.Fatal("meter imported cms state")
	}
}
