// Package state implements the stateful data-plane objects FlexBPF
// programs use: key/value maps, counters, meters, sketches and filters.
//
// Every object implements Object, whose Export/Import methods move state
// through a *logical representation* — the paper's key idea for state
// virtualization (§3.1): devices encode state differently (P4 registers,
// PoF flow instruction sets, Spectrum stateful tables), so migration
// between devices and encodings must go through a canonical form.
// "Program migration carries its state in this logical representation."
//
// DESIGN.md §2 (S4) inventories the object set; §10.4 defines what happens to this state when its device crashes.
package state

import (
	"fmt"
	"sort"
	"sync"
)

// KV is one logical key/value pair.
type KV struct {
	Key uint64
	Val uint64
}

// Logical is the canonical, device-independent representation of one
// stateful object. It is what travels when a program migrates.
type Logical struct {
	// Name is the object's name within its program.
	Name string
	// Kind discriminates the object type ("map", "counter", "meter",
	// "cms", "bloom").
	Kind string
	// Params carries type-specific shape (rows, cols, sizes) so the
	// receiver can validate compatibility.
	Params map[string]uint64
	// Entries is the state content, sorted by key for determinism.
	Entries []KV
}

// Object is a stateful data-plane object with logical import/export.
type Object interface {
	// Name returns the object's name.
	Name() string
	// Export captures the current state in logical form.
	Export() Logical
	// Import replaces the current state from logical form.
	Import(Logical) error
	// Reset clears all state.
	Reset()
}

func sortedEntries(m map[uint64]uint64) []KV {
	out := make([]KV, 0, len(m))
	for k, v := range m {
		out = append(out, KV{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// MapKind mirrors flexbpf map kinds without importing it (state is the
// lower layer).
type MapKind uint8

// Map kinds.
const (
	KindArray MapKind = iota
	KindHash
	KindLRU
)

// Map is a bounded key/value map in one of three flavors:
//
//   - array: dense, preallocated, keys 0..max-1 (P4 register file).
//   - hash: sparse, inserts fail when full (exact-match stateful table).
//   - lru: sparse, inserts evict the least recently used entry (flow
//     cache, as in the Spectrum stateful-table design [58]).
//
// Map is safe for concurrent use.
type Map struct {
	name string
	kind MapKind
	max  int

	mu   sync.Mutex
	data map[uint64]uint64
	// recency implements LRU ordering: seq numbers per key.
	recency map[uint64]uint64
	seq     uint64
}

// NewMap creates a map. max must be positive.
func NewMap(name string, kind MapKind, max int) *Map {
	if max <= 0 {
		panic(fmt.Sprintf("state: map %s has non-positive size %d", name, max))
	}
	m := &Map{name: name, kind: kind, max: max, data: make(map[uint64]uint64)}
	if kind == KindLRU {
		m.recency = make(map[uint64]uint64)
	}
	return m
}

// Name returns the map name.
func (m *Map) Name() string { return m.name }

// Kind returns the map kind.
func (m *Map) Kind() MapKind { return m.kind }

// Load returns the value for key.
//
// Array maps return (0, true) for any in-range key — array slots always
// exist — and (0, false) out of range.
func (m *Map) Load(key uint64) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.kind == KindArray {
		if key >= uint64(m.max) {
			return 0, false
		}
		return m.data[key], true
	}
	v, ok := m.data[key]
	if ok && m.kind == KindLRU {
		m.seq++
		m.recency[key] = m.seq
	}
	return v, ok
}

// Store writes key→val. Hash maps error when full; LRU maps evict.
func (m *Map) Store(key, val uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.kind {
	case KindArray:
		if key >= uint64(m.max) {
			return fmt.Errorf("state: map %s: array index %d out of range %d", m.name, key, m.max)
		}
		m.data[key] = val
		return nil
	case KindHash:
		if _, exists := m.data[key]; !exists && len(m.data) >= m.max {
			return fmt.Errorf("state: map %s full (%d entries)", m.name, m.max)
		}
		m.data[key] = val
		return nil
	case KindLRU:
		if _, exists := m.data[key]; !exists && len(m.data) >= m.max {
			m.evictLocked()
		}
		m.data[key] = val
		m.seq++
		m.recency[key] = m.seq
		return nil
	default:
		return fmt.Errorf("state: map %s has unknown kind %d", m.name, m.kind)
	}
}

func (m *Map) evictLocked() {
	var victim uint64
	oldest := ^uint64(0)
	for k, s := range m.recency {
		if s < oldest {
			oldest = s
			victim = k
		}
	}
	delete(m.data, victim)
	delete(m.recency, victim)
}

// Delete removes key (no-op for absent keys; array maps zero the slot).
func (m *Map) Delete(key uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data, key)
	if m.recency != nil {
		delete(m.recency, key)
	}
}

// Len returns the number of occupied entries.
func (m *Map) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.data)
}

// Export implements Object.
func (m *Map) Export() Logical {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Logical{
		Name:    m.name,
		Kind:    "map",
		Params:  map[string]uint64{"kind": uint64(m.kind), "max": uint64(m.max)},
		Entries: sortedEntries(m.data),
	}
}

// Import implements Object. The logical kind may come from a *different*
// map flavor (that is the point of virtualization); only capacity is
// validated.
func (m *Map) Import(l Logical) error {
	if l.Kind != "map" {
		return fmt.Errorf("state: map %s: cannot import logical kind %q", m.name, l.Kind)
	}
	if len(l.Entries) > m.max {
		return fmt.Errorf("state: map %s: %d logical entries exceed capacity %d", m.name, len(l.Entries), m.max)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = make(map[uint64]uint64, len(l.Entries))
	if m.recency != nil {
		m.recency = make(map[uint64]uint64, len(l.Entries))
	}
	for _, kv := range l.Entries {
		if m.kind == KindArray && kv.Key >= uint64(m.max) {
			return fmt.Errorf("state: map %s: logical key %d out of array range %d", m.name, kv.Key, m.max)
		}
		m.data[kv.Key] = kv.Val
		if m.recency != nil {
			m.seq++
			m.recency[kv.Key] = m.seq
		}
	}
	return nil
}

// Reset implements Object.
func (m *Map) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = make(map[uint64]uint64)
	if m.recency != nil {
		m.recency = make(map[uint64]uint64)
	}
}

// Counter is an indexed array of 64-bit counters.
type Counter struct {
	name string

	mu   sync.Mutex
	vals []uint64
}

// NewCounter creates a counter array of the given size.
func NewCounter(name string, size int) *Counter {
	if size <= 0 {
		panic(fmt.Sprintf("state: counter %s has non-positive size %d", name, size))
	}
	return &Counter{name: name, vals: make([]uint64, size)}
}

// Name returns the counter name.
func (c *Counter) Name() string { return c.name }

// Add increments counter idx by delta. Out-of-range indexes are dropped
// (hardware semantics: the update unit masks the index).
func (c *Counter) Add(idx, delta uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx < uint64(len(c.vals)) {
		c.vals[idx] += delta
	}
}

// Value returns counter idx (0 if out of range).
func (c *Counter) Value(idx uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx < uint64(len(c.vals)) {
		return c.vals[idx]
	}
	return 0
}

// Sum returns the total across all indexes.
func (c *Counter) Sum() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s uint64
	for _, v := range c.vals {
		s += v
	}
	return s
}

// Export implements Object; zero slots are omitted.
func (c *Counter) Export() Logical {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := Logical{Name: c.name, Kind: "counter", Params: map[string]uint64{"size": uint64(len(c.vals))}}
	for i, v := range c.vals {
		if v != 0 {
			l.Entries = append(l.Entries, KV{uint64(i), v})
		}
	}
	return l
}

// Import implements Object.
func (c *Counter) Import(l Logical) error {
	if l.Kind != "counter" {
		return fmt.Errorf("state: counter %s: cannot import logical kind %q", c.name, l.Kind)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.vals {
		c.vals[i] = 0
	}
	for _, kv := range l.Entries {
		if kv.Key >= uint64(len(c.vals)) {
			return fmt.Errorf("state: counter %s: logical index %d out of range %d", c.name, kv.Key, len(c.vals))
		}
		c.vals[kv.Key] = kv.Val
	}
	return nil
}

// Reset implements Object.
func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.vals {
		c.vals[i] = 0
	}
}
