package dataplane

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"flexnet/internal/flexbpf"
	"flexnet/internal/packet"
	"flexnet/internal/telemetry"
)

// cacheRouter builds an exact-match router on ipv4.dst whose action
// forwards to its parameter port; a miss falls through with Continue.
func cacheRouter(name string) *flexbpf.Program {
	act := flexbpf.NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	return flexbpf.NewProgram(name).
		Action(name+"_fwd", 1, act).
		Table(&flexbpf.TableSpec{
			Name:    name + "_t",
			Keys:    []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}},
			Actions: []string{name + "_fwd"},
			Size:    16,
		}).
		Apply(name + "_t").
		MustBuild()
}

// cacheMarker builds a stateless classifier whose write set (meta.mark)
// depends on validated read fields, exercising the cache's pre/post
// field bookkeeping.
func cacheMarker(name string) *flexbpf.Program {
	code := flexbpf.NewAsm().
		LdField(1, "ipv4.ttl").
		LdField(2, "tcp.dport").
		Hash(1, 1).
		Add(1, 2).
		StField("meta.mark", 1).
		Ret().MustBuild()
	return flexbpf.NewProgram(name).Do(code).MustBuild()
}

// cacheTestPipeline installs the identical three-stage pipeline on d:
// marker, conditional dropper (tcp.dport == 443), then the router.
func cacheTestPipeline(t *testing.T, d *Device, port uint64) {
	t.Helper()
	install := func(p *flexbpf.Program, prio int) {
		if err := d.InstallProgramOpt(p, InstallOptions{Priority: prio}); err != nil {
			t.Fatalf("install %s: %v", p.Name, err)
		}
	}
	install(cacheMarker("mark"), 10)
	install(dropDportProgram("guard", 443), 20)
	install(cacheRouter("rt"), PriorityInfra)
	if err := d.Instance("rt").Table("rt_t").Insert(
		flexbpf.ExactEntry("rt_fwd", []uint64{port}, uint64(packet.IP(10, 0, 0, 2)))); err != nil {
		t.Fatal(err)
	}
}

// randomCachePacket draws from a small flow pool with per-packet field
// jitter so the cache sees hits, misses, and same-key variants.
func randomCachePacket(r *rand.Rand, id uint64) *packet.Packet {
	dport := uint16(80)
	switch r.Intn(4) {
	case 0:
		dport = 443 // dropped by the guard
	case 1:
		dport = 8080
	}
	p := packet.TCPPacket(id,
		packet.IP(10, 0, 1, byte(1+r.Intn(3))), packet.IP(10, 0, 0, 2),
		uint16(5000+r.Intn(4)), dport, 0, 100+10*r.Intn(3))
	p.SetField("ipv4.ttl", uint64(1+r.Intn(3)))
	return p
}

// diffPacketState explains the first observable difference between two
// processed packets ("" when identical), scanning every interned field.
func diffPacketState(a, b *packet.Packet) string {
	if a.EgressPort != b.EgressPort {
		return fmt.Sprintf("egress %d != %d", a.EgressPort, b.EgressPort)
	}
	if a.Epoch != b.Epoch {
		return fmt.Sprintf("epoch %d != %d", a.Epoch, b.Epoch)
	}
	if a.PayloadLen != b.PayloadLen {
		return fmt.Sprintf("payload %d != %d", a.PayloadLen, b.PayloadLen)
	}
	if !reflect.DeepEqual(a.Headers, b.Headers) {
		return fmt.Sprintf("headers %v != %v", a.Headers, b.Headers)
	}
	for id := 0; id < packet.NumFieldIDs(); id++ {
		fid := packet.FieldID(id)
		va, oka := a.FieldOKByID(fid)
		vb, okb := b.FieldOKByID(fid)
		if oka != okb || va != vb {
			return fmt.Sprintf("field %s: %d/%v != %d/%v",
				packet.FieldIDName(fid), va, oka, vb, okb)
		}
	}
	return ""
}

func diffStats(a, b ProcStats) string {
	if a.Verdict != b.Verdict || a.Epoch != b.Epoch || a.LatencyNs != b.LatencyNs ||
		a.Instrs != b.Instrs || a.Lookups != b.Lookups ||
		!reflect.DeepEqual(a.Programs, b.Programs) {
		return fmt.Sprintf("%+v != %+v", a, b)
	}
	return ""
}

// TestFlowCacheEquivalenceProperty is the per-packet equivalence
// property behind the benchdiff gate: a cached device and an uncached
// twin fed the same packet stream produce identical ProcStats (verdict,
// epoch, latency, Instrs/Lookups, program list) and identical packet
// state — including across a config swap landing mid-stream and a table
// mutation that bumps generations without an epoch change.
func TestFlowCacheEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cached := MustNew(DefaultConfig("sw", ArchDRMT))
	cached.EnableFlowCache(telemetry.NewRegistry())
	plain := MustNew(DefaultConfig("sw", ArchDRMT))
	cacheTestPipeline(t, cached, 7)
	cacheTestPipeline(t, plain, 7)

	swapBoth := func(step int) {
		for _, d := range []*Device{cached, plain} {
			if err := d.Swap(func(st *StagedConfig) error {
				if err := st.Remove("mark"); err != nil {
					return err
				}
				return st.Install(cacheMarker("mark"), nil)
			}); err != nil {
				t.Fatalf("swap at %d: %v", step, err)
			}
		}
	}
	mutateBoth := func(step int) {
		for _, d := range []*Device{cached, plain} {
			ti := d.Instance("rt").Table("rt_t")
			if err := ti.ReplaceAll([]*flexbpf.TableEntry{
				flexbpf.ExactEntry("rt_fwd", []uint64{uint64(3 + step%5)}, uint64(packet.IP(10, 0, 0, 2))),
			}); err != nil {
				t.Fatalf("replace at %d: %v", step, err)
			}
		}
	}

	for i := 0; i < 4000; i++ {
		switch {
		case i%997 == 500:
			swapBoth(i) // epoch-atomic commit mid-stream
		case i%613 == 300:
			mutateBoth(i) // generation bump, same epoch
		}
		src := randomCachePacket(r, uint64(i))
		pc, pp := src.Clone(), src.Clone()
		sc := cached.Process(pc)
		sp := plain.Process(pp)
		if d := diffStats(sc, sp); d != "" {
			t.Fatalf("packet %d: stats diverge: %s", i, d)
		}
		if d := diffPacketState(pc, pp); d != "" {
			t.Fatalf("packet %d: packet state diverges: %s", i, d)
		}
		if pc.Epoch != cached.Epoch() {
			t.Fatalf("packet %d: stale epoch %d served at epoch %d", i, pc.Epoch, cached.Epoch())
		}
	}
	st := cached.FlowCacheStats()
	if st.Hits == 0 {
		t.Fatal("property test never exercised a cache hit")
	}
	if st.Invalidations == 0 {
		t.Fatal("property test never exercised an epoch invalidation")
	}
}

// TestFlowCacheUncacheableBypass: a pipeline containing per-flow state
// (a map) must never be served from the cache, and stays equivalent.
func TestFlowCacheUncacheableBypass(t *testing.T) {
	stateful := flexbpf.NewProgram("hh").
		HashMap("hh_m", 64, 8).
		Do(flexbpf.NewAsm().
			FlowHash(0).
			MapLoad(1, "hh_m", 0).
			AddImm(1, 1).
			MapStore("hh_m", 0, 1).
			Ret().MustBuild()).
		MustBuild()
	cached := MustNew(DefaultConfig("sw", ArchDRMT))
	cached.EnableFlowCache(telemetry.NewRegistry())
	plain := MustNew(DefaultConfig("sw", ArchDRMT))
	for _, d := range []*Device{cached, plain} {
		if err := d.InstallProgram(stateful); err != nil {
			t.Fatal(err)
		}
		if err := d.InstallProgramOpt(cacheRouter("rt"), InstallOptions{Priority: PriorityInfra}); err != nil {
			t.Fatal(err)
		}
		if err := d.Instance("rt").Table("rt_t").Insert(
			flexbpf.ExactEntry("rt_fwd", []uint64{7}, uint64(packet.IP(10, 0, 0, 2)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		src := testPkt(uint64(i))
		pc, pp := src.Clone(), src.Clone()
		if d := diffStats(cached.Process(pc), plain.Process(pp)); d != "" {
			t.Fatalf("packet %d: stats diverge: %s", i, d)
		}
	}
	st := cached.FlowCacheStats()
	if st.Hits != 0 || st.Misses != 0 || st.Inserts != 0 {
		t.Fatalf("uncacheable pipeline touched the cache: %+v", st)
	}
}

// TestFlowCacheSwapHammer drives cached processing from several
// goroutines while another goroutine commits config swaps as fast as it
// can. Run under -race this is the CI hammer for the commit/lookup
// overlap; in any mode it checks that no packet is ever served an
// outcome from a superseded epoch.
func TestFlowCacheSwapHammer(t *testing.T) {
	d := MustNew(DefaultConfig("sw", ArchDRMT))
	d.EnableFlowCache(telemetry.NewRegistry())
	cacheTestPipeline(t, d, 7)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 0; ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = d.Swap(func(st *StagedConfig) error {
				if err := st.Remove("mark"); err != nil {
					return err
				}
				return st.Install(cacheMarker("mark"), nil)
			})
		}
	}()

	const procs = 4
	errs := make(chan error, procs)
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				pkt := randomCachePacket(r, uint64(g*1_000_000+i))
				st := d.Process(pkt)
				if pkt.Epoch != st.Epoch {
					errs <- fmt.Errorf("goroutine %d packet %d: epoch mismatch %d != %d",
						g, i, pkt.Epoch, st.Epoch)
					return
				}
				if st.Verdict != packet.VerdictForward && st.Verdict != packet.VerdictDrop {
					errs <- fmt.Errorf("goroutine %d packet %d: verdict %v", g, i, st.Verdict)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < procs; g++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

// FuzzFlowCacheEquivalence fuzzes the record→replay round trip: for an
// arbitrary packet shape, a cached device's miss-then-hit pair must
// match an uncached device bit-for-bit in stats and packet state, and
// must keep matching after an epoch commit retires the entry.
func FuzzFlowCacheEquivalence(f *testing.F) {
	f.Add(uint16(5000), uint16(80), uint8(64), uint8(100), false)
	f.Add(uint16(5001), uint16(443), uint8(1), uint8(0), true)
	f.Add(uint16(0), uint16(0), uint8(0), uint8(255), false)
	f.Fuzz(func(t *testing.T, sport, dport uint16, ttl, plen uint8, swap bool) {
		cached := MustNew(DefaultConfig("sw", ArchDRMT))
		cached.EnableFlowCache(telemetry.NewRegistry())
		plain := MustNew(DefaultConfig("sw", ArchDRMT))
		cacheTestPipeline(t, cached, 7)
		cacheTestPipeline(t, plain, 7)

		mk := func(id uint64) *packet.Packet {
			p := packet.TCPPacket(id, packet.IP(10, 0, 1, 1), packet.IP(10, 0, 0, 2),
				sport, dport, 0, int(plen))
			p.SetField("ipv4.ttl", uint64(ttl))
			return p
		}
		check := func(round string, id uint64) {
			src := mk(id)
			pc, pp := src.Clone(), src.Clone()
			if d := diffStats(cached.Process(pc), plain.Process(pp)); d != "" {
				t.Fatalf("%s: stats diverge: %s", round, d)
			}
			if d := diffPacketState(pc, pp); d != "" {
				t.Fatalf("%s: packet state diverges: %s", round, d)
			}
		}
		check("miss", 1)
		check("hit", 2)
		if swap {
			for _, d := range []*Device{cached, plain} {
				if err := d.Swap(func(st *StagedConfig) error {
					if err := st.Remove("mark"); err != nil {
						return err
					}
					return st.Install(cacheMarker("mark"), nil)
				}); err != nil {
					t.Fatal(err)
				}
			}
			check("post-swap", 3)
		}
	})
}
