package dataplane

import (
	"fmt"
	"math/rand"
	"testing"

	"flexnet/internal/flexbpf"
)

// randomProgram builds a random (but valid) program mixing tables, maps,
// counters, and compute.
func randomProgram(r *rand.Rand, name string) *flexbpf.Program {
	b := flexbpf.NewProgram(name).
		Action("act", 1, flexbpf.NewAsm().LdParam(0, 0).Forward(0).MustBuild())
	nTables := 1 + r.Intn(3)
	for i := 0; i < nTables; i++ {
		kind := flexbpf.MatchExact
		if r.Intn(3) == 0 {
			kind = flexbpf.MatchTernary
		}
		tn := fmt.Sprintf("%s_t%d", name, i)
		b.Table(&flexbpf.TableSpec{
			Name:    tn,
			Keys:    []flexbpf.TableKey{{Field: "ipv4.dst", Kind: kind, Bits: 32}},
			Actions: []string{"act"},
			Size:    1 + r.Intn(256),
		}).Apply(tn)
	}
	if r.Intn(2) == 0 {
		b.HashMap(name+"_m", 1+r.Intn(512), 32)
	}
	if r.Intn(2) == 0 {
		b.Counter(name+"_c", 1+r.Intn(64))
	}
	return b.MustBuild()
}

// TestResourceConservationProperty: for any random install/remove
// sequence on any architecture, (capacity - free) equals the sum of
// installed demands as the model accounts them, free components never go
// negative, and removing everything restores the initial free state.
func TestResourceConservationProperty(t *testing.T) {
	for _, arch := range []Arch{ArchRMT, ArchDRMT, ArchTile, ArchElasticPipe, ArchSoC, ArchHost} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(31))
			for trial := 0; trial < 10; trial++ {
				d := MustNew(DefaultConfig("sw", arch))
				initial := d.Free()
				installed := map[string]bool{}
				next := 0
				for step := 0; step < 60; step++ {
					if r.Intn(2) == 0 || len(installed) == 0 {
						name := fmt.Sprintf("p%d", next)
						next++
						if err := d.InstallProgram(randomProgram(r, name)); err == nil {
							installed[name] = true
						}
					} else {
						// Remove a random installed program.
						for name := range installed {
							if err := d.RemoveProgram(name); err != nil {
								t.Fatalf("remove %s: %v", name, err)
							}
							delete(installed, name)
							break
						}
					}
					f := d.Free()
					if f.SRAMBits < 0 || f.TCAMBits < 0 || f.ALUs < 0 || f.Tables < 0 || f.ParserStates < 0 {
						t.Fatalf("free went negative: %v", f)
					}
					if !f.Fits(d.Capacity()) {
						t.Fatalf("free %v exceeds capacity %v", f, d.Capacity())
					}
				}
				for name := range installed {
					if err := d.RemoveProgram(name); err != nil {
						t.Fatalf("final remove %s: %v", name, err)
					}
				}
				if d.Free() != initial {
					t.Fatalf("trial %d: resources leaked: %v != %v", trial, d.Free(), initial)
				}
			}
		})
	}
}

// TestRMTChainLengthProperty: a dependency chain of n tables places on
// an s-stage RMT iff n <= s (with one table slot per stage).
func TestRMTChainLengthProperty(t *testing.T) {
	mkChain := func(n int) *flexbpf.Program {
		b := flexbpf.NewProgram("chain").
			Action("a", 0, flexbpf.NewAsm().Ret().MustBuild())
		for i := 0; i < n; i++ {
			tn := fmt.Sprintf("t%02d", i)
			b.Table(&flexbpf.TableSpec{
				Name:    tn,
				Keys:    []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}},
				Actions: []string{"a"},
				Size:    4,
			}).Apply(tn)
		}
		return b.MustBuild()
	}
	for stages := 2; stages <= 6; stages++ {
		for n := 1; n <= 8; n++ {
			cfg := DefaultConfig("sw", ArchRMT)
			cfg.Stages = stages
			cfg.StageTables = 1
			d := MustNew(cfg)
			err := d.InstallProgram(mkChain(n))
			if n <= stages && err != nil {
				t.Fatalf("chain %d on %d stages refused: %v", n, stages, err)
			}
			if n > stages && err == nil {
				t.Fatalf("chain %d placed on %d stages", n, stages)
			}
		}
	}
}

// TestRMTCrossStageAblation: the paper's claim that runtime stage
// reconfiguration makes "all pipeline resources fungible". A fragmented
// rigid RMT refuses a program that the cross-stage variant accepts after
// repacking.
func TestRMTCrossStageAblation(t *testing.T) {
	mk := func(crossStage bool) (*Device, func(string, int) *flexbpf.Program) {
		cfg := DefaultConfig("sw", ArchRMT)
		cfg.Stages = 4
		cfg.StageTables = 4
		cfg.CrossStageRealloc = crossStage
		d := MustNew(cfg)
		single := func(name string, size int) *flexbpf.Program {
			return flexbpf.NewProgram(name).
				Action("a", 0, flexbpf.NewAsm().Ret().MustBuild()).
				Table(&flexbpf.TableSpec{
					Name:    name + "_t",
					Keys:    []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}},
					Actions: []string{"a"},
					Size:    size,
				}).
				Apply(name + "_t").
				MustBuild()
		}
		return d, single
	}
	fragment := func(d *Device, single func(string, int) *flexbpf.Program) {
		cfg := DefaultConfig("", ArchRMT)
		frag := cfg.StageSRAMBits * 40 / 100 / 64 // 64 bits per entry (32b key + overhead)
		// Greedy placement puts one 40% fragment in each stage first
		// (first-fit finds stage 0 full at 2×40%=80%? No: first-fit fills
		// stage 0 with two fragments, stage 1 with two). Install four
		// fragments then remove alternating ones to fragment layout.
		for i := 0; i < 8; i++ {
			if err := d.InstallProgram(single(fmt.Sprintf("frag%d", i), frag)); err != nil {
				t.Fatalf("setup install %d: %v", i, err)
			}
		}
		for i := 0; i < 8; i += 2 {
			if err := d.RemoveProgram(fmt.Sprintf("frag%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		// Now each stage holds one 40% fragment: 60% free per stage,
		// 240% free total, but no stage can host a 70% table.
	}
	cfg := DefaultConfig("", ArchRMT)
	bigSize := cfg.StageSRAMBits * 70 / 100 / 64

	rigid, mkR := mk(false)
	fragment(rigid, mkR)
	if err := rigid.InstallProgram(mkR("newcomer", bigSize)); err == nil {
		t.Fatal("rigid RMT placed an oversized table into fragmented stages")
	}

	flexi, mkF := mk(true)
	fragment(flexi, mkF)
	if err := flexi.InstallProgram(mkF("newcomer", bigSize)); err == nil {
		t.Fatal("expected initial failure before repack")
	}
	moves, err := flexi.Repack()
	if err != nil {
		t.Fatalf("repack: %v", err)
	}
	if moves == 0 {
		t.Fatal("repack moved nothing")
	}
	if err := flexi.InstallProgram(mkF("newcomer", bigSize)); err != nil {
		t.Fatalf("cross-stage RMT still cannot place after repack: %v", err)
	}
}
