package dataplane

import (
	"fmt"

	"flexnet/internal/flexbpf"
)

// tileModel models tiled and elastic-pipe architectures (§3.3(iii)):
// Trident4 exposes hash and index tiles in SRAM alongside TCAM tiles;
// Jericho2 extends a standard pipeline with a Programmable Elements
// Matrix (PEM). "Fungibility occurs within the same tile types and the
// PEM elements": a freed hash tile can host any future exact-match
// table, but cannot become a TCAM tile.
type tileModel struct {
	cfg Config
	// free tile counts per type.
	freeHash, freeIndex, freeTCAM    int
	totalHash, totalIndex, totalTCAM int
	// PEM elements (0 disables the constraint: pure tile device).
	freePEM, totalPEM int
	// ALU budget for per-packet compute across tiles/PEM logic.
	freeALU, totalALU     int
	parserUsed, parserCap int
	placed                map[string]*tilePlacement
}

type tilePlacement struct {
	progName               string
	hash, index, tcam, pem int
	alus                   int
	parser                 int
	total                  flexbpf.Demand
}

func (p *tilePlacement) demand() flexbpf.Demand { return p.total }

func newTileModel(cfg Config) *tileModel {
	alu := cfg.CyclesBudget
	if alu <= 0 {
		alu = 4096
	}
	return &tileModel{
		freeALU:    alu,
		totalALU:   alu,
		cfg:        cfg,
		freeHash:   cfg.HashTiles,
		freeIndex:  cfg.IndexTiles,
		freeTCAM:   cfg.TCAMTiles,
		totalHash:  cfg.HashTiles,
		totalIndex: cfg.IndexTiles,
		totalTCAM:  cfg.TCAMTiles,
		freePEM:    cfg.PEMElements,
		totalPEM:   cfg.PEMElements,
		parserCap:  64,
		placed:     map[string]*tilePlacement{},
	}
}

func tilesFor(bits, tileBits int) int {
	if bits <= 0 {
		return 0
	}
	return (bits + tileBits - 1) / tileBits
}

// tileNeeds computes per-type tile demand for a program.
func (m *tileModel) tileNeeds(prog *flexbpf.Program) (hash, index, tcam, pem int) {
	for _, t := range prog.Tables {
		d := flexbpf.TableDemand(prog, t)
		if d.TCAMBits > 0 {
			tcam += tilesFor(d.TCAMBits, m.cfg.TileBits)
		} else {
			hash += tilesFor(d.SRAMBits, m.cfg.TileBits)
		}
		pem++ // each table programs one element when a PEM exists
	}
	for _, mp := range prog.Maps {
		d := flexbpf.MapDemand(mp)
		if mp.Kind == flexbpf.MapArray {
			index += tilesFor(d.SRAMBits, m.cfg.TileBits)
		} else {
			hash += tilesFor(d.SRAMBits, m.cfg.TileBits)
		}
	}
	for _, c := range prog.Counters {
		index += tilesFor(c.Size*64, m.cfg.TileBits)
	}
	for _, mt := range prog.Meters {
		index += tilesFor(mt.Size*128, m.cfg.TileBits)
	}
	// Standalone compute also occupies a PEM element.
	for i := range prog.Pipeline {
		if prog.Pipeline[i].Do != nil {
			pem++
			break
		}
	}
	return hash, index, tcam, pem
}

func (m *tileModel) place(prog *flexbpf.Program) (placement, error) {
	hash, index, tcam, pem := m.tileNeeds(prog)
	alus := flexbpf.ProgramDemand(prog).ALUs
	parser := len(prog.RequiredHeaders)
	if alus > m.freeALU {
		return nil, fmt.Errorf("dataplane: tile: program %s needs %d ALU cycles, %d free", prog.Name, alus, m.freeALU)
	}
	if m.parserUsed+parser > m.parserCap {
		return nil, fmt.Errorf("dataplane: tile: parser budget exceeded")
	}
	if hash > m.freeHash {
		return nil, fmt.Errorf("dataplane: tile: program %s needs %d hash tiles, %d free", prog.Name, hash, m.freeHash)
	}
	if index > m.freeIndex {
		return nil, fmt.Errorf("dataplane: tile: program %s needs %d index tiles, %d free", prog.Name, index, m.freeIndex)
	}
	if tcam > m.freeTCAM {
		return nil, fmt.Errorf("dataplane: tile: program %s needs %d TCAM tiles, %d free", prog.Name, tcam, m.freeTCAM)
	}
	if m.totalPEM > 0 && pem > m.freePEM {
		return nil, fmt.Errorf("dataplane: tile: program %s needs %d PEM elements, %d free", prog.Name, pem, m.freePEM)
	}
	m.freeHash -= hash
	m.freeIndex -= index
	m.freeTCAM -= tcam
	m.freeALU -= alus
	if m.totalPEM > 0 {
		m.freePEM -= pem
	}
	m.parserUsed += parser
	pl := &tilePlacement{
		progName: prog.Name,
		hash:     hash, index: index, tcam: tcam, pem: pem,
		alus:   alus,
		parser: parser,
		total:  flexbpf.ProgramDemand(prog),
	}
	m.placed[prog.Name] = pl
	return pl, nil
}

func (m *tileModel) release(p placement) {
	pl, ok := p.(*tilePlacement)
	if !ok {
		return
	}
	if _, here := m.placed[pl.progName]; !here {
		return
	}
	m.freeHash += pl.hash
	m.freeIndex += pl.index
	m.freeTCAM += pl.tcam
	m.freeALU += pl.alus
	if m.totalPEM > 0 {
		m.freePEM += pl.pem
	}
	m.parserUsed -= pl.parser
	delete(m.placed, pl.progName)
}

func (m *tileModel) capacity() flexbpf.Demand {
	return flexbpf.Demand{
		SRAMBits:     (m.totalHash + m.totalIndex) * m.cfg.TileBits,
		TCAMBits:     m.totalTCAM * m.cfg.TileBits,
		ALUs:         m.totalALU,
		Tables:       maxInt(m.totalPEM, m.totalHash+m.totalTCAM),
		ParserStates: m.parserCap,
	}
}

func (m *tileModel) free() flexbpf.Demand {
	return flexbpf.Demand{
		SRAMBits:     (m.freeHash + m.freeIndex) * m.cfg.TileBits,
		TCAMBits:     m.freeTCAM * m.cfg.TileBits,
		ALUs:         m.freeALU,
		Tables:       maxInt(m.freePEM, m.freeHash+m.freeTCAM),
		ParserStates: m.parserCap - m.parserUsed,
	}
}

// fungibility: within-type fungibility means free tiles are claimable
// only by demands of the same type; report the type-weighted free
// fraction.
func (m *tileModel) fungibility() float64 {
	total := m.totalHash + m.totalIndex + m.totalTCAM
	if total == 0 {
		return 0
	}
	free := m.freeHash + m.freeIndex + m.freeTCAM
	return float64(free) / float64(total)
}

// repack is a no-op: tiles of one type are interchangeable, so no
// fragmentation arises at this granularity.
func (m *tileModel) repack() (int, error) { return 0, nil }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
