package dataplane

import (
	"fmt"

	"flexnet/internal/flexbpf"
)

// drmtModel models disaggregated RMT (§3.3(ii)): run-to-completion MA
// processors with memory physically separated in shared SRAM/TCAM pools.
// "Unrestricted by stage boundaries, any processor can access any table"
// — so memory and compute are globally fungible, and placement reduces
// to pool-capacity checks. This mirrors the Nvidia Spectrum architecture
// the authors' runtime-programmable switch work builds on [66].
type drmtModel struct {
	cfg        Config
	pool       flexbpf.Demand // remaining
	total      flexbpf.Demand
	parserUsed int
	parserCap  int
	placed     map[string]*poolPlacement
}

type poolPlacement struct {
	progName string
	d        flexbpf.Demand
	parser   int
}

func (p *poolPlacement) demand() flexbpf.Demand { return p.d }

func newDRMTModel(cfg Config) *drmtModel {
	total := flexbpf.Demand{
		SRAMBits: cfg.PoolSRAMBits,
		TCAMBits: cfg.PoolTCAMBits,
		ALUs:     cfg.CyclesBudget,
		// dRMT has no hard table-count limit; processors impose a
		// generous practical cap.
		Tables: cfg.Processors * 16,
	}
	return &drmtModel{
		cfg:       cfg,
		pool:      total,
		total:     total,
		parserCap: 64,
		placed:    map[string]*poolPlacement{},
	}
}

func (m *drmtModel) place(prog *flexbpf.Program) (placement, error) {
	d := flexbpf.ProgramDemand(prog)
	parser := d.ParserStates
	d.ParserStates = 0
	if m.parserUsed+parser > m.parserCap {
		return nil, fmt.Errorf("dataplane: drmt: parser budget exceeded")
	}
	if !d.Fits(m.pool) {
		return nil, fmt.Errorf("dataplane: drmt: program %s demand %v exceeds free pool %v", prog.Name, d, m.pool)
	}
	m.pool = m.pool.Sub(d)
	m.parserUsed += parser
	pl := &poolPlacement{progName: prog.Name, d: d, parser: parser}
	m.placed[prog.Name] = pl
	return pl, nil
}

func (m *drmtModel) release(p placement) {
	pl, ok := p.(*poolPlacement)
	if !ok {
		return
	}
	if _, here := m.placed[pl.progName]; !here {
		return
	}
	m.pool = m.pool.Add(pl.d)
	m.parserUsed -= pl.parser
	delete(m.placed, pl.progName)
}

func (m *drmtModel) capacity() flexbpf.Demand {
	c := m.total
	c.ParserStates = m.parserCap
	return c
}

func (m *drmtModel) free() flexbpf.Demand {
	f := m.pool
	f.ParserStates = m.parserCap - m.parserUsed
	return f
}

// fungibility: disaggregation makes all free memory immediately
// claimable.
func (m *drmtModel) fungibility() float64 {
	capBits := float64(m.total.SRAMBits + m.total.TCAMBits)
	if capBits == 0 {
		return 0
	}
	return float64(m.pool.SRAMBits+m.pool.TCAMBits) / capBits
}

// repack is a no-op: pools do not fragment.
func (m *drmtModel) repack() (int, error) { return 0, nil }
