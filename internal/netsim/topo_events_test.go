package netsim

import (
	"testing"
)

// recordEvents subscribes a recorder to nw and returns the slice pointer.
func recordEvents(nw *Network) *[]TopoEvent {
	var evs []TopoEvent
	nw.Subscribe(func(ev TopoEvent) { evs = append(evs, ev) })
	return &evs
}

// TestTopoEventStream checks that every topology mutation emits exactly
// one event, synchronously, in order, with the right kind and payload.
func TestTopoEventStream(t *testing.T) {
	nw := NewNetwork(New(1))
	evs := recordEvents(nw)

	a := nw.AddNode("a")
	b := nw.AddNode("b")
	l, _, _ := nw.Connect("a", "b", DefaultLink())
	l.SetDown(true)
	l.SetDown(false)
	nw.RemoveLink(l)

	want := []struct {
		kind TopoEventKind
		node *Node
		link *Link
	}{
		{TopoNodeAdded, a, nil},
		{TopoNodeAdded, b, nil},
		{TopoLinkAdded, nil, l},
		{TopoLinkDown, nil, l},
		{TopoLinkUp, nil, l},
		{TopoLinkRemoved, nil, l},
	}
	if len(*evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(*evs), len(want))
	}
	for i, w := range want {
		ev := (*evs)[i]
		if ev.Kind != w.kind || ev.Node != w.node || ev.Link != w.link {
			t.Fatalf("event %d = {%v %v %v}, want {%v %v %v}",
				i, ev.Kind, ev.Node, ev.Link, w.kind, w.node, w.link)
		}
	}
}

// TestSetDownIdempotent checks transition-only emission: setting a link
// to its current state produces no event, so subscribers never see
// duplicate up/down notifications.
func TestSetDownIdempotent(t *testing.T) {
	nw := NewNetwork(New(1))
	nw.AddNode("a")
	nw.AddNode("b")
	l, _, _ := nw.Connect("a", "b", DefaultLink())
	evs := recordEvents(nw)

	l.SetDown(false) // already up
	if len(*evs) != 0 {
		t.Fatalf("no-op SetDown(false) emitted %d events", len(*evs))
	}
	l.SetDown(true)
	l.SetDown(true) // already down
	if len(*evs) != 1 {
		t.Fatalf("got %d events after down+redundant down, want 1", len(*evs))
	}
	if (*evs)[0].Kind != TopoLinkDown {
		t.Fatalf("event kind = %v, want %v", (*evs)[0].Kind, TopoLinkDown)
	}
}

// TestRemoveLinkPermanent checks removal semantics: the link is marked
// Removed and Down, LinkBetween skips it, a second removal is a no-op,
// and a later SetDown on the carcass cannot resurrect traffic.
func TestRemoveLinkPermanent(t *testing.T) {
	nw := NewNetwork(New(1))
	nw.AddNode("a")
	nw.AddNode("b")
	l, _, _ := nw.Connect("a", "b", DefaultLink())
	evs := recordEvents(nw)

	nw.RemoveLink(l)
	if !l.Removed || !l.Down {
		t.Fatalf("after RemoveLink: Removed=%v Down=%v, want true/true", l.Removed, l.Down)
	}
	if got := nw.LinkBetween("a", "b"); got != nil {
		t.Fatalf("LinkBetween returned removed link %v", got)
	}
	nw.RemoveLink(l) // no-op
	nw.RemoveLink(nil)
	if len(*evs) != 1 {
		t.Fatalf("got %d events, want 1 (repeat/nil removals are silent)", len(*evs))
	}

	// A replacement link between the same nodes is found again.
	l2, _, _ := nw.Connect("a", "b", DefaultLink())
	if got := nw.LinkBetween("a", "b"); got != l2 {
		t.Fatalf("LinkBetween = %v, want replacement link", got)
	}
}

// TestLinkEnds checks the Ends accessor used by topology mirrors.
func TestLinkEnds(t *testing.T) {
	nw := NewNetwork(New(1))
	nw.AddNode("x")
	nw.AddNode("y")
	l, _, _ := nw.Connect("x", "y", DefaultLink())
	a, b := l.Ends()
	if a != "x" || b != "y" {
		t.Fatalf("Ends() = %q,%q, want x,y", a, b)
	}
}

// TestMultipleSubscribers checks delivery fan-out in subscription order.
func TestMultipleSubscribers(t *testing.T) {
	nw := NewNetwork(New(1))
	var order []int
	nw.Subscribe(func(TopoEvent) { order = append(order, 1) })
	nw.Subscribe(func(TopoEvent) { order = append(order, 2) })
	nw.AddNode("a")
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order = %v, want [1 2]", order)
	}
}
