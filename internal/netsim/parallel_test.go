package netsim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// runShardScript schedules a fixed mix of two-phase and ordinary events
// and returns the observable execution trace: compute order per shard,
// apply order, and batch boundaries. The trace must be identical for
// every worker count.
func runShardScript(t *testing.T, workers int) []string {
	t.Helper()
	s := New(1)
	s.SetWorkers(workers)
	shards := make([]int, 4)
	for i := range shards {
		shards[i] = s.NewShard()
	}
	var trace []string
	s.OnBatchEnd(func() { trace = append(trace, "batch-end") })

	at := 10 * time.Millisecond
	// Four shards, two events each, all at the same instant: computes of
	// one shard are ordered, applies are in schedule order.
	for round := 0; round < 2; round++ {
		for i, sh := range shards {
			i, round := i, round
			s.AtShard(at, sh, func(w *Worker) func() {
				// Per-worker scratch must persist across batches.
				n, _ := w.Scratch.(int)
				w.Scratch = n + 1
				return func() { trace = append(trace, fmt.Sprintf("apply-%d.%d", i, round)) }
			})
		}
	}
	// An ordinary event scheduled after the first batch's events but at
	// the same instant splits the run: it must observe all eight applies.
	s.At(at, func() { trace = append(trace, fmt.Sprintf("plain@%d", len(trace))) })
	// A second wave after the ordinary event forms its own batch.
	s.AtShard(at, shards[0], func(w *Worker) func() {
		return func() { trace = append(trace, "late") }
	})
	s.Run()
	return trace
}

func TestShardBatchOrderingIdenticalAcrossWorkerCounts(t *testing.T) {
	want := runShardScript(t, 1)
	// The first batch holds the eight two-phase events (the ordinary
	// event terminates collection), then the ordinary event runs having
	// seen every apply, then the late two-phase event batches alone.
	wantTrace := []string{
		"apply-0.0", "apply-1.0", "apply-2.0", "apply-3.0",
		"apply-0.1", "apply-1.1", "apply-2.1", "apply-3.1",
		"batch-end",
		"plain@9",
		"late", "batch-end",
	}
	if !reflect.DeepEqual(want, wantTrace) {
		t.Fatalf("serial trace = %q, want %q", want, wantTrace)
	}
	for _, workers := range []int{2, 4, 8} {
		got := runShardScript(t, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d trace = %q, want %q", workers, got, want)
		}
	}
}

func TestShardComputeSerializedWithinShard(t *testing.T) {
	s := New(1)
	s.SetWorkers(8)
	sh := s.NewShard()
	other := make([]int, 7)
	for i := range other {
		other[i] = s.NewShard()
	}
	// 100 events on one shard interleaved with noise on others: the
	// shard's computes must run in schedule order even under the pool.
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.AtShard(time.Millisecond, sh, func(w *Worker) func() {
			order = append(order, i) // shard-local state, no lock needed
			return nil
		})
		s.AtShard(time.Millisecond, other[i%len(other)], func(w *Worker) func() {
			return nil
		})
	}
	s.Run()
	if len(order) != 100 {
		t.Fatalf("ran %d computes, want 100", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("compute order[%d] = %d; shard order not preserved", i, v)
		}
	}
}

func TestAtShardValidation(t *testing.T) {
	s := New(1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("unreserved shard", func() {
		s.AtShard(0, 0, func(w *Worker) func() { return nil })
	})
	sh := s.NewShard()
	mustPanic("nil compute", func() { s.AtShard(0, sh, nil) })
	s.At(time.Millisecond, func() {
		mustPanic("past", func() {
			s.AtShard(0, sh, func(w *Worker) func() { return nil })
		})
		s.Stop()
	})
	s.Run()
}

func TestCancelledShardEventSkipped(t *testing.T) {
	s := New(1)
	sh := s.NewShard()
	ran := 0
	e := s.AtShard(time.Millisecond, sh, func(w *Worker) func() {
		ran++
		return nil
	})
	s.AtShard(time.Millisecond, sh, func(w *Worker) func() {
		ran += 10
		return nil
	})
	e.Cancel()
	s.Run()
	if ran != 10 {
		t.Fatalf("ran = %d, want 10 (cancelled compute must not fire)", ran)
	}
	if s.Processed != 1 {
		t.Fatalf("Processed = %d, want 1", s.Processed)
	}
}

func TestSetWorkersDefaults(t *testing.T) {
	s := New(1)
	if s.Workers() < 1 {
		t.Fatalf("default workers = %d, want >= 1", s.Workers())
	}
	if got := s.SetWorkers(8); got != 8 || s.Workers() != 8 {
		t.Fatalf("SetWorkers(8) = %d (Workers %d), want 8", got, s.Workers())
	}
	if got := s.SetWorkers(0); got < 1 {
		t.Fatalf("SetWorkers(0) = %d, want GOMAXPROCS >= 1", got)
	}
}
