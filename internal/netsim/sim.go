// Package netsim provides a deterministic discrete-event network simulator.
//
// The simulator is the substrate on which all FlexNet experiments run. It
// replaces the physical testbeds (programmable ASICs, SmartNICs, host
// kernels) used by the paper with a logical-time model that preserves the
// properties the paper's claims are about: event ordering, packet
// conservation, link capacity and delay, and device processing semantics.
//
// Determinism: all randomness is drawn from seeded sources owned by the
// simulation, and events with equal timestamps are ordered by a
// monotonically increasing sequence number, so a simulation with the same
// seed and inputs replays bit-for-bit.
//
// DESIGN.md §9 documents the parallel execution model and the determinism argument.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is logical simulation time. It uses time.Duration resolution
// (nanoseconds) measured from the start of the simulation.
type Time = time.Duration

// Event is a scheduled callback in the simulation. Ordinary events
// carry Fn; two-phase events (see AtShard) carry compute and a shard.
type Event struct {
	At   Time
	Fn   func()
	seq  uint64
	idx  int
	dead bool

	shard   int32
	compute Compute
}

// Cancel marks the event so it will not fire. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator instance.
//
// The zero value is not usable; create instances with New.
type Sim struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// Sharded parallel engine state (see parallel.go). workers is the
	// pool size; nextShard the shard-ID allocator; the remaining fields
	// are reusable batch buffers and the per-batch merge hook.
	workers     int
	nextShard   int
	workerSlots []*Worker
	batch       []*Event
	groups      []shardGroup
	groupOf     []int32
	applies     []func()
	onBatchEnd  func()
	shardBegin  []func(*Worker)
	shardEnd    []func(*Worker)

	// Processed counts events executed so far.
	Processed uint64
}

// New creates a simulator whose random source is seeded with seed. The
// batch worker pool defaults to GOMAXPROCS; see SetWorkers.
func New(seed int64) *Sim {
	s := &Sim{rng: rand.New(rand.NewSource(seed))}
	s.SetWorkers(0)
	return s
}

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) is an error that panics, since it indicates a causality bug
// in the caller rather than a recoverable condition.
func (s *Sim) At(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %v before now %v", at, s.now))
	}
	s.seq++
	e := &Event{At: at, Fn: fn, seq: s.seq}
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run after delay d from the current time.
func (s *Sim) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Stop halts the run loop after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// ErrNoProgress is returned by RunUntil when the event queue drains before
// the horizon is reached.
var ErrNoProgress = errors.New("netsim: event queue empty before horizon")

// Run executes events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil executes events with timestamps <= horizon. It advances the
// clock exactly to horizon on success. If the queue empties earlier, the
// clock still advances to the horizon and ErrNoProgress is returned; this
// is often benign (e.g. traffic ended) but callers who expect a live
// network can detect stalls.
func (s *Sim) RunUntil(horizon Time) error {
	s.stopped = false
	drained := false
	for !s.stopped {
		if len(s.queue) == 0 {
			drained = true
			break
		}
		if s.queue[0].At > horizon {
			break
		}
		s.step()
	}
	if s.now < horizon {
		s.now = horizon
	}
	if drained {
		return ErrNoProgress
	}
	return nil
}

// RunFor advances the simulation by d from the current time.
func (s *Sim) RunFor(d Time) error { return s.RunUntil(s.now + d) }

func (s *Sim) step() {
	e := heap.Pop(&s.queue).(*Event)
	if e.dead {
		return
	}
	if e.At < s.now {
		panic("netsim: time went backwards")
	}
	s.now = e.At
	if e.compute == nil {
		s.Processed++
		e.Fn()
		return
	}
	s.collectBatch(e)
	s.runBatch()
}

// Every schedules fn to run at the given period until the returned Ticker
// is stopped. The first invocation happens one period from now.
type Ticker struct {
	stop bool
}

// Stop prevents further ticks.
func (t *Ticker) Stop() { t.stop = true }

// Every creates a recurring event with the given period. A period <= 0
// panics: it would livelock the simulator at a single instant.
func (s *Sim) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("netsim: Every with non-positive period")
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stop {
			return
		}
		fn()
		if !t.stop {
			s.After(period, tick)
		}
	}
	s.After(period, tick)
	return t
}
