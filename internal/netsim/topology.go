package netsim

import (
	"fmt"
	"time"

	"flexnet/internal/packet"
)

// Handler receives packets arriving at a node. Implementations decide
// what to do (process through a device, consume at a host, and so on)
// and may call Node.Send to emit packets onward.
type Handler func(pkt *packet.Packet, inPort int)

// BatchHandler is the two-phase form of Handler used by nodes that
// participate in the sharded parallel engine. It runs as the compute
// phase of the arrival event — confined to the node's shard, possibly on
// a worker goroutine — and returns the apply closure (possibly nil) that
// performs the arrival's shared side effects on the event loop.
type BatchHandler func(w *Worker, pkt *packet.Packet, inPort int) (apply func())

// Node is a point in the topology: a switch, NIC, or host. Packet
// behaviour is supplied by its Handler; the topology layer only moves
// packets across links.
type Node struct {
	Name    string
	net     *Network
	ports   []*portEnd
	handler Handler
	batch   BatchHandler
	shard   int
}

// portEnd is one side of a link attachment.
type portEnd struct {
	link *Link
	side int // 0 = link.a side, 1 = link.b side
}

// SetHandler installs the node's packet handler.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// SetBatchHandler installs a two-phase packet handler and binds the node
// to the given shard (reserved via Sim.NewShard). Arrivals at this node
// become two-phase events: deliveries at the same instant batch together
// and the handler's compute phases run on the worker pool.
func (n *Node) SetBatchHandler(shard int, h BatchHandler) {
	n.shard = shard
	n.batch = h
}

// Shard returns the shard bound by SetBatchHandler (0 if none).
func (n *Node) Shard() int { return n.shard }

// Ports returns the number of connected ports.
func (n *Node) Ports() int { return len(n.ports) }

// Send transmits pkt out the given port. Sending on an unconnected port
// counts as a drop. The packet is delivered to the neighbor after
// serialization + propagation delay, subject to the link queue.
func (n *Node) Send(pkt *packet.Packet, port int) {
	if apply := n.SendPrepare(pkt, port); apply != nil {
		apply()
	}
}

// SendPrepare is the two-phase form of Send: it runs the transmit-side
// computation (queue math, ECN marking — state owned by this node's
// shard) immediately and returns an apply closure that publishes shared
// drop/delivery counters and schedules the delivery. The apply must run
// on the event loop; callers inside a shard compute return it (directly
// or wrapped) as their own apply.
func (n *Node) SendPrepare(pkt *packet.Packet, port int) func() {
	if port < 0 || port >= len(n.ports) {
		return func() { n.net.Drops++ }
	}
	return n.ports[port].sendPrepare(n.net.sim, pkt)
}

// PortToward returns the local port number connected to the named
// neighbor, or -1.
func (n *Node) PortToward(neighbor string) int {
	for i, pe := range n.ports {
		if pe.peerNode().Name == neighbor {
			return i
		}
	}
	return -1
}

// Neighbors returns the names of directly connected nodes, by port.
func (n *Node) Neighbors() []string {
	out := make([]string, len(n.ports))
	for i, pe := range n.ports {
		out[i] = pe.peerNode().Name
	}
	return out
}

func (pe *portEnd) peerNode() *Node {
	if pe.side == 0 {
		return pe.link.b
	}
	return pe.link.a
}

func (pe *portEnd) peerPort() int {
	if pe.side == 0 {
		return pe.link.bPort
	}
	return pe.link.aPort
}

func (pe *portEnd) dir() *linkDir {
	return &pe.link.dirs[pe.side]
}

// sendPrepare computes the transmit phase: queue-occupancy math and ECN
// marking touch only this direction's transmitter state and the packet
// itself, both owned by the sending node's shard. Counter publication
// and delivery scheduling are deferred to the returned apply.
func (pe *portEnd) sendPrepare(s *Sim, pkt *packet.Packet) func() {
	l := pe.link
	if l.Down {
		return func() {
			l.Drops++
			l.net.Drops++
		}
	}
	d := pe.dir()
	now := s.Now()
	if d.nextFree < now {
		d.nextFree = now
	}
	// Queueing delay is the wait until the transmitter frees up; the
	// queue bound is expressed in bytes awaiting transmission.
	queuedBytes := int(float64(d.nextFree-now) / 1e9 * float64(l.BandwidthBps) / 8.0)
	if l.QueueBytes > 0 && queuedBytes+pkt.Len() > l.QueueBytes {
		return func() {
			l.Drops++
			l.net.Drops++
		}
	}
	if l.ECNThresholdBytes > 0 && queuedBytes > l.ECNThresholdBytes && pkt.Has("ipv4") {
		pkt.SetField("ipv4.ecn", 3)
	}
	ser := Time(float64(pkt.Len()*8) / float64(l.BandwidthBps) * 1e9)
	if ser <= 0 {
		ser = 1
	}
	depart := d.nextFree + ser
	d.nextFree = depart
	arrive := depart + l.Delay
	peer := pe.peerNode()
	inPort := pe.peerPort()
	if qd := depart - now - ser; qd > d.maxQueueDelay {
		d.maxQueueDelay = qd
	}
	return func() {
		l.Delivered++
		deliver(s, l, peer, pkt, inPort, arrive)
	}
}

// deliver schedules the arrival at peer. Nodes with a batch handler
// receive two-phase events on their shard; the link-down check happens
// in the compute phase (Down only changes in ordinary events, which
// never overlap a batch) while the drop/delivery counters move to the
// apply phase.
func deliver(s *Sim, l *Link, peer *Node, pkt *packet.Packet, inPort int, arrive Time) {
	if peer.batch != nil {
		s.AtShard(arrive, peer.shard, func(w *Worker) func() {
			if l.Down {
				return func() {
					l.Drops++
					l.net.Drops++
				}
			}
			apply := peer.batch(w, pkt, inPort)
			return func() {
				l.net.Delivered++
				if apply != nil {
					apply()
				}
			}
		})
		return
	}
	s.At(arrive, func() {
		if l.Down {
			l.Drops++
			l.net.Drops++
			return
		}
		l.net.Delivered++
		if peer.handler != nil {
			peer.handler(pkt, inPort)
		}
	})
}

// Link is a bidirectional link between two nodes. Each direction has its
// own transmitter and queue.
type Link struct {
	net          *Network
	a, b         *Node
	aPort        int
	bPort        int
	BandwidthBps uint64
	Delay        Time
	// QueueBytes bounds bytes awaiting transmission per direction
	// (0 = unbounded).
	QueueBytes int
	// ECNThresholdBytes, when positive, marks packets with ECN CE
	// (ipv4.ecn = 3) whenever the transmit queue exceeds it — the
	// switch-side half of DCTCP-style congestion control.
	ECNThresholdBytes int
	// Down simulates link/device failure: all traffic is dropped.
	// Prefer SetDown, which notifies topology subscribers; writing the
	// field directly still fails traffic but defers subscriber
	// notification to the next routing refresh.
	Down bool
	// Removed marks a link administratively removed from the topology:
	// permanently down and excluded from LinkBetween lookups. Set via
	// Network.RemoveLink.
	Removed bool

	dirs [2]linkDir

	// Delivered counts packets accepted for transmission; Drops counts
	// packets lost to queue overflow or failure.
	Delivered uint64
	Drops     uint64
}

type linkDir struct {
	nextFree      Time
	maxQueueDelay Time
}

// Ends returns the connected node names.
func (l *Link) Ends() (string, string) { return l.a.Name, l.b.Name }

// SetDown fails (true) or restores (false) the link and notifies
// topology subscribers on every transition. It is the preferred way to
// change link state: subscribers (the fabric's routing engine) use the
// events to mark exactly the affected route state dirty.
func (l *Link) SetDown(down bool) {
	if l.Down == down {
		return
	}
	l.Down = down
	kind := TopoLinkUp
	if down {
		kind = TopoLinkDown
	}
	l.net.emit(TopoEvent{Kind: kind, Link: l})
}

// MaxQueueDelay returns the worst queueing delay observed per direction.
func (l *Link) MaxQueueDelay() (ab, ba Time) {
	return l.dirs[0].maxQueueDelay, l.dirs[1].maxQueueDelay
}

// LinkParams configures a link.
type LinkParams struct {
	BandwidthBps uint64
	Delay        Time
	QueueBytes   int
}

// DefaultLink is a 10 Gb/s link with 2 µs delay and a 512 KB buffer.
func DefaultLink() LinkParams {
	return LinkParams{BandwidthBps: 10_000_000_000, Delay: 2 * time.Microsecond, QueueBytes: 512 << 10}
}

// TopoEventKind classifies a topology-change event.
type TopoEventKind uint8

// Topology-change event kinds. Node removal has no substrate support
// (ports are positional), so a device leaving service is modelled by
// removing or downing its links.
const (
	// TopoNodeAdded: a node joined the topology (Event.Node).
	TopoNodeAdded TopoEventKind = iota
	// TopoLinkAdded: a link was connected (Event.Link).
	TopoLinkAdded
	// TopoLinkUp: a down link was restored.
	TopoLinkUp
	// TopoLinkDown: a link failed.
	TopoLinkDown
	// TopoLinkRemoved: a link was administratively removed (permanent).
	TopoLinkRemoved
)

func (k TopoEventKind) String() string {
	switch k {
	case TopoNodeAdded:
		return "node-added"
	case TopoLinkAdded:
		return "link-added"
	case TopoLinkUp:
		return "link-up"
	case TopoLinkDown:
		return "link-down"
	case TopoLinkRemoved:
		return "link-removed"
	default:
		return fmt.Sprintf("topo-event(%d)", uint8(k))
	}
}

// TopoEvent is one topology change, delivered synchronously to
// subscribers at the point of mutation (AddNode, Connect, SetDown,
// RemoveLink). Node is set for node events, Link for link events.
type TopoEvent struct {
	Kind TopoEventKind
	Node *Node
	Link *Link
}

// Network is a topology of nodes and links bound to a simulator.
type Network struct {
	sim   *Sim
	nodes map[string]*Node
	links []*Link
	subs  []func(TopoEvent)

	// Delivered and Drops aggregate across all links.
	Delivered uint64
	Drops     uint64
}

// Subscribe registers fn to receive every subsequent topology-change
// event. Delivery is synchronous and in subscription order; fn must not
// mutate the topology.
func (nw *Network) Subscribe(fn func(TopoEvent)) {
	nw.subs = append(nw.subs, fn)
}

func (nw *Network) emit(ev TopoEvent) {
	for _, fn := range nw.subs {
		fn(ev)
	}
}

// NewNetwork creates an empty topology on sim.
func NewNetwork(sim *Sim) *Network {
	return &Network{sim: sim, nodes: map[string]*Node{}}
}

// Sim returns the bound simulator.
func (nw *Network) Sim() *Sim { return nw.sim }

// AddNode creates a node. Duplicate names panic (topology bugs are
// programming errors).
func (nw *Network) AddNode(name string) *Node {
	if _, dup := nw.nodes[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	n := &Node{Name: name, net: nw}
	nw.nodes[name] = n
	nw.emit(TopoEvent{Kind: TopoNodeAdded, Node: n})
	return n
}

// Node returns the named node, or nil.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Nodes returns the number of nodes.
func (nw *Network) Nodes() int { return len(nw.nodes) }

// Connect links two nodes, allocating the next free port on each, and
// returns the link and the two port numbers.
func (nw *Network) Connect(a, b string, p LinkParams) (*Link, int, int) {
	na, nb := nw.nodes[a], nw.nodes[b]
	if na == nil || nb == nil {
		panic(fmt.Sprintf("netsim: connect %q-%q: unknown node", a, b))
	}
	l := &Link{
		net: nw, a: na, b: nb,
		BandwidthBps: p.BandwidthBps,
		Delay:        p.Delay,
		QueueBytes:   p.QueueBytes,
	}
	l.aPort = len(na.ports)
	l.bPort = len(nb.ports)
	na.ports = append(na.ports, &portEnd{link: l, side: 0})
	nb.ports = append(nb.ports, &portEnd{link: l, side: 1})
	nw.links = append(nw.links, l)
	nw.emit(TopoEvent{Kind: TopoLinkAdded, Link: l})
	return l, l.aPort, l.bPort
}

// RemoveLink administratively removes a link: it is marked down and
// removed, excluded from LinkBetween, and subscribers are notified with
// TopoLinkRemoved. The link object stays in place (ports are positional)
// but never carries traffic again. Removing an already-removed link is a
// no-op.
func (nw *Network) RemoveLink(l *Link) {
	if l == nil || l.Removed {
		return
	}
	l.Removed = true
	l.Down = true
	nw.emit(TopoEvent{Kind: TopoLinkRemoved, Link: l})
}

// Links returns all links.
func (nw *Network) Links() []*Link { return nw.links }

// LinkBetween returns the first non-removed link between two nodes, or
// nil.
func (nw *Network) LinkBetween(a, b string) *Link {
	for _, l := range nw.links {
		if l.Removed {
			continue
		}
		x, y := l.Ends()
		if (x == a && y == b) || (x == b && y == a) {
			return l
		}
	}
	return nil
}

// ShortestPaths computes next-hop routing from every node to dst using
// BFS over up links (unit weight). The result maps node name → egress
// port toward dst.
func (nw *Network) ShortestPaths(dst string) map[string]int {
	if nw.nodes[dst] == nil {
		return nil
	}
	next := map[string]int{}
	visited := map[string]bool{dst: true}
	queue := []string{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, pe := range nw.nodes[cur].ports {
			if pe.link.Down {
				continue
			}
			nb := pe.peerNode()
			if visited[nb.Name] {
				continue
			}
			visited[nb.Name] = true
			// The neighbor reaches dst via its port back to cur.
			next[nb.Name] = pe.peerPort()
			queue = append(queue, nb.Name)
		}
	}
	return next
}
