package netsim

import (
	"container/heap"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file implements the sharded parallel execution engine: between
// discrete-event barriers of the simulated clock, batches of two-phase
// ("compute"/"apply") events run on a worker pool, one serialization
// domain ("shard") per device.
//
// Determinism contract. Event execution is split so that parallelism is
// invisible to the simulation:
//
//   - The compute phase of an event may read and write only state owned
//     by its shard (plus state that is immutable for the duration of the
//     batch). It must not touch the event queue, shared counters, or
//     another shard's state. Computes of the same shard run sequentially
//     in schedule (seq) order; computes of different shards may run
//     concurrently on the worker pool.
//   - The apply phase runs on the event loop, after every compute of the
//     batch has finished, in schedule (seq) order. All event scheduling
//     and all mutation of shared state happens here.
//
// A batch is the maximal run of *consecutive* two-phase events at the
// head of the queue with the same timestamp. An interleaved ordinary
// event (by seq) terminates the batch, so ordinary events never observe
// a half-applied batch and the total order of side effects is exactly
// the order a fully serial simulator would produce. Batch composition
// depends only on the queue contents — never on the worker count — and
// every worker count executes the same phases in the same order, so a
// simulation's outputs are byte-identical for any SetWorkers value.

// Worker is one execution slot of the barrier worker pool. Computes
// running on the same Worker never overlap, so shard computes may use
// Scratch as reusable per-worker state (the fabric stores a per-worker
// FlexBPF ExecContext here). Worker slots persist for the lifetime of
// the Sim.
type Worker struct {
	// ID is the slot index in [0, Workers()).
	ID int
	// Scratch is arbitrary per-worker state, lazily created by the
	// embedding layer.
	Scratch any
}

// Compute is the first phase of a two-phase event. It runs with the
// clock frozen at the event's timestamp, possibly on a worker goroutine,
// and must confine itself to its shard's state. The returned apply
// closure (which may be nil) runs later on the event loop and performs
// the event's shared side effects: scheduling, counter updates,
// deliveries.
type Compute func(w *Worker) (apply func())

// minParallelBatch is the smallest batch worth fanning out to worker
// goroutines; smaller batches run inline on the event loop. The
// threshold depends only on batch size, which is deterministic, so it
// never affects simulation output.
const minParallelBatch = 4

// batchItem is one event of a batch plus its position, which fixes the
// order applies run in.
type batchItem struct {
	e   *Event
	pos int32
}

// shardGroup is the ordered list of a single shard's events within one
// batch. Groups are the unit of work claimed by workers.
type shardGroup struct {
	shard int
	items []batchItem
}

// NewShard reserves a new shard identifier. A shard is a serialization
// domain for two-phase events: computes of the same shard never run
// concurrently.
func (s *Sim) NewShard() int {
	id := s.nextShard
	s.nextShard++
	return id
}

// Shards returns the number of reserved shards.
func (s *Sim) Shards() int { return s.nextShard }

// SetWorkers sets the size of the worker pool used for batch computes.
// n <= 0 selects runtime.GOMAXPROCS(0). Returns the effective count.
// The worker count never changes simulation output, only wall-clock
// speed.
func (s *Sim) SetWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.workers = n
	return n
}

// Workers returns the current worker pool size.
func (s *Sim) Workers() int { return s.workers }

// OnBatchEnd registers fn to run on the event loop after each batch's
// apply phase. The fabric uses it to merge shard-local telemetry buffers
// in fixed device order.
func (s *Sim) OnBatchEnd(fn func()) { s.onBatchEnd = fn }

// SetShardHooks registers begin/end callbacks invoked around each
// contiguous run of the shard's computes within a batch (its shard
// group). begin runs before the group's first compute and end after its
// last, on the same worker goroutine as the computes themselves, so the
// hooks obey the same shard-confinement rules as a Compute. Devices use
// the pair to amortize per-packet fixed costs (config snapshot loads,
// telemetry flushes) across a whole batch. Either hook may be nil.
//
// Group composition depends only on queue contents — never on the
// worker count — so hook placement is deterministic and identical for
// every SetWorkers value.
func (s *Sim) SetShardHooks(shard int, begin, end func(*Worker)) {
	if shard < 0 || shard >= s.nextShard {
		panic(fmt.Sprintf("netsim: SetShardHooks on unreserved shard %d (have %d)", shard, s.nextShard))
	}
	for len(s.shardBegin) < s.nextShard {
		s.shardBegin = append(s.shardBegin, nil)
		s.shardEnd = append(s.shardEnd, nil)
	}
	s.shardBegin[shard] = begin
	s.shardEnd[shard] = end
}

// AtShard schedules a two-phase event at absolute time at on the given
// shard. Like At, scheduling in the past panics. The compute phase runs
// when the clock reaches at, serialized with all other events of the
// same shard; see the package comment on Compute for the phase rules.
func (s *Sim) AtShard(at Time, shard int, compute Compute) *Event {
	if compute == nil {
		panic("netsim: AtShard with nil compute")
	}
	if shard < 0 || shard >= s.nextShard {
		panic(fmt.Sprintf("netsim: AtShard on unreserved shard %d (have %d)", shard, s.nextShard))
	}
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %v before now %v", at, s.now))
	}
	s.seq++
	e := &Event{At: at, seq: s.seq, shard: int32(shard), compute: compute}
	heap.Push(&s.queue, e)
	return e
}

// collectBatch pops the maximal run of consecutive live two-phase events
// sharing first's timestamp into s.batch. Dead events encountered at the
// same timestamp are discarded (exactly as the serial loop would).
func (s *Sim) collectBatch(first *Event) {
	s.batch = append(s.batch[:0], first)
	for len(s.queue) > 0 {
		h := s.queue[0]
		if h.At != first.At || (!h.dead && h.compute == nil) {
			break
		}
		heap.Pop(&s.queue)
		if !h.dead {
			s.batch = append(s.batch, h)
		}
	}
}

// runBatch executes s.batch: computes grouped by shard (parallel across
// shards when profitable), then applies in schedule order, then the
// batch-end hook.
func (s *Sim) runBatch() {
	batch := s.batch
	s.Processed += uint64(len(batch))

	if cap(s.applies) < len(batch) {
		s.applies = make([]func(), len(batch))
	}
	applies := s.applies[:len(batch)]

	// Group events by shard in first-appearance order, preserving
	// within-shard schedule order. groupOf maps shard → group index+1
	// for the duration of the batch; buffers are reused across batches.
	groups := s.groups[:0]
	for i, e := range batch {
		sh := int(e.shard)
		for sh >= len(s.groupOf) {
			s.groupOf = append(s.groupOf, 0)
		}
		gi := s.groupOf[sh]
		if gi == 0 {
			if len(groups) < cap(groups) {
				groups = groups[:len(groups)+1]
				groups[len(groups)-1].shard = sh
				groups[len(groups)-1].items = groups[len(groups)-1].items[:0]
			} else {
				groups = append(groups, shardGroup{shard: sh})
			}
			gi = int32(len(groups))
			s.groupOf[sh] = gi
		}
		g := &groups[gi-1]
		g.items = append(g.items, batchItem{e: e, pos: int32(i)})
	}
	s.groups = groups

	if s.workers > 1 && len(groups) > 1 && len(batch) >= minParallelBatch {
		s.runGroupsParallel(groups, applies)
	} else {
		w := s.workerSlot(0)
		for gi := range groups {
			s.runGroup(w, &groups[gi], applies)
		}
	}

	for gi := range groups {
		s.groupOf[groups[gi].shard] = 0
	}

	// Apply phase: schedule order, on the event loop.
	for i, apply := range applies {
		applies[i] = nil
		if apply != nil {
			apply()
		}
	}
	if s.onBatchEnd != nil {
		s.onBatchEnd()
	}
}

func (s *Sim) runGroup(w *Worker, g *shardGroup, applies []func()) {
	// Hook slices are only mutated between batches (SetShardHooks runs on
	// the event loop), so reading them from worker goroutines is safe.
	if g.shard < len(s.shardBegin) && s.shardBegin[g.shard] != nil {
		s.shardBegin[g.shard](w)
	}
	for _, it := range g.items {
		applies[it.pos] = it.e.compute(w)
	}
	if g.shard < len(s.shardEnd) && s.shardEnd[g.shard] != nil {
		s.shardEnd[g.shard](w)
	}
}

// workerSlot returns the i-th persistent worker slot, creating slots on
// demand so Scratch survives across batches.
func (s *Sim) workerSlot(i int) *Worker {
	for len(s.workerSlots) <= i {
		s.workerSlots = append(s.workerSlots, &Worker{ID: len(s.workerSlots)})
	}
	return s.workerSlots[i]
}

type workerPanic struct {
	val   any
	stack []byte
}

// runGroupsParallel fans shard groups out to min(workers, len(groups))
// goroutines. Goroutines are spawned per batch rather than kept in a
// persistent pool: simulations are created in large numbers by tests and
// experiments, and a pool would leak goroutines per Sim; the spawn cost
// is amortized by the minParallelBatch threshold.
func (s *Sim) runGroupsParallel(groups []shardGroup, applies []func()) {
	nw := s.workers
	if nw > len(groups) {
		nw = len(groups)
	}
	panics := make([]*workerPanic, nw)
	var next atomic.Int32
	var wg sync.WaitGroup
	run := func(w *Worker, slot int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panics[slot] = &workerPanic{val: r, stack: debug.Stack()}
			}
		}()
		for {
			gi := int(next.Add(1)) - 1
			if gi >= len(groups) {
				return
			}
			s.runGroup(w, &groups[gi], applies)
		}
	}
	wg.Add(nw)
	for i := 1; i < nw; i++ {
		go run(s.workerSlot(i), i)
	}
	run(s.workerSlot(0), 0)
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("netsim: panic in sharded compute: %v\n%s", p.val, p.stack))
		}
	}
}
