package netsim

import (
	"testing"
	"time"

	"flexnet/internal/packet"
)

func line(t *testing.T, p LinkParams) (*Network, *Node, *Node) {
	t.Helper()
	s := New(1)
	nw := NewNetwork(s)
	a := nw.AddNode("a")
	b := nw.AddNode("b")
	nw.Connect("a", "b", p)
	return nw, a, b
}

func TestLinkDelivery(t *testing.T) {
	nw, a, b := line(t, LinkParams{BandwidthBps: 8_000_000_000, Delay: time.Microsecond})
	var got *packet.Packet
	var at Time
	b.SetHandler(func(p *packet.Packet, inPort int) {
		got = p
		at = nw.Sim().Now()
		if inPort != 0 {
			t.Errorf("inPort = %d", inPort)
		}
	})
	pkt := packet.UDPPacket(1, 1, 2, 3, 4, 1000-14-20-8) // 1000B total
	a.Send(pkt, 0)
	nw.Sim().Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	// 1000 B at 8 Gb/s = 1 µs serialization + 1 µs propagation.
	if at != 2*time.Microsecond {
		t.Fatalf("arrival at %v, want 2µs", at)
	}
}

func TestLinkSerializationQueueing(t *testing.T) {
	nw, a, b := line(t, LinkParams{BandwidthBps: 8_000_000, Delay: 0})
	var arrivals []Time
	b.SetHandler(func(p *packet.Packet, inPort int) {
		arrivals = append(arrivals, nw.Sim().Now())
	})
	// Three 1000-byte packets sent back-to-back: 1 ms serialization each.
	for i := 0; i < 3; i++ {
		a.Send(packet.UDPPacket(uint64(i), 1, 2, 3, 4, 958), 0)
	}
	nw.Sim().Run()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	for i, want := range []Time{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		if arrivals[i] != want {
			t.Fatalf("arrival[%d] = %v, want %v", i, arrivals[i], want)
		}
	}
}

func TestLinkQueueOverflow(t *testing.T) {
	nw, a, b := line(t, LinkParams{BandwidthBps: 8_000_000, Delay: 0, QueueBytes: 2000})
	delivered := 0
	b.SetHandler(func(p *packet.Packet, inPort int) { delivered++ })
	for i := 0; i < 10; i++ {
		a.Send(packet.UDPPacket(uint64(i), 1, 2, 3, 4, 958), 0)
	}
	nw.Sim().Run()
	l := nw.LinkBetween("a", "b")
	if l.Drops == 0 {
		t.Fatal("no drops with tiny buffer")
	}
	if uint64(delivered)+l.Drops != 10 {
		t.Fatalf("conservation broken: %d + %d != 10", delivered, l.Drops)
	}
}

func TestLinkDown(t *testing.T) {
	nw, a, b := line(t, DefaultLink())
	delivered := 0
	b.SetHandler(func(p *packet.Packet, inPort int) { delivered++ })
	l := nw.LinkBetween("a", "b")
	l.Down = true
	a.Send(packet.UDPPacket(1, 1, 2, 3, 4, 100), 0)
	nw.Sim().Run()
	if delivered != 0 || l.Drops != 1 {
		t.Fatalf("down link delivered=%d drops=%d", delivered, l.Drops)
	}
}

func TestSendInvalidPort(t *testing.T) {
	nw, a, _ := line(t, DefaultLink())
	a.Send(packet.UDPPacket(1, 1, 2, 3, 4, 100), 5)
	if nw.Drops != 1 {
		t.Fatalf("network drops = %d", nw.Drops)
	}
}

func TestBidirectional(t *testing.T) {
	nw, a, b := line(t, DefaultLink())
	gotA, gotB := 0, 0
	a.SetHandler(func(p *packet.Packet, inPort int) { gotA++ })
	b.SetHandler(func(p *packet.Packet, inPort int) { gotB++ })
	a.Send(packet.UDPPacket(1, 1, 2, 3, 4, 10), 0)
	b.Send(packet.UDPPacket(2, 2, 1, 4, 3, 10), 0)
	nw.Sim().Run()
	if gotA != 1 || gotB != 1 {
		t.Fatalf("gotA=%d gotB=%d", gotA, gotB)
	}
}

func TestShortestPaths(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s)
	// h1 - s1 - s2 - h2, plus a detour s1 - s3 - s2.
	for _, n := range []string{"h1", "s1", "s2", "s3", "h2"} {
		nw.AddNode(n)
	}
	nw.Connect("h1", "s1", DefaultLink())
	nw.Connect("s1", "s2", DefaultLink())
	nw.Connect("s1", "s3", DefaultLink())
	nw.Connect("s3", "s2", DefaultLink())
	nw.Connect("s2", "h2", DefaultLink())

	next := nw.ShortestPaths("h2")
	if len(next) != 4 {
		t.Fatalf("routes = %v", next)
	}
	// h1's next hop is via its only port (0) toward s1.
	if next["h1"] != 0 {
		t.Fatalf("h1 next = %d", next["h1"])
	}
	// s1 should go directly to s2 (port index 1: h1=0, s2=1, s3=2).
	if next["s1"] != 1 {
		t.Fatalf("s1 next = %d", next["s1"])
	}

	// Break s1-s2; route must detour via s3.
	nw.LinkBetween("s1", "s2").Down = true
	next = nw.ShortestPaths("h2")
	if next["s1"] != 2 {
		t.Fatalf("after failure s1 next = %d, want detour port 2", next["s1"])
	}
}

func TestEndToEndRouting(t *testing.T) {
	// Packets actually flow h1→s1→s2→h2 using ShortestPaths handlers.
	s := New(1)
	nw := NewNetwork(s)
	for _, n := range []string{"h1", "s1", "s2", "h2"} {
		nw.AddNode(n)
	}
	nw.Connect("h1", "s1", DefaultLink())
	nw.Connect("s1", "s2", DefaultLink())
	nw.Connect("s2", "h2", DefaultLink())
	routes := nw.ShortestPaths("h2")
	for _, sw := range []string{"s1", "s2"} {
		sw := sw
		nw.Node(sw).SetHandler(func(p *packet.Packet, inPort int) {
			p.Trace = append(p.Trace, sw)
			nw.Node(sw).Send(p, routes[sw])
		})
	}
	var got *packet.Packet
	nw.Node("h2").SetHandler(func(p *packet.Packet, inPort int) { got = p })
	pkt := packet.UDPPacket(1, 1, 2, 3, 4, 100)
	nw.Node("h1").Send(pkt, routes["h1"])
	s.Run()
	if got == nil {
		t.Fatal("packet lost")
	}
	if len(got.Trace) != 2 || got.Trace[0] != "s1" || got.Trace[1] != "s2" {
		t.Fatalf("trace = %v", got.Trace)
	}
}

func TestSourceCBR(t *testing.T) {
	s := New(1)
	var seq uint64
	count := 0
	src := NewSource(s, FlowSpec{Proto: packet.ProtoUDP, PacketLen: 100}, &seq, func(p *packet.Packet) { count++ })
	src.StartCBR(1000) // 1000 pps for 100 ms = 100 packets
	s.RunUntil(100 * time.Millisecond)
	if count < 99 || count > 101 {
		t.Fatalf("CBR emitted %d, want ~100", count)
	}
	src.Stop()
	s.RunFor(50 * time.Millisecond)
	if int(src.Sent) != count {
		t.Fatalf("sent after stop: %d vs %d", src.Sent, count)
	}
}

func TestSourcePoissonRate(t *testing.T) {
	s := New(7)
	var seq uint64
	count := 0
	src := NewSource(s, FlowSpec{Proto: packet.ProtoUDP}, &seq, func(p *packet.Packet) { count++ })
	src.StartPoisson(10000)
	s.RunUntil(time.Second)
	if count < 9000 || count > 11000 {
		t.Fatalf("poisson emitted %d, want ~10000", count)
	}
}

func TestSourceVLANTagging(t *testing.T) {
	s := New(1)
	var seq uint64
	var got *packet.Packet
	src := NewSource(s, FlowSpec{Proto: packet.ProtoTCP, VLAN: 42, PacketLen: 10}, &seq, func(p *packet.Packet) { got = p })
	src.EmitOne(0)
	if got == nil || !got.Has("vlan") || got.Field("vlan.vid") != 42 {
		t.Fatalf("vlan tagging broken: %v", got)
	}
	if got.Headers[0] != "eth" || got.Headers[1] != "vlan" || got.Headers[2] != "ipv4" {
		t.Fatalf("header order: %v", got.Headers)
	}
}

func TestSineRateEnvelope(t *testing.T) {
	s := New(3)
	var seq uint64
	count := 0
	src := NewSource(s, FlowSpec{Proto: packet.ProtoTCP}, &seq, func(p *packet.Packet) { count++ })
	w := NewSineRate(src, 0, 10000, time.Second, 10*time.Millisecond)
	// Rate at phase 0 is min; at half period it is max.
	if r := w.RateAt(0); r != 0 {
		t.Fatalf("rate at 0 = %f", r)
	}
	if r := w.RateAt(500 * time.Millisecond); r < 9999 {
		t.Fatalf("rate at half period = %f", r)
	}
	w.Start()
	s.RunUntil(time.Second)
	// Mean of sine between 0 and max is max/2 → ~5000 packets in 1 s.
	if count < 4000 || count > 6000 {
		t.Fatalf("sine source emitted %d, want ~5000", count)
	}
	w.Stop()
	before := count
	s.RunFor(100 * time.Millisecond)
	if count != before {
		t.Fatal("sine source kept emitting after stop")
	}
}

func TestLatencySink(t *testing.T) {
	s := New(1)
	k := NewLatencySink(s)
	mk := func(sentAt uint64) *packet.Packet {
		p := packet.UDPPacket(1, 1, 2, 3, 4, 86)
		p.Meta["sent_at"] = sentAt
		return p
	}
	s.At(100*time.Microsecond, func() {
		for i := 0; i < 100; i++ {
			k.Consume(mk(uint64(i) * 1000)) // latencies 100000-i*1000
		}
	})
	s.Run()
	if k.Received != 100 {
		t.Fatalf("received = %d", k.Received)
	}
	if k.Percentile(0) >= k.Percentile(1) {
		t.Fatal("percentiles not ordered")
	}
	if k.Mean() == 0 {
		t.Fatal("mean = 0")
	}
	if k.Bytes != 100*128 {
		t.Fatalf("bytes = %d", k.Bytes)
	}
}

func TestTimeSeriesSample(t *testing.T) {
	s := New(1)
	ts := &TimeSeries{Name: "x"}
	v := 0.0
	Sample(s, ts, 10*time.Millisecond, func() float64 { v++; return v })
	s.RunUntil(100 * time.Millisecond)
	if len(ts.Values) != 10 {
		t.Fatalf("samples = %d", len(ts.Values))
	}
	if ts.Max() != 10 || ts.Mean() != 5.5 {
		t.Fatalf("max=%f mean=%f", ts.Max(), ts.Mean())
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate node did not panic")
		}
	}()
	nw := NewNetwork(New(1))
	nw.AddNode("x")
	nw.AddNode("x")
}

func TestPortTowardAndNeighbors(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s)
	nw.AddNode("a")
	nw.AddNode("b")
	nw.AddNode("c")
	nw.Connect("a", "b", DefaultLink())
	nw.Connect("a", "c", DefaultLink())
	a := nw.Node("a")
	if a.PortToward("c") != 1 || a.PortToward("b") != 0 || a.PortToward("zz") != -1 {
		t.Fatalf("PortToward broken: %v", a.Neighbors())
	}
	nb := a.Neighbors()
	if len(nb) != 2 || nb[0] != "b" || nb[1] != "c" {
		t.Fatalf("neighbors = %v", nb)
	}
}
