package netsim

import (
	"math"

	"flexnet/internal/packet"
)

// FlowSpec describes a synthetic flow for workload generation.
type FlowSpec struct {
	Src, Dst         uint32
	SrcPort, DstPort uint16
	Proto            uint64 // packet.ProtoTCP or ProtoUDP
	// PacketLen is the payload bytes per packet.
	PacketLen int
	// VLAN, when nonzero, tags the flow's packets.
	VLAN uint64
}

// Source generates packets of one flow at a node with configurable
// timing, injecting them via a send function (typically wrapping the
// node's device ingress).
type Source struct {
	sim  *Sim
	spec FlowSpec
	emit func(*packet.Packet)
	seq  *uint64

	// Sent counts emitted packets.
	Sent    uint64
	ticker  *Ticker
	stopped bool
}

// NewSource creates a traffic source. seq supplies unique packet IDs
// shared across sources.
func NewSource(sim *Sim, spec FlowSpec, seq *uint64, emit func(*packet.Packet)) *Source {
	return &Source{sim: sim, spec: spec, emit: emit, seq: seq}
}

func (s *Source) buildPacket(flags uint64) *packet.Packet {
	*s.seq++
	id := *s.seq
	var p *packet.Packet
	if s.spec.Proto == packet.ProtoUDP {
		p = packet.UDPPacket(id, s.spec.Src, s.spec.Dst, s.spec.SrcPort, s.spec.DstPort, s.spec.PacketLen)
	} else {
		p = packet.TCPPacket(id, s.spec.Src, s.spec.Dst, s.spec.SrcPort, s.spec.DstPort, flags, s.spec.PacketLen)
	}
	if s.spec.VLAN != 0 {
		// Insert the VLAN tag between eth and ipv4.
		p.SetField("eth.type", packet.EtherTypeVLAN)
		hdrs := []string{"eth", "vlan"}
		for _, h := range p.Headers {
			if h != "eth" {
				hdrs = append(hdrs, h)
			}
		}
		p.Headers = hdrs
		p.SetField("vlan.vid", s.spec.VLAN)
		p.SetField("vlan.type", packet.EtherTypeIPv4)
	}
	p.Meta["sent_at"] = uint64(s.sim.Now())
	return p
}

// EmitOne sends a single packet immediately with the given TCP flags.
func (s *Source) EmitOne(flags uint64) *packet.Packet {
	p := s.buildPacket(flags)
	s.Sent++
	s.emit(p)
	return p
}

// StartCBR emits packets at a constant rate (packets/sec) until Stop.
func (s *Source) StartCBR(pps float64) {
	if pps <= 0 {
		return
	}
	period := Time(1e9 / pps)
	if period <= 0 {
		period = 1
	}
	s.ticker = s.sim.Every(period, func() {
		s.Sent++
		s.emit(s.buildPacket(0))
	})
}

// StartPoisson emits packets with exponential inter-arrival times at the
// given mean rate until Stop.
func (s *Source) StartPoisson(pps float64) {
	if pps <= 0 {
		return
	}
	var next func()
	next = func() {
		if s.stopped {
			return
		}
		s.Sent++
		s.emit(s.buildPacket(0))
		gap := Time(s.sim.Rand().ExpFloat64() / pps * 1e9)
		if gap <= 0 {
			gap = 1
		}
		s.sim.After(gap, next)
	}
	gap := Time(s.sim.Rand().ExpFloat64() / pps * 1e9)
	s.sim.After(gap, next)
}

// Stop halts the source.
func (s *Source) Stop() {
	s.stopped = true
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

// SineRateSource modulates packet rate sinusoidally between min and max
// pps with the given period — the attack-intensity waveform used by the
// elastic security experiment.
type SineRateSource struct {
	src            *Source
	sim            *Sim
	minPPS, maxPPS float64
	period         Time
	tick           Time
	stopped        bool
}

// NewSineRate wraps a source with a sinusoidal rate envelope. tick is
// how often the rate is re-evaluated.
func NewSineRate(src *Source, minPPS, maxPPS float64, period, tick Time) *SineRateSource {
	return &SineRateSource{src: src, sim: src.sim, minPPS: minPPS, maxPPS: maxPPS, period: period, tick: tick}
}

// RateAt returns the target rate at time t.
func (w *SineRateSource) RateAt(t Time) float64 {
	phase := 2 * math.Pi * float64(t%w.period) / float64(w.period)
	return w.minPPS + (w.maxPPS-w.minPPS)*(0.5-0.5*math.Cos(phase))
}

// Start begins emission.
func (w *SineRateSource) Start() {
	var loop func()
	loop = func() {
		if w.stopped {
			return
		}
		rate := w.RateAt(w.sim.Now())
		// Emit a burst matching rate×tick, spread uniformly.
		n := int(rate * float64(w.tick) / 1e9)
		for i := 0; i < n; i++ {
			off := Time(float64(w.tick) * float64(i) / float64(n+1))
			w.sim.After(off, func() {
				if !w.stopped {
					w.src.Sent++
					w.src.emit(w.src.buildPacket(packet.TCPSyn))
				}
			})
		}
		w.sim.After(w.tick, loop)
	}
	w.sim.After(0, loop)
}

// Stop halts emission.
func (w *SineRateSource) Stop() { w.stopped = true }

// LatencySink consumes packets and accumulates delivery statistics.
type LatencySink struct {
	sim *Sim
	// Received counts packets; bytes too.
	Received uint64
	Bytes    uint64
	// latencies in nanoseconds for percentile computation.
	lats []uint64
}

// NewLatencySink creates a sink bound to sim.
func NewLatencySink(sim *Sim) *LatencySink { return &LatencySink{sim: sim} }

// Consume records one delivered packet (uses Meta["sent_at"]).
func (k *LatencySink) Consume(p *packet.Packet) {
	k.Received++
	k.Bytes += uint64(p.Len())
	if sent, ok := p.Meta["sent_at"]; ok {
		k.lats = append(k.lats, uint64(k.sim.Now())-sent)
	}
}

// Percentile returns the q-quantile (0..1) of observed latencies in ns.
func (k *LatencySink) Percentile(q float64) uint64 {
	if len(k.lats) == 0 {
		return 0
	}
	s := append([]uint64(nil), k.lats...)
	insertionSortU64(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// Mean returns the mean latency in ns.
func (k *LatencySink) Mean() uint64 {
	if len(k.lats) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range k.lats {
		sum += v
	}
	return sum / uint64(len(k.lats))
}

func insertionSortU64(s []uint64) {
	// Latency arrays can be large; use a simple shell sort for
	// dependency-free n log n-ish behaviour.
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, g := range gaps {
		for i := g; i < len(s); i++ {
			v := s[i]
			j := i
			for ; j >= g && s[j-g] > v; j -= g {
				s[j] = s[j-g]
			}
			s[j] = v
		}
	}
}

// TimeSeries accumulates (time, value) samples for experiment output.
type TimeSeries struct {
	Name   string
	Times  []Time
	Values []float64
}

// Add appends a sample.
func (ts *TimeSeries) Add(t Time, v float64) {
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Max returns the maximum value (0 for empty series).
func (ts *TimeSeries) Max() float64 {
	m := 0.0
	for _, v := range ts.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the mean value (0 for empty series).
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range ts.Values {
		s += v
	}
	return s / float64(len(ts.Values))
}

// Sample periodically records fn's value into a TimeSeries until the
// simulation ends.
func Sample(sim *Sim, ts *TimeSeries, every Time, fn func() float64) *Ticker {
	return sim.Every(every, func() {
		ts.Add(sim.Now(), fn())
	})
}
