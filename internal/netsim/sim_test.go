package netsim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO at %d: got %d", i, v)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New(1)
	var at Time
	s.After(5*time.Millisecond, func() {
		s.After(7*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 12*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 12ms", at)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	e := s.At(time.Millisecond, func() { ran = true })
	e.Cancel()
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(10*time.Millisecond, func() { count++ })
	if err := s.RunUntil(105 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if s.Now() != 105*time.Millisecond {
		t.Fatalf("clock = %v, want 105ms", s.Now())
	}
}

func TestRunUntilDrained(t *testing.T) {
	s := New(1)
	s.At(time.Millisecond, func() {})
	err := s.RunUntil(time.Second)
	if err != ErrNoProgress {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock should advance to horizon, got %v", s.Now())
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = s.Every(time.Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 3 {
		t.Fatalf("ticker ran %d times after Stop at 3", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*time.Millisecond, func() {})
	})
	s.Run()
}

func TestEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var samples []int64
		s.Every(time.Millisecond, func() {
			samples = append(samples, s.Rand().Int63n(1000))
		})
		s.RunUntil(20 * time.Millisecond)
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(time.Millisecond, func() {
		count++
		if count == 5 {
			s.Stop()
		}
	})
	s.Run()
	if count != 5 {
		t.Fatalf("Stop did not halt run: count=%d", count)
	}
}
