// Package faults is FlexNet's deterministic fault plane (DESIGN.md §10):
// a seeded, schedule-driven injector that drives device crashes, link
// failures and flaps, network partitions, dRPC message loss/delay/
// duplication, and controller-replica crashes through the simulator's
// event queue. Schedules are plain JSON (see Parse) so the same fault
// scenario can be replayed from flexbench, flexnetd, or a test; at a
// fixed seed the whole run — injections, retries, recoveries,
// telemetry — is byte-identical, which is what makes chaos testing
// assertable in CI rather than merely suggestive.
package faults

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"flexnet/internal/controller/cluster"
	"flexnet/internal/drpc"
	"flexnet/internal/fabric"
	"flexnet/internal/netsim"
	"flexnet/internal/packet"
)

// Kind names one injectable fault class.
type Kind string

// Fault kinds.
const (
	// KindDeviceCrash fail-stops a device with config loss; it restarts
	// empty after DurationNs (never, if zero). Target: device name.
	KindDeviceCrash Kind = "device-crash"
	// KindLinkDown fails a link for DurationNs (forever if zero) and
	// refreshes routes around it. Target: "a-b" (node names).
	KindLinkDown Kind = "link-down"
	// KindLinkFlap toggles a link down/up Count times, each half-cycle
	// lasting DurationNs. Target: "a-b".
	KindLinkFlap Kind = "link-flap"
	// KindPartition fails every link incident to a node for DurationNs,
	// isolating it from the fabric. Target: node name.
	KindPartition Kind = "partition"
	// KindDRPCDrop drops each dRPC packet the target's router transmits
	// with probability Prob during the window [At, At+DurationNs).
	// Target: device name, or "*" for every router.
	KindDRPCDrop Kind = "drpc-drop"
	// KindDRPCDelay delays transmitted dRPC packets by DelayNs with
	// probability Prob during the window. Target: device name or "*".
	KindDRPCDelay Kind = "drpc-delay"
	// KindDRPCDup duplicates transmitted dRPC packets with probability
	// Prob during the window. Target: device name or "*".
	KindDRPCDup Kind = "drpc-dup"
	// KindControllerCrash kills controller replica Target (an integer
	// index) and revives it after DurationNs (never, if zero). Requires
	// BindCluster.
	KindControllerCrash Kind = "controller-crash"
	// KindLeaderKill crashes whichever HA controller replica is serving
	// as the active leader, forcing a failover through the standbys
	// (DESIGN.md §15.5). The killed replica is revived as a standby
	// after DurationNs (never, if zero). Target is unused. Requires
	// BindHA.
	KindLeaderKill Kind = "leader-kill"
)

var validKinds = map[Kind]bool{
	KindDeviceCrash:     true,
	KindLinkDown:        true,
	KindLinkFlap:        true,
	KindPartition:       true,
	KindDRPCDrop:        true,
	KindDRPCDelay:       true,
	KindDRPCDup:         true,
	KindControllerCrash: true,
	KindLeaderKill:      true,
}

// Event is one scheduled fault.
type Event struct {
	// At is the injection time in simulated nanoseconds, counted from
	// the moment the schedule is applied (so operators can submit
	// schedules to a long-running flexnetd without knowing its clock).
	At uint64 `json:"at_ns"`
	// Kind selects the fault class.
	Kind Kind `json:"kind"`
	// Target is kind-specific: a device, "a-b" link, node, router ("*"
	// = all), or controller replica index.
	Target string `json:"target,omitempty"`
	// DurationNs is how long the fault lasts (kind-specific default).
	DurationNs uint64 `json:"duration_ns,omitempty"`
	// DelayNs is the added latency for drpc-delay.
	DelayNs uint64 `json:"delay_ns,omitempty"`
	// Prob is the per-packet probability for the drpc-* kinds.
	Prob float64 `json:"prob,omitempty"`
	// Count is the number of down/up cycles for link-flap.
	Count int `json:"count,omitempty"`
}

// Schedule is a reproducible fault scenario: a seed for the message-
// fault coin flips plus the event list.
type Schedule struct {
	Seed   int64   `json:"seed,omitempty"`
	Events []Event `json:"events"`
}

// Parse decodes and validates a JSON schedule.
func Parse(data []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("faults: bad schedule: %w", err)
	}
	for i, e := range s.Events {
		if !validKinds[e.Kind] {
			return nil, fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
	}
	return &s, nil
}

// msgWindow is one active message-fault window on a router.
type msgWindow struct {
	until   uint64
	prob    float64
	delayNs uint64
}

// msgFaults is the live message-fault state for one router.
type msgFaults struct {
	drop  msgWindow
	delay msgWindow
	dup   msgWindow
}

// HAPlane is the fault plane's hook into the HA controller replica set
// (controller.HA satisfies it): KillActive crashes the serving leader
// and returns its replica ID; ReviveReplica restarts it as a standby.
// An interface keeps this package free of a controller dependency.
type HAPlane interface {
	KillActive() (int, bool)
	ReviveReplica(id int)
}

// Plane injects faults into one fabric. Create with New, optionally
// BindCluster for controller-crash events, then Apply schedules. All
// injections run on the simulator's event loop; the plane's own rng
// drives the message-fault coin flips, so runs are reproducible at
// (fabric seed, plane seed, schedule).
type Plane struct {
	fab *fabric.Fabric
	cl  *cluster.Cluster
	ha  HAPlane
	rng *rand.Rand
	// msg holds per-router fault windows; the router's interceptor is
	// installed lazily on the first message fault that targets it.
	msg map[string]*msgFaults
	// Injected counts fired events per kind (mirrored into lazy
	// "faults.injected.<kind>" counters in the fabric registry).
	Injected map[Kind]uint64
}

// New creates a fault plane over fab, seeded for the message-fault coin
// flips. The seed is independent of the fabric's so adding faults never
// perturbs traffic generation.
func New(fab *fabric.Fabric, seed int64) *Plane {
	return &Plane{
		fab:      fab,
		rng:      rand.New(rand.NewSource(seed)),
		msg:      map[string]*msgFaults{},
		Injected: map[Kind]uint64{},
	}
}

// BindCluster attaches a controller replica group as the target of
// controller-crash events.
func (p *Plane) BindCluster(cl *cluster.Cluster) { p.cl = cl }

// BindHA attaches an HA replica manager as the target of leader-kill
// events.
func (p *Plane) BindHA(ha HAPlane) { p.ha = ha }

// Apply validates every event against the live topology and schedules
// them all on the simulator. It can be called repeatedly (e.g. one
// schedule per flexnetd op). Events at equal times fire in slice order.
func (p *Plane) Apply(s *Schedule) error {
	for i, e := range s.Events {
		if err := p.check(e); err != nil {
			return fmt.Errorf("faults: event %d: %w", i, err)
		}
	}
	for _, e := range s.Events {
		e := e
		p.fab.Sim.After(netsim.Time(e.At), func() { p.fire(e) })
	}
	return nil
}

// check validates one event's target against the topology.
func (p *Plane) check(e Event) error {
	switch e.Kind {
	case KindDeviceCrash:
		if p.fab.Device(e.Target) == nil {
			return fmt.Errorf("no device %q", e.Target)
		}
	case KindLinkDown, KindLinkFlap:
		if _, err := p.link(e.Target); err != nil {
			return err
		}
	case KindPartition:
		if len(p.incidentLinks(e.Target)) == 0 {
			return fmt.Errorf("node %q has no links", e.Target)
		}
	case KindDRPCDrop, KindDRPCDelay, KindDRPCDup:
		if e.Prob <= 0 || e.Prob > 1 {
			return fmt.Errorf("prob %v out of (0,1]", e.Prob)
		}
		if e.DurationNs == 0 {
			return fmt.Errorf("message faults need duration_ns")
		}
		if e.Target != "*" && p.fab.Router(e.Target) == nil {
			return fmt.Errorf("no dRPC router on %q", e.Target)
		}
	case KindControllerCrash:
		if p.cl == nil {
			return fmt.Errorf("no cluster bound (BindCluster)")
		}
		idx, err := replicaIndex(e.Target)
		if err != nil {
			return err
		}
		if idx < 0 || idx >= p.cl.Size() {
			return fmt.Errorf("replica %d out of range (cluster size %d)", idx, p.cl.Size())
		}
	case KindLeaderKill:
		if p.ha == nil {
			return fmt.Errorf("no HA group bound (BindHA)")
		}
	default:
		return fmt.Errorf("unknown kind %q", e.Kind)
	}
	return nil
}

func replicaIndex(target string) (int, error) {
	var idx int
	if _, err := fmt.Sscanf(target, "%d", &idx); err != nil {
		return 0, fmt.Errorf("controller-crash target %q is not a replica index", target)
	}
	return idx, nil
}

// link resolves an "a-b" target.
func (p *Plane) link(target string) (*netsim.Link, error) {
	parts := strings.SplitN(target, "-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("link target %q is not \"a-b\"", target)
	}
	l := p.fab.Net.LinkBetween(parts[0], parts[1])
	if l == nil {
		return nil, fmt.Errorf("no link %s", target)
	}
	return l, nil
}

// incidentLinks returns every link touching the named node.
func (p *Plane) incidentLinks(node string) []*netsim.Link {
	var out []*netsim.Link
	for _, l := range p.fab.Net.Links() {
		a, b := l.Ends()
		if a == node || b == node {
			out = append(out, l)
		}
	}
	return out
}

// count bumps the per-kind tally and its lazily-created counter.
func (p *Plane) count(k Kind) {
	p.Injected[k]++
	p.fab.Metrics.Counter("faults.injected." + string(k)).Inc()
}

// fire executes one event at its scheduled instant.
func (p *Plane) fire(e Event) {
	p.count(e.Kind)
	switch e.Kind {
	case KindDeviceCrash:
		d := p.fab.Device(e.Target)
		d.Crash()
		if e.DurationNs > 0 {
			p.fab.Sim.After(netsim.Time(e.DurationNs), d.Restart)
		}
	case KindLinkDown:
		l, _ := p.link(e.Target)
		p.setLink(l, true)
		if e.DurationNs > 0 {
			p.fab.Sim.After(netsim.Time(e.DurationNs), func() { p.setLink(l, false) })
		}
	case KindLinkFlap:
		l, _ := p.link(e.Target)
		cycles := e.Count
		if cycles < 1 {
			cycles = 1
		}
		half := netsim.Time(e.DurationNs)
		for c := 0; c < cycles; c++ {
			downAt := netsim.Time(2*c) * half
			p.fab.Sim.After(downAt, func() { p.setLink(l, true) })
			p.fab.Sim.After(downAt+half, func() { p.setLink(l, false) })
		}
	case KindPartition:
		links := p.incidentLinks(e.Target)
		for _, l := range links {
			l.SetDown(true)
		}
		p.refreshRoutes()
		if e.DurationNs > 0 {
			p.fab.Sim.After(netsim.Time(e.DurationNs), func() {
				for _, l := range links {
					l.SetDown(false)
				}
				p.refreshRoutes()
			})
		}
	case KindDRPCDrop, KindDRPCDelay, KindDRPCDup:
		until := uint64(p.fab.Sim.Now()) + e.DurationNs
		for _, dev := range p.routerTargets(e.Target) {
			mf := p.ensureInterceptor(dev)
			w := msgWindow{until: until, prob: e.Prob, delayNs: e.DelayNs}
			switch e.Kind {
			case KindDRPCDrop:
				mf.drop = w
			case KindDRPCDelay:
				mf.delay = w
			case KindDRPCDup:
				mf.dup = w
			}
		}
	case KindControllerCrash:
		idx, _ := replicaIndex(e.Target)
		n := p.cl.Node(idx)
		n.Kill()
		if e.DurationNs > 0 {
			p.fab.Sim.After(netsim.Time(e.DurationNs), n.Revive)
		}
	case KindLeaderKill:
		id, ok := p.ha.KillActive()
		if !ok {
			// No replica is serving (already mid-failover); the event
			// fires but has nothing to kill.
			return
		}
		if e.DurationNs > 0 {
			p.fab.Sim.After(netsim.Time(e.DurationNs), func() { p.ha.ReviveReplica(id) })
		}
	}
}

// setLink fails/restores a link and reroutes around the change.
func (p *Plane) setLink(l *netsim.Link, down bool) {
	l.SetDown(down)
	p.refreshRoutes()
}

// refreshRoutes recomputes routing after a topology change. Errors
// (e.g. a device that is down and program-less) are counted, not
// fatal: the healer converges the survivors.
func (p *Plane) refreshRoutes() {
	if err := p.fab.RefreshRoutes(); err != nil {
		p.fab.Metrics.Counter("faults.route_refresh_errors").Inc()
	}
}

// routerTargets expands "*" to every routed device, sorted for
// determinism.
func (p *Plane) routerTargets(target string) []string {
	if target != "*" {
		return []string{target}
	}
	var out []string
	for _, dev := range p.fab.Devices() {
		if p.fab.Router(dev) != nil {
			out = append(out, dev)
		}
	}
	sort.Strings(out)
	return out
}

// ensureInterceptor installs this plane's interceptor on the device's
// router (once) and returns the router's fault-window state. The
// interceptor runs on the event loop, so reading the windows and
// drawing from the plane rng is deterministic.
func (p *Plane) ensureInterceptor(dev string) *msgFaults {
	if mf := p.msg[dev]; mf != nil {
		return mf
	}
	mf := &msgFaults{}
	p.msg[dev] = mf
	r := p.fab.Router(dev)
	met := p.fab.Metrics
	r.SetInterceptor(func(pkt *packet.Packet) drpc.Verdict {
		now := uint64(p.fab.Sim.Now())
		var v drpc.Verdict
		if now < mf.drop.until && p.rng.Float64() < mf.drop.prob {
			v.Drop = true
			met.Counter("faults.drpc_dropped").Inc()
			return v
		}
		if now < mf.dup.until && p.rng.Float64() < mf.dup.prob {
			v.Duplicate = true
			met.Counter("faults.drpc_duplicated").Inc()
		}
		if now < mf.delay.until && p.rng.Float64() < mf.delay.prob {
			v.DelayNs = mf.delay.delayNs
			met.Counter("faults.drpc_delayed").Inc()
		}
		return v
	})
	return mf
}
