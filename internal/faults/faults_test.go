package faults

import (
	"strings"
	"testing"
	"time"

	"flexnet/internal/dataplane"
	"flexnet/internal/fabric"
	"flexnet/internal/netsim"
	"flexnet/internal/packet"
)

func bed(t *testing.T) *fabric.Fabric {
	t.Helper()
	f := fabric.New(3)
	f.AddSwitch("s1", dataplane.ArchDRMT)
	f.AddSwitch("s2", dataplane.ArchDRMT)
	f.AddHost("h1", packet.IP(10, 0, 0, 1))
	f.AddHost("h2", packet.IP(10, 0, 0, 2))
	f.Connect("h1", "s1", netsim.DefaultLink())
	f.Connect("s1", "s2", netsim.DefaultLink())
	f.Connect("s2", "h2", netsim.DefaultLink())
	if err := f.InstallBaseRouting(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseValidSchedule(t *testing.T) {
	s, err := Parse([]byte(`{"seed": 7, "events": [
		{"at_ns": 1000, "kind": "device-crash", "target": "s1", "duration_ns": 500},
		{"at_ns": 2000, "kind": "drpc-drop", "target": "*", "duration_ns": 500, "prob": 0.5}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || len(s.Events) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Events[0].Kind != KindDeviceCrash || s.Events[1].Prob != 0.5 {
		t.Fatalf("fields lost: %+v", s.Events)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"events": [{"at_ns": 1, "kind": "meteor-strike"}]}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// Apply must reject events whose targets don't exist — before anything
// is scheduled.
func TestApplyValidatesTargets(t *testing.T) {
	f := bed(t)
	p := New(f, 1)
	cases := []Event{
		{Kind: KindDeviceCrash, Target: "nosuch"},
		{Kind: KindLinkDown, Target: "s1"},                             // not "a-b"
		{Kind: KindLinkDown, Target: "s1-h2"},                          // no such link
		{Kind: KindPartition, Target: "ghost"},                         // no links
		{Kind: KindDRPCDrop, Target: "s1", Prob: 2},                    // prob out of range
		{Kind: KindDRPCDrop, Target: "s1", Prob: 0.5, DurationNs: 100}, // no router enabled
		{Kind: KindControllerCrash, Target: "0"},                       // no cluster bound
	}
	for _, e := range cases {
		if err := p.Apply(&Schedule{Events: []Event{e}}); err == nil {
			t.Errorf("Apply accepted %+v", e)
		}
	}
}

func TestDeviceCrashAndRestart(t *testing.T) {
	f := bed(t)
	p := New(f, 1)
	err := p.Apply(&Schedule{Events: []Event{
		{At: uint64(time.Millisecond), Kind: KindDeviceCrash, Target: "s1", DurationNs: uint64(5 * time.Millisecond)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	f.Sim.RunFor(2 * time.Millisecond)
	d := f.Device("s1")
	if !d.Down() {
		t.Fatal("device not down after crash event")
	}
	if n := len(d.Programs()); n != 0 {
		t.Fatalf("crash kept %d programs", n)
	}
	f.Sim.RunFor(10 * time.Millisecond)
	if d.Down() {
		t.Fatal("device still down after restart")
	}
	if p.Injected[KindDeviceCrash] != 1 {
		t.Fatalf("Injected = %v", p.Injected)
	}
}

func TestLinkDownReroutes(t *testing.T) {
	f := bed(t)
	p := New(f, 1)
	l := f.Net.LinkBetween("s1", "s2")
	if l == nil {
		t.Fatal("no s1-s2 link")
	}
	err := p.Apply(&Schedule{Events: []Event{
		{At: uint64(time.Millisecond), Kind: KindLinkDown, Target: "s1-s2", DurationNs: uint64(5 * time.Millisecond)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	f.Sim.RunFor(2 * time.Millisecond)
	if !l.Down {
		t.Fatal("link not down")
	}
	f.Sim.RunFor(10 * time.Millisecond)
	if l.Down {
		t.Fatal("link not restored")
	}
}

// The same (fabric seed, plane seed, schedule) must produce identical
// injection counts and metric snapshots.
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		f := bed(t)
		p := New(f, 99)
		sched := Generate(13, GenSpec{
			Devices:        []string{"s1", "s2"},
			Links:          []string{"s1-s2"},
			HorizonNs:      uint64(200 * time.Millisecond),
			CrashMeanGapNs: uint64(50 * time.Millisecond),
			CrashDownNs:    uint64(5 * time.Millisecond),
			LinkMeanGapNs:  uint64(70 * time.Millisecond),
			LinkDownNs:     uint64(5 * time.Millisecond),
		})
		if err := p.Apply(sched); err != nil {
			t.Fatal(err)
		}
		f.Sim.RunFor(300 * time.Millisecond)
		return f.Metrics.Snapshot().Format()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n%s\n----\n%s", a, b)
	}
	if !strings.Contains(a, "faults.injected.device-crash") {
		t.Fatalf("no crash counter in snapshot:\n%s", a)
	}
}

// Generate is itself deterministic and respects the horizon.
func TestGenerateDeterministic(t *testing.T) {
	sp := GenSpec{
		Devices:        []string{"a", "b"},
		HorizonNs:      uint64(time.Second),
		CrashMeanGapNs: uint64(100 * time.Millisecond),
		CrashDownNs:    uint64(time.Millisecond),
	}
	s1, s2 := Generate(5, sp), Generate(5, sp)
	if len(s1.Events) == 0 {
		t.Fatal("no events generated")
	}
	if len(s1.Events) != len(s2.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(s1.Events), len(s2.Events))
	}
	for i := range s1.Events {
		if s1.Events[i] != s2.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, s1.Events[i], s2.Events[i])
		}
		if s1.Events[i].At > sp.HorizonNs {
			t.Fatalf("event %d beyond horizon: %+v", i, s1.Events[i])
		}
	}
	if diff := Generate(6, sp); len(diff.Events) == len(s1.Events) {
		same := true
		for i := range diff.Events {
			if diff.Events[i] != s1.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}
