package faults

import (
	"math/rand"
	"sort"
)

// GenSpec parameterizes Generate: which elements may fail and the mean
// inter-arrival gap per fault class (Poisson arrivals; 0 disables the
// class). All times are simulated nanoseconds.
type GenSpec struct {
	// Devices eligible for crashes.
	Devices []string
	// Links eligible for link-down events, as "a-b" targets.
	Links []string
	// Routers eligible for dRPC message faults ("*" works too).
	Routers []string

	// HorizonNs bounds event injection times to [0, HorizonNs).
	HorizonNs uint64

	// CrashMeanGapNs is the mean gap between device crashes.
	CrashMeanGapNs uint64
	// CrashDownNs is how long a crashed device stays down.
	CrashDownNs uint64

	// LinkMeanGapNs is the mean gap between link failures.
	LinkMeanGapNs uint64
	// LinkDownNs is how long a failed link stays down.
	LinkDownNs uint64

	// MsgMeanGapNs is the mean gap between dRPC drop windows.
	MsgMeanGapNs uint64
	// MsgWindowNs is each drop window's length.
	MsgWindowNs uint64
	// MsgDropProb is the per-packet drop probability inside a window.
	MsgDropProb float64
}

// Generate builds a reproducible random chaos schedule: Poisson
// arrivals per fault class over the horizon, targets drawn uniformly,
// all from one seeded source. The same (seed, spec) always yields the
// same schedule; the returned Schedule carries the seed so Apply's coin
// flips are pinned too. Events are sorted by injection time.
func Generate(seed int64, sp GenSpec) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed}

	poisson := func(meanGap uint64, emit func(at uint64)) {
		if meanGap == 0 {
			return
		}
		at := uint64(rng.ExpFloat64() * float64(meanGap))
		for at < sp.HorizonNs {
			emit(at)
			at += uint64(rng.ExpFloat64() * float64(meanGap))
		}
	}

	if len(sp.Devices) > 0 {
		poisson(sp.CrashMeanGapNs, func(at uint64) {
			s.Events = append(s.Events, Event{
				At:         at,
				Kind:       KindDeviceCrash,
				Target:     sp.Devices[rng.Intn(len(sp.Devices))],
				DurationNs: sp.CrashDownNs,
			})
		})
	}
	if len(sp.Links) > 0 {
		poisson(sp.LinkMeanGapNs, func(at uint64) {
			s.Events = append(s.Events, Event{
				At:         at,
				Kind:       KindLinkDown,
				Target:     sp.Links[rng.Intn(len(sp.Links))],
				DurationNs: sp.LinkDownNs,
			})
		})
	}
	if len(sp.Routers) > 0 {
		poisson(sp.MsgMeanGapNs, func(at uint64) {
			s.Events = append(s.Events, Event{
				At:         at,
				Kind:       KindDRPCDrop,
				Target:     sp.Routers[rng.Intn(len(sp.Routers))],
				DurationNs: sp.MsgWindowNs,
				Prob:       sp.MsgDropProb,
			})
		})
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s
}
