package audit

import (
	"fmt"
	"sort"
	"strings"
)

// IntentState is the controller-level intent reconstructed from the
// trail: which tenants exist and which devices carry each app
// instance ("uri#segment"). It deliberately models *intent*, not
// device inventory — infrastructure programs (routing tables installed
// at build time) predate the chain and are not control-plane
// mutations.
type IntentState struct {
	Tenants   map[string]bool
	Instances map[string]map[string]bool // instance -> device set
}

// NewIntentState returns an empty state.
func NewIntentState() *IntentState {
	return &IntentState{Tenants: map[string]bool{}, Instances: map[string]map[string]bool{}}
}

// Replay folds the chain into intent state. Semantics are a CRDT-ish
// idempotent set fold, which is what makes replay robust to the
// self-healer's reconciliation plans:
//
//   - only records for committed work mutate state: plans with outcome
//     "succeeded" or "degraded"; rolled-back and failed plans touched
//     nothing durable and are skipped whole
//   - install adds (device, instance) — a no-op if already present, so
//     a healer reinstall after a crash replays cleanly
//   - remove deletes it; a remove step with status "skipped" ALSO
//     deletes — degraded removals skip devices that are down, but the
//     dead device's copy is gone and the controller has dropped the
//     replica from intent
//   - migrate-state moves the instance from Src to the step's device
//   - swap and route-update change no placement
//
// The chain is verified first; a tampered chain does not replay.
func Replay(records []Record) (*IntentState, error) {
	if err := VerifyRecords(records); err != nil {
		return nil, err
	}
	st := NewIntentState()
	for _, r := range records {
		switch r.Kind {
		case "genesis", "spec-apply", "failover":
			// markers; no state
		case "tenant-add":
			st.Tenants[r.Tenant] = true
		case "tenant-remove":
			delete(st.Tenants, r.Tenant)
		case "plan":
			if r.Outcome != "succeeded" && r.Outcome != "degraded" {
				continue
			}
			for _, s := range r.Steps {
				applied := s.Status == "committed" ||
					(s.Status == "skipped" && s.Op == "remove")
				if !applied {
					continue
				}
				// App instances are "uri#segment"; anything else is
				// infrastructure repair (the healer reinstalling the
				// routing program), which is device inventory, not
				// intent.
				if s.Instance != "" && !strings.Contains(s.Instance, "#") {
					continue
				}
				switch s.Op {
				case "install":
					st.Add(s.Instance, s.Device)
				case "remove":
					st.Remove(s.Instance, s.Device)
				case "migrate-state":
					st.Remove(s.Instance, s.Src)
					st.Add(s.Instance, s.Device)
				case "swap", "route-update":
					// placement unchanged
				default:
					return nil, fmt.Errorf("audit: record %d: unknown step op %q", r.Seq, s.Op)
				}
			}
		default:
			return nil, fmt.Errorf("audit: record %d: unknown kind %q", r.Seq, r.Kind)
		}
	}
	return st, nil
}

func (st *IntentState) Add(instance, device string) {
	if instance == "" || device == "" {
		return
	}
	devs := st.Instances[instance]
	if devs == nil {
		devs = map[string]bool{}
		st.Instances[instance] = devs
	}
	devs[device] = true
}

func (st *IntentState) Remove(instance, device string) {
	if devs, ok := st.Instances[instance]; ok {
		delete(devs, device)
		if len(devs) == 0 {
			delete(st.Instances, instance)
		}
	}
}

// Canonical renders the state as sorted text — one line per tenant,
// one line per instance with its device set sorted — so two states are
// equal iff their renderings are byte-identical. The controller
// renders its live state the same way (Controller.CanonicalIntent) for
// the replay assertions.
func (st *IntentState) Canonical() string {
	tenants := make([]string, 0, len(st.Tenants))
	for t := range st.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	instances := make([]string, 0, len(st.Instances))
	for i := range st.Instances {
		instances = append(instances, i)
	}
	sort.Strings(instances)

	var b strings.Builder
	for _, t := range tenants {
		fmt.Fprintf(&b, "tenant %s\n", t)
	}
	for _, inst := range instances {
		devs := make([]string, 0, len(st.Instances[inst]))
		for d := range st.Instances[inst] {
			devs = append(devs, d)
		}
		sort.Strings(devs)
		fmt.Fprintf(&b, "instance %s @ %s\n", inst, strings.Join(devs, ","))
	}
	return b.String()
}
