package audit

import "flexnet/internal/plan"

// FromReport converts an executed plan's report into an (unchained)
// plan record — the executor's audit sink appends it. Step programs
// and filters are deliberately dropped: the trail records *what
// changed where with what outcome*, and program content is recoverable
// from the spec/app registry by fingerprint.
func FromReport(r *plan.Report) Record {
	rec := Record{
		Kind:    "plan",
		PlanID:  r.ID,
		Label:   r.Label,
		Origin:  r.Origin,
		Outcome: r.Outcome.String(),
	}
	for _, sr := range r.Steps {
		rec.Steps = append(rec.Steps, StepRecord{
			Op:       sr.Step.Op.String(),
			Device:   sr.Step.Device,
			Src:      sr.Step.Src,
			Instance: sr.Step.Instance,
			Status:   sr.Status.String(),
		})
	}
	return rec
}
