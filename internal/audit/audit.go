// Package audit implements FlexNet's append-only control-plane audit
// trail.
//
// Every control-plane mutation — every executed ChangePlan (committed,
// degraded or rolled back) and every tenant add/remove — appends one
// Record. Records are hash-chained: each carries the SHA-256 of its
// own canonical JSON with the previous record's hash folded in, so any
// retroactive edit breaks Verify at the tampered link. The chain is
// the replay log ROADMAP item 4 (HA standbys) and the self-healer
// need: Replay folds the records into the controller-level intent
// state (tenants + app replica placements), which tests assert
// byte-identical to the live controller's own rendering.
//
// The log is in-memory and deterministic: record timestamps come from
// the simulated clock, so the same seed yields the same chain,
// byte-for-byte, across runs and worker counts. See DESIGN.md §14.3
// for the record format and replay semantics.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// StepRecord is one plan step's outcome in the trail.
type StepRecord struct {
	Op       string `json:"op"`
	Device   string `json:"device,omitempty"`
	Src      string `json:"src,omitempty"`
	Instance string `json:"instance,omitempty"`
	Status   string `json:"status"`
}

// Record is one audited control-plane mutation.
type Record struct {
	// Seq is the record's position in the chain (0 = genesis).
	Seq uint64 `json:"seq"`
	// AtNs is the simulated-clock timestamp.
	AtNs int64 `json:"at_ns"`
	// Kind is "genesis", "plan", "tenant-add", "tenant-remove",
	// "spec-apply" or "failover" (a marker the new leader appends after
	// a controller failover, DESIGN.md §15.4).
	Kind string `json:"kind"`

	// Plan fields (Kind "plan").
	PlanID  string       `json:"plan_id,omitempty"`
	Label   string       `json:"label,omitempty"`
	Outcome string       `json:"outcome,omitempty"`
	Steps   []StepRecord `json:"steps,omitempty"`

	// Origin attributes the mutation: "" for imperative API calls,
	// "spec:<version>" for declarative applies, "heal" for the
	// self-healer's reconciliation plans.
	Origin string `json:"origin,omitempty"`

	// Tenant names the tenant for tenant-add/tenant-remove records;
	// SpecVersion labels spec-apply records.
	Tenant      string `json:"tenant,omitempty"`
	SpecVersion string `json:"spec_version,omitempty"`

	// Prev is the previous record's hash; Hash is SHA-256 over this
	// record's canonical JSON with Hash itself blanked.
	Prev string `json:"prev"`
	Hash string `json:"hash"`
}

// hashOf computes the record's chain hash: SHA-256 over the canonical
// JSON encoding with the Hash field empty. Canonical means the fixed
// struct field order above — Go's encoding/json emits struct fields in
// declaration order, so the encoding is stable.
func hashOf(r Record) string {
	r.Hash = ""
	b, err := json.Marshal(r)
	if err != nil {
		// Record contains only marshalable fields; cannot happen.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Log is the append-only chain.
type Log struct {
	mu      sync.Mutex
	records []Record
	now     func() int64
	// onAppend, when set, is called (outside the lock) after each
	// append — the controller hangs a telemetry counter here.
	onAppend func()
	// onRecord, when set, receives each appended record (outside the
	// lock) — the HA layer replicates the chain to standbys from here.
	onRecord func(Record)
}

// NewLog starts a chain with a genesis record stamped by the given
// clock (simulated nanoseconds).
func NewLog(now func() int64) *Log {
	l := &Log{now: now}
	g := Record{Seq: 0, AtNs: now(), Kind: "genesis", Prev: ""}
	g.Hash = hashOf(g)
	l.records = append(l.records, g)
	return l
}

// OnAppend registers a callback invoked after every append (telemetry).
func (l *Log) OnAppend(fn func()) {
	l.mu.Lock()
	l.onAppend = fn
	l.mu.Unlock()
}

// OnAppendRecord registers a callback receiving every appended record —
// the HA replication tap (DESIGN.md §15.2). It coexists with OnAppend.
func (l *Log) OnAppendRecord(fn func(Record)) {
	l.mu.Lock()
	l.onRecord = fn
	l.mu.Unlock()
}

// Append stamps, sequences, chains and stores the record. The caller
// fills the Kind-specific fields; Seq, AtNs, Prev and Hash are owned by
// the log.
func (l *Log) Append(r Record) Record {
	l.mu.Lock()
	prev := l.records[len(l.records)-1]
	r.Seq = prev.Seq + 1
	r.AtNs = l.now()
	r.Prev = prev.Hash
	r.Hash = hashOf(r)
	l.records = append(l.records, r)
	fn, rfn := l.onAppend, l.onRecord
	l.mu.Unlock()
	if fn != nil {
		fn()
	}
	if rfn != nil {
		rfn(r)
	}
	return r
}

// RecordsFrom returns a copy of the chain suffix starting at sequence
// number seq — the backlog a stale standby must replay.
func (l *Log) RecordsFrom(seq uint64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq >= uint64(len(l.records)) {
		return nil
	}
	return append([]Record(nil), l.records[seq:]...)
}

// Records returns a copy of the chain.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// Len returns the chain length including genesis.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Head returns the latest record's hash.
func (l *Log) Head() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records[len(l.records)-1].Hash
}

// Verify walks the chain recomputing every hash and link. It returns
// the first broken record's error, or nil for an intact chain.
func (l *Log) Verify() error {
	return VerifyRecords(l.Records())
}

// VerifyRecords checks an exported chain (e.g. shipped over dRPC).
func VerifyRecords(records []Record) error {
	if len(records) == 0 {
		return fmt.Errorf("audit: empty chain (no genesis)")
	}
	if records[0].Kind != "genesis" || records[0].Seq != 0 || records[0].Prev != "" {
		return fmt.Errorf("audit: record 0 is not a genesis record")
	}
	prev := Record{}
	for i, r := range records {
		if i > 0 {
			if r.Seq != prev.Seq+1 {
				return fmt.Errorf("audit: record %d: sequence gap (%d after %d)", i, r.Seq, prev.Seq)
			}
			if r.Prev != prev.Hash {
				return fmt.Errorf("audit: record %d: chain broken (prev hash mismatch)", i)
			}
		}
		if got := hashOf(r); got != r.Hash {
			return fmt.Errorf("audit: record %d: hash mismatch (tampered?)", i)
		}
		prev = r
	}
	return nil
}
