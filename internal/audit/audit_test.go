package audit

import (
	"strings"
	"testing"
)

// testLog returns a log on a fake monotonic clock.
func testLog() *Log {
	var t int64
	return NewLog(func() int64 { t += 100; return t })
}

func TestChainAppendAndVerify(t *testing.T) {
	l := testLog()
	if l.Len() != 1 {
		t.Fatalf("new log len = %d, want 1 (genesis)", l.Len())
	}
	l.Append(Record{Kind: "tenant-add", Tenant: "acme"})
	l.Append(Record{Kind: "plan", PlanID: "p1", Label: "deploy", Outcome: "succeeded",
		Steps: []StepRecord{{Op: "install", Device: "s1", Instance: "flexnet://acme/a#x", Status: "committed"}}})
	if err := l.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Prev != recs[i-1].Hash {
			t.Fatalf("record %d prev link broken", i)
		}
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("record %d seq gap", i)
		}
		if recs[i].AtNs <= recs[i-1].AtNs {
			t.Fatalf("record %d timestamp not monotonic", i)
		}
	}
	if l.Head() != recs[2].Hash {
		t.Fatal("Head is not the last record's hash")
	}
}

func TestChainTamperDetection(t *testing.T) {
	l := testLog()
	l.Append(Record{Kind: "tenant-add", Tenant: "acme"})
	l.Append(Record{Kind: "tenant-add", Tenant: "globex"})

	// Retroactive edit: flip a field without recomputing hashes.
	recs := l.Records()
	recs[1].Tenant = "evil"
	if err := VerifyRecords(recs); err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("edited record not caught: %v", err)
	}

	// Consistent rewrite of one record: its own hash matches but the
	// next record's prev link breaks.
	recs = l.Records()
	recs[1].Tenant = "evil"
	recs[1].Hash = hashOf(recs[1])
	if err := VerifyRecords(recs); err == nil || !strings.Contains(err.Error(), "chain broken") {
		t.Fatalf("rewritten record not caught: %v", err)
	}

	// Dropped record: sequence gap.
	recs = l.Records()
	if err := VerifyRecords(append(recs[:1:1], recs[2])); err == nil {
		t.Fatal("dropped record not caught")
	}

	// Truncation from the front: no genesis.
	if err := VerifyRecords(l.Records()[1:]); err == nil {
		t.Fatal("missing genesis not caught")
	}
}

func TestReplayFoldsIntent(t *testing.T) {
	l := testLog()
	l.Append(Record{Kind: "tenant-add", Tenant: "acme"})
	l.Append(Record{Kind: "plan", Outcome: "succeeded", Steps: []StepRecord{
		{Op: "install", Device: "s1", Instance: "flexnet://acme/a#x", Status: "committed"},
		{Op: "install", Device: "s2", Instance: "flexnet://acme/a#x", Status: "committed"},
	}})
	// Rolled-back plans touched nothing durable.
	l.Append(Record{Kind: "plan", Outcome: "rolled-back", Steps: []StepRecord{
		{Op: "install", Device: "s3", Instance: "flexnet://acme/a#x", Status: "committed"},
	}})
	// Migration moves the instance.
	l.Append(Record{Kind: "plan", Outcome: "succeeded", Steps: []StepRecord{
		{Op: "migrate-state", Src: "s2", Device: "s4", Instance: "flexnet://acme/a#x", Status: "committed"},
	}})
	// Degraded removal: the skipped remove still drops the replica from
	// intent (the device is gone, and so is its copy).
	l.Append(Record{Kind: "plan", Outcome: "degraded", Steps: []StepRecord{
		{Op: "remove", Device: "s4", Instance: "flexnet://acme/a#x", Status: "skipped"},
	}})
	// Healer infrastructure repair: not an app instance, not intent.
	l.Append(Record{Kind: "plan", Outcome: "succeeded", Origin: "heal", Steps: []StepRecord{
		{Op: "install", Device: "s1", Instance: "routing", Status: "committed"},
	}})
	l.Append(Record{Kind: "tenant-remove", Tenant: "acme"})
	l.Append(Record{Kind: "tenant-add", Tenant: "globex"})

	st, err := Replay(l.Records())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	want := "tenant globex\ninstance flexnet://acme/a#x @ s1\n"
	if got := st.Canonical(); got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
}

func TestReplayIdempotentAdds(t *testing.T) {
	l := testLog()
	// A healer reinstall replays over an existing install: same final set.
	for i := 0; i < 3; i++ {
		l.Append(Record{Kind: "plan", Outcome: "succeeded", Steps: []StepRecord{
			{Op: "install", Device: "s1", Instance: "flexnet://infra/m#x", Status: "committed"},
		}})
	}
	st, err := Replay(l.Records())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := st.Canonical(); got != "instance flexnet://infra/m#x @ s1\n" {
		t.Fatalf("canonical = %q", got)
	}
}

func TestReplayRejectsTamperedChain(t *testing.T) {
	l := testLog()
	l.Append(Record{Kind: "tenant-add", Tenant: "acme"})
	recs := l.Records()
	recs[1].Tenant = "evil"
	if _, err := Replay(recs); err == nil {
		t.Fatal("tampered chain replayed")
	}
}

func TestDeterministicHashes(t *testing.T) {
	mk := func() []Record {
		l := testLog()
		l.Append(Record{Kind: "tenant-add", Tenant: "acme"})
		l.Append(Record{Kind: "plan", PlanID: "p1", Outcome: "succeeded", Origin: "spec:v1",
			Steps: []StepRecord{{Op: "install", Device: "s1", Instance: "a#x", Status: "committed"}}})
		return l.Records()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Hash != b[i].Hash {
			t.Fatalf("record %d hash differs across identical runs", i)
		}
	}
}
