package flowcache

import (
	"fmt"
	"testing"

	"flexnet/internal/flexbpf"
	"flexnet/internal/packet"
)

func testPacket(sport uint16) *packet.Packet {
	return packet.TCPPacket(1, packet.IP(10, 0, 0, 1), packet.IP(10, 0, 0, 2),
		sport, 80, 0, 100)
}

func testTable(t *testing.T) *flexbpf.TableInstance {
	t.Helper()
	return flexbpf.NewTableInstance(&flexbpf.TableSpec{
		Name:    "t",
		Keys:    []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}},
		Actions: []string{"fwd"},
		Size:    16,
	})
}

func entryFor(pkt *packet.Packet, epoch uint64, gens []TableGen) *Entry {
	fidTTL := packet.InternField("ipv4.ttl")
	ttl, ok := pkt.FieldOKByID(fidTTL)
	return &Entry{
		Epoch:   epoch,
		Gens:    gens,
		Headers: append([]string(nil), pkt.Headers...),
		Pre:     []FieldVal{{FID: fidTTL, Val: ttl, Present: ok}},
		Verdict: packet.VerdictForward,
		Egress:  3,
		Instrs:  7,
		Lookups: 2,
	}
}

func TestMatchValidations(t *testing.T) {
	ti := testTable(t)
	pkt := testPacket(5000)
	e := entryFor(pkt, 1, []TableGen{{TI: ti, Gen: ti.Generation()}})

	if !e.match(1, pkt) {
		t.Fatal("entry should match the packet it was recorded from")
	}
	if e.match(2, pkt) {
		t.Fatal("entry must not match after an epoch move")
	}

	// A differing validated field retires the match.
	changed := testPacket(5000)
	changed.SetField("ipv4.ttl", 1)
	if e.match(1, changed) {
		t.Fatal("entry must not match a packet with a different dependency field")
	}

	// A header-chain difference retires the match.
	hdrless := testPacket(5000)
	hdrless.Headers = hdrless.Headers[:len(hdrless.Headers)-1]
	if e.match(1, hdrless) {
		t.Fatal("entry must not match a packet with a different header chain")
	}

	// A table mutation bumps the generation and retires the match.
	if err := ti.Insert(flexbpf.ExactEntry("fwd", nil, 42)); err != nil {
		t.Fatal(err)
	}
	if e.match(1, pkt) {
		t.Fatal("entry must not match after a pinned table mutates")
	}
	if !e.stale(1) {
		t.Fatal("entry with a moved table generation must be stale")
	}
}

func TestPayloadLenValidation(t *testing.T) {
	pkt := testPacket(5000)
	e := entryFor(pkt, 1, nil)
	e.CheckLen, e.PayloadLen = true, pkt.PayloadLen

	if !e.match(1, pkt) {
		t.Fatal("entry should match at the recorded payload length")
	}
	bigger := testPacket(5000)
	bigger.PayloadLen = pkt.PayloadLen + 1
	if e.match(1, bigger) {
		t.Fatal("CheckLen entry must not match a different payload length")
	}
	e.CheckLen = false
	if !e.match(1, bigger) {
		t.Fatal("length must be ignored when the pipeline never read it")
	}
}

func TestReplayAppliesWritesAndEgress(t *testing.T) {
	pkt := testPacket(5000)
	fidMark := packet.InternField("meta.mark")
	e := &Entry{
		Verdict: packet.VerdictForward,
		Egress:  9,
		Post: []FieldVal{
			{FID: fidMark, Val: 77, Present: true},
			{FID: packet.InternField("meta.unset"), Present: false},
		},
	}
	e.Replay(pkt)
	if v, ok := pkt.FieldOKByID(fidMark); !ok || v != 77 {
		t.Fatalf("replay did not apply the write set: got %d ok=%v", v, ok)
	}
	if _, ok := pkt.FieldOKByID(packet.InternField("meta.unset")); ok {
		t.Fatal("replay must not apply absent post-values")
	}
	if pkt.EgressPort != 9 {
		t.Fatalf("replay did not set egress: got %d", pkt.EgressPort)
	}

	drop := testPacket(5001)
	e2 := &Entry{Verdict: packet.VerdictDrop, Egress: 9}
	e2.Replay(drop)
	if drop.EgressPort == 9 {
		t.Fatal("drop replay must not set an egress port")
	}
}

func TestLookupInsertAndVariantCap(t *testing.T) {
	c := New(1)
	pkt := testPacket(5000)
	key := pkt.FlowKey()

	if _, ok := c.Lookup(key, 1, pkt); ok {
		t.Fatal("empty cache must miss")
	}
	c.Insert(key, entryFor(pkt, 1, nil))
	if _, ok := c.Lookup(key, 1, pkt); !ok {
		t.Fatal("inserted entry must hit")
	}

	// Same key, distinct validated TTLs → distinct variants, capped.
	for ttl := uint64(1); ttl <= maxVariants+3; ttl++ {
		v := testPacket(5000)
		v.SetField("ipv4.ttl", ttl)
		c.Insert(key, entryFor(v, 1, nil))
	}
	if c.Len() > maxVariants {
		t.Fatalf("variant cap exceeded: %d entries for one key", c.Len())
	}

	// An insert from a superseded epoch is discarded.
	c2 := New(2)
	c2.Insert(key, entryFor(pkt, 1, nil))
	if c2.Len() != 0 {
		t.Fatal("insert from a superseded epoch must be discarded")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: got hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestInsertPrunesStaleVariants(t *testing.T) {
	ti := testTable(t)
	c := New(1)
	pkt := testPacket(5000)
	key := pkt.FlowKey()

	// Fill the key with entries pinned to the current generation, then
	// retire them all with one table mutation.
	for ttl := uint64(1); ttl <= maxVariants; ttl++ {
		v := testPacket(5000)
		v.SetField("ipv4.ttl", ttl)
		c.Insert(key, entryFor(v, 1, []TableGen{{TI: ti, Gen: ti.Generation()}}))
	}
	if err := ti.Insert(flexbpf.ExactEntry("fwd", nil, 1)); err != nil {
		t.Fatal(err)
	}

	// The key is at its variant budget, but every variant is stale: the
	// next insert must prune them and land.
	fresh := entryFor(pkt, 1, []TableGen{{TI: ti, Gen: ti.Generation()}})
	c.Insert(key, fresh)
	if got, ok := c.Lookup(key, 1, pkt); !ok || got != fresh {
		t.Fatal("insert did not prune stale variants to admit a live entry")
	}
	if c.Len() != 1 {
		t.Fatalf("stale variants not pruned: Len=%d", c.Len())
	}
}

func TestInvalidateAndCapacityReset(t *testing.T) {
	c := New(1)
	pkt := testPacket(5000)
	key := pkt.FlowKey()
	c.Insert(key, entryFor(pkt, 1, nil))

	c.Invalidate(2)
	if c.Len() != 0 {
		t.Fatal("invalidate must clear the cache")
	}
	if _, ok := c.Lookup(key, 2, pkt); ok {
		t.Fatal("post-invalidate lookup must miss")
	}
	// Entries recorded under the old epoch no longer land.
	c.Insert(key, entryFor(pkt, 1, nil))
	if c.Len() != 0 {
		t.Fatal("old-epoch insert must be discarded after invalidate")
	}
	c.Insert(key, entryFor(pkt, 2, nil))
	if c.Len() != 1 {
		t.Fatal("current-epoch insert must land after invalidate")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations: got %d, want 1", st.Invalidations)
	}

	// Filling past maxEntries wholesale-resets rather than growing.
	big := New(3)
	for i := 0; i <= maxEntries; i++ {
		p := packet.TCPPacket(uint64(i), packet.IP(10, 1, byte(i>>8), byte(i)),
			packet.IP(10, 0, 0, 2), uint16(i), 80, 0, 100)
		big.Insert(p.FlowKey(), entryFor(p, 3, nil))
	}
	if big.Len() > maxEntries {
		t.Fatalf("capacity reset did not bound the cache: %d entries", big.Len())
	}
}

func TestDistinctFlowKeysDoNotCollide(t *testing.T) {
	c := New(1)
	for i := 0; i < 64; i++ {
		p := testPacket(uint16(6000 + i))
		e := entryFor(p, 1, nil)
		e.Egress = i
		c.Insert(p.FlowKey(), e)
	}
	for i := 0; i < 64; i++ {
		p := testPacket(uint16(6000 + i))
		e, ok := c.Lookup(p.FlowKey(), 1, p)
		if !ok || e.Egress != i {
			t.Fatalf("flow %d: got entry %+v ok=%v", i, e, ok)
		}
	}
	if c.Len() != 64 {
		t.Fatalf("Len: got %d, want 64", c.Len())
	}
}

func TestStatsString(t *testing.T) {
	// Keep the fmt import honest and document the snapshot shape.
	s := Stats{Hits: 1, Misses: 2, Inserts: 3, Invalidations: 4}
	got := fmt.Sprintf("%+v", s)
	want := "{Hits:1 Misses:2 Inserts:3 Invalidations:4}"
	if got != want {
		t.Fatalf("stats snapshot: got %s, want %s", got, want)
	}
}
