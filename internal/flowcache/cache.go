// Package flowcache implements a megaflow-style exact-match flow cache
// for FlexNet devices: the first packet of a flow runs the full linked
// pipeline and records the resolved outcome keyed by the packet state
// the pipeline actually depended on; subsequent packets of the flow that
// match the recorded dependencies replay the outcome with a single
// lookup instead of re-executing the pipeline.
//
// Soundness rests on three validations per hit (DESIGN.md §12):
//
//   - Dependency fields: the recorded entry stores the *before* values
//     (and presence bits) of every field the pipeline could read or
//     write, the program-filter condition fields, and the parser's
//     select fields. A follower packet must match them all. Write-set
//     fields are included because replay applies their *after* values:
//     a conditional write that did not fire for the recorded packet must
//     not be replayed onto a packet it would have fired for.
//   - Table generations: the entry pins the generation counter of every
//     table the pipeline applies, captured before the recorded run. Any
//     table mutation — including bulk ReplaceAll route refreshes that do
//     not bump the device epoch — bumps the generation and silently
//     retires dependent entries.
//   - Device epoch: entries record the configuration epoch they were
//     built under, and the device wholesale-invalidates the cache at
//     every epoch-atomic commit, so a hitless swap stays hitless and no
//     packet is ever served a pre-swap outcome after the swap point.
//
// Only pipelines whose static CacheProfile is cacheable (no per-flow
// state, clocks, randomness, or header restructuring) are eligible; the
// device layer enforces that before consulting the cache.
package flowcache

import (
	"sync"

	"flexnet/internal/flexbpf"
	"flexnet/internal/packet"
)

// maxVariants bounds the number of entries per flow key. Distinct
// variants arise when packets of one 5-tuple differ in a validated
// field (for example TTL or a VLAN tag), so a handful suffices.
const maxVariants = 4

// maxEntries bounds the total entry count; exceeding it wholesale-resets
// the cache, which is always safe (the cache is only an accelerator).
const maxEntries = 1 << 16

// FieldVal records one packet field's value and presence bit.
type FieldVal struct {
	FID     packet.FieldID
	Val     uint64
	Present bool
}

// TableGen pins one table instance at a recorded generation.
type TableGen struct {
	TI  *flexbpf.TableInstance
	Gen uint64
}

// Entry is one recorded pipeline outcome.
type Entry struct {
	// Epoch is the device configuration epoch the entry was recorded
	// under; a commit retires it.
	Epoch uint64
	// Gens pins every applied table at its pre-run generation.
	Gens []TableGen
	// Headers is the recorded packet's header chain. Matching it
	// wholesale subsumes parser-walk validation together with the select
	// fields carried in Pre.
	Headers []string
	// PayloadLen is validated only when CheckLen is set (the pipeline
	// used OpPktLen).
	PayloadLen int
	CheckLen   bool
	// Pre holds before-values of the full dependency field set.
	Pre []FieldVal
	// Post holds after-values of the pipeline's write set; Replay
	// applies the present ones.
	Post []FieldVal

	// Verdict, Egress, Instrs, Lookups, and Programs replay the recorded
	// processing outcome and its telemetry accounting.
	Verdict  packet.Verdict
	Egress   int
	Instrs   int
	Lookups  int
	Programs []string
}

// match reports whether pkt, at the given device epoch, still satisfies
// every validation the entry depends on.
func (e *Entry) match(epoch uint64, pkt *packet.Packet) bool {
	if e.Epoch != epoch {
		return false
	}
	if e.CheckLen && pkt.PayloadLen != e.PayloadLen {
		return false
	}
	if len(pkt.Headers) != len(e.Headers) {
		return false
	}
	for i, h := range e.Headers {
		if pkt.Headers[i] != h {
			return false
		}
	}
	for i := range e.Pre {
		fv := &e.Pre[i]
		v, ok := pkt.FieldOKByID(fv.FID)
		if ok != fv.Present || (ok && v != fv.Val) {
			return false
		}
	}
	for i := range e.Gens {
		if e.Gens[i].TI.Generation() != e.Gens[i].Gen {
			return false
		}
	}
	return true
}

// stale reports whether the entry can never match again: its epoch or a
// pinned table generation has moved on. Insert prunes stale variants so
// churn cannot pin a flow key full of dead entries.
func (e *Entry) stale(epoch uint64) bool {
	if e.Epoch != epoch {
		return true
	}
	for i := range e.Gens {
		if e.Gens[i].TI.Generation() != e.Gens[i].Gen {
			return true
		}
	}
	return false
}

// Replay applies the entry's recorded outcome to pkt: the write-set
// after-values, and the egress port when the verdict forwards. The
// caller replays the telemetry accounting (Instrs/Lookups/Programs).
func (e *Entry) Replay(pkt *packet.Packet) {
	for i := range e.Post {
		if e.Post[i].Present {
			pkt.SetFieldByID(e.Post[i].FID, e.Post[i].Val)
		}
	}
	if e.Verdict == packet.VerdictForward {
		pkt.EgressPort = e.Egress
	}
}

// Stats is a snapshot of cache activity counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Inserts       uint64
	Invalidations uint64
}

// Cache is one device's flow cache. Lookups and inserts happen inside
// the device's serialized shard computes; invalidation happens on the
// event loop at commit time. The mutex makes the overlap safe when the
// embedding program drives the device outside the simulator's
// serialization (tests, the -race hammer); within the simulator,
// determinism follows because every access is serialized per device.
type Cache struct {
	mu      sync.Mutex
	epoch   uint64
	entries map[packet.FlowKey][]*Entry
	n       int
	stats   Stats
}

// New creates an empty cache accepting entries of the given epoch.
func New(epoch uint64) *Cache {
	return &Cache{epoch: epoch, entries: make(map[packet.FlowKey][]*Entry)}
}

// Lookup returns the entry matching pkt under the given key and device
// epoch, if any, updating hit/miss statistics.
func (c *Cache) Lookup(key packet.FlowKey, epoch uint64, pkt *packet.Packet) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries[key] {
		if e.match(epoch, pkt) {
			c.stats.Hits++
			return e, true
		}
	}
	c.stats.Misses++
	return nil, false
}

// Insert records an entry under key. Entries from a superseded epoch
// are discarded (a commit may land between the recorded run and the
// insert when the device is driven concurrently). Stale variants of the
// key are pruned first; the insert is skipped if live variants already
// fill the key's budget.
func (c *Cache) Insert(key packet.FlowKey, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Epoch != c.epoch {
		return
	}
	vars := c.entries[key]
	live := vars[:0]
	for _, v := range vars {
		if v.stale(c.epoch) {
			c.n--
		} else {
			live = append(live, v)
		}
	}
	if len(live) >= maxVariants {
		c.entries[key] = live
		return
	}
	if c.n >= maxEntries {
		c.resetLocked()
		live = nil
	}
	c.entries[key] = append(live, e)
	c.n++
	c.stats.Inserts++
}

// Invalidate wholesale-clears the cache and advances it to the new
// configuration epoch. Devices call it from every epoch-atomic commit.
func (c *Cache) Invalidate(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
	c.epoch = epoch
	c.stats.Invalidations++
}

func (c *Cache) resetLocked() {
	c.entries = make(map[packet.FlowKey][]*Entry)
	c.n = 0
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
