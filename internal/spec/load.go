package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Load parses a spec document. JSON documents (first non-space byte
// '{') decode directly; everything else goes through the YAML-subset
// parser and is round-tripped through JSON so both formats share one
// schema and identical type checking. The returned spec is validated
// and normalized (tenants and apps in canonical order, default scale
// counts filled in).
func Load(data []byte) (*Spec, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("spec: empty document")
	}
	var raw []byte
	if trimmed[0] == '{' {
		raw = trimmed
	} else {
		v, err := parseYAML(data)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		raw, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("spec: %v", translateDecodeErr(err))
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.normalize()
	return s, nil
}

// LoadFile reads and parses a spec document from disk.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Canonical emits the normalized spec as indented JSON with a trailing
// newline — the round-trip target for golden tests and the "spec
// status" wire format. Loading the output yields an identical spec.
func (s *Spec) Canonical() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Spec has no unmarshalable fields; this cannot happen.
		panic(err)
	}
	return append(out, '\n')
}

// translateDecodeErr makes encoding/json's type errors readable for
// spec authors ("apps[0].segments" instead of Go struct paths).
func translateDecodeErr(err error) error {
	if te, ok := err.(*json.UnmarshalTypeError); ok {
		field := te.Field
		if field == "" {
			field = "document"
		}
		return fmt.Errorf("field %q: want %s, got %s", field, te.Type, te.Value)
	}
	if strings.Contains(err.Error(), "unknown field") {
		return err
	}
	return err
}
