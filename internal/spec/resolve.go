package spec

import (
	"fmt"

	"flexnet/internal/apps"
	"flexnet/internal/compiler"
	"flexnet/internal/flexbpf"
)

// Resolved is a spec with every segment's builtin app kind instantiated
// into a concrete program and fingerprinted. Fingerprints are what the
// differ compares against live state: they ignore program identity
// (compiler.Fingerprint), so "same kind, same args" matches regardless
// of who built the program, while an arg change (a table resize, a new
// QoS rate) produces a new fingerprint and therefore a hitless swap.
type Resolved struct {
	Version string
	Source  *Spec
	// Tenants is sorted.
	Tenants []string
	// Apps is keyed by URI; AppURIs gives deterministic order.
	Apps map[string]*ResolvedApp
}

// AppURIs returns the app URIs in sorted order.
func (r *Resolved) AppURIs() []string {
	uris := make([]string, 0, len(r.Apps))
	for u := range r.Apps {
		uris = append(uris, u)
	}
	sortStrings(uris)
	return uris
}

// ResolvedApp is one app with instantiated segment programs.
type ResolvedApp struct {
	URI      string
	Tenant   string
	Path     []string
	Segments []ResolvedSegment
}

// Segment returns the resolved segment by name, or nil.
func (a *ResolvedApp) Segment(name string) *ResolvedSegment {
	for i := range a.Segments {
		if a.Segments[i].Name == name {
			return &a.Segments[i]
		}
	}
	return nil
}

// Datapath builds the app's flexbpf datapath from the resolved segment
// programs (cloned, so callers may mutate freely).
func (a *ResolvedApp) Datapath() *flexbpf.Datapath {
	segs := make([]*flexbpf.Program, len(a.Segments))
	for i := range a.Segments {
		segs[i] = a.Segments[i].Program.Clone()
	}
	return &flexbpf.Datapath{Name: a.URI, Owner: a.Tenant, Segments: segs}
}

// ResolvedSegment is one segment with its instantiated program.
type ResolvedSegment struct {
	Name    string
	Kind    string
	Args    []uint64
	Scale   int
	Program *flexbpf.Program
	// FP is compiler.Fingerprint(Program) — the identity the differ
	// compares against live segments.
	FP uint64
}

// Resolve validates the spec and instantiates every segment's builtin
// app kind into a program named after the segment.
func Resolve(s *Spec) (*Resolved, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := &Resolved{
		Version: s.Version,
		Source:  s,
		Apps:    make(map[string]*ResolvedApp, len(s.Apps)),
	}
	for _, t := range s.Tenants {
		r.Tenants = append(r.Tenants, t.Name)
	}
	sortStrings(r.Tenants)
	for _, a := range s.Apps {
		ra := &ResolvedApp{URI: a.URI, Tenant: a.Tenant, Path: append([]string(nil), a.Path...)}
		for _, g := range a.Segments {
			prog, err := apps.Builtin(g.App, g.Name, g.Args)
			if err != nil {
				return nil, fmt.Errorf("spec %s: app %s segment %s: %w", s.Version, a.URI, g.Name, err)
			}
			scale := g.Scale
			if scale == 0 {
				scale = 1
			}
			ra.Segments = append(ra.Segments, ResolvedSegment{
				Name:    g.Name,
				Kind:    g.App,
				Args:    append([]uint64(nil), g.Args...),
				Scale:   scale,
				Program: prog,
				FP:      compiler.Fingerprint(prog),
			})
		}
		r.Apps[a.URI] = ra
	}
	return r, nil
}
