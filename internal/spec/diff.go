package spec

import (
	"fmt"
	"sort"
)

func sortStrings(s []string) { sort.Strings(s) }

// Live is the controller's intent state snapshotted into the spec
// vocabulary: which tenants exist, which apps run where, and each live
// segment's program fingerprint and replica set. The controller builds
// it (Controller.LiveSpecState); the differ consumes it.
type Live struct {
	Tenants []string
	Apps    map[string]*LiveApp
}

// LiveApp is one deployed app's intent state.
type LiveApp struct {
	Tenant   string
	Path     []string
	Segments map[string]LiveSegment
}

// LiveSegment is one deployed segment: its program fingerprint and the
// devices carrying replicas (primary first, in install order).
type LiveSegment struct {
	FP       uint64
	Replicas []string
}

// Diff is the minimal change set converging live state to a resolved
// spec. All slices are sorted so diff output, plan compilation and the
// audit trail are deterministic.
type Diff struct {
	Version string

	AddTenants    []string
	RemoveTenants []string

	// Create lists apps in the spec but not live (or whose tenant/path
	// changed, forcing recreate — see Recreate).
	Create []*ResolvedApp
	// Delete lists live app URIs absent from the spec.
	Delete []string
	// Recreate lists app URIs whose identity-level fields (tenant,
	// path) changed; they appear in both Delete and Create.
	Recreate []string

	// Swap lists segments whose program fingerprint changed (a retune:
	// new table size, threshold, rate …) — converged by hitless swap on
	// every replica.
	Swap []SegmentChange
	// ScaleUp / ScaleDown list segments whose replica count differs
	// from the declared scale.
	ScaleUp   []ScaleChange
	ScaleDown []ScaleChange
}

// SegmentChange identifies one segment retune.
type SegmentChange struct {
	URI     string
	Segment string
	// Seg is the desired resolved segment (program + fingerprint).
	Seg *ResolvedSegment
	// Replicas are the live devices the swap must cover.
	Replicas []string
}

// ScaleChange identifies one segment replica-count change.
type ScaleChange struct {
	URI     string
	Segment string
	Seg     *ResolvedSegment
	// Delta is desired minus live replica count (positive for scale-up).
	Delta int
	// Victims, for scale-down, are the devices to vacate — the
	// newest-added replicas first, never the primary.
	Victims []string
}

// Compute diffs desired (resolved spec) against live state. It is pure
// and deterministic: same inputs, same diff, in sorted order.
func Compute(want *Resolved, live *Live) *Diff {
	d := &Diff{Version: want.Version}

	liveTenants := map[string]bool{}
	for _, t := range live.Tenants {
		liveTenants[t] = true
	}
	wantTenants := map[string]bool{}
	for _, t := range want.Tenants {
		wantTenants[t] = true
		if !liveTenants[t] {
			d.AddTenants = append(d.AddTenants, t)
		}
	}
	for _, t := range live.Tenants {
		if !wantTenants[t] {
			d.RemoveTenants = append(d.RemoveTenants, t)
		}
	}
	sortStrings(d.AddTenants)
	sortStrings(d.RemoveTenants)

	for _, uri := range want.AppURIs() {
		ra := want.Apps[uri]
		la, ok := live.Apps[uri]
		if !ok {
			d.Create = append(d.Create, ra)
			continue
		}
		if la.Tenant != ra.Tenant || !equalStrings(la.Path, ra.Path) ||
			!sameSegmentSet(la, ra) {
			// Identity-level change: tear down and redeploy. Segment
			// set changes (add/drop/rename a chain stage) also recreate
			// — the datapath chain is structural, not retunable.
			d.Recreate = append(d.Recreate, uri)
			d.Delete = append(d.Delete, uri)
			d.Create = append(d.Create, ra)
			continue
		}
		for i := range ra.Segments {
			seg := &ra.Segments[i]
			ls := la.Segments[seg.Name]
			if ls.FP != seg.FP {
				d.Swap = append(d.Swap, SegmentChange{
					URI: uri, Segment: seg.Name, Seg: seg,
					Replicas: append([]string(nil), ls.Replicas...),
				})
			}
			if delta := seg.Scale - len(ls.Replicas); delta > 0 {
				d.ScaleUp = append(d.ScaleUp, ScaleChange{URI: uri, Segment: seg.Name, Seg: seg, Delta: delta})
			} else if delta < 0 {
				// Vacate newest replicas first; the primary (index 0)
				// survives as long as scale ≥ 1.
				victims := append([]string(nil), ls.Replicas[seg.Scale:]...)
				for i, j := 0, len(victims)-1; i < j; i, j = i+1, j-1 {
					victims[i], victims[j] = victims[j], victims[i]
				}
				d.ScaleDown = append(d.ScaleDown, ScaleChange{URI: uri, Segment: seg.Name, Seg: seg, Delta: delta, Victims: victims})
			}
		}
	}
	liveURIs := make([]string, 0, len(live.Apps))
	for uri := range live.Apps {
		liveURIs = append(liveURIs, uri)
	}
	sortStrings(liveURIs)
	for _, uri := range liveURIs {
		if _, ok := want.Apps[uri]; !ok {
			d.Delete = append(d.Delete, uri)
		}
	}
	sortStrings(d.Delete)
	sortStrings(d.Recreate)
	return d
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameSegmentSet reports whether the live app carries exactly the
// spec's segment names (chain membership, not tuning).
func sameSegmentSet(la *LiveApp, ra *ResolvedApp) bool {
	if len(la.Segments) != len(ra.Segments) {
		return false
	}
	for i := range ra.Segments {
		if _, ok := la.Segments[ra.Segments[i].Name]; !ok {
			return false
		}
	}
	return true
}

// Empty reports whether live state already matches the spec.
func (d *Diff) Empty() bool {
	return len(d.AddTenants) == 0 && len(d.RemoveTenants) == 0 &&
		len(d.Create) == 0 && len(d.Delete) == 0 &&
		len(d.Swap) == 0 && len(d.ScaleUp) == 0 && len(d.ScaleDown) == 0
}

// Ops counts the imperative per-op API calls this diff would cost if
// replayed through the one-op-one-plan interface: one deploy per
// created app, one scale-out/in per replica delta, one update per
// segment retune, one remove per deleted app, one call per tenant
// change. This is the baseline E19 measures batched plan counts
// against.
func (d *Diff) Ops() int {
	n := len(d.AddTenants) + len(d.RemoveTenants) + len(d.Delete)
	for _, a := range d.Create {
		n++ // deploy
		for i := range a.Segments {
			n += a.Segments[i].Scale - 1 // scale-outs past the primary
		}
	}
	n += len(d.Swap)
	for _, s := range d.ScaleUp {
		n += s.Delta
	}
	for _, s := range d.ScaleDown {
		n += -s.Delta
	}
	return n
}

// Summary renders the diff as deterministic human-readable lines, one
// per change, for `flexctl spec diff`.
func (d *Diff) Summary() []string {
	var out []string
	for _, t := range d.AddTenants {
		out = append(out, fmt.Sprintf("+ tenant %s", t))
	}
	for _, t := range d.RemoveTenants {
		out = append(out, fmt.Sprintf("- tenant %s", t))
	}
	recreate := map[string]bool{}
	for _, uri := range d.Recreate {
		recreate[uri] = true
	}
	for _, uri := range d.Delete {
		if recreate[uri] {
			out = append(out, fmt.Sprintf("~ app %s (recreate: identity changed)", uri))
		} else {
			out = append(out, fmt.Sprintf("- app %s", uri))
		}
	}
	for _, a := range d.Create {
		if recreate[a.URI] {
			continue // already summarized as recreate
		}
		segs := 0
		for i := range a.Segments {
			segs += a.Segments[i].Scale
		}
		out = append(out, fmt.Sprintf("+ app %s (%d segments, %d replicas)", a.URI, len(a.Segments), segs))
	}
	for _, s := range d.Swap {
		out = append(out, fmt.Sprintf("~ swap %s#%s on %d replicas (%s %v)", s.URI, s.Segment, len(s.Replicas), s.Seg.Kind, s.Seg.Args))
	}
	for _, s := range d.ScaleUp {
		out = append(out, fmt.Sprintf("~ scale %s#%s +%d", s.URI, s.Segment, s.Delta))
	}
	for _, s := range d.ScaleDown {
		out = append(out, fmt.Sprintf("~ scale %s#%s %d (vacate %v)", s.URI, s.Segment, s.Delta, s.Victims))
	}
	if len(out) == 0 {
		out = append(out, "(no changes)")
	}
	return out
}
