package spec

import (
	"strings"
	"testing"
)

const demoYAML = `
# Demo network: one tenant, two apps.
version: v1
tenants:
  - name: acme
apps:
  - uri: flexnet://acme/fw
    tenant: acme
    segments:
      - name: fw
        app: firewall
        args: [64, 1024, 0]
        scale: 2
  - uri: flexnet://infra/mon
    path: [s1, s2]
    segments:
      - name: int
        app: int
`

func TestLoadYAML(t *testing.T) {
	s, err := Load([]byte(demoYAML))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != "v1" || len(s.Tenants) != 1 || len(s.Apps) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	// normalize sorts apps by URI: acme/fw before infra/mon.
	fw := s.Apps[0]
	if fw.URI != "flexnet://acme/fw" || fw.Tenant != "acme" {
		t.Fatalf("app[0] = %+v", fw)
	}
	if got := fw.Segments[0].Args; len(got) != 3 || got[0] != 64 || got[1] != 1024 || got[2] != 0 {
		t.Fatalf("args = %v", got)
	}
	if fw.Segments[0].Scale != 2 {
		t.Fatalf("scale = %d", fw.Segments[0].Scale)
	}
	mon := s.Apps[1]
	if mon.Tenant != "" {
		t.Fatalf("infra app tenant = %q, want empty (untenanted)", mon.Tenant)
	}
	if len(mon.Path) != 2 || mon.Path[0] != "s1" {
		t.Fatalf("path = %v", mon.Path)
	}
	if mon.Segments[0].Scale != 1 {
		t.Fatalf("default scale = %d, want 1", mon.Segments[0].Scale)
	}
}

// TestCanonicalRoundTrip is the golden-stability test: loading a spec's
// Canonical() output must yield byte-identical Canonical() output, and
// the YAML and JSON paths must canonicalize identically.
func TestCanonicalRoundTrip(t *testing.T) {
	s, err := Load([]byte(demoYAML))
	if err != nil {
		t.Fatal(err)
	}
	first := s.Canonical()
	s2, err := Load(first)
	if err != nil {
		t.Fatalf("reload canonical: %v", err)
	}
	if got := s2.Canonical(); string(got) != string(first) {
		t.Fatalf("canonical not a fixpoint:\n--- first ---\n%s--- second ---\n%s", first, got)
	}
	// Golden field names: the wire format is an API contract.
	for _, want := range []string{`"version"`, `"tenants"`, `"apps"`, `"uri"`, `"tenant"`, `"segments"`, `"name"`, `"app"`, `"args"`, `"scale"`, `"path"`} {
		if !strings.Contains(string(first), want) {
			t.Errorf("canonical output missing field %s:\n%s", want, first)
		}
	}
}

func TestLoadJSONEqualsYAML(t *testing.T) {
	s, err := Load([]byte(demoYAML))
	if err != nil {
		t.Fatal(err)
	}
	js, err := Load(s.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(js.Canonical()) != string(s.Canonical()) {
		t.Fatal("JSON path and YAML path canonicalize differently")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"empty", "", "empty document"},
		{"no version", "tenants:\n  - name: a", "version is required"},
		{"tabs", "version: v1\n\tapps: []", "tabs are not allowed"},
		{"unknown field", `{"version":"v1","bogus":1}`, "unknown field"},
		{"bad uri", "version: v1\napps:\n  - uri: nope\n    segments:\n      - name: x\n        app: l2", "invalid app URI"},
		{"dup tenant", "version: v1\ntenants:\n  - name: a\n  - name: a", "duplicate tenant"},
		{"undeclared tenant", "version: v1\napps:\n  - uri: flexnet://a/b\n    tenant: ghost\n    segments:\n      - name: x\n        app: l2", "undeclared tenant"},
		{"no segments", "version: v1\napps:\n  - uri: flexnet://a/b\n    segments: []", "no segments"},
		{"dup segment", "version: v1\napps:\n  - uri: flexnet://a/b\n    segments:\n      - name: x\n        app: l2\n      - name: x\n        app: l2", "duplicate segment"},
		{"negative scale", "version: v1\napps:\n  - uri: flexnet://a/b\n    segments:\n      - name: x\n        app: l2\n        scale: -1", "negative scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestResolve(t *testing.T) {
	s, err := Load([]byte(demoYAML))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 2 {
		t.Fatalf("resolved %d apps", len(r.Apps))
	}
	fw := r.Apps["flexnet://acme/fw"]
	if fw == nil || len(fw.Segments) != 1 {
		t.Fatalf("fw = %+v", fw)
	}
	seg := &fw.Segments[0]
	if seg.Program == nil || seg.FP == 0 {
		t.Fatalf("segment not resolved: %+v", seg)
	}
	// Retuning an arg must change the fingerprint; same args must not.
	s2, _ := Load([]byte(strings.Replace(demoYAML, "1024", "2048", 1)))
	r2, err := Resolve(s2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Apps["flexnet://acme/fw"].Segments[0].FP == seg.FP {
		t.Fatal("retuned args kept the same fingerprint")
	}
	r3, _ := Resolve(s)
	if r3.Apps["flexnet://acme/fw"].Segments[0].FP != seg.FP {
		t.Fatal("identical spec resolved to a different fingerprint")
	}
	// Unknown kinds fail with the known set named.
	bad, _ := Load([]byte("version: v1\napps:\n  - uri: flexnet://a/b\n    segments:\n      - name: x\n        app: nosuch"))
	if _, err := Resolve(bad); err == nil || !strings.Contains(err.Error(), "unknown builtin app") {
		t.Fatalf("err = %v", err)
	}
	// Datapath clones: mutating one datapath must not leak into the next.
	dp1, dp2 := fw.Datapath(), fw.Datapath()
	if dp1 == dp2 || dp1.Segments[0] == dp2.Segments[0] {
		t.Fatal("Datapath() did not clone")
	}
}

func TestDiffAgainstEmptyAndSelf(t *testing.T) {
	s, _ := Load([]byte(demoYAML))
	r, err := Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	empty := &Live{Apps: map[string]*LiveApp{}}
	d := Compute(r, empty)
	if d.Empty() {
		t.Fatal("diff vs empty network is empty")
	}
	if len(d.AddTenants) != 1 || len(d.Create) != 2 {
		t.Fatalf("diff = %+v", d)
	}
	// fw scale 2 => deploy + 1 scale-out; mon scale 1 => deploy; + tenant.
	if got := d.Ops(); got != 4 {
		t.Fatalf("Ops() = %d, want 4", got)
	}

	// A live state exactly matching the spec diffs to nothing.
	live := &Live{Tenants: []string{"acme"}, Apps: map[string]*LiveApp{}}
	for uri, ra := range r.Apps {
		la := &LiveApp{Tenant: ra.Tenant, Path: ra.Path, Segments: map[string]LiveSegment{}}
		for i := range ra.Segments {
			seg := &ra.Segments[i]
			devs := make([]string, seg.Scale)
			for j := range devs {
				devs[j] = "s1"
			}
			la.Segments[seg.Name] = LiveSegment{FP: seg.FP, Replicas: devs}
		}
		live.Apps[uri] = la
	}
	if d := Compute(r, live); !d.Empty() {
		t.Fatalf("diff vs matching live state = %v", d.Summary())
	}
}

func TestDiffChangeKinds(t *testing.T) {
	s, _ := Load([]byte(demoYAML))
	r, _ := Resolve(s)
	fw := r.Apps["flexnet://acme/fw"]
	mon := r.Apps["flexnet://infra/mon"]
	live := &Live{Tenants: []string{"acme", "stale"}, Apps: map[string]*LiveApp{
		// fw live with wrong FP and too many replicas -> swap + scale-down.
		"flexnet://acme/fw": {Tenant: "acme", Segments: map[string]LiveSegment{
			"fw": {FP: fw.Segments[0].FP + 1, Replicas: []string{"s1", "s2", "s3"}},
		}},
		// mon live on a different path -> recreate.
		"flexnet://infra/mon": {Tenant: "", Path: []string{"s9"}, Segments: map[string]LiveSegment{
			"int": {FP: mon.Segments[0].FP, Replicas: []string{"s9"}},
		}},
		// An app not in the spec -> delete.
		"flexnet://old/gone": {Tenant: "acme", Segments: map[string]LiveSegment{
			"x": {FP: 1, Replicas: []string{"s1"}},
		}},
	}}
	d := Compute(r, live)
	if len(d.RemoveTenants) != 1 || d.RemoveTenants[0] != "stale" {
		t.Fatalf("RemoveTenants = %v", d.RemoveTenants)
	}
	if len(d.Swap) != 1 || d.Swap[0].Segment != "fw" || len(d.Swap[0].Replicas) != 3 {
		t.Fatalf("Swap = %+v", d.Swap)
	}
	if len(d.ScaleDown) != 1 || d.ScaleDown[0].Delta != -1 {
		t.Fatalf("ScaleDown = %+v", d.ScaleDown)
	}
	// Victims vacate newest-first, never the primary.
	if v := d.ScaleDown[0].Victims; len(v) != 1 || v[0] != "s3" {
		t.Fatalf("Victims = %v", v)
	}
	if len(d.Recreate) != 1 || d.Recreate[0] != "flexnet://infra/mon" {
		t.Fatalf("Recreate = %v", d.Recreate)
	}
	found := false
	for _, uri := range d.Delete {
		if uri == "flexnet://old/gone" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Delete = %v missing removed app", d.Delete)
	}
	// Summary is deterministic and mentions every change class.
	sum := strings.Join(d.Summary(), "\n")
	for _, want := range []string{"- tenant stale", "~ swap", "~ scale", "recreate", "- app flexnet://old/gone"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
