// Package spec implements FlexNet's declarative network specification.
//
// A spec is the desired state of the whole network — tenants, apps,
// placements, per-segment scale counts and table sizes — in one
// versioned document (YAML or JSON). Instead of mutating the network
// with imperative per-op calls (deploy, scale, update, …), an operator
// edits the spec and applies it; the controller diffs the resolved spec
// against live state and compiles the difference into a minimal set of
// batched ChangePlans (DESIGN.md §14). This is the declarative-over-
// imperative shift the paper's runtime-fungible view implies: programs
// and placements are resources you *declare*, and the control plane
// owns the mechanics of converging to them.
//
// The package is a leaf: it knows flexbpf programs (to resolve builtin
// app kinds into datapaths) and nothing about the controller. The
// controller imports it, snapshots its live state into spec.Live, and
// feeds spec.Compute's diff to its wave planner.
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// Spec is the parsed document, before resolution. Field names are the
// wire format for both YAML and JSON inputs.
type Spec struct {
	// Version labels this revision of intent ("v1", "2026-08-08", a git
	// SHA — any non-empty string). It flows into plan reports and the
	// audit trail so every mutation is attributable to a spec revision.
	Version string       `json:"version"`
	Tenants []TenantSpec `json:"tenants,omitempty"`
	Apps    []AppSpec    `json:"apps,omitempty"`
}

// TenantSpec declares one tenant namespace.
type TenantSpec struct {
	Name string `json:"name"`
}

// AppSpec declares one app: a chain of program segments owned by a
// tenant, constrained to a device path.
type AppSpec struct {
	// URI is the app identity, "flexnet://<owner>/<name>".
	URI string `json:"uri"`
	// Tenant must reference a declared tenant. Empty means an
	// untenanted infrastructure app (no VLAN isolation filter), exactly
	// as an empty DeployOptions tenant does.
	Tenant string `json:"tenant,omitempty"`
	// Path constrains placement to these devices (in order), exactly as
	// DeployOptions.Path does. Empty means fabric-wide placement.
	Path []string `json:"path,omitempty"`
	// Segments is the app's datapath, in chain order.
	Segments []SegmentSpec `json:"segments"`
}

// SegmentSpec declares one program segment of an app's datapath.
type SegmentSpec struct {
	// Name is the segment name, unique within the app.
	Name string `json:"name"`
	// App is the builtin app kind ("firewall", "heavy-hitter", …; see
	// apps.BuiltinKinds).
	App string `json:"app"`
	// Args is the kind's numeric argument vector — table sizes, QoS
	// rates, thresholds. Changing an arg retunes the segment: the
	// differ detects the new program fingerprint and emits a hitless
	// swap. Missing args take the kind's defaults.
	Args []uint64 `json:"args,omitempty"`
	// Scale is the desired replica count (default 1). The first replica
	// follows Path placement; extras are placed like scale-out does.
	Scale int `json:"scale,omitempty"`
}

// Validate checks document-level invariants that need no program
// resolution: version present, tenant references valid, URIs unique and
// well-formed, segment names unique, scale counts sane.
func (s *Spec) Validate() error {
	if strings.TrimSpace(s.Version) == "" {
		return fmt.Errorf("spec: version is required")
	}
	tenants := map[string]bool{}
	for _, t := range s.Tenants {
		if t.Name == "" {
			return fmt.Errorf("spec %s: tenant with empty name", s.Version)
		}
		if tenants[t.Name] {
			return fmt.Errorf("spec %s: duplicate tenant %q", s.Version, t.Name)
		}
		tenants[t.Name] = true
	}
	uris := map[string]bool{}
	for _, a := range s.Apps {
		if err := validURI(a.URI); err != nil {
			return fmt.Errorf("spec %s: %w", s.Version, err)
		}
		if uris[a.URI] {
			return fmt.Errorf("spec %s: duplicate app %q", s.Version, a.URI)
		}
		uris[a.URI] = true
		if a.Tenant != "" && !tenants[a.Tenant] {
			return fmt.Errorf("spec %s: app %s references undeclared tenant %q", s.Version, a.URI, a.Tenant)
		}
		if len(a.Segments) == 0 {
			return fmt.Errorf("spec %s: app %s has no segments", s.Version, a.URI)
		}
		segs := map[string]bool{}
		for _, g := range a.Segments {
			if g.Name == "" {
				return fmt.Errorf("spec %s: app %s: segment with empty name", s.Version, a.URI)
			}
			if segs[g.Name] {
				return fmt.Errorf("spec %s: app %s: duplicate segment %q", s.Version, a.URI, g.Name)
			}
			segs[g.Name] = true
			if g.App == "" {
				return fmt.Errorf("spec %s: app %s segment %s: app kind is required", s.Version, a.URI, g.Name)
			}
			if g.Scale < 0 {
				return fmt.Errorf("spec %s: app %s segment %s: negative scale %d", s.Version, a.URI, g.Name, g.Scale)
			}
		}
	}
	return nil
}

// validURI mirrors the controller's URI rule: "flexnet://<owner>/<name>"
// with non-empty owner and name. (Duplicated here rather than imported:
// spec is a leaf package the controller imports.)
func validURI(uri string) error {
	const scheme = "flexnet://"
	if !strings.HasPrefix(uri, scheme) {
		return fmt.Errorf("invalid app URI %q (want flexnet://<owner>/<name>)", uri)
	}
	rest := uri[len(scheme):]
	i := strings.IndexByte(rest, '/')
	if i <= 0 || i == len(rest)-1 {
		return fmt.Errorf("invalid app URI %q (want flexnet://<owner>/<name>)", uri)
	}
	return nil
}

// normalize puts the spec in canonical order — tenants by name, apps by
// URI — so emit output and diffs are deterministic regardless of how
// the author ordered the document. Segment order is preserved: it is
// the datapath chain order and therefore semantic.
func (s *Spec) normalize() {
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Name < s.Tenants[j].Name })
	sort.Slice(s.Apps, func(i, j int) bool { return s.Apps[i].URI < s.Apps[j].URI })
	for i := range s.Apps {
		if s.Apps[i].Segments == nil {
			continue
		}
		for j := range s.Apps[i].Segments {
			if s.Apps[i].Segments[j].Scale == 0 {
				s.Apps[i].Segments[j].Scale = 1
			}
		}
	}
}
