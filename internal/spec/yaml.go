package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// FlexNet specs accept a small YAML subset so documents read naturally
// without pulling in a YAML dependency (the repo is stdlib-only):
//
//   - block mappings ("key: value", "key:" + indented block)
//   - block sequences ("- item", "- key: value" inline-map items)
//   - flow sequences of scalars ("[64, 1024, 0]")
//   - scalars: integers, booleans, null/~, quoted and bare strings
//   - "#" comments and blank lines
//
// Anchors, aliases, multi-line strings, flow mappings and tags are
// intentionally out of scope; JSON input covers anything exotic.

type yamlLine struct {
	indent int
	text   string
	num    int // 1-based source line, for errors
}

// parseYAML decodes the subset into nested map[string]any / []any /
// scalar values, which load.go then round-trips through encoding/json
// into the Spec struct so YAML and JSON share one schema and one set of
// type checks.
func parseYAML(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.ContainsRune(text, '\t') {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed for indentation", i+1)
		}
		lines = append(lines, yamlLine{
			indent: len(text) - len(trimmed),
			text:   strings.TrimRight(trimmed, " "),
			num:    i + 1,
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, n, err := parseNode(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if n != len(lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected de-indent", lines[n].num)
	}
	return v, nil
}

// stripComment removes a "#" comment unless the "#" sits inside a
// quoted scalar.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

// parseNode parses one block node (mapping or sequence) whose lines all
// sit at exactly `indent`. It returns the value and how many lines of
// ls it consumed.
func parseNode(ls []yamlLine, indent int) (any, int, error) {
	if len(ls) == 0 {
		return nil, 0, fmt.Errorf("yaml: empty node")
	}
	if ls[0].indent != indent {
		return nil, 0, fmt.Errorf("yaml line %d: bad indentation (got %d, want %d)", ls[0].num, ls[0].indent, indent)
	}
	if ls[0].text == "-" || strings.HasPrefix(ls[0].text, "- ") {
		return parseSequence(ls, indent)
	}
	return parseMapping(ls, indent)
}

func parseSequence(ls []yamlLine, indent int) (any, int, error) {
	seq := []any{}
	pos := 0
	for pos < len(ls) && ls[pos].indent == indent {
		l := ls[pos]
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, 0, fmt.Errorf("yaml line %d: expected sequence item", l.num)
		}
		content := strings.TrimLeft(strings.TrimPrefix(l.text, "-"), " ")
		// Lines indented past the dash belong to this item.
		end := pos + 1
		for end < len(ls) && ls[end].indent > indent {
			end++
		}
		body := ls[pos+1 : end]
		switch {
		case content == "" && len(body) == 0:
			seq = append(seq, nil)
		case content == "":
			v, n, err := parseNode(body, body[0].indent)
			if err != nil {
				return nil, 0, err
			}
			if n != len(body) {
				return nil, 0, fmt.Errorf("yaml line %d: unexpected de-indent", body[n].num)
			}
			seq = append(seq, v)
		case isMappingLine(content):
			// "- key: value" opens an inline mapping: re-anchor the
			// content at its own column and parse it plus the body as
			// one mapping block.
			head := yamlLine{indent: l.indent + (len(l.text) - len(content)), text: content, num: l.num}
			sub := append([]yamlLine{head}, body...)
			v, n, err := parseMapping(sub, head.indent)
			if err != nil {
				return nil, 0, err
			}
			if n != len(sub) {
				return nil, 0, fmt.Errorf("yaml line %d: unexpected de-indent", sub[n].num)
			}
			seq = append(seq, v)
		default:
			if len(body) != 0 {
				return nil, 0, fmt.Errorf("yaml line %d: scalar item cannot have nested block", l.num)
			}
			v, err := parseScalarOrFlow(content, l.num)
			if err != nil {
				return nil, 0, err
			}
			seq = append(seq, v)
		}
		pos = end
	}
	return seq, pos, nil
}

func parseMapping(ls []yamlLine, indent int) (any, int, error) {
	m := map[string]any{}
	pos := 0
	for pos < len(ls) && ls[pos].indent == indent {
		l := ls[pos]
		key, val, ok := splitKeyValue(l.text)
		if !ok {
			return nil, 0, fmt.Errorf("yaml line %d: expected \"key: value\"", l.num)
		}
		if _, dup := m[key]; dup {
			return nil, 0, fmt.Errorf("yaml line %d: duplicate key %q", l.num, key)
		}
		end := pos + 1
		for end < len(ls) && ls[end].indent > indent {
			end++
		}
		body := ls[pos+1 : end]
		switch {
		case val == "" && len(body) == 0:
			m[key] = nil
		case val == "":
			v, n, err := parseNode(body, body[0].indent)
			if err != nil {
				return nil, 0, err
			}
			if n != len(body) {
				return nil, 0, fmt.Errorf("yaml line %d: unexpected de-indent", body[n].num)
			}
			m[key] = v
		default:
			if len(body) != 0 {
				return nil, 0, fmt.Errorf("yaml line %d: scalar value cannot have nested block", l.num)
			}
			v, err := parseScalarOrFlow(val, l.num)
			if err != nil {
				return nil, 0, err
			}
			m[key] = v
		}
		pos = end
	}
	return m, pos, nil
}

// isMappingLine reports whether a sequence item's inline content opens
// a mapping ("key: value" / "key:") rather than being a scalar.
func isMappingLine(s string) bool {
	_, _, ok := splitKeyValue(s)
	return ok
}

// splitKeyValue splits "key: value" at the first colon that terminates
// a key (followed by a space or end of line) — so values like
// "flexnet://blue/fw" survive intact.
func splitKeyValue(s string) (key, val string, ok bool) {
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") || strings.HasPrefix(s, "[") {
		return "", "", false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != ':' {
			continue
		}
		if i == len(s)-1 {
			return strings.TrimSpace(s[:i]), "", s[:i] != ""
		}
		if s[i+1] == ' ' {
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), s[:i] != ""
		}
	}
	return "", "", false
}

// parseScalarOrFlow parses a scalar or a "[a, b, c]" flow sequence of
// scalars.
func parseScalarOrFlow(s string, line int) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow sequence %q", line, s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		parts := strings.Split(inner, ",")
		out := make([]any, 0, len(parts))
		for _, p := range parts {
			v, err := parseScalar(strings.TrimSpace(p), line)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	return parseScalar(s, line)
}

func parseScalar(s string, line int) (any, error) {
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if strings.HasPrefix(s, "\"") {
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("yaml line %d: bad quoted string %s", line, s)
		}
		return v, nil
	}
	if strings.HasPrefix(s, "'") {
		if !strings.HasSuffix(s, "'") || len(s) < 2 {
			return nil, fmt.Errorf("yaml line %d: bad quoted string %s", line, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if u, err := strconv.ParseUint(s, 10, 64); err == nil {
		return u, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
