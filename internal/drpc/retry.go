package drpc

import (
	"errors"
	"fmt"
	"math/rand"

	"flexnet/internal/packet"
)

// ErrTimeout is returned (wrapped) by CallOpt when every attempt's
// per-attempt deadline expired without a reply.
var ErrTimeout = errors.New("drpc: call timed out")

// CallOpts parameterize a reliable call: a per-attempt reply deadline
// and a capped-exponential retry policy. All durations are simulated
// nanoseconds. See DESIGN.md §10 for the at-most-once semantics.
type CallOpts struct {
	// TimeoutNs is the per-attempt reply deadline. Zero disables the
	// timeout machinery entirely (CallOpt degrades to Call).
	TimeoutNs uint64
	// Attempts is the total number of send attempts, including the
	// first (minimum 1).
	Attempts int
	// BackoffNs is the base gap between a timeout and the resend. It
	// doubles on every retry, is capped at MaxBackoffNs, and carries
	// deterministic jitter in [backoff/2, backoff) drawn from a
	// router-local source seeded by the router's IP — reproducible at
	// a seed, but desynchronized across routers.
	BackoffNs uint64
	// MaxBackoffNs caps the exponential growth (0 = uncapped).
	MaxBackoffNs uint64
}

// DefaultCallOpts is a reasonable reliable-call policy for fabric RTTs:
// 5 ms per-attempt deadline, 4 attempts, 1 ms base backoff capped at
// 8 ms.
func DefaultCallOpts() CallOpts {
	return CallOpts{TimeoutNs: 5_000_000, Attempts: 4, BackoffNs: 1_000_000, MaxBackoffNs: 8_000_000}
}

// SetScheduler wires the router to simulated time: now reads the clock,
// after schedules a callback. The fabric installs this when it enables
// dRPC on a device or host. Without a scheduler, CallOpt falls back to
// a plain Call and interceptor delay verdicts deliver immediately.
func (r *Router) SetScheduler(now func() uint64, after func(delayNs uint64, fn func())) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
	r.after = after
}

// Verdict is an interceptor's decision about one outgoing packet.
type Verdict struct {
	// Drop discards the packet (counted, never sent).
	Drop bool
	// DelayNs holds the packet back before sending (needs a scheduler).
	DelayNs uint64
	// Duplicate sends a clone in addition to the original.
	Duplicate bool
}

// Interceptor inspects every packet this router transmits (requests,
// replies, and notifications) and may drop, delay, or duplicate it.
// The fault plane installs these to model lossy control channels
// (internal/faults); a nil interceptor is the fast path.
type Interceptor func(p *packet.Packet) Verdict

// SetInterceptor installs (or clears, with nil) the transmit
// interceptor.
func (r *Router) SetInterceptor(ic Interceptor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.icept = ic
}

// transmit is the single egress point: it applies the interceptor (if
// any) and hands the packet to the transport.
func (r *Router) transmit(p *packet.Packet) {
	r.mu.Lock()
	ic := r.icept
	after := r.after
	r.mu.Unlock()
	if ic == nil {
		r.send(p)
		return
	}
	v := ic(p)
	if v.Drop {
		r.mu.Lock()
		r.Dropped++
		r.mu.Unlock()
		return
	}
	if v.Duplicate {
		r.mu.Lock()
		r.Duplicated++
		r.mu.Unlock()
		dup := p.Clone()
		if v.DelayNs > 0 && after != nil {
			after(v.DelayNs, func() { r.send(dup) })
		} else {
			r.send(dup)
		}
	}
	if v.DelayNs > 0 && after != nil {
		r.mu.Lock()
		r.Delayed++
		r.mu.Unlock()
		after(v.DelayNs, func() { r.send(p) })
		return
	}
	r.send(p)
}

// jitterLocked draws a deterministic jitter in [0, span) from the
// router-local source. Caller holds r.mu.
func (r *Router) jitterLocked(span uint64) uint64 {
	if span == 0 {
		return 0
	}
	if r.jrng == nil {
		// Seeded from the router's address: reproducible at a seed,
		// but different routers retry at different offsets.
		r.jrng = rand.New(rand.NewSource(int64(r.IP)*2654435761 + 1))
	}
	return uint64(r.jrng.Int63n(int64(span)))
}

// CallOpt sends a request with a per-attempt timeout and capped
// exponential backoff retries. All attempts share one call ID, so a
// late reply to an earlier attempt completes the call and any further
// replies count as orphans — the completion is at-most-once even though
// the request may be delivered (and served) more than once. cb receives
// the reply, its success bit, and a nil error; on exhaustion it receives
// a zero Message, false, and an error wrapping ErrTimeout. Requires a
// scheduler (SetScheduler); without one, or with TimeoutNs == 0, this
// degrades to a plain Call.
func (r *Router) CallOpt(dst uint32, service, method uint64, args [3]uint64, opts CallOpts, cb func(Message, bool, error)) {
	r.mu.Lock()
	after := r.after
	r.mu.Unlock()
	if after == nil || opts.TimeoutNs == 0 {
		r.Call(dst, service, method, args, func(m Message, ok bool) {
			if cb != nil {
				cb(m, ok, nil)
			}
		})
		return
	}
	if opts.Attempts < 1 {
		opts.Attempts = 1
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID<<16 | uint64(r.IP)&0xffff
	r.pending[id] = func(m Message, ok bool) {
		if cb != nil {
			cb(m, ok, nil)
		}
	}
	r.CallsSent++
	r.mu.Unlock()

	m := Message{Service: service, Method: method, CallID: id, Args: args}
	attempt := 1
	send := func(first bool) {
		if !first {
			// A reply may have landed during the backoff wait; if so
			// the call is settled and the resend would only add noise.
			r.mu.Lock()
			_, still := r.pending[id]
			r.mu.Unlock()
			if !still {
				return
			}
		}
		r.transmit(r.newPacket(dst, m))
	}
	var arm func()
	arm = func() {
		after(opts.TimeoutNs, func() {
			r.mu.Lock()
			if _, still := r.pending[id]; !still {
				r.mu.Unlock()
				return // reply arrived in time
			}
			if attempt >= opts.Attempts {
				delete(r.pending, id)
				r.Timeouts++
				r.mu.Unlock()
				if cb != nil {
					cb(Message{}, false, fmt.Errorf("drpc: service %d method %d to %d: %w after %d attempts", service, method, dst, ErrTimeout, attempt))
				}
				return
			}
			attempt++
			r.Retries++
			r.CallsSent++
			backoff := opts.BackoffNs << uint(attempt-2) // first retry waits the base
			if opts.MaxBackoffNs > 0 && backoff > opts.MaxBackoffNs {
				backoff = opts.MaxBackoffNs
			}
			wait := backoff/2 + r.jitterLocked(backoff/2)
			r.mu.Unlock()
			after(wait, func() {
				send(false)
				arm()
			})
		})
	}
	send(true)
	arm()
}
