package drpc

import (
	"testing"

	"flexnet/internal/packet"
)

// loopback wires two routers directly (no network): whatever either
// sends is delivered to the other synchronously.
func loopback() (*Router, *Router) {
	var seq uint64
	var a, b *Router
	a = NewRouter(1, &seq, func(p *packet.Packet) { b.Deliver(p) })
	b = NewRouter(2, &seq, func(p *packet.Packet) { a.Deliver(p) })
	return a, b
}

func TestCallReply(t *testing.T) {
	a, b := loopback()
	if err := b.Register(ServicePing, PingHandler()); err != nil {
		t.Fatal(err)
	}
	var got uint64
	okSeen := false
	a.Call(2, ServicePing, 0, [3]uint64{777, 0, 0}, func(m Message, ok bool) {
		got = m.Args[0]
		okSeen = ok
	})
	if !okSeen || got != 777 {
		t.Fatalf("echo = %d ok=%v", got, okSeen)
	}
	if a.CallsSent != 1 || a.RepliesSeen != 1 || b.CallsServed != 1 {
		t.Fatalf("stats: sent=%d replies=%d served=%d", a.CallsSent, a.RepliesSeen, b.CallsServed)
	}
}

func TestUnknownServiceErrorReply(t *testing.T) {
	a, b := loopback()
	gotErr := false
	a.Call(2, 999, 0, [3]uint64{}, func(m Message, ok bool) { gotErr = !ok })
	if !gotErr {
		t.Fatal("no error reply for unknown service")
	}
	if b.UnknownCalls != 1 {
		t.Fatalf("unknown calls = %d", b.UnknownCalls)
	}
}

func TestNotifyOneWay(t *testing.T) {
	a, b := loopback()
	var seen []uint64
	b.Register(ServiceUser, func(from uint32, m Message) *Message {
		seen = append(seen, m.Args[0])
		return nil // one-way: no reply even though handler ran
	})
	a.Notify(2, ServiceUser, 0, [3]uint64{1, 0, 0})
	a.Notify(2, ServiceUser, 0, [3]uint64{2, 0, 0})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("seen = %v", seen)
	}
	if a.RepliesSeen != 0 {
		t.Fatal("one-way notify produced replies")
	}
}

func TestDuplicateRegister(t *testing.T) {
	a, _ := loopback()
	if err := a.Register(ServicePing, PingHandler()); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(ServicePing, PingHandler()); err == nil {
		t.Fatal("duplicate register accepted")
	}
	a.Unregister(ServicePing)
	if err := a.Register(ServicePing, PingHandler()); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
}

func TestOrphanReply(t *testing.T) {
	a, b := loopback()
	b.Register(ServicePing, PingHandler())
	// Forge a reply with an unknown call id.
	forged := packet.New(99)
	forged.AddHeader("eth")
	forged.AddHeader("ipv4")
	forged.SetField("ipv4.src", 2)
	forged.SetField("ipv4.dst", 1)
	forged.AddHeader("drpc")
	forged.SetField("drpc.flags", FlagReply)
	forged.SetField("drpc.callid", 123456)
	if !a.Deliver(forged) {
		t.Fatal("reply not consumed")
	}
	if a.OrphanReplies != 1 {
		t.Fatalf("orphans = %d", a.OrphanReplies)
	}
	_ = b
}

func TestDeliverNonDRPC(t *testing.T) {
	a, _ := loopback()
	p := packet.UDPPacket(1, 1, 2, 3, 4, 10)
	if a.Deliver(p) {
		t.Fatal("consumed a non-drpc packet")
	}
}

func TestCallIDsDistinctAcrossRouters(t *testing.T) {
	// Two routers calling the same destination must not collide on call
	// IDs (the ID embeds the caller's IP).
	var seq uint64
	sink := map[uint64]int{}
	var target *Router
	mkCaller := func(ip uint32) *Router {
		return NewRouter(ip, &seq, func(p *packet.Packet) { target.Deliver(p) })
	}
	target = NewRouter(9, &seq, func(p *packet.Packet) {})
	target.Register(ServicePing, func(from uint32, m Message) *Message {
		sink[m.CallID]++
		return nil // no reply needed
	})
	c1 := mkCaller(100)
	c2 := mkCaller(200)
	for i := 0; i < 10; i++ {
		c1.Call(9, ServicePing, 0, [3]uint64{}, nil)
		c2.Call(9, ServicePing, 0, [3]uint64{}, nil)
	}
	for id, n := range sink {
		if n != 1 {
			t.Fatalf("call id %d reused %d times", id, n)
		}
	}
	if len(sink) != 20 {
		t.Fatalf("distinct ids = %d", len(sink))
	}
}

func TestRegistryHandler(t *testing.T) {
	reg, h := NewRegistry()
	// Announce then look up.
	resp := h(1, Message{Method: RegistryAnnounce, Args: [3]uint64{ServiceUser, 42, 0}})
	if resp == nil || resp.Flags&FlagError != 0 {
		t.Fatal("announce failed")
	}
	resp = h(1, Message{Method: RegistryLookup, Args: [3]uint64{ServiceUser, 0, 0}})
	if resp == nil || resp.Args[1] != 42 {
		t.Fatalf("lookup = %+v", resp)
	}
	if ip, ok := reg.Lookup(ServiceUser); !ok || ip != 42 {
		t.Fatal("local lookup broken")
	}
	// Withdraw.
	h(1, Message{Method: RegistryWithdraw, Args: [3]uint64{ServiceUser, 0, 0}})
	resp = h(1, Message{Method: RegistryLookup, Args: [3]uint64{ServiceUser, 0, 0}})
	if resp.Flags&FlagError == 0 {
		t.Fatal("withdrawn service still resolves")
	}
	// Unknown method.
	if resp := h(1, Message{Method: 99}); resp.Flags&FlagError == 0 {
		t.Fatal("unknown method accepted")
	}
}

func TestMessageRoundTripThroughPacket(t *testing.T) {
	var seq uint64
	var got Message
	var from uint32
	recv := NewRouter(7, &seq, nil)
	recv.Register(ServiceUser, func(f uint32, m Message) *Message {
		got = m
		from = f
		return nil
	})
	send := NewRouter(3, &seq, func(p *packet.Packet) {
		// Serialize to wire bytes and back: the drpc header must survive
		// a real parse.
		raw, err := packet.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		q := packet.New(0)
		if err := packet.StandardParseGraph().Parse(raw, q); err != nil {
			t.Fatal(err)
		}
		recv.Deliver(q)
	})
	send.Notify(7, ServiceUser, 5, [3]uint64{0xDEADBEEF, 1 << 40, 7})
	if got.Args[0] != 0xDEADBEEF || got.Args[1] != 1<<40 || got.Args[2] != 7 || got.Method != 5 {
		t.Fatalf("message corrupted over the wire: %+v", got)
	}
	if from != 3 {
		t.Fatalf("from = %d", from)
	}
}

func TestServicesList(t *testing.T) {
	a, _ := loopback()
	a.Register(ServicePing, PingHandler())
	a.Register(ServiceUser, PingHandler())
	if got := len(a.Services()); got != 2 {
		t.Fatalf("services = %d", got)
	}
}
