package drpc

import (
	"errors"
	"testing"
	"time"

	"flexnet/internal/netsim"
	"flexnet/internal/packet"
)

// simLoopback is loopback() plus a simulated clock driving a's retry
// machinery.
func simLoopback(t *testing.T) (*netsim.Sim, *Router, *Router) {
	t.Helper()
	sim := netsim.New(1)
	a, b := loopback()
	sched := func(r *Router) {
		r.SetScheduler(
			func() uint64 { return uint64(sim.Now()) },
			func(d uint64, fn func()) { sim.After(netsim.Time(d), fn) },
		)
	}
	sched(a)
	sched(b)
	if err := b.Register(ServicePing, PingHandler()); err != nil {
		t.Fatal(err)
	}
	return sim, a, b
}

// Losing the first attempt must not lose the call: the retry succeeds
// and the caller sees exactly one completion.
func TestCallOptRetriesAfterDrop(t *testing.T) {
	sim, a, _ := simLoopback(t)
	drops := 1
	a.SetInterceptor(func(p *packet.Packet) Verdict {
		if drops > 0 {
			drops--
			return Verdict{Drop: true}
		}
		return Verdict{}
	})
	completions := 0
	var got uint64
	a.CallOpt(2, ServicePing, 0, [3]uint64{42, 0, 0}, DefaultCallOpts(), func(m Message, ok bool, err error) {
		completions++
		if !ok || err != nil {
			t.Fatalf("retry failed: ok=%v err=%v", ok, err)
		}
		got = m.Args[0]
	})
	sim.RunFor(100 * time.Millisecond)
	if completions != 1 || got != 42 {
		t.Fatalf("completions=%d got=%d", completions, got)
	}
	if a.Retries != 1 || a.Dropped != 1 || a.Timeouts != 0 {
		t.Fatalf("retries=%d dropped=%d timeouts=%d", a.Retries, a.Dropped, a.Timeouts)
	}
}

// When every attempt is lost the caller gets ErrTimeout, once.
func TestCallOptExhaustion(t *testing.T) {
	sim, a, b := simLoopback(t)
	a.SetInterceptor(func(p *packet.Packet) Verdict { return Verdict{Drop: true} })
	completions := 0
	var gotErr error
	a.CallOpt(2, ServicePing, 0, [3]uint64{1, 0, 0}, DefaultCallOpts(), func(m Message, ok bool, err error) {
		completions++
		if ok {
			t.Fatal("ok despite total loss")
		}
		gotErr = err
	})
	sim.RunFor(time.Second)
	if completions != 1 {
		t.Fatalf("completions = %d", completions)
	}
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if a.Timeouts != 1 || a.Retries != 3 {
		t.Fatalf("timeouts=%d retries=%d", a.Timeouts, a.Retries)
	}
	if b.CallsServed != 0 {
		t.Fatalf("server saw %d calls", b.CallsServed)
	}
}

// A duplicated request is served twice but completes the call once; the
// extra reply is an orphan, not a second completion.
func TestCallOptDuplicateAtMostOnce(t *testing.T) {
	sim, a, b := simLoopback(t)
	first := true
	a.SetInterceptor(func(p *packet.Packet) Verdict {
		if first {
			first = false
			return Verdict{Duplicate: true}
		}
		return Verdict{}
	})
	completions := 0
	a.CallOpt(2, ServicePing, 0, [3]uint64{9, 0, 0}, DefaultCallOpts(), func(m Message, ok bool, err error) {
		completions++
		if !ok || err != nil {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
	})
	sim.RunFor(100 * time.Millisecond)
	if completions != 1 {
		t.Fatalf("completions = %d", completions)
	}
	if b.CallsServed != 2 {
		t.Fatalf("served = %d, want 2 (original + duplicate)", b.CallsServed)
	}
	if a.OrphanReplies != 1 {
		t.Fatalf("orphans = %d, want 1", a.OrphanReplies)
	}
}

// Without a scheduler CallOpt degrades to a plain synchronous Call.
func TestCallOptWithoutScheduler(t *testing.T) {
	a, b := loopback()
	if err := b.Register(ServicePing, PingHandler()); err != nil {
		t.Fatal(err)
	}
	done := false
	a.CallOpt(2, ServicePing, 0, [3]uint64{5, 0, 0}, DefaultCallOpts(), func(m Message, ok bool, err error) {
		done = ok && err == nil && m.Args[0] == 5
	})
	if !done {
		t.Fatal("fallback call did not complete synchronously")
	}
}

// Delay verdicts hold packets back on the simulated clock.
func TestInterceptorDelay(t *testing.T) {
	sim, a, _ := simLoopback(t)
	a.SetInterceptor(func(p *packet.Packet) Verdict {
		return Verdict{DelayNs: uint64(2 * time.Millisecond)}
	})
	var doneAt time.Duration
	a.CallOpt(2, ServicePing, 0, [3]uint64{1, 0, 0}, DefaultCallOpts(), func(m Message, ok bool, err error) {
		doneAt = sim.Now()
	})
	sim.RunFor(100 * time.Millisecond)
	// Only a's egress is intercepted: the request is held 2ms, the
	// reply comes straight back.
	if doneAt < 2*time.Millisecond {
		t.Fatalf("completed at %v, expected ≥2ms of injected delay", doneAt)
	}
	if a.Delayed == 0 {
		t.Fatal("no delayed packets counted")
	}
}
