// Package drpc implements FlexNet's data-plane RPC (§3.4 "dRPCs"): the
// infrastructure program exposes a set of in-network services (state
// push, telemetry read, ping, discovery) that other devices and tenant
// datapaths invoke with packets, not control-plane software. Calls are
// carried in a dedicated header (packet.ProtoDRPC) and travel through
// the same simulated network as data traffic, so their cost and loss
// behaviour is the network's.
//
// Reliable delivery — CallOpt retries, at-most-once completion — is specified in DESIGN.md §10.2.
package drpc

import (
	"fmt"
	"math/rand"
	"sync"

	"flexnet/internal/packet"
)

// Well-known service IDs.
const (
	// ServiceRegistry answers discovery queries (§3.4 "Service discovery
	// occurs either at control plane or via an in-network RPC registry").
	ServiceRegistry uint64 = 1
	// ServicePing is a liveness echo.
	ServicePing uint64 = 2
	// ServiceStatePush receives logical state chunks (migration,
	// replication).
	ServiceStatePush uint64 = 3
	// ServiceTelemetry reads counters remotely.
	ServiceTelemetry uint64 = 4
	// ServiceHA carries controller-replica coordination: heartbeats,
	// leader-election votes, replication syncs, and backlog fetches
	// (internal/controller/cluster, DESIGN.md §15).
	ServiceHA uint64 = 5
	// ServiceUser is the first ID available to tenant services.
	ServiceUser uint64 = 16
)

// Flags bits.
const (
	// FlagReply marks a response message.
	FlagReply uint64 = 1 << 0
	// FlagError marks a failed call.
	FlagError uint64 = 1 << 1
)

// Message is a parsed dRPC header.
type Message struct {
	Service uint64
	Method  uint64
	Flags   uint64
	CallID  uint64
	Args    [3]uint64
}

// FromPacket extracts the message from a packet carrying a drpc header.
func FromPacket(p *packet.Packet) (Message, bool) {
	if !p.Has("drpc") {
		return Message{}, false
	}
	return Message{
		Service: p.Field("drpc.service"),
		Method:  p.Field("drpc.method"),
		Flags:   p.Field("drpc.flags"),
		CallID:  p.Field("drpc.callid"),
		Args: [3]uint64{
			p.Field("drpc.arg0"),
			p.Field("drpc.arg1"),
			p.Field("drpc.arg2"),
		},
	}, true
}

// store writes the message into a packet's drpc fields.
func (m Message) store(p *packet.Packet) {
	p.AddHeader("drpc")
	p.SetField("drpc.service", m.Service)
	p.SetField("drpc.method", m.Method)
	p.SetField("drpc.flags", m.Flags)
	p.SetField("drpc.callid", m.CallID)
	p.SetField("drpc.arg0", m.Args[0])
	p.SetField("drpc.arg1", m.Args[1])
	p.SetField("drpc.arg2", m.Args[2])
}

// Handler serves one service. It returns a reply message (flags are
// managed by the router) or nil for one-way notifications.
type Handler func(from uint32, m Message) *Message

// Transport injects a packet into the network on behalf of a router.
// The fabric provides this.
type Transport func(p *packet.Packet)

// Router is a device's dRPC endpoint: a service table plus pending-call
// tracking. One Router is attached per participating device (or
// controller host).
type Router struct {
	// IP is the router's address in the routed fabric.
	IP uint32

	mu       sync.Mutex
	services map[uint64]Handler
	pending  map[uint64]func(Message, bool)
	nextID   uint64
	send     Transport
	seq      *uint64

	// Simulated clock, wired by SetScheduler. Both nil until the fabric
	// enables dRPC; CallOpt and delay verdicts need them.
	now   func() uint64
	after func(delayNs uint64, fn func())
	// jrng supplies deterministic retry jitter (lazily seeded from IP).
	jrng *rand.Rand
	// icept, when set, inspects every transmitted packet (fault plane).
	icept Interceptor

	// Stats.
	CallsSent     uint64
	CallsServed   uint64
	RepliesSeen   uint64
	UnknownCalls  uint64
	OrphanReplies uint64
	// Retry/fault-path stats (see retry.go).
	Retries    uint64
	Timeouts   uint64
	Dropped    uint64
	Delayed    uint64
	Duplicated uint64
}

// NewRouter creates a router addressed by ip, sending through transport.
// seq supplies packet IDs (shared with the fabric).
func NewRouter(ip uint32, seq *uint64, send Transport) *Router {
	return &Router{
		IP:       ip,
		services: map[uint64]Handler{},
		pending:  map[uint64]func(Message, bool){},
		send:     send,
		seq:      seq,
	}
}

// Register installs a service handler. Registering a duplicate ID is an
// error.
func (r *Router) Register(service uint64, h Handler) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.services[service]; dup {
		return fmt.Errorf("drpc: service %d already registered", service)
	}
	r.services[service] = h
	return nil
}

// Unregister removes a service.
func (r *Router) Unregister(service uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.services, service)
}

// Services returns registered service IDs.
func (r *Router) Services() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, 0, len(r.services))
	for id := range r.services {
		out = append(out, id)
	}
	return out
}

func (r *Router) newPacket(dst uint32, m Message) *packet.Packet {
	r.mu.Lock()
	*r.seq++
	id := *r.seq
	r.mu.Unlock()
	p := packet.New(id)
	p.AddHeader("eth")
	p.SetField("eth.type", packet.EtherTypeIPv4)
	p.AddHeader("ipv4")
	p.SetField("ipv4.version", 4)
	p.SetField("ipv4.ihl", 5)
	p.SetField("ipv4.ttl", 64)
	p.SetField("ipv4.proto", packet.ProtoDRPC)
	p.SetField("ipv4.src", uint64(r.IP))
	p.SetField("ipv4.dst", uint64(dst))
	m.store(p)
	return p
}

// Call sends a request to dst and registers cb for the reply. cb's bool
// is false when the reply carries FlagError.
func (r *Router) Call(dst uint32, service, method uint64, args [3]uint64, cb func(Message, bool)) {
	r.mu.Lock()
	r.nextID++
	id := r.nextID<<16 | uint64(r.IP)&0xffff // avoid cross-router collisions
	if cb != nil {
		r.pending[id] = cb
	}
	r.CallsSent++
	r.mu.Unlock()
	m := Message{Service: service, Method: method, CallID: id, Args: args}
	r.transmit(r.newPacket(dst, m))
}

// Notify sends a one-way message (no reply expected).
func (r *Router) Notify(dst uint32, service, method uint64, args [3]uint64) {
	r.mu.Lock()
	r.CallsSent++
	r.mu.Unlock()
	m := Message{Service: service, Method: method, Args: args}
	r.transmit(r.newPacket(dst, m))
}

// Deliver processes an arriving dRPC packet addressed to this router.
// It returns true when the packet was consumed.
func (r *Router) Deliver(p *packet.Packet) bool {
	m, ok := FromPacket(p)
	if !ok {
		return false
	}
	from := uint32(p.Field("ipv4.src"))
	if m.Flags&FlagReply != 0 {
		r.mu.Lock()
		cb := r.pending[m.CallID]
		delete(r.pending, m.CallID)
		r.RepliesSeen++
		if cb == nil {
			r.OrphanReplies++
		}
		r.mu.Unlock()
		if cb != nil {
			cb(m, m.Flags&FlagError == 0)
		}
		return true
	}
	r.mu.Lock()
	h := r.services[m.Service]
	r.mu.Unlock()
	if h == nil {
		r.mu.Lock()
		r.UnknownCalls++
		r.mu.Unlock()
		if m.CallID != 0 {
			reply := Message{Service: m.Service, Method: m.Method, Flags: FlagReply | FlagError, CallID: m.CallID}
			r.transmit(r.newPacket(from, reply))
		}
		return true
	}
	r.mu.Lock()
	r.CallsServed++
	r.mu.Unlock()
	resp := h(from, m)
	if resp != nil && m.CallID != 0 {
		resp.Service = m.Service
		resp.CallID = m.CallID
		resp.Flags |= FlagReply
		r.transmit(r.newPacket(from, *resp))
	}
	return true
}

// Registry is the in-network service discovery directory: service ID →
// provider IP. It runs as ServiceRegistry on some router (typically the
// infrastructure's).
type Registry struct {
	mu      sync.Mutex
	entries map[uint64]uint32
}

// Registry methods.
const (
	RegistryLookup uint64 = iota
	RegistryAnnounce
	RegistryWithdraw
)

// NewRegistry creates an empty registry and returns both it and the
// handler to register on a router.
func NewRegistry() (*Registry, Handler) {
	reg := &Registry{entries: map[uint64]uint32{}}
	h := func(from uint32, m Message) *Message {
		switch m.Method {
		case RegistryAnnounce:
			reg.mu.Lock()
			reg.entries[m.Args[0]] = uint32(m.Args[1])
			reg.mu.Unlock()
			return &Message{Args: [3]uint64{m.Args[0], m.Args[1], 0}}
		case RegistryWithdraw:
			reg.mu.Lock()
			delete(reg.entries, m.Args[0])
			reg.mu.Unlock()
			return &Message{}
		case RegistryLookup:
			reg.mu.Lock()
			ip, ok := reg.entries[m.Args[0]]
			reg.mu.Unlock()
			if !ok {
				return &Message{Flags: FlagError}
			}
			return &Message{Args: [3]uint64{m.Args[0], uint64(ip), 0}}
		default:
			return &Message{Flags: FlagError}
		}
	}
	return reg, h
}

// Lookup reads the registry locally (control-plane path).
func (reg *Registry) Lookup(service uint64) (uint32, bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	ip, ok := reg.entries[service]
	return ip, ok
}

// PingHandler returns a ServicePing handler echoing arg0.
func PingHandler() Handler {
	return func(from uint32, m Message) *Message {
		return &Message{Args: [3]uint64{m.Args[0], 0, 0}}
	}
}
