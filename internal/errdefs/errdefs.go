// Package errdefs holds the sentinel errors shared across FlexNet's
// layers. Internal packages wrap these with %w so callers can classify
// failures with errors.Is instead of string matching; the public flexnet
// package re-exports them.
//
// It lives in its own leaf package (rather than in flexnet proper)
// because internal packages cannot import the public facade without a
// cycle.
//
// DESIGN.md §2 maps the layers these errors cross.
package errdefs

import "errors"

var (
	// ErrNoSuchApp reports an operation on an app URI that is not
	// deployed (or a segment that is not placed).
	ErrNoSuchApp = errors.New("no such app")

	// ErrInsufficientResources reports that a device (or the fabric as a
	// whole) cannot reserve the resources a program demands.
	ErrInsufficientResources = errors.New("insufficient resources")

	// ErrVerifyFailed reports that a program failed FlexBPF verification
	// and was refused before touching any device.
	ErrVerifyFailed = errors.New("program verification failed")

	// ErrDeviceDown reports a control-plane operation against a device
	// that is down (failed or administratively disabled).
	ErrDeviceDown = errors.New("device down")

	// ErrUnknownDevice reports an operation naming a device the fabric
	// does not have. Placement paths return it instead of silently
	// compiling onto a smaller target set when a path entry is bogus.
	ErrUnknownDevice = errors.New("unknown device")

	// ErrFailover reports a plan interrupted by a controller failover:
	// the leader died before the plan's commit instant, so the new
	// leader rolled its staged changes back (DESIGN.md §15.3). The
	// operation never took effect and can be resubmitted.
	ErrFailover = errors.New("interrupted by controller failover")
)
