package controller

// This file holds the controller's fast-path state structures
// (DESIGN.md §13.2): per-tenant state shards with fine-grained locking,
// the generation-keyed compile-target cache, and the bounded punt ring.
//
// Sharding exists so that control-plane operations on disjoint tenants
// never contend on one controller-wide structure: an app lookup locks
// only the shard its owner hashes to, and the simulator's executor can
// interleave disjoint-tenant plans without the controller serializing
// them on shared state. The simulator's event loop is single-threaded,
// so the locks cost nothing there; they make the same structures safe
// for multi-goroutine drivers (benchmarks, future daemon frontends).

import (
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"flexnet/internal/compiler"
	"flexnet/internal/fabric"
)

// numShards is the controller state shard count. Eight is comfortably
// above the concurrency any experiment drives while keeping the
// all-shard scan (Apps) trivial.
const numShards = 8

// stateShard is one lock domain of controller state: the apps and
// tenants whose owner hashes here.
type stateShard struct {
	mu      sync.Mutex
	apps    map[string]*App
	tenants map[string]*Tenant
}

// shardedState is the controller's app/tenant registry, sharded by
// owner so disjoint tenants never share a lock.
type shardedState struct {
	shards [numShards]*stateShard
}

func newShardedState() *shardedState {
	s := &shardedState{}
	for i := range s.shards {
		s.shards[i] = &stateShard{apps: map[string]*App{}, tenants: map[string]*Tenant{}}
	}
	return s
}

// uriOwner extracts the owner component of an app URI
// ("flexnet://tenant-a/app" → "tenant-a"); apps shard by owner so one
// tenant's control state lives behind one lock.
func uriOwner(uri string) string {
	rest := strings.TrimPrefix(uri, "flexnet://")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

func (s *shardedState) shardFor(owner string) *stateShard {
	h := fnv.New32a()
	h.Write([]byte(owner))
	return s.shards[h.Sum32()%numShards]
}

func (s *shardedState) app(uri string) *App {
	sh := s.shardFor(uriOwner(uri))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.apps[uri]
}

func (s *shardedState) putApp(app *App) {
	sh := s.shardFor(uriOwner(app.URI))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.apps[app.URI] = app
}

func (s *shardedState) deleteApp(uri string) {
	sh := s.shardFor(uriOwner(uri))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.apps, uri)
}

// appURIs returns every deployed URI in sorted order (all-shard scan).
func (s *shardedState) appURIs() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for u := range sh.apps {
			out = append(out, u)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// tenantNames returns every admitted tenant in sorted order (all-shard
// scan) — the spec differ's live-tenant view.
func (s *shardedState) tenantNames() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for n := range sh.tenants {
			out = append(out, n)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

func (s *shardedState) tenant(name string) *Tenant {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tenants[name]
}

func (s *shardedState) putTenant(t *Tenant) {
	sh := s.shardFor(t.Name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.tenants[t.Name] = t
}

func (s *shardedState) deleteTenant(name string) {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.tenants, name)
}

// addTenantApp / removeTenantApp mutate a tenant's app list under its
// shard lock (tenant and its apps share a shard by construction).
func (s *shardedState) addTenantApp(tenant, uri string) {
	sh := s.shardFor(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t := sh.tenants[tenant]; t != nil {
		t.Apps = append(t.Apps, uri)
	}
}

func (s *shardedState) removeTenantApp(tenant, uri string) {
	sh := s.shardFor(tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t := sh.tenants[tenant]
	if t == nil {
		return
	}
	for i, u := range t.Apps {
		if u == uri {
			t.Apps = append(t.Apps[:i], t.Apps[i+1:]...)
			return
		}
	}
}

// targetCache is the controller's compile-target inventory, keyed by
// fabric generation (device count — fabric membership only grows).
// Before this cache, every planning operation rebuilt the full target
// list by walking fab.Devices(); now the list is rebuilt only when a
// device joins, and lookups by name are O(1). DeviceTarget objects are
// stable across refreshes because they carry state (MarkRemovable).
type targetCache struct {
	mu     sync.Mutex
	fab    *fabric.Fabric
	gen    int
	byName map[string]*compiler.DeviceTarget
	all    []compiler.Target
}

func newTargetCache(fab *fabric.Fabric) *targetCache {
	tc := &targetCache{fab: fab, byName: map[string]*compiler.DeviceTarget{}}
	tc.mu.Lock()
	tc.refreshLocked()
	tc.mu.Unlock()
	return tc
}

func (tc *targetCache) refreshLocked() {
	names := tc.fab.Devices()
	if len(names) == tc.gen {
		return
	}
	for _, n := range names {
		if _, ok := tc.byName[n]; !ok {
			tc.byName[n] = compiler.NewDeviceTarget(tc.fab.Device(n))
		}
	}
	all := make([]compiler.Target, 0, len(names))
	for _, n := range names {
		all = append(all, tc.byName[n])
	}
	tc.all = all
	tc.gen = len(names)
}

// list returns the cached full target list in fab.Devices() order.
func (tc *targetCache) list() []compiler.Target {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.refreshLocked()
	return tc.all
}

// get returns the target for one device, or nil if the fabric has no
// such device.
func (tc *targetCache) get(name string) *compiler.DeviceTarget {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if t, ok := tc.byName[name]; ok {
		return t
	}
	tc.refreshLocked()
	return tc.byName[name]
}

// size returns the fabric device count (the full-scan cost term).
func (tc *targetCache) size() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.refreshLocked()
	return len(tc.all)
}

// DefaultPuntRingSize bounds the controller's punt buffer.
const DefaultPuntRingSize = 4096

// PuntRing is a bounded ring buffer of punted packets. The old
// controller appended every punt to an unbounded slice, which grows
// without limit under punt-heavy workloads; the ring keeps the newest
// DefaultPuntRingSize records and counts overwritten ones
// ("ctl.punts_dropped").
type PuntRing struct {
	mu      sync.Mutex
	buf     []PuntRecord
	head    int // index of the oldest record
	n       int
	dropped uint64
	// onDrop fires once per overwritten record; the controller uses it
	// to create the drop counter lazily so punt-light runs export an
	// unchanged telemetry snapshot.
	onDrop func()
}

// NewPuntRing creates a ring holding up to capacity records (<=0 uses
// DefaultPuntRingSize).
func NewPuntRing(capacity int) *PuntRing {
	if capacity <= 0 {
		capacity = DefaultPuntRingSize
	}
	return &PuntRing{buf: make([]PuntRecord, capacity)}
}

// Append records one punt, overwriting the oldest record when full.
func (r *PuntRing) Append(rec PuntRecord) {
	r.mu.Lock()
	var drop func()
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = rec
		r.n++
	} else {
		r.buf[r.head] = rec
		r.head = (r.head + 1) % len(r.buf)
		r.dropped++
		drop = r.onDrop
	}
	r.mu.Unlock()
	if drop != nil {
		drop()
	}
}

// Len returns the number of buffered records.
func (r *PuntRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// All returns the buffered records, oldest first.
func (r *PuntRing) All() []PuntRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PuntRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Dropped returns how many records were overwritten.
func (r *PuntRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
