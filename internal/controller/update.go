package controller

import (
	"fmt"

	"flexnet/internal/dataplane"
	"flexnet/internal/dataplane/state"
	"flexnet/internal/flexbpf"
	"flexnet/internal/flexbpf/delta"
	"flexnet/internal/runtime"
)

// UpdateApp applies an incremental change (a §3.2 delta) to one segment
// of a deployed app, live:
//
//  1. The delta is applied to the segment's logical program and the
//     result re-verified.
//  2. The change is validated against the hosting devices' free
//     resources (grow-in-place; a change that no longer fits fails
//     without touching the network — callers can then Migrate first).
//  3. Each replica swaps old→new atomically, carrying over the state of
//     every stateful object that survives the delta.
//
// done receives the per-application report and the first error.
func (c *Controller) UpdateApp(uri, segment string, d *delta.Delta, done func(*delta.Report, error)) {
	fail := func(err error) {
		if done != nil {
			done(nil, err)
		}
	}
	app := c.apps[uri]
	if app == nil {
		fail(fmt.Errorf("controller: no app %q", uri))
		return
	}
	seg := app.Datapath.Segment(segment)
	if seg == nil {
		fail(fmt.Errorf("controller: app %q has no segment %q", uri, segment))
		return
	}
	newProg, rep, err := delta.Apply(seg, d)
	if err != nil {
		fail(err)
		return
	}

	// Resource check: the *growth* must fit on every hosting device.
	oldDemand := flexbpf.ProgramDemand(seg)
	newDemand := flexbpf.ProgramDemand(newProg)
	growth := newDemand.Sub(oldDemand)
	devs := app.Replicas[segment]
	if len(devs) == 0 {
		fail(fmt.Errorf("controller: app %q segment %q not placed", uri, segment))
		return
	}
	for _, devName := range devs {
		dev := c.fab.Device(devName)
		if dev == nil {
			fail(fmt.Errorf("controller: device %q vanished", devName))
			return
		}
		free := dev.Free()
		if !growth.Fits(free) {
			fail(fmt.Errorf("controller: delta grows %q by %v, which does not fit on %s (free %v) — migrate first",
				segment, growth, devName, free))
			return
		}
	}

	var filter *flexbpf.Cond
	if app.Tenant != "" {
		if t := c.tenants[app.Tenant]; t != nil {
			filter = &flexbpf.Cond{Field: "vlan.vid", Op: flexbpf.CmpEq, Value: t.VLAN}
		}
	}

	instName := instanceName(uri, segment)
	remaining := len(devs)
	var firstErr error
	for _, devName := range devs {
		dev := c.fab.Device(devName)
		ch := &updateChange{
			dev:      dev,
			instName: instName,
			newProg:  newProg,
			filter:   filter,
		}
		c.eng.ApplyRuntime(&runtime.Change{Device: dev}, func(r runtime.Result) {
			// ApplyRuntime modelled the latency; perform the actual
			// state-preserving swap now.
			if err := ch.execute(); err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				if firstErr == nil {
					// Commit the logical view.
					for i, s := range app.Datapath.Segments {
						if s.Name == segment {
							app.Datapath.Segments[i] = newProg
						}
					}
				}
				if done != nil {
					done(rep, firstErr)
				}
			}
		})
	}
}

// updateChange swaps one instance for its upgraded version, migrating
// surviving state and table entries across the swap.
type updateChange struct {
	dev      *dataplane.Device
	instName string
	newProg  *flexbpf.Program
	filter   *flexbpf.Cond
}

func (u *updateChange) execute() error {
	old := u.dev.Instance(u.instName)
	if old == nil {
		return fmt.Errorf("controller: instance %q missing on %s", u.instName, u.dev.Name())
	}
	// Capture state and entries before the swap.
	savedState := old.ExportState()
	savedEntries := map[string][]*flexbpf.TableEntry{}
	for name, ti := range old.Tables() {
		savedEntries[name] = ti.Entries()
	}

	prog := u.newProg.Clone()
	prog.Name = u.instName
	err := u.dev.Swap(func(st *dataplane.StagedConfig) error {
		if err := st.Remove(u.instName); err != nil {
			return err
		}
		return st.Install(prog, u.filter)
	})
	if err != nil {
		return err
	}
	inst := u.dev.Instance(u.instName)
	// Restore state for objects that survived the delta (removed objects
	// are skipped; new objects start empty).
	surviving := map[string]bool{}
	for _, n := range inst.Store().Names() {
		surviving[n] = true
	}
	var keep []state.Logical
	for _, l := range savedState {
		if surviving[l.Name] {
			keep = append(keep, l)
		}
	}
	if err := inst.ImportState(keep); err != nil {
		return err
	}
	// Restore entries for surviving tables whose shape is unchanged.
	for name, entries := range savedEntries {
		ti := inst.Table(name)
		if ti == nil {
			continue
		}
		for _, e := range entries {
			if err := ti.Insert(e); err != nil {
				// Shape or capacity changed: skip incompatible entries
				// rather than failing the whole upgrade; the report told
				// the caller which tables were touched.
				break
			}
		}
	}
	return nil
}
