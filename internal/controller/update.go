package controller

import (
	"context"
	"fmt"

	"flexnet/internal/errdefs"
	"flexnet/internal/flexbpf"
	"flexnet/internal/flexbpf/delta"
	"flexnet/internal/plan"
)

// PlanUpdate applies a delta to one segment's logical program and builds
// the swap plan over every hosting replica. The new program and the
// delta report are returned alongside the plan; nothing is executed.
// Resource (grow-in-place) and verifier checks happen in the executor's
// validate phase.
//
// An update is in-place by contract: the placement is recompiled
// incrementally against the app's previous plan, and if the grown
// program no longer fits on its current devices — the recompiler would
// have to move it — the update is rejected with ErrInsufficientResources
// rather than silently relocating live instances. Callers then Migrate
// (or Redeploy) first, which owns move semantics.
func (c *Controller) PlanUpdate(uri, segment string, d *delta.Delta) (*plan.ChangePlan, *flexbpf.Program, *delta.Report, error) {
	app := c.state.app(uri)
	if app == nil {
		return nil, nil, nil, fmt.Errorf("controller: no app %q: %w", uri, errdefs.ErrNoSuchApp)
	}
	seg := app.Datapath.Segment(segment)
	if seg == nil {
		return nil, nil, nil, fmt.Errorf("controller: app %q has no segment %q: %w", uri, segment, errdefs.ErrNoSuchApp)
	}
	newProg, rep, err := delta.Apply(seg, d)
	if err != nil {
		return nil, nil, nil, err
	}
	devs := app.Replicas[segment]
	if len(devs) == 0 {
		return nil, nil, nil, fmt.Errorf("controller: app %q segment %q not placed: %w", uri, segment, errdefs.ErrNoSuchApp)
	}
	// Re-place the updated datapath against the previous plan. Segments
	// the delta didn't touch must keep their devices; the updated one
	// must grow in place.
	newDP := &flexbpf.Datapath{Name: app.Datapath.Name, Owner: app.Datapath.Owner, SLA: app.Datapath.SLA}
	newDP.Segments = make([]*flexbpf.Program, len(app.Datapath.Segments))
	for i, s := range app.Datapath.Segments {
		if s.Name == segment {
			newDP.Segments[i] = newProg
		} else {
			newDP.Segments[i] = s
		}
	}
	inc, scanned, segs, err := c.placeDatapath(app, newDP)
	if err != nil {
		return nil, nil, nil, err
	}
	if inc.Moves > 0 || len(inc.Place) > 0 {
		return nil, nil, nil, fmt.Errorf(
			"controller: update of %s/%s no longer fits in place (%d segment(s) would move); migrate first: %w",
			uri, segment, len(inc.Place), errdefs.ErrInsufficientResources)
	}
	cp := plan.New(fmt.Sprintf("update %s#%s", uri, segment))
	filter := c.tenantFilter(app.Tenant)
	for _, devName := range devs {
		cp.Swap(devName, instanceName(uri, segment), newProg, filter)
	}
	cp.Planning(c.planningCharge(scanned, segs))
	return cp, newProg, rep, nil
}

// UpdateApp applies an incremental change (a §3.2 delta) to one segment
// of a deployed app, live:
//
//  1. The delta is applied to the segment's logical program and the
//     result re-verified.
//  2. The placement is recompiled incrementally: untouched segments stay
//     put, the updated segment must grow in place (a change that no
//     longer fits fails without touching the network — callers can then
//     Migrate first). The plan's validate phase re-checks free resources
//     on the hosting devices.
//  3. Each replica swaps old→new atomically — all replicas at one
//     simulated instant — carrying over the state of every stateful
//     object that survives the delta. Any failure rolls every replica
//     back to the old program, state intact.
//
// done receives the per-application report and the first error.
func (c *Controller) UpdateApp(ctx context.Context, uri, segment string, d *delta.Delta, done func(*delta.Report, error)) {
	count := c.instrument("update", nil)
	inner := done
	done = func(r *delta.Report, err error) {
		count(err)
		if inner != nil {
			inner(r, err)
		}
	}
	cp, newProg, rep, err := c.PlanUpdate(uri, segment, d)
	if err != nil {
		if done != nil {
			done(nil, err)
		}
		return
	}
	app := c.state.app(uri)
	c.exec.ExecuteCtx(ctx, cp, func(r *plan.Report) {
		c.lastReport = r
		if r.Err == nil {
			// Commit the logical view.
			for i, s := range app.Datapath.Segments {
				if s.Name == segment {
					app.Datapath.Segments[i] = newProg
				}
			}
		}
		if done != nil {
			done(rep, r.Err)
		}
	})
}
