package controller

import (
	"context"
	"strings"
	"testing"
	"time"

	"flexnet/internal/apps"
	"flexnet/internal/compiler"
	"flexnet/internal/dataplane"
	"flexnet/internal/fabric"
	"flexnet/internal/flexbpf"
	"flexnet/internal/migrate"
	"flexnet/internal/netsim"
	"flexnet/internal/packet"
	"flexnet/internal/runtime"
)

// testbed: h1 — s1 — s2 — h2 with two switches and a host-capable NIC.
func testbed(t *testing.T) (*fabric.Fabric, *Controller) {
	t.Helper()
	f := fabric.New(11)
	f.AddSwitch("s1", dataplane.ArchDRMT)
	f.AddSwitch("s2", dataplane.ArchRMT)
	f.AddSwitch("nic1", dataplane.ArchSoC)
	f.AddHost("h1", packet.IP(10, 0, 0, 1))
	f.AddHost("h2", packet.IP(10, 0, 0, 2))
	f.Connect("h1", "nic1", netsim.DefaultLink())
	f.Connect("nic1", "s1", netsim.DefaultLink())
	f.Connect("s1", "s2", netsim.DefaultLink())
	f.Connect("s2", "h2", netsim.DefaultLink())
	if _, err := f.EnableDRPC("s1", packet.IP(172, 16, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.EnableDRPC("s2", packet.IP(172, 16, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.InstallBaseRouting(); err != nil {
		t.Fatal(err)
	}
	eng := runtime.NewEngine(f.Sim, runtime.DefaultCosts())
	return f, New(f, eng, compiler.StrategyFungible)
}

func deploy(t *testing.T, f *fabric.Fabric, c *Controller, uri string, dp *flexbpf.Datapath, opts DeployOptions) {
	t.Helper()
	var err error
	doneAt := netsim.Time(0)
	c.Deploy(context.Background(), uri, dp, opts, func(e error) { err = e; doneAt = f.Sim.Now() })
	f.Sim.RunFor(2 * time.Second)
	if doneAt == 0 {
		t.Fatalf("deploy %s never completed", uri)
	}
	if err != nil {
		t.Fatalf("deploy %s: %v", uri, err)
	}
}

func TestValidURI(t *testing.T) {
	good := []string{"flexnet://infra/routing", "flexnet://t1/syn-defense"}
	bad := []string{"", "http://x/y", "flexnet://", "flexnet://a", "flexnet://a/b/c"}
	for _, u := range good {
		if !ValidURI(u) {
			t.Errorf("ValidURI(%q) = false", u)
		}
	}
	for _, u := range bad {
		if ValidURI(u) {
			t.Errorf("ValidURI(%q) = true", u)
		}
	}
}

func TestDeployAndRemove(t *testing.T) {
	f, c := testbed(t)
	dp := &flexbpf.Datapath{
		Name:     "mon",
		Segments: []*flexbpf.Program{apps.HeavyHitter("hh", 2, 256, 1000)},
	}
	deploy(t, f, c, "flexnet://infra/monitor", dp, DeployOptions{})

	app := c.App("flexnet://infra/monitor")
	if app == nil || app.Status != StatusRunning {
		t.Fatalf("app = %+v", app)
	}
	dev := app.Replicas["hh"][0]
	if f.Device(dev).Instance("flexnet://infra/monitor#hh") == nil {
		t.Fatalf("program not installed on %s", dev)
	}

	var rmErr error
	removed := false
	c.Remove(context.Background(), "flexnet://infra/monitor", func(e error) { rmErr = e; removed = true })
	f.Sim.RunFor(2 * time.Second)
	if !removed || rmErr != nil {
		t.Fatalf("remove: %v (done=%v)", rmErr, removed)
	}
	if f.Device(dev).Instance("flexnet://infra/monitor#hh") != nil {
		t.Fatal("program still installed after removal")
	}
	if c.App("flexnet://infra/monitor") != nil {
		t.Fatal("app still registered")
	}
}

func TestDeployErrors(t *testing.T) {
	f, c := testbed(t)
	dp := &flexbpf.Datapath{Name: "x", Segments: []*flexbpf.Program{apps.SYNDefense("sd", 64, 5)}}
	var err error
	c.Deploy(context.Background(), "not-a-uri", dp, DeployOptions{}, func(e error) { err = e })
	if err == nil {
		t.Fatal("malformed URI accepted")
	}
	c.Deploy(context.Background(), "flexnet://t/unknown-tenant", dp, DeployOptions{Tenant: "ghost"}, func(e error) { err = e })
	if err == nil {
		t.Fatal("unknown tenant accepted")
	}
	deploy(t, f, c, "flexnet://infra/sd", dp, DeployOptions{})
	c.Deploy(context.Background(), "flexnet://infra/sd", dp.Clone(), DeployOptions{}, func(e error) { err = e })
	if err == nil {
		t.Fatal("duplicate URI accepted")
	}
}

func TestTenantIsolationDeployment(t *testing.T) {
	f, c := testbed(t)
	tn, err := c.AddTenant("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddTenant("acme"); err == nil {
		t.Fatal("duplicate tenant admitted")
	}
	dp := &flexbpf.Datapath{Name: "sd", Segments: []*flexbpf.Program{apps.SYNDefense("sd", 128, 3)}}
	deploy(t, f, c, "flexnet://acme/sd", dp, DeployOptions{Tenant: "acme", Path: []string{"s1"}})

	// The tenant's defense applies only to its VLAN.
	s1 := f.Device("s1")
	var seq uint64
	mk := func(vlan uint64, i int) *packet.Packet {
		b := packet.NewBuilder(&seq).Eth(1, 2)
		if vlan != 0 {
			b = b.VLAN(vlan)
		}
		return b.IPv4(packet.IP(66, 0, 0, 1), packet.IP(10, 0, 0, 2)).
			TCP(uint16(i), 80, packet.TCPSyn).Build()
	}
	drops := 0
	for i := 0; i < 10; i++ {
		if st := s1.Process(mk(tn.VLAN, i)); st.Verdict == packet.VerdictDrop {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("tenant defense never fired in its VLAN")
	}
	for i := 0; i < 10; i++ {
		if st := s1.Process(mk(999, i)); st.Verdict == packet.VerdictDrop {
			t.Fatal("tenant defense fired outside its VLAN")
		}
	}
}

func TestRemoveTenantReclaimsResources(t *testing.T) {
	f, c := testbed(t)
	if _, err := c.AddTenant("acme"); err != nil {
		t.Fatal(err)
	}
	free0 := f.Device("s1").Free()
	dp1 := &flexbpf.Datapath{Name: "a", Segments: []*flexbpf.Program{apps.SYNDefense("sd", 128, 3)}}
	dp2 := &flexbpf.Datapath{Name: "b", Segments: []*flexbpf.Program{apps.HeavyHitter("hh", 2, 128, 100)}}
	deploy(t, f, c, "flexnet://acme/a", dp1, DeployOptions{Tenant: "acme", Path: []string{"s1"}})
	deploy(t, f, c, "flexnet://acme/b", dp2, DeployOptions{Tenant: "acme", Path: []string{"s1"}})
	if f.Device("s1").Free() == free0 {
		t.Fatal("deployments consumed nothing")
	}
	var rmErr error
	done := false
	c.RemoveTenant(context.Background(), "acme", func(e error) { rmErr = e; done = true })
	f.Sim.RunFor(2 * time.Second)
	if !done || rmErr != nil {
		t.Fatalf("remove tenant: %v done=%v", rmErr, done)
	}
	if f.Device("s1").Free() != free0 {
		t.Fatalf("resources not reclaimed: %v != %v", f.Device("s1").Free(), free0)
	}
	if c.Tenant("acme") != nil {
		t.Fatal("tenant still admitted")
	}
}

func TestScaleOutIn(t *testing.T) {
	f, c := testbed(t)
	dp := &flexbpf.Datapath{Name: "sd", Segments: []*flexbpf.Program{apps.SYNDefense("sd", 128, 3)}}
	deploy(t, f, c, "flexnet://infra/sd", dp, DeployOptions{Path: []string{"s1"}})

	var err error
	c.ScaleOut(context.Background(), "flexnet://infra/sd", "sd", "s2", func(e error) { err = e })
	f.Sim.RunFor(time.Second)
	if err != nil {
		t.Fatalf("scale out: %v", err)
	}
	app := c.App("flexnet://infra/sd")
	if len(app.Replicas["sd"]) != 2 {
		t.Fatalf("replicas = %v", app.Replicas)
	}
	if f.Device("s2").Instance("flexnet://infra/sd#sd") == nil {
		t.Fatal("replica not installed on s2")
	}

	// Duplicate replica refused.
	c.ScaleOut(context.Background(), "flexnet://infra/sd", "sd", "s2", func(e error) { err = e })
	f.Sim.RunFor(time.Second)
	if err == nil {
		t.Fatal("duplicate replica accepted")
	}

	// Scale in back to one.
	c.ScaleIn(context.Background(), "flexnet://infra/sd", "sd", "s2", func(e error) { err = e })
	f.Sim.RunFor(time.Second)
	if err != nil {
		t.Fatalf("scale in: %v", err)
	}
	if f.Device("s2").Instance("flexnet://infra/sd#sd") != nil {
		t.Fatal("replica still installed")
	}
	// Refuse removing the last replica.
	c.ScaleIn(context.Background(), "flexnet://infra/sd", "sd", "s1", func(e error) { err = e })
	f.Sim.RunFor(time.Second)
	if err == nil || !strings.Contains(err.Error(), "last replica") {
		t.Fatalf("last replica removed: %v", err)
	}
}

func TestControllerMigrate(t *testing.T) {
	f, c := testbed(t)
	dp := &flexbpf.Datapath{Name: "mon", Segments: []*flexbpf.Program{apps.HeavyHitter("hh", 2, 128, 1<<60)}}
	deploy(t, f, c, "flexnet://infra/mon", dp, DeployOptions{Path: []string{"s1"}})

	// Drive some traffic so there is state.
	h1 := f.Host("h1")
	src := h1.NewSource(netsim.FlowSpec{Dst: packet.IP(10, 0, 0, 2), Proto: packet.ProtoTCP, SrcPort: 1, DstPort: 80, PacketLen: 100})
	src.StartCBR(20000)
	f.Sim.RunFor(50 * time.Millisecond)

	var rep migrateReport
	c.Migrate(context.Background(), MigrateRequest{URI: "flexnet://infra/mon", Segment: "hh", Dst: "s2", DataPlane: true}, func(r migrate.Report) { rep = migrateReport{r.LostUpdates, r.Err} })
	f.Sim.RunFor(2 * time.Second)
	src.Stop()
	if rep.err != nil {
		t.Fatalf("migrate: %v", rep.err)
	}
	if rep.lost != 0 {
		t.Fatalf("lost %d updates", rep.lost)
	}
	app := c.App("flexnet://infra/mon")
	if app.Replicas["hh"][0] != "s2" {
		t.Fatalf("replica registry not updated: %v", app.Replicas)
	}
	if f.Device("s1").Instance("flexnet://infra/mon#hh") != nil {
		t.Fatal("source instance survived migration")
	}
	if f.Device("s2").Instance("flexnet://infra/mon#hh") == nil {
		t.Fatal("destination instance missing")
	}
}

type migrateReport struct {
	lost uint64
	err  error
}

func TestResourceViewAndMarkRemovable(t *testing.T) {
	f, c := testbed(t)
	dp := &flexbpf.Datapath{Name: "sd", Segments: []*flexbpf.Program{apps.SYNDefense("sd", 128, 3)}}
	deploy(t, f, c, "flexnet://infra/sd", dp, DeployOptions{Path: []string{"s1"}})

	view := c.ResourceView()
	if len(view) != 3 {
		t.Fatalf("view = %d devices", len(view))
	}
	for _, r := range view {
		if r.Device == "s1" && len(r.Programs) < 2 { // routing + sd
			t.Fatalf("s1 programs = %v", r.Programs)
		}
	}
	if err := c.MarkRemovable("flexnet://infra/sd"); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkRemovable("flexnet://ghost/x"); err == nil {
		t.Fatal("marked unknown app removable")
	}
}

func TestPuntsReachController(t *testing.T) {
	f, c := testbed(t)
	// HeavyHitter with threshold 10 punts the heavy flow once.
	dp := &flexbpf.Datapath{Name: "mon", Segments: []*flexbpf.Program{apps.HeavyHitter("hh", 2, 128, 10)}}
	deploy(t, f, c, "flexnet://infra/mon", dp, DeployOptions{Path: []string{"s1"}})
	h1 := f.Host("h1")
	src := h1.NewSource(netsim.FlowSpec{Dst: packet.IP(10, 0, 0, 2), Proto: packet.ProtoTCP, SrcPort: 7, DstPort: 80, PacketLen: 100})
	src.StartCBR(10000)
	f.Sim.RunFor(100 * time.Millisecond)
	src.Stop()
	if c.Punts.Len() != 1 {
		t.Fatalf("punts = %d, want 1", c.Punts.Len())
	}
	if c.Punts.All()[0].Device != "s1" {
		t.Fatalf("punt from %s", c.Punts.All()[0].Device)
	}
}
