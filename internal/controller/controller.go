// Package controller implements FlexNet's central controller (§3.4
// "Real-time Network Control"): it pilots a runtime-programmable fabric
// with *app-level* abstractions — applications are named by URIs and
// managed as first-class objects (deploy, remove, migrate, scale,
// query), with the translation into low-level device operations
// (program installs, table entries, parser edits) done automatically.
//
// It also implements the paper's multi-tenant scenario (§3): tenants are
// admitted with a VLAN allocation; their extension programs are isolated
// by VLAN filters; departures trigger program removal and resource
// reclamation.
package controller

import (
	"fmt"
	"sort"
	"strings"

	"flexnet/internal/compiler"
	"flexnet/internal/fabric"
	"flexnet/internal/flexbpf"
	"flexnet/internal/migrate"
	"flexnet/internal/netsim"
	"flexnet/internal/packet"
	"flexnet/internal/runtime"
)

// AppStatus is an application's lifecycle state.
type AppStatus uint8

// Application states.
const (
	StatusDeploying AppStatus = iota
	StatusRunning
	StatusMigrating
	StatusRemoving
	StatusFailed
)

func (s AppStatus) String() string {
	switch s {
	case StatusDeploying:
		return "deploying"
	case StatusRunning:
		return "running"
	case StatusMigrating:
		return "migrating"
	case StatusRemoving:
		return "removing"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// App is a managed application: a datapath deployed under a URI handle.
type App struct {
	// URI names the app ("flexnet://tenant-a/syn-defense").
	URI string
	// Tenant is the owning tenant ("" = infrastructure).
	Tenant string
	// Datapath is the logical program chain.
	Datapath *flexbpf.Datapath
	// Plan is the current placement.
	Plan *compiler.Plan
	// Replicas maps segment name → devices hosting replicas (the first
	// is the primary from Plan; extras come from ScaleOut).
	Replicas map[string][]string
	Status   AppStatus
}

// instanceName is the device-level program name for an app segment.
func instanceName(uri, segment string) string {
	return uri + "#" + segment
}

// Tenant is an admitted tenant with its isolation VLAN.
type Tenant struct {
	Name string
	VLAN uint64
	Apps []string
}

// Controller pilots one fabric.
type Controller struct {
	fab  *fabric.Fabric
	eng  *runtime.Engine
	comp *compiler.Compiler
	mig  *migrate.Migrator

	apps    map[string]*App
	tenants map[string]*Tenant
	targets map[string]*compiler.DeviceTarget
	// nextVLAN allocates tenant VLANs.
	nextVLAN uint64

	// Punts receives packets the data plane sends to the controller.
	Punts []PuntRecord
	// OnPunt, when set, is called for each punted packet.
	OnPunt func(dev string, pkt *packet.Packet)
}

// PuntRecord is one packet punted to the controller.
type PuntRecord struct {
	Device string
	At     netsim.Time
	FlowID uint64
}

// New creates a controller over the fabric.
func New(fab *fabric.Fabric, eng *runtime.Engine, strategy compiler.Strategy) *Controller {
	c := &Controller{
		fab:      fab,
		eng:      eng,
		comp:     compiler.New(strategy),
		mig:      migrate.New(fab, eng),
		apps:     map[string]*App{},
		tenants:  map[string]*Tenant{},
		targets:  map[string]*compiler.DeviceTarget{},
		nextVLAN: 100,
	}
	for _, name := range fab.Devices() {
		c.targets[name] = compiler.NewDeviceTarget(fab.Device(name))
	}
	c.mig.Flip = func(prog, src, dst string) {
		// Migration flip: the source instance is removed; traffic
		// reaching dst is processed by the new instance.
		_ = fab.Device(src).RemoveProgram(prog)
	}
	fab.Punted = func(dev string, pkt *packet.Packet) {
		c.Punts = append(c.Punts, PuntRecord{Device: dev, At: fab.Sim.Now(), FlowID: pkt.FlowKey().Hash()})
		if c.OnPunt != nil {
			c.OnPunt(dev, pkt)
		}
	}
	return c
}

// Compiler exposes the placement compiler (for strategy tweaks).
func (c *Controller) Compiler() *compiler.Compiler { return c.comp }

// Migrator exposes the migrator.
func (c *Controller) Migrator() *migrate.Migrator { return c.mig }

// ValidURI checks the app URI shape: flexnet://<owner>/<name>.
func ValidURI(uri string) bool {
	if !strings.HasPrefix(uri, "flexnet://") {
		return false
	}
	rest := strings.TrimPrefix(uri, "flexnet://")
	parts := strings.Split(rest, "/")
	return len(parts) == 2 && parts[0] != "" && parts[1] != ""
}

// AddTenant admits a tenant and allocates its isolation VLAN.
func (c *Controller) AddTenant(name string) (*Tenant, error) {
	if _, dup := c.tenants[name]; dup {
		return nil, fmt.Errorf("controller: tenant %q already admitted", name)
	}
	t := &Tenant{Name: name, VLAN: c.nextVLAN}
	c.nextVLAN++
	c.tenants[name] = t
	return t, nil
}

// Tenant returns an admitted tenant, or nil.
func (c *Controller) Tenant(name string) *Tenant { return c.tenants[name] }

// RemoveTenant removes a tenant and all of its apps, reclaiming their
// resources (§1.1 "Tenant departures trigger program removal to trim the
// network and release unused resources"). done fires when all removals
// committed.
func (c *Controller) RemoveTenant(name string, done func(error)) {
	t := c.tenants[name]
	if t == nil {
		done(fmt.Errorf("controller: no tenant %q", name))
		return
	}
	uris := append([]string(nil), t.Apps...)
	remaining := len(uris)
	if remaining == 0 {
		delete(c.tenants, name)
		done(nil)
		return
	}
	var firstErr error
	for _, uri := range uris {
		c.Remove(uri, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				delete(c.tenants, name)
				done(firstErr)
			}
		})
	}
}

// DeployOptions tunes a deployment.
type DeployOptions struct {
	// Path restricts placement to these devices in traffic order
	// (nil = any device).
	Path []string
	// Tenant attributes the app and applies VLAN isolation filters.
	Tenant string
}

// Deploy compiles and installs an app's datapath under the URI handle.
// done receives the final error (nil on success) after all devices
// commit.
func (c *Controller) Deploy(uri string, dp *flexbpf.Datapath, opts DeployOptions, done func(error)) {
	fail := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if !ValidURI(uri) {
		fail(fmt.Errorf("controller: malformed app URI %q", uri))
		return
	}
	if _, dup := c.apps[uri]; dup {
		fail(fmt.Errorf("controller: app %q already deployed", uri))
		return
	}
	var filter *flexbpf.Cond
	if opts.Tenant != "" {
		t := c.tenants[opts.Tenant]
		if t == nil {
			fail(fmt.Errorf("controller: tenant %q not admitted", opts.Tenant))
			return
		}
		filter = &flexbpf.Cond{Field: "vlan.vid", Op: flexbpf.CmpEq, Value: t.VLAN}
	}

	// Compile against current device state.
	targets := c.targetList(opts.Path)
	plan, err := c.comp.Compile(dp, targets, opts.Path)
	if err != nil {
		fail(err)
		return
	}
	if err := compiler.CheckSLA(plan, dp); err != nil {
		fail(err)
		return
	}

	app := &App{
		URI:      uri,
		Tenant:   opts.Tenant,
		Datapath: dp,
		Plan:     plan,
		Replicas: map[string][]string{},
		Status:   StatusDeploying,
	}
	c.apps[uri] = app
	if opts.Tenant != "" {
		t := c.tenants[opts.Tenant]
		t.Apps = append(t.Apps, uri)
	}

	// Translate the plan into per-device runtime changes.
	nc := &runtime.NetworkChange{Mode: runtime.ConsistencySimultaneous}
	byDevice := map[string]*runtime.Change{}
	for _, a := range plan.Assignments {
		seg := dp.Segment(a.Segment)
		prog := seg.Clone()
		prog.Name = instanceName(uri, a.Segment)
		ch := byDevice[a.Device]
		if ch == nil {
			ch = &runtime.Change{Device: c.fab.Device(a.Device)}
			byDevice[a.Device] = ch
			nc.Changes = append(nc.Changes, ch)
		}
		ch.Installs = append(ch.Installs, runtime.Install{Program: prog, Filter: filter})
		app.Replicas[a.Segment] = []string{a.Device}
	}
	c.eng.ApplyNetworkRuntime(nc, func(total netsim.Time, errs []error) {
		if len(errs) > 0 {
			// Release the URI so a corrected deployment can retry.
			app.Status = StatusFailed
			delete(c.apps, uri)
			if opts.Tenant != "" {
				if t := c.tenants[opts.Tenant]; t != nil {
					for i, u := range t.Apps {
						if u == uri {
							t.Apps = append(t.Apps[:i], t.Apps[i+1:]...)
							break
						}
					}
				}
			}
			fail(errs[0])
			return
		}
		app.Status = StatusRunning
		if done != nil {
			done(nil)
		}
	})
}

// targetList returns compile targets, restricted to path when given.
func (c *Controller) targetList(path []string) []compiler.Target {
	var names []string
	if path != nil {
		names = path
	} else {
		names = c.fab.Devices()
	}
	var out []compiler.Target
	for _, n := range names {
		if t, ok := c.targets[n]; ok {
			out = append(out, t)
		}
	}
	return out
}

// App returns the app registered under uri, or nil.
func (c *Controller) App(uri string) *App { return c.apps[uri] }

// Apps returns deployed URIs in sorted order.
func (c *Controller) Apps() []string {
	out := make([]string, 0, len(c.apps))
	for u := range c.apps {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Remove uninstalls an app everywhere and releases its resources.
func (c *Controller) Remove(uri string, done func(error)) {
	app := c.apps[uri]
	if app == nil {
		if done != nil {
			done(fmt.Errorf("controller: no app %q", uri))
		}
		return
	}
	app.Status = StatusRemoving
	nc := &runtime.NetworkChange{Mode: runtime.ConsistencySimultaneous}
	byDevice := map[string]*runtime.Change{}
	for seg, devs := range app.Replicas {
		for _, dev := range devs {
			ch := byDevice[dev]
			if ch == nil {
				ch = &runtime.Change{Device: c.fab.Device(dev)}
				byDevice[dev] = ch
				nc.Changes = append(nc.Changes, ch)
			}
			ch.Removes = append(ch.Removes, instanceName(uri, seg))
		}
	}
	c.eng.ApplyNetworkRuntime(nc, func(total netsim.Time, errs []error) {
		delete(c.apps, uri)
		if app.Tenant != "" {
			if t := c.tenants[app.Tenant]; t != nil {
				for i, u := range t.Apps {
					if u == uri {
						t.Apps = append(t.Apps[:i], t.Apps[i+1:]...)
						break
					}
				}
			}
		}
		if done != nil {
			if len(errs) > 0 {
				done(errs[0])
			} else {
				done(nil)
			}
		}
	})
}

// ScaleOut installs an additional replica of an app segment on a device
// (elastic defenses, §1.1: defenses "dynamically scale in and out based
// on attack traffic volume").
func (c *Controller) ScaleOut(uri, segment, device string, done func(error)) {
	app := c.apps[uri]
	fail := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if app == nil {
		fail(fmt.Errorf("controller: no app %q", uri))
		return
	}
	seg := app.Datapath.Segment(segment)
	if seg == nil {
		fail(fmt.Errorf("controller: app %q has no segment %q", uri, segment))
		return
	}
	for _, d := range app.Replicas[segment] {
		if d == device {
			fail(fmt.Errorf("controller: %q already replicated on %s", uri, device))
			return
		}
	}
	var filter *flexbpf.Cond
	if app.Tenant != "" {
		if t := c.tenants[app.Tenant]; t != nil {
			filter = &flexbpf.Cond{Field: "vlan.vid", Op: flexbpf.CmpEq, Value: t.VLAN}
		}
	}
	prog := seg.Clone()
	prog.Name = instanceName(uri, segment)
	c.eng.ApplyRuntime(&runtime.Change{
		Device:   c.fab.Device(device),
		Installs: []runtime.Install{{Program: prog, Filter: filter}},
	}, func(r runtime.Result) {
		if r.Err != nil {
			fail(r.Err)
			return
		}
		app.Replicas[segment] = append(app.Replicas[segment], device)
		if done != nil {
			done(nil)
		}
	})
}

// ScaleIn removes a replica from a device.
func (c *Controller) ScaleIn(uri, segment, device string, done func(error)) {
	app := c.apps[uri]
	fail := func(err error) {
		if done != nil {
			done(err)
		}
	}
	if app == nil {
		fail(fmt.Errorf("controller: no app %q", uri))
		return
	}
	devs := app.Replicas[segment]
	idx := -1
	for i, d := range devs {
		if d == device {
			idx = i
			break
		}
	}
	if idx < 0 {
		fail(fmt.Errorf("controller: %q segment %q has no replica on %s", uri, segment, device))
		return
	}
	if len(devs) == 1 {
		fail(fmt.Errorf("controller: refusing to remove the last replica of %q/%q", uri, segment))
		return
	}
	c.eng.ApplyRuntime(&runtime.Change{
		Device:  c.fab.Device(device),
		Removes: []string{instanceName(uri, segment)},
	}, func(r runtime.Result) {
		if r.Err != nil {
			fail(r.Err)
			return
		}
		app.Replicas[segment] = append(devs[:idx], devs[idx+1:]...)
		if done != nil {
			done(nil)
		}
	})
}

// Migrate moves an app segment between devices using data-plane state
// migration (useDataPlane) or the control-plane baseline.
func (c *Controller) Migrate(uri, segment, dst string, useDataPlane bool, done func(migrate.Report)) {
	app := c.apps[uri]
	if app == nil {
		done(migrate.Report{Err: fmt.Errorf("controller: no app %q", uri)})
		return
	}
	devs := app.Replicas[segment]
	if len(devs) == 0 {
		done(migrate.Report{Err: fmt.Errorf("controller: app %q segment %q not placed", uri, segment)})
		return
	}
	src := devs[0]
	app.Status = StatusMigrating
	prog := instanceName(uri, segment)
	finish := func(rep migrate.Report) {
		if rep.Err == nil {
			app.Replicas[segment][0] = dst
		}
		app.Status = StatusRunning
		done(rep)
	}
	if useDataPlane {
		c.mig.DataPlane(prog, src, dst, finish)
	} else {
		c.mig.ControlPlane(prog, src, dst, finish)
	}
}

// Resources reports per-device free resources and fungibility — the
// network-wide resource view the compiler plans against.
type Resources struct {
	Device      string
	Free        flexbpf.Demand
	Fungibility float64
	Programs    []string
}

// ResourceView returns the global resource table, sorted by device.
func (c *Controller) ResourceView() []Resources {
	var out []Resources
	for _, name := range c.fab.Devices() {
		d := c.fab.Device(name)
		out = append(out, Resources{
			Device:      name,
			Free:        d.Free(),
			Fungibility: d.Fungibility(),
			Programs:    d.Programs(),
		})
	}
	return out
}

// MarkRemovable flags an app as reclaimable by the fungible compiler:
// its device placements become garbage-collection candidates.
func (c *Controller) MarkRemovable(uri string) error {
	app := c.apps[uri]
	if app == nil {
		return fmt.Errorf("controller: no app %q", uri)
	}
	for seg, devs := range app.Replicas {
		for _, dev := range devs {
			if t := c.targets[dev]; t != nil {
				if err := t.MarkRemovable(instanceName(uri, seg)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
