// Package controller implements FlexNet's central controller (§3.4
// "Real-time Network Control"): it pilots a runtime-programmable fabric
// with *app-level* abstractions — applications are named by URIs and
// managed as first-class objects (deploy, remove, migrate, scale,
// query), with the translation into low-level device operations
// (program installs, table entries, parser edits) done automatically.
//
// It also implements the paper's multi-tenant scenario (§3): tenants are
// admitted with a VLAN allocation; their extension programs are isolated
// by VLAN filters; departures trigger program removal and resource
// reclamation.
//
// Control-plane cost is proportional to what an operation touches
// (DESIGN.md §13): app/tenant state is sharded by owner, the compile
// target list is cached by fabric generation, and update/scale
// operations recompile placement incrementally from the app's previous
// plan instead of recomputing the fabric-wide placement.
//
// DESIGN.md §2 (S9) inventories the controller; operations execute as §5 change plans, and §10.3 specifies the self-healing loop (heal.go).
package controller

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"flexnet/internal/audit"
	"flexnet/internal/compiler"
	"flexnet/internal/errdefs"
	"flexnet/internal/fabric"
	"flexnet/internal/flexbpf"
	"flexnet/internal/migrate"
	"flexnet/internal/netsim"
	"flexnet/internal/packet"
	"flexnet/internal/plan"
	"flexnet/internal/runtime"
	"flexnet/internal/spec"
	"flexnet/internal/telemetry"
)

// AppStatus is an application's lifecycle state.
type AppStatus uint8

// Application states.
const (
	StatusDeploying AppStatus = iota
	StatusRunning
	StatusMigrating
	StatusRemoving
	StatusFailed
)

func (s AppStatus) String() string {
	switch s {
	case StatusDeploying:
		return "deploying"
	case StatusRunning:
		return "running"
	case StatusMigrating:
		return "migrating"
	case StatusRemoving:
		return "removing"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// App is a managed application: a datapath deployed under a URI handle.
type App struct {
	// URI names the app ("flexnet://tenant-a/syn-defense").
	URI string
	// Tenant is the owning tenant ("" = infrastructure).
	Tenant string
	// Datapath is the logical program chain.
	Datapath *flexbpf.Datapath
	// Plan is the current placement. It is kept current across updates,
	// migrations, and redeploys — the incremental recompiler keys off it.
	Plan *compiler.Plan
	// Path is the deployment's placement restriction (DeployOptions.Path),
	// remembered so recompiles plan against the same candidate order.
	Path []string
	// Replicas maps segment name → devices hosting replicas (the first
	// is the primary from Plan; extras come from ScaleOut).
	Replicas map[string][]string
	Status   AppStatus
}

// instanceName is the device-level program name for an app segment.
func instanceName(uri, segment string) string {
	return uri + "#" + segment
}

// Tenant is an admitted tenant with its isolation VLAN.
type Tenant struct {
	Name string
	VLAN uint64
	Apps []string
}

// Controller pilots one fabric.
type Controller struct {
	fab  *fabric.Fabric
	eng  *runtime.Engine
	comp *compiler.Compiler
	mig  *migrate.Migrator

	// exec is the single transactional change path: every operation's
	// ChangePlan is executed (or dry-run) through it.
	exec *runtime.Executor
	// lastReport is the report of the most recently finished plan.
	lastReport *plan.Report

	// state holds apps and tenants, sharded by owner (shard.go).
	state *shardedState
	// targets is the generation-keyed compile-target cache.
	targets *targetCache
	// incremental selects incremental placement recompilation for
	// update/scale operations (the default); off recomputes the app's
	// full placement per op — the fabric-size-proportional baseline E18
	// contrasts against.
	incremental bool
	// nextVLAN allocates tenant VLANs (atomic).
	nextVLAN uint64

	// placeScans / placeSegs count placement work: candidate targets
	// examined and segment placements recomputed across all operations.
	placeScans *telemetry.Counter
	placeSegs  *telemetry.Counter

	// Punts buffers packets the data plane sends to the controller
	// (bounded; see PuntRing).
	Punts *PuntRing
	// OnPunt, when set, is called for each punted packet.
	OnPunt func(dev string, pkt *packet.Packet)

	// audit is the append-only hash-chained trail of every control-plane
	// mutation: the executor's audit sink records each executed plan,
	// and tenant admissions/departures append their own records. Always
	// on; timestamps come from the simulated clock, so the chain is
	// byte-identical at a seed.
	audit *audit.Log

	// ha, when non-nil, is the active/standby replica manager (ha.go):
	// the controller's durable log replicates to standbys and a leader
	// kill fails over through the executor's freeze/recover protocol.
	ha *HA

	// Declarative spec state (spec.go): the last successfully applied
	// spec and when, plus the reconcile counter.
	specMu     sync.Mutex
	lastSpec   *spec.Resolved
	lastSpecAt netsim.Time
	specApply  bool // an ApplySpec is in flight
}

// PuntRecord is one packet punted to the controller.
type PuntRecord struct {
	Device string
	At     netsim.Time
	FlowID uint64
}

// New creates a controller over the fabric.
func New(fab *fabric.Fabric, eng *runtime.Engine, strategy compiler.Strategy) *Controller {
	c := &Controller{
		fab:         fab,
		eng:         eng,
		comp:        compiler.New(strategy),
		mig:         migrate.New(fab, eng),
		state:       newShardedState(),
		targets:     newTargetCache(fab),
		incremental: true,
		nextVLAN:    100,
		placeScans:  fab.Metrics.Counter("ctl.placement.targets_scanned"),
		placeSegs:   fab.Metrics.Counter("ctl.placement.segments_recompiled"),
		Punts:       NewPuntRing(0),
	}
	c.Punts.onDrop = func() {
		// Lazily created so punt-light runs export an unchanged snapshot.
		fab.Metrics.Counter("ctl.punts_dropped").Inc()
	}
	c.mig.Flip = func(prog, src, dst string) {
		// Migration flip: the source instance is removed; traffic
		// reaching dst is processed by the new instance.
		_ = fab.Device(src).RemoveProgram(prog)
	}
	c.exec = runtime.NewExecutor(eng, fab.Device, c.mig, fab)
	c.exec.SetTelemetry(fab.Metrics, fab.Tracer)
	c.audit = audit.NewLog(func() int64 { return int64(fab.Sim.Now()) })
	auditRecords := fab.Metrics.Counter("ctl.audit.records")
	c.audit.OnAppend(func() { auditRecords.Inc() })
	c.exec.SetAuditSink(func(r *plan.Report) {
		c.audit.Append(audit.FromReport(r))
	})
	fab.Punted = func(dev string, pkt *packet.Packet) {
		c.Punts.Append(PuntRecord{Device: dev, At: fab.Sim.Now(), FlowID: pkt.FlowKey().Hash()})
		if c.OnPunt != nil {
			c.OnPunt(dev, pkt)
		}
	}
	return c
}

// instrument counts one controller operation ("ctl.ops.<op>") and wraps
// its completion callback so failures also bump "ctl.op_failures". The
// returned callback is never nil, so callers can invoke it directly.
func (c *Controller) instrument(op string, done func(error)) func(error) {
	c.fab.Metrics.Counter("ctl.ops." + op).Inc()
	return func(err error) {
		if err != nil {
			c.fab.Metrics.Counter("ctl.op_failures").Inc()
		}
		if done != nil {
			done(err)
		}
	}
}

// SetIncrementalPlacement toggles incremental placement recompilation
// (on by default). Off, every update/scale operation recomputes the
// app's placement from scratch and re-lists the fabric — the
// O(fabric-size) baseline the E18 experiment measures against.
func (c *Controller) SetIncrementalPlacement(on bool) { c.incremental = on }

// IncrementalPlacement reports the current placement mode.
func (c *Controller) IncrementalPlacement() bool { return c.incremental }

// planningCharge prices one operation's placement work (scanned
// candidate targets, recompiled segment placements) and records it in
// the ctl.placement.* counters. Full mode additionally pays the per-op
// target list rebuild the cache elides.
func (c *Controller) planningCharge(scanned, segments int) netsim.Time {
	if !c.incremental {
		scanned += c.targets.size()
	}
	if scanned > 0 {
		c.placeScans.Add(uint64(scanned))
	}
	if segments > 0 {
		c.placeSegs.Add(uint64(segments))
	}
	return c.eng.EstimatePlacement(scanned, segments)
}

// Compiler exposes the placement compiler (for strategy tweaks).
func (c *Controller) Compiler() *compiler.Compiler { return c.comp }

// Migrator exposes the migrator.
func (c *Controller) Migrator() *migrate.Migrator { return c.mig }

// Executor exposes the transactional plan executor.
func (c *Controller) Executor() *runtime.Executor { return c.exec }

// LastReport returns the report of the most recently executed plan
// (nil before the first operation).
func (c *Controller) LastReport() *plan.Report { return c.lastReport }

// DryRun validates a plan — device, verifier, capability, and resource
// checks plus the cost estimate — without mutating anything.
func (c *Controller) DryRun(cp *plan.ChangePlan) *plan.Report { return c.exec.Validate(cp) }

// tenantFilter returns the VLAN isolation filter for a tenant's
// instances (nil for infrastructure apps).
func (c *Controller) tenantFilter(tenant string) *flexbpf.Cond {
	if tenant == "" {
		return nil
	}
	t := c.state.tenant(tenant)
	if t == nil {
		return nil
	}
	return &flexbpf.Cond{Field: "vlan.vid", Op: flexbpf.CmpEq, Value: t.VLAN}
}

// ValidURI checks the app URI shape: flexnet://<owner>/<name>.
func ValidURI(uri string) bool {
	if !strings.HasPrefix(uri, "flexnet://") {
		return false
	}
	rest := strings.TrimPrefix(uri, "flexnet://")
	parts := strings.Split(rest, "/")
	return len(parts) == 2 && parts[0] != "" && parts[1] != ""
}

// AddTenant admits a tenant and allocates its isolation VLAN.
func (c *Controller) AddTenant(name string) (*Tenant, error) {
	c.fab.Metrics.Counter("ctl.ops.tenant_add").Inc()
	sh := c.state.shardFor(name)
	sh.mu.Lock()
	if _, dup := sh.tenants[name]; dup {
		sh.mu.Unlock()
		c.fab.Metrics.Counter("ctl.op_failures").Inc()
		return nil, fmt.Errorf("controller: tenant %q already admitted", name)
	}
	t := &Tenant{Name: name, VLAN: atomic.AddUint64(&c.nextVLAN, 1) - 1}
	sh.tenants[name] = t
	sh.mu.Unlock()
	c.audit.Append(audit.Record{Kind: "tenant-add", Tenant: name})
	return t, nil
}

// Audit exposes the controller's append-only mutation trail.
func (c *Controller) Audit() *audit.Log { return c.audit }

// Tenant returns an admitted tenant, or nil.
func (c *Controller) Tenant(name string) *Tenant { return c.state.tenant(name) }

// RemoveTenant removes a tenant and all of its apps, reclaiming their
// resources (§1.1 "Tenant departures trigger program removal to trim the
// network and release unused resources"). done fires when all removals
// committed. ctx cancellation propagates to each app's removal plan.
func (c *Controller) RemoveTenant(ctx context.Context, name string, done func(error)) {
	done = c.instrument("tenant_remove", done)
	t := c.state.tenant(name)
	if t == nil {
		done(fmt.Errorf("controller: no tenant %q", name))
		return
	}
	uris := append([]string(nil), t.Apps...)
	remaining := len(uris)
	if remaining == 0 {
		c.state.deleteTenant(name)
		c.audit.Append(audit.Record{Kind: "tenant-remove", Tenant: name})
		done(nil)
		return
	}
	var firstErr error
	for _, uri := range uris {
		c.Remove(ctx, uri, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				c.state.deleteTenant(name)
				c.audit.Append(audit.Record{Kind: "tenant-remove", Tenant: name})
				done(firstErr)
			}
		})
	}
}

// DeployOptions tunes a deployment.
type DeployOptions struct {
	// Path restricts placement to these devices in traffic order
	// (nil = any device).
	Path []string
	// Tenant attributes the app and applies VLAN isolation filters.
	Tenant string
}

// PlanDeploy validates and compiles a deployment, returning the change
// plan and the placement without executing anything. The returned plan
// can be dry-run (DryRun) or handed back through Deploy's execution by
// the caller's choice.
func (c *Controller) PlanDeploy(uri string, dp *flexbpf.Datapath, opts DeployOptions) (*plan.ChangePlan, *compiler.Plan, error) {
	if !ValidURI(uri) {
		return nil, nil, fmt.Errorf("controller: malformed app URI %q", uri)
	}
	if c.state.app(uri) != nil {
		return nil, nil, fmt.Errorf("controller: app %q already deployed", uri)
	}
	if opts.Tenant != "" && c.state.tenant(opts.Tenant) == nil {
		return nil, nil, fmt.Errorf("controller: tenant %q not admitted", opts.Tenant)
	}
	// Compile against current device state.
	targets, err := c.targetList(opts.Path)
	if err != nil {
		return nil, nil, err
	}
	placement, err := c.comp.Compile(dp, targets, opts.Path)
	if err != nil {
		return nil, nil, err
	}
	if err := compiler.CheckSLA(placement, dp); err != nil {
		return nil, nil, err
	}
	filter := c.tenantFilter(opts.Tenant)
	cp := plan.New("deploy " + uri)
	for _, a := range placement.Assignments {
		cp.Install(a.Device, instanceName(uri, a.Segment), dp.Segment(a.Segment), filter, 0)
	}
	cp.Planning(c.planningCharge(placement.TargetsScanned, len(dp.Segments)))
	return cp, placement, nil
}

// Deploy compiles and installs an app's datapath under the URI handle.
// done receives the final error (nil on success) after all devices
// commit; on any failure the plan is rolled back and the URI released
// so a corrected deployment can retry. Cancelling ctx mid-plan rolls
// the deployment back (see runtime.Executor.ExecuteCtx).
func (c *Controller) Deploy(ctx context.Context, uri string, dp *flexbpf.Datapath, opts DeployOptions, done func(error)) {
	done = c.instrument("deploy", done)
	fail := func(err error) {
		if done != nil {
			done(err)
		}
	}
	cp, placement, err := c.PlanDeploy(uri, dp, opts)
	if err != nil {
		fail(err)
		return
	}
	app := &App{
		URI:      uri,
		Tenant:   opts.Tenant,
		Datapath: dp,
		Plan:     placement,
		Path:     opts.Path,
		Replicas: map[string][]string{},
		Status:   StatusDeploying,
	}
	for _, a := range placement.Assignments {
		app.Replicas[a.Segment] = []string{a.Device}
	}
	c.state.putApp(app)
	if opts.Tenant != "" {
		c.state.addTenantApp(opts.Tenant, uri)
	}
	c.exec.ExecuteCtx(ctx, cp, func(r *plan.Report) {
		c.lastReport = r
		if r.Err != nil {
			// Rollback restored the devices; release the URI so a
			// corrected deployment can retry.
			app.Status = StatusFailed
			c.state.deleteApp(uri)
			if opts.Tenant != "" {
				c.state.removeTenantApp(opts.Tenant, uri)
			}
			fail(r.Err)
			return
		}
		app.Status = StatusRunning
		if done != nil {
			done(nil)
		}
	})
}

// targetList returns compile targets, restricted to path when given.
// The unrestricted list comes straight from the generation-keyed cache;
// a path naming a device the fabric does not have is an error
// (errdefs.ErrUnknownDevice) — compiling onto the silently-shrunk
// target set used to mask typos as placement failures.
func (c *Controller) targetList(path []string) ([]compiler.Target, error) {
	if path == nil {
		return c.targets.list(), nil
	}
	out := make([]compiler.Target, 0, len(path))
	for _, n := range path {
		t := c.targets.get(n)
		if t == nil {
			return nil, fmt.Errorf("controller: path names %q: %w", n, errdefs.ErrUnknownDevice)
		}
		out = append(out, t)
	}
	return out, nil
}

// App returns the app registered under uri, or nil.
func (c *Controller) App(uri string) *App { return c.state.app(uri) }

// Apps returns deployed URIs in sorted order.
func (c *Controller) Apps() []string { return c.state.appURIs() }

// PlanRemove builds the removal plan for every replica of an app.
func (c *Controller) PlanRemove(uri string) (*plan.ChangePlan, error) {
	app := c.state.app(uri)
	if app == nil {
		return nil, fmt.Errorf("controller: no app %q: %w", uri, errdefs.ErrNoSuchApp)
	}
	cp := plan.New("remove " + uri)
	// A removal's intent survives a dead replica — the crashed device
	// already lost the instance — so the plan may skip down devices and
	// report OutcomeDegraded instead of aborting (DESIGN.md §10).
	cp.AllowDegraded = true
	segs := make([]string, 0, len(app.Replicas))
	for seg := range app.Replicas {
		segs = append(segs, seg)
	}
	sort.Strings(segs)
	for _, seg := range segs {
		for _, dev := range app.Replicas[seg] {
			cp.Remove(dev, instanceName(uri, seg))
		}
	}
	return cp, nil
}

// Remove uninstalls an app everywhere and releases its resources. On
// failure the rollback re-places every instance (state intact) and the
// app stays registered and running.
func (c *Controller) Remove(ctx context.Context, uri string, done func(error)) {
	done = c.instrument("remove", done)
	cp, err := c.PlanRemove(uri)
	if err != nil {
		if done != nil {
			done(err)
		}
		return
	}
	app := c.state.app(uri)
	app.Status = StatusRemoving
	c.exec.ExecuteCtx(ctx, cp, func(r *plan.Report) {
		c.lastReport = r
		if r.Err != nil {
			app.Status = StatusRunning
			if done != nil {
				done(r.Err)
			}
			return
		}
		c.state.deleteApp(uri)
		if app.Tenant != "" {
			c.state.removeTenantApp(app.Tenant, uri)
		}
		if done != nil {
			done(nil)
		}
	})
}

// PlanScaleOut builds the plan for one additional replica. An empty
// device auto-places the replica: the compiler scans the app's path
// first, then the fabric, for the first device that fits — the chosen
// device is returned. The returned device equals the argument when one
// was given.
func (c *Controller) PlanScaleOut(uri, segment, device string) (*plan.ChangePlan, string, error) {
	app := c.state.app(uri)
	if app == nil {
		return nil, "", fmt.Errorf("controller: no app %q: %w", uri, errdefs.ErrNoSuchApp)
	}
	seg := app.Datapath.Segment(segment)
	if seg == nil {
		return nil, "", fmt.Errorf("controller: app %q has no segment %q: %w", uri, segment, errdefs.ErrNoSuchApp)
	}
	scanned := 1
	if device == "" {
		exclude := map[string]bool{}
		for _, d := range app.Replicas[segment] {
			exclude[d] = true
		}
		var err error
		device, scanned, err = compiler.PlaceSegment(seg, c.targets.list(), app.Path, exclude)
		if err != nil {
			return nil, "", fmt.Errorf("controller: scale-out %s/%s: %w", uri, segment, err)
		}
	} else {
		for _, d := range app.Replicas[segment] {
			if d == device {
				return nil, "", fmt.Errorf("controller: %q already replicated on %s", uri, device)
			}
		}
	}
	cp := plan.New(fmt.Sprintf("scale-out %s/%s -> %s", uri, segment, device))
	cp.Install(device, instanceName(uri, segment), seg, c.tenantFilter(app.Tenant), 0)
	cp.Planning(c.planningCharge(scanned, 1))
	return cp, device, nil
}

// ScaleOut installs an additional replica of an app segment on a device
// (elastic defenses, §1.1: defenses "dynamically scale in and out based
// on attack traffic volume"). An empty device lets the controller pick
// one (see PlanScaleOut).
func (c *Controller) ScaleOut(ctx context.Context, uri, segment, device string, done func(error)) {
	done = c.instrument("scale_out", done)
	fail := func(err error) {
		if done != nil {
			done(err)
		}
	}
	cp, placed, err := c.PlanScaleOut(uri, segment, device)
	if err != nil {
		fail(err)
		return
	}
	app := c.state.app(uri)
	c.exec.ExecuteCtx(ctx, cp, func(r *plan.Report) {
		c.lastReport = r
		if r.Err != nil {
			fail(r.Err)
			return
		}
		app.Replicas[segment] = append(app.Replicas[segment], placed)
		if done != nil {
			done(nil)
		}
	})
}

// PlanScaleIn builds the plan to retire one replica.
func (c *Controller) PlanScaleIn(uri, segment, device string) (*plan.ChangePlan, error) {
	app := c.state.app(uri)
	if app == nil {
		return nil, fmt.Errorf("controller: no app %q: %w", uri, errdefs.ErrNoSuchApp)
	}
	devs := app.Replicas[segment]
	found := false
	for _, d := range devs {
		if d == device {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("controller: %q segment %q has no replica on %s", uri, segment, device)
	}
	if len(devs) == 1 {
		return nil, fmt.Errorf("controller: refusing to remove the last replica of %q/%q", uri, segment)
	}
	cp := plan.New(fmt.Sprintf("scale-in %s/%s on %s", uri, segment, device))
	// Like removal, retiring a replica on a dead device is already done
	// as far as the network is concerned; degrade instead of aborting.
	cp.AllowDegraded = true
	cp.Remove(device, instanceName(uri, segment))
	cp.Planning(c.planningCharge(0, 0))
	return cp, nil
}

// ScaleIn removes a replica from a device.
func (c *Controller) ScaleIn(ctx context.Context, uri, segment, device string, done func(error)) {
	done = c.instrument("scale_in", done)
	fail := func(err error) {
		if done != nil {
			done(err)
		}
	}
	cp, err := c.PlanScaleIn(uri, segment, device)
	if err != nil {
		fail(err)
		return
	}
	app := c.state.app(uri)
	c.exec.ExecuteCtx(ctx, cp, func(r *plan.Report) {
		c.lastReport = r
		if r.Err != nil {
			fail(r.Err)
			return
		}
		devs := app.Replicas[segment]
		for i, d := range devs {
			if d == device {
				app.Replicas[segment] = append(devs[:i], devs[i+1:]...)
				break
			}
		}
		if done != nil {
			done(nil)
		}
	})
}

// MigrateRequest names a segment migration. The explicit DataPlane field
// replaces the bare bool that used to ride the end of Migrate's
// parameter list, which was unreadable (and therefore error-prone) at
// call sites: Migrate(..., true) said nothing about what true meant.
type MigrateRequest struct {
	// URI and Segment select the app segment; its primary replica moves.
	URI, Segment string
	// Dst is the destination device.
	Dst string
	// DataPlane selects in-band dRPC state transfer; false uses the
	// control-plane baseline (export via controller, import at dst).
	DataPlane bool
}

// PlanMigrate builds the migration plan for an app segment's primary
// replica: install the instance at dst (committed epoch-atomically),
// then move its state and flip traffic as a post-commit step.
func (c *Controller) PlanMigrate(req MigrateRequest) (*plan.ChangePlan, error) {
	uri, segment, dst := req.URI, req.Segment, req.Dst
	app := c.state.app(uri)
	if app == nil {
		return nil, fmt.Errorf("controller: no app %q: %w", uri, errdefs.ErrNoSuchApp)
	}
	devs := app.Replicas[segment]
	if len(devs) == 0 {
		return nil, fmt.Errorf("controller: app %q segment %q not placed: %w", uri, segment, errdefs.ErrNoSuchApp)
	}
	src := devs[0]
	if src == dst {
		return nil, fmt.Errorf("controller: %q segment %q already on %s", uri, segment, dst)
	}
	instName := instanceName(uri, segment)
	// Install the instance's *live* program (it may have been updated
	// since deployment), falling back to the logical segment.
	prog := app.Datapath.Segment(segment)
	if sdev := c.fab.Device(src); sdev != nil {
		if inst := sdev.Instance(instName); inst != nil {
			prog = inst.Program()
		}
	}
	if prog == nil {
		return nil, fmt.Errorf("controller: app %q has no segment %q: %w", uri, segment, errdefs.ErrNoSuchApp)
	}
	cp := plan.New(fmt.Sprintf("migrate %s/%s %s -> %s", uri, segment, src, dst))
	cp.Install(dst, instName, prog, c.tenantFilter(app.Tenant), 0)
	cp.MigrateState(instName, src, dst, req.DataPlane)
	return cp, nil
}

// Migrate moves an app segment between devices using data-plane state
// migration (req.DataPlane) or the control-plane baseline. A failure at
// any point — including ctx cancellation — rolls the plan back: the
// destination install is undone and the source stays authoritative.
func (c *Controller) Migrate(ctx context.Context, req MigrateRequest, done func(migrate.Report)) {
	count := c.instrument("migrate", nil)
	inner := done
	done = func(r migrate.Report) {
		count(r.Err)
		if inner != nil {
			inner(r)
		}
	}
	cp, err := c.PlanMigrate(req)
	if err != nil {
		done(migrate.Report{Err: err})
		return
	}
	uri, segment, dst := req.URI, req.Segment, req.Dst
	app := c.state.app(uri)
	src := app.Replicas[segment][0]
	instName := instanceName(uri, segment)
	app.Status = StatusMigrating
	c.exec.ExecuteCtx(ctx, cp, func(r *plan.Report) {
		c.lastReport = r
		app.Status = StatusRunning
		if r.Err != nil {
			rep := c.mig.LastReport()
			if rep.Program != instName || rep.Err == nil {
				// The failure happened before the mover ran (install
				// phase); synthesize a report.
				rep = migrate.Report{Program: instName, Src: src, Dst: dst, Err: r.Err}
			}
			done(rep)
			return
		}
		app.Replicas[segment][0] = dst
		// Keep the placement plan current: the incremental recompiler
		// keys off it, so a stale assignment would undo the migration on
		// the next update.
		if app.Plan != nil {
			for i, a := range app.Plan.Assignments {
				if a.Segment == segment {
					app.Plan.Assignments[i].Device = dst
				}
			}
		}
		done(c.mig.LastReport())
	})
}

// Resources reports per-device free resources and fungibility — the
// network-wide resource view the compiler plans against.
type Resources struct {
	Device      string
	Free        flexbpf.Demand
	Fungibility float64
	Programs    []string
}

// ResourceView returns the global resource table, sorted by device.
func (c *Controller) ResourceView() []Resources {
	var out []Resources
	for _, name := range c.fab.Devices() {
		d := c.fab.Device(name)
		out = append(out, Resources{
			Device:      name,
			Free:        d.Free(),
			Fungibility: d.Fungibility(),
			Programs:    d.Programs(),
		})
	}
	return out
}

// MarkRemovable flags an app as reclaimable by the fungible compiler:
// its device placements become garbage-collection candidates.
func (c *Controller) MarkRemovable(uri string) error {
	app := c.state.app(uri)
	if app == nil {
		return fmt.Errorf("controller: no app %q: %w", uri, errdefs.ErrNoSuchApp)
	}
	for seg, devs := range app.Replicas {
		for _, dev := range devs {
			if t := c.targets.get(dev); t != nil {
				if err := t.MarkRemovable(instanceName(uri, seg)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
