package controller

// HA glue (DESIGN.md §15): couples the controller's durable log — the
// audit chain plus the executor's plan lifecycle journal — to a
// cluster.HAGroup replica set, and turns replica activation into the
// executor's freeze/recover failover protocol. The replicas themselves
// (election, leases, replication transport) live in
// internal/controller/cluster; this file is the tap on one side and the
// takeover choreography on the other.

import (
	"encoding/json"
	"fmt"
	"strings"

	"flexnet/internal/audit"
	"flexnet/internal/controller/cluster"
	"flexnet/internal/netsim"
	"flexnet/internal/telemetry"
)

// haShadow is one standby's replicated view of the controller's durable
// log: its copy of the audit chain (decoded from sync payloads) and the
// set of in-flight plans by label. On activation the chain is verified
// and becomes the new leader's proof that it converged on the dead
// leader's history.
type haShadow struct {
	records  []audit.Record
	inflight map[string]string // plan label -> last journal event
}

// haMetrics are the ha.* instruments, created when HA is enabled (they
// never exist in non-HA runs, keeping those snapshots unchanged).
type haMetrics struct {
	heartbeats *telemetry.Counter
	elections  *telemetry.Counter
	syncs      *telemetry.Counter
	backlog    *telemetry.Counter
	stepdowns  *telemetry.Counter
	failovers  *telemetry.Counter
	kills      *telemetry.Counter
	resumed    *telemetry.Counter
	rolled     *telemetry.Counter
	failoverNs *telemetry.Histogram
}

// bufferedRec is an append that arrived while no replica was serving
// (the window between a leader kill and the next activation); it is
// flushed into the log by the new leader before its failover marker.
type bufferedRec struct {
	kind, label string
	payload     []byte
}

// HA manages the controller's replica set.
type HA struct {
	c *Controller
	g *cluster.HAGroup

	activeID    int
	killedAt    netsim.Time
	killPending bool
	shadows     []*haShadow
	buffered    []bufferedRec
	lastErr     error
	met         haMetrics

	// FailoverNs records each completed failover's duration — leader
	// kill to standby activation — in order, the same way Healer.MTTRs
	// records recoveries. The chaos soak bounds every entry.
	FailoverNs []uint64
}

// EnableHA attaches a replica group of n members to the controller and
// starts replicating its durable log. Idempotent: a second call returns
// the existing group. Replica 0 boots as the active leader.
func (c *Controller) EnableHA(n int, cfg cluster.HAConfig) *HA {
	if c.ha != nil {
		return c.ha
	}
	h := &HA{c: c, g: cluster.NewHA(c.fab.Sim, n, cfg)}
	met := c.fab.Metrics
	h.met = haMetrics{
		heartbeats: met.Counter("ha.heartbeats"),
		elections:  met.Counter("ha.elections"),
		syncs:      met.Counter("ha.syncs"),
		backlog:    met.Counter("ha.backlog_replayed"),
		stepdowns:  met.Counter("ha.stepdowns"),
		failovers:  met.Counter("ha.failovers"),
		kills:      met.Counter("ha.leader_kills"),
		resumed:    met.Counter("ha.plans_resumed"),
		rolled:     met.Counter("ha.plans_rolled_back"),
		failoverNs: met.Histogram("ha.failover_ns", telemetry.DefaultLatencyBounds),
	}
	// Bootstrap state transfer: every replica starts from the chain as
	// it stands at enable time; from here shadows only advance through
	// replication.
	base := c.audit.Records()
	for i := 0; i < h.g.Size(); i++ {
		h.shadows = append(h.shadows, &haShadow{
			records:  append([]audit.Record(nil), base...),
			inflight: map[string]string{},
		})
	}
	// Replication taps: every audit append and every executor journal
	// event becomes one replicated log record.
	c.audit.OnAppendRecord(func(r audit.Record) {
		b, err := json.Marshal(r)
		if err != nil {
			panic(err) // Record marshals by construction (see audit.hashOf)
		}
		h.append("audit", fmt.Sprintf("%s#%d", r.Kind, r.Seq), b)
	})
	c.exec.SetJournal(func(event, label string) {
		h.append("plan-"+event, label, nil)
	})
	h.g.OnApply = h.apply
	h.g.OnActivate = h.activate
	h.g.OnEvent = func(kind string, n uint64) {
		switch kind {
		case "heartbeat":
			h.met.heartbeats.Inc()
		case "election":
			h.met.elections.Inc()
		case "sync":
			h.met.syncs.Inc()
		case "backlog":
			h.met.backlog.Add(n)
		case "stepdown":
			h.met.stepdowns.Inc()
		}
	}
	c.ha = h
	return h
}

// HA returns the controller's replica manager, or nil when HA is off.
func (c *Controller) HA() *HA { return c.ha }

// Group exposes the underlying replica group (tests, fault plane).
func (h *HA) Group() *cluster.HAGroup { return h.g }

// LastErr returns the most recent takeover verification error (a shadow
// chain that failed audit.VerifyRecords), or nil.
func (h *HA) LastErr() error { return h.lastErr }

// ShadowRecords returns a replica's replicated copy of the audit chain.
func (h *HA) ShadowRecords(replica int) []audit.Record {
	return append([]audit.Record(nil), h.shadows[replica].records...)
}

// InflightShadow returns a replica's view of in-flight plan labels.
func (h *HA) InflightShadow(replica int) []string {
	out := make([]string, 0, len(h.shadows[replica].inflight))
	for l := range h.shadows[replica].inflight {
		out = append(out, l)
	}
	return out
}

// append replicates one durable-log record through the active replica.
// With no replica serving (mid-failover) the record is buffered and
// flushed by the next leader, so the replicated log never drops events.
func (h *HA) append(kind, label string, payload []byte) {
	seq, err := h.g.Append(h.activeID, kind, label, payload)
	if err != nil {
		h.buffered = append(h.buffered, bufferedRec{kind: kind, label: label, payload: payload})
		return
	}
	// Mirror the record into the appender's own shadow: followers learn
	// it through sync/OnApply, but the group never re-applies a record
	// to its appender — without this, a leader's shadow would miss its
	// own tenure and fail chain verification if it is ever re-elected.
	h.apply(h.activeID, cluster.SyncRecord{Seq: seq, Kind: kind, Label: label, Payload: payload})
}

// apply advances one replica's shadow state by one replicated record.
func (h *HA) apply(replica int, rec cluster.SyncRecord) {
	sh := h.shadows[replica]
	switch {
	case rec.Kind == "audit":
		var r audit.Record
		if err := json.Unmarshal(rec.Payload, &r); err == nil {
			sh.records = append(sh.records, r)
		}
	case strings.HasPrefix(rec.Kind, "plan-"):
		ev := strings.TrimPrefix(rec.Kind, "plan-")
		if ev == "done" {
			delete(sh.inflight, rec.Label)
		} else {
			sh.inflight[rec.Label] = ev
		}
	}
}

// activate is the takeover choreography (DESIGN.md §15.3): runs when a
// replica wins an election with its backlog fully replayed. It verifies
// the replicated chain, flushes any appends buffered during the
// leaderless window, appends the failover marker, and drives the
// executor's Recover — resuming plans past their commit instant and
// rolling back the rest.
func (h *HA) activate(replica int, term uint64) {
	h.met.failovers.Inc()
	if h.killPending {
		h.killPending = false
		d := h.c.fab.Sim.Now() - h.killedAt
		h.met.failoverNs.Observe(int64(d))
		h.FailoverNs = append(h.FailoverNs, uint64(d))
	}
	h.activeID = replica
	if err := audit.VerifyRecords(h.shadows[replica].records); err != nil {
		h.lastErr = err
		h.c.fab.Metrics.Counter("ha.chain_mismatch").Inc()
	}
	buffered := h.buffered
	h.buffered = nil
	for _, b := range buffered {
		h.append(b.kind, b.label, b.payload)
	}
	h.c.audit.Append(audit.Record{
		Kind:  "failover",
		Label: fmt.Sprintf("replica-%d term-%d", replica, term),
	})
	resumed, rolled := h.c.exec.Recover()
	if resumed > 0 {
		h.met.resumed.Add(uint64(resumed))
	}
	if rolled > 0 {
		h.met.rolled.Add(uint64(rolled))
	}
}

// KillActive crashes the serving leader and freezes the executor — the
// leader-kill fault (internal/faults KindLeaderKill). It returns the
// killed replica's ID, or ok=false when no replica is serving.
func (h *HA) KillActive() (int, bool) {
	rep := h.g.Active()
	if rep == nil {
		return -1, false
	}
	h.killedAt = h.c.fab.Sim.Now()
	h.killPending = true
	h.met.kills.Inc()
	rep.Kill()
	h.c.exec.Freeze()
	return rep.ID(), true
}

// ReviveReplica restarts a crashed replica as a standby; it rejoins and
// replays the backlog it missed. Out-of-range IDs are ignored.
func (h *HA) ReviveReplica(id int) {
	if id >= 0 && id < h.g.Size() {
		h.g.Replica(id).Revive()
	}
}

// Failover is the operator-initiated drill (flexctl ha failover): kill
// the serving leader, let the standbys elect, and revive the old leader
// as a standby two election timeouts later. Returns the killed ID.
func (h *HA) Failover() (int, error) {
	id, ok := h.KillActive()
	if !ok {
		return -1, fmt.Errorf("controller: no serving leader to fail over")
	}
	h.c.fab.Sim.After(netsim.Time(2*h.g.Config().ElectionMaxNs), func() {
		h.ReviveReplica(id)
	})
	return id, nil
}

// HAReplicaStatus is one replica's row in ha-status output.
type HAReplicaStatus struct {
	ID      int    `json:"id"`
	Role    string `json:"role"`
	Alive   bool   `json:"alive"`
	Serving bool   `json:"serving"`
	Term    uint64 `json:"term"`
	Known   uint64 `json:"known"`
	Applied uint64 `json:"applied"`
}

// HAStatus is the cluster view served by `flexnetd ha-status` and
// `flexctl ha status` (README "HA operations runbook" documents the
// fields).
type HAStatus struct {
	Enabled   bool              `json:"enabled"`
	Active    int               `json:"active"` // -1 while failing over
	LogLen    uint64            `json:"log_len"`
	Frozen    bool              `json:"frozen"`
	Failovers uint64            `json:"failovers"`
	Inflight  []string          `json:"inflight,omitempty"`
	Replicas  []HAReplicaStatus `json:"replicas"`
}

// Status snapshots the replica set.
func (h *HA) Status() HAStatus {
	st := HAStatus{
		Enabled:   true,
		Active:    -1,
		LogLen:    h.g.LogLen(),
		Frozen:    h.c.exec.Frozen(),
		Failovers: h.met.failovers.Value(),
		Inflight:  h.c.exec.Inflight(),
	}
	if rep := h.g.Active(); rep != nil {
		st.Active = rep.ID()
	}
	for i := 0; i < h.g.Size(); i++ {
		rep := h.g.Replica(i)
		st.Replicas = append(st.Replicas, HAReplicaStatus{
			ID:      rep.ID(),
			Role:    rep.Role(),
			Alive:   rep.Alive(),
			Serving: rep.Serving(),
			Term:    rep.Term(),
			Known:   rep.Known(),
			Applied: rep.Applied(),
		})
	}
	return st
}
