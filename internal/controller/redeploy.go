package controller

import (
	"context"
	"fmt"
	"sort"

	"flexnet/internal/compiler"
	"flexnet/internal/errdefs"
	"flexnet/internal/flexbpf"
	"flexnet/internal/plan"
)

// placeDatapath recompiles the placement of app's datapath for a new
// version newDP, in the controller's current placement mode:
//
//   - Incremental (default): compiler.Recompile morphs the app's
//     previous plan, touching only what the version change touched.
//   - Full baseline: the whole placement is recomputed from scratch with
//     the app's own occupancy refunded per device (compiler.RefundTarget),
//     then diffed against the previous plan into the same IncrementalPlan
//     shape. This is the O(fabric) path E18 contrasts against.
//
// The two extra results feed planningCharge: candidate targets scanned
// and segment placements recompiled.
func (c *Controller) placeDatapath(app *App, newDP *flexbpf.Datapath) (*compiler.IncrementalPlan, int, int, error) {
	if c.incremental {
		// The recompiler sees the whole fabric: migrations may have
		// carried the app off its deploy path, and grow-in-place must
		// find the *current* devices. app.Path stays a candidate-order
		// preference for anything that does need placing.
		inc, err := c.comp.Recompile(app.Plan, app.Datapath, newDP, c.targets.list(), app.Path)
		if err != nil {
			return nil, 0, 0, err
		}
		d := compiler.Diff(app.Datapath, newDP)
		segs := len(d.Added) + len(d.Removed) + len(d.Changed) + inc.Moves
		if segs == 0 {
			// Demand-neutral change: still one placement decision (the
			// recompiler verified everything stays put).
			segs = 1
		}
		return inc, inc.TargetsScanned, segs, nil
	}
	// Full recompute baseline: replan from scratch over the entire
	// fabric's target list (the pre-§13 controller behavior — every
	// operation re-examined every device; app.Path still constrains
	// which devices are usable), refunding this app's own footprint so
	// the compiler sees the resources a from-scratch placement could
	// reuse.
	targets := c.targets.list()
	refund := map[string]flexbpf.Demand{}
	for seg, devs := range app.Replicas {
		d := flexbpf.ProgramDemand(app.Datapath.Segment(seg))
		for _, dev := range devs {
			refund[dev] = refund[dev].Add(d)
		}
	}
	overlaid := make([]compiler.Target, len(targets))
	for i, t := range targets {
		if r, ok := refund[t.Name()]; ok {
			overlaid[i] = &compiler.RefundTarget{Target: t, Refund: r}
		} else {
			overlaid[i] = t
		}
	}
	full, err := c.comp.Compile(newDP, overlaid, app.Path)
	if err != nil {
		return nil, 0, 0, err
	}
	inc := &compiler.IncrementalPlan{Iterations: full.Iterations, TargetsScanned: full.TargetsScanned}
	inNew := map[string]bool{}
	for _, a := range full.Assignments {
		inNew[a.Segment] = true
		prev := app.Plan.DeviceFor(a.Segment)
		if prev == a.Device {
			inc.Keep = append(inc.Keep, a)
			continue
		}
		inc.Place = append(inc.Place, a)
		if prev != "" {
			inc.Moves++
		}
	}
	for _, s := range app.Datapath.Segments {
		if !inNew[s.Name] {
			inc.Remove = append(inc.Remove, compiler.Assignment{Segment: s.Name, Device: app.Plan.DeviceFor(s.Name)})
		}
	}
	return inc, full.TargetsScanned, len(newDP.Segments), nil
}

// PlanRedeploy builds the transition plan from an app's current datapath
// to a new version, with full move semantics (unlike UpdateApp, which is
// in-place only):
//
//   - removed segments are uninstalled (every replica);
//   - kept segments whose content changed swap in place on every replica;
//   - segments the recompiler moved transfer to their new device —
//     content-unchanged moves install at the destination and migrate
//     state, content-changed moves reinstall fresh;
//   - added segments install on their assigned device.
//
// The returned IncrementalPlan is the placement decision the change plan
// realizes; Redeploy commits it to the app record on success.
func (c *Controller) PlanRedeploy(uri string, newDP *flexbpf.Datapath) (*plan.ChangePlan, *compiler.IncrementalPlan, error) {
	app := c.state.app(uri)
	if app == nil {
		return nil, nil, fmt.Errorf("controller: no app %q: %w", uri, errdefs.ErrNoSuchApp)
	}
	if app.Plan == nil {
		return nil, nil, fmt.Errorf("controller: app %q has no placement plan: %w", uri, errdefs.ErrNoSuchApp)
	}
	inc, scanned, segs, err := c.placeDatapath(app, newDP)
	if err != nil {
		return nil, nil, err
	}
	oldSeg := map[string]*flexbpf.Program{}
	for _, s := range app.Datapath.Segments {
		oldSeg[s.Name] = s
	}
	changed := func(name string) bool {
		o, n := oldSeg[name], newDP.Segment(name)
		if o == nil || n == nil {
			return true
		}
		return flexbpf.Dump(o) != flexbpf.Dump(n)
	}
	filter := c.tenantFilter(app.Tenant)
	cp := plan.New("redeploy " + uri)
	for _, a := range inc.Remove {
		for _, dev := range app.Replicas[a.Segment] {
			cp.Remove(dev, instanceName(uri, a.Segment))
		}
	}
	for _, a := range inc.Keep {
		if !changed(a.Segment) {
			continue
		}
		for _, dev := range app.Replicas[a.Segment] {
			cp.Swap(dev, instanceName(uri, a.Segment), newDP.Segment(a.Segment), filter)
		}
	}
	for _, a := range inc.Place {
		inst := instanceName(uri, a.Segment)
		prev := app.Plan.DeviceFor(a.Segment)
		switch {
		case prev == "":
			// Newly added segment.
			cp.Install(a.Device, inst, newDP.Segment(a.Segment), filter, 0)
		case !changed(a.Segment):
			// Moved, content unchanged: carry the state along.
			cp.Install(a.Device, inst, newDP.Segment(a.Segment), filter, 0)
			cp.MigrateState(inst, prev, a.Device, false)
		default:
			// Moved and rewritten: old state is for the old program;
			// start fresh at the destination.
			cp.Remove(prev, inst)
			cp.Install(a.Device, inst, newDP.Segment(a.Segment), filter, 0)
			// Surviving extra replicas still swap to the new content.
			for _, dev := range app.Replicas[a.Segment] {
				if dev != prev {
					cp.Swap(dev, inst, newDP.Segment(a.Segment), filter)
				}
			}
		}
	}
	cp.Planning(c.planningCharge(scanned, segs))
	return cp, inc, nil
}

// Redeploy transitions a deployed app to a new datapath version,
// recompiling its placement (incrementally by default) and moving,
// swapping, adding, and removing instances as the new placement
// requires. On success the app record reflects the new version; on
// failure the rollback restores every device and the old version stays
// authoritative.
func (c *Controller) Redeploy(ctx context.Context, uri string, newDP *flexbpf.Datapath, done func(error)) {
	done = c.instrument("redeploy", done)
	cp, inc, err := c.PlanRedeploy(uri, newDP)
	if err != nil {
		if done != nil {
			done(err)
		}
		return
	}
	app := c.state.app(uri)
	c.exec.ExecuteCtx(ctx, cp, func(r *plan.Report) {
		c.lastReport = r
		if r.Err != nil {
			if done != nil {
				done(r.Err)
			}
			return
		}
		// Commit the new logical view and placement.
		assigns := make([]compiler.Assignment, 0, len(inc.Keep)+len(inc.Place))
		assigns = append(assigns, inc.Keep...)
		assigns = append(assigns, inc.Place...)
		sort.Slice(assigns, func(i, j int) bool { return assigns[i].Segment < assigns[j].Segment })
		replicas := map[string][]string{}
		for _, a := range assigns {
			prev := app.Plan.DeviceFor(a.Segment)
			devs := []string{a.Device}
			// Extra replicas of kept segments survive; a moved primary
			// keeps its extras too (they still serve traffic).
			for _, d := range app.Replicas[a.Segment] {
				if d != prev && d != a.Device {
					devs = append(devs, d)
				}
			}
			replicas[a.Segment] = devs
		}
		app.Datapath = newDP
		app.Plan = &compiler.Plan{Datapath: newDP.Name, Assignments: assigns, Iterations: inc.Iterations, TargetsScanned: inc.TargetsScanned}
		app.Replicas = replicas
		if done != nil {
			done(nil)
		}
	})
}
