package controller

// This file is the controller half of FlexNet's declarative spec path
// (DESIGN.md §14): snapshotting live intent into the spec vocabulary,
// diffing it against a resolved spec, compiling the diff into a few
// batched ChangePlans, and the continuous-reconcile loop that keeps
// the network converged to the last applied spec.
//
// Plan compilation works in two waves so placement sees the truth:
//
//	shrink  app deletions and scale-downs (AllowDegraded — removals
//	        survive dead devices), executed first so their resources
//	        are free;
//	grow    creations, scale-ups and segment swaps, planned only
//	        after the shrink wave commits.
//
// Within a wave, items are grouped by device-footprint connectivity
// (union-find) and the groups are packed round-robin into at most
// MaxPlans batched plans. Groups in different plans share no device,
// so the executor's conflict admission (DESIGN.md §13.3) runs the
// wave's plans concurrently; batching many imperative ops per plan is
// what makes a mass change cost a handful of plans instead of
// hundreds (E19).

import (
	"context"
	"fmt"
	"sort"

	"flexnet/internal/audit"
	"flexnet/internal/compiler"
	"flexnet/internal/netsim"
	"flexnet/internal/plan"
	"flexnet/internal/spec"
)

// DefaultSpecMaxPlans bounds the batched plans emitted per wave.
const DefaultSpecMaxPlans = 4

// SpecOptions tunes a declarative apply.
type SpecOptions struct {
	// DryRun computes the diff and validates the shrink wave without
	// executing anything; grow placements are not computed (they
	// depend on resources the shrink wave frees).
	DryRun bool
	// MaxPlans bounds the batched plans per wave (0 = DefaultSpecMaxPlans).
	MaxPlans int
}

// SpecReport describes one declarative apply.
type SpecReport struct {
	// Version is the spec revision applied.
	Version string
	// Diff is the change set that was compiled.
	Diff *spec.Diff
	// Ops is the imperative per-op call count the diff covers — the
	// baseline the batched PlansEmitted is measured against.
	Ops int
	// Plans holds every executed (or, dry-run, validated) plan report.
	Plans []*plan.Report
	// PlansEmitted is len(Plans) for real applies.
	PlansEmitted int
	// Elapsed is the simulated convergence time.
	Elapsed netsim.Time
}

// LiveSpecState snapshots the controller's intent — tenants, apps,
// per-segment program fingerprints and replica sets — into the spec
// differ's live model. Deterministic: tenants and apps in sorted order.
func (c *Controller) LiveSpecState() *spec.Live {
	live := &spec.Live{
		Tenants: c.state.tenantNames(),
		Apps:    map[string]*spec.LiveApp{},
	}
	for _, uri := range c.state.appURIs() {
		app := c.state.app(uri)
		if app == nil {
			continue
		}
		la := &spec.LiveApp{
			Tenant:   app.Tenant,
			Path:     append([]string(nil), app.Path...),
			Segments: map[string]spec.LiveSegment{},
		}
		for seg, devs := range app.Replicas {
			var fp uint64
			if p := app.Datapath.Segment(seg); p != nil {
				fp = compiler.Fingerprint(p)
			}
			la.Segments[seg] = spec.LiveSegment{FP: fp, Replicas: append([]string(nil), devs...)}
		}
		live.Apps[uri] = la
	}
	return live
}

// DiffSpec compares a resolved spec against live controller state.
func (c *Controller) DiffSpec(r *spec.Resolved) *spec.Diff {
	c.fab.Metrics.Counter("ctl.ops.spec_diff").Inc()
	return spec.Compute(r, c.LiveSpecState())
}

// CanonicalIntent renders the controller's live intent state in the
// audit replayer's canonical form — byte-identical to
// audit.Replay(...).Canonical() when the trail is complete.
func (c *Controller) CanonicalIntent() string {
	st := audit.NewIntentState()
	for _, t := range c.state.tenantNames() {
		st.Tenants[t] = true
	}
	for _, uri := range c.state.appURIs() {
		app := c.state.app(uri)
		if app == nil {
			continue
		}
		for seg, devs := range app.Replicas {
			for _, d := range devs {
				st.Add(instanceName(uri, seg), d)
			}
		}
	}
	return st.Canonical()
}

// specItem is one diff entry lowered to plan steps: the devices it
// touches (for footprint grouping), its placement-work charge, and the
// state mutation to apply if its plan commits.
type specItem struct {
	key     string // deterministic sort key
	devices []string
	scanned int
	segs    int
	steps   func(cp *plan.ChangePlan)
	apply   func()
}

// specBatch is one packed ChangePlan with the item applies it carries.
type specBatch struct {
	cp    *plan.ChangePlan
	apply []func()
}

// specShrinkItems lowers the diff's removals: whole-app deletions and
// replica scale-downs. Built from live state so reconcile re-applies
// are robust to drift since the diff was computed.
func (c *Controller) specShrinkItems(d *spec.Diff) []specItem {
	var items []specItem
	for _, uri := range d.Delete {
		uri := uri
		app := c.state.app(uri)
		if app == nil {
			continue // already gone
		}
		segs := make([]string, 0, len(app.Replicas))
		for seg := range app.Replicas {
			segs = append(segs, seg)
		}
		sort.Strings(segs)
		var devs []string
		for _, seg := range segs {
			devs = append(devs, app.Replicas[seg]...)
		}
		items = append(items, specItem{
			key:     "delete " + uri,
			devices: devs,
			steps: func(cp *plan.ChangePlan) {
				for _, seg := range segs {
					for _, dev := range app.Replicas[seg] {
						cp.Remove(dev, instanceName(uri, seg))
					}
				}
			},
			apply: func() {
				c.state.deleteApp(uri)
				if app.Tenant != "" {
					c.state.removeTenantApp(app.Tenant, uri)
				}
			},
		})
	}
	for _, sc := range d.ScaleDown {
		sc := sc
		app := c.state.app(sc.URI)
		if app == nil {
			continue
		}
		live := app.Replicas[sc.Segment]
		if len(live) <= sc.Seg.Scale {
			continue // drift since diff: already at/below target
		}
		victims := append([]string(nil), live[sc.Seg.Scale:]...)
		inst := instanceName(sc.URI, sc.Segment)
		items = append(items, specItem{
			key:     "scale-down " + sc.URI + "#" + sc.Segment,
			devices: victims,
			steps: func(cp *plan.ChangePlan) {
				// Newest replicas retire first; the primary survives.
				for i := len(victims) - 1; i >= 0; i-- {
					cp.Remove(victims[i], inst)
				}
			},
			apply: func() {
				app.Replicas[sc.Segment] = app.Replicas[sc.Segment][:sc.Seg.Scale]
			},
		})
	}
	return items
}

// specGrowItems lowers the diff's additions and retunes. Called only
// after the shrink wave committed, so placement sees freed resources
// and swap/scale items read post-shrink replica sets.
func (c *Controller) specGrowItems(d *spec.Diff) ([]specItem, error) {
	var items []specItem
	for _, ra := range d.Create {
		ra := ra
		if c.state.app(ra.URI) != nil {
			continue // drift since diff: already deployed
		}
		path := ra.Path
		if len(path) == 0 {
			path = nil
		}
		dp := ra.Datapath()
		targets, err := c.targetList(path)
		if err != nil {
			return nil, fmt.Errorf("spec: app %s: %w", ra.URI, err)
		}
		placement, err := c.comp.Compile(dp, targets, path)
		if err != nil {
			return nil, fmt.Errorf("spec: app %s: %w", ra.URI, err)
		}
		if err := compiler.CheckSLA(placement, dp); err != nil {
			return nil, fmt.Errorf("spec: app %s: %w", ra.URI, err)
		}
		filter := c.tenantFilter(ra.Tenant)
		replicas := map[string][]string{}
		for _, a := range placement.Assignments {
			replicas[a.Segment] = []string{a.Device}
		}
		scanned := placement.TargetsScanned
		// Extra replicas past each segment's primary.
		var extras []plan.Step
		for i := range ra.Segments {
			seg := &ra.Segments[i]
			exclude := map[string]bool{}
			for _, dv := range replicas[seg.Name] {
				exclude[dv] = true
			}
			for n := 1; n < seg.Scale; n++ {
				dev, sc, err := compiler.PlaceSegment(dp.Segment(seg.Name), c.targets.list(), path, exclude)
				if err != nil {
					return nil, fmt.Errorf("spec: app %s segment %s replica %d: %w", ra.URI, seg.Name, n+1, err)
				}
				scanned += sc
				exclude[dev] = true
				replicas[seg.Name] = append(replicas[seg.Name], dev)
				extras = append(extras, plan.Step{
					Op: plan.OpInstallInstance, Device: dev,
					Instance: instanceName(ra.URI, seg.Name),
					Program:  dp.Segment(seg.Name), Filter: filter,
				})
			}
		}
		var devs []string
		for _, a := range placement.Assignments {
			devs = append(devs, a.Device)
		}
		for _, s := range extras {
			devs = append(devs, s.Device)
		}
		items = append(items, specItem{
			key:     "create " + ra.URI,
			devices: devs,
			scanned: scanned,
			segs:    len(ra.Segments),
			steps: func(cp *plan.ChangePlan) {
				for _, a := range placement.Assignments {
					cp.Install(a.Device, instanceName(ra.URI, a.Segment), dp.Segment(a.Segment), filter, 0)
				}
				cp.Steps = append(cp.Steps, extras...)
			},
			apply: func() {
				app := &App{
					URI:      ra.URI,
					Tenant:   ra.Tenant,
					Datapath: dp,
					Plan:     placement,
					Path:     path,
					Replicas: replicas,
					Status:   StatusRunning,
				}
				c.state.putApp(app)
				if ra.Tenant != "" {
					c.state.addTenantApp(ra.Tenant, ra.URI)
				}
			},
		})
	}
	// Swaps before scale-ups in key order is irrelevant for correctness
	// (scale-up installs already use the desired program), but keep one
	// deterministic order anyway.
	for _, sw := range d.Swap {
		sw := sw
		app := c.state.app(sw.URI)
		if app == nil {
			continue
		}
		liveProg := app.Datapath.Segment(sw.Segment)
		if liveProg != nil && compiler.Fingerprint(liveProg) == sw.Seg.FP {
			continue // drift since diff: already retuned
		}
		devs := append([]string(nil), app.Replicas[sw.Segment]...)
		if len(devs) == 0 {
			continue
		}
		filter := c.tenantFilter(app.Tenant)
		inst := instanceName(sw.URI, sw.Segment)
		items = append(items, specItem{
			key:     "swap " + sw.URI + "#" + sw.Segment,
			devices: devs,
			segs:    1,
			steps: func(cp *plan.ChangePlan) {
				for _, dev := range devs {
					cp.Swap(dev, inst, sw.Seg.Program, filter)
				}
			},
			apply: func() {
				for i, s := range app.Datapath.Segments {
					if s.Name == sw.Segment {
						app.Datapath.Segments[i] = sw.Seg.Program
					}
				}
			},
		})
	}
	for _, su := range d.ScaleUp {
		su := su
		app := c.state.app(su.URI)
		if app == nil {
			continue
		}
		live := app.Replicas[su.Segment]
		delta := su.Seg.Scale - len(live)
		if delta <= 0 {
			continue
		}
		// Install the *desired* program: if this segment is also being
		// retuned, the swap item covers existing replicas and new ones
		// start on the new program directly.
		prog := su.Seg.Program
		filter := c.tenantFilter(app.Tenant)
		inst := instanceName(su.URI, su.Segment)
		exclude := map[string]bool{}
		for _, dv := range live {
			exclude[dv] = true
		}
		var devs []string
		scanned := 0
		path := app.Path
		for n := 0; n < delta; n++ {
			dev, sc, err := compiler.PlaceSegment(prog, c.targets.list(), path, exclude)
			if err != nil {
				return nil, fmt.Errorf("spec: scale-up %s#%s: %w", su.URI, su.Segment, err)
			}
			scanned += sc
			exclude[dev] = true
			devs = append(devs, dev)
		}
		items = append(items, specItem{
			key:     "scale-up " + su.URI + "#" + su.Segment,
			devices: devs,
			scanned: scanned,
			segs:    1,
			steps: func(cp *plan.ChangePlan) {
				for _, dev := range devs {
					cp.Install(dev, inst, prog, filter, 0)
				}
			},
			apply: func() {
				app.Replicas[su.Segment] = append(app.Replicas[su.Segment], devs...)
			},
		})
	}
	return items, nil
}

// packSpecPlans groups items into device-footprint components
// (union-find: items sharing any device must share a plan, because the
// executor serializes overlapping footprints anyway) and packs the
// components round-robin into at most maxPlans batched ChangePlans.
// Plans in the result share no device, so conflict admission runs them
// concurrently.
func (c *Controller) packSpecPlans(items []specItem, wave, origin string, degraded bool, maxPlans int) []*specBatch {
	if len(items) == 0 {
		return nil
	}
	sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })

	// Union-find over item indices, keyed by shared devices.
	parent := make([]int, len(items))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	owner := map[string]int{}
	for i, it := range items {
		for _, dev := range it.devices {
			if j, ok := owner[dev]; ok {
				ri, rj := find(i), find(j)
				if ri != rj {
					if rj < ri {
						ri, rj = rj, ri
					}
					parent[rj] = ri // smaller index wins: deterministic roots
				}
			} else {
				owner[dev] = i
			}
		}
	}
	comps := map[int][]int{}
	var roots []int
	for i := range items {
		r := find(i)
		if _, ok := comps[r]; !ok {
			roots = append(roots, r)
		}
		comps[r] = append(comps[r], i)
	}
	sort.Ints(roots)

	n := maxPlans
	if len(roots) < n {
		n = len(roots)
	}
	batches := make([]*specBatch, n)
	type acc struct{ scanned, segs int }
	charges := make([]acc, n)
	for bi := range batches {
		cp := plan.New(fmt.Sprintf("spec %s %s[%d]", origin, wave, bi))
		cp.Origin = "spec:" + origin
		cp.AllowDegraded = degraded
		batches[bi] = &specBatch{cp: cp}
	}
	for ci, r := range roots {
		b := batches[ci%n]
		for _, i := range comps[r] {
			items[i].steps(b.cp)
			if items[i].apply != nil {
				b.apply = append(b.apply, items[i].apply)
			}
			charges[ci%n].scanned += items[i].scanned
			charges[ci%n].segs += items[i].segs
		}
	}
	for bi, b := range batches {
		b.cp.Planning(c.planningCharge(charges[bi].scanned, charges[bi].segs))
	}
	return batches
}

// runSpecWave executes a wave's batches (concurrently where footprints
// allow — always, by construction) and fires done with the first error
// once every batch settled. Committed batches apply their items' state
// mutations before done.
func (c *Controller) runSpecWave(ctx context.Context, batches []*specBatch, rep *SpecReport, done func(error)) {
	if len(batches) == 0 {
		done(nil)
		return
	}
	remaining := len(batches)
	var firstErr error
	for _, b := range batches {
		b := b
		c.exec.ExecuteCtx(ctx, b.cp, func(r *plan.Report) {
			c.lastReport = r
			rep.Plans = append(rep.Plans, r)
			if r.Err != nil {
				if firstErr == nil {
					firstErr = r.Err
				}
			} else {
				for _, f := range b.apply {
					f()
				}
			}
			remaining--
			if remaining == 0 {
				done(firstErr)
			}
		})
	}
}

// ApplySpec converges the network to a resolved spec: tenants are
// admitted, the diff is compiled into shrink- and grow-wave batched
// plans (see the file comment), departed tenants are released, and the
// applied revision is recorded in the audit trail. done fires once the
// network matches the spec (or with the first error; committed batches
// stay committed — re-apply to continue converging).
//
// Applying the same spec twice is a no-op: the second diff is empty
// and zero plans are emitted.
func (c *Controller) ApplySpec(ctx context.Context, r *spec.Resolved, opts SpecOptions, done func(*SpecReport, error)) {
	maxPlans := opts.MaxPlans
	if maxPlans <= 0 {
		maxPlans = DefaultSpecMaxPlans
	}
	if opts.DryRun {
		d := c.DiffSpec(r)
		rep := &SpecReport{Version: r.Version, Diff: d, Ops: d.Ops()}
		for _, b := range c.packSpecPlans(c.specShrinkItems(d), "shrink", r.Version, true, maxPlans) {
			rep.Plans = append(rep.Plans, c.exec.Validate(b.cp))
		}
		rep.PlansEmitted = len(rep.Plans)
		if done != nil {
			done(rep, nil)
		}
		return
	}

	count := c.instrument("spec_apply", nil)
	finish := func(rep *SpecReport, err error) {
		c.specMu.Lock()
		c.specApply = false
		c.specMu.Unlock()
		count(err)
		if done != nil {
			done(rep, err)
		}
	}
	c.specMu.Lock()
	if c.specApply {
		c.specMu.Unlock()
		count(errSpecBusy)
		if done != nil {
			done(nil, errSpecBusy)
		}
		return
	}
	c.specApply = true
	c.specMu.Unlock()

	start := c.fab.Sim.Now()
	d := c.DiffSpec(r)
	rep := &SpecReport{Version: r.Version, Diff: d, Ops: d.Ops()}
	settle := func(err error) {
		rep.PlansEmitted = len(rep.Plans)
		rep.Elapsed = c.fab.Sim.Now() - start
		if err == nil {
			c.specMu.Lock()
			c.lastSpec = r
			c.lastSpecAt = c.fab.Sim.Now()
			c.specMu.Unlock()
		}
		finish(rep, err)
	}
	if d.Empty() {
		settle(nil)
		return
	}

	for _, t := range d.AddTenants {
		if _, err := c.AddTenant(t); err != nil {
			settle(err)
			return
		}
	}
	shrink := c.packSpecPlans(c.specShrinkItems(d), "shrink", r.Version, true, maxPlans)
	c.runSpecWave(ctx, shrink, rep, func(err error) {
		if err != nil {
			settle(err)
			return
		}
		items, err := c.specGrowItems(d)
		if err != nil {
			settle(err)
			return
		}
		grow := c.packSpecPlans(items, "grow", r.Version, false, maxPlans)
		c.runSpecWave(ctx, grow, rep, func(err error) {
			if err != nil {
				settle(err)
				return
			}
			var firstErr error
			for _, t := range d.RemoveTenants {
				// Shrink already deleted the tenant's apps, so this
				// settles synchronously.
				c.RemoveTenant(ctx, t, func(e error) {
					if e != nil && firstErr == nil {
						firstErr = e
					}
				})
			}
			if firstErr == nil {
				c.audit.Append(audit.Record{
					Kind:        "spec-apply",
					SpecVersion: r.Version,
					Origin:      "spec:" + r.Version,
				})
			}
			settle(firstErr)
		})
	})
}

var errSpecBusy = fmt.Errorf("controller: a spec apply is already in flight")

// SpecStatus is the declarative-intent view flexctl spec status shows.
type SpecStatus struct {
	// Version of the last successfully applied spec ("" before any).
	Version string
	// AppliedAt is the simulated time of that apply.
	AppliedAt netsim.Time
	// InSync reports whether live state still matches the spec.
	InSync bool
	// Drift lists the divergences when not in sync (diff summary lines).
	Drift []string
	// AuditRecords / AuditHead describe the mutation trail.
	AuditRecords int
	AuditHead    string
}

// SpecStatus reports the last applied spec and whether live state has
// drifted from it.
func (c *Controller) SpecStatus() SpecStatus {
	c.specMu.Lock()
	last := c.lastSpec
	at := c.lastSpecAt
	c.specMu.Unlock()
	st := SpecStatus{
		AuditRecords: c.audit.Len(),
		AuditHead:    c.audit.Head(),
	}
	if last == nil {
		return st
	}
	st.Version = last.Version
	st.AppliedAt = at
	d := spec.Compute(last, c.LiveSpecState())
	st.InSync = d.Empty()
	if !st.InSync {
		st.Drift = d.Summary()
	}
	return st
}

// SpecReconciler is the continuous-reconcile loop: each period it
// re-diffs the last applied spec against live state and re-applies it
// when anything drifted (an imperative mutation, a failed partial
// apply). The gitops analogue of the self-healer — heal.go repairs
// devices back to controller intent; this repairs controller intent
// back to the declared spec.
type SpecReconciler struct {
	c      *Controller
	ticker *netsim.Ticker
	// Applies counts corrective applies; LastErr is the most recent
	// apply error (nil when converged).
	Applies int
	LastErr error
}

// StartSpecReconcile begins the loop. Off by default, so spec-free runs
// are byte-identical with or without this code.
func (c *Controller) StartSpecReconcile(every netsim.Time) *SpecReconciler {
	r := &SpecReconciler{c: c}
	r.ticker = c.fab.Sim.Every(every, r.tick)
	return r
}

// Stop halts the loop (an in-flight corrective apply still finishes).
func (r *SpecReconciler) Stop() { r.ticker.Stop() }

func (r *SpecReconciler) tick() {
	c := r.c
	c.specMu.Lock()
	last := c.lastSpec
	busy := c.specApply
	c.specMu.Unlock()
	if last == nil || busy {
		return
	}
	if c.DiffSpec(last).Empty() {
		return
	}
	c.fab.Metrics.Counter("ctl.spec.reconciles").Inc()
	c.ApplySpec(context.Background(), last, SpecOptions{}, func(_ *SpecReport, err error) {
		r.Applies++
		r.LastErr = err
	})
}
