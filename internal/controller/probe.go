package controller

import (
	"fmt"

	"flexnet/internal/apps"
	"flexnet/internal/fabric"
	"flexnet/internal/netsim"
	"flexnet/internal/packet"
	"flexnet/internal/runtime"
)

// ProbeReport is the outcome of a transient path diagnosis.
type ProbeReport struct {
	// Hops is the number of instrumented devices the probe traversed.
	Hops uint64
	// LastDevice is the telemetry id stamped by the final hop.
	LastDevice uint64
	// PathLatency is source-to-destination transit time of the probe.
	PathLatency netsim.Time
	// LastHopClockNs is the final hop's device-local timestamp.
	LastHopClockNs uint64
	// InjectedAt and CleanedAt bound the utility's lifetime: before
	// InjectedAt and after CleanedAt the network carries no probe code.
	InjectedAt netsim.Time
	CleanedAt  netsim.Time
	Err        error
}

// probePort marks probe packets (an ephemeral source port).
const probePort = 65001

// Probe implements the paper's transient utility functions (§3.4:
// "in-network monitoring, execution tracking, and diagnosis primitives
// ... do not have a persistent footprint inside the network, but are
// injected in real-time for maintenance tasks and removed soon after"):
//
//  1. An INT-stamping telemetry program is installed at runtime on every
//     device of the path (hitless, simultaneous commit).
//  2. One probe packet is sent from srcHost toward dstIP; the
//     destination host reports its accumulated telemetry.
//  3. The programs are removed in one more runtime change. Device
//     resources after CleanedAt are bit-identical to before InjectedAt.
//
// done receives the report once cleanup commits.
func (c *Controller) Probe(srcHost string, dstIP uint32, path []string, done func(ProbeReport)) {
	rep := ProbeReport{InjectedAt: c.fab.Sim.Now()}
	fail := func(err error) {
		rep.Err = err
		done(rep)
	}
	h := c.fab.Host(srcHost)
	if h == nil {
		fail(fmt.Errorf("controller: no host %q", srcHost))
		return
	}
	dst := c.hostByIP(dstIP)
	if dst == nil {
		fail(fmt.Errorf("controller: no host with IP %#x to terminate the probe", dstIP))
		return
	}
	for _, dev := range path {
		if c.fab.Device(dev) == nil {
			fail(fmt.Errorf("controller: no device %q on probe path", dev))
			return
		}
	}

	progName := func(dev string) string { return "_probe." + dev }
	cleanup := func() {
		rc := &runtime.NetworkChange{Mode: runtime.ConsistencySimultaneous}
		for _, dev := range path {
			rc.Changes = append(rc.Changes, &runtime.Change{
				Device:  c.fab.Device(dev),
				Removes: []string{progName(dev)},
			})
		}
		c.eng.ApplyNetworkRuntime(rc, func(netsim.Time, []error) {
			rep.CleanedAt = c.fab.Sim.Now()
			done(rep)
		})
	}

	// 1. Inject the telemetry utility on every path device at once.
	nc := &runtime.NetworkChange{Mode: runtime.ConsistencySimultaneous}
	for i, dev := range path {
		prog := apps.INTTelemetry(progName(dev), uint64(i+1))
		nc.Changes = append(nc.Changes, &runtime.Change{
			Device:   c.fab.Device(dev),
			Installs: []runtime.Install{{Program: prog}},
		})
	}
	c.eng.ApplyNetworkRuntime(nc, func(total netsim.Time, errs []error) {
		if len(errs) > 0 {
			fail(errs[0])
			return
		}
		// 2. Intercept the probe at the destination.
		prev := dst.Recv
		seen := false
		dst.Recv = func(p *packet.Packet) {
			if !seen && p.Has("int") && p.Field("tcp.sport") == probePort {
				seen = true
				dst.Recv = prev
				rep.Hops = p.Field("int.hopcount")
				rep.LastDevice = p.Field("int.device")
				rep.LastHopClockNs = p.Field("int.latency")
				if sent, ok := p.Meta["sent_at"]; ok {
					rep.PathLatency = c.fab.Sim.Now() - netsim.Time(sent)
				}
				// 3. Retire the utility immediately.
				cleanup()
				return
			}
			if prev != nil {
				prev(p)
			}
		}
		probe := packet.TCPPacket(0, h.IP, dstIP, probePort, 7, 0, 0)
		h.Send(probe)
		// Watchdog: a lost probe must not leave the utility installed.
		c.fab.Sim.After(500_000_000, func() {
			if !seen {
				seen = true
				dst.Recv = prev
				rep.Err = fmt.Errorf("controller: probe packet lost")
				cleanup()
			}
		})
	})
}

// hostByIP finds a fabric host by address.
func (c *Controller) hostByIP(ip uint32) *fabric.Host {
	for _, hn := range c.fab.Hosts() {
		if h := c.fab.Host(hn); h.IP == ip {
			return h
		}
	}
	return nil
}
