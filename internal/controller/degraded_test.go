package controller

import (
	"context"
	"testing"
	"time"

	"flexnet/internal/apps"
	"flexnet/internal/flexbpf"
	"flexnet/internal/netsim"
	"flexnet/internal/plan"
)

// Removing an app while one of its replicas' devices is down must not
// wedge: the plan commits on the survivors, skips the dead device, and
// reports OutcomeDegraded with the skipped steps named.
func TestRemoveDegradedWithDeviceDown(t *testing.T) {
	f, ctl := testbed(t)
	uri := "flexnet://t/syn"
	dp := &flexbpf.Datapath{Name: uri, Segments: []*flexbpf.Program{apps.SYNDefense("syn", 1024, 10)}}
	deploy(t, f, ctl, uri, dp, DeployOptions{Path: []string{"s1"}})

	var err error
	done := netsim.Time(0)
	ctl.ScaleOut(context.Background(), uri, "syn", "s2", func(e error) { err = e; done = f.Sim.Now() })
	f.Sim.RunFor(2 * time.Second)
	if done == 0 || err != nil {
		t.Fatalf("scale-out: done=%v err=%v", done, err)
	}

	f.Device("s2").Crash() // stays down: remove must degrade around it

	done = 0
	ctl.Remove(context.Background(), uri, func(e error) { err = e; done = f.Sim.Now() })
	f.Sim.RunFor(2 * time.Second)
	if done == 0 {
		t.Fatal("remove never completed")
	}
	if err != nil {
		t.Fatalf("remove: %v", err)
	}
	rep := ctl.LastReport()
	if rep.Outcome != plan.OutcomeDegraded {
		t.Fatalf("outcome = %v, want degraded", rep.Outcome)
	}
	if len(rep.Degraded) == 0 {
		t.Fatal("no degraded detail recorded")
	}
	if f.Device("s1").Instance(uri+"#syn") != nil {
		t.Fatal("instance survives on healthy device")
	}
	if ctl.App(uri) != nil {
		t.Fatal("app still registered after degraded remove")
	}
}

// A fully healthy remove must stay a plain success — degraded mode only
// engages when a device is actually down.
func TestRemoveHealthyNotDegraded(t *testing.T) {
	f, ctl := testbed(t)
	uri := "flexnet://t/syn"
	dp := &flexbpf.Datapath{Name: uri, Segments: []*flexbpf.Program{apps.SYNDefense("syn", 1024, 10)}}
	deploy(t, f, ctl, uri, dp, DeployOptions{Path: []string{"s1"}})

	var err error
	done := netsim.Time(0)
	ctl.Remove(context.Background(), uri, func(e error) { err = e; done = f.Sim.Now() })
	f.Sim.RunFor(2 * time.Second)
	if done == 0 || err != nil {
		t.Fatalf("remove: done=%v err=%v", done, err)
	}
	rep := ctl.LastReport()
	if rep.Outcome != plan.OutcomeSucceeded || len(rep.Degraded) != 0 {
		t.Fatalf("outcome = %v degraded=%v, want clean success", rep.Outcome, rep.Degraded)
	}
}
