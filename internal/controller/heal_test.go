package controller

import (
	"strings"
	"testing"
	"time"

	"flexnet/internal/apps"
	"flexnet/internal/flexbpf"
	"flexnet/internal/plan"
)

// A crash wipes the device; the healer must reinstall the app and the
// infra routing program and record one bounded MTTR.
func TestHealerReconcilesCrash(t *testing.T) {
	f, ctl := testbed(t)
	dp := &flexbpf.Datapath{Name: "flexnet://t/syn", Segments: []*flexbpf.Program{apps.SYNDefense("syn", 1024, 10)}}
	deploy(t, f, ctl, "flexnet://t/syn", dp, DeployOptions{Path: []string{"s1"}})
	h := ctl.StartHealer(time.Millisecond)

	d := f.Device("s1")
	d.Crash()
	if got := d.Programs(); len(got) != 0 {
		t.Fatalf("programs survive crash: %v", got)
	}
	if drift := ctl.IntentDrift(); len(drift) == 0 {
		t.Fatal("no intent drift after crash")
	}
	f.Sim.After(10*time.Millisecond, d.Restart)
	f.Sim.RunFor(500 * time.Millisecond)

	if h.Recovered() != 1 {
		t.Fatalf("recovered = %d, want 1", h.Recovered())
	}
	if len(h.Pending()) != 0 {
		t.Fatalf("pending = %v, want none", h.Pending())
	}
	if drift := ctl.IntentDrift(); len(drift) != 0 {
		t.Fatalf("drift after heal: %v", drift)
	}
	if d.Instance("flexnet://t/syn#syn") == nil {
		t.Fatal("app instance not reinstalled")
	}
	// MTTR = 10ms restart + 1ms scan period + plan execution; anything
	// over a second means the healer dawdled.
	mttr := time.Duration(h.MTTRs[0])
	if mttr < 10*time.Millisecond || mttr > time.Second {
		t.Fatalf("MTTR %v out of bounds", mttr)
	}
	rep := h.Reports[len(h.Reports)-1]
	if rep.Outcome != plan.OutcomeSucceeded {
		t.Fatalf("reconcile outcome = %v", rep.Outcome)
	}
}

// A device that is still down stays pending; the healer must not try to
// reconcile it until it restarts.
func TestHealerWaitsForRestart(t *testing.T) {
	f, ctl := testbed(t)
	dp := &flexbpf.Datapath{Name: "flexnet://t/syn", Segments: []*flexbpf.Program{apps.SYNDefense("syn", 1024, 10)}}
	deploy(t, f, ctl, "flexnet://t/syn", dp, DeployOptions{Path: []string{"s1"}})
	h := ctl.StartHealer(time.Millisecond)

	f.Device("s1").Crash()
	f.Sim.RunFor(100 * time.Millisecond)
	if h.Recovered() != 0 {
		t.Fatalf("recovered a down device: %d", h.Recovered())
	}
	if got := h.Pending(); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("pending = %v, want [s1]", got)
	}
	f.Device("s1").Restart()
	f.Sim.RunFor(500 * time.Millisecond)
	if h.Recovered() != 1 {
		t.Fatalf("recovered = %d after restart, want 1", h.Recovered())
	}
}

// Crash generations accumulate: two crashes separated by quiet periods
// mean two recoveries, and a crash during reconciliation retries rather
// than recording a bogus recovery.
func TestHealerRepeatCrashes(t *testing.T) {
	f, ctl := testbed(t)
	dp := &flexbpf.Datapath{Name: "flexnet://t/syn", Segments: []*flexbpf.Program{apps.SYNDefense("syn", 1024, 10)}}
	deploy(t, f, ctl, "flexnet://t/syn", dp, DeployOptions{Path: []string{"s1"}})
	h := ctl.StartHealer(time.Millisecond)

	d := f.Device("s1")
	for i := 0; i < 2; i++ {
		d.Crash()
		f.Sim.After(10*time.Millisecond, d.Restart)
		f.Sim.RunFor(500 * time.Millisecond)
	}
	if h.Recovered() != 2 {
		t.Fatalf("recovered = %d, want 2", h.Recovered())
	}
	if len(ctl.IntentDrift()) != 0 {
		t.Fatalf("drift: %v", ctl.IntentDrift())
	}
}

// IntentDrift names the missing instance and device.
func TestIntentDriftNamesMissing(t *testing.T) {
	f, ctl := testbed(t)
	dp := &flexbpf.Datapath{Name: "flexnet://t/syn", Segments: []*flexbpf.Program{apps.SYNDefense("syn", 1024, 10)}}
	deploy(t, f, ctl, "flexnet://t/syn", dp, DeployOptions{Path: []string{"s1"}})
	f.Device("s1").Crash()
	drift := ctl.IntentDrift()
	if len(drift) != 1 {
		t.Fatalf("drift = %v, want one entry", drift)
	}
	if !strings.Contains(drift[0], "s1") || !strings.Contains(drift[0], "flexnet://t/syn#syn") {
		t.Fatalf("drift entry %q does not name device and instance", drift[0])
	}
}
