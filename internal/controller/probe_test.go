package controller

import (
	"testing"
	"time"

	"flexnet/internal/fabric"
	"flexnet/internal/flexbpf"
	"flexnet/internal/netsim"
	"flexnet/internal/packet"
)

func TestProbeTransientUtility(t *testing.T) {
	f, c := testbed(t)
	// Record the exact resource state of every path device beforehand.
	before := map[string]flexbpf.Demand{}
	for _, dev := range []string{"nic1", "s1", "s2"} {
		before[dev] = f.Device(dev).Free()
	}
	// Background traffic keeps the path busy during the probe.
	src := mustSource(t, f, "h1", packet.IP(10, 0, 0, 2))
	src.StartCBR(10000)

	var rep ProbeReport
	gotRep := false
	f.Sim.At(20*time.Millisecond, func() {
		c.Probe("h1", packet.IP(10, 0, 0, 2), []string{"nic1", "s1", "s2"}, func(r ProbeReport) {
			rep = r
			gotRep = true
		})
	})
	f.Sim.RunFor(2 * time.Second)
	src.Stop()
	f.Sim.RunFor(20 * time.Millisecond)

	if !gotRep {
		t.Fatal("probe never completed")
	}
	if rep.Err != nil {
		t.Fatalf("probe failed: %v", rep.Err)
	}
	if rep.Hops != 3 {
		t.Fatalf("probe hops = %d, want 3", rep.Hops)
	}
	if rep.LastDevice != 3 {
		t.Fatalf("last device id = %d, want 3", rep.LastDevice)
	}
	if rep.PathLatency <= 0 {
		t.Fatalf("path latency = %v", rep.PathLatency)
	}
	if rep.CleanedAt <= rep.InjectedAt {
		t.Fatal("cleanup did not happen after injection")
	}
	// The defining property: zero persistent footprint.
	for dev, want := range before {
		if got := f.Device(dev).Free(); got != want {
			t.Fatalf("%s resources changed after probe: %v != %v", dev, got, want)
		}
		for _, prog := range f.Device(dev).Programs() {
			if prog != "infra.routing" {
				t.Fatalf("%s still hosts %q after probe cleanup", dev, prog)
			}
		}
	}
	// Background traffic was never disturbed.
	if f.InfrastructureDrops() != 0 {
		t.Fatalf("probe disturbed traffic: %d drops", f.InfrastructureDrops())
	}
}

func TestProbeErrors(t *testing.T) {
	f, c := testbed(t)
	var rep ProbeReport
	c.Probe("ghost", packet.IP(10, 0, 0, 2), []string{"s1"}, func(r ProbeReport) { rep = r })
	if rep.Err == nil {
		t.Fatal("probe from unknown host succeeded")
	}
	c.Probe("h1", packet.IP(99, 9, 9, 9), []string{"s1"}, func(r ProbeReport) { rep = r })
	if rep.Err == nil {
		t.Fatal("probe to unknown destination succeeded")
	}
	c.Probe("h1", packet.IP(10, 0, 0, 2), []string{"sX"}, func(r ProbeReport) { rep = r })
	if rep.Err == nil {
		t.Fatal("probe over unknown device succeeded")
	}
	_ = f
}

func TestProbeWatchdogCleansUpOnLoss(t *testing.T) {
	f, c := testbed(t)
	// Break the path after injection so the probe is lost: down the
	// s2—h2 link right away.
	gotRep := false
	var rep ProbeReport
	f.Net.LinkBetween("s2", "h2").Down = true
	c.Probe("h1", packet.IP(10, 0, 0, 2), []string{"s1", "s2"}, func(r ProbeReport) {
		rep = r
		gotRep = true
	})
	f.Sim.RunFor(3 * time.Second)
	if !gotRep {
		t.Fatal("watchdog never fired")
	}
	if rep.Err == nil {
		t.Fatal("lost probe reported success")
	}
	// Utility still cleaned up.
	for _, dev := range []string{"s1", "s2"} {
		for _, prog := range f.Device(dev).Programs() {
			if prog != "infra.routing" {
				t.Fatalf("%s still hosts %q after watchdog cleanup", dev, prog)
			}
		}
	}
}

func mustSource(t *testing.T, f *fabric.Fabric, host string, dst uint32) *netsim.Source {
	t.Helper()
	h := f.Host(host)
	if h == nil {
		t.Fatalf("no host %s", host)
	}
	return h.NewSource(netsim.FlowSpec{Dst: dst, Proto: packet.ProtoUDP, SrcPort: 1, DstPort: 2, PacketLen: 100})
}
