package controller

import (
	"context"
	"strings"
	"testing"
	"time"

	"flexnet/internal/apps"
	"flexnet/internal/flexbpf"
	"flexnet/internal/flexbpf/delta"
	"flexnet/internal/packet"
)

func TestUpdateAppHotPatch(t *testing.T) {
	f, c := testbed(t)
	dp := &flexbpf.Datapath{Name: "d", Segments: []*flexbpf.Program{apps.SYNDefense("sd", 256, 5)}}
	deploy(t, f, c, "flexnet://infra/d", dp, DeployOptions{Path: []string{"s1"}})

	// Warm some state: 4 SYNs from one source (below threshold 5).
	dev := f.Device("s1")
	for i := 0; i < 4; i++ {
		p := packet.TCPPacket(uint64(i), packet.IP(9, 9, 9, 9), packet.IP(10, 0, 0, 2), uint16(i), 80, packet.TCPSyn, 0)
		dev.Process(p)
	}

	// The upgrade: grow the tracking map 256 → 1024 — a capacity bump
	// applied to the live program with its state carried across.
	grow := &delta.Delta{Name: "grow", Ops: []delta.Op{
		{RemoveMaps: "sd_syn"},
		{AddMap: &flexbpf.MapSpec{Name: "sd_syn", Kind: flexbpf.MapLRU, MaxEntries: 1024, ValueBits: 32, Shared: true}},
	}}
	var rep *delta.Report
	var err error
	c.UpdateApp(context.Background(), "flexnet://infra/d", "sd", grow, func(r *delta.Report, e error) { rep, err = r, e })
	f.Sim.RunFor(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.MapsRemoved) != 1 || len(rep.MapsAdded) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	inst := dev.Instance("flexnet://infra/d#sd")
	if inst == nil {
		t.Fatal("instance gone after update")
	}
	// The new map is bigger AND kept the old state (4 SYNs tracked).
	m := inst.Store().Map("sd_syn")
	if v, ok := m.Load(uint64(packet.IP(9, 9, 9, 9))); !ok || v != 4 {
		t.Fatalf("state lost across update: v=%d ok=%v", v, ok)
	}
	// Behaviour continuity: the 5th SYN passes, the 6th drops.
	p5 := packet.TCPPacket(10, packet.IP(9, 9, 9, 9), packet.IP(10, 0, 0, 2), 99, 80, packet.TCPSyn, 0)
	if st := dev.Process(p5); st.Verdict == packet.VerdictDrop {
		t.Fatal("5th SYN dropped (threshold state corrupted)")
	}
	p6 := packet.TCPPacket(11, packet.IP(9, 9, 9, 9), packet.IP(10, 0, 0, 2), 100, 80, packet.TCPSyn, 0)
	if st := dev.Process(p6); st.Verdict != packet.VerdictDrop {
		t.Fatal("6th SYN passed (update lost the counting logic)")
	}
}

func TestUpdateAppErrors(t *testing.T) {
	f, c := testbed(t)
	dp := &flexbpf.Datapath{Name: "d", Segments: []*flexbpf.Program{apps.SYNDefense("sd", 256, 5)}}
	deploy(t, f, c, "flexnet://infra/d", dp, DeployOptions{Path: []string{"s1"}})

	var err error
	c.UpdateApp(context.Background(), "flexnet://ghost/x", "sd", &delta.Delta{}, func(r *delta.Report, e error) { err = e })
	if err == nil {
		t.Fatal("update of unknown app succeeded")
	}
	c.UpdateApp(context.Background(), "flexnet://infra/d", "nope", &delta.Delta{}, func(r *delta.Report, e error) { err = e })
	if err == nil {
		t.Fatal("update of unknown segment succeeded")
	}
	// A delta that breaks verification is rejected before touching devices.
	bad := &delta.Delta{Name: "bad", Ops: []delta.Op{{RemoveMaps: "sd_syn"}}}
	c.UpdateApp(context.Background(), "flexnet://infra/d", "sd", bad, func(r *delta.Report, e error) { err = e })
	if err == nil || !strings.Contains(err.Error(), "verify") {
		t.Fatalf("unverifiable delta accepted: %v", err)
	}
	// Device unchanged.
	if f.Device("s1").Instance("flexnet://infra/d#sd") == nil {
		t.Fatal("instance disturbed by rejected delta")
	}
}

func TestUpdateAppAcrossReplicas(t *testing.T) {
	f, c := testbed(t)
	dp := &flexbpf.Datapath{Name: "d", Segments: []*flexbpf.Program{apps.SYNDefense("sd", 256, 5)}}
	deploy(t, f, c, "flexnet://infra/d", dp, DeployOptions{Path: []string{"s1"}})
	var err error
	c.ScaleOut(context.Background(), "flexnet://infra/d", "sd", "s2", func(e error) { err = e })
	f.Sim.RunFor(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	grow := &delta.Delta{Name: "grow", Ops: []delta.Op{
		{ResizeTables: "nonexistent*"},
	}}
	// Resize with no match errors (both replicas untouched).
	c.UpdateApp(context.Background(), "flexnet://infra/d", "sd", grow, func(r *delta.Report, e error) { err = e })
	f.Sim.RunFor(time.Second)
	if err == nil {
		t.Fatal("no-match delta accepted")
	}

	ok := &delta.Delta{Name: "bigger-map", Ops: []delta.Op{
		{RemoveMaps: "sd_syn"},
		{AddMap: &flexbpf.MapSpec{Name: "sd_syn", Kind: flexbpf.MapLRU, MaxEntries: 2048, ValueBits: 32}},
	}}
	c.UpdateApp(context.Background(), "flexnet://infra/d", "sd", ok, func(r *delta.Report, e error) { err = e })
	f.Sim.RunFor(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Both replicas upgraded.
	for _, sw := range []string{"s1", "s2"} {
		inst := f.Device(sw).Instance("flexnet://infra/d#sd")
		if inst == nil {
			t.Fatalf("%s lost the instance", sw)
		}
		found := false
		for _, m := range inst.Program().Maps {
			if m.Name == "sd_syn" && m.MaxEntries == 2048 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s not upgraded", sw)
		}
	}
}
