package controller

import (
	"context"
	"fmt"
	"sort"

	"flexnet/internal/dataplane"
	"flexnet/internal/fabric"
	"flexnet/internal/netsim"
	"flexnet/internal/plan"
	"flexnet/internal/telemetry"
)

// Healer is the controller's self-healing reconciliation loop
// (DESIGN.md §10): on a fixed period it scans every device for crash
// generations it has not yet handled, diffs the controller's desired
// intent (the infra routing program plus every committed app replica
// assigned to the device) against what the restarted device actually
// holds, and executes a ChangePlan that reinstalls whatever is missing
// and refreshes routes. Each reconciliation goes through the ordinary
// transactional executor and leaves an ordinary plan report.
//
// The healer is off until StartHealer is called, so fault-free runs are
// byte-identical with or without this code. All its telemetry
// instruments ("heal.*") are created lazily on the first actual
// recovery for the same reason.
//
// Per-flow application state that lived only on the crashed device is
// not resurrected — it died with the hardware. Reconciliation restores
// committed intent (programs, filters, routing entries), which is
// exactly what the controller promised to keep installed.
type Healer struct {
	c      *Controller
	ticker *netsim.Ticker
	// handled maps device → last crash generation reconciled.
	handled map[string]uint64
	// inflight guards against double-reconciling a device whose plan is
	// still in the executor queue.
	inflight map[string]bool

	// MTTRs records each recovery's crash→reconciled latency in
	// simulated nanoseconds, in recovery order.
	MTTRs []uint64
	// Reports holds every reconciliation plan report, oldest first.
	Reports []*plan.Report
	// OnRecover, when set, fires after a device's reconciliation
	// commits.
	OnRecover func(device string, rep *plan.Report)
}

// StartHealer begins the reconciliation loop, scanning every device
// each period. Call once; the returned Healer exposes recovery stats.
func (c *Controller) StartHealer(every netsim.Time) *Healer {
	h := &Healer{
		c:        c,
		handled:  map[string]uint64{},
		inflight: map[string]bool{},
	}
	h.ticker = c.fab.Sim.Every(every, h.scan)
	return h
}

// Stop halts the loop (in-flight reconciliations still finish).
func (h *Healer) Stop() { h.ticker.Stop() }

// Pending returns the devices with an unreconciled crash generation —
// empty once the healer has caught up with every restart. Devices that
// are still down are pending too: they cannot be reconciled until they
// restart.
func (h *Healer) Pending() []string {
	var out []string
	for _, name := range h.c.fab.Devices() {
		d := h.c.fab.Device(name)
		if d.DownGen() > h.handled[name] {
			out = append(out, name)
		}
	}
	return out
}

// Recovered returns the number of completed reconciliations.
func (h *Healer) Recovered() int { return len(h.MTTRs) }

// scan is one tick: find restarted devices with unhandled crash
// generations and reconcile them. Devices() is sorted, so the order —
// and therefore the executor queue and all downstream telemetry — is
// deterministic.
func (h *Healer) scan() {
	for _, name := range h.c.fab.Devices() {
		d := h.c.fab.Device(name)
		gen := d.DownGen()
		if gen <= h.handled[name] || d.Down() || h.inflight[name] {
			continue
		}
		h.reconcile(name, d, gen)
	}
}

// reconcile rebuilds one restarted device: install the infra routing
// program and every app instance the controller's intent assigns to the
// device, then refresh routes. On success the crash generation is
// marked handled and the crash→now latency is recorded as MTTR; on
// failure (e.g. the device crashed again mid-plan) nothing is marked,
// so the next scan retries.
func (h *Healer) reconcile(name string, d *dataplane.Device, gen uint64) {
	crashedAt := d.LastDownAt()
	cp := h.desiredPlan(name, d)
	h.inflight[name] = true
	met := h.c.fab.Metrics
	met.Counter("heal.reconciles").Inc()
	installs := 0
	for _, s := range cp.Steps {
		if s.Op == plan.OpInstallInstance {
			installs++
		}
	}
	h.c.exec.ExecuteCtx(context.Background(), cp, func(r *plan.Report) {
		h.inflight[name] = false
		h.Reports = append(h.Reports, r)
		if r.Err != nil || r.Outcome != plan.OutcomeSucceeded {
			met.Counter("heal.failures").Inc()
			return
		}
		h.handled[name] = gen
		mttr := uint64(h.c.fab.Sim.Now()) - crashedAt
		h.MTTRs = append(h.MTTRs, mttr)
		met.Counter("heal.recovered").Inc()
		met.Counter("heal.reinstalled_programs").Add(uint64(installs))
		met.Histogram("heal.mttr_ns", telemetry.DefaultLatencyBounds).Observe(int64(mttr))
		if h.OnRecover != nil {
			h.OnRecover(name, r)
		}
	})
}

// desiredPlan diffs intent against the device's live state: infra
// routing first (so the RouteUpdate step has a table to write), then
// every app replica assigned to this device in sorted app/segment order
// for determinism.
func (h *Healer) desiredPlan(name string, d *dataplane.Device) *plan.ChangePlan {
	cp := plan.New("reconcile " + name)
	cp.Origin = "heal"
	have := map[string]bool{}
	for _, p := range d.Programs() {
		have[p] = true
	}
	if !have[fabric.InfraProgramName] {
		cp.Install(name, fabric.InfraProgramName, fabric.InfraRoutingProgram(), nil, dataplane.PriorityInfra)
	}
	for _, uri := range h.c.Apps() {
		app := h.c.state.app(uri)
		segs := make([]string, 0, len(app.Replicas))
		for seg := range app.Replicas {
			segs = append(segs, seg)
		}
		sort.Strings(segs)
		for _, seg := range segs {
			for _, dev := range app.Replicas[seg] {
				if dev != name {
					continue
				}
				inst := instanceName(uri, seg)
				if have[inst] {
					continue
				}
				prog := app.Datapath.Segment(seg)
				if prog == nil {
					continue
				}
				cp.Install(name, inst, prog, h.c.tenantFilter(app.Tenant), 0)
			}
		}
	}
	cp.RouteUpdate()
	return cp
}

// IntentDrift compares the controller's committed intent against live
// device state and returns a sorted list of discrepancies ("device s1
// missing instance flexnet://t/app#seg"), empty when the network holds
// exactly what was committed. The chaos soak gate asserts this is empty
// after recovery; operators can read it through flexnetd's status op.
func (c *Controller) IntentDrift() []string {
	var out []string
	for _, uri := range c.Apps() {
		app := c.state.app(uri)
		segs := make([]string, 0, len(app.Replicas))
		for seg := range app.Replicas {
			segs = append(segs, seg)
		}
		sort.Strings(segs)
		for _, seg := range segs {
			for _, dev := range app.Replicas[seg] {
				d := c.fab.Device(dev)
				if d == nil {
					out = append(out, fmt.Sprintf("device %s unknown (app %s#%s)", dev, uri, seg))
					continue
				}
				if d.Instance(instanceName(uri, seg)) == nil {
					out = append(out, fmt.Sprintf("device %s missing instance %s", dev, instanceName(uri, seg)))
				}
			}
		}
	}
	return out
}
