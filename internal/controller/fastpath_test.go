package controller

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"flexnet/internal/errdefs"
	"flexnet/internal/flexbpf"
	"flexnet/internal/flexbpf/delta"
)

// mapSeg builds a one-map segment whose only demand knob is the map's
// entry count, so tests can dial resource pressure precisely.
func mapSeg(name string, entries int) *flexbpf.Program {
	return flexbpf.NewProgram(name).
		HashMap(name+"_m", entries, 8).SharedMap().
		Do(flexbpf.NewAsm().Ret().MustBuild()).
		MustBuild()
}

func resizeDelta(seg string, entries int) *delta.Delta {
	return &delta.Delta{Name: fmt.Sprintf("resize-%d", entries), Ops: []delta.Op{
		{RemoveMaps: delta.Pattern(seg + "_m")},
		{AddMap: &flexbpf.MapSpec{Name: seg + "_m", Kind: flexbpf.MapHash, MaxEntries: entries, ValueBits: 8, Shared: true}},
	}}
}

func TestPuntRingOverflowDropsOldest(t *testing.T) {
	drops := 0
	r := NewPuntRing(4)
	r.onDrop = func() { drops++ }
	for i := 0; i < 6; i++ {
		r.Append(PuntRecord{Device: fmt.Sprintf("d%d", i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", r.Len())
	}
	if r.Dropped() != 2 || drops != 2 {
		t.Fatalf("dropped = %d (callback %d), want 2", r.Dropped(), drops)
	}
	all := r.All()
	for i, rec := range all {
		if want := fmt.Sprintf("d%d", i+2); rec.Device != want {
			t.Fatalf("All()[%d] = %s, want %s (oldest-first, oldest two dropped)", i, rec.Device, want)
		}
	}
}

func TestPuntRingDropCounterWired(t *testing.T) {
	f, c := testbed(t)
	// Overflow the controller's own ring: the lazily-created
	// ctl.punts_dropped counter must track exactly the overflow, and the
	// ring must stay at capacity rather than growing without bound.
	for i := 0; i < DefaultPuntRingSize+3; i++ {
		c.Punts.Append(PuntRecord{Device: "s1", FlowID: uint64(i)})
	}
	if c.Punts.Len() != DefaultPuntRingSize {
		t.Fatalf("ring len = %d, want %d", c.Punts.Len(), DefaultPuntRingSize)
	}
	if got := f.Metrics.CounterValue("ctl.punts_dropped"); got != 3 {
		t.Fatalf("ctl.punts_dropped = %d, want 3", got)
	}
}

func TestDeployUnknownPathDeviceIsSentinel(t *testing.T) {
	f, c := testbed(t)
	dp := &flexbpf.Datapath{Name: "x", Segments: []*flexbpf.Program{mapSeg("sa", 128)}}
	_, _, err := c.PlanDeploy("flexnet://infra/x", dp, DeployOptions{Path: []string{"s1", "ghost"}})
	if !errors.Is(err, errdefs.ErrUnknownDevice) {
		t.Fatalf("PlanDeploy err = %v, want errdefs.ErrUnknownDevice", err)
	}
	var deployErr error
	c.Deploy(context.Background(), "flexnet://infra/x", dp, DeployOptions{Path: []string{"ghost"}}, func(e error) { deployErr = e })
	f.Sim.RunFor(time.Second)
	if !errors.Is(deployErr, errdefs.ErrUnknownDevice) {
		t.Fatalf("Deploy err = %v, want errdefs.ErrUnknownDevice", deployErr)
	}
}

func TestScaleOutAutoPlace(t *testing.T) {
	f, c := testbed(t)
	uri := "flexnet://infra/auto"
	dp := &flexbpf.Datapath{Name: "auto", Segments: []*flexbpf.Program{mapSeg("sa", 128)}}
	deploy(t, f, c, uri, dp, DeployOptions{Path: []string{"s1"}})

	// Empty device: the controller picks one — never a device that
	// already holds a replica.
	_, dev, err := c.PlanScaleOut(uri, "sa", "")
	if err != nil {
		t.Fatalf("PlanScaleOut: %v", err)
	}
	if dev == "" || dev == "s1" {
		t.Fatalf("auto-place chose %q", dev)
	}
	var scaleErr error
	doneAt := false
	c.ScaleOut(context.Background(), uri, "sa", "", func(e error) { scaleErr, doneAt = e, true })
	f.Sim.RunFor(2 * time.Second)
	if !doneAt || scaleErr != nil {
		t.Fatalf("ScaleOut: %v (done=%v)", scaleErr, doneAt)
	}
	reps := c.App(uri).Replicas["sa"]
	if len(reps) != 2 || reps[1] != dev {
		t.Fatalf("replicas = %v, want [s1 %s]", reps, dev)
	}
	if f.Device(dev).Instance(uri+"#sa") == nil {
		t.Fatalf("auto-placed replica missing on %s", dev)
	}
	// Unknown segment still errors.
	if _, _, err := c.PlanScaleOut(uri, "ghost", ""); err == nil {
		t.Fatal("PlanScaleOut accepted unknown segment")
	}
}

func TestRedeploySwapsChangedSegmentInPlace(t *testing.T) {
	f, c := testbed(t)
	uri := "flexnet://infra/rd"
	deploy(t, f, c, uri, &flexbpf.Datapath{Name: "rd", Segments: []*flexbpf.Program{mapSeg("sa", 128)}},
		DeployOptions{Path: []string{"s1"}})

	newDP := &flexbpf.Datapath{Name: "rd", Segments: []*flexbpf.Program{mapSeg("sa", 256)}}
	var err error
	done := false
	c.Redeploy(context.Background(), uri, newDP, func(e error) { err, done = e, true })
	f.Sim.RunFor(2 * time.Second)
	if !done || err != nil {
		t.Fatalf("redeploy: %v (done=%v)", err, done)
	}
	app := c.App(uri)
	if got := app.Replicas["sa"]; len(got) != 1 || got[0] != "s1" {
		t.Fatalf("in-place swap moved the replica: %v", got)
	}
	inst := f.Device("s1").Instance(uri + "#sa")
	if inst == nil {
		t.Fatal("instance missing after redeploy")
	}
	if got := inst.Program().Maps[0].MaxEntries; got != 256 {
		t.Fatalf("map size = %d, want 256", got)
	}
}

func TestRedeployAddsAndRemovesSegments(t *testing.T) {
	f, c := testbed(t)
	uri := "flexnet://infra/grow"
	deploy(t, f, c, uri, &flexbpf.Datapath{Name: "g", Segments: []*flexbpf.Program{mapSeg("sa", 128)}},
		DeployOptions{Path: []string{"s1"}})

	run := func(dp *flexbpf.Datapath) {
		t.Helper()
		var err error
		done := false
		c.Redeploy(context.Background(), uri, dp, func(e error) { err, done = e, true })
		f.Sim.RunFor(2 * time.Second)
		if !done || err != nil {
			t.Fatalf("redeploy: %v (done=%v)", err, done)
		}
	}

	run(&flexbpf.Datapath{Name: "g", Segments: []*flexbpf.Program{mapSeg("sa", 128), mapSeg("sb", 64)}})
	app := c.App(uri)
	if len(app.Replicas["sb"]) != 1 {
		t.Fatalf("added segment has replicas %v", app.Replicas["sb"])
	}
	if f.Device(app.Replicas["sb"][0]).Instance(uri+"#sb") == nil {
		t.Fatal("added segment not installed")
	}

	run(&flexbpf.Datapath{Name: "g", Segments: []*flexbpf.Program{mapSeg("sb", 64)}})
	app = c.App(uri)
	if _, ok := app.Replicas["sa"]; ok {
		t.Fatalf("removed segment still registered: %v", app.Replicas)
	}
	if f.Device("s1").Instance(uri+"#sa") != nil {
		t.Fatal("removed segment still installed on s1")
	}
}

func TestUpdateRejectsMoveRedeployPerformsIt(t *testing.T) {
	f, c := testbed(t)
	// Fill most of s1 (dRMT, 12<<22 bit pool, 104 bits/entry) so growing the app's map
	// cannot fit in place.
	filler := "flexnet://infra/filler"
	deploy(t, f, c, filler, &flexbpf.Datapath{Name: "fill", Segments: []*flexbpf.Program{mapSeg("fl", 1<<18)}},
		DeployOptions{Path: []string{"s1"}})
	uri := "flexnet://infra/mv"
	deploy(t, f, c, uri, &flexbpf.Datapath{Name: "mv", Segments: []*flexbpf.Program{mapSeg("sa", 1<<17)}},
		DeployOptions{Path: []string{"s1"}})

	// An update that grows past s1's remaining pool must NOT silently
	// relocate the app: the fast-path contract is that updates stay in
	// place and moves are explicit (Redeploy/Migrate).
	var upErr error
	upDone := false
	c.UpdateApp(context.Background(), uri, "sa", resizeDelta("sa", 1<<18), func(_ *delta.Report, e error) { upErr, upDone = e, true })
	f.Sim.RunFor(2 * time.Second)
	if !upDone {
		t.Fatal("update never completed")
	}
	if !errors.Is(upErr, errdefs.ErrInsufficientResources) || !strings.Contains(fmt.Sprint(upErr), "migrate first") {
		t.Fatalf("update err = %v, want ErrInsufficientResources with 'migrate first' guidance", upErr)
	}

	// Redeploy owns the move: same grown datapath succeeds by relocating
	// the segment off s1.
	var rdErr error
	rdDone := false
	c.Redeploy(context.Background(), uri, &flexbpf.Datapath{Name: "mv", Segments: []*flexbpf.Program{mapSeg("sa", 1<<18)}},
		func(e error) { rdErr, rdDone = e, true })
	f.Sim.RunFor(2 * time.Second)
	if !rdDone || rdErr != nil {
		t.Fatalf("redeploy: %v (done=%v)", rdErr, rdDone)
	}
	app := c.App(uri)
	dev := app.Replicas["sa"][0]
	if dev == "s1" {
		t.Fatal("redeploy left the grown segment on the full device")
	}
	if f.Device("s1").Instance(uri+"#sa") != nil {
		t.Fatal("old instance survived the move")
	}
	inst := f.Device(dev).Instance(uri + "#sa")
	if inst == nil {
		t.Fatalf("moved instance missing on %s", dev)
	}
	if got := inst.Program().Maps[0].MaxEntries; got != 1<<18 {
		t.Fatalf("moved map size = %d, want %d", got, 1<<18)
	}
}

func TestIncrementalAndFullPlacementIdentical(t *testing.T) {
	// The same op sequence under incremental and full-recompute placement
	// must land every segment on the same devices — the fast path may
	// only change cost, never outcomes.
	type endState struct{ assigns, replicas string }
	run := func(incremental bool) endState {
		f, c := testbed(t)
		c.SetIncrementalPlacement(incremental)
		uri := "flexnet://infra/same"
		deploy(t, f, c, uri, &flexbpf.Datapath{Name: "s", Segments: []*flexbpf.Program{mapSeg("sa", 128), mapSeg("sb", 128)}},
			DeployOptions{Path: []string{"s1", "s2"}})
		await := func(op func(done func(error))) {
			t.Helper()
			var err error
			done := false
			op(func(e error) { err, done = e, true })
			f.Sim.RunFor(2 * time.Second)
			if !done || err != nil {
				t.Fatalf("op (incremental=%v): %v (done=%v)", incremental, err, done)
			}
		}
		await(func(done func(error)) {
			c.UpdateApp(context.Background(), uri, "sa", resizeDelta("sa", 256), func(_ *delta.Report, e error) { done(e) })
		})
		await(func(done func(error)) { c.ScaleOut(context.Background(), uri, "sb", "", done) })
		app := c.App(uri)
		var st endState
		for _, a := range app.Plan.Assignments {
			st.assigns += a.Segment + "@" + a.Device + ";"
		}
		for _, s := range []string{"sa", "sb"} {
			st.replicas += s + "=" + strings.Join(app.Replicas[s], ",") + ";"
		}
		return st
	}
	inc, full := run(true), run(false)
	if inc != full {
		t.Fatalf("placement diverged:\nincremental: %+v\nfull:        %+v", inc, full)
	}
}
