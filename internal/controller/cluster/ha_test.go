package cluster

import (
	"fmt"
	"testing"
	"time"

	"flexnet/internal/netsim"
)

// haHarness wires an HAGroup with event/activation recording.
type haHarness struct {
	sim *netsim.Sim
	g   *HAGroup
	// events is the ordered protocol trace: "apply:<rep>:<seq>",
	// "activate:<rep>:<applied>/<loglen>", "event:<kind>:<n>".
	events []string
}

func newHAHarness(t *testing.T, n int, seed int64) *haHarness {
	t.Helper()
	h := &haHarness{sim: netsim.New(1)}
	h.g = NewHA(h.sim, n, HAConfig{Seed: seed})
	h.g.OnApply = func(rep int, rec SyncRecord) {
		h.events = append(h.events, fmt.Sprintf("apply:%d:%d", rep, rec.Seq))
	}
	h.g.OnActivate = func(rep int, term uint64) {
		h.events = append(h.events,
			fmt.Sprintf("activate:%d:%d/%d", rep, h.g.Replica(rep).Applied(), h.g.LogLen()))
	}
	h.g.OnEvent = func(kind string, n uint64) {
		if kind != "heartbeat" { // too chatty for a trace
			h.events = append(h.events, fmt.Sprintf("event:%s:%d", kind, n))
		}
	}
	return h
}

func (h *haHarness) appendN(t *testing.T, n int) {
	t.Helper()
	act := h.g.Active()
	if act == nil {
		t.Fatal("no active replica to append through")
	}
	for i := 0; i < n; i++ {
		if _, err := h.g.Append(act.ID(), "audit", fmt.Sprintf("rec-%d", i), nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func TestHABootAndReplication(t *testing.T) {
	h := newHAHarness(t, 3, 7)
	if got := h.g.Active(); got == nil || got.ID() != 0 {
		t.Fatalf("replica 0 should boot as active, got %v", got)
	}
	h.appendN(t, 5)
	h.sim.RunFor(50 * time.Millisecond)
	for i := 0; i < 3; i++ {
		rep := h.g.Replica(i)
		if rep.Known() != 5 || rep.Applied() != 5 {
			t.Fatalf("replica %d: known=%d applied=%d, want 5/5", i, rep.Known(), rep.Applied())
		}
	}
	if n := h.g.ServingCount(); n != 1 {
		t.Fatalf("serving count %d, want 1", n)
	}
}

func TestHALeaderKillFailsOver(t *testing.T) {
	h := newHAHarness(t, 3, 7)
	h.appendN(t, 3)
	h.sim.RunFor(100 * time.Millisecond)

	h.g.Replica(0).Kill()
	h.sim.RunFor(time.Second)

	act := h.g.Active()
	if act == nil {
		t.Fatal("no leader after kill")
	}
	if act.ID() == 0 {
		t.Fatal("dead replica still active")
	}
	if act.Applied() != h.g.LogLen() {
		t.Fatalf("new leader applied %d of %d", act.Applied(), h.g.LogLen())
	}
	if n := h.g.ServingCount(); n != 1 {
		t.Fatalf("serving count %d, want 1", n)
	}

	// The revived old leader rejoins as a standby and catches up on the
	// records appended while it was down.
	h.appendN(t, 2)
	h.g.Replica(0).Revive()
	h.sim.RunFor(500 * time.Millisecond)
	rep0 := h.g.Replica(0)
	if rep0.Role() == "leader" {
		t.Fatal("revived replica should be a standby")
	}
	if rep0.Applied() != h.g.LogLen() {
		t.Fatalf("revived replica applied %d of %d", rep0.Applied(), h.g.LogLen())
	}
}

// TestHASplitBrainPrevention partitions the serving leader away from
// both standbys and asserts that at no simulated instant do two
// replicas serve at once: the old leader's majority lease expires
// strictly before the partitioned majority can elect a successor.
func TestHASplitBrainPrevention(t *testing.T) {
	h := newHAHarness(t, 3, 11)
	h.sim.RunFor(100 * time.Millisecond)

	h.g.SetPartition([][]int{{0}, {1, 2}})
	sawNewLeader := false
	for i := 0; i < 1500; i++ {
		h.sim.RunFor(time.Millisecond)
		if n := h.g.ServingCount(); n > 1 {
			t.Fatalf("split brain at %v: %d replicas serving", h.sim.Now(), n)
		}
		if act := h.g.Active(); act != nil && act.ID() != 0 {
			sawNewLeader = true
		}
	}
	if !sawNewLeader {
		t.Fatal("majority side never elected a leader")
	}
	// The minority leader must have lost its lease (and stepped down).
	if h.g.Replica(0).Serving() {
		t.Fatal("partitioned minority leader still serving")
	}

	// Healing the partition must not create a second leader either: the
	// old leader hears the higher term and stays a follower.
	h.g.SetPartition(nil)
	for i := 0; i < 1000; i++ {
		h.sim.RunFor(time.Millisecond)
		if n := h.g.ServingCount(); n > 1 {
			t.Fatalf("split brain after heal at %v: %d serving", h.sim.Now(), n)
		}
	}
	if h.g.Replica(0).Role() == "leader" {
		t.Fatal("deposed leader did not step down after heal")
	}
}

// TestHAStaleBacklogReplaysBeforeServing cuts the leader off, appends
// records only it knows (the syncs are dropped by the partition), and
// checks that the standby that takes over replays every missed record
// before its activation fires — applied == log head at OnActivate.
func TestHAStaleBacklogReplaysBeforeServing(t *testing.T) {
	h := newHAHarness(t, 3, 13)
	h.appendN(t, 2)
	h.sim.RunFor(100 * time.Millisecond)

	// Partition the leader alone; it still serves under its lease for a
	// moment — records appended now reach the durable log but no standby.
	h.g.SetPartition([][]int{{0}, {1, 2}})
	h.appendN(t, 4)
	if h.g.Replica(1).Known() != 2 || h.g.Replica(2).Known() != 2 {
		t.Fatalf("standbys should be stale at 2, got %d/%d",
			h.g.Replica(1).Known(), h.g.Replica(2).Known())
	}

	h.sim.RunFor(2 * time.Second)
	act := h.g.Active()
	if act == nil || act.ID() == 0 {
		t.Fatalf("majority side did not take over (active %v)", act)
	}
	// The activation trace line proves replay happened before serving.
	want := fmt.Sprintf("activate:%d:6/6", act.ID())
	found := false
	for _, ev := range h.events {
		if ev == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %q in trace %v", want, h.events)
	}
	if act.Applied() != 6 {
		t.Fatalf("new leader applied %d, want 6", act.Applied())
	}
}

// TestHADeterministicTrace reruns the same failover scenario and
// requires the full protocol event trace to be identical.
func TestHADeterministicTrace(t *testing.T) {
	run := func() []string {
		h := newHAHarness(t, 3, 7)
		h.appendN(t, 3)
		h.sim.RunFor(100 * time.Millisecond)
		h.g.Replica(0).Kill()
		h.sim.RunFor(time.Second)
		h.appendN(t, 2)
		h.g.Replica(0).Revive()
		h.sim.RunFor(time.Second)
		return h.events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
