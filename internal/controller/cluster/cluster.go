// Package cluster implements the distributed controller of §3.4: "For
// large networks, logically centralized controllers are realized in
// physically distributed nodes, which brings classic distributed systems
// concerns on consensus and availability."
//
// It is a compact Raft-style consensus implementation (leader election,
// heartbeats, log replication, majority commit) running entirely on the
// deterministic simulator: message delays and election timeouts are
// drawn from the simulation, so every failover scenario replays exactly.
// Controller commands (app deploys, migrations, tenant admissions) are
// the replicated state machine's operations.
//
// DESIGN.md §10 specifies the failure model this participates in; §3 (E12) measures failover.
package cluster

import (
	"fmt"

	"flexnet/internal/netsim"
)

// Command is one replicated controller operation.
type Command struct {
	// Kind names the operation ("deploy", "remove", "migrate", ...).
	Kind string
	// URI is the app handle the operation targets.
	URI string
	// Arg carries operation-specific data.
	Arg string
}

// Entry is one log slot.
type Entry struct {
	Term uint64
	Cmd  Command
}

// role is a node's Raft role.
type role uint8

const (
	follower role = iota
	candidate
	leader
)

func (r role) String() string {
	switch r {
	case follower:
		return "follower"
	case candidate:
		return "candidate"
	case leader:
		return "leader"
	default:
		return "?"
	}
}

// message is the single wire type (fields per message kind).
type message struct {
	kind string // "vote-req", "vote-rep", "append", "append-rep"
	from int
	term uint64

	// vote-req / vote-rep
	lastLogIndex int
	lastLogTerm  uint64
	granted      bool

	// append / append-rep
	prevIndex int
	prevTerm  uint64
	entries   []Entry
	commit    int
	success   bool
	matchIdx  int
}

// Cluster is a set of consensus nodes on one simulator.
type Cluster struct {
	sim   *netsim.Sim
	nodes []*Node
	// Delay is the one-way message delay between controller nodes.
	Delay netsim.Time
	// Heartbeat and election timing.
	heartbeat   netsim.Time
	electionMin netsim.Time
	electionMax netsim.Time
}

// New creates a cluster of n nodes. apply is invoked on every node as
// entries commit (the replicated state machine).
func New(sim *netsim.Sim, n int, apply func(node int, idx int, cmd Command)) *Cluster {
	c := &Cluster{
		sim:         sim,
		Delay:       2_000_000,   // 2 ms
		heartbeat:   50_000_000,  // 50 ms
		electionMin: 150_000_000, // 150 ms
		electionMax: 300_000_000, // 300 ms
	}
	for i := 0; i < n; i++ {
		node := &Node{id: i, c: c, votedFor: -1, apply: apply, alive: true}
		c.nodes = append(c.nodes, node)
	}
	for _, nd := range c.nodes {
		nd.resetElectionTimer()
	}
	return c
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Size returns the number of replicas.
func (c *Cluster) Size() int { return len(c.nodes) }

// Leader returns the current leader's id, or -1 if none (or if multiple
// claim leadership in the same term — a bug).
func (c *Cluster) Leader() int {
	id := -1
	var term uint64
	for _, n := range c.nodes {
		if n.alive && n.role == leader {
			if n.term > term {
				term = n.term
				id = n.id
			} else if n.term == term && id >= 0 {
				return -1 // two leaders in one term: split brain
			}
		}
	}
	return id
}

// send schedules delivery of msg to node `to`.
func (c *Cluster) send(to int, msg message) {
	if to < 0 || to >= len(c.nodes) {
		return
	}
	c.sim.After(c.Delay, func() {
		n := c.nodes[to]
		if n.alive {
			n.receive(msg)
		}
	})
}

// Node is one consensus participant.
type Node struct {
	id int
	c  *Cluster

	role     role
	term     uint64
	votedFor int
	log      []Entry
	commit   int // highest committed index (-1 based: commit == count)
	applied  int

	// leader state
	nextIndex  []int
	matchIndex []int
	votes      int

	timerEpoch uint64 // invalidates stale timers
	alive      bool

	apply func(node int, idx int, cmd Command)
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Role returns the node's current role name.
func (n *Node) Role() string { return n.role.String() }

// Term returns the current term.
func (n *Node) Term() uint64 { return n.term }

// Alive reports liveness.
func (n *Node) Alive() bool { return n.alive }

// CommittedLen returns the number of committed entries.
func (n *Node) CommittedLen() int { return n.commit }

// Log returns a copy of the node's full log.
func (n *Node) Log() []Entry { return append([]Entry(nil), n.log...) }

// Kill crashes the node (messages dropped, timers dead).
func (n *Node) Kill() {
	n.alive = false
	n.timerEpoch++
}

// Revive restarts a crashed node as a follower (volatile state retained:
// this models process restart with state recovery from peers).
func (n *Node) Revive() {
	if n.alive {
		return
	}
	n.alive = true
	n.role = follower
	n.votes = 0
	n.resetElectionTimer()
}

func (n *Node) majority() int { return len(n.c.nodes)/2 + 1 }

func (n *Node) lastLogIndex() int { return len(n.log) - 1 }
func (n *Node) lastLogTerm() uint64 {
	if len(n.log) == 0 {
		return 0
	}
	return n.log[len(n.log)-1].Term
}

func (n *Node) resetElectionTimer() {
	n.timerEpoch++
	epoch := n.timerEpoch
	span := int64(n.c.electionMax - n.c.electionMin)
	d := n.c.electionMin + netsim.Time(n.c.sim.Rand().Int63n(span))
	n.c.sim.After(d, func() {
		if n.alive && n.timerEpoch == epoch && n.role != leader {
			n.startElection()
		}
	})
}

func (n *Node) startElection() {
	n.role = candidate
	n.term++
	n.votedFor = n.id
	n.votes = 1
	for _, peer := range n.c.nodes {
		if peer.id == n.id {
			continue
		}
		n.c.send(peer.id, message{
			kind: "vote-req", from: n.id, term: n.term,
			lastLogIndex: n.lastLogIndex(), lastLogTerm: n.lastLogTerm(),
		})
	}
	n.resetElectionTimer()
}

func (n *Node) becomeLeader() {
	n.role = leader
	n.nextIndex = make([]int, len(n.c.nodes))
	n.matchIndex = make([]int, len(n.c.nodes))
	for i := range n.nextIndex {
		n.nextIndex[i] = len(n.log)
		n.matchIndex[i] = -1
	}
	n.matchIndex[n.id] = n.lastLogIndex()
	n.broadcastAppend()
	n.heartbeatLoop()
}

func (n *Node) heartbeatLoop() {
	n.timerEpoch++
	epoch := n.timerEpoch
	var tick func()
	tick = func() {
		if !n.alive || n.timerEpoch != epoch || n.role != leader {
			return
		}
		n.broadcastAppend()
		n.c.sim.After(n.c.heartbeat, tick)
	}
	n.c.sim.After(n.c.heartbeat, tick)
}

func (n *Node) broadcastAppend() {
	for _, peer := range n.c.nodes {
		if peer.id == n.id {
			continue
		}
		n.sendAppend(peer.id)
	}
}

func (n *Node) sendAppend(to int) {
	next := n.nextIndex[to]
	prevIdx := next - 1
	var prevTerm uint64
	if prevIdx >= 0 && prevIdx < len(n.log) {
		prevTerm = n.log[prevIdx].Term
	}
	var entries []Entry
	if next < len(n.log) {
		entries = append([]Entry(nil), n.log[next:]...)
	}
	n.c.send(to, message{
		kind: "append", from: n.id, term: n.term,
		prevIndex: prevIdx, prevTerm: prevTerm,
		entries: entries, commit: n.commit,
	})
}

// Propose appends a command if this node is the leader. It returns the
// assigned log index, or an error if not leader.
func (n *Node) Propose(cmd Command) (int, error) {
	if !n.alive {
		return 0, fmt.Errorf("cluster: node %d is down", n.id)
	}
	if n.role != leader {
		return 0, fmt.Errorf("cluster: node %d is not the leader", n.id)
	}
	n.log = append(n.log, Entry{Term: n.term, Cmd: cmd})
	n.matchIndex[n.id] = n.lastLogIndex()
	n.broadcastAppend()
	return n.lastLogIndex(), nil
}

func (n *Node) stepDown(term uint64) {
	n.term = term
	n.role = follower
	n.votedFor = -1
	n.votes = 0
	n.resetElectionTimer()
}

func (n *Node) receive(m message) {
	if m.term > n.term {
		n.stepDown(m.term)
	}
	switch m.kind {
	case "vote-req":
		grant := false
		if m.term == n.term && (n.votedFor == -1 || n.votedFor == m.from) {
			// Log up-to-date check.
			if m.lastLogTerm > n.lastLogTerm() ||
				(m.lastLogTerm == n.lastLogTerm() && m.lastLogIndex >= n.lastLogIndex()) {
				grant = true
				n.votedFor = m.from
				n.resetElectionTimer()
			}
		}
		n.c.send(m.from, message{kind: "vote-rep", from: n.id, term: n.term, granted: grant})

	case "vote-rep":
		if n.role != candidate || m.term != n.term {
			return
		}
		if m.granted {
			n.votes++
			if n.votes >= n.majority() {
				n.becomeLeader()
			}
		}

	case "append":
		if m.term < n.term {
			n.c.send(m.from, message{kind: "append-rep", from: n.id, term: n.term, success: false})
			return
		}
		// Valid leader for this term.
		n.role = follower
		n.resetElectionTimer()
		// Log consistency check.
		if m.prevIndex >= 0 {
			if m.prevIndex >= len(n.log) || n.log[m.prevIndex].Term != m.prevTerm {
				n.c.send(m.from, message{kind: "append-rep", from: n.id, term: n.term, success: false})
				return
			}
		}
		// Append/overwrite entries.
		idx := m.prevIndex + 1
		for i, e := range m.entries {
			pos := idx + i
			if pos < len(n.log) {
				if n.log[pos].Term != e.Term {
					n.log = n.log[:pos]
					n.log = append(n.log, e)
				}
			} else {
				n.log = append(n.log, e)
			}
		}
		// Advance commit.
		if m.commit > n.commit {
			c := m.commit
			if c > len(n.log) {
				c = len(n.log)
			}
			n.advanceCommit(c)
		}
		n.c.send(m.from, message{
			kind: "append-rep", from: n.id, term: n.term,
			success: true, matchIdx: m.prevIndex + len(m.entries),
		})

	case "append-rep":
		if n.role != leader || m.term != n.term {
			return
		}
		if m.success {
			if m.matchIdx > n.matchIndex[m.from] {
				n.matchIndex[m.from] = m.matchIdx
			}
			n.nextIndex[m.from] = m.matchIdx + 1
			n.maybeCommit()
		} else {
			if n.nextIndex[m.from] > 0 {
				n.nextIndex[m.from]--
			}
			n.sendAppend(m.from)
		}
	}
}

// maybeCommit advances the leader's commit index to the highest index
// replicated on a majority with an entry from the current term.
func (n *Node) maybeCommit() {
	for idx := len(n.log) - 1; idx >= n.commit; idx-- {
		if n.log[idx].Term != n.term {
			break
		}
		count := 0
		for _, mi := range n.matchIndex {
			if mi >= idx {
				count++
			}
		}
		if count >= n.majority() {
			n.advanceCommit(idx + 1)
			break
		}
	}
}

// advanceCommit sets commit = upTo (entry count) and applies newly
// committed entries in order.
func (n *Node) advanceCommit(upTo int) {
	n.commit = upTo
	for n.applied < n.commit {
		e := n.log[n.applied]
		if n.apply != nil {
			n.apply(n.id, n.applied, e.Cmd)
		}
		n.applied++
	}
}
