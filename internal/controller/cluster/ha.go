package cluster

// Active/standby controller HA (DESIGN.md §15): a replica group whose
// members coordinate over dRPC — heartbeats with seeded jitter, term-
// numbered leader election, and continuous replication of the
// controller's durable log (audit records + plan lifecycle journal)
// with backlog replay for standbys that fall behind. This is the
// continuity layer ROADMAP item 4 asks for, built beside the Raft state
// machine in cluster.go (which replicates *commands*; the HA group
// replicates the *observed mutation log* so a standby can take over the
// one live fabric without re-running operations).
//
// The wire pattern follows osvbng's pkg/ha: the active replica pushes
// each appended record to every standby (sync), heartbeats advertise
// the log head, and a receiver that discovers it is behind pulls the
// missing backlog before serving. Votes, syncs, and fetches ride
// drpc.CallOpt — per-attempt timeouts, capped backoff, at-most-once
// completion — so replication survives the same lossy control channels
// the fault plane injects (internal/faults).
//
// Everything runs on the simulator's event loop. Election jitter and
// retry jitter come from seeds independent of the simulation's rand
// stream, so enabling HA never perturbs traffic generation: a fabric
// with HA on produces byte-identical non-ha.* telemetry.

import (
	"fmt"
	"math/rand"

	"flexnet/internal/drpc"
	"flexnet/internal/netsim"
	"flexnet/internal/packet"
)

// HA method IDs on drpc.ServiceHA.
const (
	// HAHeartbeat: args = {term, leader log head, leader id};
	// reply = {term, receiver's known head, receiver's applied head}.
	HAHeartbeat uint64 = iota
	// HAVote: args = {term, candidate log head, candidate id};
	// reply = {granted (1/0), voter term, 0}.
	HAVote
	// HASync announces one appended record: args = {seq, 0, leader id};
	// reply = {receiver's known head, 0, 0}.
	HASync
	// HAFetch asks the leader how far the log extends so the caller can
	// replay its backlog: args = {first missing seq, 0, caller id};
	// reply = {log head, 0, 0}.
	HAFetch
)

// SyncRecord is one entry of the replicated controller log: an audit
// record or a plan lifecycle event, identified by a 1-based sequence
// number. Payload is opaque to the group (the controller layer encodes
// audit records as canonical JSON).
type SyncRecord struct {
	Seq     uint64
	Kind    string // "audit", "plan-submit", "plan-commit", "plan-done"
	Label   string
	Payload []byte
}

// HAConfig tunes the replica group. Zero values take the defaults
// noted per field.
type HAConfig struct {
	// DelayNs is the one-way message delay between replicas (2 ms).
	DelayNs uint64
	// HeartbeatNs is the active replica's heartbeat period (20 ms).
	HeartbeatNs uint64
	// ElectionMinNs/ElectionMaxNs bound the randomized election timeout
	// (120 ms / 240 ms). A standby that has not heard a heartbeat for a
	// jittered duration in this range starts an election.
	ElectionMinNs uint64
	ElectionMaxNs uint64
	// LeaseNs is how long a majority-acked heartbeat round entitles the
	// active replica to keep serving (default ElectionMinNs − 2·Delay).
	// Because a standby refuses to vote within ElectionMinNs of hearing
	// the leader, a new leader can only exist after the old one's lease
	// has lapsed — two replicas never serve at once.
	LeaseNs uint64
	// Seed drives election jitter, independent of the simulation seed.
	Seed int64
	// BaseIP numbers the replicas' mesh routers (default 172.31.0.1).
	BaseIP uint32
}

func (c HAConfig) withDefaults() HAConfig {
	if c.DelayNs == 0 {
		c.DelayNs = 2_000_000
	}
	if c.HeartbeatNs == 0 {
		c.HeartbeatNs = 20_000_000
	}
	if c.ElectionMinNs == 0 {
		c.ElectionMinNs = 120_000_000
	}
	if c.ElectionMaxNs == 0 {
		c.ElectionMaxNs = 2 * c.ElectionMinNs
	}
	if c.LeaseNs == 0 {
		c.LeaseNs = c.ElectionMinNs - 2*c.DelayNs
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BaseIP == 0 {
		c.BaseIP = 0xAC1F0001 // 172.31.0.1
	}
	return c
}

// HAGroup is a set of controller replicas on one simulator, connected
// by a private dRPC mesh (controller network, not the data fabric).
type HAGroup struct {
	sim  *netsim.Sim
	cfg  HAConfig
	reps []*HAReplica
	byIP map[uint32]*HAReplica
	seq  uint64
	rng  *rand.Rand

	// store is the durable replicated log: the active replica appends,
	// standbys learn entries through sync pushes and backlog fetches.
	// A replica's view of the log is its known/applied watermarks.
	store []SyncRecord

	// partition, when non-nil, reports whether the mesh drops messages
	// between two replicas (split-brain tests).
	partition func(a, b int) bool

	// OnApply fires as a replica applies one log record it learned from
	// the active (never for the appender itself, whose live state is
	// already ahead of the log).
	OnApply func(replica int, rec SyncRecord)
	// OnActivate fires when a replica wins an election AND has replayed
	// its backlog to the log head — the moment it may serve.
	OnActivate func(replica int, term uint64)
	// OnEvent counts protocol activity: "heartbeat", "election", "sync",
	// "backlog" (n = records replayed), "stepdown".
	OnEvent func(kind string, n uint64)
}

// NewHA creates a replica group of n ≥ 1 members. Replica 0 boots as
// the active leader at term 1; the rest are standbys.
func NewHA(sim *netsim.Sim, n int, cfg HAConfig) *HAGroup {
	if n < 1 {
		n = 1
	}
	cfg = cfg.withDefaults()
	g := &HAGroup{
		sim:  sim,
		cfg:  cfg,
		byIP: map[uint32]*HAReplica{},
		rng:  rand.New(rand.NewSource(cfg.Seed*6364136223846793005 + 1442695040888963407)),
	}
	for i := 0; i < n; i++ {
		rep := &HAReplica{id: i, g: g, alive: true, votedFor: -1}
		rep.router = drpc.NewRouter(cfg.BaseIP+uint32(i), &g.seq, g.transportFor(rep))
		rep.router.SetScheduler(
			func() uint64 { return uint64(sim.Now()) },
			func(d uint64, fn func()) { sim.After(netsim.Time(d), fn) },
		)
		if err := rep.router.Register(drpc.ServiceHA, rep.handle); err != nil {
			panic(err) // fresh router; cannot happen
		}
		g.reps = append(g.reps, rep)
		g.byIP[rep.router.IP] = rep
	}
	boot := g.reps[0]
	boot.role = leader
	boot.term = 1
	boot.serving = true
	boot.leaseUntil = sim.Now() + netsim.Time(cfg.LeaseNs)
	boot.heartbeatLoop()
	for _, rep := range g.reps[1:] {
		rep.term = 1
		rep.lastHeard = sim.Now()
		rep.resetElectionTimer()
	}
	return g
}

// transportFor builds one replica's mesh transport: decode the packet's
// destination, honour partitions and liveness, and deliver after the
// configured one-way delay.
func (g *HAGroup) transportFor(from *HAReplica) drpc.Transport {
	return func(p *packet.Packet) {
		if !from.alive {
			return
		}
		to := g.byIP[uint32(p.Field("ipv4.dst"))]
		if to == nil {
			return
		}
		if g.partition != nil && g.partition(from.id, to.id) {
			return
		}
		g.sim.After(netsim.Time(g.cfg.DelayNs), func() {
			if to.alive {
				to.router.Deliver(p)
			}
		})
	}
}

// SetPartition splits the mesh: messages between replicas in different
// groups are dropped. Pass nil to heal. Replicas not named fall in an
// implicit last group.
func (g *HAGroup) SetPartition(groups [][]int) {
	if groups == nil {
		g.partition = nil
		return
	}
	side := make(map[int]int, len(g.reps))
	for gi, members := range groups {
		for _, id := range members {
			side[id] = gi + 1
		}
	}
	g.partition = func(a, b int) bool { return side[a] != side[b] }
}

// Size returns the number of replicas.
func (g *HAGroup) Size() int { return len(g.reps) }

// Config returns the group's effective (defaulted) configuration.
func (g *HAGroup) Config() HAConfig { return g.cfg }

// Replica returns replica i.
func (g *HAGroup) Replica(i int) *HAReplica { return g.reps[i] }

// LogLen returns the replicated log's head sequence number.
func (g *HAGroup) LogLen() uint64 { return uint64(len(g.store)) }

// Record returns log entry seq (1-based), for verification in tests.
func (g *HAGroup) Record(seq uint64) SyncRecord { return g.store[seq-1] }

// Active returns the serving leader, or nil while failing over.
func (g *HAGroup) Active() *HAReplica {
	for _, rep := range g.reps {
		if rep.Serving() {
			return rep
		}
	}
	return nil
}

// ServingCount counts replicas currently entitled to serve. The lease
// rule keeps this ≤ 1 at every simulated instant; the split-brain test
// asserts exactly that.
func (g *HAGroup) ServingCount() int {
	n := 0
	for _, rep := range g.reps {
		if rep.Serving() {
			n++
		}
	}
	return n
}

// Append adds one record to the replicated log on behalf of replica
// `from` (the active leader) and pushes it to every peer. The appender's
// own watermarks advance silently — its live state is the source of the
// record, so re-applying it would double-count.
func (g *HAGroup) Append(from int, kind, label string, payload []byte) (uint64, error) {
	rep := g.reps[from]
	if !rep.alive || rep.role != leader {
		return 0, fmt.Errorf("cluster: replica %d is not the active leader", from)
	}
	rec := SyncRecord{Seq: uint64(len(g.store)) + 1, Kind: kind, Label: label}
	if len(payload) > 0 {
		rec.Payload = append([]byte(nil), payload...)
	}
	g.store = append(g.store, rec)
	rep.known = uint64(len(g.store))
	rep.applied = rep.known
	g.event("sync", 1)
	for _, peer := range g.reps {
		if peer.id == rep.id {
			continue
		}
		rep.router.CallOpt(peer.router.IP, drpc.ServiceHA, HASync,
			[3]uint64{rec.Seq, 0, uint64(rep.id)}, g.callOpts(2), nil)
	}
	return rec.Seq, nil
}

func (g *HAGroup) event(kind string, n uint64) {
	if g.OnEvent != nil {
		g.OnEvent(kind, n)
	}
}

// callOpts builds the reliable-call policy used for votes, syncs, and
// fetches: per-attempt deadline of one RTT plus slack, capped backoff.
func (g *HAGroup) callOpts(attempts int) drpc.CallOpts {
	return drpc.CallOpts{
		TimeoutNs:    2*g.cfg.DelayNs + 1_000_000,
		Attempts:     attempts,
		BackoffNs:    g.cfg.DelayNs,
		MaxBackoffNs: 4 * g.cfg.DelayNs,
	}
}

// HAReplica is one member of the group.
type HAReplica struct {
	id     int
	g      *HAGroup
	router *drpc.Router

	alive    bool
	role     role
	term     uint64
	votedFor int
	votes    int

	// known/applied are this replica's log watermarks: how far its copy
	// of the replicated log extends, and how much of it has been applied
	// through OnApply. They only differ transiently inside a replay.
	known   uint64
	applied uint64

	serving    bool
	leaseUntil netsim.Time
	lastHeard  netsim.Time
	missed     int
	fetching   bool
	timerEpoch uint64
}

// ID returns the replica index.
func (rep *HAReplica) ID() int { return rep.id }

// Term returns the replica's current term.
func (rep *HAReplica) Term() uint64 { return rep.term }

// Role returns "leader", "candidate" or "follower".
func (rep *HAReplica) Role() string { return rep.role.String() }

// Alive reports process liveness.
func (rep *HAReplica) Alive() bool { return rep.alive }

// Known returns the replica's log head watermark.
func (rep *HAReplica) Known() uint64 { return rep.known }

// Applied returns how many log records the replica has applied.
func (rep *HAReplica) Applied() uint64 { return rep.applied }

// Router exposes the replica's mesh router (stats, fault interceptors).
func (rep *HAReplica) Router() *drpc.Router { return rep.router }

// Serving reports whether this replica is currently entitled to act as
// the controller: it is the leader AND holds an unexpired majority
// lease. A partitioned leader loses this within LeaseNs even though it
// still believes itself leader.
func (rep *HAReplica) Serving() bool {
	return rep.alive && rep.role == leader && rep.serving && rep.g.sim.Now() <= rep.leaseUntil
}

// Kill crashes the replica: timers die, in-flight messages to and from
// it are dropped.
func (rep *HAReplica) Kill() {
	rep.alive = false
	rep.serving = false
	rep.timerEpoch++
}

// Revive restarts a crashed replica as a standby. Its log watermarks
// survive (restart with durable state); the backlog it missed while
// down is pulled when the next heartbeat advertises a newer head.
func (rep *HAReplica) Revive() {
	if rep.alive {
		return
	}
	rep.alive = true
	rep.role = follower
	rep.votedFor = -1
	rep.votes = 0
	rep.missed = 0
	rep.lastHeard = rep.g.sim.Now()
	rep.resetElectionTimer()
}

// learnTo applies log records (known, upTo] in order, firing OnApply
// for each. It is the single path by which a non-appending replica's
// state advances.
func (rep *HAReplica) learnTo(upTo uint64) {
	if upTo > uint64(len(rep.g.store)) {
		upTo = uint64(len(rep.g.store))
	}
	for rep.known < upTo {
		rec := rep.g.store[rep.known]
		rep.known++
		if rep.g.OnApply != nil {
			rep.g.OnApply(rep.id, rec)
		}
		rep.applied = rep.known
	}
}

// fetchBacklog pulls the log head from the active leader and replays
// everything missing — the osvbng sync-receiver catch-up path.
func (rep *HAReplica) fetchBacklog(leaderIP uint32) {
	if rep.fetching {
		return
	}
	rep.fetching = true
	rep.router.CallOpt(leaderIP, drpc.ServiceHA, HAFetch,
		[3]uint64{rep.known + 1, 0, uint64(rep.id)}, rep.g.callOpts(3),
		func(m drpc.Message, ok bool, err error) {
			rep.fetching = false
			if !rep.alive || !ok || err != nil {
				return
			}
			if head := m.Args[0]; head > rep.known {
				n := head - rep.known
				rep.learnTo(head)
				rep.g.event("backlog", n)
			}
		})
}

func (rep *HAReplica) resetElectionTimer() {
	rep.timerEpoch++
	epoch := rep.timerEpoch
	g := rep.g
	span := int64(g.cfg.ElectionMaxNs - g.cfg.ElectionMinNs)
	d := netsim.Time(g.cfg.ElectionMinNs)
	if span > 0 {
		d += netsim.Time(g.rng.Int63n(span))
	}
	g.sim.After(d, func() {
		if rep.alive && rep.timerEpoch == epoch && rep.role != leader {
			rep.startElection()
		}
	})
}

func (rep *HAReplica) startElection() {
	g := rep.g
	rep.role = candidate
	rep.term++
	rep.votedFor = rep.id
	rep.votes = 1
	term := rep.term
	g.event("election", 1)
	for _, peer := range g.reps {
		if peer.id == rep.id {
			continue
		}
		rep.router.CallOpt(peer.router.IP, drpc.ServiceHA, HAVote,
			[3]uint64{term, rep.known, uint64(rep.id)}, g.callOpts(2),
			func(m drpc.Message, ok bool, err error) {
				if !rep.alive || err != nil || !ok {
					return
				}
				if m.Args[1] > rep.term {
					rep.stepDown(m.Args[1])
					return
				}
				if rep.role != candidate || rep.term != term || m.Args[0] != 1 {
					return
				}
				rep.votes++
				if rep.votes >= len(g.reps)/2+1 {
					rep.becomeActive()
				}
			})
	}
	rep.resetElectionTimer()
}

// becomeActive promotes an election winner. Before it may serve it must
// replay any backlog it has not applied — the new leader's first duty
// is to catch its state up to the log head, so activation (and the
// OnActivate failover hook) always observes applied == LogLen.
func (rep *HAReplica) becomeActive() {
	g := rep.g
	rep.role = leader
	if rep.known < uint64(len(g.store)) {
		n := uint64(len(g.store)) - rep.known
		rep.learnTo(uint64(len(g.store)))
		g.event("backlog", n)
	}
	rep.serving = true
	rep.missed = 0
	rep.leaseUntil = g.sim.Now() + netsim.Time(g.cfg.LeaseNs)
	if g.OnActivate != nil {
		g.OnActivate(rep.id, rep.term)
	}
	rep.heartbeatLoop()
}

func (rep *HAReplica) stepDown(term uint64) {
	if rep.role == leader {
		rep.g.event("stepdown", 1)
	}
	rep.term = term
	rep.role = follower
	rep.serving = false
	rep.votedFor = -1
	rep.votes = 0
	rep.missed = 0
	rep.resetElectionTimer()
}

// heartbeatLoop drives the active replica: each period it pushes a
// heartbeat (advertising the log head) to every peer and renews its
// serving lease when a majority acknowledges. Three consecutive rounds
// without a majority — a partition, or the peers are gone — and the
// leader steps down rather than serve on stale authority.
func (rep *HAReplica) heartbeatLoop() {
	g := rep.g
	rep.timerEpoch++
	epoch := rep.timerEpoch
	var tick func()
	tick = func() {
		if !rep.alive || rep.timerEpoch != epoch || rep.role != leader {
			return
		}
		g.event("heartbeat", 1)
		term := rep.term
		acks := 1 // self
		renewed := false
		for _, peer := range g.reps {
			if peer.id == rep.id {
				continue
			}
			rep.router.CallOpt(peer.router.IP, drpc.ServiceHA, HAHeartbeat,
				[3]uint64{term, rep.known, uint64(rep.id)},
				drpc.CallOpts{TimeoutNs: g.cfg.HeartbeatNs - 2_000_000, Attempts: 1},
				func(m drpc.Message, ok bool, err error) {
					if !rep.alive || rep.timerEpoch != epoch || err != nil {
						return
					}
					if m.Args[0] > rep.term {
						// A peer answered from a higher term: a rejoining
						// straggler that inflated its term while cut off.
						// Adopt the term WITHOUT giving up leadership —
						// vote stickiness protects the lease, and the next
						// heartbeat round carries the higher term, folding
						// the straggler back in as a follower.
						rep.term = m.Args[0]
						return
					}
					if !ok {
						return
					}
					acks++
					if !renewed && acks >= len(g.reps)/2+1 {
						renewed = true
						rep.missed = 0
						rep.leaseUntil = g.sim.Now() + netsim.Time(g.cfg.LeaseNs)
					}
				})
		}
		g.sim.After(netsim.Time(g.cfg.HeartbeatNs), func() {
			if rep.alive && rep.timerEpoch == epoch && rep.role == leader && !renewed {
				rep.missed++
				if rep.missed >= 3 {
					rep.stepDown(rep.term)
					return
				}
			}
			tick()
		})
	}
	tick()
}

// handle serves the replica's ServiceHA endpoint.
func (rep *HAReplica) handle(from uint32, m drpc.Message) *drpc.Message {
	g := rep.g
	switch m.Method {
	case HAHeartbeat:
		term, head := m.Args[0], m.Args[1]
		if term < rep.term {
			return &drpc.Message{Flags: drpc.FlagError, Args: [3]uint64{rep.term, rep.known, rep.applied}}
		}
		if term > rep.term || rep.role != follower {
			rep.stepDown(term)
		}
		rep.term = term
		rep.lastHeard = g.sim.Now()
		rep.resetElectionTimer()
		if head > rep.known {
			rep.fetchBacklog(from)
		}
		return &drpc.Message{Args: [3]uint64{rep.term, rep.known, rep.applied}}

	case HAVote:
		term, head := m.Args[0], m.Args[1]
		cand := int(m.Args[2])
		// Leader stickiness comes first and does NOT adopt the
		// candidate's term: while this replica is itself serving under
		// its lease, or has heard a live leader within the minimum
		// election timeout, the vote is refused outright. A partitioned
		// straggler that inflated its term through futile elections
		// therefore cannot depose a healthy leader when the mesh heals.
		if rep.Serving() || g.sim.Now()-rep.lastHeard < netsim.Time(g.cfg.ElectionMinNs) {
			return &drpc.Message{Args: [3]uint64{0, rep.term, 0}}
		}
		if term > rep.term {
			rep.stepDown(term)
		}
		grant := uint64(0)
		// Grant iff: same term, no conflicting vote, and the candidate's
		// log is at least as complete as ours.
		if term == rep.term &&
			(rep.votedFor == -1 || rep.votedFor == cand) &&
			head >= rep.known {
			grant = 1
			rep.votedFor = cand
			rep.resetElectionTimer()
		}
		return &drpc.Message{Args: [3]uint64{grant, rep.term, 0}}

	case HASync:
		seq := m.Args[0]
		switch {
		case seq == rep.known+1:
			rep.learnTo(seq)
		case seq > rep.known:
			// Out of order — a push was lost or delayed. Pull the gap.
			rep.fetchBacklog(from)
		}
		return &drpc.Message{Args: [3]uint64{rep.known, 0, 0}}

	case HAFetch:
		if rep.role != leader {
			return &drpc.Message{Flags: drpc.FlagError, Args: [3]uint64{rep.known, 0, 0}}
		}
		return &drpc.Message{Args: [3]uint64{rep.known, 0, 0}}
	}
	return &drpc.Message{Flags: drpc.FlagError}
}
