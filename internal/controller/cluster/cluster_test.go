package cluster

import (
	"fmt"
	"testing"
	"time"

	"flexnet/internal/netsim"
)

// applied records per-node applied commands for consistency checks.
type applied struct {
	perNode map[int][]Command
}

func newApplied() *applied { return &applied{perNode: map[int][]Command{}} }

func (a *applied) apply(node, idx int, cmd Command) {
	a.perNode[node] = append(a.perNode[node], cmd)
}

// prefixConsistent verifies all nodes applied identical prefixes.
func (a *applied) prefixConsistent() error {
	var longest []Command
	for _, cmds := range a.perNode {
		if len(cmds) > len(longest) {
			longest = cmds
		}
	}
	for node, cmds := range a.perNode {
		for i, c := range cmds {
			if longest[i] != c {
				return fmt.Errorf("node %d diverges at %d: %+v vs %+v", node, i, c, longest[i])
			}
		}
	}
	return nil
}

func settle(sim *netsim.Sim, d time.Duration) { sim.RunFor(d) }

func TestLeaderElection(t *testing.T) {
	sim := netsim.New(1)
	a := newApplied()
	c := New(sim, 5, a.apply)
	settle(sim, 2*time.Second)
	ld := c.Leader()
	if ld < 0 {
		t.Fatal("no leader elected")
	}
	// Exactly one leader.
	leaders := 0
	for i := 0; i < 5; i++ {
		if c.Node(i).Role() == "leader" && c.Node(i).Alive() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders", leaders)
	}
}

func TestReplicationAndApply(t *testing.T) {
	sim := netsim.New(2)
	a := newApplied()
	c := New(sim, 3, a.apply)
	settle(sim, 2*time.Second)
	ld := c.Leader()
	if ld < 0 {
		t.Fatal("no leader")
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Node(ld).Propose(Command{Kind: "deploy", URI: fmt.Sprintf("flexnet://t/app%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	settle(sim, time.Second)
	for i := 0; i < 3; i++ {
		if got := len(a.perNode[i]); got != 10 {
			t.Fatalf("node %d applied %d/10", i, got)
		}
	}
	if err := a.prefixConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestProposeOnFollowerRejected(t *testing.T) {
	sim := netsim.New(3)
	c := New(sim, 3, nil)
	settle(sim, 2*time.Second)
	ld := c.Leader()
	for i := 0; i < 3; i++ {
		if i == ld {
			continue
		}
		if _, err := c.Node(i).Propose(Command{Kind: "x"}); err == nil {
			t.Fatalf("follower %d accepted a proposal", i)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	sim := netsim.New(4)
	a := newApplied()
	c := New(sim, 5, a.apply)
	settle(sim, 2*time.Second)
	ld1 := c.Leader()
	if ld1 < 0 {
		t.Fatal("no initial leader")
	}
	// Commit some entries, then crash the leader.
	for i := 0; i < 5; i++ {
		c.Node(ld1).Propose(Command{Kind: "deploy", URI: fmt.Sprintf("a%d", i)})
	}
	settle(sim, time.Second)
	c.Node(ld1).Kill()
	settle(sim, 2*time.Second)
	ld2 := c.Leader()
	if ld2 < 0 || ld2 == ld1 {
		t.Fatalf("failover failed: leader %d → %d", ld1, ld2)
	}
	// New leader accepts and commits more entries.
	for i := 0; i < 5; i++ {
		if _, err := c.Node(ld2).Propose(Command{Kind: "deploy", URI: fmt.Sprintf("b%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	settle(sim, time.Second)
	// Every live node applied all 10.
	for i := 0; i < 5; i++ {
		if i == ld1 {
			continue
		}
		if got := len(a.perNode[i]); got != 10 {
			t.Fatalf("node %d applied %d/10 after failover", i, got)
		}
	}
	if err := a.prefixConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashedNodeCatchesUpOnRevive(t *testing.T) {
	sim := netsim.New(5)
	a := newApplied()
	c := New(sim, 3, a.apply)
	settle(sim, 2*time.Second)
	ld := c.Leader()
	victim := (ld + 1) % 3
	c.Node(victim).Kill()
	for i := 0; i < 8; i++ {
		c.Node(ld).Propose(Command{Kind: "op", URI: fmt.Sprintf("x%d", i)})
	}
	settle(sim, time.Second)
	if len(a.perNode[victim]) != 0 {
		t.Fatal("dead node applied entries")
	}
	c.Node(victim).Revive()
	settle(sim, 2*time.Second)
	if got := len(a.perNode[victim]); got != 8 {
		t.Fatalf("revived node applied %d/8", got)
	}
	if err := a.prefixConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestMinorityCannotCommit(t *testing.T) {
	sim := netsim.New(6)
	a := newApplied()
	c := New(sim, 5, a.apply)
	settle(sim, 2*time.Second)
	ld := c.Leader()
	// Kill 3 of 5 (majority gone), leaving the leader + 1.
	killed := 0
	for i := 0; i < 5 && killed < 3; i++ {
		if i != ld {
			c.Node(i).Kill()
			killed++
		}
	}
	c.Node(ld).Propose(Command{Kind: "op", URI: "doomed"})
	settle(sim, 2*time.Second)
	for i := 0; i < 5; i++ {
		for _, cmd := range a.perNode[i] {
			if cmd.URI == "doomed" {
				t.Fatal("minority committed an entry")
			}
		}
	}
}

func TestDeterministicElections(t *testing.T) {
	run := func() (int, uint64) {
		sim := netsim.New(77)
		c := New(sim, 5, nil)
		settle(sim, 3*time.Second)
		ld := c.Leader()
		if ld < 0 {
			t.Fatal("no leader")
		}
		return ld, c.Node(ld).Term()
	}
	l1, t1 := run()
	l2, t2 := run()
	if l1 != l2 || t1 != t2 {
		t.Fatalf("non-deterministic election: (%d,%d) vs (%d,%d)", l1, t1, l2, t2)
	}
}
