// Package delta implements FlexNet's incremental-change DSL (§3.2
// "Programming runtime changes"): a small language for specifying
// *changes* to an existing FlexBPF program without re-specifying the
// whole stack.
//
// A Delta is a named list of operations. Operations select elements of
// the base program by name patterns ("pattern matches on match/action
// tables and actions to programmatically select and modify the
// firewall- or CC-related functions in the base program") and add,
// remove, or rewrite them. Apply "jointly analyzes the pattern matching
// program with the base program and regenerates program changes exactly
// where needed": the result is a fresh verified program, and the
// application reports exactly which elements were touched so the
// runtime can plan a minimally intrusive reconfiguration.
//
// DESIGN.md §2 (S6) inventories the DSL; applied deltas flow through the §5 change pipeline.
package delta

import (
	"fmt"
	"strings"

	"flexnet/internal/flexbpf"
)

// Pattern is a glob-style name pattern: '*' matches any run of
// characters; matching is anchored at both ends. "acl_*" matches
// "acl_v4" but not "my_acl_v4".
type Pattern string

// Match reports whether the pattern matches name.
func (p Pattern) Match(name string) bool {
	return globMatch(string(p), name)
}

func globMatch(pat, s string) bool {
	// Iterative glob with '*' only.
	var backtrackPat, backtrackS = -1, -1
	pi, si := 0, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && pat[pi] == '*':
			backtrackPat = pi
			backtrackS = si
			pi++
		case pi < len(pat) && pat[pi] == s[si]:
			pi++
			si++
		case backtrackPat >= 0:
			backtrackS++
			si = backtrackS
			pi = backtrackPat + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '*' {
		pi++
	}
	return pi == len(pat)
}

// Where anchors statement insertion.
type Where uint8

// Insertion anchors.
const (
	// AtStart prepends to the pipeline.
	AtStart Where = iota
	// AtEnd appends to the pipeline.
	AtEnd
	// BeforeTable inserts before the first apply of the anchor table.
	BeforeTable
	// AfterTable inserts after the first apply of the anchor table.
	AfterTable
)

// Op is one incremental operation. Exactly one field group is used.
type Op struct {
	// AddTable declares a new table (with its actions in AddActions).
	AddTable *flexbpf.TableSpec
	// AddActions declares new actions (standalone or for AddTable).
	AddActions []*flexbpf.Action
	// AddMap declares a new map.
	AddMap *flexbpf.MapSpec
	// AddCounter declares a new counter.
	AddCounter *flexbpf.CounterSpec

	// RemoveTables removes all tables matching the pattern, including
	// their pipeline applies.
	RemoveTables Pattern
	// RemoveMaps removes all maps matching the pattern.
	RemoveMaps Pattern
	// RemoveActions removes matching actions (must be unreferenced
	// after table removals).
	RemoveActions Pattern

	// ReplaceAction rewrites the body of all actions matching the
	// pattern (arity must be preserved).
	ReplaceAction Pattern
	NewBody       []flexbpf.Instr
	// ResizeTables sets a new size on matching tables.
	ResizeTables Pattern
	NewSize      int

	// InsertStmt splices a pipeline statement at an anchor.
	InsertStmt  *flexbpf.Stmt
	InsertWhere Where
	// Anchor names the table for BeforeTable/AfterTable.
	Anchor string
}

// Delta is a named incremental change to a base program.
type Delta struct {
	Name string
	Ops  []Op
}

// Report lists exactly which base-program elements an application
// touched, so the runtime engine can compile a minimally intrusive
// change (§3.3 "incremental recompilation").
type Report struct {
	TablesAdded    []string
	TablesRemoved  []string
	TablesResized  []string
	ActionsAdded   []string
	ActionsRemoved []string
	ActionsEdited  []string
	MapsAdded      []string
	MapsRemoved    []string
	StmtsInserted  int
}

// Touched returns the total number of elements changed.
func (r *Report) Touched() int {
	return len(r.TablesAdded) + len(r.TablesRemoved) + len(r.TablesResized) +
		len(r.ActionsAdded) + len(r.ActionsRemoved) + len(r.ActionsEdited) +
		len(r.MapsAdded) + len(r.MapsRemoved) + r.StmtsInserted
}

// Apply executes the delta against base and returns a fresh verified
// program plus the touch report. The base program is never mutated.
func Apply(base *flexbpf.Program, d *Delta) (*flexbpf.Program, *Report, error) {
	out := base.Clone()
	rep := &Report{}
	for i := range d.Ops {
		if err := applyOp(out, &d.Ops[i], rep); err != nil {
			return nil, nil, fmt.Errorf("delta %s op %d: %w", d.Name, i, err)
		}
	}
	if err := flexbpf.Verify(out); err != nil {
		return nil, nil, fmt.Errorf("delta %s: result does not verify: %w", d.Name, err)
	}
	return out, rep, nil
}

func applyOp(p *flexbpf.Program, op *Op, rep *Report) error {
	switch {
	case op.AddTable != nil || len(op.AddActions) > 0 || op.AddMap != nil || op.AddCounter != nil:
		for _, a := range op.AddActions {
			if _, dup := p.Actions[a.Name]; dup {
				return fmt.Errorf("action %q already exists", a.Name)
			}
			p.Actions[a.Name] = a
			rep.ActionsAdded = append(rep.ActionsAdded, a.Name)
		}
		if op.AddMap != nil {
			if p.Map(op.AddMap.Name) != nil {
				return fmt.Errorf("map %q already exists", op.AddMap.Name)
			}
			p.Maps = append(p.Maps, op.AddMap)
			rep.MapsAdded = append(rep.MapsAdded, op.AddMap.Name)
		}
		if op.AddCounter != nil {
			if p.Counter(op.AddCounter.Name) != nil {
				return fmt.Errorf("counter %q already exists", op.AddCounter.Name)
			}
			p.Counters = append(p.Counters, op.AddCounter)
		}
		if op.AddTable != nil {
			if p.Table(op.AddTable.Name) != nil {
				return fmt.Errorf("table %q already exists", op.AddTable.Name)
			}
			p.Tables = append(p.Tables, op.AddTable)
			rep.TablesAdded = append(rep.TablesAdded, op.AddTable.Name)
		}
		return nil

	case op.RemoveTables != "":
		var kept []*flexbpf.TableSpec
		removed := map[string]bool{}
		for _, t := range p.Tables {
			if op.RemoveTables.Match(t.Name) {
				removed[t.Name] = true
				rep.TablesRemoved = append(rep.TablesRemoved, t.Name)
			} else {
				kept = append(kept, t)
			}
		}
		if len(removed) == 0 {
			return fmt.Errorf("pattern %q matches no tables", op.RemoveTables)
		}
		p.Tables = kept
		p.Pipeline = removeApplies(p.Pipeline, removed)
		return nil

	case op.RemoveMaps != "":
		var kept []*flexbpf.MapSpec
		n := 0
		for _, m := range p.Maps {
			if op.RemoveMaps.Match(m.Name) {
				rep.MapsRemoved = append(rep.MapsRemoved, m.Name)
				n++
			} else {
				kept = append(kept, m)
			}
		}
		if n == 0 {
			return fmt.Errorf("pattern %q matches no maps", op.RemoveMaps)
		}
		p.Maps = kept
		return nil

	case op.RemoveActions != "":
		n := 0
		for name := range p.Actions {
			if op.RemoveActions.Match(name) {
				delete(p.Actions, name)
				rep.ActionsRemoved = append(rep.ActionsRemoved, name)
				n++
			}
		}
		if n == 0 {
			return fmt.Errorf("pattern %q matches no actions", op.RemoveActions)
		}
		return nil

	case op.ReplaceAction != "":
		n := 0
		for name, a := range p.Actions {
			if op.ReplaceAction.Match(name) {
				a.Body = append([]flexbpf.Instr(nil), op.NewBody...)
				rep.ActionsEdited = append(rep.ActionsEdited, name)
				n++
			}
		}
		if n == 0 {
			return fmt.Errorf("pattern %q matches no actions", op.ReplaceAction)
		}
		return nil

	case op.ResizeTables != "":
		n := 0
		for _, t := range p.Tables {
			if op.ResizeTables.Match(t.Name) {
				t.Size = op.NewSize
				rep.TablesResized = append(rep.TablesResized, t.Name)
				n++
			}
		}
		if n == 0 {
			return fmt.Errorf("pattern %q matches no tables", op.ResizeTables)
		}
		return nil

	case op.InsertStmt != nil:
		rep.StmtsInserted++
		switch op.InsertWhere {
		case AtStart:
			p.Pipeline = append([]flexbpf.Stmt{*op.InsertStmt}, p.Pipeline...)
			return nil
		case AtEnd:
			p.Pipeline = append(p.Pipeline, *op.InsertStmt)
			return nil
		case BeforeTable, AfterTable:
			idx := -1
			for i := range p.Pipeline {
				if p.Pipeline[i].Apply == op.Anchor {
					idx = i
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("anchor table %q not applied at top level", op.Anchor)
			}
			if op.InsertWhere == AfterTable {
				idx++
			}
			p.Pipeline = append(p.Pipeline[:idx],
				append([]flexbpf.Stmt{*op.InsertStmt}, p.Pipeline[idx:]...)...)
			return nil
		default:
			return fmt.Errorf("unknown insertion anchor %d", op.InsertWhere)
		}

	default:
		return fmt.Errorf("empty delta operation")
	}
}

func removeApplies(stmts []flexbpf.Stmt, removed map[string]bool) []flexbpf.Stmt {
	var out []flexbpf.Stmt
	for _, s := range stmts {
		if s.Apply != "" && removed[s.Apply] {
			continue
		}
		if s.If != nil {
			s.If.Then = removeApplies(s.If.Then, removed)
			s.If.Else = removeApplies(s.If.Else, removed)
		}
		out = append(out, s)
	}
	return out
}

// touchSet returns the set of element names a delta may modify, used for
// conflict detection between tenants' deltas.
func touchSet(base *flexbpf.Program, d *Delta) map[string]bool {
	set := map[string]bool{}
	names := func(pat Pattern, kind string) {
		switch kind {
		case "table":
			for _, t := range base.Tables {
				if pat.Match(t.Name) {
					set["table:"+t.Name] = true
				}
			}
		case "action":
			for a := range base.Actions {
				if pat.Match(a) {
					set["action:"+a] = true
				}
			}
		case "map":
			for _, m := range base.Maps {
				if pat.Match(m.Name) {
					set["map:"+m.Name] = true
				}
			}
		}
	}
	for _, op := range d.Ops {
		switch {
		case op.AddTable != nil:
			set["table:"+op.AddTable.Name] = true
		case op.RemoveTables != "":
			names(op.RemoveTables, "table")
		case op.RemoveMaps != "":
			names(op.RemoveMaps, "map")
		case op.RemoveActions != "":
			names(op.RemoveActions, "action")
		case op.ReplaceAction != "":
			names(op.ReplaceAction, "action")
		case op.ResizeTables != "":
			names(op.ResizeTables, "table")
		case op.InsertStmt != nil && op.Anchor != "":
			set["anchor:"+op.Anchor] = true
		}
		if op.AddMap != nil {
			set["map:"+op.AddMap.Name] = true
		}
		for _, a := range op.AddActions {
			set["action:"+a.Name] = true
		}
	}
	return set
}

// Conflicts reports the base-program elements that two deltas both
// touch. Two tenants' extensions conflict when this is non-empty (§3.2
// "conflicting datapaths that need to be resolved").
func Conflicts(base *flexbpf.Program, a, b *Delta) []string {
	sa := touchSet(base, a)
	sb := touchSet(base, b)
	var out []string
	for k := range sa {
		if sb[k] {
			out = append(out, k)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Describe renders a human-readable summary of the delta.
func Describe(d *Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "delta %s:\n", d.Name)
	for _, op := range d.Ops {
		switch {
		case op.AddTable != nil:
			fmt.Fprintf(&b, "  add table %s\n", op.AddTable.Name)
		case op.RemoveTables != "":
			fmt.Fprintf(&b, "  remove tables %s\n", op.RemoveTables)
		case op.RemoveMaps != "":
			fmt.Fprintf(&b, "  remove maps %s\n", op.RemoveMaps)
		case op.RemoveActions != "":
			fmt.Fprintf(&b, "  remove actions %s\n", op.RemoveActions)
		case op.ReplaceAction != "":
			fmt.Fprintf(&b, "  replace action %s\n", op.ReplaceAction)
		case op.ResizeTables != "":
			fmt.Fprintf(&b, "  resize tables %s to %d\n", op.ResizeTables, op.NewSize)
		case op.InsertStmt != nil:
			fmt.Fprintf(&b, "  insert stmt (where=%d anchor=%s)\n", op.InsertWhere, op.Anchor)
		case len(op.AddActions) > 0 || op.AddMap != nil || op.AddCounter != nil:
			fmt.Fprintf(&b, "  add declarations\n")
		}
	}
	return b.String()
}
