package delta

import (
	"strings"
	"testing"

	"flexnet/internal/flexbpf"
)

// baseProgram: firewall + routing, the canonical infrastructure program.
func baseProgram() *flexbpf.Program {
	deny := flexbpf.NewAsm().Drop().MustBuild()
	allow := flexbpf.NewAsm().Ret().MustBuild()
	route := flexbpf.NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	return flexbpf.NewProgram("infra").
		HashMap("fw_conns", 512, 64).
		Action("fw_deny", 0, deny).
		Action("fw_allow", 0, allow).
		Action("route_fwd", 1, route).
		Table(&flexbpf.TableSpec{
			Name:          "fw_acl",
			Keys:          []flexbpf.TableKey{{Field: "ipv4.src", Kind: flexbpf.MatchTernary, Bits: 32}},
			Actions:       []string{"fw_deny", "fw_allow"},
			DefaultAction: "fw_allow",
			Size:          128,
		}).
		Table(&flexbpf.TableSpec{
			Name:          "route_lpm",
			Keys:          []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchLPM, Bits: 32}},
			Actions:       []string{"route_fwd"},
			DefaultAction: "fw_deny",
			Size:          1024,
		}).
		Apply("fw_acl").
		Apply("route_lpm").
		MustBuild()
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"fw_*", "fw_acl", true},
		{"fw_*", "route", false},
		{"*", "anything", true},
		{"*acl*", "fw_acl_v2", true},
		{"fw_acl", "fw_acl", true},
		{"fw_acl", "fw_acl2", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "aXbY", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := Pattern(c.pat).Match(c.s); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestApplyAddTable(t *testing.T) {
	base := baseProgram()
	rl := flexbpf.NewAsm().Drop().MustBuild()
	d := &Delta{
		Name: "add-ratelimit",
		Ops: []Op{
			{
				AddActions: []*flexbpf.Action{{Name: "rl_drop", Body: rl}},
				AddTable: &flexbpf.TableSpec{
					Name:    "rl_table",
					Keys:    []flexbpf.TableKey{{Field: "ipv4.src", Kind: flexbpf.MatchExact, Bits: 32}},
					Actions: []string{"rl_drop"},
					Size:    64,
				},
			},
			{
				InsertStmt:  &flexbpf.Stmt{Apply: "rl_table"},
				InsertWhere: AfterTable,
				Anchor:      "fw_acl",
			},
		},
	}
	out, rep, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table("rl_table") == nil {
		t.Fatal("table not added")
	}
	applied := out.AppliedTables()
	if len(applied) != 3 || applied[1] != "rl_table" {
		t.Fatalf("apply order = %v", applied)
	}
	if rep.Touched() != 3 { // action + table + stmt
		t.Fatalf("touched = %d", rep.Touched())
	}
	// Base untouched.
	if base.Table("rl_table") != nil || len(base.Pipeline) != 2 {
		t.Fatal("base program mutated")
	}
}

func TestApplyRemoveByPattern(t *testing.T) {
	base := baseProgram()
	d := &Delta{
		Name: "drop-firewall",
		Ops: []Op{
			{RemoveTables: "fw_*"},
			{RemoveMaps: "fw_*"},
		},
	}
	out, rep, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table("fw_acl") != nil || out.Map("fw_conns") != nil {
		t.Fatal("firewall elements not removed")
	}
	if got := out.AppliedTables(); len(got) != 1 || got[0] != "route_lpm" {
		t.Fatalf("pipeline = %v", got)
	}
	if len(rep.TablesRemoved) != 1 || len(rep.MapsRemoved) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// fw_deny/fw_allow actions remain (route_lpm uses fw_deny as default)
	// and the program still verifies.
	if out.Actions["fw_deny"] == nil {
		t.Fatal("shared action removed")
	}
}

func TestApplyReplaceAction(t *testing.T) {
	base := baseProgram()
	// Hot-patch: fw_deny now punts to the controller instead of dropping.
	punt := flexbpf.NewAsm().Punt().MustBuild()
	d := &Delta{Name: "hotpatch", Ops: []Op{{ReplaceAction: "fw_deny", NewBody: punt}}}
	out, rep, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Actions["fw_deny"].Body[0].Op != flexbpf.OpPunt {
		t.Fatal("action not replaced")
	}
	if base.Actions["fw_deny"].Body[0].Op == flexbpf.OpPunt {
		t.Fatal("base action mutated")
	}
	if len(rep.ActionsEdited) != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestApplyResize(t *testing.T) {
	base := baseProgram()
	d := &Delta{Name: "grow", Ops: []Op{{ResizeTables: "route_*", NewSize: 4096}}}
	out, _, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table("route_lpm").Size != 4096 {
		t.Fatalf("size = %d", out.Table("route_lpm").Size)
	}
	if base.Table("route_lpm").Size != 1024 {
		t.Fatal("base mutated")
	}
}

func TestApplyInsertAtStartEnd(t *testing.T) {
	base := baseProgram()
	count := flexbpf.NewAsm().Ret().MustBuild()
	d := &Delta{Name: "wrap", Ops: []Op{
		{InsertStmt: &flexbpf.Stmt{Do: count}, InsertWhere: AtStart},
		{InsertStmt: &flexbpf.Stmt{Do: count}, InsertWhere: AtEnd},
	}}
	out, _, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Pipeline) != 4 {
		t.Fatalf("pipeline len = %d", len(out.Pipeline))
	}
	if out.Pipeline[0].Do == nil || out.Pipeline[3].Do == nil {
		t.Fatal("inserts misplaced")
	}
}

func TestApplyErrors(t *testing.T) {
	base := baseProgram()
	cases := []struct {
		name string
		d    *Delta
		frag string
	}{
		{"no match remove", &Delta{Ops: []Op{{RemoveTables: "nothing_*"}}}, "matches no tables"},
		{"dup table", &Delta{Ops: []Op{{AddTable: &flexbpf.TableSpec{Name: "fw_acl"}}}}, "already exists"},
		{"bad anchor", &Delta{Ops: []Op{{InsertStmt: &flexbpf.Stmt{Apply: "fw_acl"}, InsertWhere: BeforeTable, Anchor: "nope"}}}, "not applied"},
		{"empty op", &Delta{Ops: []Op{{}}}, "empty delta"},
		{"break verify", &Delta{Ops: []Op{{RemoveActions: "route_fwd"}}}, "does not verify"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := Apply(base, c.d)
			if err == nil {
				t.Fatal("apply succeeded")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q missing %q", err, c.frag)
			}
		})
	}
}

func TestConflicts(t *testing.T) {
	base := baseProgram()
	tenantA := &Delta{Name: "a", Ops: []Op{{ResizeTables: "fw_acl"}}}
	tenantB := &Delta{Name: "b", Ops: []Op{{ReplaceAction: "fw_*", NewBody: flexbpf.NewAsm().Ret().MustBuild()}}}
	tenantC := &Delta{Name: "c", Ops: []Op{{ResizeTables: "route_lpm"}}}

	if got := Conflicts(base, tenantA, tenantC); len(got) != 0 {
		t.Fatalf("disjoint deltas conflict: %v", got)
	}
	// A touches table fw_acl; B touches actions fw_deny/fw_allow — no
	// overlap at element granularity.
	if got := Conflicts(base, tenantA, tenantB); len(got) != 0 {
		t.Fatalf("table-vs-action conflict: %v", got)
	}
	tenantD := &Delta{Name: "d", Ops: []Op{{RemoveTables: "fw_*"}}}
	got := Conflicts(base, tenantA, tenantD)
	if len(got) != 1 || got[0] != "table:fw_acl" {
		t.Fatalf("conflicts = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	d := &Delta{Name: "x", Ops: []Op{{RemoveTables: "fw_*"}, {ResizeTables: "r*", NewSize: 10}}}
	s := Describe(d)
	if !strings.Contains(s, "remove tables fw_*") || !strings.Contains(s, "resize tables r*") {
		t.Fatalf("describe = %q", s)
	}
}

func TestSequentialDeltas(t *testing.T) {
	// Apply two deltas in sequence: tenant adds a table, then a later
	// delta retires it — net effect is the base program shape again.
	base := baseProgram()
	add := &Delta{Name: "add", Ops: []Op{
		{
			AddActions: []*flexbpf.Action{{Name: "t_drop", Body: flexbpf.NewAsm().Drop().MustBuild()}},
			AddTable: &flexbpf.TableSpec{
				Name:    "t_table",
				Keys:    []flexbpf.TableKey{{Field: "ipv4.dst", Kind: flexbpf.MatchExact, Bits: 32}},
				Actions: []string{"t_drop"},
				Size:    8,
			},
		},
		{InsertStmt: &flexbpf.Stmt{Apply: "t_table"}, InsertWhere: AtEnd},
	}}
	v2, _, err := Apply(base, add)
	if err != nil {
		t.Fatal(err)
	}
	retire := &Delta{Name: "retire", Ops: []Op{
		{RemoveTables: "t_table"},
		{RemoveActions: "t_drop"},
	}}
	v3, _, err := Apply(v2, retire)
	if err != nil {
		t.Fatal(err)
	}
	if len(v3.Tables) != len(base.Tables) || len(v3.Actions) != len(base.Actions) {
		t.Fatal("add+retire is not identity on shape")
	}
	if d := flexbpf.ProgramDemand(v3); d != flexbpf.ProgramDemand(base) {
		t.Fatalf("demand changed: %v vs %v", d, flexbpf.ProgramDemand(base))
	}
}
