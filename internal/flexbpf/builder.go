package flexbpf

import "fmt"

// Asm assembles instruction blocks with forward-label resolution, so
// program authors never hand-compute jump offsets.
//
//	code := flexbpf.NewAsm().
//		LdField(0, "tcp.flags").
//		AndImm(0, packet.TCPSyn).
//		JEqImm(0, 0, "pass").
//		Drop().
//		Label("pass").
//		Ret().
//		MustBuild()
type Asm struct {
	code   []Instr
	labels map[string]int
	// fixups[i] = label name for instruction i needing its Off patched.
	fixups map[int]string
	err    error
}

// NewAsm creates an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: map[string]int{}, fixups: map[int]string{}}
}

func (a *Asm) emit(i Instr) *Asm {
	a.code = append(a.code, i)
	return a
}

// Label defines a jump target at the current position.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup && a.err == nil {
		a.err = fmt.Errorf("flexbpf: duplicate label %q", name)
	}
	a.labels[name] = len(a.code)
	return a
}

func (a *Asm) jump(op Op, rs, rt Reg, imm uint64, label string) *Asm {
	a.fixups[len(a.code)] = label
	return a.emit(Instr{Op: op, Rs: rs, Rt: rt, Imm: imm})
}

// Build resolves labels and returns the block.
func (a *Asm) Build() ([]Instr, error) {
	if a.err != nil {
		return nil, a.err
	}
	for idx, label := range a.fixups {
		target, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("flexbpf: undefined label %q", label)
		}
		off := target - idx - 1
		if off < 0 {
			return nil, fmt.Errorf("flexbpf: label %q is backward from pc %d (forward-only jumps)", label, idx)
		}
		a.code[idx].Off = int32(off)
	}
	return a.code, nil
}

// MustBuild is Build that panics on error; for statically-known programs.
func (a *Asm) MustBuild() []Instr {
	code, err := a.Build()
	if err != nil {
		panic(err)
	}
	return code
}

// Nop appends a no-op.
func (a *Asm) Nop() *Asm { return a.emit(Instr{Op: OpNop}) }

// MovImm sets rd = imm.
func (a *Asm) MovImm(rd Reg, imm uint64) *Asm { return a.emit(Instr{Op: OpMovImm, Rd: rd, Imm: imm}) }

// Mov sets rd = rs.
func (a *Asm) Mov(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpMov, Rd: rd, Rs: rs}) }

// LdField loads a packet field into rd.
func (a *Asm) LdField(rd Reg, field string) *Asm {
	return a.emit(Instr{Op: OpLdField, Rd: rd, Sym: field})
}

// HasField sets rd to 1 if the field is present.
func (a *Asm) HasField(rd Reg, field string) *Asm {
	return a.emit(Instr{Op: OpHasField, Rd: rd, Sym: field})
}

// StField stores rs into a packet field.
func (a *Asm) StField(field string, rs Reg) *Asm {
	return a.emit(Instr{Op: OpStField, Rs: rs, Sym: field})
}

// AddHdr marks a header present.
func (a *Asm) AddHdr(header string) *Asm { return a.emit(Instr{Op: OpAddHdr, Sym: header}) }

// RmHdr removes a header.
func (a *Asm) RmHdr(header string) *Asm { return a.emit(Instr{Op: OpRmHdr, Sym: header}) }

// LdParam loads action parameter idx into rd.
func (a *Asm) LdParam(rd Reg, idx uint64) *Asm {
	return a.emit(Instr{Op: OpLdParam, Rd: rd, Imm: idx})
}

// ALU register forms.

// Add sets rd += rs.
func (a *Asm) Add(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpAdd, Rd: rd, Rs: rs}) }

// Sub sets rd -= rs.
func (a *Asm) Sub(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpSub, Rd: rd, Rs: rs}) }

// Mul sets rd *= rs.
func (a *Asm) Mul(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpMul, Rd: rd, Rs: rs}) }

// Div sets rd /= rs (0 if rs is 0).
func (a *Asm) Div(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpDiv, Rd: rd, Rs: rs}) }

// Mod sets rd %= rs (0 if rs is 0).
func (a *Asm) Mod(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpMod, Rd: rd, Rs: rs}) }

// And sets rd &= rs.
func (a *Asm) And(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpAnd, Rd: rd, Rs: rs}) }

// Or sets rd |= rs.
func (a *Asm) Or(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpOr, Rd: rd, Rs: rs}) }

// Xor sets rd ^= rs.
func (a *Asm) Xor(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpXor, Rd: rd, Rs: rs}) }

// Shl sets rd <<= rs.
func (a *Asm) Shl(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpShl, Rd: rd, Rs: rs}) }

// Shr sets rd >>= rs.
func (a *Asm) Shr(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpShr, Rd: rd, Rs: rs}) }

// Min sets rd = min(rd, rs).
func (a *Asm) Min(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpMin, Rd: rd, Rs: rs}) }

// Max sets rd = max(rd, rs).
func (a *Asm) Max(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpMax, Rd: rd, Rs: rs}) }

// ALU immediate forms.

// AddImm sets rd += imm.
func (a *Asm) AddImm(rd Reg, imm uint64) *Asm { return a.emit(Instr{Op: OpAddImm, Rd: rd, Imm: imm}) }

// SubImm sets rd -= imm.
func (a *Asm) SubImm(rd Reg, imm uint64) *Asm { return a.emit(Instr{Op: OpSubImm, Rd: rd, Imm: imm}) }

// MulImm sets rd *= imm.
func (a *Asm) MulImm(rd Reg, imm uint64) *Asm { return a.emit(Instr{Op: OpMulImm, Rd: rd, Imm: imm}) }

// AndImm sets rd &= imm.
func (a *Asm) AndImm(rd Reg, imm uint64) *Asm { return a.emit(Instr{Op: OpAndImm, Rd: rd, Imm: imm}) }

// OrImm sets rd |= imm.
func (a *Asm) OrImm(rd Reg, imm uint64) *Asm { return a.emit(Instr{Op: OpOrImm, Rd: rd, Imm: imm}) }

// XorImm sets rd ^= imm.
func (a *Asm) XorImm(rd Reg, imm uint64) *Asm { return a.emit(Instr{Op: OpXorImm, Rd: rd, Imm: imm}) }

// ShlImm sets rd <<= imm.
func (a *Asm) ShlImm(rd Reg, imm uint64) *Asm { return a.emit(Instr{Op: OpShlImm, Rd: rd, Imm: imm}) }

// ShrImm sets rd >>= imm.
func (a *Asm) ShrImm(rd Reg, imm uint64) *Asm { return a.emit(Instr{Op: OpShrImm, Rd: rd, Imm: imm}) }

// Map operations.

// MapLoad loads map[rs] into rd.
func (a *Asm) MapLoad(rd Reg, mapName string, rs Reg) *Asm {
	return a.emit(Instr{Op: OpMapLoad, Rd: rd, Rs: rs, Sym: mapName})
}

// MapHas sets rd to 1 if key rs exists in the map.
func (a *Asm) MapHas(rd Reg, mapName string, rs Reg) *Asm {
	return a.emit(Instr{Op: OpMapHas, Rd: rd, Rs: rs, Sym: mapName})
}

// MapStore sets map[rs] = rt.
func (a *Asm) MapStore(mapName string, rs, rt Reg) *Asm {
	return a.emit(Instr{Op: OpMapStore, Rs: rs, Rt: rt, Sym: mapName})
}

// MapDelete deletes map[rs].
func (a *Asm) MapDelete(mapName string, rs Reg) *Asm {
	return a.emit(Instr{Op: OpMapDelete, Rs: rs, Sym: mapName})
}

// Intrinsics.

// Hash sets rd = fnv64(rs).
func (a *Asm) Hash(rd, rs Reg) *Asm { return a.emit(Instr{Op: OpHash, Rd: rd, Rs: rs}) }

// FlowHash sets rd to the packet's 5-tuple hash.
func (a *Asm) FlowHash(rd Reg) *Asm { return a.emit(Instr{Op: OpFlowHash, Rd: rd}) }

// Now sets rd to the current time in nanoseconds.
func (a *Asm) Now(rd Reg) *Asm { return a.emit(Instr{Op: OpNow, Rd: rd}) }

// Rand sets rd to a pseudo-random value.
func (a *Asm) Rand(rd Reg) *Asm { return a.emit(Instr{Op: OpRand, Rd: rd}) }

// PktLen sets rd to the packet length.
func (a *Asm) PktLen(rd Reg) *Asm { return a.emit(Instr{Op: OpPktLen, Rd: rd}) }

// Count adds rt to counter[rs].
func (a *Asm) Count(counter string, rs, rt Reg) *Asm {
	return a.emit(Instr{Op: OpCount, Rs: rs, Rt: rt, Sym: counter})
}

// MeterExec charges rt bytes to meter[rs]; color in rd.
func (a *Asm) MeterExec(rd Reg, meter string, rs, rt Reg) *Asm {
	return a.emit(Instr{Op: OpMeterExec, Rd: rd, Rs: rs, Rt: rt, Sym: meter})
}

// Control flow (labels).

// Jmp jumps unconditionally to label.
func (a *Asm) Jmp(label string) *Asm { return a.jump(OpJmp, 0, 0, 0, label) }

// JEq jumps to label if rs == rt.
func (a *Asm) JEq(rs, rt Reg, label string) *Asm { return a.jump(OpJEq, rs, rt, 0, label) }

// JNe jumps to label if rs != rt.
func (a *Asm) JNe(rs, rt Reg, label string) *Asm { return a.jump(OpJNe, rs, rt, 0, label) }

// JLt jumps to label if rs < rt.
func (a *Asm) JLt(rs, rt Reg, label string) *Asm { return a.jump(OpJLt, rs, rt, 0, label) }

// JGe jumps to label if rs >= rt.
func (a *Asm) JGe(rs, rt Reg, label string) *Asm { return a.jump(OpJGe, rs, rt, 0, label) }

// JGt jumps to label if rs > rt.
func (a *Asm) JGt(rs, rt Reg, label string) *Asm { return a.jump(OpJGt, rs, rt, 0, label) }

// JLe jumps to label if rs <= rt.
func (a *Asm) JLe(rs, rt Reg, label string) *Asm { return a.jump(OpJLe, rs, rt, 0, label) }

// JEqImm jumps to label if rs == imm.
func (a *Asm) JEqImm(rs Reg, imm uint64, label string) *Asm {
	return a.jump(OpJEqImm, rs, 0, imm, label)
}

// JNeImm jumps to label if rs != imm.
func (a *Asm) JNeImm(rs Reg, imm uint64, label string) *Asm {
	return a.jump(OpJNeImm, rs, 0, imm, label)
}

// JLtImm jumps to label if rs < imm.
func (a *Asm) JLtImm(rs Reg, imm uint64, label string) *Asm {
	return a.jump(OpJLtImm, rs, 0, imm, label)
}

// JGeImm jumps to label if rs >= imm.
func (a *Asm) JGeImm(rs Reg, imm uint64, label string) *Asm {
	return a.jump(OpJGeImm, rs, 0, imm, label)
}

// JGtImm jumps to label if rs > imm.
func (a *Asm) JGtImm(rs Reg, imm uint64, label string) *Asm {
	return a.jump(OpJGtImm, rs, 0, imm, label)
}

// JLeImm jumps to label if rs <= imm.
func (a *Asm) JLeImm(rs Reg, imm uint64, label string) *Asm {
	return a.jump(OpJLeImm, rs, 0, imm, label)
}

// Verdicts.

// Drop drops the packet.
func (a *Asm) Drop() *Asm { return a.emit(Instr{Op: OpDrop}) }

// Forward forwards via the port number held in rs.
func (a *Asm) Forward(rs Reg) *Asm { return a.emit(Instr{Op: OpForward, Rs: rs}) }

// Punt sends the packet to the controller.
func (a *Asm) Punt() *Asm { return a.emit(Instr{Op: OpPunt}) }

// Recirc recirculates the packet.
func (a *Asm) Recirc() *Asm { return a.emit(Instr{Op: OpRecirc}) }

// Ret ends the block without a terminal verdict.
func (a *Asm) Ret() *Asm { return a.emit(Instr{Op: OpRet}) }

// ProgramBuilder constructs Programs fluently; Build verifies.
type ProgramBuilder struct {
	p   *Program
	err error
}

// NewProgram starts a builder for a program with the given name.
func NewProgram(name string) *ProgramBuilder {
	return &ProgramBuilder{p: &Program{Name: name, Actions: map[string]*Action{}}}
}

// Owner sets the owning tenant.
func (b *ProgramBuilder) Owner(owner string) *ProgramBuilder {
	b.p.Owner = owner
	return b
}

// Requires declares required device capabilities.
func (b *ProgramBuilder) Requires(c Capabilities) *ProgramBuilder {
	b.p.Requires = c
	return b
}

// Headers declares required headers.
func (b *ProgramBuilder) Headers(names ...string) *ProgramBuilder {
	b.p.RequiredHeaders = append(b.p.RequiredHeaders, names...)
	return b
}

// HashMap declares a hash map.
func (b *ProgramBuilder) HashMap(name string, maxEntries, valueBits int) *ProgramBuilder {
	b.p.Maps = append(b.p.Maps, &MapSpec{Name: name, Kind: MapHash, MaxEntries: maxEntries, ValueBits: valueBits})
	return b
}

// ArrayMap declares a register-file style array map.
func (b *ProgramBuilder) ArrayMap(name string, entries, valueBits int) *ProgramBuilder {
	b.p.Maps = append(b.p.Maps, &MapSpec{Name: name, Kind: MapArray, MaxEntries: entries, ValueBits: valueBits})
	return b
}

// LRUMap declares an LRU-evicting flow cache map.
func (b *ProgramBuilder) LRUMap(name string, maxEntries, valueBits int) *ProgramBuilder {
	b.p.Maps = append(b.p.Maps, &MapSpec{Name: name, Kind: MapLRU, MaxEntries: maxEntries, ValueBits: valueBits})
	return b
}

// SharedMap marks the most recently declared map as shared (must migrate
// with the program).
func (b *ProgramBuilder) SharedMap() *ProgramBuilder {
	if n := len(b.p.Maps); n > 0 {
		b.p.Maps[n-1].Shared = true
	} else if b.err == nil {
		b.err = fmt.Errorf("flexbpf: SharedMap with no maps declared")
	}
	return b
}

// Counter declares a counter array.
func (b *ProgramBuilder) Counter(name string, size int) *ProgramBuilder {
	b.p.Counters = append(b.p.Counters, &CounterSpec{Name: name, Size: size})
	return b
}

// Meter declares a meter array.
func (b *ProgramBuilder) Meter(name string, size int, cir, pir, cbs, pbs uint64) *ProgramBuilder {
	b.p.Meters = append(b.p.Meters, &MeterSpec{Name: name, Size: size, CIR: cir, PIR: pir, CBS: cbs, PBS: pbs})
	return b
}

// Action declares a named action with the given parameter count and body.
func (b *ProgramBuilder) Action(name string, numParams int, body []Instr) *ProgramBuilder {
	if _, dup := b.p.Actions[name]; dup && b.err == nil {
		b.err = fmt.Errorf("flexbpf: duplicate action %q", name)
	}
	b.p.Actions[name] = &Action{Name: name, NumParams: numParams, Body: body}
	return b
}

// Table declares a table.
func (b *ProgramBuilder) Table(t *TableSpec) *ProgramBuilder {
	b.p.Tables = append(b.p.Tables, t)
	return b
}

// Apply appends a table application to the pipeline.
func (b *ProgramBuilder) Apply(table string) *ProgramBuilder {
	b.p.Pipeline = append(b.p.Pipeline, Stmt{Apply: table})
	return b
}

// Do appends an inline instruction block to the pipeline.
func (b *ProgramBuilder) Do(code []Instr) *ProgramBuilder {
	b.p.Pipeline = append(b.p.Pipeline, Stmt{Do: code})
	return b
}

// If appends a conditional to the pipeline.
func (b *ProgramBuilder) If(cond Cond, then, els []Stmt) *ProgramBuilder {
	b.p.Pipeline = append(b.p.Pipeline, Stmt{If: &IfStmt{Cond: cond, Then: then, Else: els}})
	return b
}

// Build verifies and returns the program.
func (b *ProgramBuilder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := Verify(b.p); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustBuild is Build that panics on error.
func (b *ProgramBuilder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Statement constructors for If branches.

// SApply builds an apply statement.
func SApply(table string) Stmt { return Stmt{Apply: table} }

// SDo builds an inline block statement.
func SDo(code []Instr) Stmt { return Stmt{Do: code} }

// SIf builds a conditional statement.
func SIf(cond Cond, then, els []Stmt) Stmt {
	return Stmt{If: &IfStmt{Cond: cond, Then: then, Else: els}}
}
