package flexbpf

import (
	"sync"
	"testing"

	"flexnet/internal/packet"
)

// benchMap is a fixed-array map backend so the benchmarks measure
// interpreter and addressing overhead, not map implementation overhead.
type benchMap struct {
	vals    [4096]uint64
	present [4096]bool
}

func (m *benchMap) load(k uint64) (uint64, bool) {
	i := k & 4095
	return m.vals[i], m.present[i]
}
func (m *benchMap) store(k, v uint64) {
	i := k & 4095
	m.vals[i], m.present[i] = v, true
}
func (m *benchMap) del(k uint64) {
	i := k & 4095
	m.vals[i], m.present[i] = 0, false
}

// benchEnv implements both Env and LinkedEnv over the same storage, with
// the same addressing asymmetry the production dataplane has: the
// name-based methods (what the pre-link tree interpreter uses) resolve
// through a mutex-guarded map[string] with an interface type assertion,
// exactly like state.Store.Get does per operation, while the slot-based
// methods (what the linked engine uses) index a slice of pointers
// resolved once at install time, like ProgramInstance's lmaps.
type benchEnv struct {
	mu     sync.Mutex
	byName map[string]any
	slots  []*benchMap
	tables map[string]*TableInstance
}

func newBenchEnv(lp *LinkedProgram, tables map[string]*TableInstance) *benchEnv {
	e := &benchEnv{byName: map[string]any{}, tables: tables}
	for _, name := range lp.MapSlots() {
		m := &benchMap{}
		e.byName[name] = m
		e.slots = append(e.slots, m)
	}
	return e
}

// object mirrors state.Store.Get: lock, name lookup, type assertion.
func (e *benchEnv) object(name string) *benchMap {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, _ := e.byName[name].(*benchMap)
	return m
}

func (e *benchEnv) MapLoad(name string, k uint64) (uint64, bool) { return e.object(name).load(k) }
func (e *benchEnv) MapStore(name string, k, v uint64) error {
	e.object(name).store(k, v)
	return nil
}
func (e *benchEnv) MapDelete(name string, k uint64)         { e.object(name).del(k) }
func (e *benchEnv) CounterAdd(string, uint64, uint64)       {}
func (e *benchEnv) MeterExec(string, uint64, uint64) uint64 { return 0 }
func (e *benchEnv) TableLookup(t string, keys []uint64) (string, []uint64, bool) {
	return e.tables[t].Lookup(keys)
}
func (e *benchEnv) Now() uint64  { return 0 }
func (e *benchEnv) Rand() uint64 { return 0 }

func (e *benchEnv) MapLoadSlot(s int, k uint64) (uint64, bool) { return e.slots[s].load(k) }
func (e *benchEnv) MapStoreSlot(s int, k, v uint64) error {
	e.slots[s].store(k, v)
	return nil
}
func (e *benchEnv) MapDeleteSlot(s int, k uint64)            { e.slots[s].del(k) }
func (e *benchEnv) CounterAddSlot(int, uint64, uint64)       {}
func (e *benchEnv) MeterExecSlot(int, uint64, uint64) uint64 { return 0 }

// benchPipelineProgram is a representative multi-app pipeline — the
// workload install-time linking targets: several independently written
// stages composed into one program, shaped like the catalog apps
// (SYNDefense's SYN accounting, RateLimiter's token stamp,
// INTTelemetry's per-hop stamps). It classifies the 5-tuple, maintains
// flow packet and byte counters, stamps telemetry and rate-limit
// metadata, counts SYNs and rewrites TTL/DSCP for TCP traffic, and
// applies an ACL. Heavy on field and state access, where the pre-link
// interpreter pays a string hash per reference.
func benchPipelineProgram(t testing.TB) *Program {
	classify := NewAsm().
		LdField(0, "ipv4.src").
		LdField(1, "ipv4.dst").
		LdField(2, "ipv4.proto").
		LdField(3, "tcp.sport").
		LdField(4, "tcp.dport").
		Xor(0, 1).
		ShlImm(2, 16).
		Xor(0, 2).
		Xor(3, 4).
		Xor(0, 3).
		Hash(5, 0).
		StField("meta.flowhash", 5).
		MapLoad(6, "flows", 5).
		AddImm(6, 1).
		MapStore("flows", 5, 6).
		MovImm(7, 1).
		StField("meta.class", 7).
		MustBuild()
	telemetry := NewAsm().
		Now(0).
		StField("meta.ingress_ts", 0).
		PktLen(1).
		LdField(2, "meta.flowhash").
		MapLoad(3, "bytes", 2).
		Add(3, 1).
		MapStore("bytes", 2, 3).
		LdField(4, "meta.class").
		StField("meta.qos", 4).
		MustBuild()
	ratelimit := NewAsm().
		LdField(0, "meta.flowhash").
		MapLoad(1, "tokens", 0).
		AddImm(1, 1).
		MapStore("tokens", 0, 1).
		MovImm(2, 0).
		JLtImm(1, 100, "under").
		MovImm(2, 1).
		Label("under").
		StField("meta.rlclass", 2).
		MustBuild()
	synguard := NewAsm().
		LdField(0, "tcp.flags").
		AndImm(0, packet.TCPSyn).
		JEqImm(0, 0, "done").
		LdField(1, "ipv4.dst").
		MapLoad(2, "syncnt", 1).
		AddImm(2, 1).
		MapStore("syncnt", 1, 2).
		Label("done").
		MustBuild()
	rewrite := NewAsm().
		LdField(0, "ipv4.ttl").
		SubImm(0, 1).
		StField("ipv4.ttl", 0).
		LdField(1, "ipv4.dscp").
		OrImm(1, 8).
		StField("ipv4.dscp", 1).
		MustBuild()
	allow := NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	deny := NewAsm().Drop().MustBuild()
	p, err := NewProgram("l3bench").
		HashMap("flows", 4096, 64).
		HashMap("bytes", 4096, 64).
		HashMap("tokens", 4096, 64).
		HashMap("syncnt", 4096, 64).
		Action("allow", 1, allow).
		Action("deny", 0, deny).
		Table(&TableSpec{
			Name: "acl",
			Keys: []TableKey{
				{Field: "ipv4.src", Kind: MatchTernary, Bits: 32},
				{Field: "tcp.dport", Kind: MatchExact, Bits: 16},
			},
			Actions:       []string{"allow", "deny"},
			DefaultAction: "deny",
			Size:          64,
		}).
		Do(classify).
		Do(telemetry).
		Do(ratelimit).
		If(Cond{Field: "ipv4.proto", Op: CmpEq, Value: packet.ProtoTCP},
			[]Stmt{SDo(synguard), SDo(rewrite), {Apply: "acl"}},
			nil).
		Build()
	if err != nil {
		t.Fatalf("build l3bench: %v", err)
	}
	return p
}

func benchSetup(b *testing.B) (*Program, *benchEnv, *LinkedProgram, []*packet.Packet) {
	b.Helper()
	prog := benchPipelineProgram(b)
	tables := map[string]*TableInstance{
		"acl": NewTableInstance(prog.Table("acl")),
	}
	err := tables["acl"].Insert(&TableEntry{
		Priority: 10,
		Match: []MatchValue{
			{Value: uint64(packet.IP(10, 0, 0, 0)), Mask: 0xFF000000},
			{Value: 80},
		},
		Action: "allow",
		Params: []uint64{3},
	})
	if err != nil {
		b.Fatal(err)
	}
	lp, err := Link(prog, func(name string) *TableInstance { return tables[name] })
	if err != nil {
		b.Fatal(err)
	}
	tables["acl"].SetActionResolver(lp.ActionIndex)
	env := newBenchEnv(lp, tables)
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		src := packet.IP(10, byte(i), 2, byte(i*7))
		if i%4 == 3 {
			src = packet.IP(11, byte(i), 2, byte(i*7)) // default-action miss
		}
		var flags uint64
		if i%2 == 0 {
			flags = packet.TCPSyn // exercise the SYN-counting branch
		}
		pkts[i] = packet.TCPPacket(uint64(i), src, packet.IP(192, 168, 0, 1), uint16(1024+i), 80, flags, 64)
	}
	return prog, env, lp, pkts
}

// BenchmarkUnlinkedInterp is the pre-link tree interpreter on the
// representative pipeline: the "before" number for install-time linking.
func BenchmarkUnlinkedInterp(b *testing.B) {
	prog, env, _, pkts := benchSetup(b)
	var interp Interp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(prog, pkts[i&63], env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkedInterp is the same program after install-time linking:
// field IDs, slot-addressed state, direct table pointers, flat code.
// The acceptance bar is 0 allocs/op and >=3x over BenchmarkUnlinkedInterp.
func BenchmarkLinkedInterp(b *testing.B) {
	_, env, lp, pkts := benchSetup(b)
	ctx := NewExecContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Run(pkts[i&63], env, ctx); err != nil {
			b.Fatal(err)
		}
	}
}
