package flexbpf

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAsm assembles FlexBPF text into an instruction block. The syntax
// is exactly what Disasm emits, plus labels:
//
//	        ldf r0 tcp.flags
//	        andi r0 #2
//	        jeqi r0 #0 pass     ; jump target may be a label or "+N"
//	        drop
//	pass:   ret
//
// One instruction per line; ';' starts a comment; "name:" defines a
// label at the next instruction. Immediates are written "#123" (decimal)
// or "#0x1f" (hex). Registers are "r0".."r15".
//
// Together with Disasm this gives the FlexBPF DSL a complete textual
// form: Disasm output (with "+N" offsets) re-assembles to the identical
// block.
func ParseAsm(src string) ([]Instr, error) {
	type pending struct {
		idx   int
		label string
		line  int
	}
	var (
		code   []Instr
		labels = map[string]int{}
		fixups []pending
		opBy   = map[string]Op{}
	)
	for op, name := range opNames {
		opBy[name] = op
	}

	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading labels (may stack: "a: b: op ...").
		for {
			i := strings.IndexByte(line, ':')
			if i <= 0 || strings.ContainsAny(line[:i], " \t") {
				break
			}
			name := line[:i]
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("flexbpf: line %d: duplicate label %q", lineNo, name)
			}
			labels[name] = len(code)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		mnem := fields[0]
		op, ok := opBy[mnem]
		if !ok {
			return nil, fmt.Errorf("flexbpf: line %d: unknown mnemonic %q", lineNo, mnem)
		}
		cls := opClasses[op]
		ins := Instr{Op: op}
		args := fields[1:]
		next := func(what string) (string, error) {
			if len(args) == 0 {
				return "", fmt.Errorf("flexbpf: line %d: %s missing %s operand", lineNo, mnem, what)
			}
			a := args[0]
			args = args[1:]
			return a, nil
		}
		reg := func(tok string) (Reg, error) {
			if !strings.HasPrefix(tok, "r") {
				return 0, fmt.Errorf("flexbpf: line %d: expected register, got %q", lineNo, tok)
			}
			v, err := strconv.Atoi(tok[1:])
			if err != nil || v < 0 || v >= NumRegs {
				return 0, fmt.Errorf("flexbpf: line %d: bad register %q", lineNo, tok)
			}
			return Reg(v), nil
		}
		// Operand order mirrors Instr.String: rd, rs, rt, sym, imm, jump.
		if cls.writesRd || cls.readsRd {
			tok, err := next("rd")
			if err != nil {
				return nil, err
			}
			if ins.Rd, err = reg(tok); err != nil {
				return nil, err
			}
		}
		if cls.readsRs {
			tok, err := next("rs")
			if err != nil {
				return nil, err
			}
			if ins.Rs, err = reg(tok); err != nil {
				return nil, err
			}
		}
		if cls.readsRt {
			tok, err := next("rt")
			if err != nil {
				return nil, err
			}
			if ins.Rt, err = reg(tok); err != nil {
				return nil, err
			}
		}
		if cls.sym != symNone {
			tok, err := next("symbol")
			if err != nil {
				return nil, err
			}
			ins.Sym = tok
		}
		if opTakesImm(op) {
			tok, err := next("immediate")
			if err != nil {
				return nil, err
			}
			if !strings.HasPrefix(tok, "#") {
				return nil, fmt.Errorf("flexbpf: line %d: immediate must start with '#', got %q", lineNo, tok)
			}
			v, err := strconv.ParseUint(strings.TrimPrefix(tok, "#"), 0, 64)
			if err != nil {
				return nil, fmt.Errorf("flexbpf: line %d: bad immediate %q", lineNo, tok)
			}
			ins.Imm = v
		}
		if cls.jump {
			tok, err := next("jump target")
			if err != nil {
				return nil, err
			}
			if strings.HasPrefix(tok, "+") {
				off, err := strconv.Atoi(tok[1:])
				if err != nil || off < 0 {
					return nil, fmt.Errorf("flexbpf: line %d: bad offset %q", lineNo, tok)
				}
				ins.Off = int32(off)
			} else {
				fixups = append(fixups, pending{idx: len(code), label: tok, line: lineNo})
			}
		}
		if len(args) != 0 {
			return nil, fmt.Errorf("flexbpf: line %d: trailing operands %v", lineNo, args)
		}
		code = append(code, ins)
	}
	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("flexbpf: line %d: undefined label %q", fx.line, fx.label)
		}
		off := target - fx.idx - 1
		if off < 0 {
			return nil, fmt.Errorf("flexbpf: line %d: label %q is backward (forward-only jumps)", fx.line, fx.label)
		}
		code[fx.idx].Off = int32(off)
	}
	return code, nil
}

// MustParseAsm is ParseAsm that panics on error (static program text).
func MustParseAsm(src string) []Instr {
	code, err := ParseAsm(src)
	if err != nil {
		panic(err)
	}
	return code
}

// opTakesImm lists opcodes whose textual form carries "#imm", matching
// Instr.String.
func opTakesImm(op Op) bool {
	switch op {
	case OpMovImm, OpLdParam, OpAddImm, OpSubImm, OpMulImm, OpAndImm, OpOrImm,
		OpXorImm, OpShlImm, OpShrImm, OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm,
		OpJGtImm, OpJLeImm:
		return true
	}
	return false
}
