package flexbpf

import (
	"sort"

	"flexnet/internal/packet"
)

// This file derives the static cache profile of a linked program: which
// packet fields the program can read or write, and whether its effects
// are a pure function of those fields plus its tables' contents. The
// flow cache (internal/flowcache, DESIGN.md §12) uses the profile to
// build a sound validation set for megaflow entries: a follower packet
// whose profile fields (and headers, and pinned table generations) match
// a recorded first packet must produce bit-identical pipeline output, so
// the recorded output can be replayed without running the pipeline.

// CacheProfile summarizes a linked program's packet-visible data flow.
type CacheProfile struct {
	// Cacheable reports that the program's output depends only on the
	// packet (Reads, headers, length) and its tables' contents: no
	// per-flow state, counters, meters, clock, randomness, or header
	// add/remove, and no punt/recirculate verdicts. Programs that fail
	// this are never short-circuited by the flow cache.
	Cacheable bool
	// Reads and Writes are the field IDs the program may read or write,
	// sorted and deduplicated. Conservative over-approximations: every
	// reachable instruction, action body, condition, and table key is
	// included.
	Reads  []packet.FieldID
	Writes []packet.FieldID
	// UsesPktLen reports OpPktLen use; packet length then joins the
	// validation set.
	UsesPktLen bool
}

// profileScan accumulates a profile over instruction blocks.
type profileScan struct {
	cacheable bool
	reads     map[packet.FieldID]struct{}
	writes    map[packet.FieldID]struct{}
	usesLen   bool
}

func (ps *profileScan) read(fid packet.FieldID)  { ps.reads[fid] = struct{}{} }
func (ps *profileScan) write(fid packet.FieldID) { ps.writes[fid] = struct{}{} }

// block scans one lowered instruction block.
func (ps *profileScan) block(code []linstr) {
	for _, ins := range code {
		switch ins.op {
		case OpLdField, OpHasField:
			ps.read(packet.FieldID(ins.imm))
		case OpStField:
			ps.write(packet.FieldID(ins.imm))
		case lopLd2:
			ps.read(packet.FieldID(ins.imm))
			ps.read(packet.FieldID(ins.off))
		case lopFldCp:
			ps.read(packet.FieldID(ins.imm))
			ps.write(packet.FieldID(ins.off))
		case lopLdJImm:
			ps.read(packet.FieldID(ins.imm >> 32))
		case lopAluSt:
			ps.write(packet.FieldID(ins.imm))
		case OpPktLen:
			ps.usesLen = true
		case OpFlowHash:
			// FlowKey's truncated 5-tuple is the cache key itself, so two
			// packets sharing a cache entry share the hash by construction.
		case OpMapLoad, OpMapHas, OpMapStore, OpMapDelete, lopMapInc, lopMapIncR,
			OpCount, OpMeterExec, OpNow, OpRand,
			OpAddHdr, OpRmHdr, OpPunt, OpRecirc:
			// Per-flow state, clocks, randomness, header edits, and
			// non-terminal verdicts: output is not a function of the
			// validation set, or replay would skip required side effects.
			ps.cacheable = false
		}
	}
}

// cond records a condition's field reads (HasHeader conditions read only
// the header list, which the cache validates wholesale).
func (ps *profileScan) cond(c *LinkedCond) {
	if c.hasHeader != "" {
		return
	}
	ps.read(c.fid)
	if c.twoField {
		ps.read(c.otherFid)
	}
}

func sortedFields(m map[packet.FieldID]struct{}) []packet.FieldID {
	out := make([]packet.FieldID, 0, len(m))
	for fid := range m {
		out = append(out, fid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CacheProfile computes the program's static cache profile. The result
// depends only on the linked code, so callers may compute it once per
// configuration and reuse it for every packet.
func (lp *LinkedProgram) CacheProfile() CacheProfile {
	ps := &profileScan{
		cacheable: true,
		reads:     map[packet.FieldID]struct{}{},
		writes:    map[packet.FieldID]struct{}{},
	}
	ps.block(lp.code)
	for i := range lp.actions {
		// Every action is reachable: table entries select actions by
		// index or name at runtime.
		ps.block(lp.actions[i].code)
	}
	for i := range lp.conds {
		ps.cond(&lp.conds[i])
	}
	for i := range lp.tables {
		for _, fid := range lp.tables[i].keyIDs {
			ps.read(fid)
		}
	}
	return CacheProfile{
		Cacheable:  ps.cacheable,
		Reads:      sortedFields(ps.reads),
		Writes:     sortedFields(ps.writes),
		UsesPktLen: ps.usesLen,
	}
}

// TableInstances returns the table instances the program's pipeline
// applies, in apply order. The flow cache pins their generations so
// entry mutations (including bulk ReplaceAll rewrites that do not bump
// the device epoch) invalidate dependent cache entries.
func (lp *LinkedProgram) TableInstances() []*TableInstance {
	out := make([]*TableInstance, len(lp.tables))
	for i := range lp.tables {
		out[i] = lp.tables[i].ti
	}
	return out
}

// Fields returns the packet field IDs the condition reads (none for
// header-presence conditions).
func (c *LinkedCond) Fields() []packet.FieldID {
	if c.hasHeader != "" {
		return nil
	}
	if c.twoField {
		return []packet.FieldID{c.fid, c.otherFid}
	}
	return []packet.FieldID{c.fid}
}
