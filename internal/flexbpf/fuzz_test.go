package flexbpf

import (
	"math/rand"
	"testing"

	"flexnet/internal/packet"
)

// randomInstr draws an arbitrary (possibly invalid) instruction.
func randomInstr(r *rand.Rand) Instr {
	ops := []Op{
		OpNop, OpMovImm, OpMov, OpLdField, OpHasField, OpStField, OpAddHdr,
		OpRmHdr, OpLdParam, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr,
		OpXor, OpShl, OpShr, OpMin, OpMax, OpAddImm, OpSubImm, OpMulImm,
		OpAndImm, OpOrImm, OpXorImm, OpShlImm, OpShrImm, OpMapLoad, OpMapHas,
		OpMapStore, OpMapDelete, OpHash, OpFlowHash, OpNow, OpRand, OpPktLen,
		OpCount, OpMeterExec, OpJmp, OpJEq, OpJNe, OpJLt, OpJGe, OpJGt, OpJLe,
		OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm, OpJGtImm, OpJLeImm, OpDrop,
		OpForward, OpPunt, OpRecirc, OpRet,
	}
	syms := []string{"m", "c", "mt", "ipv4.dst", "tcp.flags", "meta.x", "int", "vlan", "ghost", ""}
	return Instr{
		Op:  ops[r.Intn(len(ops))],
		Rd:  Reg(r.Intn(20)), // sometimes out of range
		Rs:  Reg(r.Intn(20)),
		Rt:  Reg(r.Intn(20)),
		Imm: uint64(r.Intn(64)),
		Sym: syms[r.Intn(len(syms))],
		Off: int32(r.Intn(12) - 2), // sometimes backward/overflowing
	}
}

// TestVerifierSoundnessFuzz: any random block the verifier ACCEPTS must
// execute without runtime errors, terminate, and stay within the static
// worst-case instruction bound — the §3.1 "certify bounded execution"
// property, checked adversarially.
func TestVerifierSoundnessFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	env := newTestEnv()
	accepted := 0
	const trials = 30000
	for trial := 0; trial < trials; trial++ {
		n := 1 + r.Intn(12)
		code := make([]Instr, n)
		for i := range code {
			code[i] = randomInstr(r)
		}
		p := &Program{
			Name:    "fuzz",
			Actions: map[string]*Action{},
			Maps:    []*MapSpec{{Name: "m", Kind: MapHash, MaxEntries: 8, ValueBits: 32}},
			Counters: []*CounterSpec{
				{Name: "c", Size: 4},
			},
			Meters:   []*MeterSpec{{Name: "mt", Size: 2, CIR: 100, PIR: 200, CBS: 50, PBS: 100}},
			Pipeline: []Stmt{{Do: code}},
		}
		if err := Verify(p); err != nil {
			continue
		}
		accepted++
		pkt := packet.TCPPacket(uint64(trial), 1, 2, 3, 4, 0, 10)
		res, err := Interp{}.Run(p, pkt, env)
		if err != nil {
			t.Fatalf("verified block failed at runtime: %v\n%s", err, Disasm(code))
		}
		if res.Instrs > len(code) {
			t.Fatalf("executed %d instrs from a %d-instr block (loop?)\n%s", res.Instrs, len(code), Disasm(code))
		}
	}
	if accepted < 200 {
		t.Fatalf("fuzz accepted only %d/%d blocks — generator too hostile to exercise the interpreter", accepted, trials)
	}
	t.Logf("fuzz: %d/%d random blocks verified and executed cleanly", accepted, trials)
}

// TestVerifierDeterministicFuzz: Verify is a pure function — accepting
// or rejecting must not depend on call order or prior runs.
func TestVerifierDeterministicFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(8)
		code := make([]Instr, n)
		for i := range code {
			code[i] = randomInstr(r)
		}
		p := &Program{
			Name:     "fuzz",
			Actions:  map[string]*Action{},
			Maps:     []*MapSpec{{Name: "m", Kind: MapHash, MaxEntries: 8, ValueBits: 32}},
			Pipeline: []Stmt{{Do: code}},
		}
		e1 := Verify(p)
		e2 := Verify(p)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("verifier nondeterministic on:\n%s", Disasm(code))
		}
	}
}
