// Package flexbpf implements the FlexBPF domain-specific language from the
// FlexNet paper (§3.1): a constrained program representation that mixes
// match/action-style packet processing with eBPF-style general computation
// over logical key/value maps.
//
// A FlexBPF program consists of:
//
//   - Map specs: logical key/value state. Maps virtualize device state —
//     the same logical map may be realized as P4 registers, PoF flow
//     instructions, or Spectrum-style stateful tables on different
//     targets; the compiler picks the encoding (§3.1 "state encodings").
//   - Table specs: match/action tables with exact, LPM, or ternary keys.
//   - Actions: short, verified instruction sequences bound to tables.
//   - A control pipeline: ordered statements (table applies, conditionals,
//     inline instruction blocks).
//
// Programs are *analyzable by construction*: jumps are forward-only, so
// every program certifies bounded per-packet execution (§3.1
// "analyzable to certify bounded execution"). The Verifier enforces this
// together with register initialization and reference integrity.
//
// DESIGN.md §2 (S5) and §4 record the language design and its decisions.
package flexbpf

import (
	"fmt"
	"strings"
)

// Reg is a virtual register index. FlexBPF exposes NumRegs general
// registers r0..r15.
type Reg = uint8

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// MaxInstrs bounds the length of any single instruction block; the
// verifier rejects longer blocks. Bounded blocks plus forward-only jumps
// give a hard per-packet instruction bound.
const MaxInstrs = 4096

// MapKind selects the logical behaviour of a key/value map.
type MapKind uint8

const (
	// MapArray is a dense array indexed 0..MaxEntries-1 (register file).
	MapArray MapKind = iota
	// MapHash is a sparse hash map with insert/delete.
	MapHash
	// MapLRU is a hash map that evicts the least recently used entry
	// when full rather than failing inserts (flow caches).
	MapLRU
)

func (k MapKind) String() string {
	switch k {
	case MapArray:
		return "array"
	case MapHash:
		return "hash"
	case MapLRU:
		return "lru"
	default:
		return fmt.Sprintf("mapkind(%d)", uint8(k))
	}
}

// MapSpec declares a logical key/value map.
type MapSpec struct {
	Name       string
	Kind       MapKind
	MaxEntries int
	// ValueBits is the logical value width (≤64).
	ValueBits int
	// Shared marks maps that must remain globally consistent when the
	// program is replicated or migrated (e.g. a count-min sketch), as
	// opposed to per-instance scratch state.
	Shared bool
}

// MatchKind is how a table key field is matched.
type MatchKind uint8

const (
	// MatchExact requires equality (SRAM/hash-table realizable).
	MatchExact MatchKind = iota
	// MatchLPM is longest-prefix match (TCAM or algorithmic).
	MatchLPM
	// MatchTernary is value/mask match (TCAM).
	MatchTernary
	// MatchRange matches lo ≤ value ≤ hi (TCAM with range expansion).
	MatchRange
)

func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	case MatchRange:
		return "range"
	default:
		return fmt.Sprintf("matchkind(%d)", uint8(k))
	}
}

// NeedsTCAM reports whether the match kind requires ternary memory.
func (k MatchKind) NeedsTCAM() bool { return k != MatchExact }

// TableKey is one component of a table's match key.
type TableKey struct {
	// Field is the packet field matched ("ipv4.dst").
	Field string
	Kind  MatchKind
	// Bits is the key width; 0 means the header field's natural width.
	Bits int
}

// TableSpec declares a match/action table.
type TableSpec struct {
	Name string
	Keys []TableKey
	// Actions is the set of action names entries may invoke.
	Actions []string
	// DefaultAction runs on miss ("" = no-op).
	DefaultAction string
	// DefaultParams are bound when the default action runs.
	DefaultParams []uint64
	// Size is the maximum number of entries, used for resource sizing.
	Size int
}

// HasAction reports whether the table permits the named action.
func (t *TableSpec) HasAction(name string) bool {
	for _, a := range t.Actions {
		if a == name {
			return true
		}
	}
	return false
}

// Action is a named, verified instruction sequence. Actions receive
// per-entry parameters (action data) accessible via OpLdParam.
type Action struct {
	Name string
	// NumParams is how many action-data parameters entries must supply.
	NumParams int
	Body      []Instr
}

// Op is a FlexBPF opcode.
type Op uint8

// Opcodes. Register operands are Rd (destination), Rs, Rt (sources);
// Imm is an immediate; Sym names a map/counter/meter/field/header;
// Off is a forward jump offset in instructions (relative to the next
// instruction, so Off=0 is a no-op jump).
const (
	OpNop Op = iota
	// OpMovImm: rd = imm.
	OpMovImm
	// OpMov: rd = rs.
	OpMov
	// OpLdField: rd = pkt[Sym] (0 if field absent).
	OpLdField
	// OpHasField: rd = 1 if field Sym present, else 0.
	OpHasField
	// OpStField: pkt[Sym] = rs.
	OpStField
	// OpAddHdr: mark header Sym present.
	OpAddHdr
	// OpRmHdr: remove header Sym and its fields.
	OpRmHdr
	// OpLdParam: rd = actionParams[Imm].
	OpLdParam

	// ALU: rd = rd OP rs.
	OpAdd
	OpSub
	OpMul
	OpDiv // rd = rd / rs; rs==0 yields 0 (hardware-style saturate)
	OpMod // rs==0 yields 0
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMin
	OpMax
	// ALU immediate forms: rd = rd OP imm.
	OpAddImm
	OpSubImm
	OpMulImm
	OpAndImm
	OpOrImm
	OpXorImm
	OpShlImm
	OpShrImm

	// OpMapLoad: rd = map[Sym][rs] (0 if absent).
	OpMapLoad
	// OpMapHas: rd = 1 if key rs present in map Sym.
	OpMapHas
	// OpMapStore: map[Sym][rs] = rt.
	OpMapStore
	// OpMapDelete: delete map[Sym][rs].
	OpMapDelete

	// OpHash: rd = fnv64(rs).
	OpHash
	// OpFlowHash: rd = hash of the packet 5-tuple.
	OpFlowHash
	// OpNow: rd = current time in nanoseconds.
	OpNow
	// OpRand: rd = pseudo-random uint64.
	OpRand
	// OpPktLen: rd = packet length in bytes.
	OpPktLen

	// OpCount: counter Sym index rs += rt (use a reg holding 1 or pktlen).
	OpCount
	// OpMeterExec: rd = color of meter Sym index rs charged rt bytes
	// (0 green, 1 yellow, 2 red).
	OpMeterExec

	// Control flow (forward-only).
	OpJmp // pc += Off
	// Register-register conditionals: if rs CMP rt { pc += Off }.
	OpJEq
	OpJNe
	OpJLt
	OpJGe
	OpJGt
	OpJLe
	// Register-immediate conditionals: if rs CMP imm { pc += Off }.
	OpJEqImm
	OpJNeImm
	OpJLtImm
	OpJGeImm
	OpJGtImm
	OpJLeImm

	// Verdicts (terminate the block and usually the pipeline).
	// OpDrop drops the packet.
	OpDrop
	// OpForward forwards via egress port rs.
	OpForward
	// OpPunt sends the packet to the controller.
	OpPunt
	// OpRecirc recirculates the packet through the pipeline.
	OpRecirc
	// OpRet ends the block without a terminal verdict.
	OpRet

	opMax // sentinel
)

// Instr is a single FlexBPF instruction.
type Instr struct {
	Op  Op
	Rd  Reg
	Rs  Reg
	Rt  Reg
	Imm uint64
	Sym string
	Off int32
}

// Stmt is one node of a program's control pipeline.
type Stmt struct {
	// Exactly one of the following is set.

	// Apply applies the named table.
	Apply string
	// If is a guarded sub-pipeline.
	If *IfStmt
	// Do is an inline instruction block.
	Do []Instr
}

// IfStmt guards Then/Else sub-pipelines with a field comparison.
type IfStmt struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// CmpOp is a comparison operator for conditions.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpGe
	CmpGt
	CmpLe
)

func (c CmpOp) String() string {
	switch c {
	case CmpEq:
		return "=="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpGe:
		return ">="
	case CmpGt:
		return ">"
	case CmpLe:
		return "<="
	default:
		return fmt.Sprintf("cmp(%d)", uint8(c))
	}
}

// Cond compares a packet field against a constant or another field.
type Cond struct {
	Field string
	Op    CmpOp
	// Value is used when OtherField is empty.
	Value uint64
	// OtherField, if set, compares two fields.
	OtherField string
	// HasHeader, if set, overrides the comparison: the condition is true
	// iff the named header is present.
	HasHeader string
	// Negate inverts the result.
	Negate bool
}

// CounterSpec declares an indexed packet/byte counter.
type CounterSpec struct {
	Name string
	Size int
}

// MeterSpec declares a two-rate three-color meter array.
type MeterSpec struct {
	Name string
	Size int
	// CIR and PIR are committed/peak information rates in bytes/sec.
	CIR, PIR uint64
	// CBS and PBS are burst sizes in bytes.
	CBS, PBS uint64
}

// Program is a complete FlexBPF program unit: the atom of placement.
// Tables within one Program are co-located on a device; a logical
// datapath is an ordered sequence of Programs (see Datapath).
type Program struct {
	Name string

	Maps     []*MapSpec
	Tables   []*TableSpec
	Counters []*CounterSpec
	Meters   []*MeterSpec
	Actions  map[string]*Action

	// Pipeline is the control flow applied to each packet.
	Pipeline []Stmt

	// RequiredHeaders lists headers the program reads or writes; the
	// target device's parser must accept them.
	RequiredHeaders []string

	// Requires declares capabilities the hosting device must provide.
	Requires Capabilities

	// Owner is the tenant that owns this program ("" = infrastructure).
	Owner string
}

// Capabilities a program demands of its target (and devices advertise).
type Capabilities struct {
	// TCAM: ternary/LPM/range matching in hardware.
	TCAM bool
	// PerFlowState: stateful per-flow storage mutated at line rate.
	PerFlowState bool
	// GeneralCompute: unrestricted ALU chains (hosts/NICs/FPGAs).
	GeneralCompute bool
	// Transport: access to transport-layer events (hosts, some NICs) —
	// required by congestion-control components.
	Transport bool
}

// Satisfies reports whether capability set have covers need.
func (have Capabilities) Satisfies(need Capabilities) bool {
	if need.TCAM && !have.TCAM {
		return false
	}
	if need.PerFlowState && !have.PerFlowState {
		return false
	}
	if need.GeneralCompute && !have.GeneralCompute {
		return false
	}
	if need.Transport && !have.Transport {
		return false
	}
	return true
}

// Map returns the named map spec, or nil.
func (p *Program) Map(name string) *MapSpec {
	for _, m := range p.Maps {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Table returns the named table spec, or nil.
func (p *Program) Table(name string) *TableSpec {
	for _, t := range p.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Counter returns the named counter spec, or nil.
func (p *Program) Counter(name string) *CounterSpec {
	for _, c := range p.Counters {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Meter returns the named meter spec, or nil.
func (p *Program) Meter(name string) *MeterSpec {
	for _, m := range p.Meters {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Clone deep-copies the program. Compiler passes transform clones so the
// source program a tenant submitted is never mutated.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:            p.Name,
		Owner:           p.Owner,
		Requires:        p.Requires,
		RequiredHeaders: append([]string(nil), p.RequiredHeaders...),
		Actions:         make(map[string]*Action, len(p.Actions)),
	}
	for _, m := range p.Maps {
		mc := *m
		q.Maps = append(q.Maps, &mc)
	}
	for _, t := range p.Tables {
		tc := *t
		tc.Keys = append([]TableKey(nil), t.Keys...)
		tc.Actions = append([]string(nil), t.Actions...)
		tc.DefaultParams = append([]uint64(nil), t.DefaultParams...)
		q.Tables = append(q.Tables, &tc)
	}
	for _, c := range p.Counters {
		cc := *c
		q.Counters = append(q.Counters, &cc)
	}
	for _, m := range p.Meters {
		mc := *m
		q.Meters = append(q.Meters, &mc)
	}
	for name, a := range p.Actions {
		ac := &Action{Name: a.Name, NumParams: a.NumParams, Body: append([]Instr(nil), a.Body...)}
		q.Actions[name] = ac
	}
	q.Pipeline = cloneStmts(p.Pipeline)
	return q
}

func cloneStmts(in []Stmt) []Stmt {
	if in == nil {
		return nil
	}
	out := make([]Stmt, len(in))
	for i, s := range in {
		out[i] = Stmt{Apply: s.Apply, Do: append([]Instr(nil), s.Do...)}
		if s.If != nil {
			out[i].If = &IfStmt{
				Cond: s.If.Cond,
				Then: cloneStmts(s.If.Then),
				Else: cloneStmts(s.If.Else),
			}
		}
		if s.Do == nil {
			out[i].Do = nil
		}
	}
	return out
}

// walkStmts visits every statement in the pipeline, depth-first.
func walkStmts(stmts []Stmt, fn func(*Stmt)) {
	for i := range stmts {
		fn(&stmts[i])
		if stmts[i].If != nil {
			walkStmts(stmts[i].If.Then, fn)
			walkStmts(stmts[i].If.Else, fn)
		}
	}
}

// AppliedTables returns the names of tables applied anywhere in the
// pipeline, in first-application order.
func (p *Program) AppliedTables() []string {
	var out []string
	seen := map[string]bool{}
	walkStmts(p.Pipeline, func(s *Stmt) {
		if s.Apply != "" && !seen[s.Apply] {
			seen[s.Apply] = true
			out = append(out, s.Apply)
		}
	})
	return out
}

// TableDependencies returns ordered pairs (a, b) meaning table a is
// applied before table b on some control path. The RMT placement uses
// this to order tables across pipeline stages.
func (p *Program) TableDependencies() [][2]string {
	var pairs [][2]string
	seen := map[[2]string]bool{}
	var walk func(stmts []Stmt, before []string) []string
	walk = func(stmts []Stmt, before []string) []string {
		cur := before
		for i := range stmts {
			s := &stmts[i]
			if s.Apply != "" {
				for _, b := range cur {
					key := [2]string{b, s.Apply}
					if !seen[key] && b != s.Apply {
						seen[key] = true
						pairs = append(pairs, key)
					}
				}
				cur = append(append([]string(nil), cur...), s.Apply)
			}
			if s.If != nil {
				t := walk(s.If.Then, cur)
				e := walk(s.If.Else, cur)
				// After the if, both branches' tables precede what follows.
				merged := append(append([]string(nil), t...), e...)
				cur = merged
			}
		}
		return cur
	}
	walk(p.Pipeline, nil)
	return pairs
}

// String renders a summary of the program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s: %d maps, %d tables, %d actions, %d pipeline stmts",
		p.Name, len(p.Maps), len(p.Tables), len(p.Actions), len(p.Pipeline))
	return b.String()
}

// Datapath is a logical end-to-end datapath: an ordered chain of program
// segments. The paper's "fungible datapath" (§3.1): the compiler decides
// which physical device hosts each segment, and segments can migrate at
// runtime while keeping their logical state.
type Datapath struct {
	Name string
	// Owner is the tenant owning this datapath ("" = infrastructure).
	Owner string
	// Segments run in order over each packet of the datapath's slice.
	Segments []*Program
	// SLA constrains the compiler's placement choices.
	SLA SLA
}

// SLA captures the negotiated service level for a datapath (§3.3
// "our compiler must take performance SLA into consideration").
type SLA struct {
	// MaxLatencyNs bounds added processing latency per packet (0 = none).
	MaxLatencyNs uint64
	// MinThroughputPPS is the packet rate the placement must sustain.
	MinThroughputPPS uint64
}

// Segment returns the named segment, or nil.
func (d *Datapath) Segment(name string) *Program {
	for _, s := range d.Segments {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Clone deep-copies the datapath.
func (d *Datapath) Clone() *Datapath {
	q := &Datapath{Name: d.Name, Owner: d.Owner, SLA: d.SLA}
	for _, s := range d.Segments {
		q.Segments = append(q.Segments, s.Clone())
	}
	return q
}
