package flexbpf

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// LinkCache memoizes Link output across program instances. Linking is a
// pure function of the program's content — element declarations, action
// bodies, pipeline, required headers — everything *except* the program
// name (instances of one logical segment differ only by instance name)
// and the table-instance pointers bound at install time. So two installs
// of the same segment (replicas, re-deploys, healer reconciliation)
// can share one lowering: a hit shallow-copies the immutable linked
// form and rebinds only the per-instance table pointers, which is O(
// tables) instead of O(program).
//
// Keys are content hashes over a canonical serialization (linkKey), so
// entries never go stale: a program edit changes the key and simply
// misses. Epoch-atomic commits therefore need no invalidation hook;
// capacity is bounded and the oldest entry is evicted first.
//
// DESIGN.md §13.3 specifies the cache and its sharing-safety argument.
type LinkCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64][]*linkCacheEntry
	order   []*linkCacheEntry // insertion order, oldest first

	hits, misses, evictions uint64
}

type linkCacheEntry struct {
	hash uint64
	key  string // full canonical text; guards against hash collisions
	lp   *LinkedProgram
}

// DefaultLinkCacheSize bounds a fabric-wide link cache: comfortably
// larger than the distinct program count of any experiment while
// keeping worst-case memory trivial.
const DefaultLinkCacheSize = 1024

// NewLinkCache creates a cache holding up to capacity distinct linked
// programs (<=0 uses DefaultLinkCacheSize).
func NewLinkCache(capacity int) *LinkCache {
	if capacity <= 0 {
		capacity = DefaultLinkCacheSize
	}
	return &LinkCache{cap: capacity, entries: map[uint64][]*linkCacheEntry{}}
}

// Link returns a linked form of prog with tables bound through the
// callback, sharing the lowering with previous identical programs. The
// second result reports whether this was a cache hit.
func (lc *LinkCache) Link(prog *Program, tables func(string) *TableInstance) (*LinkedProgram, bool, error) {
	key := linkKey(prog)
	h := fnv.New64a()
	h.Write([]byte(key))
	sum := h.Sum64()

	lc.mu.Lock()
	for _, e := range lc.entries[sum] {
		if e.key == key {
			lc.hits++
			lc.mu.Unlock()
			lp, err := e.lp.rebind(prog, tables)
			if err != nil {
				// A rebind can only fail if the caller's table set does
				// not match the program (a bug upstream); fall back to a
				// fresh link so the cache never changes behavior.
				lp2, lerr := Link(prog, tables)
				return lp2, false, lerr
			}
			return lp, true, nil
		}
	}
	lc.misses++
	lc.mu.Unlock()

	lp, err := Link(prog, tables)
	if err != nil {
		return nil, false, err
	}
	lc.mu.Lock()
	// Re-check: a concurrent miss may have inserted the same key.
	dup := false
	for _, e := range lc.entries[sum] {
		if e.key == key {
			dup = true
			break
		}
	}
	if !dup {
		if len(lc.order) >= lc.cap {
			old := lc.order[0]
			lc.order = lc.order[1:]
			bucket := lc.entries[old.hash]
			for i, e := range bucket {
				if e == old {
					lc.entries[old.hash] = append(bucket[:i], bucket[i+1:]...)
					break
				}
			}
			if len(lc.entries[old.hash]) == 0 {
				delete(lc.entries, old.hash)
			}
			lc.evictions++
		}
		e := &linkCacheEntry{hash: sum, key: key, lp: lp}
		lc.entries[sum] = append(lc.entries[sum], e)
		lc.order = append(lc.order, e)
	}
	lc.mu.Unlock()
	return lp, false, nil
}

// Stats returns cumulative hit/miss/eviction counts.
func (lc *LinkCache) Stats() (hits, misses, evictions uint64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.hits, lc.misses, lc.evictions
}

// Len returns the number of cached linked programs.
func (lc *LinkCache) Len() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.order)
}

// rebind shallow-copies the linked program for a new instance: the code
// stream, conditions, actions, action index, and slot-name slices are
// immutable after linking and shared; only the per-instance table
// pointers (and the program handle, whose Name differs per instance)
// are replaced.
func (lp *LinkedProgram) rebind(prog *Program, tables func(string) *TableInstance) (*LinkedProgram, error) {
	cp := *lp
	cp.prog = prog
	if len(lp.tables) > 0 {
		cp.tables = make([]linkedTable, len(lp.tables))
		copy(cp.tables, lp.tables)
		for i := range cp.tables {
			ti := tables(cp.tables[i].name)
			if ti == nil {
				return nil, fmt.Errorf("flexbpf: rebind: no table instance %q", cp.tables[i].name)
			}
			cp.tables[i].ti = ti
		}
	}
	return &cp, nil
}

// linkKey serializes everything Link's output depends on, in
// declaration order, excluding the program name. It deliberately does
// NOT apply Fingerprint's name normalization: slot and action indexes
// are resolved by element name, so shared lowerings require exact
// element-name equality, not just structural equality.
func linkKey(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "caps %v|%v|%v|%v\n", p.Requires.TCAM, p.Requires.PerFlowState, p.Requires.GeneralCompute, p.Requires.Transport)
	fmt.Fprintf(&b, "hdrs %s\n", strings.Join(p.RequiredHeaders, ","))
	for _, m := range p.Maps {
		fmt.Fprintf(&b, "map %s %d %d %d %v\n", m.Name, m.Kind, m.MaxEntries, m.ValueBits, m.Shared)
	}
	for _, c := range p.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", c.Name, c.Size)
	}
	for _, m := range p.Meters {
		fmt.Fprintf(&b, "meter %s %d\n", m.Name, m.Size)
	}
	for _, t := range p.Tables {
		fmt.Fprintf(&b, "table %s size=%d", t.Name, t.Size)
		for _, k := range t.Keys {
			fmt.Fprintf(&b, " %s:%d:%d", k.Field, k.Kind, k.Bits)
		}
		fmt.Fprintf(&b, " acts=%s default=%s", strings.Join(t.Actions, ","), t.DefaultAction)
		for _, dp := range t.DefaultParams {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(dp, 10))
		}
		b.WriteByte('\n')
	}
	names := make([]string, 0, len(p.Actions))
	for n := range p.Actions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := p.Actions[n]
		fmt.Fprintf(&b, "action %s/%d:\n%s", a.Name, a.NumParams, Disasm(a.Body))
	}
	b.WriteString("pipeline:\n")
	linkKeyStmts(&b, p.Pipeline)
	return b.String()
}

func linkKeyStmts(b *strings.Builder, stmts []Stmt) {
	for _, s := range stmts {
		switch {
		case s.Apply != "":
			fmt.Fprintf(b, "apply %s\n", s.Apply)
		case s.If != nil:
			fmt.Fprintf(b, "if %s\n", condString(s.If.Cond))
			linkKeyStmts(b, s.If.Then)
			if len(s.If.Else) > 0 {
				b.WriteString("else\n")
				linkKeyStmts(b, s.If.Else)
			}
		case s.Do != nil:
			fmt.Fprintf(b, "do:\n%s", Disasm(s.Do))
		}
	}
}
