package flexbpf

import (
	"fmt"

	"flexnet/internal/packet"
)

// Env is the execution environment a device provides to a running
// program: access to the program's stateful objects and to device
// services. Implementations live in internal/dataplane.
type Env interface {
	// MapLoad returns the value at key in the named map.
	MapLoad(mapName string, key uint64) (uint64, bool)
	// MapStore writes key→val. It may fail when a bounded map is full.
	MapStore(mapName string, key, val uint64) error
	// MapDelete removes key. Deleting an absent key is a no-op.
	MapDelete(mapName string, key uint64)
	// CounterAdd adds delta to counter[idx].
	CounterAdd(counter string, idx, delta uint64)
	// MeterExec charges bytes to meter[idx] and returns the color
	// (0 green, 1 yellow, 2 red).
	MeterExec(meter string, idx, bytes uint64) uint64
	// TableLookup resolves a table application.
	TableLookup(table string, keys []uint64) (action string, params []uint64, hit bool)
	// Now returns current time in nanoseconds of simulation time.
	Now() uint64
	// Rand returns a pseudo-random value from the device's seeded source.
	Rand() uint64
}

// ExecResult summarizes one packet's trip through a program.
type ExecResult struct {
	Verdict packet.Verdict
	// Instrs is the number of instructions executed.
	Instrs int
	// Lookups is the number of table lookups performed.
	Lookups int
}

// ErrVerifyFirst is wrapped by execution errors caused by conditions the
// verifier would have rejected; seeing it at runtime means an unverified
// program was installed.
type execError struct {
	prog string
	pc   int
	msg  string
}

func (e *execError) Error() string {
	return fmt.Sprintf("flexbpf: program %s pc=%d: %s", e.prog, e.pc, e.msg)
}

// Interp executes FlexBPF programs. It is stateless; all mutable state
// lives in the Env, so one Interp may be shared.
type Interp struct{}

// Run executes prog over pkt in env and returns the result. Programs are
// expected to be verified; Run still guards against runaway execution
// with a hard instruction budget as defense in depth.
func (in Interp) Run(prog *Program, pkt *packet.Packet, env Env) (ExecResult, error) {
	res := ExecResult{Verdict: packet.VerdictContinue}
	err := in.runStmts(prog, prog.Pipeline, pkt, env, &res)
	return res, err
}

func (in Interp) runStmts(prog *Program, stmts []Stmt, pkt *packet.Packet, env Env, res *ExecResult) error {
	for i := range stmts {
		s := &stmts[i]
		switch {
		case s.Apply != "":
			if err := in.applyTable(prog, s.Apply, pkt, env, res); err != nil {
				return err
			}
		case s.If != nil:
			branch := s.If.Else
			if evalCond(&s.If.Cond, pkt) {
				branch = s.If.Then
			}
			if err := in.runStmts(prog, branch, pkt, env, res); err != nil {
				return err
			}
		case s.Do != nil:
			if err := in.runBlock(prog, s.Do, nil, pkt, env, res); err != nil {
				return err
			}
		}
		if res.Verdict != packet.VerdictContinue {
			return nil
		}
	}
	return nil
}

func evalCond(c *Cond, pkt *packet.Packet) bool {
	var r bool
	if c.HasHeader != "" {
		r = pkt.Has(c.HasHeader)
	} else {
		lhs := pkt.Field(c.Field)
		rhs := c.Value
		if c.OtherField != "" {
			rhs = pkt.Field(c.OtherField)
		}
		switch c.Op {
		case CmpEq:
			r = lhs == rhs
		case CmpNe:
			r = lhs != rhs
		case CmpLt:
			r = lhs < rhs
		case CmpGe:
			r = lhs >= rhs
		case CmpGt:
			r = lhs > rhs
		case CmpLe:
			r = lhs <= rhs
		}
	}
	if c.Negate {
		r = !r
	}
	return r
}

func (in Interp) applyTable(prog *Program, name string, pkt *packet.Packet, env Env, res *ExecResult) error {
	spec := prog.Table(name)
	if spec == nil {
		return &execError{prog.Name, -1, fmt.Sprintf("apply of unknown table %q", name)}
	}
	keys := make([]uint64, len(spec.Keys))
	for i, k := range spec.Keys {
		keys[i] = pkt.Field(k.Field)
	}
	res.Lookups++
	actName, params, _ := env.TableLookup(name, keys)
	if actName == "" {
		return nil
	}
	act, ok := prog.Actions[actName]
	if !ok {
		return &execError{prog.Name, -1, fmt.Sprintf("table %q selected unknown action %q", name, actName)}
	}
	return in.runBlock(prog, act.Body, params, pkt, env, res)
}

// runBlock executes one instruction block. params are action data
// (nil for inline Do blocks).
func (in Interp) runBlock(prog *Program, code []Instr, params []uint64, pkt *packet.Packet, env Env, res *ExecResult) error {
	var regs [NumRegs]uint64
	pc := 0
	for pc < len(code) {
		if res.Instrs >= MaxInstrs*4 {
			return &execError{prog.Name, pc, "instruction budget exhausted (unverified program?)"}
		}
		ins := &code[pc]
		res.Instrs++
		pc++
		switch ins.Op {
		case OpNop:
		case OpMovImm:
			regs[ins.Rd] = ins.Imm
		case OpMov:
			regs[ins.Rd] = regs[ins.Rs]
		case OpLdField:
			regs[ins.Rd] = pkt.Field(ins.Sym)
		case OpHasField:
			if _, ok := pkt.FieldOK(ins.Sym); ok {
				regs[ins.Rd] = 1
			} else {
				regs[ins.Rd] = 0
			}
		case OpStField:
			pkt.SetField(ins.Sym, regs[ins.Rs])
		case OpAddHdr:
			pkt.AddHeader(ins.Sym)
		case OpRmHdr:
			pkt.RemoveHeader(ins.Sym)
		case OpLdParam:
			if int(ins.Imm) < len(params) {
				regs[ins.Rd] = params[ins.Imm]
			} else {
				regs[ins.Rd] = 0
			}
		case OpAdd:
			regs[ins.Rd] += regs[ins.Rs]
		case OpSub:
			regs[ins.Rd] -= regs[ins.Rs]
		case OpMul:
			regs[ins.Rd] *= regs[ins.Rs]
		case OpDiv:
			if regs[ins.Rs] == 0 {
				regs[ins.Rd] = 0
			} else {
				regs[ins.Rd] /= regs[ins.Rs]
			}
		case OpMod:
			if regs[ins.Rs] == 0 {
				regs[ins.Rd] = 0
			} else {
				regs[ins.Rd] %= regs[ins.Rs]
			}
		case OpAnd:
			regs[ins.Rd] &= regs[ins.Rs]
		case OpOr:
			regs[ins.Rd] |= regs[ins.Rs]
		case OpXor:
			regs[ins.Rd] ^= regs[ins.Rs]
		case OpShl:
			regs[ins.Rd] <<= regs[ins.Rs] & 63
		case OpShr:
			regs[ins.Rd] >>= regs[ins.Rs] & 63
		case OpMin:
			if regs[ins.Rs] < regs[ins.Rd] {
				regs[ins.Rd] = regs[ins.Rs]
			}
		case OpMax:
			if regs[ins.Rs] > regs[ins.Rd] {
				regs[ins.Rd] = regs[ins.Rs]
			}
		case OpAddImm:
			regs[ins.Rd] += ins.Imm
		case OpSubImm:
			regs[ins.Rd] -= ins.Imm
		case OpMulImm:
			regs[ins.Rd] *= ins.Imm
		case OpAndImm:
			regs[ins.Rd] &= ins.Imm
		case OpOrImm:
			regs[ins.Rd] |= ins.Imm
		case OpXorImm:
			regs[ins.Rd] ^= ins.Imm
		case OpShlImm:
			regs[ins.Rd] <<= ins.Imm & 63
		case OpShrImm:
			regs[ins.Rd] >>= ins.Imm & 63
		case OpMapLoad:
			v, _ := env.MapLoad(ins.Sym, regs[ins.Rs])
			regs[ins.Rd] = v
		case OpMapHas:
			if _, ok := env.MapLoad(ins.Sym, regs[ins.Rs]); ok {
				regs[ins.Rd] = 1
			} else {
				regs[ins.Rd] = 0
			}
		case OpMapStore:
			// Store failures (map full) are silent at the data plane,
			// matching hardware insert-miss semantics; programs that care
			// use OpMapHas to verify.
			_ = env.MapStore(ins.Sym, regs[ins.Rs], regs[ins.Rt])
		case OpMapDelete:
			env.MapDelete(ins.Sym, regs[ins.Rs])
		case OpHash:
			regs[ins.Rd] = fnv64(regs[ins.Rs])
		case OpFlowHash:
			regs[ins.Rd] = pkt.FlowKey().Hash()
		case OpNow:
			regs[ins.Rd] = env.Now()
		case OpRand:
			regs[ins.Rd] = env.Rand()
		case OpPktLen:
			regs[ins.Rd] = uint64(pkt.Len())
		case OpCount:
			env.CounterAdd(ins.Sym, regs[ins.Rs], regs[ins.Rt])
		case OpMeterExec:
			regs[ins.Rd] = env.MeterExec(ins.Sym, regs[ins.Rs], regs[ins.Rt])
		case OpJmp:
			pc += int(ins.Off)
		case OpJEq, OpJNe, OpJLt, OpJGe, OpJGt, OpJLe:
			if cmpRegs(ins.Op, regs[ins.Rs], regs[ins.Rt]) {
				pc += int(ins.Off)
			}
		case OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm, OpJGtImm, OpJLeImm:
			if cmpImm(ins.Op, regs[ins.Rs], ins.Imm) {
				pc += int(ins.Off)
			}
		case OpDrop:
			res.Verdict = packet.VerdictDrop
			return nil
		case OpForward:
			pkt.EgressPort = int(regs[ins.Rs])
			res.Verdict = packet.VerdictForward
			return nil
		case OpPunt:
			res.Verdict = packet.VerdictToController
			return nil
		case OpRecirc:
			res.Verdict = packet.VerdictRecirculate
			return nil
		case OpRet:
			return nil
		default:
			return &execError{prog.Name, pc - 1, fmt.Sprintf("illegal opcode %d", ins.Op)}
		}
		if pc < 0 || pc > len(code) {
			return &execError{prog.Name, pc, "jump out of bounds"}
		}
	}
	return nil
}

func cmpRegs(op Op, a, b uint64) bool {
	switch op {
	case OpJEq:
		return a == b
	case OpJNe:
		return a != b
	case OpJLt:
		return a < b
	case OpJGe:
		return a >= b
	case OpJGt:
		return a > b
	case OpJLe:
		return a <= b
	}
	return false
}

func cmpImm(op Op, a, b uint64) bool {
	switch op {
	case OpJEqImm:
		return a == b
	case OpJNeImm:
		return a != b
	case OpJLtImm:
		return a < b
	case OpJGeImm:
		return a >= b
	case OpJGtImm:
		return a > b
	case OpJLeImm:
		return a <= b
	}
	return false
}

func fnv64(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}
