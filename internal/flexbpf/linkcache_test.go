package flexbpf

import (
	"fmt"
	"testing"

	"flexnet/internal/packet"
)

// cacheProg builds an ACL-shaped program whose content is identical
// across instance names (only NewProgram's name differs), so two
// instances of the same logical segment share one linkKey. entries
// parameterizes the flow map size so tests can force content misses.
func cacheProg(t testing.TB, name string, entries int) *Program {
	t.Helper()
	allow := NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	deny := NewAsm().Drop().MustBuild()
	count := NewAsm().
		FlowHash(0).
		MapLoad(1, "flows", 0).
		AddImm(1, 1).
		MapStore("flows", 0, 1).
		Ret().
		MustBuild()
	p, err := NewProgram(name).
		HashMap("flows", entries, 64).
		Action("allow", 1, allow).
		Action("deny", 0, deny).
		Table(&TableSpec{
			Name: "acl",
			Keys: []TableKey{
				{Field: "ipv4.src", Kind: MatchTernary, Bits: 32},
				{Field: "tcp.dport", Kind: MatchExact, Bits: 16},
			},
			Actions:       []string{"allow", "deny"},
			DefaultAction: "deny",
			Size:          64,
		}).
		Do(count).
		Apply("acl").
		Build()
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return p
}

// cacheLink links prog through lc against a fresh table set and reports
// whether the cache hit.
func cacheLink(t *testing.T, lc *LinkCache, prog *Program) (*LinkedProgram, map[string]*TableInstance, bool) {
	t.Helper()
	tables := map[string]*TableInstance{}
	for _, spec := range prog.Tables {
		tables[spec.Name] = NewTableInstance(spec)
	}
	lp, hit, err := lc.Link(prog, func(name string) *TableInstance { return tables[name] })
	if err != nil {
		t.Fatalf("cache link %s: %v", prog.Name, err)
	}
	return lp, tables, hit
}

func TestLinkCacheHitAcrossInstanceNames(t *testing.T) {
	lc := NewLinkCache(0)
	lpA, tabA, hit := cacheLink(t, lc, cacheProg(t, "seg@s1", 1024))
	if hit {
		t.Fatal("first link reported a hit on an empty cache")
	}
	lpB, tabB, hit := cacheLink(t, lc, cacheProg(t, "seg@s2", 1024))
	if !hit {
		t.Fatal("second link of identical content missed")
	}
	hits, misses, _ := lc.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// The immutable lowering is shared...
	if len(lpA.code) == 0 || &lpA.code[0] != &lpB.code[0] {
		t.Fatal("hit did not share the linked code stream")
	}
	// ...but the per-instance bindings are not: each linked program must
	// point at its own caller's table instances and source program.
	if lpB.Program() != nil && lpB.Program().Name != "seg@s2" {
		t.Fatalf("hit kept the cached program handle %q", lpB.Program().Name)
	}
	for _, lt := range lpB.tables {
		if lt.ti != tabB[lt.name] {
			t.Fatalf("hit bound table %q to a foreign instance", lt.name)
		}
		if lt.ti == tabA[lt.name] {
			t.Fatalf("hit shared table %q with the first instance", lt.name)
		}
	}
}

func TestLinkCacheHitIsEquivalentToFreshLink(t *testing.T) {
	lc := NewLinkCache(0)
	entry := &TableEntry{
		Priority: 10,
		Match: []MatchValue{
			{Value: uint64(packet.IP(10, 0, 0, 0)), Mask: 0xFF000000},
			{Value: 80},
		},
		Action: "allow",
		Params: []uint64{3},
	}
	mkPkt := func(i uint64) *packet.Packet {
		src := packet.IP(byte(9+i%3), 1, 2, byte(i))
		return packet.TCPPacket(i, src, packet.IP(192, 168, 0, 1), uint16(1000+i), uint16(80+i%2*363), 0, int(i%512))
	}

	// Warm the cache, then run a cache-hit link and a fresh Link over the
	// same packet stream: verdicts, packet bytes, and state must match.
	cacheLink(t, lc, cacheProg(t, "warm", 1024))
	progHit := cacheProg(t, "hot", 1024)
	lpHit, envHit := func() (*LinkedProgram, *linkedTestEnv) {
		env := newTestEnv()
		for _, spec := range progHit.Tables {
			env.tables[spec.Name] = NewTableInstance(spec)
		}
		lp, hit, err := lc.Link(progHit, func(name string) *TableInstance { return env.tables[name] })
		if err != nil {
			t.Fatalf("cached link: %v", err)
		}
		if !hit {
			t.Fatal("expected a cache hit after warming")
		}
		for _, ti := range env.tables {
			ti.SetActionResolver(lp.ActionIndex)
		}
		return lp, &linkedTestEnv{env, lp}
	}()
	lpFresh, envFresh := linkForTest(t, cacheProg(t, "hot", 1024), nil)
	for _, env := range []*linkedTestEnv{envHit, envFresh} {
		ec := *entry
		ec.Match = append([]MatchValue(nil), entry.Match...)
		if err := env.tables["acl"].Insert(&ec); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}

	ctx := NewExecContext()
	for i := uint64(0); i < 64; i++ {
		pa, pb := mkPkt(i), mkPkt(i)
		ra, errA := lpHit.Run(pa, envHit, ctx)
		rb, errB := lpFresh.Run(pb, envFresh, ctx)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("pkt %d: error divergence: cached=%v fresh=%v", i, errA, errB)
		}
		if ra != rb {
			t.Fatalf("pkt %d: result divergence: cached=%+v fresh=%+v", i, ra, rb)
		}
		if pa.String() != pb.String() {
			t.Fatalf("pkt %d: packet divergence:\ncached: %s\nfresh:  %s", i, pa, pb)
		}
	}
}

func TestLinkCacheMissesOnContentChange(t *testing.T) {
	lc := NewLinkCache(0)
	cacheLink(t, lc, cacheProg(t, "seg", 1024))
	// Same structure, different map capacity: the canonical key differs,
	// so the cache must treat it as a distinct program (this is what
	// makes epoch-atomic program swaps safe with no invalidation hook).
	if _, _, hit := cacheLink(t, lc, cacheProg(t, "seg", 2048)); hit {
		t.Fatal("resized map hit the stale entry")
	}
	if lc.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", lc.Len())
	}
	// And the original content still hits.
	if _, _, hit := cacheLink(t, lc, cacheProg(t, "seg", 1024)); !hit {
		t.Fatal("original content no longer hits")
	}
}

func TestLinkCacheEvictsOldestFirst(t *testing.T) {
	lc := NewLinkCache(2)
	for i := 0; i < 3; i++ {
		cacheLink(t, lc, cacheProg(t, "seg", 1024<<i))
	}
	if _, _, ev := lc.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if lc.Len() != 2 {
		t.Fatalf("cache holds %d entries, want cap 2", lc.Len())
	}
	// The oldest entry (1024) was evicted; the two newest survive.
	if _, _, hit := cacheLink(t, lc, cacheProg(t, "seg", 2048)); !hit {
		t.Fatal("second-oldest entry was evicted out of order")
	}
	if _, _, hit := cacheLink(t, lc, cacheProg(t, "seg", 4096)); !hit {
		t.Fatal("newest entry was evicted")
	}
	if _, _, hit := cacheLink(t, lc, cacheProg(t, "seg", 1024)); hit {
		t.Fatal("oldest entry survived past capacity")
	}
}

func TestLinkCacheRebindMissingTableErrors(t *testing.T) {
	lc := NewLinkCache(0)
	cacheLink(t, lc, cacheProg(t, "seg", 1024))
	// A hit whose caller cannot supply the program's tables must fail
	// like a fresh Link would, not serve a half-bound program.
	_, hit, err := lc.Link(cacheProg(t, "seg2", 1024), func(string) *TableInstance { return nil })
	if err == nil {
		t.Fatal("rebind with missing tables succeeded")
	}
	if hit {
		t.Fatal("failed rebind still reported a hit")
	}
}

func TestLinkCacheManyInstancesOneLowering(t *testing.T) {
	lc := NewLinkCache(0)
	var first *LinkedProgram
	for i := 0; i < 16; i++ {
		lp, _, hit := cacheLink(t, lc, cacheProg(t, fmt.Sprintf("seg@s%d", i), 1024))
		if i == 0 {
			first = lp
			continue
		}
		if !hit {
			t.Fatalf("instance %d missed", i)
		}
		if &lp.code[0] != &first.code[0] {
			t.Fatalf("instance %d relowered the program", i)
		}
	}
	if hits, misses, _ := lc.Stats(); hits != 15 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 15/1", hits, misses)
	}
	if lc.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", lc.Len())
	}
}
