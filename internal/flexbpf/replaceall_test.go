package flexbpf

import (
	"sync"
	"sync/atomic"
	"testing"
)

func lpmTable(size int) *TableInstance {
	ti := NewTableInstance(&TableSpec{
		Name:    "routes",
		Keys:    []TableKey{{Field: "ipv4.dst", Kind: MatchLPM, Bits: 32}},
		Actions: []string{"route"},
		Size:    size,
	})
	ti.SetActionResolver(func(name string) int32 {
		if name == "route" {
			return 0
		}
		return -1
	})
	return ti
}

// TestReplaceAllMatchesInsert checks ReplaceAll publishes exactly the
// state a sequence of Inserts would, including match ordering.
func TestReplaceAllMatchesInsert(t *testing.T) {
	mk := func(i int, prefix int) *TableEntry {
		return LPMEntry("route", []uint64{uint64(i)}, uint64(i)<<8, prefix)
	}
	a, b := lpmTable(64), lpmTable(64)
	var batch []*TableEntry
	for i := 0; i < 10; i++ {
		e := mk(i, 16+(i%3)*8)
		if err := a.Insert(e); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, e)
	}
	if err := b.ReplaceAll(batch); err != nil {
		t.Fatal(err)
	}
	ae, be := a.Entries(), b.Entries()
	if len(ae) != len(be) {
		t.Fatalf("lengths differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i].Match[0] != be[i].Match[0] || ae[i].Params[0] != be[i].Params[0] {
			t.Fatalf("entry %d differs: insert %+v, replaceall %+v", i, ae[i], be[i])
		}
	}
	// Lookups hit the resolved action.
	if _, _, hit := b.Lookup([]uint64{3 << 8}); !hit {
		t.Fatal("lookup missed after ReplaceAll")
	}
}

// TestReplaceAllValidation checks size, arity, action, and exact-dup
// errors, and that a failed call leaves the previous contents intact.
func TestReplaceAllValidation(t *testing.T) {
	ti := lpmTable(2)
	good := []*TableEntry{LPMEntry("route", []uint64{1}, 0x0a000001, 32)}
	if err := ti.ReplaceAll(good); err != nil {
		t.Fatal(err)
	}
	cases := [][]*TableEntry{
		{ // over size
			LPMEntry("route", []uint64{1}, 1, 32),
			LPMEntry("route", []uint64{2}, 2, 32),
			LPMEntry("route", []uint64{3}, 3, 32),
		},
		{ // wrong arity
			{Action: "route", Match: []MatchValue{{Value: 1}, {Value: 2}}},
		},
		{ // unknown action
			LPMEntry("nosuch", []uint64{1}, 1, 32),
		},
	}
	for i, bad := range cases {
		if err := ti.ReplaceAll(bad); err == nil {
			t.Fatalf("case %d: ReplaceAll succeeded, want error", i)
		}
		if got := ti.Len(); got != 1 {
			t.Fatalf("case %d: failed ReplaceAll mutated the table (len %d)", i, got)
		}
	}

	exact := NewTableInstance(&TableSpec{
		Name: "ex",
		Keys: []TableKey{{Field: "ipv4.dst", Kind: MatchExact, Bits: 32}},
		Size: 8,
	})
	dup := []*TableEntry{
		ExactEntry("", []uint64{1}, 7),
		ExactEntry("", []uint64{2}, 7),
	}
	if err := exact.ReplaceAll(dup); err == nil {
		t.Fatal("duplicate exact entries accepted")
	}
	if exact.Len() != 0 {
		t.Fatal("failed exact ReplaceAll left entries behind")
	}
	// Exact replace that is valid builds a working index.
	if err := exact.ReplaceAll([]*TableEntry{
		ExactEntry("", []uint64{1}, 7),
		ExactEntry("", []uint64{2}, 9),
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, hit := exact.Lookup([]uint64{9}); !hit {
		t.Fatal("exact lookup missed after ReplaceAll")
	}
}

// TestReplaceAllNoEmptyWindow hammers lookups of a key present in every
// generation while a writer replaces the whole table: the old
// clear-then-reinsert path exposed an empty table mid-rewrite; the
// atomic snapshot store must never miss.
func TestReplaceAllNoEmptyWindow(t *testing.T) {
	ti := lpmTable(64)
	stable := LPMEntry("route", []uint64{99}, 0x0a00ff00, 32)
	if err := ti.ReplaceAll([]*TableEntry{stable}); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var misses atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, _, hit := ti.Lookup([]uint64{0x0a00ff00}); !hit {
					misses.Add(1)
				}
			}
		}()
	}
	for gen := 0; gen < 2000; gen++ {
		batch := []*TableEntry{stable}
		for i := 0; i < gen%16; i++ {
			batch = append(batch, LPMEntry("route", []uint64{uint64(i)}, uint64(i)<<8, 32))
		}
		if err := ti.ReplaceAll(batch); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := misses.Load(); n != 0 {
		t.Fatalf("stable key missed %d times during replaces — non-atomic publish", n)
	}
}
