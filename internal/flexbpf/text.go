package flexbpf

import (
	"fmt"
	"sort"
	"strings"
)

var opNames = map[Op]string{
	OpNop: "nop", OpMovImm: "movi", OpMov: "mov",
	OpLdField: "ldf", OpHasField: "hasf", OpStField: "stf",
	OpAddHdr: "addh", OpRmHdr: "rmh", OpLdParam: "ldp",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpMin: "min", OpMax: "max",
	OpAddImm: "addi", OpSubImm: "subi", OpMulImm: "muli",
	OpAndImm: "andi", OpOrImm: "ori", OpXorImm: "xori",
	OpShlImm: "shli", OpShrImm: "shri",
	OpMapLoad: "mld", OpMapHas: "mhas", OpMapStore: "mst", OpMapDelete: "mdel",
	OpHash: "hash", OpFlowHash: "fhash", OpNow: "now", OpRand: "rand", OpPktLen: "plen",
	OpCount: "cnt", OpMeterExec: "mtr",
	OpJmp: "jmp", OpJEq: "jeq", OpJNe: "jne", OpJLt: "jlt", OpJGe: "jge", OpJGt: "jgt", OpJLe: "jle",
	OpJEqImm: "jeqi", OpJNeImm: "jnei", OpJLtImm: "jlti", OpJGeImm: "jgei", OpJGtImm: "jgti", OpJLeImm: "jlei",
	OpDrop: "drop", OpForward: "fwd", OpPunt: "punt", OpRecirc: "recirc", OpRet: "ret",
}

// OpName returns the assembly mnemonic of op.
func OpName(op Op) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// String disassembles one instruction.
func (i Instr) String() string {
	cls := opClasses[i.Op]
	parts := []string{OpName(i.Op)}
	if cls.writesRd || cls.readsRd {
		parts = append(parts, fmt.Sprintf("r%d", i.Rd))
	}
	if cls.readsRs {
		parts = append(parts, fmt.Sprintf("r%d", i.Rs))
	}
	if cls.readsRt {
		parts = append(parts, fmt.Sprintf("r%d", i.Rt))
	}
	if i.Sym != "" {
		parts = append(parts, i.Sym)
	}
	switch i.Op {
	case OpMovImm, OpLdParam, OpAddImm, OpSubImm, OpMulImm, OpAndImm, OpOrImm,
		OpXorImm, OpShlImm, OpShrImm, OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm,
		OpJGtImm, OpJLeImm:
		parts = append(parts, fmt.Sprintf("#%d", i.Imm))
	}
	if cls.jump {
		parts = append(parts, fmt.Sprintf("+%d", i.Off))
	}
	return strings.Join(parts, " ")
}

// Disasm renders an instruction block, one instruction per line with
// program counters.
func Disasm(code []Instr) string {
	var b strings.Builder
	for pc, ins := range code {
		fmt.Fprintf(&b, "%4d: %s\n", pc, ins.String())
	}
	return b.String()
}

// Dump renders a full program listing: declarations, actions, pipeline.
func Dump(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s", p.Name)
	if p.Owner != "" {
		fmt.Fprintf(&b, " (tenant %s)", p.Owner)
	}
	b.WriteString("\n")
	for _, m := range p.Maps {
		shared := ""
		if m.Shared {
			shared = " shared"
		}
		fmt.Fprintf(&b, "  map %s %s[%d] value:%db%s\n", m.Name, m.Kind, m.MaxEntries, m.ValueBits, shared)
	}
	for _, c := range p.Counters {
		fmt.Fprintf(&b, "  counter %s[%d]\n", c.Name, c.Size)
	}
	for _, m := range p.Meters {
		fmt.Fprintf(&b, "  meter %s[%d] cir=%d pir=%d\n", m.Name, m.Size, m.CIR, m.PIR)
	}
	// Stable action order: table order first, then leftovers sorted.
	for _, t := range p.Tables {
		keys := make([]string, len(t.Keys))
		for i, k := range t.Keys {
			keys[i] = fmt.Sprintf("%s:%s", k.Field, k.Kind)
		}
		fmt.Fprintf(&b, "  table %s [%s] size=%d actions=%s default=%s\n",
			t.Name, strings.Join(keys, ","), t.Size, strings.Join(t.Actions, ","), t.DefaultAction)
	}
	names := make([]string, 0, len(p.Actions))
	for n := range p.Actions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := p.Actions[n]
		fmt.Fprintf(&b, "  action %s(%d params):\n", a.Name, a.NumParams)
		for pc, ins := range a.Body {
			fmt.Fprintf(&b, "    %4d: %s\n", pc, ins.String())
		}
	}
	b.WriteString("  pipeline:\n")
	dumpStmts(&b, p.Pipeline, "    ")
	return b.String()
}

func dumpStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		switch {
		case s.Apply != "":
			fmt.Fprintf(b, "%sapply %s\n", indent, s.Apply)
		case s.If != nil:
			fmt.Fprintf(b, "%sif %s\n", indent, condString(s.If.Cond))
			dumpStmts(b, s.If.Then, indent+"  ")
			if len(s.If.Else) > 0 {
				fmt.Fprintf(b, "%selse\n", indent)
				dumpStmts(b, s.If.Else, indent+"  ")
			}
		case s.Do != nil:
			fmt.Fprintf(b, "%sdo {%d instrs}\n", indent, len(s.Do))
		}
	}
}

func condString(c Cond) string {
	neg := ""
	if c.Negate {
		neg = "!"
	}
	if c.HasHeader != "" {
		return fmt.Sprintf("%shas(%s)", neg, c.HasHeader)
	}
	rhs := fmt.Sprintf("%d", c.Value)
	if c.OtherField != "" {
		rhs = c.OtherField
	}
	return fmt.Sprintf("%s%s %s %s", neg, c.Field, c.Op, rhs)
}
