package flexbpf

import "flexnet/internal/packet"

// This file implements batched execution: amortizing per-packet fixed
// costs (table snapshot loads, hit/miss statistic flushes) across a
// batch of packets that are processed back-to-back on one device, with
// no configuration or table mutation in between. The sharded simulator
// engine guarantees exactly that window — table and config writes happen
// only on the event loop, never during a shard's compute run — so a
// batch-cached snapshot is observably identical to re-loading it per
// packet. See DESIGN.md §12.

// BatchState caches per-table copy-on-write snapshots and buffers
// hit/miss tallies for the duration of one execution batch. It is owned
// by a single goroutine (the worker running the device's shard group);
// Flush must be called at batch end to publish the buffered statistics
// and release the snapshots. The zero value is ready to use.
type BatchState struct {
	tabs []batchTab
}

// batchTab is one table's batch-cached snapshot plus local tallies.
type batchTab struct {
	ti           *TableInstance
	st           *tableState
	hits, misses uint64
}

// lookup matches keys against ti's batch-cached snapshot, loading it on
// first use. Matching and result are identical to TableInstance.
// LookupEntry; only the statistics flush is deferred.
func (bs *BatchState) lookup(ti *TableInstance, keys []uint64) (*TableEntry, bool) {
	var bt *batchTab
	for i := range bs.tabs {
		if bs.tabs[i].ti == ti {
			bt = &bs.tabs[i]
			break
		}
	}
	if bt == nil {
		bs.tabs = append(bs.tabs, batchTab{ti: ti, st: ti.load()})
		bt = &bs.tabs[len(bs.tabs)-1]
	}
	e, ok := ti.lookupIn(bt.st, keys)
	if ok {
		bt.hits++
	} else {
		bt.misses++
	}
	return e, ok
}

// Flush publishes the buffered hit/miss tallies to their tables and
// drops the cached snapshots. After Flush the BatchState is ready for
// the next batch.
func (bs *BatchState) Flush() {
	for i := range bs.tabs {
		bt := &bs.tabs[i]
		if bt.hits != 0 {
			bt.ti.hits.Add(bt.hits)
		}
		if bt.misses != 0 {
			bt.ti.misses.Add(bt.misses)
		}
		bs.tabs[i] = batchTab{}
	}
	bs.tabs = bs.tabs[:0]
}

// RunWith is Run with an optional BatchState: when bs is non-nil, table
// applies match against batch-cached snapshots and buffer their hit/miss
// statistics in bs instead of flushing them per lookup. Verdicts,
// packet effects, and Instrs/Lookups counts are identical to Run.
func (lp *LinkedProgram) RunWith(pkt *packet.Packet, env LinkedEnv, ctx *ExecContext, bs *BatchState) (ExecResult, error) {
	res := ExecResult{Verdict: packet.VerdictContinue}
	err := lp.exec(lp.code, nil, pkt, env, ctx, bs, &res)
	return res, err
}

// RunBatch executes the linked program over a slice of packets in strict
// slice order, sharing one BatchState across the whole run so table
// snapshots are loaded once and statistics flushed once. ctxs supplies
// the execution contexts: either one context reused for every packet, or
// one per packet. out must have len(pkts) slots; out[i] receives packet
// i's result. Because packets run in order against the same environment,
// the observable effects (packet mutations, map/counter state, verdicts,
// Instrs/Lookups) are exactly those of len(pkts) sequential Run calls.
// Execution stops at the first program error, which is returned.
func (lp *LinkedProgram) RunBatch(pkts []*packet.Packet, env LinkedEnv, ctxs []*ExecContext, out []ExecResult) error {
	if len(out) < len(pkts) {
		panic("flexbpf: RunBatch result slice shorter than packet slice")
	}
	if len(ctxs) == 0 {
		panic("flexbpf: RunBatch needs at least one ExecContext")
	}
	var bs BatchState
	defer bs.Flush()
	for i, pkt := range pkts {
		ctx := ctxs[0]
		if len(ctxs) > i {
			ctx = ctxs[i]
		}
		res, err := lp.RunWith(pkt, env, ctx, &bs)
		out[i] = res
		if err != nil {
			return err
		}
	}
	return nil
}
