package flexbpf

import "fmt"

// Demand quantifies the device resources a program element needs. It is
// the currency of the FlexNet compiler (§3.3): placement fits Demands
// into device Capacity, and fungibility means reclaiming Demand from
// removed programs for new ones.
type Demand struct {
	// SRAMBits is exact-match and register memory.
	SRAMBits int
	// TCAMBits is ternary/LPM/range match memory.
	TCAMBits int
	// ALUs is the worst-case per-packet ALU operation count.
	ALUs int
	// Tables is the number of match/action tables.
	Tables int
	// ParserStates is the number of extra parser states needed.
	ParserStates int
}

// Add returns the sum of two demands.
func (d Demand) Add(o Demand) Demand {
	return Demand{
		SRAMBits:     d.SRAMBits + o.SRAMBits,
		TCAMBits:     d.TCAMBits + o.TCAMBits,
		ALUs:         d.ALUs + o.ALUs,
		Tables:       d.Tables + o.Tables,
		ParserStates: d.ParserStates + o.ParserStates,
	}
}

// Sub returns d - o (components may go negative; callers check Fits).
func (d Demand) Sub(o Demand) Demand {
	return Demand{
		SRAMBits:     d.SRAMBits - o.SRAMBits,
		TCAMBits:     d.TCAMBits - o.TCAMBits,
		ALUs:         d.ALUs - o.ALUs,
		Tables:       d.Tables - o.Tables,
		ParserStates: d.ParserStates - o.ParserStates,
	}
}

// Fits reports whether d fits within capacity c.
func (d Demand) Fits(c Demand) bool {
	return d.SRAMBits <= c.SRAMBits &&
		d.TCAMBits <= c.TCAMBits &&
		d.ALUs <= c.ALUs &&
		d.Tables <= c.Tables &&
		d.ParserStates <= c.ParserStates
}

// IsZero reports whether all components are zero.
func (d Demand) IsZero() bool { return d == Demand{} }

func (d Demand) String() string {
	return fmt.Sprintf("{sram=%db tcam=%db alus=%d tables=%d parser=%d}",
		d.SRAMBits, d.TCAMBits, d.ALUs, d.Tables, d.ParserStates)
}

// Per-entry bookkeeping overhead in bits (validity, pointers, action id).
const entryOverheadBits = 32

// fieldBits returns the declared or natural width of a table key.
func fieldBits(k TableKey) int {
	if k.Bits > 0 {
		return k.Bits
	}
	return 32 // conservative natural width when unspecified
}

// TableDemand computes the resource demand of one table (entries sized
// at spec capacity) including its widest action.
func TableDemand(p *Program, t *TableSpec) Demand {
	keyBits := 0
	tcam := false
	for _, k := range t.Keys {
		keyBits += fieldBits(k)
		if k.Kind.NeedsTCAM() {
			tcam = true
		}
	}
	// Action data: the widest parameter list among permitted actions.
	maxParams := 0
	maxALU := 0
	consider := func(name string) {
		a := p.Actions[name]
		if a == nil {
			return
		}
		if a.NumParams > maxParams {
			maxParams = a.NumParams
		}
		if len(a.Body) > maxALU {
			maxALU = len(a.Body)
		}
	}
	for _, a := range t.Actions {
		consider(a)
	}
	if t.DefaultAction != "" {
		consider(t.DefaultAction)
	}
	entryBits := keyBits + maxParams*32 + entryOverheadBits
	d := Demand{Tables: 1, ALUs: maxALU}
	if tcam {
		d.TCAMBits = t.Size * entryBits
	} else {
		d.SRAMBits = t.Size * entryBits
	}
	return d
}

// MapDemand computes the demand of one map.
func MapDemand(m *MapSpec) Demand {
	per := m.ValueBits + 64 + entryOverheadBits // key + value + overhead
	if m.Kind == MapArray {
		per = m.ValueBits // arrays need no stored keys
	}
	return Demand{SRAMBits: m.MaxEntries * per}
}

// ProgramDemand computes the total demand of a program on a generic
// target: tables + maps + counters + meters + inline compute + parser.
func ProgramDemand(p *Program) Demand {
	var d Demand
	for _, t := range p.Tables {
		d = d.Add(TableDemand(p, t))
	}
	for _, m := range p.Maps {
		d = d.Add(MapDemand(m))
	}
	for _, c := range p.Counters {
		d.SRAMBits += c.Size * 64
	}
	for _, m := range p.Meters {
		d.SRAMBits += m.Size * 128
	}
	// Inline Do blocks contribute ALU work.
	walkStmts(p.Pipeline, func(s *Stmt) {
		if s.Do != nil {
			d.ALUs += len(s.Do)
		}
	})
	d.ParserStates = len(p.RequiredHeaders)
	return d
}

// DatapathDemand sums segment demands.
func DatapathDemand(dp *Datapath) Demand {
	var d Demand
	for _, s := range dp.Segments {
		d = d.Add(ProgramDemand(s))
	}
	return d
}
