package flexbpf

import (
	"sync"
	"testing"
)

// TestTableConcurrentLookup exercises the copy-on-write contract: readers
// (Lookup, LookupEntry, Len, Entries, Stats) run lock-free against
// atomically-published snapshots while writers Insert/Delete/Clear
// concurrently. Run under -race in CI; correctness here means no data
// race and no torn snapshot (a hit must always return a consistent
// entry).
func TestTableConcurrentLookup(t *testing.T) {
	specs := []*TableSpec{
		{
			Name: "exact",
			Keys: []TableKey{{Field: "ipv4.dst", Kind: MatchExact, Bits: 32}},
			Size: 4096,
		},
		{
			Name: "lpm",
			Keys: []TableKey{{Field: "ipv4.dst", Kind: MatchLPM, Bits: 32}},
			Size: 4096,
		},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ti := NewTableInstance(spec)
			ti.SetActionResolver(func(name string) int32 {
				if name == "act" {
					return 0
				}
				return -1
			})
			mkEntry := func(i int) *TableEntry {
				if spec.Name == "lpm" {
					return LPMEntry("act", []uint64{uint64(i)}, uint64(i)<<8, 24)
				}
				return ExactEntry("act", []uint64{uint64(i)}, uint64(i))
			}
			const writers = 2
			const readers = 4
			const rounds = 400
			stop := make(chan struct{})
			var wWG, rWG sync.WaitGroup
			for w := 0; w < writers; w++ {
				wWG.Add(1)
				go func(w int) {
					defer wWG.Done()
					for i := 0; i < rounds; i++ {
						n := w*rounds + i
						if err := ti.Insert(mkEntry(n)); err != nil {
							t.Error(err)
							return
						}
						if i%3 == 0 {
							_ = ti.Delete(mkEntry(n).Match)
						}
						if i%97 == 0 && w == 0 {
							ti.Clear()
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				rWG.Add(1)
				go func() {
					defer rWG.Done()
					keys := make([]uint64, 1)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if spec.Name == "lpm" {
							keys[0] = uint64(i%rounds) << 8
						} else {
							keys[0] = uint64(i % rounds)
						}
						if act, _, hit := ti.Lookup(keys); hit && act != "act" {
							t.Errorf("torn entry: action %q", act)
							return
						}
						if e, hit := ti.LookupEntry(keys); hit && e == nil {
							t.Error("hit returned nil entry")
							return
						}
						_ = ti.Len()
						if i%64 == 0 {
							for _, e := range ti.Entries() {
								if e.Action != "act" {
									t.Errorf("torn snapshot: %q", e.Action)
									return
								}
							}
							ti.Stats()
						}
					}
				}()
			}
			wWG.Wait()
			close(stop)
			rWG.Wait()
		})
	}
}

// TestTableConcurrentResolver races SetActionResolver against lookups:
// installing a linked program's resolver on a live table must not tear.
func TestTableConcurrentResolver(t *testing.T) {
	spec := &TableSpec{
		Name: "t",
		Keys: []TableKey{{Field: "ipv4.dst", Kind: MatchExact, Bits: 32}},
		Size: 1024,
	}
	ti := NewTableInstance(spec)
	for i := 0; i < 256; i++ {
		if err := ti.Insert(ExactEntry("act", nil, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		keys := make([]uint64, 1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			keys[0] = uint64(i % 256)
			if e, hit := ti.LookupEntry(keys); !hit || e.Action != "act" {
				t.Errorf("lookup %d: hit=%v", i, hit)
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		idx := int32(i % 4)
		ti.SetActionResolver(func(string) int32 { return idx })
	}
	close(stop)
	wg.Wait()
}
