package flexbpf

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// MatchValue is one key component of a table entry.
type MatchValue struct {
	// Value is the match value (exact, ternary, LPM) or range low bound.
	Value uint64
	// Mask is the ternary mask (ignored for other kinds).
	Mask uint64
	// PrefixLen is the LPM prefix length in bits.
	PrefixLen int
	// Hi is the range high bound (inclusive).
	Hi uint64
}

// Matches reports whether the component matches v under kind (with key
// width bits for LPM).
func (m MatchValue) Matches(kind MatchKind, bits int, v uint64) bool {
	switch kind {
	case MatchExact:
		return v == m.Value
	case MatchTernary:
		return v&m.Mask == m.Value&m.Mask
	case MatchLPM:
		if m.PrefixLen <= 0 {
			return true
		}
		if m.PrefixLen >= bits {
			return v == m.Value
		}
		shift := uint(bits - m.PrefixLen)
		return v>>shift == m.Value>>shift
	case MatchRange:
		return v >= m.Value && v <= m.Hi
	default:
		return false
	}
}

// TableEntry is one installed match/action rule.
type TableEntry struct {
	// Priority orders ternary/range entries; higher wins. Exact tables
	// ignore priority; LPM tables use prefix length.
	Priority int
	Match    []MatchValue
	Action   string
	Params   []uint64

	// actIdx caches the linked action index + 1 (0 = unresolved). It is
	// annotated under the instance write lock before the entry is
	// published, so the lock-free read path can jump straight to the
	// lowered action body without a name lookup.
	actIdx int32
}

// tableState is an immutable snapshot of a table's contents. Lookups load
// the current snapshot with one atomic pointer read; writers clone the
// snapshot, mutate the clone, and swap it in. Readers therefore never
// block and never observe a half-applied update — the same discipline the
// runtime engine uses for whole-config epoch swaps.
//
// Entries are stored by value so linear scans (ternary/LPM tables) walk
// one contiguous array. All-exact tables keep entries in insertion order
// (order is irrelevant to exact matching) so the hash index can address
// them by position and survive copy-on-write clones unchanged; all other
// tables keep entries in match order (priority desc, prefix desc).
type tableState struct {
	entries []TableEntry
	// exact is the hash index for all-exact-key tables (nil otherwise).
	exact *exactIndex
}

var emptyTableState = &tableState{}

// TableInstance is the runtime realization of a TableSpec: the entry
// store plus lookup. Device models wrap instances with resource
// accounting; the matching semantics live here with the language.
//
// TableInstance is safe for concurrent lookups with concurrent updates:
// the data plane reads copy-on-write snapshots lock-free while control
// plane writers serialize on an internal mutex and publish via
// atomic.Pointer.
type TableInstance struct {
	Spec *TableSpec

	mu    sync.Mutex // serializes writers
	state atomic.Pointer[tableState]
	// gen counts state publications. Every path that stores a new
	// tableState bumps it, so a consumer that captured (instance, gen) can
	// later detect that the contents might have changed — the flow cache
	// validates entries against it, which is what makes bulk rewrites that
	// do not bump the device epoch (RefreshRoutes' ReplaceAll) safe to run
	// under a populated cache.
	gen atomic.Uint64
	// hits and misses count lookups for telemetry.
	hits, misses atomic.Uint64
	// resolve maps an action name to its linked action index (-1 if
	// unknown). Installed once before the instance serves traffic.
	resolve func(string) int32
}

// NewTableInstance creates an empty instance of spec.
func NewTableInstance(spec *TableSpec) *TableInstance {
	ti := &TableInstance{Spec: spec}
	ti.state.Store(emptyTableState)
	return ti
}

func (ti *TableInstance) load() *tableState {
	if st := ti.state.Load(); st != nil {
		return st
	}
	return emptyTableState
}

// publish installs a new state snapshot and bumps the generation.
// Callers hold ti.mu (or, at construction, have exclusive access).
func (ti *TableInstance) publish(next *tableState) {
	ti.state.Store(next)
	ti.gen.Add(1)
}

// Generation returns the table's state-publication counter. It advances
// on every content change (Insert, Delete, Clear, ReplaceAll, resolver
// annotation); equal generations imply identical published contents.
func (ti *TableInstance) Generation() uint64 { return ti.gen.Load() }

// SetActionResolver installs the linked action-index resolver and
// annotates entries. It must be called before the instance serves
// traffic (the install path links programs before the config swap).
func (ti *TableInstance) SetActionResolver(fn func(string) int32) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.resolve = fn
	st := ti.load()
	if len(st.entries) == 0 {
		return
	}
	// Entry positions are unchanged, so the exact index carries over.
	next := &tableState{entries: append([]TableEntry(nil), st.entries...), exact: st.exact}
	for i := range next.entries {
		next.entries[i].actIdx = fn(next.entries[i].Action) + 1
	}
	ti.publish(next)
}

func (t *TableSpec) allExact() bool {
	for _, k := range t.Keys {
		if k.Kind != MatchExact {
			return false
		}
	}
	return true
}

// hashWords is FNV-1a over the key words directly — no string key is
// materialized on the lookup path.
func hashWords(keys []uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, k := range keys {
		h ^= k
		h *= prime
	}
	return h
}

// exactIndex is an open-addressing hash table over the entries of an
// all-exact table. Slots hold entry positions + 1 (0 = empty), so
// cloning for a copy-on-write update is a flat memcpy, and the index
// stays valid across entry-slice clones because exact storage is
// append-ordered.
type exactIndex struct {
	slots []int32 // position + 1; len is a power of two
	mask  uint64
	n     int
}

func newExactIndex(capacity int) *exactIndex {
	size := 8
	for size < capacity*2 {
		size *= 2
	}
	return &exactIndex{slots: make([]int32, size), mask: uint64(size - 1)}
}

func entryKeysEqual(e *TableEntry, keys []uint64) bool {
	if len(e.Match) != len(keys) {
		return false
	}
	for i, k := range keys {
		if e.Match[i].Value != k {
			return false
		}
	}
	return true
}

// find probes for the position of the entry with exactly these key
// values, or -1.
func (ix *exactIndex) find(entries []TableEntry, keys []uint64) int {
	if ix == nil || len(ix.slots) == 0 {
		return -1
	}
	i := hashWords(keys) & ix.mask
	for {
		pos := ix.slots[i]
		if pos == 0 {
			return -1
		}
		if entryKeysEqual(&entries[pos-1], keys) {
			return int(pos - 1)
		}
		i = (i + 1) & ix.mask
	}
}

func (ix *exactIndex) insert(entries []TableEntry, pos int) {
	i := hashWords(entryKeyWords(&entries[pos])) & ix.mask
	for ix.slots[i] != 0 {
		i = (i + 1) & ix.mask
	}
	ix.slots[i] = int32(pos + 1)
	ix.n++
}

func entryKeyWords(e *TableEntry) []uint64 {
	out := make([]uint64, len(e.Match))
	for i, m := range e.Match {
		out[i] = m.Value
	}
	return out
}

// clone returns a flat copy sized so the caller can insert one more
// entry, rehashing only when past half load.
func (ix *exactIndex) clone(entries []TableEntry) *exactIndex {
	if ix == nil {
		return newExactIndex(1)
	}
	if (ix.n+1)*2 > len(ix.slots) {
		ns := newExactIndex(ix.n + 1)
		for _, pos := range ix.slots {
			if pos != 0 {
				ns.insert(entries, int(pos-1))
			}
		}
		return ns
	}
	ns := &exactIndex{slots: make([]int32, len(ix.slots)), mask: ix.mask, n: ix.n}
	copy(ns.slots, ix.slots)
	return ns
}

func buildExactIndex(entries []TableEntry) *exactIndex {
	ix := newExactIndex(len(entries) + 1)
	for pos := range entries {
		ix.insert(entries, pos)
	}
	return ix
}

// Len returns the number of installed entries.
func (ti *TableInstance) Len() int {
	return len(ti.load().entries)
}

// Stats returns lookup hit/miss counts.
func (ti *TableInstance) Stats() (hits, misses uint64) {
	return ti.hits.Load(), ti.misses.Load()
}

// Insert installs an entry. It validates arity against the spec and
// capacity against Spec.Size.
func (ti *TableInstance) Insert(e *TableEntry) error {
	if len(e.Match) != len(ti.Spec.Keys) {
		return fmt.Errorf("flexbpf: table %s: entry has %d match components, spec has %d keys",
			ti.Spec.Name, len(e.Match), len(ti.Spec.Keys))
	}
	// Tables declaring an action set restrict entries to it; tables with
	// no declared actions (raw instances outside a Program) accept any.
	if e.Action != "" && len(ti.Spec.Actions) > 0 && !ti.Spec.HasAction(e.Action) {
		return fmt.Errorf("flexbpf: table %s: action %q not permitted", ti.Spec.Name, e.Action)
	}
	ti.mu.Lock()
	defer ti.mu.Unlock()
	old := ti.load()
	if ti.Spec.Size > 0 && len(old.entries) >= ti.Spec.Size {
		return fmt.Errorf("flexbpf: table %s full (%d entries)", ti.Spec.Name, ti.Spec.Size)
	}
	allExact := ti.Spec.allExact()
	if allExact && old.exact.find(old.entries, entryKeyWords(e)) >= 0 {
		return fmt.Errorf("flexbpf: table %s: duplicate exact entry", ti.Spec.Name)
	}
	if ti.resolve != nil {
		e.actIdx = ti.resolve(e.Action) + 1
	}
	next := &tableState{}
	next.entries = make([]TableEntry, len(old.entries), len(old.entries)+1)
	copy(next.entries, old.entries)
	next.entries = append(next.entries, *e)
	if allExact {
		// Exact storage stays append-ordered so existing index positions
		// remain valid; only the new tail position is inserted.
		if old.exact == nil {
			next.exact = buildExactIndex(next.entries)
		} else {
			next.exact = old.exact.clone(next.entries)
			next.exact.insert(next.entries, len(next.entries)-1)
		}
	} else {
		sortEntries(next.entries)
	}
	ti.publish(next)
	return nil
}

// ReplaceAll atomically replaces the table's entire contents with the
// given entries, validated exactly as Insert validates them. The new
// state is published with a single atomic store, so concurrent lookups
// see either the complete old contents or the complete new contents —
// never an empty or partially-written table. This is the commit point
// bulk rewrites (the fabric's routing refresh) use instead of
// Clear-then-Insert, which exposed an empty-table window and cost a
// copy-on-write clone per entry. Entry order follows the usual match
// order (priority desc, prefix desc, then given order).
func (ti *TableInstance) ReplaceAll(entries []*TableEntry) error {
	if ti.Spec.Size > 0 && len(entries) > ti.Spec.Size {
		return fmt.Errorf("flexbpf: table %s full (%d entries, %d offered)",
			ti.Spec.Name, ti.Spec.Size, len(entries))
	}
	for _, e := range entries {
		if len(e.Match) != len(ti.Spec.Keys) {
			return fmt.Errorf("flexbpf: table %s: entry has %d match components, spec has %d keys",
				ti.Spec.Name, len(e.Match), len(ti.Spec.Keys))
		}
		if e.Action != "" && len(ti.Spec.Actions) > 0 && !ti.Spec.HasAction(e.Action) {
			return fmt.Errorf("flexbpf: table %s: action %q not permitted", ti.Spec.Name, e.Action)
		}
	}
	ti.mu.Lock()
	defer ti.mu.Unlock()
	next := &tableState{entries: make([]TableEntry, len(entries))}
	for i, e := range entries {
		next.entries[i] = *e
		if ti.resolve != nil {
			next.entries[i].actIdx = ti.resolve(e.Action) + 1
		}
	}
	if ti.Spec.allExact() {
		if len(next.entries) > 0 {
			ix := newExactIndex(len(next.entries) + 1)
			for pos := range next.entries {
				if ix.find(next.entries, entryKeyWords(&next.entries[pos])) >= 0 {
					return fmt.Errorf("flexbpf: table %s: duplicate exact entry", ti.Spec.Name)
				}
				ix.insert(next.entries, pos)
			}
			next.exact = ix
		}
	} else {
		sortEntries(next.entries)
	}
	ti.publish(next)
	return nil
}

// sortEntries orders entries: priority desc, then total LPM prefix desc,
// then insertion-stable.
func sortEntries(entries []TableEntry) {
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		return totalPrefix(a) > totalPrefix(b)
	})
}

func totalPrefix(e *TableEntry) int {
	n := 0
	for _, m := range e.Match {
		n += m.PrefixLen
	}
	return n
}

// Delete removes the first entry whose match exactly equals the given
// components.
func (ti *TableInstance) Delete(match []MatchValue) error {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	old := ti.load()
	for i := range old.entries {
		if matchEqual(old.entries[i].Match, match) {
			next := &tableState{}
			next.entries = make([]TableEntry, 0, len(old.entries)-1)
			next.entries = append(next.entries, old.entries[:i]...)
			next.entries = append(next.entries, old.entries[i+1:]...)
			if old.exact != nil {
				// Deletion shifts positions and open addressing would need
				// tombstones; removals are control-plane rare, so rebuild.
				next.exact = buildExactIndex(next.entries)
			}
			ti.publish(next)
			return nil
		}
	}
	return fmt.Errorf("flexbpf: table %s: entry not found", ti.Spec.Name)
}

func matchEqual(a, b []MatchValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clear removes all entries.
func (ti *TableInstance) Clear() {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.publish(emptyTableState)
}

// Entries returns a snapshot copy of the installed entries in match
// order. Used by migration and incremental recompilation.
func (ti *TableInstance) Entries() []*TableEntry {
	entries := ti.load().entries
	snap := append([]TableEntry(nil), entries...)
	// Exact tables store entries in insertion order; present them in the
	// same deterministic match order as every other table. (With equal
	// priorities and no prefixes the stable sort preserves insertion
	// order, so this is an ordering guarantee, not a reordering.)
	sortEntries(snap)
	out := make([]*TableEntry, len(snap))
	for i := range snap {
		out[i] = &TableEntry{
			Priority: snap[i].Priority,
			Match:    append([]MatchValue(nil), snap[i].Match...),
			Action:   snap[i].Action,
			Params:   append([]uint64(nil), snap[i].Params...),
		}
	}
	return out
}

// Lookup finds the best-matching entry for the key values, in spec key
// order. On miss it returns the spec's default action with hit=false.
func (ti *TableInstance) Lookup(keys []uint64) (action string, params []uint64, hit bool) {
	e, ok := ti.LookupEntry(keys)
	if !ok {
		return ti.Spec.DefaultAction, ti.Spec.DefaultParams, false
	}
	return e.Action, e.Params, true
}

// LookupEntry finds the best-matching entry for the key values and
// returns it directly; the linked fast path uses it to reach the
// pre-resolved action index without re-deriving it from the name. It
// updates hit/miss statistics exactly as Lookup does. The returned
// pointer references an immutable snapshot and must be treated as
// read-only.
func (ti *TableInstance) LookupEntry(keys []uint64) (*TableEntry, bool) {
	e, ok := ti.lookupIn(ti.load(), keys)
	if ok {
		ti.hits.Add(1)
	} else {
		ti.misses.Add(1)
	}
	return e, ok
}

// lookupIn is LookupEntry's matching over an explicit state snapshot,
// without statistics updates. Batched execution (BatchState) loads a
// table's snapshot once per batch, matches against it here for every
// packet, and flushes aggregated hit/miss counts at batch end — totals
// are identical to per-packet LookupEntry calls.
func (ti *TableInstance) lookupIn(st *tableState, keys []uint64) (*TableEntry, bool) {
	if st.exact != nil {
		if pos := st.exact.find(st.entries, keys); pos >= 0 {
			return &st.entries[pos], true
		}
		return nil, false
	}
	specKeys := ti.Spec.Keys
	for j := range st.entries {
		e := &st.entries[j]
		ok := true
		for i := range specKeys {
			k := &specKeys[i]
			bits := k.Bits
			if bits == 0 {
				bits = 64
			}
			if !e.Match[i].Matches(k.Kind, bits, keys[i]) {
				ok = false
				break
			}
		}
		if ok {
			return e, true
		}
	}
	return nil, false
}

// ExactEntry builds an all-exact-match entry (convenience).
func ExactEntry(action string, params []uint64, keys ...uint64) *TableEntry {
	ms := make([]MatchValue, len(keys))
	for i, k := range keys {
		ms[i] = MatchValue{Value: k}
	}
	return &TableEntry{Match: ms, Action: action, Params: params}
}

// LPMEntry builds a single-key LPM entry (convenience).
func LPMEntry(action string, params []uint64, prefix uint64, prefixLen int) *TableEntry {
	return &TableEntry{
		Match:  []MatchValue{{Value: prefix, PrefixLen: prefixLen}},
		Action: action,
		Params: params,
	}
}
