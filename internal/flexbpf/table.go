package flexbpf

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// MatchValue is one key component of a table entry.
type MatchValue struct {
	// Value is the match value (exact, ternary, LPM) or range low bound.
	Value uint64
	// Mask is the ternary mask (ignored for other kinds).
	Mask uint64
	// PrefixLen is the LPM prefix length in bits.
	PrefixLen int
	// Hi is the range high bound (inclusive).
	Hi uint64
}

// Matches reports whether the component matches v under kind (with key
// width bits for LPM).
func (m MatchValue) Matches(kind MatchKind, bits int, v uint64) bool {
	switch kind {
	case MatchExact:
		return v == m.Value
	case MatchTernary:
		return v&m.Mask == m.Value&m.Mask
	case MatchLPM:
		if m.PrefixLen <= 0 {
			return true
		}
		if m.PrefixLen >= bits {
			return v == m.Value
		}
		shift := uint(bits - m.PrefixLen)
		return v>>shift == m.Value>>shift
	case MatchRange:
		return v >= m.Value && v <= m.Hi
	default:
		return false
	}
}

// TableEntry is one installed match/action rule.
type TableEntry struct {
	// Priority orders ternary/range entries; higher wins. Exact tables
	// ignore priority; LPM tables use prefix length.
	Priority int
	Match    []MatchValue
	Action   string
	Params   []uint64
}

// TableInstance is the runtime realization of a TableSpec: the entry
// store plus lookup. Device models wrap instances with resource
// accounting; the matching semantics live here with the language.
//
// TableInstance is safe for concurrent lookups with serialized updates
// (the runtime engine's model: the data plane reads while the control
// plane performs atomic entry updates).
type TableInstance struct {
	Spec *TableSpec

	mu      sync.RWMutex
	entries []*TableEntry
	// exact is a fast path index for all-exact-key tables.
	exact map[string]*TableEntry
	// hits and misses count lookups for telemetry; atomics because
	// lookups run under the read lock.
	hits, misses atomic.Uint64
}

// NewTableInstance creates an empty instance of spec.
func NewTableInstance(spec *TableSpec) *TableInstance {
	ti := &TableInstance{Spec: spec}
	if spec.allExact() {
		ti.exact = make(map[string]*TableEntry)
	}
	return ti
}

func (t *TableSpec) allExact() bool {
	for _, k := range t.Keys {
		if k.Kind != MatchExact {
			return false
		}
	}
	return true
}

func exactKeyString(keys []uint64) string {
	b := make([]byte, 0, len(keys)*8)
	for _, k := range keys {
		for i := 0; i < 8; i++ {
			b = append(b, byte(k>>(8*i)))
		}
	}
	return string(b)
}

// Len returns the number of installed entries.
func (ti *TableInstance) Len() int {
	ti.mu.RLock()
	defer ti.mu.RUnlock()
	return len(ti.entries)
}

// Stats returns lookup hit/miss counts.
func (ti *TableInstance) Stats() (hits, misses uint64) {
	return ti.hits.Load(), ti.misses.Load()
}

// Insert installs an entry. It validates arity against the spec and
// capacity against Spec.Size.
func (ti *TableInstance) Insert(e *TableEntry) error {
	if len(e.Match) != len(ti.Spec.Keys) {
		return fmt.Errorf("flexbpf: table %s: entry has %d match components, spec has %d keys",
			ti.Spec.Name, len(e.Match), len(ti.Spec.Keys))
	}
	// Tables declaring an action set restrict entries to it; tables with
	// no declared actions (raw instances outside a Program) accept any.
	if e.Action != "" && len(ti.Spec.Actions) > 0 && !ti.Spec.HasAction(e.Action) {
		return fmt.Errorf("flexbpf: table %s: action %q not permitted", ti.Spec.Name, e.Action)
	}
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if ti.Spec.Size > 0 && len(ti.entries) >= ti.Spec.Size {
		return fmt.Errorf("flexbpf: table %s full (%d entries)", ti.Spec.Name, ti.Spec.Size)
	}
	if ti.exact != nil {
		k := exactKeyString(matchValues(e.Match))
		if _, dup := ti.exact[k]; dup {
			return fmt.Errorf("flexbpf: table %s: duplicate exact entry", ti.Spec.Name)
		}
		ti.exact[k] = e
	}
	ti.entries = append(ti.entries, e)
	ti.sortLocked()
	return nil
}

func matchValues(ms []MatchValue) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.Value
	}
	return out
}

// sortLocked orders entries: priority desc, then total LPM prefix desc,
// then insertion-stable.
func (ti *TableInstance) sortLocked() {
	sort.SliceStable(ti.entries, func(i, j int) bool {
		a, b := ti.entries[i], ti.entries[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		return totalPrefix(a) > totalPrefix(b)
	})
}

func totalPrefix(e *TableEntry) int {
	n := 0
	for _, m := range e.Match {
		n += m.PrefixLen
	}
	return n
}

// Delete removes the first entry whose match exactly equals the given
// components.
func (ti *TableInstance) Delete(match []MatchValue) error {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	for i, e := range ti.entries {
		if matchEqual(e.Match, match) {
			ti.entries = append(ti.entries[:i], ti.entries[i+1:]...)
			if ti.exact != nil {
				delete(ti.exact, exactKeyString(matchValues(match)))
			}
			return nil
		}
	}
	return fmt.Errorf("flexbpf: table %s: entry not found", ti.Spec.Name)
}

func matchEqual(a, b []MatchValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clear removes all entries.
func (ti *TableInstance) Clear() {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.entries = nil
	if ti.exact != nil {
		ti.exact = make(map[string]*TableEntry)
	}
}

// Entries returns a snapshot copy of the installed entries in match
// order. Used by migration and incremental recompilation.
func (ti *TableInstance) Entries() []*TableEntry {
	ti.mu.RLock()
	defer ti.mu.RUnlock()
	out := make([]*TableEntry, len(ti.entries))
	for i, e := range ti.entries {
		ec := &TableEntry{
			Priority: e.Priority,
			Match:    append([]MatchValue(nil), e.Match...),
			Action:   e.Action,
			Params:   append([]uint64(nil), e.Params...),
		}
		out[i] = ec
	}
	return out
}

// Lookup finds the best-matching entry for the key values, in spec key
// order. On miss it returns the spec's default action with hit=false.
func (ti *TableInstance) Lookup(keys []uint64) (action string, params []uint64, hit bool) {
	ti.mu.RLock()
	defer ti.mu.RUnlock()
	if ti.exact != nil {
		if e, ok := ti.exact[exactKeyString(keys)]; ok {
			ti.hits.Add(1)
			return e.Action, e.Params, true
		}
		ti.misses.Add(1)
		return ti.Spec.DefaultAction, ti.Spec.DefaultParams, false
	}
	for _, e := range ti.entries {
		ok := true
		for i, k := range ti.Spec.Keys {
			bits := k.Bits
			if bits == 0 {
				bits = 64
			}
			if !e.Match[i].Matches(k.Kind, bits, keys[i]) {
				ok = false
				break
			}
		}
		if ok {
			ti.hits.Add(1)
			return e.Action, e.Params, true
		}
	}
	ti.misses.Add(1)
	return ti.Spec.DefaultAction, ti.Spec.DefaultParams, false
}

// ExactEntry builds an all-exact-match entry (convenience).
func ExactEntry(action string, params []uint64, keys ...uint64) *TableEntry {
	ms := make([]MatchValue, len(keys))
	for i, k := range keys {
		ms[i] = MatchValue{Value: k}
	}
	return &TableEntry{Match: ms, Action: action, Params: params}
}

// LPMEntry builds a single-key LPM entry (convenience).
func LPMEntry(action string, params []uint64, prefix uint64, prefixLen int) *TableEntry {
	return &TableEntry{
		Match:  []MatchValue{{Value: prefix, PrefixLen: prefixLen}},
		Action: action,
		Params: params,
	}
}
