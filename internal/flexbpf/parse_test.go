package flexbpf

import (
	"reflect"
	"strings"
	"testing"

	"flexnet/internal/packet"
)

func TestParseAsmBasic(t *testing.T) {
	code, err := ParseAsm(`
		; SYN filter fragment
		ldf r0 tcp.flags
		andi r0 #2
		jeqi r0 #0 pass
		drop
pass:		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := NewAsm().
		LdField(0, "tcp.flags").
		AndImm(0, 2).
		JEqImm(0, 0, "pass").
		Drop().
		Label("pass").
		Ret().
		MustBuild()
	if !reflect.DeepEqual(code, want) {
		t.Fatalf("parsed:\n%s\nwant:\n%s", Disasm(code), Disasm(want))
	}
}

func TestParseAsmRoundTripDisasm(t *testing.T) {
	// Property: Disasm output re-assembles to the identical block, for a
	// block exercising every operand shape.
	orig := NewAsm().
		MovImm(1, 0xFF).
		Mov(2, 1).
		LdField(0, "ipv4.dst").
		HasField(3, "vlan.vid").
		StField("meta.x", 2).
		AddHdr("int").
		RmHdr("vlan").
		LdParam(4, 1).
		Add(1, 2).Sub(1, 2).Mul(1, 2).Div(1, 2).Mod(1, 2).
		And(1, 2).Or(1, 2).Xor(1, 2).Shl(1, 2).Shr(1, 2).Min(1, 2).Max(1, 2).
		AddImm(1, 7).ShrImm(1, 3).
		MapLoad(5, "m", 0).
		MapHas(6, "m", 0).
		MapStore("m", 0, 1).
		MapDelete("m", 0).
		Hash(7, 0).
		FlowHash(8).
		Now(9).
		Rand(10).
		PktLen(11).
		Count("c", 0, 1).
		MeterExec(12, "mt", 0, 1).
		JEq(1, 2, "end").
		JLtImm(1, 5, "end").
		Jmp("end").
		Label("end").
		Punt().
		MustBuild()
	text := Disasm(orig)
	// Strip the "NNNN: " line prefixes Disasm adds.
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, ": "); i >= 0 {
			line = line[i+2:]
		}
		b.WriteString(line + "\n")
	}
	parsed, err := ParseAsm(b.String())
	if err != nil {
		t.Fatalf("re-assembly failed: %v\n%s", err, b.String())
	}
	if !reflect.DeepEqual(parsed, orig) {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", Disasm(parsed), Disasm(orig))
	}
}

func TestParseAsmErrors(t *testing.T) {
	cases := []struct{ name, src, frag string }{
		{"unknown op", "frobnicate r1", "unknown mnemonic"},
		{"missing operand", "mov r1", "missing"},
		{"bad register", "mov rX r1", "bad register"},
		{"reg out of range", "mov r99 r1", "bad register"},
		{"missing imm hash", "movi r0 5", "immediate must start"},
		{"bad imm", "movi r0 #zz", "bad immediate"},
		{"undefined label", "jmp nowhere", "undefined label"},
		{"backward label", "x:\nnop\njmp x", "backward"},
		{"duplicate label", "x:\nx:\nnop", "duplicate label"},
		{"trailing junk", "drop r1", "trailing"},
		{"negative offset", "jmp +-1", "bad offset"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseAsm(c.src)
			if err == nil {
				t.Fatalf("accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q missing %q", err, c.frag)
			}
		})
	}
}

func TestParseAsmHexAndLabelsStacked(t *testing.T) {
	code, err := ParseAsm(`
		movi r0 #0x1f
		jmp a
a: b:		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	if code[0].Imm != 0x1f {
		t.Fatalf("hex imm = %d", code[0].Imm)
	}
	if code[1].Off != 0 {
		t.Fatalf("jump off = %d", code[1].Off)
	}
}

func TestParsedProgramExecutes(t *testing.T) {
	// A program assembled from text runs identically to the builder one.
	code := MustParseAsm(`
		ldf r0 ipv4.ttl
		jgti r0 #1 alive
		drop
alive:		subi r0 #1
		stf r0 ipv4.ttl
		ret
	`)
	p, err := NewProgram("ttl").Do(code).Build()
	if err != nil {
		t.Fatal(err)
	}
	pkt := packet.TCPPacket(1, 1, 2, 3, 4, 0, 0)
	pkt.SetField("ipv4.ttl", 5)
	res, err := Interp{}.Run(p, pkt, newTestEnv())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != packet.VerdictContinue || pkt.Field("ipv4.ttl") != 4 {
		t.Fatalf("ttl program broken: %v ttl=%d", res.Verdict, pkt.Field("ipv4.ttl"))
	}
	dead := packet.TCPPacket(2, 1, 2, 3, 4, 0, 0)
	dead.SetField("ipv4.ttl", 1)
	res, _ = Interp{}.Run(p, dead, newTestEnv())
	if res.Verdict != packet.VerdictDrop {
		t.Fatalf("ttl=1 verdict %v", res.Verdict)
	}
}
