package flexbpf

import (
	"fmt"
	"sort"

	"flexnet/internal/packet"
)

// This file implements the install-time linker. Installing a program on a
// device compiles it once into a flattened, symbol-resolved executable
// form so the per-packet path never chases strings:
//
//   - field names are interned to dense packet.FieldID indexes and the
//     PHV is addressed by index;
//   - the Apply/If/Do statement tree is lowered to one linear instruction
//     stream with synthetic control opcodes;
//   - map/counter/meter references are resolved to slot indexes into the
//     environment's object arrays, and table applies to direct
//     *TableInstance pointers;
//   - table entries carry a pre-resolved action index, so a hit jumps
//     straight to the lowered action body.
//
// Execution counts instructions and lookups exactly as the tree
// interpreter does — the simulator's latency model feeds on those counts,
// and experiment output must stay byte-identical — so the synthetic
// opcodes below cost zero instructions (their tree equivalents were
// statement-tree walks, not instructions), while every source instruction
// keeps its cost of one.

// Synthetic linked opcodes, allocated above the source opcode space. They
// never appear in source programs and are rejected by the verifier and
// the tree interpreter.
const (
	// lopApply applies lp.tables[Imm]: gather keys, look up, run the
	// resolved action body.
	lopApply Op = opMax + 1 + iota
	// lopBr evaluates lp.conds[Imm] and jumps Off when it is false.
	lopBr
	// lopGoto is an unconditional linker-introduced jump (end of a then
	// branch). Unlike OpJmp it costs zero instructions.
	lopGoto
	// lopZero clears the register frame at an inline Do-block boundary,
	// reproducing the tree interpreter's fresh frame per block.
	lopZero

	// Superinstructions fused by the link-time peephole pass. Each
	// reproduces the exact register, state, and instruction-count effects
	// of the source sequence it replaces; it exists only to collapse
	// several dispatches into one.

	// lopLd2 = LdField rd,imm ; LdField rs,off — two PHV loads.
	lopLd2
	// lopFldCp = LdField rd,imm ; StField off,rd — field-to-field copy.
	lopFldCp
	// lopMapInc = MapLoad rd,rs,imm ; AddImm rd,off ; MapStore imm,rs,rd —
	// the read-modify-write counter idiom every stateful app uses.
	lopMapInc
	// lopMapIncR is lopMapInc with a register addend (Add rd,rt).
	lopMapIncR
	// lopLdJImm = LdField rd,fid ; JxxImm rd,val — load-and-branch, the
	// guard idiom opening most actions (TTL check, flag tests). rs carries
	// the source compare opcode; imm packs fid<<32|value. It is a jump:
	// fuseBlock rewrites its offset and isJump must report it.
	lopLdJImm
	// lopAluSt = AddImm/SubImm rd,val ; StField fid,rd — modify a register
	// and write it back to the PHV (the TTL decrement). rs carries the
	// source ALU opcode; off the immediate; imm the field ID.
	lopAluSt
	// lopLdParamFwd = LdParam rd,idx ; Forward rd — the terminal
	// "forward out the table-selected port" pair of every routing action.
	lopLdParamFwd
)

// regMask lets the execution loop index the register frame without a
// bounds check; lowerBlock rejects out-of-range registers at link time,
// so masking never changes the behaviour of a linkable program.
const regMask = NumRegs - 1

// linstr is the linked instruction encoding: 16 bytes, scalar-only. The
// source Instr carries a 16-byte Sym string that only OpAddHdr/OpRmHdr
// need at runtime; linking moves those names to a side table (indexed by
// imm) so linked code packs four instructions per cache line and holds
// no pointers.
type linstr struct {
	op         Op
	rd, rs, rt Reg
	off        int32
	imm        uint64
}

// LinkedEnv extends Env with slot-addressed access to the program's
// stateful objects. Slots index the name lists returned by MapSlots,
// CounterSlots, and MeterSlots; the dataplane resolves them to direct
// object pointers when wiring a linked program.
type LinkedEnv interface {
	Env
	MapLoadSlot(slot int, key uint64) (uint64, bool)
	MapStoreSlot(slot int, key, val uint64) error
	MapDeleteSlot(slot int, key uint64)
	CounterAddSlot(slot int, idx, delta uint64)
	MeterExecSlot(slot int, idx, bytes uint64) uint64
}

// LinkedCond is a pipeline condition with its field references resolved
// to interned IDs.
type LinkedCond struct {
	fid       packet.FieldID
	otherFid  packet.FieldID
	twoField  bool
	op        CmpOp
	value     uint64
	hasHeader string
	negate    bool
}

// CompileCond resolves a condition's field references. The result
// evaluates exactly as the tree interpreter's evalCond.
func CompileCond(c *Cond) *LinkedCond {
	lc := &LinkedCond{op: c.Op, value: c.Value, hasHeader: c.HasHeader, negate: c.Negate}
	if c.HasHeader == "" {
		lc.fid = packet.InternField(c.Field)
		if c.OtherField != "" {
			lc.otherFid = packet.InternField(c.OtherField)
			lc.twoField = true
		}
	}
	return lc
}

// Eval evaluates the condition against a packet.
func (c *LinkedCond) Eval(pkt *packet.Packet) bool {
	var r bool
	if c.hasHeader != "" {
		r = pkt.Has(c.hasHeader)
	} else {
		lhs := pkt.FieldByID(c.fid)
		rhs := c.value
		if c.twoField {
			rhs = pkt.FieldByID(c.otherFid)
		}
		switch c.op {
		case CmpEq:
			r = lhs == rhs
		case CmpNe:
			r = lhs != rhs
		case CmpLt:
			r = lhs < rhs
		case CmpGe:
			r = lhs >= rhs
		case CmpGt:
			r = lhs > rhs
		case CmpLe:
			r = lhs <= rhs
		}
	}
	if c.negate {
		r = !r
	}
	return r
}

// linkedTable is a resolved table application site.
type linkedTable struct {
	name string
	ti   *TableInstance
	// keyIDs are the interned key fields in spec order.
	keyIDs []packet.FieldID
	// missIdx is the default action index + 1 (0 = no default).
	missIdx    int32
	missParams []uint64
}

// linkedAction is a lowered action body.
type linkedAction struct {
	name      string
	numParams int
	code      []linstr
}

// LinkedProgram is the flattened, symbol-resolved executable form of a
// Program produced by Link. It is immutable after linking; epoch-atomic
// config swaps publish a new LinkedProgram together with the rest of the
// device configuration.
type LinkedProgram struct {
	prog    *Program
	code    []linstr
	conds   []LinkedCond
	tables  []linkedTable
	actions []linkedAction
	actIdx  map[string]int32
	// hdrSyms holds header names referenced by OpAddHdr/OpRmHdr; linked
	// instructions index it via imm.
	hdrSyms []string

	mapNames, counterNames, meterNames []string
}

// Program returns the source program.
func (lp *LinkedProgram) Program() *Program { return lp.prog }

// MapSlots returns the map names in slot order.
func (lp *LinkedProgram) MapSlots() []string { return lp.mapNames }

// CounterSlots returns the counter names in slot order.
func (lp *LinkedProgram) CounterSlots() []string { return lp.counterNames }

// MeterSlots returns the meter names in slot order.
func (lp *LinkedProgram) MeterSlots() []string { return lp.meterNames }

// ActionIndex returns the linked index of the named action, or -1. Table
// instances install it as their action resolver so entries are annotated
// at insert time.
func (lp *LinkedProgram) ActionIndex(name string) int32 {
	if j, ok := lp.actIdx[name]; ok {
		return j
	}
	return -1
}

// ExecContext holds per-instance scratch reused across packets so the
// steady-state path performs no allocation. One context must not be
// shared by concurrent Run calls.
type ExecContext struct {
	regs [NumRegs]uint64
	keys []uint64
}

// NewExecContext returns a context with key scratch preallocated.
func NewExecContext() *ExecContext {
	return &ExecContext{keys: make([]uint64, 0, 8)}
}

type linkError struct {
	prog  string
	where string
	msg   string
}

func (e *linkError) Error() string {
	return fmt.Sprintf("flexbpf: link %s/%s: %s", e.prog, e.where, e.msg)
}

// linker accumulates the lowered form.
type linker struct {
	prog    *Program
	tables  func(string) *TableInstance
	lp      *LinkedProgram
	mapSlot map[string]int
	ctrSlot map[string]int
	mtrSlot map[string]int
	tblIdx  map[string]int
	hdrIdx  map[string]int
}

// hdrSym interns a header name into the linked program's symbol table.
func (lk *linker) hdrSym(name string) uint64 {
	if i, ok := lk.hdrIdx[name]; ok {
		return uint64(i)
	}
	i := len(lk.lp.hdrSyms)
	lk.lp.hdrSyms = append(lk.lp.hdrSyms, name)
	lk.hdrIdx[name] = i
	return uint64(i)
}

// Link compiles prog into its linked executable form. The tables callback
// resolves a table name to the runtime instance the program will run
// against (the caller owns instance creation). Link fails on unresolved
// symbols or malformed blocks; callers fall back to the tree interpreter
// on error, so linking never changes which programs are runnable.
func Link(prog *Program, tables func(string) *TableInstance) (*LinkedProgram, error) {
	lk := &linker{
		prog:    prog,
		tables:  tables,
		lp:      &LinkedProgram{prog: prog, actIdx: make(map[string]int32, len(prog.Actions))},
		mapSlot: make(map[string]int, len(prog.Maps)),
		ctrSlot: make(map[string]int, len(prog.Counters)),
		mtrSlot: make(map[string]int, len(prog.Meters)),
		tblIdx:  make(map[string]int, len(prog.Tables)),
		hdrIdx:  make(map[string]int),
	}
	for i, m := range prog.Maps {
		lk.mapSlot[m.Name] = i
		lk.lp.mapNames = append(lk.lp.mapNames, m.Name)
	}
	for i, c := range prog.Counters {
		lk.ctrSlot[c.Name] = i
		lk.lp.counterNames = append(lk.lp.counterNames, c.Name)
	}
	for i, m := range prog.Meters {
		lk.mtrSlot[m.Name] = i
		lk.lp.meterNames = append(lk.lp.meterNames, m.Name)
	}
	// Actions are indexed in sorted-name order for determinism.
	names := make([]string, 0, len(prog.Actions))
	for n := range prog.Actions {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		act := prog.Actions[n]
		code, err := lk.lowerBlock(act.Body, "action "+n)
		if err != nil {
			return nil, err
		}
		// Every block starts from a zeroed register frame (the tree
		// interpreter allocates a fresh frame per block). The leading
		// lopZero carries that semantic so the execution loop needs no
		// per-call prologue; relative jump offsets are unaffected.
		code = append([]linstr{{op: lopZero}}, code...)
		lk.lp.actions = append(lk.lp.actions, linkedAction{name: n, numParams: act.NumParams, code: code})
		lk.lp.actIdx[n] = int32(i)
	}
	if err := lk.lowerStmts(prog.Pipeline); err != nil {
		return nil, err
	}
	return lk.lp, nil
}

// lowerBlock clones a source instruction block with symbols resolved:
// field names to FieldIDs and map/counter/meter names to slot indexes,
// both carried in Imm (unused by those opcodes in source form). Jump
// targets are validated here so the execution loop can skip per-step
// bounds checks.
func (lk *linker) lowerBlock(body []Instr, where string) ([]linstr, error) {
	out := make([]linstr, len(body))
	for pc := range body {
		ins := body[pc]
		li := linstr{op: ins.Op, rd: ins.Rd, rs: ins.Rs, rt: ins.Rt, off: ins.Off, imm: ins.Imm}
		// Register operands are validated here so the execution loop can
		// mask them unconditionally (regMask) without a behaviour change.
		if int(ins.Rd) >= NumRegs || int(ins.Rs) >= NumRegs || int(ins.Rt) >= NumRegs {
			return nil, &linkError{lk.prog.Name, where, fmt.Sprintf("register out of range at pc=%d", pc)}
		}
		switch ins.Op {
		case OpLdField, OpHasField, OpStField:
			li.imm = uint64(packet.InternField(ins.Sym))
		case OpAddHdr, OpRmHdr:
			li.imm = lk.hdrSym(ins.Sym)
		case OpMapLoad, OpMapHas, OpMapStore, OpMapDelete:
			slot, ok := lk.mapSlot[ins.Sym]
			if !ok {
				return nil, &linkError{lk.prog.Name, where, fmt.Sprintf("reference to undeclared map %q", ins.Sym)}
			}
			li.imm = uint64(slot)
		case OpCount:
			slot, ok := lk.ctrSlot[ins.Sym]
			if !ok {
				return nil, &linkError{lk.prog.Name, where, fmt.Sprintf("reference to undeclared counter %q", ins.Sym)}
			}
			li.imm = uint64(slot)
		case OpMeterExec:
			slot, ok := lk.mtrSlot[ins.Sym]
			if !ok {
				return nil, &linkError{lk.prog.Name, where, fmt.Sprintf("reference to undeclared meter %q", ins.Sym)}
			}
			li.imm = uint64(slot)
		case OpJmp, OpJEq, OpJNe, OpJLt, OpJGe, OpJGt, OpJLe,
			OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm, OpJGtImm, OpJLeImm:
			if ins.Off < 0 || pc+1+int(ins.Off) > len(body) {
				return nil, &linkError{lk.prog.Name, where, fmt.Sprintf("jump at pc=%d out of block bounds", pc)}
			}
		default:
			if ins.Op >= opMax {
				return nil, &linkError{lk.prog.Name, where, fmt.Sprintf("illegal opcode %d", ins.Op)}
			}
		}
		out[pc] = li
	}
	return fuseBlock(out), nil
}

// fuseBlock is the link-time peephole pass: it collapses common source
// sequences into single superinstructions. Fused instructions keep the
// source sequence's instruction count and every observable effect; only
// dispatch count changes. Sequences spanning a jump target are left
// alone, and jump offsets are rewritten for the compacted stream.
func fuseBlock(code []linstr) []linstr {
	if len(code) < 2 {
		return code
	}
	isTarget := make([]bool, len(code)+1)
	for i := range code {
		if isJump(code[i].op) {
			isTarget[i+1+int(code[i].off)] = true
		}
	}
	out := make([]linstr, 0, len(code))
	olds := make([]int, 0, len(code)) // out position -> source position
	newIdx := make([]int, len(code)+1)
	for i := 0; i < len(code); {
		newIdx[i] = len(out)
		if f, n := matchFusion(code, i, isTarget); n > 0 {
			for j := 1; j < n; j++ {
				newIdx[i+j] = len(out)
			}
			out = append(out, f)
			olds = append(olds, i)
			i += n
			continue
		}
		out = append(out, code[i])
		olds = append(olds, i)
		i++
	}
	newIdx[len(code)] = len(out)
	for k := range out {
		if isJump(out[k].op) {
			target := olds[k] + 1 + int(out[k].off)
			out[k].off = int32(newIdx[target] - k - 1)
		}
	}
	return out
}

func isJump(op Op) bool {
	switch op {
	case OpJmp, OpJEq, OpJNe, OpJLt, OpJGe, OpJGt, OpJLe,
		OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm, OpJGtImm, OpJLeImm,
		lopLdJImm:
		return true
	}
	return false
}

// matchFusion recognizes a fusable sequence starting at i and returns its
// superinstruction and source length, or length 0. Register-aliasing
// guards keep the fused data flow identical to executing the sequence
// step by step.
func matchFusion(code []linstr, i int, isTarget []bool) (linstr, int) {
	a := code[i]
	if i+2 < len(code) && !isTarget[i+1] && !isTarget[i+2] &&
		a.op == OpMapLoad && a.rd != a.rs {
		b, c := code[i+1], code[i+2]
		storeMatches := c.op == OpMapStore && c.imm == a.imm && c.rs == a.rs && c.rt == a.rd
		if storeMatches && b.op == OpAddImm && b.rd == a.rd && b.imm <= 1<<31-1 {
			return linstr{op: lopMapInc, rd: a.rd, rs: a.rs, off: int32(b.imm), imm: a.imm}, 3
		}
		if storeMatches && b.op == OpAdd && b.rd == a.rd && b.rs != a.rd {
			return linstr{op: lopMapIncR, rd: a.rd, rs: a.rs, rt: b.rs, imm: a.imm}, 3
		}
	}
	if i+1 < len(code) && !isTarget[i+1] && a.op == OpLdField {
		b := code[i+1]
		if b.op == OpLdField {
			return linstr{op: lopLd2, rd: a.rd, rs: b.rd, off: int32(b.imm), imm: a.imm}, 2
		}
		if b.op == OpStField && b.rs == a.rd {
			return linstr{op: lopFldCp, rd: a.rd, off: int32(b.imm), imm: a.imm}, 2
		}
		// Load-and-branch: the compared register must be the one just
		// loaded, and both field ID and compare value must fit the packed
		// imm encoding (fid<<32|value). The absorbed jump sat at i+1, so
		// the stored offset is b.off+1 relative to the fused position;
		// fuseBlock's rewrite (olds[k]+1+off) then lands on the original
		// target.
		if b.op >= OpJEqImm && b.op <= OpJLeImm && b.rs == a.rd &&
			b.imm < 1<<32 && a.imm < 1<<31 {
			return linstr{op: lopLdJImm, rd: a.rd, rs: Reg(b.op), off: b.off + 1, imm: a.imm<<32 | b.imm}, 2
		}
	}
	if i+1 < len(code) && !isTarget[i+1] && (a.op == OpAddImm || a.op == OpSubImm) && a.imm <= 1<<31-1 {
		b := code[i+1]
		if b.op == OpStField && b.rs == a.rd {
			return linstr{op: lopAluSt, rd: a.rd, rs: Reg(a.op), off: int32(a.imm), imm: b.imm}, 2
		}
	}
	if i+1 < len(code) && !isTarget[i+1] && a.op == OpLdParam {
		b := code[i+1]
		if b.op == OpForward && b.rs == a.rd {
			return linstr{op: lopLdParamFwd, rd: a.rd, imm: a.imm}, 2
		}
	}
	return linstr{}, 0
}

func (lk *linker) emit(ins linstr) int {
	lk.lp.code = append(lk.lp.code, ins)
	return len(lk.lp.code) - 1
}

// patch sets the jump offset of the instruction at position at so it
// lands on target (offsets are relative to the next instruction).
func (lk *linker) patch(at, target int) {
	lk.lp.code[at].off = int32(target - at - 1)
}

func (lk *linker) lowerStmts(stmts []Stmt) error {
	for i := range stmts {
		s := &stmts[i]
		switch {
		case s.Apply != "":
			idx, err := lk.tableIndex(s.Apply)
			if err != nil {
				return err
			}
			lk.emit(linstr{op: lopApply, imm: uint64(idx)})
		case s.If != nil:
			ci := len(lk.lp.conds)
			lk.lp.conds = append(lk.lp.conds, *CompileCond(&s.If.Cond))
			br := lk.emit(linstr{op: lopBr, imm: uint64(ci)})
			if err := lk.lowerStmts(s.If.Then); err != nil {
				return err
			}
			if len(s.If.Else) > 0 {
				g := lk.emit(linstr{op: lopGoto})
				lk.patch(br, len(lk.lp.code))
				if err := lk.lowerStmts(s.If.Else); err != nil {
					return err
				}
				lk.patch(g, len(lk.lp.code))
			} else {
				lk.patch(br, len(lk.lp.code))
			}
		case s.Do != nil:
			code, err := lk.lowerBlock(s.Do, "do")
			if err != nil {
				return err
			}
			lk.emit(linstr{op: lopZero})
			for pc := range code {
				ins := code[pc]
				if ins.op == OpRet {
					// OpRet ends the block but not the pipeline; inlined,
					// that is a jump to the end of this block. OpJmp costs
					// one instruction, exactly as OpRet did.
					ins = linstr{op: OpJmp, off: int32(len(code) - pc - 1)}
				}
				lk.lp.code = append(lk.lp.code, ins)
			}
		}
	}
	return nil
}

func (lk *linker) tableIndex(name string) (int, error) {
	if idx, ok := lk.tblIdx[name]; ok {
		return idx, nil
	}
	spec := lk.prog.Table(name)
	if spec == nil {
		return 0, &linkError{lk.prog.Name, "pipeline", fmt.Sprintf("apply of undeclared table %q", name)}
	}
	ti := lk.tables(name)
	if ti == nil {
		return 0, &linkError{lk.prog.Name, "pipeline", fmt.Sprintf("no instance for table %q", name)}
	}
	lt := linkedTable{name: name, ti: ti, keyIDs: make([]packet.FieldID, len(spec.Keys))}
	for i, k := range spec.Keys {
		lt.keyIDs[i] = packet.InternField(k.Field)
	}
	if spec.DefaultAction != "" {
		j, ok := lk.lp.actIdx[spec.DefaultAction]
		if !ok {
			return 0, &linkError{lk.prog.Name, "table " + name, fmt.Sprintf("default action %q undefined", spec.DefaultAction)}
		}
		lt.missIdx = j + 1
		lt.missParams = spec.DefaultParams
	}
	idx := len(lk.lp.tables)
	lk.lp.tables = append(lk.lp.tables, lt)
	lk.tblIdx[name] = idx
	return idx, nil
}

// Run executes the linked program over pkt. It produces the same
// ExecResult (verdict, instruction count, lookup count) and the same
// packet/state effects as Interp.Run on the source program; ctx provides
// the reusable scratch that makes the steady-state path allocation-free.
func (lp *LinkedProgram) Run(pkt *packet.Packet, env LinkedEnv, ctx *ExecContext) (ExecResult, error) {
	return lp.RunWith(pkt, env, ctx, nil)
}

func (lp *LinkedProgram) exec(code []linstr, params []uint64, pkt *packet.Packet, env LinkedEnv, ctx *ExecContext, bs *BatchState, res *ExecResult) error {
	// No register prologue: every lowered block (inline Do and action
	// body alike) begins with lopZero, so stale scratch from a previous
	// frame is never observable.
	regs := &ctx.regs
	pc := 0
	// instrs shadows res.Instrs in a register for the hot loop; it is
	// flushed back at every frame exit and around action recursion so the
	// observable count is identical to the tree interpreter's.
	instrs := res.Instrs
	for pc < len(code) {
		ins := code[pc]
		pc++
		// Synthetic linker opcodes replace statement-tree walks; the tree
		// interpreter did not count those, so neither do they, and they
		// are exempt from the budget check below. One compare routes them
		// out of the hot dispatch.
		if ins.op > opMax {
			switch ins.op {
			case lopZero:
				*regs = [NumRegs]uint64{}
				continue
			case lopGoto:
				pc += int(ins.off)
				continue
			case lopBr:
				if !lp.conds[ins.imm].Eval(pkt) {
					pc += int(ins.off)
				}
				continue
			case lopLd2:
				if instrs >= MaxInstrs*4 {
					res.Instrs = instrs
					return &execError{lp.prog.Name, pc - 1, "instruction budget exhausted (unverified program?)"}
				}
				instrs += 2
				regs[ins.rd&regMask] = pkt.FieldByID(packet.FieldID(ins.imm))
				regs[ins.rs&regMask] = pkt.FieldByID(packet.FieldID(ins.off))
				continue
			case lopFldCp:
				if instrs >= MaxInstrs*4 {
					res.Instrs = instrs
					return &execError{lp.prog.Name, pc - 1, "instruction budget exhausted (unverified program?)"}
				}
				instrs += 2
				v := pkt.FieldByID(packet.FieldID(ins.imm))
				regs[ins.rd&regMask] = v
				pkt.SetFieldByID(packet.FieldID(ins.off), v)
				continue
			case lopMapInc, lopMapIncR:
				if instrs >= MaxInstrs*4 {
					res.Instrs = instrs
					return &execError{lp.prog.Name, pc - 1, "instruction budget exhausted (unverified program?)"}
				}
				instrs += 3
				k := regs[ins.rs&regMask]
				v, _ := env.MapLoadSlot(int(ins.imm), k)
				if ins.op == lopMapInc {
					v += uint64(ins.off)
				} else {
					v += regs[ins.rt&regMask]
				}
				regs[ins.rd&regMask] = v
				_ = env.MapStoreSlot(int(ins.imm), k, v)
				continue
			case lopLdJImm:
				if instrs >= MaxInstrs*4 {
					res.Instrs = instrs
					return &execError{lp.prog.Name, pc - 1, "instruction budget exhausted (unverified program?)"}
				}
				instrs += 2
				v := pkt.FieldByID(packet.FieldID(ins.imm >> 32))
				regs[ins.rd&regMask] = v
				if cmpImm(Op(ins.rs), v, ins.imm&(1<<32-1)) {
					pc += int(ins.off)
				}
				continue
			case lopAluSt:
				if instrs >= MaxInstrs*4 {
					res.Instrs = instrs
					return &execError{lp.prog.Name, pc - 1, "instruction budget exhausted (unverified program?)"}
				}
				instrs += 2
				v := regs[ins.rd&regMask]
				if Op(ins.rs) == OpAddImm {
					v += uint64(ins.off)
				} else {
					v -= uint64(ins.off)
				}
				regs[ins.rd&regMask] = v
				pkt.SetFieldByID(packet.FieldID(ins.imm), v)
				continue
			case lopLdParamFwd:
				if instrs >= MaxInstrs*4 {
					res.Instrs = instrs
					return &execError{lp.prog.Name, pc - 1, "instruction budget exhausted (unverified program?)"}
				}
				instrs += 2
				var v uint64
				if int(ins.imm) < len(params) {
					v = params[ins.imm]
				}
				regs[ins.rd&regMask] = v
				pkt.EgressPort = int(v)
				res.Instrs = instrs
				res.Verdict = packet.VerdictForward
				return nil
			}
			// lopApply
			t := &lp.tables[ins.imm]
			keys := ctx.keys[:0]
			for _, fid := range t.keyIDs {
				keys = append(keys, pkt.FieldByID(fid))
			}
			ctx.keys = keys
			res.Instrs = instrs
			res.Lookups++
			var e *TableEntry
			var hit bool
			if bs != nil {
				e, hit = bs.lookup(t.ti, keys)
			} else {
				e, hit = t.ti.LookupEntry(keys)
			}
			var idx int32
			var aparams []uint64
			if hit {
				idx = e.actIdx - 1
				aparams = e.Params
				if idx < 0 {
					if e.Action == "" {
						continue
					}
					j, ok := lp.actIdx[e.Action]
					if !ok {
						return &execError{lp.prog.Name, -1, fmt.Sprintf("table %q selected unknown action %q", t.name, e.Action)}
					}
					idx = j
				}
			} else {
				if t.missIdx == 0 {
					continue
				}
				idx = t.missIdx - 1
				aparams = t.missParams
			}
			if err := lp.exec(lp.actions[idx].code, aparams, pkt, env, ctx, bs, res); err != nil {
				return err
			}
			instrs = res.Instrs
			if res.Verdict != packet.VerdictContinue {
				return nil
			}
			continue
		}
		if instrs >= MaxInstrs*4 {
			res.Instrs = instrs
			return &execError{lp.prog.Name, pc - 1, "instruction budget exhausted (unverified program?)"}
		}
		instrs++
		switch ins.op {
		case OpNop:
		case OpMovImm:
			regs[ins.rd&regMask] = ins.imm
		case OpMov:
			regs[ins.rd&regMask] = regs[ins.rs&regMask]
		case OpLdField:
			regs[ins.rd&regMask] = pkt.FieldByID(packet.FieldID(ins.imm))
		case OpHasField:
			if _, ok := pkt.FieldOKByID(packet.FieldID(ins.imm)); ok {
				regs[ins.rd&regMask] = 1
			} else {
				regs[ins.rd&regMask] = 0
			}
		case OpStField:
			pkt.SetFieldByID(packet.FieldID(ins.imm), regs[ins.rs&regMask])
		case OpAddHdr:
			pkt.AddHeader(lp.hdrSyms[ins.imm])
		case OpRmHdr:
			pkt.RemoveHeader(lp.hdrSyms[ins.imm])
		case OpLdParam:
			if int(ins.imm) < len(params) {
				regs[ins.rd&regMask] = params[ins.imm]
			} else {
				regs[ins.rd&regMask] = 0
			}
		case OpAdd:
			regs[ins.rd&regMask] += regs[ins.rs&regMask]
		case OpSub:
			regs[ins.rd&regMask] -= regs[ins.rs&regMask]
		case OpMul:
			regs[ins.rd&regMask] *= regs[ins.rs&regMask]
		case OpDiv:
			if regs[ins.rs&regMask] == 0 {
				regs[ins.rd&regMask] = 0
			} else {
				regs[ins.rd&regMask] /= regs[ins.rs&regMask]
			}
		case OpMod:
			if regs[ins.rs&regMask] == 0 {
				regs[ins.rd&regMask] = 0
			} else {
				regs[ins.rd&regMask] %= regs[ins.rs&regMask]
			}
		case OpAnd:
			regs[ins.rd&regMask] &= regs[ins.rs&regMask]
		case OpOr:
			regs[ins.rd&regMask] |= regs[ins.rs&regMask]
		case OpXor:
			regs[ins.rd&regMask] ^= regs[ins.rs&regMask]
		case OpShl:
			regs[ins.rd&regMask] <<= regs[ins.rs&regMask] & 63
		case OpShr:
			regs[ins.rd&regMask] >>= regs[ins.rs&regMask] & 63
		case OpMin:
			if regs[ins.rs&regMask] < regs[ins.rd&regMask] {
				regs[ins.rd&regMask] = regs[ins.rs&regMask]
			}
		case OpMax:
			if regs[ins.rs&regMask] > regs[ins.rd&regMask] {
				regs[ins.rd&regMask] = regs[ins.rs&regMask]
			}
		case OpAddImm:
			regs[ins.rd&regMask] += ins.imm
		case OpSubImm:
			regs[ins.rd&regMask] -= ins.imm
		case OpMulImm:
			regs[ins.rd&regMask] *= ins.imm
		case OpAndImm:
			regs[ins.rd&regMask] &= ins.imm
		case OpOrImm:
			regs[ins.rd&regMask] |= ins.imm
		case OpXorImm:
			regs[ins.rd&regMask] ^= ins.imm
		case OpShlImm:
			regs[ins.rd&regMask] <<= ins.imm & 63
		case OpShrImm:
			regs[ins.rd&regMask] >>= ins.imm & 63
		case OpMapLoad:
			v, _ := env.MapLoadSlot(int(ins.imm), regs[ins.rs&regMask])
			regs[ins.rd&regMask] = v
		case OpMapHas:
			if _, ok := env.MapLoadSlot(int(ins.imm), regs[ins.rs&regMask]); ok {
				regs[ins.rd&regMask] = 1
			} else {
				regs[ins.rd&regMask] = 0
			}
		case OpMapStore:
			// Store failures (map full) are silent at the data plane,
			// matching hardware insert-miss semantics.
			_ = env.MapStoreSlot(int(ins.imm), regs[ins.rs&regMask], regs[ins.rt&regMask])
		case OpMapDelete:
			env.MapDeleteSlot(int(ins.imm), regs[ins.rs&regMask])
		case OpHash:
			regs[ins.rd&regMask] = fnv64(regs[ins.rs&regMask])
		case OpFlowHash:
			regs[ins.rd&regMask] = pkt.FlowKey().Hash()
		case OpNow:
			regs[ins.rd&regMask] = env.Now()
		case OpRand:
			regs[ins.rd&regMask] = env.Rand()
		case OpPktLen:
			regs[ins.rd&regMask] = uint64(pkt.Len())
		case OpCount:
			env.CounterAddSlot(int(ins.imm), regs[ins.rs&regMask], regs[ins.rt&regMask])
		case OpMeterExec:
			regs[ins.rd&regMask] = env.MeterExecSlot(int(ins.imm), regs[ins.rs&regMask], regs[ins.rt&regMask])
		case OpJmp:
			pc += int(ins.off)
		case OpJEq, OpJNe, OpJLt, OpJGe, OpJGt, OpJLe:
			if cmpRegs(ins.op, regs[ins.rs&regMask], regs[ins.rt&regMask]) {
				pc += int(ins.off)
			}
		case OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm, OpJGtImm, OpJLeImm:
			if cmpImm(ins.op, regs[ins.rs&regMask], ins.imm) {
				pc += int(ins.off)
			}
		case OpDrop:
			res.Instrs = instrs
			res.Verdict = packet.VerdictDrop
			return nil
		case OpForward:
			pkt.EgressPort = int(regs[ins.rs&regMask])
			res.Instrs = instrs
			res.Verdict = packet.VerdictForward
			return nil
		case OpPunt:
			res.Instrs = instrs
			res.Verdict = packet.VerdictToController
			return nil
		case OpRecirc:
			res.Instrs = instrs
			res.Verdict = packet.VerdictRecirculate
			return nil
		case OpRet:
			res.Instrs = instrs
			return nil
		default:
			res.Instrs = instrs
			return &execError{lp.prog.Name, pc - 1, fmt.Sprintf("illegal opcode %d", ins.op)}
		}
	}
	res.Instrs = instrs
	return nil
}
