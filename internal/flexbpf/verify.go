package flexbpf

import (
	"fmt"
	"strings"
)

// VerifyError describes a verification failure with its location.
type VerifyError struct {
	Program string
	Where   string
	PC      int
	Msg     string
}

func (e *VerifyError) Error() string {
	if e.PC >= 0 {
		return fmt.Sprintf("flexbpf: verify %s/%s pc=%d: %s", e.Program, e.Where, e.PC, e.Msg)
	}
	return fmt.Sprintf("flexbpf: verify %s/%s: %s", e.Program, e.Where, e.Msg)
}

// Verify checks a program against FlexBPF's static safety rules (§3.1:
// "FlexBPF programs are analyzable to certify bounded execution,
// well-behavedness, and to enable automated compilation to constrained
// targets"). The rules are:
//
//  1. Bounded execution: all jumps are strictly forward and in-bounds,
//     and no block exceeds MaxInstrs instructions, so per-packet work is
//     statically bounded.
//  2. Register safety: every register is written before it is read.
//  3. Reference integrity: every map, counter, meter, table, action,
//     header, and action-parameter reference resolves within the program.
//  4. Structural sanity: table key/action declarations are well formed;
//     pipeline applies name declared tables; no duplicate names.
//
// A nil return certifies the program safe for any conforming device.
func Verify(p *Program) error {
	if p.Name == "" {
		return &VerifyError{"?", "program", -1, "program has no name"}
	}
	if err := verifyDecls(p); err != nil {
		return err
	}
	// Verify actions.
	for name, act := range p.Actions {
		if name != act.Name {
			return &VerifyError{p.Name, "action " + name, -1, "map key and action name disagree"}
		}
		if err := verifyBlock(p, "action "+name, act.Body, act.NumParams); err != nil {
			return err
		}
	}
	// Verify pipeline.
	return verifyStmts(p, "pipeline", p.Pipeline)
}

func verifyDecls(p *Program) error {
	seen := map[string]string{} // name → kind
	claim := func(kind, name string) error {
		if name == "" {
			return &VerifyError{p.Name, kind, -1, "empty name"}
		}
		if prev, dup := seen[name]; dup {
			return &VerifyError{p.Name, kind + " " + name, -1, "name already used by " + prev}
		}
		seen[name] = kind
		return nil
	}
	for _, m := range p.Maps {
		if err := claim("map", m.Name); err != nil {
			return err
		}
		if m.MaxEntries <= 0 {
			return &VerifyError{p.Name, "map " + m.Name, -1, "MaxEntries must be positive"}
		}
		if m.ValueBits <= 0 || m.ValueBits > 64 {
			return &VerifyError{p.Name, "map " + m.Name, -1, fmt.Sprintf("ValueBits %d out of range (1..64)", m.ValueBits)}
		}
	}
	for _, c := range p.Counters {
		if err := claim("counter", c.Name); err != nil {
			return err
		}
		if c.Size <= 0 {
			return &VerifyError{p.Name, "counter " + c.Name, -1, "Size must be positive"}
		}
	}
	for _, m := range p.Meters {
		if err := claim("meter", m.Name); err != nil {
			return err
		}
		if m.Size <= 0 {
			return &VerifyError{p.Name, "meter " + m.Name, -1, "Size must be positive"}
		}
		if m.PIR < m.CIR {
			return &VerifyError{p.Name, "meter " + m.Name, -1, "PIR below CIR"}
		}
	}
	for _, t := range p.Tables {
		if err := claim("table", t.Name); err != nil {
			return err
		}
		if len(t.Keys) == 0 {
			return &VerifyError{p.Name, "table " + t.Name, -1, "table has no keys"}
		}
		if t.Size <= 0 {
			return &VerifyError{p.Name, "table " + t.Name, -1, "Size must be positive"}
		}
		for _, k := range t.Keys {
			if !validFieldName(k.Field) {
				return &VerifyError{p.Name, "table " + t.Name, -1, fmt.Sprintf("malformed key field %q", k.Field)}
			}
			if k.Bits < 0 || k.Bits > 64 {
				return &VerifyError{p.Name, "table " + t.Name, -1, fmt.Sprintf("key %s width %d out of range", k.Field, k.Bits)}
			}
		}
		if len(t.Actions) == 0 && t.DefaultAction == "" {
			return &VerifyError{p.Name, "table " + t.Name, -1, "table has no actions and no default"}
		}
		for _, a := range t.Actions {
			if _, ok := p.Actions[a]; !ok {
				return &VerifyError{p.Name, "table " + t.Name, -1, fmt.Sprintf("references undefined action %q", a)}
			}
		}
		if t.DefaultAction != "" {
			da, ok := p.Actions[t.DefaultAction]
			if !ok {
				return &VerifyError{p.Name, "table " + t.Name, -1, fmt.Sprintf("default action %q undefined", t.DefaultAction)}
			}
			if len(t.DefaultParams) < da.NumParams {
				return &VerifyError{p.Name, "table " + t.Name, -1,
					fmt.Sprintf("default action %q needs %d params, have %d", t.DefaultAction, da.NumParams, len(t.DefaultParams))}
			}
		}
	}
	return nil
}

func verifyStmts(p *Program, where string, stmts []Stmt) error {
	for i, s := range stmts {
		set := 0
		if s.Apply != "" {
			set++
		}
		if s.If != nil {
			set++
		}
		if s.Do != nil {
			set++
		}
		if set != 1 {
			return &VerifyError{p.Name, where, i, fmt.Sprintf("statement must set exactly one of Apply/If/Do, has %d", set)}
		}
		switch {
		case s.Apply != "":
			if p.Table(s.Apply) == nil {
				return &VerifyError{p.Name, where, i, fmt.Sprintf("apply of undeclared table %q", s.Apply)}
			}
		case s.If != nil:
			c := s.If.Cond
			if c.HasHeader == "" && !validFieldName(c.Field) {
				return &VerifyError{p.Name, where, i, fmt.Sprintf("if condition has malformed field %q", c.Field)}
			}
			if c.OtherField != "" && !validFieldName(c.OtherField) {
				return &VerifyError{p.Name, where, i, fmt.Sprintf("if condition has malformed other field %q", c.OtherField)}
			}
			sub := fmt.Sprintf("%s/if[%d]", where, i)
			if err := verifyStmts(p, sub+"/then", s.If.Then); err != nil {
				return err
			}
			if err := verifyStmts(p, sub+"/else", s.If.Else); err != nil {
				return err
			}
		case s.Do != nil:
			if err := verifyBlock(p, fmt.Sprintf("%s/do[%d]", where, i), s.Do, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// opClass describes operand usage for register-safety analysis.
type opClass struct {
	readsRs, readsRt, readsRd bool
	writesRd                  bool
	sym                       symKind
	jump                      bool
	terminal                  bool
}

type symKind uint8

const (
	symNone symKind = iota
	symField
	symHeader
	symMap
	symCounter
	symMeter
)

var opClasses = map[Op]opClass{
	OpNop:      {},
	OpMovImm:   {writesRd: true},
	OpMov:      {readsRs: true, writesRd: true},
	OpLdField:  {writesRd: true, sym: symField},
	OpHasField: {writesRd: true, sym: symField},
	OpStField:  {readsRs: true, sym: symField},
	OpAddHdr:   {sym: symHeader},
	OpRmHdr:    {sym: symHeader},
	OpLdParam:  {writesRd: true},

	OpAdd: {readsRs: true, readsRd: true, writesRd: true},
	OpSub: {readsRs: true, readsRd: true, writesRd: true},
	OpMul: {readsRs: true, readsRd: true, writesRd: true},
	OpDiv: {readsRs: true, readsRd: true, writesRd: true},
	OpMod: {readsRs: true, readsRd: true, writesRd: true},
	OpAnd: {readsRs: true, readsRd: true, writesRd: true},
	OpOr:  {readsRs: true, readsRd: true, writesRd: true},
	OpXor: {readsRs: true, readsRd: true, writesRd: true},
	OpShl: {readsRs: true, readsRd: true, writesRd: true},
	OpShr: {readsRs: true, readsRd: true, writesRd: true},
	OpMin: {readsRs: true, readsRd: true, writesRd: true},
	OpMax: {readsRs: true, readsRd: true, writesRd: true},

	OpAddImm: {readsRd: true, writesRd: true},
	OpSubImm: {readsRd: true, writesRd: true},
	OpMulImm: {readsRd: true, writesRd: true},
	OpAndImm: {readsRd: true, writesRd: true},
	OpOrImm:  {readsRd: true, writesRd: true},
	OpXorImm: {readsRd: true, writesRd: true},
	OpShlImm: {readsRd: true, writesRd: true},
	OpShrImm: {readsRd: true, writesRd: true},

	OpMapLoad:   {readsRs: true, writesRd: true, sym: symMap},
	OpMapHas:    {readsRs: true, writesRd: true, sym: symMap},
	OpMapStore:  {readsRs: true, readsRt: true, sym: symMap},
	OpMapDelete: {readsRs: true, sym: symMap},

	OpHash:     {readsRs: true, writesRd: true},
	OpFlowHash: {writesRd: true},
	OpNow:      {writesRd: true},
	OpRand:     {writesRd: true},
	OpPktLen:   {writesRd: true},

	OpCount:     {readsRs: true, readsRt: true, sym: symCounter},
	OpMeterExec: {readsRs: true, readsRt: true, writesRd: true, sym: symMeter},

	OpJmp:    {jump: true},
	OpJEq:    {readsRs: true, readsRt: true, jump: true},
	OpJNe:    {readsRs: true, readsRt: true, jump: true},
	OpJLt:    {readsRs: true, readsRt: true, jump: true},
	OpJGe:    {readsRs: true, readsRt: true, jump: true},
	OpJGt:    {readsRs: true, readsRt: true, jump: true},
	OpJLe:    {readsRs: true, readsRt: true, jump: true},
	OpJEqImm: {readsRs: true, jump: true},
	OpJNeImm: {readsRs: true, jump: true},
	OpJLtImm: {readsRs: true, jump: true},
	OpJGeImm: {readsRs: true, jump: true},
	OpJGtImm: {readsRs: true, jump: true},
	OpJLeImm: {readsRs: true, jump: true},

	OpDrop:    {terminal: true},
	OpForward: {readsRs: true, terminal: true},
	OpPunt:    {terminal: true},
	OpRecirc:  {terminal: true},
	OpRet:     {terminal: true},
}

func verifyBlock(p *Program, where string, code []Instr, numParams int) error {
	if len(code) > MaxInstrs {
		return &VerifyError{p.Name, where, -1, fmt.Sprintf("block has %d instructions, max %d", len(code), MaxInstrs)}
	}
	// Register initialization: a bitmask dataflow pass. Because jumps are
	// forward-only, a single forward sweep that intersects initialization
	// sets at join points is sound.
	const allRegs = 1<<NumRegs - 1
	// initAt[i] = set of registers definitely initialized when reaching i.
	initAt := make([]uint32, len(code)+1)
	reachable := make([]bool, len(code)+1)
	for i := range initAt {
		initAt[i] = allRegs // ⊤ until proven otherwise
	}
	if len(code) == 0 {
		return nil
	}
	initAt[0] = 0
	reachable[0] = true

	join := func(idx int, set uint32) {
		if idx < 0 || idx > len(code) {
			return
		}
		if !reachable[idx] {
			reachable[idx] = true
			initAt[idx] = set
		} else {
			initAt[idx] &= set
		}
	}

	for pc := 0; pc < len(code); pc++ {
		ins := &code[pc]
		cls, ok := opClasses[ins.Op]
		if !ok {
			return &VerifyError{p.Name, where, pc, fmt.Sprintf("illegal opcode %d", ins.Op)}
		}
		if !reachable[pc] {
			// Unreachable code is rejected: it wastes device resources and
			// usually signals a delta-application bug.
			return &VerifyError{p.Name, where, pc, "unreachable instruction"}
		}
		if err := checkOperands(p, where, pc, ins, cls, numParams); err != nil {
			return err
		}
		set := initAt[pc]
		if cls.readsRd && set&(1<<ins.Rd) == 0 {
			return &VerifyError{p.Name, where, pc, fmt.Sprintf("read of uninitialized register r%d", ins.Rd)}
		}
		if cls.readsRs && set&(1<<ins.Rs) == 0 {
			return &VerifyError{p.Name, where, pc, fmt.Sprintf("read of uninitialized register r%d", ins.Rs)}
		}
		if cls.readsRt && set&(1<<ins.Rt) == 0 {
			return &VerifyError{p.Name, where, pc, fmt.Sprintf("read of uninitialized register r%d", ins.Rt)}
		}
		if cls.writesRd {
			set |= 1 << ins.Rd
		}
		if cls.jump {
			if ins.Off < 0 {
				return &VerifyError{p.Name, where, pc, fmt.Sprintf("backward jump (off=%d): bounded execution requires forward-only control flow", ins.Off)}
			}
			target := pc + 1 + int(ins.Off)
			if target > len(code) {
				return &VerifyError{p.Name, where, pc, fmt.Sprintf("jump target %d beyond block end %d", target, len(code))}
			}
			join(target, set)
			if ins.Op != OpJmp {
				join(pc+1, set) // fallthrough
			}
			continue
		}
		if cls.terminal {
			continue // no successor
		}
		join(pc+1, set)
	}
	return nil
}

func checkOperands(p *Program, where string, pc int, ins *Instr, cls opClass, numParams int) error {
	if ins.Rd >= NumRegs || ins.Rs >= NumRegs || ins.Rt >= NumRegs {
		return &VerifyError{p.Name, where, pc, "register index out of range"}
	}
	switch cls.sym {
	case symField:
		if !validFieldName(ins.Sym) {
			return &VerifyError{p.Name, where, pc, fmt.Sprintf("malformed field name %q", ins.Sym)}
		}
	case symHeader:
		if ins.Sym == "" || strings.Contains(ins.Sym, ".") {
			return &VerifyError{p.Name, where, pc, fmt.Sprintf("malformed header name %q", ins.Sym)}
		}
	case symMap:
		if p.Map(ins.Sym) == nil {
			return &VerifyError{p.Name, where, pc, fmt.Sprintf("reference to undeclared map %q", ins.Sym)}
		}
	case symCounter:
		if p.Counter(ins.Sym) == nil {
			return &VerifyError{p.Name, where, pc, fmt.Sprintf("reference to undeclared counter %q", ins.Sym)}
		}
	case symMeter:
		if p.Meter(ins.Sym) == nil {
			return &VerifyError{p.Name, where, pc, fmt.Sprintf("reference to undeclared meter %q", ins.Sym)}
		}
	}
	if ins.Op == OpLdParam && int(ins.Imm) >= numParams {
		return &VerifyError{p.Name, where, pc, fmt.Sprintf("param %d out of range (action declares %d)", ins.Imm, numParams)}
	}
	return nil
}

// validFieldName requires the "header.field" shape with nonempty parts.
func validFieldName(s string) bool {
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return false
	}
	if strings.IndexByte(s[dot+1:], '.') >= 0 {
		return false
	}
	return true
}

// MaxBlockInstrs returns the worst-case instruction count of a verified
// block: with forward-only jumps it is simply the block length.
func MaxBlockInstrs(code []Instr) int { return len(code) }

// WorstCaseInstrs bounds per-packet instructions for the whole program:
// the sum over pipeline Do blocks and the maximum action body of each
// applied table (the verifier guarantees each block runs at most once
// per packet per application).
func WorstCaseInstrs(p *Program) int {
	total := 0
	walkStmts(p.Pipeline, func(s *Stmt) {
		switch {
		case s.Do != nil:
			total += len(s.Do)
		case s.Apply != "":
			t := p.Table(s.Apply)
			if t == nil {
				return
			}
			max := 0
			for _, a := range t.Actions {
				if act := p.Actions[a]; act != nil && len(act.Body) > max {
					max = len(act.Body)
				}
			}
			if t.DefaultAction != "" {
				if act := p.Actions[t.DefaultAction]; act != nil && len(act.Body) > max {
					max = len(act.Body)
				}
			}
			total += max
		}
	})
	return total
}
