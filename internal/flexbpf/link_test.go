package flexbpf

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"flexnet/internal/packet"
)

// linkedTestEnv adapts testEnv to LinkedEnv by translating slots back to
// names via the linked program's slot lists, so linked and unlinked runs
// share one storage implementation.
type linkedTestEnv struct {
	*testEnv
	lp *LinkedProgram
}

func (e *linkedTestEnv) MapLoadSlot(slot int, k uint64) (uint64, bool) {
	return e.MapLoad(e.lp.MapSlots()[slot], k)
}
func (e *linkedTestEnv) MapStoreSlot(slot int, k, v uint64) error {
	return e.MapStore(e.lp.MapSlots()[slot], k, v)
}
func (e *linkedTestEnv) MapDeleteSlot(slot int, k uint64) {
	e.MapDelete(e.lp.MapSlots()[slot], k)
}
func (e *linkedTestEnv) CounterAddSlot(slot int, i, d uint64) {
	e.CounterAdd(e.lp.CounterSlots()[slot], i, d)
}
func (e *linkedTestEnv) MeterExecSlot(slot int, i, b uint64) uint64 {
	return e.MeterExec(e.lp.MeterSlots()[slot], i, b)
}

// linkForTest links prog against fresh table instances carrying the given
// entries, returning the linked program and its LinkedEnv.
func linkForTest(t *testing.T, prog *Program, entries map[string][]*TableEntry) (*LinkedProgram, *linkedTestEnv) {
	t.Helper()
	env := newTestEnv()
	for _, spec := range prog.Tables {
		env.tables[spec.Name] = NewTableInstance(spec)
	}
	lp, err := Link(prog, func(name string) *TableInstance { return env.tables[name] })
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	for _, ti := range env.tables {
		ti.SetActionResolver(lp.ActionIndex)
	}
	for name, es := range entries {
		for _, e := range es {
			if err := env.tables[name].Insert(e); err != nil {
				t.Fatalf("insert into %s: %v", name, err)
			}
		}
	}
	return lp, &linkedTestEnv{env, lp}
}

// checkEquivalence runs the same packet stream through the tree
// interpreter and the linked engine (each against its own copy of the
// state) and requires identical results: verdicts, instruction and
// lookup counts (the latency model feeds on them, so they gate
// simulation determinism), packet contents, and final env state.
func checkEquivalence(t *testing.T, prog *Program, entries map[string][]*TableEntry, mkPkt func(uint64) *packet.Packet, n int) {
	t.Helper()
	if err := Verify(prog); err != nil {
		t.Fatalf("verify: %v", err)
	}
	envA := newTestEnv()
	for _, spec := range prog.Tables {
		envA.tables[spec.Name] = NewTableInstance(spec)
	}
	for name, es := range entries {
		for _, e := range es {
			ec := *e
			ec.Match = append([]MatchValue(nil), e.Match...)
			if err := envA.tables[name].Insert(&ec); err != nil {
				t.Fatalf("insert into %s: %v", name, err)
			}
		}
	}
	lp, envB := linkForTest(t, prog, entries)
	ctx := NewExecContext()
	for i := 0; i < n; i++ {
		pa, pb := mkPkt(uint64(i)), mkPkt(uint64(i))
		ra, errA := Interp{}.Run(prog, pa, envA)
		rb, errB := lp.Run(pb, envB, ctx)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("pkt %d: error divergence: tree=%v linked=%v", i, errA, errB)
		}
		if ra != rb {
			t.Fatalf("pkt %d: result divergence: tree=%+v linked=%+v", i, ra, rb)
		}
		if pa.String() != pb.String() {
			t.Fatalf("pkt %d: packet divergence:\ntree:   %s\nlinked: %s", i, pa, pb)
		}
		if pa.EgressPort != pb.EgressPort {
			t.Fatalf("pkt %d: egress divergence: %d vs %d", i, pa.EgressPort, pb.EgressPort)
		}
	}
	if !reflect.DeepEqual(envA.maps, envB.maps) {
		t.Fatalf("map state divergence:\ntree:   %v\nlinked: %v", envA.maps, envB.maps)
	}
	if !reflect.DeepEqual(envA.counters, envB.counters) {
		t.Fatalf("counter state divergence:\ntree:   %v\nlinked: %v", envA.counters, envB.counters)
	}
	for name, ta := range envA.tables {
		ha, ma := ta.Stats()
		hb, mb := envB.tables[name].Stats()
		if ha != hb || ma != mb {
			t.Fatalf("table %s stats divergence: tree=%d/%d linked=%d/%d", name, ha, ma, hb, mb)
		}
	}
}

func TestLinkedEquivalenceACL(t *testing.T) {
	prog := aclProgram(t)
	entries := map[string][]*TableEntry{
		"acl": {
			{
				Priority: 10,
				Match: []MatchValue{
					{Value: uint64(packet.IP(10, 0, 0, 0)), Mask: 0xFF000000},
					{Value: 80},
				},
				Action: "allow",
				Params: []uint64{3},
			},
		},
	}
	checkEquivalence(t, prog, entries, func(i uint64) *packet.Packet {
		src := packet.IP(byte(9+i%3), 1, 2, byte(i))
		return packet.TCPPacket(i, src, packet.IP(192, 168, 0, 1), uint16(1000+i), uint16(80+i%2*363), 0, int(i%512))
	}, 64)
}

// controlFlowProgram exercises every lowered construct: nested If/Else,
// inline Do blocks with mid-block OpRet and forward jumps, an exact
// table with a default action, map has/delete, meter, counter, and
// header ops.
func controlFlowProgram(t *testing.T) *Program {
	t.Helper()
	classify := NewAsm().
		LdField(0, "ipv4.src").
		Hash(1, 0).
		AndImm(1, 255).
		MapHas(2, "seen", 1).
		JEqImm(2, 1, "old").
		MovImm(3, 1).
		MapStore("seen", 1, 3).
		Ret(). // mid-block return: lowered to a jump over the tail
		Label("old").
		MapDelete("seen", 1).
		MustBuild()
	meterDo := NewAsm().
		LdField(0, "ipv4.len").
		MovImm(1, 0).
		MeterExec(2, "m", 1, 0).
		StField("meta.color", 2).
		MovImm(4, 1).
		Count("hits", 1, 4).
		MustBuild()
	mark := NewAsm().
		LdParam(0, 0).
		StField("ipv4.dscp", 0).
		AddHdr("int").
		MustBuild()
	slowpath := NewAsm().Punt().MustBuild()
	prog, err := NewProgram("ctl").
		HashMap("seen", 512, 64).
		Counter("hits", 4).
		Meter("m", 2, 1000, 2000, 1500, 3000).
		Action("mark", 1, mark).
		Action("slowpath", 0, slowpath).
		Table(&TableSpec{
			Name:          "route",
			Keys:          []TableKey{{Field: "ipv4.dst", Kind: MatchExact, Bits: 32}},
			Actions:       []string{"mark"},
			DefaultAction: "slowpath",
			Size:          128,
		}).
		Do(classify).
		If(Cond{Field: "ipv4.proto", Op: CmpEq, Value: packet.ProtoTCP},
			[]Stmt{
				{If: &IfStmt{
					Cond: Cond{Field: "tcp.dport", Op: CmpLt, Value: 1024},
					Then: []Stmt{{Apply: "route"}},
					Else: []Stmt{{Do: meterDo}},
				}},
			},
			[]Stmt{{Do: NewAsm().MovImm(0, 7).StField("meta.class", 0).MustBuild()}},
		).
		Do(NewAsm().LdField(0, "meta.class").AddImm(0, 1).StField("meta.class", 0).MustBuild()).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

func TestLinkedEquivalenceControlFlow(t *testing.T) {
	prog := controlFlowProgram(t)
	entries := map[string][]*TableEntry{
		"route": {
			ExactEntry("mark", []uint64{11}, uint64(packet.IP(2, 0, 0, 1))),
			ExactEntry("mark", []uint64{22}, uint64(packet.IP(2, 0, 0, 2))),
		},
	}
	checkEquivalence(t, prog, entries, func(i uint64) *packet.Packet {
		dst := packet.IP(2, 0, 0, byte(i%4))
		if i%5 == 0 {
			return packet.UDPPacket(i, packet.IP(1, 1, 1, 1), dst, 53, 53, int(i%256))
		}
		return packet.TCPPacket(i, packet.IP(1, 1, 1, byte(i)), dst, uint16(i), uint16(i%2048), packet.TCPSyn, int(i%256))
	}, 128)
}

func TestLinkedEquivalenceLPM(t *testing.T) {
	fwd := NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	prog, err := NewProgram("lpm").
		Action("fwd", 1, fwd).
		Table(&TableSpec{
			Name:    "rib",
			Keys:    []TableKey{{Field: "ipv4.dst", Kind: MatchLPM, Bits: 32}},
			Actions: []string{"fwd"},
			Size:    64,
		}).
		Apply("rib").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	entries := map[string][]*TableEntry{
		"rib": {
			LPMEntry("fwd", []uint64{1}, uint64(packet.IP(10, 0, 0, 0)), 8),
			LPMEntry("fwd", []uint64{2}, uint64(packet.IP(10, 1, 0, 0)), 16),
			LPMEntry("fwd", []uint64{3}, 0, 0),
		},
	}
	checkEquivalence(t, prog, entries, func(i uint64) *packet.Packet {
		dst := packet.IP(byte(9+i%2), byte(i%3), 0, 1)
		return packet.TCPPacket(i, packet.IP(1, 2, 3, 4), dst, 1, 2, 0, 0)
	}, 32)
}

// TestLinkedInstrCountsExact pins down the count parity rules: synthetic
// linker opcodes cost zero instructions and an inlined OpRet costs one,
// so linked Instrs/Lookups match the tree interpreter exactly.
func TestLinkedInstrCountsExact(t *testing.T) {
	prog := controlFlowProgram(t)
	entries := map[string][]*TableEntry{
		"route": {ExactEntry("mark", []uint64{11}, uint64(packet.IP(2, 0, 0, 1)))},
	}
	lp, env := linkForTest(t, prog, entries)
	ctx := NewExecContext()
	// TCP dport<1024 with a route hit: classify runs 8 instructions on
	// first sight of a flow (the inlined mid-block Ret counts as one,
	// exactly as the tree interpreter counts it), mark runs 3, the
	// trailing Do runs 3. The synthetic lowering opcodes count zero.
	pkt := packet.TCPPacket(1, packet.IP(1, 1, 1, 1), packet.IP(2, 0, 0, 1), 9, 80, 0, 64)
	res, err := lp.Run(pkt, env, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs != 8+3+3 || res.Lookups != 1 {
		t.Fatalf("instrs=%d lookups=%d, want 14/1", res.Instrs, res.Lookups)
	}
	// Same flow again: classify takes the "old" path (6 instrs: the
	// Ret-as-jump path is skipped, MapDelete runs instead, no Ret).
	pkt2 := packet.TCPPacket(2, packet.IP(1, 1, 1, 1), packet.IP(2, 0, 0, 1), 9, 80, 0, 64)
	res2, err := lp.Run(pkt2, env, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Instrs != 6+3+3 {
		t.Fatalf("second pass instrs=%d, want 12", res2.Instrs)
	}
}

// TestLinkedRunAllocFree proves the steady-state linked packet path
// performs zero allocations.
func TestLinkedRunAllocFree(t *testing.T) {
	prog := controlFlowProgram(t)
	entries := map[string][]*TableEntry{
		"route": {ExactEntry("mark", []uint64{11}, uint64(packet.IP(2, 0, 0, 1)))},
	}
	lp, env := linkForTest(t, prog, entries)
	ctx := NewExecContext()
	pkt := packet.TCPPacket(1, packet.IP(1, 1, 1, 1), packet.IP(2, 0, 0, 1), 9, 80, 0, 64)
	// Warm once: first run grows the key scratch and seeds the map.
	if _, err := lp.Run(pkt, env, ctx); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := lp.Run(pkt, env, ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("linked run allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTableLookupAllocFree proves exact lookup allocates nothing (the
// key is hashed word-wise; no string key is built).
func TestTableLookupAllocFree(t *testing.T) {
	spec := &TableSpec{
		Name: "t",
		Keys: []TableKey{{Field: "ipv4.dst", Kind: MatchExact, Bits: 32}},
		Size: 1 << 12,
	}
	ti := NewTableInstance(spec)
	for i := 0; i < 1000; i++ {
		if err := ti.Insert(ExactEntry("a", nil, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	keys := []uint64{0}
	allocs := testing.AllocsPerRun(200, func() {
		keys[0] = 42
		if _, _, hit := ti.Lookup(keys); !hit {
			t.Fatal("expected hit")
		}
		keys[0] = 1 << 20
		if _, _, hit := ti.Lookup(keys); hit {
			t.Fatal("expected miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("lookup allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestLinkFailureFallsBack verifies Link rejects unresolved symbols so
// callers can fall back to the tree interpreter, which keeps its own
// semantics for the same program.
func TestLinkFailureFallsBack(t *testing.T) {
	prog, err := NewProgram("bad").
		Action("noop", 0, NewAsm().Ret().MustBuild()).
		Table(&TableSpec{
			Name:    "t",
			Keys:    []TableKey{{Field: "ipv4.dst", Kind: MatchExact, Bits: 32}},
			Actions: []string{"noop"},
			Size:    8,
		}).
		Apply("t").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Link(prog, func(string) *TableInstance { return nil }); err == nil {
		t.Fatal("link with missing table instance should fail")
	}
	// The unlinked interpreter still runs the program.
	env := newTestEnv()
	env.tables["t"] = NewTableInstance(prog.Table("t"))
	pkt := packet.TCPPacket(1, 1, 2, 3, 4, 0, 0)
	if _, err := (Interp{}).Run(prog, pkt, env); err != nil {
		t.Fatalf("tree interpreter: %v", err)
	}

	// An undeclared map reference is caught by Verify at build time, so
	// hand-assemble the program to prove the linker rejects it on its own.
	undeclared := NewAsm().MovImm(0, 1).MapStore("ghost", 0, 0).MustBuild()
	prog2 := &Program{Name: "bad2", Pipeline: []Stmt{{Do: undeclared}}}
	if _, err := Link(prog2, func(string) *TableInstance { return nil }); err == nil {
		t.Fatal("link with undeclared map should fail")
	}
}

// TestLinkedDefaultActionOnMiss checks the miss path runs the resolved
// default action with the spec's default params.
func TestLinkedDefaultActionOnMiss(t *testing.T) {
	fwd := NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	prog, err := NewProgram("def").
		Action("fwd", 1, fwd).
		Table(&TableSpec{
			Name:          "t",
			Keys:          []TableKey{{Field: "ipv4.dst", Kind: MatchExact, Bits: 32}},
			Actions:       []string{"fwd"},
			DefaultAction: "fwd",
			DefaultParams: []uint64{9},
			Size:          8,
		}).
		Apply("t").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	lp, env := linkForTest(t, prog, nil)
	pkt := packet.TCPPacket(1, 1, 2, 3, 4, 0, 0)
	res, err := lp.Run(pkt, env, NewExecContext())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != packet.VerdictForward || pkt.EgressPort != 9 {
		t.Fatalf("miss default: verdict=%v egress=%d", res.Verdict, pkt.EgressPort)
	}
	if h, m := env.tables["t"].Stats(); h != 0 || m != 1 {
		t.Fatalf("stats = %d/%d, want 0/1", h, m)
	}
}

// TestLinkedEntriesInsertedAfterLink checks entries installed after
// linking (the normal control-plane flow) carry resolved action indexes.
func TestLinkedEntriesInsertedAfterLink(t *testing.T) {
	fwd := NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	prog, err := NewProgram("late").
		Action("fwd", 1, fwd).
		Table(&TableSpec{
			Name:    "t",
			Keys:    []TableKey{{Field: "ipv4.dst", Kind: MatchExact, Bits: 32}},
			Actions: []string{"fwd"},
			Size:    8,
		}).
		Apply("t").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	lp, env := linkForTest(t, prog, nil)
	if err := env.tables["t"].Insert(ExactEntry("fwd", []uint64{5}, 2)); err != nil {
		t.Fatal(err)
	}
	pkt := packet.TCPPacket(1, 1, 2, 3, 4, 0, 0)
	res, err := lp.Run(pkt, env, NewExecContext())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != packet.VerdictForward || pkt.EgressPort != 5 {
		t.Fatalf("verdict=%v egress=%d, want forward/5", res.Verdict, pkt.EgressPort)
	}
}

// Ensure execError formatting is reachable from the linked engine (an
// entry naming an unknown action on an unresolved instance).
func TestLinkedUnknownActionError(t *testing.T) {
	fwd := NewAsm().LdParam(0, 0).Forward(0).MustBuild()
	prog, err := NewProgram("ua").
		Action("fwd", 1, fwd).
		Table(&TableSpec{
			Name: "t",
			Keys: []TableKey{{Field: "ipv4.dst", Kind: MatchExact, Bits: 32}},
			// No declared action list: raw entries may name any action,
			// which is how an unknown name reaches the linked engine.
			DefaultAction: "fwd",
			DefaultParams: []uint64{1},
			Size:          8,
		}).
		Apply("t").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	env := newTestEnv()
	ti := NewTableInstance(prog.Table("t"))
	env.tables["t"] = ti
	lp, lerr := Link(prog, func(name string) *TableInstance { return env.tables[name] })
	if lerr != nil {
		t.Fatal(lerr)
	}
	// No resolver installed: the entry's action index stays unresolved
	// and names an action the program does not define.
	if err := ti.Insert(ExactEntry("ghost", nil, 2)); err != nil {
		t.Fatal(err)
	}
	pkt := packet.TCPPacket(1, 1, 2, 3, 4, 0, 0)
	_, rerr := lp.Run(pkt, &linkedTestEnv{env, lp}, NewExecContext())
	if rerr == nil {
		t.Fatal("expected unknown-action error")
	}
	want := fmt.Sprintf("table %q selected unknown action %q", "t", "ghost")
	if got := rerr.Error(); !strings.Contains(got, want) {
		t.Fatalf("error %q does not mention %q", got, want)
	}
}
